// A3 — section 3.3's privacy mechanism quantified: DP noise scale (epsilon)
// vs aggregate-query error, and budget exhaustion behaviour.
//
// "If an RMT query returns some aggregate statistics, we can leverage
// differential privacy (DP) to noise the outputs ... The kernel can maintain
// a 'privacy budget' and subtract from this overall budget for each table
// match." The harness runs noisy aggregate queries over a populated context
// store at several epsilon settings and reports mean absolute error, then
// demonstrates the budget cliff.
#include <cmath>
#include <cstdio>

#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/vm/context_store.h"
#include "src/vm/helpers.h"

int main() {
  using namespace rkd;

  std::printf("=== A3: differential privacy — epsilon vs aggregate error ===\n\n");

  // Populate a context store with per-process page-access counts.
  ContextStore store;
  Rng workload_rng(7);
  int64_t true_total = 0;
  for (uint64_t pid = 1; pid <= 256; ++pid) {
    const int64_t count = workload_rng.NextInt(0, 1000);
    store.FindOrCreate(pid)->slots[0] = count;
    true_total += count;
  }
  std::printf("true aggregate (total page accesses across 256 processes): %ld\n\n",
              static_cast<long>(true_total));

  std::printf("%12s %16s %16s %18s\n", "epsilon", "mean |error|", "error (%)",
              "theory E|Lap|=s/e");
  const double sensitivity = 1000.0;  // one process contributes at most this
  for (const double epsilon : {0.01, 0.05, 0.1, 0.5, 1.0, 5.0}) {
    PrivacyBudget budget(1e9, epsilon);
    DpNoiseSource noise(&budget, sensitivity, 11);
    RunningStats error;
    for (int trial = 0; trial < 2000; ++trial) {
      const int64_t answer = noise.Noisy(true_total);
      error.Add(std::abs(static_cast<double>(answer - true_total)));
    }
    std::printf("%12.2f %16.1f %16.3f %18.1f\n", epsilon, error.mean(),
                100.0 * error.mean() / static_cast<double>(true_total),
                sensitivity / epsilon);
  }

  std::printf("\n--- budget exhaustion ---\n");
  PrivacyBudget budget(1.0, 0.25);  // four queries total
  DpNoiseSource noise(&budget, sensitivity, 13);
  for (int query = 1; query <= 6; ++query) {
    const int64_t answer = noise.Noisy(true_total);
    std::printf("query %d: %8ld   (remaining epsilon %.2f)\n", query,
                static_cast<long>(answer), budget.remaining());
  }
  std::printf("\nafter exhaustion every answer is a hard zero: %lu answered, %lu refused\n",
              static_cast<unsigned long>(budget.queries_answered()),
              static_cast<unsigned long>(budget.queries_refused()));
  std::printf("expected shape: mean error tracks sensitivity/epsilon; the budget cliff is "
              "exact\n");
  return 0;
}
