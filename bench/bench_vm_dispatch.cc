// M1 — section 3.1's execution tiers: interpreted vs JIT-compiled vs
// specialized.
//
// Measures per-invocation latency of the same verified program on each
// tier, across program sizes, plus compilation cost. The claims under test:
// pre-decoding (tier 2) removes per-instruction validation, step
// accounting, and switch dispatch, so it wins and the gap grows with
// program length; specialization (tier 3) fuses superblocks and resets only
// observable state, so it wins again on top. Cross-tier floors are asserted
// by bench_vm_tiers; this bench is the per-size latency curve.
#include <benchmark/benchmark.h>

#include "src/base/rng.h"
#include "src/bytecode/assembler.h"
#include "src/vm/jit.h"
#include "src/vm/specialize.h"
#include "src/vm/vm.h"

namespace {

using namespace rkd;

// A verified-shape ALU/branch program of roughly `length` instructions.
BytecodeProgram MakeProgram(size_t length, uint64_t seed) {
  Rng rng(seed);
  Assembler a("bench");
  for (int reg = 0; reg <= 9; ++reg) {
    a.MovImm(reg, rng.NextInt(1, 100));
  }
  std::vector<Assembler::Label> pending;
  for (size_t i = 0; i < length; ++i) {
    const int dst = static_cast<int>(rng.NextBounded(10));
    const int src = static_cast<int>(rng.NextBounded(10));
    switch (rng.NextBounded(8)) {
      case 0: a.Add(dst, src); break;
      case 1: a.Sub(dst, src); break;
      case 2: a.Xor(dst, src); break;
      case 3: a.MulImm(dst, 3); break;
      case 4: a.AshrImm(dst, 1); break;
      case 5: a.Mov(dst, src); break;
      case 6: a.AndImm(dst, 0xff); break;
      case 7: {
        auto label = a.NewLabel();
        a.JltImm(dst, 50, label);
        pending.push_back(label);
        break;
      }
    }
    while (pending.size() > 2) {
      a.Bind(pending.front());
      pending.erase(pending.begin());
    }
  }
  for (auto& label : pending) {
    a.Bind(label);
  }
  a.Mov(0, 3);
  a.Exit();
  return std::move(a.Build()).value();
}

void BM_Interpreter(benchmark::State& state) {
  const BytecodeProgram program = MakeProgram(static_cast<size_t>(state.range(0)), 42);
  const VmEnv env;
  const Interpreter interp(env);
  const std::array<int64_t, 2> args{5, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.Run(program, args));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Interpreter)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_Jit(benchmark::State& state) {
  const BytecodeProgram program = MakeProgram(static_cast<size_t>(state.range(0)), 42);
  const CompiledProgram compiled = std::move(CompiledProgram::Compile(program)).value();
  const VmEnv env;
  const std::array<int64_t, 2> args{5, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.Run(env, args));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Jit)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// Tier 3 on the same programs. ALU/branch programs have no foldable state,
// so this isolates the superblock + targeted-reset win over tier 2.
void BM_Tier3(benchmark::State& state) {
  const BytecodeProgram program = MakeProgram(static_cast<size_t>(state.range(0)), 42);
  const SpecializeContext ctx;
  const SpecializedProgram spec = std::move(SpecializedProgram::Specialize(program, ctx)).value();
  const VmEnv env;
  const std::array<int64_t, 2> args{5, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.Run(env, args));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Tier3)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_JitCompile(benchmark::State& state) {
  const BytecodeProgram program = MakeProgram(static_cast<size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompiledProgram::Compile(program));
  }
}
BENCHMARK(BM_JitCompile)->Arg(64)->Arg(1024);

// Specialization cost, for parity with BM_JitCompile: what a control-plane
// tick pays to promote one program to tier 3.
void BM_Tier3Specialize(benchmark::State& state) {
  const BytecodeProgram program = MakeProgram(static_cast<size_t>(state.range(0)), 42);
  const SpecializeContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpecializedProgram::Specialize(program, ctx));
  }
}
BENCHMARK(BM_Tier3Specialize)->Arg(64)->Arg(1024);

// The ML instruction set under both tiers: one quantized-MLP-shaped action
// (vector load, two matmuls, relu, argmax).
void BM_VectorAction(benchmark::State& state) {
  TensorRegistry tensors;
  FixedMatrix w1(16, 8);
  FixedMatrix w2(4, 16);
  Rng rng(7);
  for (auto& v : w1.data()) {
    v = Fixed32::FromDouble(rng.NextDouble() - 0.5).raw();
  }
  for (auto& v : w2.data()) {
    v = Fixed32::FromDouble(rng.NextDouble() - 0.5).raw();
  }
  tensors.Add(std::move(w1));
  tensors.Add(std::move(w2));
  ContextStore ctxt;
  ContextEntry* entry = ctxt.FindOrCreate(1);
  for (int i = 0; i < 8; ++i) {
    entry->features[i] = (i + 1) << 16;
  }

  Assembler a("mlp_action");
  a.DeclareTensors(2);
  a.VecLdCtxt(0, 1);
  a.MatMul(1, 0, 0);
  a.VecRelu(1, 1);
  a.MatMul(2, 1, 1);
  a.VecArgmax(0, 2);
  a.Exit();
  const BytecodeProgram program = std::move(a.Build()).value();

  VmEnv env;
  env.ctxt = &ctxt;
  env.tensors = &tensors;
  const std::array<int64_t, 1> args{1};
  if (state.range(0) == 0) {
    const Interpreter interp(env);
    for (auto _ : state) {
      benchmark::DoNotOptimize(interp.Run(program, args));
    }
  } else if (state.range(0) == 1) {
    const CompiledProgram compiled = std::move(CompiledProgram::Compile(program)).value();
    for (auto _ : state) {
      benchmark::DoNotOptimize(compiled.Run(env, args));
    }
  } else {
    SpecializeContext ctx;
    ctx.tensors = &tensors;
    const SpecializedProgram spec = std::move(SpecializedProgram::Specialize(program, ctx)).value();
    for (auto _ : state) {
      benchmark::DoNotOptimize(spec.Run(env, args));
    }
  }
}
BENCHMARK(BM_VectorAction)->Arg(0)->Arg(1)->Arg(2)->ArgName("tier");

}  // namespace

BENCHMARK_MAIN();
