// Reproduces Table 2: "Case study: Linux Scheduler".
//
// Paper reference numbers (Linux v5.9.15, PARSEC + microbenchmarks):
//
//                   Full-Featured MLP     Leaner-Featured MLP    Linux
//   Benchmark       Acc (%)  JCT (s)      Acc (%)  JCT (s)       JCT (s)
//   Blackscholes    99.08    19.010       94.0     18.770        18.679
//   Streamcluster   99.38    58.136       94.3     57.387        57.362
//   Fib             99.81    19.567       99.7     19.533        19.543
//   Matrix Multiply 99.7     16.520       99.6     16.514        16.337
//
// Pipeline per benchmark, exactly the paper's: collect can_migrate_task
// decisions from stock CFS -> train a float MLP on all 15 features ->
// quantize -> install through the RMT control plane -> measure mimicry
// accuracy and job completion time. Then rank features (the scikit-learn
// step), keep the top 2, retrain, and re-measure. Claims under
// reproduction: full-model accuracy ~99%, lean-model accuracy >= 94% with 2
// of 15 features, and ML job completion times within ~2% of stock CFS.
#include <cstdio>
#include <memory>

#include "src/ml/decision_tree.h"
#include "src/ml/feature_importance.h"
#include "src/ml/mlp.h"
#include "src/ml/quantize.h"
#include "src/sim/sched/cfs_sim.h"
#include "src/sim/sched/rmt_oracle.h"
#include "src/workloads/cpu_jobs.h"

namespace {

struct BenchmarkSpec {
  const char* name;
  rkd::JobKind kind;
  uint64_t base_work;
  size_t num_tasks;
};

struct MlRow {
  double accuracy;
  double jct_seconds;
};

constexpr size_t kLeanFeatureCount = 2;

// Trains an MLP on `train`, quantizes, installs via the RMT control plane,
// and runs the job with the oracle. `selected` lists the feature columns the
// model (and the lean monitoring plane) uses.
MlRow RunMlScheduler(const rkd::SchedConfig& sched_config, const rkd::JobSpec& job,
                     const rkd::Dataset& train, const std::vector<size_t>& selected) {
  rkd::MlpConfig mlp_config;
  mlp_config.hidden_sizes = {16, 16};
  mlp_config.epochs = 60;
  mlp_config.seed = 5;
  rkd::Result<rkd::Mlp> mlp = rkd::Mlp::Train(train, mlp_config);
  if (!mlp.ok()) {
    std::fprintf(stderr, "mlp training failed: %s\n", mlp.status().ToString().c_str());
    return MlRow{0, 0};
  }
  rkd::Result<rkd::QuantizedMlp> quantized = rkd::QuantizedMlp::FromMlp(*mlp);
  if (!quantized.ok()) {
    std::fprintf(stderr, "quantization failed: %s\n", quantized.status().ToString().c_str());
    return MlRow{0, 0};
  }

  rkd::RmtOracleConfig oracle_config;
  oracle_config.selected_features = selected;
  rkd::RmtMigrationOracle oracle(oracle_config);
  rkd::Status status = oracle.Init();
  if (status.ok()) {
    status = oracle.InstallModel(
        std::make_shared<rkd::QuantizedMlp>(std::move(quantized).value()));
  }
  if (!status.ok()) {
    std::fprintf(stderr, "oracle setup failed: %s\n", status.ToString().c_str());
    return MlRow{0, 0};
  }

  rkd::CfsSim sim(sched_config);
  const rkd::SchedMetrics metrics = sim.Run(job, oracle.AsOracle());
  return MlRow{metrics.agreement() * 100.0, metrics.jct_seconds(sched_config.tick_ns)};
}

}  // namespace

int main() {
  std::printf("=== Table 2: Case study: Linux Scheduler ===\n\n");

  const BenchmarkSpec specs[] = {
      {"Blackscholes", rkd::JobKind::kBlackscholes, 4700, 16},
      {"Streamcluster", rkd::JobKind::kStreamcluster, 14400, 16},
      {"Fib Calculation", rkd::JobKind::kFib, 17000, 16},
      {"Matrix Multiply", rkd::JobKind::kMatMul, 4100, 16},
  };

  rkd::SchedConfig sched_config;
  sched_config.cores = 4;

  std::printf("%-18s %28s %28s %10s\n", "", "Full-Featured MLP", "Leaner-Featured MLP",
              "Linux");
  std::printf("%-18s %13s %14s %13s %14s %10s\n", "Benchmark", "Acc (%)", "JCT (s)",
              "Acc (%)", "JCT (s)", "JCT (s)");

  for (const BenchmarkSpec& spec : specs) {
    rkd::JobConfig job_config;
    job_config.num_tasks = spec.num_tasks;
    job_config.base_work = spec.base_work;
    job_config.seed = 11;
    const rkd::JobSpec job = rkd::MakeJob(spec.kind, job_config);

    // Training data: stock-CFS decision traces from two perturbed runs.
    rkd::Dataset train = rkd::CollectMigrationDataset(sched_config, job);
    {
      rkd::JobConfig alt = job_config;
      alt.seed = 12;
      const rkd::JobSpec job2 = rkd::MakeJob(spec.kind, alt);
      rkd::CfsSim sim(sched_config);
      (void)sim.Run(job2, {}, &train);
    }
    if (train.size() < 16) {
      std::printf("%-18s (insufficient decision samples: %zu)\n", spec.name, train.size());
      continue;
    }

    // Stock Linux CFS row.
    rkd::CfsSim linux_sim(sched_config);
    const rkd::SchedMetrics linux_metrics = linux_sim.Run(job);

    // Full-featured model: all 15 features.
    std::vector<size_t> all_features(rkd::kSchedNumFeatures);
    for (size_t i = 0; i < all_features.size(); ++i) {
      all_features[i] = i;
    }
    const MlRow full = RunMlScheduler(sched_config, job, train, all_features);

    // Lean monitoring: rank features by the impurity importance of an
    // interpretable tree distilled from the decision trace (section 3.2:
    // "distillation to interpretable models like decision trees will also
    // elucidate which features are key"), keep the top two, retrain.
    rkd::DecisionTreeConfig ranker_config;
    ranker_config.max_depth = 10;
    rkd::Result<rkd::DecisionTree> ranker = rkd::DecisionTree::Train(train, ranker_config);
    MlRow lean{0, 0};
    if (ranker.ok()) {
      const std::vector<double> importance = ranker->FeatureImportance();
      const rkd::FeatureSelection selection =
          rkd::SelectTopFeatures(train, importance, kLeanFeatureCount);
      lean = RunMlScheduler(sched_config, job, selection.projected, selection.selected);
    }

    std::printf("%-18s %13.2f %14.3f %13.2f %14.3f %10.3f\n", spec.name, full.accuracy,
                full.jct_seconds, lean.accuracy, lean.jct_seconds,
                linux_metrics.jct_seconds(sched_config.tick_ns));
  }

  std::printf("\npaper shape: full-featured accuracy ~99%%; two-feature accuracy >= 94%%; ML "
              "JCTs within ~2%% of stock CFS\n");
  return 0;
}
