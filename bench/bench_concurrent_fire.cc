// M5 — fire-path thread scaling on the epoch-based concurrent datapath.
//
// The claim under test: Fire()/FireBatch() are wait-free readers (one epoch
// pin + immutable snapshot walks, no locks), so aggregate fire throughput
// scales with reader threads instead of serializing on the registry. The
// benchmark installs both case-study programs — the scheduler migration
// oracle and the ML prefetcher — into one registry and measures aggregate
// fires/sec at 1, 2, 4 and 8 threads, each thread firing its own pid range
// (per-pid context is single-writer by design; everything else is shared).
//
// Results land in BENCH_concurrent_fire.json (override with --out=FILE).
// `speedup_vs_1` is the headline curve; `hw_threads` records how much
// hardware parallelism the host actually had, since the curve saturates at
// min(threads, hw_threads) — on a 1-core CI runner every point is ~1.0 and
// the scaling claim is carried by wider runners.
//
//   $ build/bench/bench_concurrent_fire              # ~2s per point
//   $ build/bench/bench_concurrent_fire --quick      # CI smoke
#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/base/epoch.h"
#include "src/ml/decision_tree.h"
#include "src/ml/quantize.h"
#include "src/rmt/control_plane.h"
#include "src/rmt/hooks.h"
#include "src/sim/mem/ml_prefetcher.h"
#include "src/sim/sched/rmt_oracle.h"
#include "src/telemetry/telemetry.h"

namespace rkd {
namespace {

constexpr uint64_t kPidsPerThread = 16;

ModelPtr MakeConstantTree(int32_t label) {
  Dataset data(1);
  data.Add(std::array<int32_t, 1>{0}, label);
  data.Add(std::array<int32_t, 1>{1}, label);
  return std::make_shared<DecisionTree>(std::move(DecisionTree::Train(data)).value());
}

// One fully-set-up datapath: registry, both programs, models, knobs, and
// pre-created per-pid contexts for `max_threads` worth of pid ranges.
struct Harness {
  HookRegistry hooks;
  ControlPlane cp{&hooks};
  std::atomic<uint64_t> virtual_now{0};
  std::atomic<uint64_t> pages_emitted{0};
  HookId sched_hook = kInvalidHook;
  HookId access_hook = kInvalidHook;
  HookId prefetch_hook = kInvalidHook;

  bool Init(int max_threads) {
    SubsystemBindings mem_bindings;
    mem_bindings.now = [this] { return virtual_now.load(std::memory_order_relaxed); };
    mem_bindings.prefetch_emit = [this](int64_t /*first*/, int64_t count) {
      pages_emitted.fetch_add(static_cast<uint64_t>(count > 0 ? count : 0),
                              std::memory_order_relaxed);
    };
    auto sched = hooks.Register("sched.can_migrate_task", HookKind::kSchedMigrate);
    auto access = hooks.Register("mm.lookup_swap_cache", HookKind::kMemAccess, mem_bindings);
    auto prefetch =
        hooks.Register("mm.swap_cluster_readahead", HookKind::kMemPrefetch, mem_bindings);
    if (!sched.ok() || !access.ok() || !prefetch.ok()) {
      return false;
    }
    sched_hook = *sched;
    access_hook = *access;
    prefetch_hook = *prefetch;

    auto sched_handle = cp.Install(RmtMigrationOracle{}.BuildProgramSpec("bench_sched"));
    auto mem_handle = cp.Install(RmtMlPrefetcher{}.BuildProgramSpec("bench_prefetch"));
    if (!sched_handle.ok() || !mem_handle.ok()) {
      return false;
    }
    if (!cp.InstallModel(*sched_handle, 0, MakeConstantTree(1)).ok() ||
        !cp.InstallModel(*mem_handle, 0, MakeConstantTree(1)).ok() ||
        !cp.WriteMap(*mem_handle, 0, 0, 2).ok() ||
        !cp.WriteMap(*mem_handle, 1, 1, 4).ok()) {
      return false;
    }
    ContextStore& sched_ctxt = cp.Get(*sched_handle)->context();
    ContextStore& mem_ctxt = cp.Get(*mem_handle)->context();
    for (uint64_t pid = 0; pid < static_cast<uint64_t>(max_threads) * kPidsPerThread; ++pid) {
      ContextEntry* entry = sched_ctxt.FindOrCreate(pid);
      if (entry != nullptr) {
        entry->features.fill(RawToQ16(0.5));
      }
      (void)mem_ctxt.FindOrCreate(pid);
    }
    return true;
  }
};

// The per-thread fire mix: one sched fire, one mem-access fire, one
// 4-event prefetch batch — 6 fires per iteration, matching rkd_mtfire.
uint64_t FireLoop(Harness& h, int thread_index, uint64_t iters) {
  const uint64_t pid_base = static_cast<uint64_t>(thread_index) * kPidsPerThread;
  std::array<HookEvent, 4> batch;
  std::array<int64_t, 4> results;
  uint64_t sink = 0;
  for (uint64_t iter = 0; iter < iters; ++iter) {
    const uint64_t pid = pid_base + iter % kPidsPerThread;
    const int64_t page = static_cast<int64_t>(100 + iter % 64);
    sink += static_cast<uint64_t>(h.hooks.Fire(h.sched_hook, pid));
    const int64_t args[2] = {static_cast<int64_t>(pid), page};
    sink += static_cast<uint64_t>(h.hooks.Fire(h.access_hook, pid, args));
    for (uint32_t i = 0; i < batch.size(); ++i) {
      batch[i] = HookEvent(pid, {static_cast<int64_t>(pid), page + i});
    }
    h.hooks.FireBatch(h.prefetch_hook, batch, results);
    h.virtual_now.fetch_add(1, std::memory_order_relaxed);
  }
  return sink;
}

struct Point {
  int threads = 0;
  uint64_t fires = 0;
  double fires_per_sec = 0.0;
};

Point RunPoint(Harness& h, int threads, uint64_t iters_per_thread) {
  std::atomic<uint64_t> sink{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  const uint64_t start_ns = MonotonicNowNs();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back(
        [&h, &sink, t, iters_per_thread] { sink += FireLoop(h, t, iters_per_thread); });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  const uint64_t elapsed_ns = MonotonicNowNs() - start_ns;
  // Let the epoch domain reclaim whatever the run retired before the next
  // point measures (mirrors the control-plane tick between workloads).
  GlobalEpochDomain().Synchronize();
  (void)GlobalEpochDomain().TryAdvance();

  Point p;
  p.threads = threads;
  p.fires = static_cast<uint64_t>(threads) * iters_per_thread * 6;
  p.fires_per_sec =
      static_cast<double>(p.fires) * 1e9 / static_cast<double>(elapsed_ns > 0 ? elapsed_ns : 1);
  return p;
}

int Run(const std::string& out_path, bool quick) {
  constexpr int kThreadCounts[] = {1, 2, 4, 8};
  const int max_threads = 8;

  Harness h;
  if (!h.Init(max_threads)) {
    std::fprintf(stderr, "FAIL: harness setup\n");
    return 1;
  }

  // Calibrate so each point runs ~1-2s (quick: ~100ms) regardless of host
  // speed, using a single-threaded warmup burst.
  const uint64_t warmup_iters = quick ? 2'000 : 20'000;
  const uint64_t warm_start = MonotonicNowNs();
  (void)FireLoop(h, 0, warmup_iters);
  const uint64_t warm_ns = MonotonicNowNs() - warm_start;
  const double iters_per_sec =
      static_cast<double>(warmup_iters) * 1e9 / static_cast<double>(warm_ns > 0 ? warm_ns : 1);
  const uint64_t iters_per_thread =
      static_cast<uint64_t>(iters_per_sec * (quick ? 0.1 : 1.5)) + 1;

  std::vector<Point> points;
  for (const int threads : kThreadCounts) {
    const Point p = RunPoint(h, threads, iters_per_thread);
    points.push_back(p);
    std::printf("%d thread%s: %12.0f fires/sec  (x%.2f vs 1 thread)\n", p.threads,
                p.threads == 1 ? " " : "s", p.fires_per_sec,
                p.fires_per_sec / points.front().fires_per_sec);
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"concurrent_fire\",\n"
               "  \"hw_threads\": %u,\n"
               "  \"fires_per_iteration\": 6,\n"
               "  \"points\": [\n",
               hw);
  for (size_t i = 0; i < points.size(); ++i) {
    std::fprintf(out,
                 "    {\"threads\": %d, \"fires\": %" PRIu64
                 ", \"fires_per_sec\": %.0f, \"speedup_vs_1\": %.3f}%s\n",
                 points[i].threads, points[i].fires, points[i].fires_per_sec,
                 points[i].fires_per_sec / points.front().fires_per_sec,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace rkd

int main(int argc, char** argv) {
  std::string out_path = "BENCH_concurrent_fire.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out=FILE]\n", argv[0]);
      return 2;
    }
  }
  return rkd::Run(out_path, quick);
}
