// A2 — online-training ablation: prefetch quality vs training-window size.
//
// Case study #1 "trains a new decision tree periodically ... for each time
// window, while discarding the old ones" but the paper leaves the window
// size unexamined. The sweep shows the trade: tiny windows track phase
// changes but underfit each phase (and retrain constantly); huge windows
// fit well but ramp slowly and straddle phase boundaries.
#include <cstdio>

#include "src/sim/mem/memory_sim.h"
#include "src/sim/mem/ml_prefetcher.h"
#include "src/workloads/access_trace.h"

int main() {
  using namespace rkd;

  std::printf("=== Ablation A2: prefetch accuracy vs training-window size ===\n\n");

  MemSimConfig sim_config;
  sim_config.frame_capacity = 192;

  Rng rng(2022);
  MatrixConvConfig trace_config;
  const AccessTrace conv_trace = MakeMatrixConvTrace(trace_config, rng);

  // A phase-changing workload: conv, then video, then conv again.
  Rng rng2(2023);
  VideoResizeConfig video_config;
  video_config.frames = 12;
  AccessTrace phased = MakeMatrixConvTrace(trace_config, rng2);
  const AccessTrace video = MakeVideoResizeTrace(video_config, rng2);
  phased.insert(phased.end(), video.begin(), video.end());
  {
    MatrixConvConfig second = trace_config;
    second.input_base = 1 << 22;
    const AccessTrace again = MakeMatrixConvTrace(second, rng2);
    phased.insert(phased.end(), again.begin(), again.end());
  }

  std::printf("%8s | %28s | %28s\n", "", "steady (matrix conv)", "phase-changing workload");
  std::printf("%8s | %9s %9s %8s | %9s %9s %8s\n", "window", "acc (%)", "cov (%)", "windows",
              "acc (%)", "cov (%)", "windows");

  for (const size_t window : {32ul, 64ul, 128ul, 256ul, 512ul, 1024ul, 2048ul}) {
    MlPrefetcherConfig config;
    config.window_size = window;
    config.min_train_samples = std::min<size_t>(window, 32);

    RmtMlPrefetcher steady(config);
    if (!steady.Init().ok()) {
      continue;
    }
    MemorySim steady_sim(sim_config, &steady);
    const MemMetrics steady_metrics = steady_sim.Run(conv_trace);

    RmtMlPrefetcher phased_prefetcher(config);
    if (!phased_prefetcher.Init().ok()) {
      continue;
    }
    MemorySim phased_sim(sim_config, &phased_prefetcher);
    const MemMetrics phased_metrics = phased_sim.Run(phased);

    std::printf("%8zu | %9.2f %9.2f %8lu | %9.2f %9.2f %8lu\n", window,
                steady_metrics.accuracy() * 100, steady_metrics.coverage() * 100,
                static_cast<unsigned long>(steady.windows_trained()),
                phased_metrics.accuracy() * 100, phased_metrics.coverage() * 100,
                static_cast<unsigned long>(phased_prefetcher.windows_trained()));
  }

  std::printf("\nexpected shape: steady-workload accuracy grows with window size then "
              "flattens; phase-changing accuracy peaks at a middle window\n");
  return 0;
}
