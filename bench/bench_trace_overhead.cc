// M: span-tracing overhead microbenchmark.
//
// The tracer's cost contract (src/telemetry/span.h) has two halves:
//
//   1. An *untraced* fire pays one relaxed load and one branch in
//      ShouldSample — at the default 1-in-1024 sampling rate, hook dispatch
//      must show no measurable regression over a tracer-disabled baseline.
//   2. A *traced* fire pays the full span tree (root + table.lookup +
//      vm.exec, two clock reads and one ring store per span) plus opcode
//      profiling in the VM. That cost is real but bounded: it must stay
//      under a generous per-fire budget, far below anything that could
//      matter at a 1-in-1024 duty cycle.
//
// Both halves are *asserted*, not just reported: a regression that drags a
// lock, an allocation, or an unconditional clock read onto the untraced
// path fails the binary. Results land in BENCH_trace_overhead.json
// (override with --out=FILE); pass --benchmark to run the google-benchmark
// reporters instead.
//
// Budget rationale: a fully traced fire measured ~2-8 us on the reference
// container (dominated by the VM exec span's per-opcode clock reads). The
// 25 us budget is ~3-10x headroom for CI noise while still an order of
// magnitude below a pathological implementation. The untraced bound is
// max(25 ns, 20% of baseline): absolute floor for fast machines where 20%
// of a ~60 ns fire is within clock jitter, relative bound for slow ones.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <benchmark/benchmark.h>

#include "src/base/stats.h"
#include "src/bytecode/assembler.h"
#include "src/rmt/control_plane.h"
#include "src/telemetry/span.h"
#include "src/telemetry/telemetry.h"

namespace rkd {
namespace {

constexpr double kTracedBudgetNs = 25'000.0;   // median fully-traced fire
constexpr double kUntracedSlackNs = 25.0;      // absolute regression floor
constexpr double kUntracedSlackRatio = 0.20;   // relative regression bound

// One hook + one installed two-instruction action, the bench dispatch rig.
struct FireRig {
  HookRegistry hooks;
  ControlPlane control_plane{&hooks};
  HookId hook = -1;

  bool Init() {
    Result<HookId> registered = hooks.Register("bench.hook", HookKind::kGeneric);
    if (!registered.ok()) {
      return false;
    }
    hook = *registered;
    Assembler as("bench_action", HookKind::kGeneric);
    as.MovImm(0, 1);
    as.Exit();
    RmtProgramSpec spec;
    spec.name = "bench_prog";
    RmtTableSpec table;
    table.name = "bench_tab";
    table.hook_point = "bench.hook";
    table.actions.push_back(std::move(as.Build()).value());
    table.default_action = 0;
    spec.tables.push_back(std::move(table));
    return control_plane.Install(spec).ok();
  }
};

// Median ns/fire over kBatches batches of kFiresPerBatch fires. Median over
// batches (Samples::PercentileSorted) shrugs off scheduler blips.
double MedianFireNs(FireRig& rig, uint32_t sample_every) {
  rig.hooks.telemetry().tracer().set_sample_every(sample_every);
  constexpr int kBatches = 48;
  constexpr uint64_t kFiresPerBatch = 4'000;
  int64_t key = 0;
  // Warm the icache, the thread-local tracer state, and the branch history.
  for (uint64_t i = 0; i < kFiresPerBatch; ++i) {
    benchmark::DoNotOptimize(rig.hooks.Fire(rig.hook, key++));
  }
  Samples per_fire_ns;
  for (int b = 0; b < kBatches; ++b) {
    const uint64_t start = MonotonicNowNs();
    for (uint64_t i = 0; i < kFiresPerBatch; ++i) {
      benchmark::DoNotOptimize(rig.hooks.Fire(rig.hook, key++));
    }
    const uint64_t elapsed = MonotonicNowNs() - start;
    per_fire_ns.Add(static_cast<double>(elapsed) / static_cast<double>(kFiresPerBatch));
  }
  per_fire_ns.Sort();
  return per_fire_ns.PercentileSorted(50);
}

// Median cost of one bare span (Begin + 2 tags + End), outside any hook.
double MedianSpanNs() {
  Tracer tracer;
  constexpr int kBatches = 48;
  constexpr uint64_t kSpansPerBatch = 10'000;
  Samples per_span_ns;
  for (int b = 0; b < kBatches; ++b) {
    const uint64_t start = MonotonicNowNs();
    for (uint64_t i = 0; i < kSpansPerBatch; ++i) {
      ScopedSpan span(&tracer, "bench.span");
      span.Tag("i", static_cast<int64_t>(i));
      span.Tag("b", b);
    }
    const uint64_t elapsed = MonotonicNowNs() - start;
    per_span_ns.Add(static_cast<double>(elapsed) / static_cast<double>(kSpansPerBatch));
  }
  per_span_ns.Sort();
  return per_span_ns.PercentileSorted(50);
}

// --- google-benchmark reporting (--benchmark) ------------------------------

void BM_ShouldSample(benchmark::State& state) {
  Tracer tracer;
  uint64_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracer.ShouldSample(seq++));
  }
}
BENCHMARK(BM_ShouldSample);

void BM_ScopedSpan(benchmark::State& state) {
  Tracer tracer;
  for (auto _ : state) {
    ScopedSpan span(&tracer, "bench.span");
    span.Tag("k", 1);
  }
  benchmark::DoNotOptimize(tracer.spans_recorded());
}
BENCHMARK(BM_ScopedSpan);

void BM_FireUntraced(benchmark::State& state) {
  FireRig rig;
  if (!rig.Init()) {
    state.SkipWithError("install failed");
    return;
  }
  rig.hooks.telemetry().tracer().set_sample_every(0);
  int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.hooks.Fire(rig.hook, key++));
  }
}
BENCHMARK(BM_FireUntraced);

void BM_FireTraced(benchmark::State& state) {
  FireRig rig;
  if (!rig.Init()) {
    state.SkipWithError("install failed");
    return;
  }
  rig.hooks.telemetry().tracer().set_sample_every(1);
  int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.hooks.Fire(rig.hook, key++));
  }
}
BENCHMARK(BM_FireTraced);

// --- asserted budgets + JSON emission --------------------------------------

int RunBudgetCheck(const std::string& out_path) {
  FireRig rig;
  if (!rig.Init()) {
    std::fprintf(stderr, "FAIL: bench rig install failed\n");
    return 1;
  }

  const double span_ns = MedianSpanNs();
  const double untraced_ns = MedianFireNs(rig, /*sample_every=*/0);
  const double sampled_ns =
      MedianFireNs(rig, /*sample_every=*/Tracer::kDefaultSampleEvery);
  const double traced_ns = MedianFireNs(rig, /*sample_every=*/1);

  const double untraced_delta = sampled_ns - untraced_ns;
  const double untraced_bound =
      untraced_ns * kUntracedSlackRatio > kUntracedSlackNs
          ? untraced_ns * kUntracedSlackRatio
          : kUntracedSlackNs;

  std::printf("span (begin+2 tags+end):   %8.1f ns median\n", span_ns);
  std::printf("fire, tracer disabled:     %8.1f ns median\n", untraced_ns);
  std::printf("fire, 1-in-%u sampling:  %8.1f ns median (delta %+.1f ns, bound %.1f ns)\n",
              Tracer::kDefaultSampleEvery, sampled_ns, untraced_delta, untraced_bound);
  std::printf("fire, every fire traced:   %8.1f ns median (budget %.0f ns)\n", traced_ns,
              kTracedBudgetNs);

  int failures = 0;
  if (traced_ns > kTracedBudgetNs) {
    std::fprintf(stderr,
                 "FAIL: traced fire median %.1f ns exceeds the %.0f ns budget — did the "
                 "span path grow a lock, an allocation, or extra clock reads?\n",
                 traced_ns, kTracedBudgetNs);
    ++failures;
  }
  if (untraced_delta > untraced_bound) {
    std::fprintf(stderr,
                 "FAIL: default-rate sampling costs %.1f ns/fire over the disabled "
                 "baseline (bound %.1f ns) — the untraced path must stay one relaxed "
                 "load and a branch\n",
                 untraced_delta, untraced_bound);
    ++failures;
  }
  if (failures == 0) {
    std::printf("budget checks: OK\n");
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"trace_overhead\",\n"
               "  \"span_ns\": %.2f,\n"
               "  \"untraced_fire_ns\": %.2f,\n"
               "  \"sampled_fire_ns\": %.2f,\n"
               "  \"traced_fire_ns\": %.2f,\n"
               "  \"sample_every\": %u,\n"
               "  \"untraced_delta_ns\": %.2f,\n"
               "  \"untraced_bound_ns\": %.2f,\n"
               "  \"traced_budget_ns\": %.0f,\n"
               "  \"ok\": %s\n"
               "}\n",
               span_ns, untraced_ns, sampled_ns, traced_ns, Tracer::kDefaultSampleEvery,
               untraced_delta, untraced_bound, kTracedBudgetNs,
               failures == 0 ? "true" : "false");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace rkd

int main(int argc, char** argv) {
  bool gbench = false;
  std::string out_path = "BENCH_trace_overhead.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
      gbench = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  if (gbench) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  return rkd::RunBudgetCheck(out_path);
}
