// M2 — section 2.2's constant-time context claim and table-match costs.
//
// "This is also constant-time in a system-wide manner without having to walk
// complex kernel data structures." Compares: context-store lookup across
// population sizes (should be flat), each table match kind across entry
// counts (exact flat; lpm/range/ternary linear in entries), and the
// walk-the-kernel-structures strawman (a linked list of monitoring records,
// which is what the RMT context replaces).
#include <list>

#include <benchmark/benchmark.h>

#include "src/base/rng.h"
#include "src/rmt/table.h"
#include "src/vm/context_store.h"

namespace {

using namespace rkd;

void BM_ContextLookup(benchmark::State& state) {
  const auto population = static_cast<uint64_t>(state.range(0));
  ContextStore store(population + 1);
  for (uint64_t key = 0; key < population; ++key) {
    store.FindOrCreate(key)->slots[0] = static_cast<int64_t>(key);
  }
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Find(rng.NextBounded(population)));
  }
}
BENCHMARK(BM_ContextLookup)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

// The strawman the paper's context store replaces: walking a linked
// structure of per-entity monitoring records.
void BM_LinkedStructureWalk(benchmark::State& state) {
  const auto population = static_cast<uint64_t>(state.range(0));
  struct MonitoringRecord {
    uint64_t key;
    int64_t data[8];
  };
  std::list<MonitoringRecord> records;
  for (uint64_t key = 0; key < population; ++key) {
    records.push_back(MonitoringRecord{key, {}});
  }
  Rng rng(1);
  for (auto _ : state) {
    const uint64_t target = rng.NextBounded(population);
    const MonitoringRecord* found = nullptr;
    for (const MonitoringRecord& record : records) {
      if (record.key == target) {
        found = &record;
        break;
      }
    }
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_LinkedStructureWalk)->Arg(16)->Arg(256)->Arg(4096);

template <MatchKind kKind>
void BM_TableMatch(benchmark::State& state) {
  const auto entries = static_cast<uint64_t>(state.range(0));
  RmtTable table("bench", kKind, entries + 1);
  for (uint64_t i = 0; i < entries; ++i) {
    TableEntry entry;
    switch (kKind) {
      case MatchKind::kExact:
        entry.key = i;
        break;
      case MatchKind::kLpm:
        entry.key = i << 48;
        entry.key2 = 16;
        break;
      case MatchKind::kRange:
        entry.key = i * 100;
        entry.key2 = i * 100 + 99;
        break;
      case MatchKind::kTernary:
        entry.key = i;
        entry.key2 = 0xffff;
        entry.priority = static_cast<int32_t>(i);
        break;
    }
    entry.action_index = 0;
    (void)table.Insert(entry);
  }
  Rng rng(2);
  for (auto _ : state) {
    uint64_t key = rng.NextBounded(entries);
    if (kKind == MatchKind::kLpm) {
      key <<= 48;
    } else if (kKind == MatchKind::kRange) {
      key *= 100;
    }
    benchmark::DoNotOptimize(table.Match(key));
  }
}
BENCHMARK(BM_TableMatch<MatchKind::kExact>)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_TableMatch<MatchKind::kLpm>)->Arg(16)->Arg(256);
BENCHMARK(BM_TableMatch<MatchKind::kRange>)->Arg(16)->Arg(256);
BENCHMARK(BM_TableMatch<MatchKind::kTernary>)->Arg(16)->Arg(256);

void BM_HistoryAppend(benchmark::State& state) {
  ContextStore store;
  ContextEntry* entry = store.FindOrCreate(1);
  int64_t value = 0;
  for (auto _ : state) {
    entry->AppendHistory(value++);
  }
}
BENCHMARK(BM_HistoryAppend);

}  // namespace

BENCHMARK_MAIN();
