// M2 — section 2.2's constant-time context claim and table-match costs.
//
// "This is also constant-time in a system-wide manner without having to walk
// complex kernel data structures." Compares: context-store lookup across
// population sizes (should be flat), each table match kind across entry
// counts under both index modes, and the walk-the-kernel-structures strawman
// (a linked list of monitoring records, which is what the RMT context
// replaces).
//
// Two modes:
//   * default: the fast-lane A/B sweep — every match kind at 16/256/4k/16k
//     entries, linear scan vs compiled index, plus single-Fire vs FireBatch
//     dispatch at several batch sizes. Results land in BENCH_table_lookup.json
//     (override the path with --out=FILE).
//   * any --benchmark_* flag: the original google-benchmark microbenchmarks.
#include <cstdio>
#include <cstring>
#include <list>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/base/rng.h"
#include "src/bytecode/assembler.h"
#include "src/rmt/control_plane.h"
#include "src/rmt/table.h"
#include "src/vm/context_store.h"

namespace {

using namespace rkd;

void BM_ContextLookup(benchmark::State& state) {
  const auto population = static_cast<uint64_t>(state.range(0));
  ContextStore store(population + 1);
  for (uint64_t key = 0; key < population; ++key) {
    store.FindOrCreate(key)->slots[0] = static_cast<int64_t>(key);
  }
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Find(rng.NextBounded(population)));
  }
}
BENCHMARK(BM_ContextLookup)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

// The strawman the paper's context store replaces: walking a linked
// structure of per-entity monitoring records.
void BM_LinkedStructureWalk(benchmark::State& state) {
  const auto population = static_cast<uint64_t>(state.range(0));
  struct MonitoringRecord {
    uint64_t key;
    int64_t data[8];
  };
  std::list<MonitoringRecord> records;
  for (uint64_t key = 0; key < population; ++key) {
    records.push_back(MonitoringRecord{key, {}});
  }
  Rng rng(1);
  for (auto _ : state) {
    const uint64_t target = rng.NextBounded(population);
    const MonitoringRecord* found = nullptr;
    for (const MonitoringRecord& record : records) {
      if (record.key == target) {
        found = &record;
        break;
      }
    }
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_LinkedStructureWalk)->Arg(16)->Arg(256)->Arg(4096);

// Shared entry generator so the A/B sweep and the gbench variant measure the
// same populations: distinct /16 prefixes for lpm, disjoint width-100 ranges,
// 16-bit masked cells with distinct priorities for ternary.
TableEntry MakeEntry(MatchKind kind, uint64_t i) {
  TableEntry entry;
  switch (kind) {
    case MatchKind::kExact:
      entry.key = i;
      break;
    case MatchKind::kLpm:
      entry.key = i << 48;
      entry.key2 = 16;
      break;
    case MatchKind::kRange:
      entry.key = i * 100;
      entry.key2 = i * 100 + 99;
      break;
    case MatchKind::kTernary:
      entry.key = i;
      entry.key2 = 0xffff;
      entry.priority = static_cast<int32_t>(i);
      break;
  }
  entry.action_index = 0;
  return entry;
}

uint64_t MakeProbe(MatchKind kind, uint64_t i) {
  switch (kind) {
    case MatchKind::kLpm:
      return i << 48;
    case MatchKind::kRange:
      return i * 100;
    default:
      return i;
  }
}

template <MatchKind kKind>
void BM_TableMatch(benchmark::State& state) {
  const auto entries = static_cast<uint64_t>(state.range(0));
  RmtTable table("bench", kKind, entries + 1);
  std::vector<TableEntry> batch;
  batch.reserve(entries);
  for (uint64_t i = 0; i < entries; ++i) {
    batch.push_back(MakeEntry(kKind, i));
  }
  (void)table.InsertBatch(batch);  // one published snapshot for the bulk load
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Match(MakeProbe(kKind, rng.NextBounded(entries))));
  }
}
BENCHMARK(BM_TableMatch<MatchKind::kExact>)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_TableMatch<MatchKind::kLpm>)->Arg(16)->Arg(256);
BENCHMARK(BM_TableMatch<MatchKind::kRange>)->Arg(16)->Arg(256);
BENCHMARK(BM_TableMatch<MatchKind::kTernary>)->Arg(16)->Arg(256);

void BM_HistoryAppend(benchmark::State& state) {
  ContextStore store;
  ContextEntry* entry = store.FindOrCreate(1);
  int64_t value = 0;
  for (auto _ : state) {
    entry->AppendHistory(value++);
  }
}
BENCHMARK(BM_HistoryAppend);

// --- Fast-lane A/B sweep (default mode) ---

constexpr uint64_t kMinSampleNs = 10'000'000;  // per measurement

const char* KindName(MatchKind kind) {
  switch (kind) {
    case MatchKind::kExact:
      return "exact";
    case MatchKind::kLpm:
      return "lpm";
    case MatchKind::kRange:
      return "range";
    case MatchKind::kTernary:
      return "ternary";
  }
  return "?";
}

// ns per Match() over a pre-generated probe sequence, timed in chunks until
// the sample is at least kMinSampleNs long.
double MeasureMatchNs(RmtTable& table, const std::vector<uint64_t>& probes) {
  uint64_t hits = 0;  // defeat dead-code elimination across chunks
  uint64_t ops = 0;
  const uint64_t start = MonotonicNowNs();
  uint64_t elapsed = 0;
  while (elapsed < kMinSampleNs) {
    for (uint64_t probe : probes) {
      hits += table.Match(probe) != nullptr;
    }
    ops += probes.size();
    elapsed = MonotonicNowNs() - start;
  }
  benchmark::DoNotOptimize(hits);
  return static_cast<double>(elapsed) / static_cast<double>(ops);
}

struct SweepRow {
  const char* kind;
  uint64_t entries;
  double linear_ns;
  double compiled_ns;
  double speedup;
};

std::vector<SweepRow> RunMatchSweep() {
  const MatchKind kinds[] = {MatchKind::kExact, MatchKind::kLpm, MatchKind::kRange,
                             MatchKind::kTernary};
  const uint64_t sizes[] = {16, 256, 4096, 16384};
  std::vector<SweepRow> rows;
  for (MatchKind kind : kinds) {
    for (uint64_t entries : sizes) {
      RmtTable table("sweep", kind, entries + 1);
      std::vector<TableEntry> batch;
      batch.reserve(entries);
      for (uint64_t i = 0; i < entries; ++i) {
        batch.push_back(MakeEntry(kind, i));
      }
      (void)table.InsertBatch(batch);
      Rng rng(2);
      std::vector<uint64_t> probes(4096);
      for (uint64_t& probe : probes) {
        probe = MakeProbe(kind, rng.NextBounded(entries));
      }
      SweepRow row;
      row.kind = KindName(kind);
      row.entries = entries;
      table.set_index_mode(TableIndexMode::kLinear);
      row.linear_ns = MeasureMatchNs(table, probes);
      table.set_index_mode(TableIndexMode::kCompiled);
      row.compiled_ns = MeasureMatchNs(table, probes);
      row.speedup = row.linear_ns / row.compiled_ns;
      std::fprintf(stderr, "match %-8s %6llu entries: linear %8.1f ns  compiled %6.1f ns  %6.1fx\n",
                   row.kind, static_cast<unsigned long long>(row.entries), row.linear_ns,
                   row.compiled_ns, row.speedup);
      rows.push_back(row);
    }
  }
  return rows;
}

struct DispatchRow {
  uint64_t batch;
  double single_ns;  // per event, N individual Fire() calls
  double batch_ns;   // per event, one FireBatch() of N
  double speedup;
};

// Measures hook dispatch with a minimal action (mov r0,1; exit) behind an
// empty exact table with default_action=0 — every event takes the full
// guardian/telemetry/JIT dispatch path, none does real work, so the fixed
// per-fire overhead dominates and the batch amortization is visible.
std::vector<DispatchRow> RunDispatchSweep() {
  HookRegistry hooks;
  ControlPlane control_plane(&hooks);
  Result<HookId> hook = hooks.Register("bench.dispatch", HookKind::kGeneric);
  if (!hook.ok()) {
    return {};
  }

  Assembler a("bench_noop", HookKind::kGeneric);
  a.MovImm(0, 1);
  a.Exit();
  Result<BytecodeProgram> action = a.Build();
  if (!action.ok()) {
    return {};
  }

  RmtProgramSpec spec;
  spec.name = "bench_dispatch_prog";
  RmtTableSpec table;
  table.name = "bench_dispatch_tab";
  table.hook_point = "bench.dispatch";
  table.actions.push_back(std::move(action).value());
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  if (!control_plane.Install(spec, ExecTier::kJit).ok()) {
    return {};
  }
  const HookId id = *hook;

  std::vector<DispatchRow> rows;
  for (uint64_t batch : {8ull, 32ull, 256ull}) {
    std::vector<HookEvent> events(batch);
    for (uint64_t i = 0; i < batch; ++i) {
      events[i] = HookEvent(i, {static_cast<int64_t>(i)});
    }
    std::vector<int64_t> results(batch);

    DispatchRow row;
    row.batch = batch;
    {
      uint64_t sink = 0;
      uint64_t ops = 0;
      const uint64_t start = MonotonicNowNs();
      uint64_t elapsed = 0;
      while (elapsed < kMinSampleNs) {
        for (const HookEvent& event : events) {
          sink += static_cast<uint64_t>(
              hooks.Fire(id, event.key, std::span<const int64_t>(event.args.data(), 1)));
        }
        ops += batch;
        elapsed = MonotonicNowNs() - start;
      }
      benchmark::DoNotOptimize(sink);
      row.single_ns = static_cast<double>(elapsed) / static_cast<double>(ops);
    }
    {
      uint64_t ops = 0;
      const uint64_t start = MonotonicNowNs();
      uint64_t elapsed = 0;
      while (elapsed < kMinSampleNs) {
        hooks.FireBatch(id, events, results);
        ops += batch;
        elapsed = MonotonicNowNs() - start;
      }
      benchmark::DoNotOptimize(results[batch - 1]);
      row.batch_ns = static_cast<double>(elapsed) / static_cast<double>(ops);
    }
    row.speedup = row.single_ns / row.batch_ns;
    std::fprintf(stderr, "dispatch batch %4llu: single %6.1f ns/event  batch %6.1f ns/event  %5.2fx\n",
                 static_cast<unsigned long long>(batch), row.single_ns, row.batch_ns,
                 row.speedup);
    rows.push_back(row);
  }
  return rows;
}

int WriteJson(const std::string& path, const std::vector<SweepRow>& sweep,
              const std::vector<DispatchRow>& dispatch) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"table_lookup\",\n  \"match_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& r = sweep[i];
    std::fprintf(out,
                 "    {\"kind\": \"%s\", \"entries\": %llu, \"linear_ns_op\": %.2f, "
                 "\"compiled_ns_op\": %.2f, \"speedup\": %.2f}%s\n",
                 r.kind, static_cast<unsigned long long>(r.entries), r.linear_ns,
                 r.compiled_ns, r.speedup, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"speedup_4k\": {");
  bool first = true;
  for (const SweepRow& r : sweep) {
    if (r.entries != 4096) {
      continue;
    }
    std::fprintf(out, "%s\"%s\": %.2f", first ? "" : ", ", r.kind, r.speedup);
    first = false;
  }
  std::fprintf(out, "},\n  \"dispatch\": [\n");
  for (size_t i = 0; i < dispatch.size(); ++i) {
    const DispatchRow& r = dispatch[i];
    std::fprintf(out,
                 "    {\"batch\": %llu, \"single_ns_event\": %.2f, \"batch_ns_event\": %.2f, "
                 "\"speedup\": %.2f}%s\n",
                 static_cast<unsigned long long>(r.batch), r.single_ns, r.batch_ns, r.speedup,
                 i + 1 < dispatch.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool gbench = false;
  std::string out_path = "BENCH_table_lookup.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
      gbench = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  if (gbench) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  const std::vector<SweepRow> sweep = RunMatchSweep();
  const std::vector<DispatchRow> dispatch = RunDispatchSweep();
  return WriteJson(out_path, sweep, dispatch);
}
