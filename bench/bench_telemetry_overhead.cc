// M: telemetry overhead microbenchmark.
//
// The telemetry core's contract is that recording is datapath-cheap: a
// counter increment is one relaxed atomic add, a histogram record is three.
// This bench both reports the costs via google-benchmark and *asserts* a
// budget on the exact sequence Fire() executes per event (three counter
// increments + one histogram record), so a regression that sneaks a lock or
// an allocation onto the record path fails the binary, not just a dashboard.
//
// Budget rationale: the instrumented sequence is ~4-12 relaxed atomic adds
// worth of work (single-digit ns uncontended on any supported target). The
// asserted budget below is ~20x that, generous enough for CI-noise and slow
// machines while still an order of magnitude below what any mutex- or
// allocation-polluted implementation could meet.
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include <benchmark/benchmark.h>

#include "src/base/stats.h"
#include "src/bytecode/assembler.h"
#include "src/rmt/control_plane.h"
#include "src/telemetry/telemetry.h"

namespace rkd {
namespace {

// Median per-event cost budget for the Fire()-path record sequence
// (counters + histogram, no clock reads).
constexpr double kRecordBudgetNs = 250.0;

// --- google-benchmark reporting -------------------------------------------

void BM_CounterIncrement(benchmark::State& state) {
  Counter counter;
  for (auto _ : state) {
    counter.Increment();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramRecord(benchmark::State& state) {
  LatencyHistogram histogram;
  uint64_t ns = 1;
  for (auto _ : state) {
    histogram.Record(ns);
    ns = (ns * 2 + 1) & 0xffff;  // vary the bucket
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_FireRecordSequence(benchmark::State& state) {
  // The exact extra work Fire() does per event, minus the clock reads.
  TelemetryRegistry registry;
  Counter* fires = registry.GetCounter("rkd.hook.bench.fires");
  Counter* actions = registry.GetCounter("rkd.hook.bench.actions_run");
  LatencyHistogram* fire_ns = registry.GetHistogram("rkd.hook.bench.fire_ns");
  for (auto _ : state) {
    fires->Increment();
    actions->Increment();
    fire_ns->Record(120);
  }
  benchmark::DoNotOptimize(fires->value());
}
BENCHMARK(BM_FireRecordSequence);

void BM_MonotonicNowNs(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MonotonicNowNs());
  }
}
BENCHMARK(BM_MonotonicNowNs);

void BM_HookFireInstrumented(benchmark::State& state) {
  // End-to-end Fire() with telemetry: clock reads, VM action execution,
  // counter/histogram records, and the trace-ring push.
  HookRegistry hooks;
  const HookId hook = *hooks.Register("bench.hook", HookKind::kGeneric);
  ControlPlane control_plane(&hooks);

  Assembler as("bench_action", HookKind::kGeneric);
  as.MovImm(0, 1);
  as.Exit();
  RmtProgramSpec spec;
  spec.name = "bench_prog";
  RmtTableSpec table;
  table.name = "bench_tab";
  table.hook_point = "bench.hook";
  table.actions.push_back(std::move(as.Build()).value());
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  if (!control_plane.Install(spec).ok()) {
    state.SkipWithError("install failed");
    return;
  }

  int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hooks.Fire(hook, key++));
  }
  state.counters["fires"] = static_cast<double>(hooks.MetricsOf(hook).fires());
}
BENCHMARK(BM_HookFireInstrumented);

// --- asserted budget check -------------------------------------------------

// Measures the Fire()-path record sequence in batches, asserts the median
// batch's per-event cost. Median over batches (via Samples::PercentileSorted)
// shrugs off scheduler blips that would make a mean flaky.
int CheckRecordBudget() {
  TelemetryRegistry registry;
  Counter* fires = registry.GetCounter("rkd.hook.bench.fires");
  Counter* actions = registry.GetCounter("rkd.hook.bench.actions_run");
  Counter* errors = registry.GetCounter("rkd.hook.bench.exec_errors");
  LatencyHistogram* fire_ns = registry.GetHistogram("rkd.hook.bench.fire_ns");

  constexpr int kBatches = 64;
  constexpr uint64_t kEventsPerBatch = 10'000;
  Samples per_event_ns;
  for (int b = 0; b < kBatches; ++b) {
    const uint64_t start = MonotonicNowNs();
    for (uint64_t i = 0; i < kEventsPerBatch; ++i) {
      fires->Increment();
      actions->Increment();
      if ((i & 0x3ff) == 0) {
        errors->Increment();
      }
      fire_ns->Record(i & 0xffff);
    }
    const uint64_t elapsed = MonotonicNowNs() - start;
    per_event_ns.Add(static_cast<double>(elapsed) / static_cast<double>(kEventsPerBatch));
  }
  per_event_ns.Sort();
  const double p50 = per_event_ns.PercentileSorted(50);
  const double p99 = per_event_ns.PercentileSorted(99);
  std::printf("telemetry record sequence: p50 %.1f ns/event, p99 %.1f ns/event "
              "(budget %.0f ns median)\n",
              p50, p99, kRecordBudgetNs);
  if (p50 > kRecordBudgetNs) {
    std::fprintf(stderr,
                 "FAIL: median record cost %.1f ns exceeds the %.0f ns budget — "
                 "did a lock or allocation land on the record path?\n",
                 p50, kRecordBudgetNs);
    return 1;
  }
  std::printf("budget check: OK\n\n");
  return 0;
}

}  // namespace
}  // namespace rkd

int main(int argc, char** argv) {
  if (const int rc = rkd::CheckRecordBudget(); rc != 0) {
    return rc;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
