// A1 — lean-monitoring ablation: Table 2 extended from {15, 2} features to
// the full sweep k = 1..15.
//
// The paper's claim is a step further than its table shows: feature
// importance ranking lets the kernel "forego the monitoring of events that
// contribute little useful information" (section 2.1). The sweep makes the
// accuracy-vs-monitoring trade explicit: accuracy saturates after the first
// couple of ranked features, so 13 of 15 monitors are pure overhead for this
// policy.
#include <cstdio>
#include <memory>

#include "src/ml/decision_tree.h"
#include "src/ml/feature_importance.h"
#include "src/ml/mlp.h"
#include "src/ml/quantize.h"
#include "src/sim/sched/cfs_sim.h"
#include "src/sim/sched/rmt_oracle.h"
#include "src/workloads/cpu_jobs.h"

int main() {
  using namespace rkd;

  std::printf("=== Ablation A1: accuracy and JCT vs number of monitored features ===\n\n");

  SchedConfig sched_config;
  sched_config.cores = 4;
  JobConfig job_config;
  job_config.num_tasks = 16;
  job_config.base_work = 8000;
  const JobSpec job = MakeJob(JobKind::kStreamcluster, job_config);

  Dataset train = CollectMigrationDataset(sched_config, job);
  {
    JobConfig alt = job_config;
    alt.seed = 12;
    const JobSpec job2 = MakeJob(JobKind::kStreamcluster, alt);
    CfsSim sim(sched_config);
    (void)sim.Run(job2, {}, &train);
  }
  CfsSim linux_sim(sched_config);
  const SchedMetrics linux_metrics = linux_sim.Run(job);
  std::printf("training decisions: %zu; stock CFS JCT %.3fs\n\n", train.size(),
              linux_metrics.jct_seconds(sched_config.tick_ns));

  const DecisionTree ranker = std::move(DecisionTree::Train(train)).value();
  const std::vector<double> importance = ranker.FeatureImportance();

  // For each k, train on the k MOST important features and, as the control,
  // on the k LEAST important ones. The gap is the information content of the
  // ranking: monitoring the right two features beats monitoring the wrong
  // thirteen.
  const std::vector<size_t> ranked = RankFeatures(importance);
  std::vector<double> inverted(importance.size());
  for (size_t i = 0; i < ranked.size(); ++i) {
    inverted[ranked[i]] = static_cast<double>(i);  // least important ranks first
  }

  std::printf("%10s | %10s %10s %12s | %10s %10s\n", "features", "top-k acc", "JCT (s)",
              "model MACs", "bottom-k", "JCT (s)");
  for (size_t keep = 1; keep <= kSchedNumFeatures; ++keep) {
    const FeatureSelection selection = SelectTopFeatures(train, importance, keep);
    const FeatureSelection anti_selection = SelectTopFeatures(train, inverted, keep);
    MlpConfig mlp_config;
    mlp_config.hidden_sizes = {16, 16};
    mlp_config.epochs = 40;
    Result<Mlp> mlp = Mlp::Train(selection.projected, mlp_config);
    if (!mlp.ok()) {
      continue;
    }
    Result<QuantizedMlp> quantized = QuantizedMlp::FromMlp(*mlp);
    if (!quantized.ok()) {
      continue;
    }
    const uint64_t macs = quantized->Cost().macs;

    RmtOracleConfig oracle_config;
    oracle_config.selected_features = selection.selected;
    RmtMigrationOracle oracle(oracle_config);
    if (!oracle.Init().ok() ||
        !oracle.InstallModel(std::make_shared<QuantizedMlp>(std::move(quantized).value()))
             .ok()) {
      continue;
    }
    CfsSim sim(sched_config);
    const SchedMetrics metrics = sim.Run(job, oracle.AsOracle());

    // Control: the k least-important features.
    double anti_acc = 0.0;
    double anti_jct = 0.0;
    Result<Mlp> anti_mlp = Mlp::Train(anti_selection.projected, mlp_config);
    if (anti_mlp.ok()) {
      Result<QuantizedMlp> anti_quantized = QuantizedMlp::FromMlp(*anti_mlp);
      if (anti_quantized.ok()) {
        RmtOracleConfig anti_config;
        anti_config.selected_features = anti_selection.selected;
        RmtMigrationOracle anti_oracle(anti_config);
        if (anti_oracle.Init().ok() &&
            anti_oracle
                .InstallModel(
                    std::make_shared<QuantizedMlp>(std::move(anti_quantized).value()))
                .ok()) {
          CfsSim anti_sim(sched_config);
          const SchedMetrics anti_metrics = anti_sim.Run(job, anti_oracle.AsOracle());
          anti_acc = anti_metrics.agreement() * 100;
          anti_jct = anti_metrics.jct_seconds(sched_config.tick_ns);
        }
      }
    }

    std::printf("%10zu | %10.2f %10.3f %12lu | %10.2f %10.3f\n", keep,
                metrics.agreement() * 100, metrics.jct_seconds(sched_config.tick_ns),
                static_cast<unsigned long>(macs), anti_acc, anti_jct);
  }

  std::printf("\npaper shape: top-k accuracy saturates immediately (94%%+ at k=2 in the "
              "paper) while bottom-k stays poor until the causal features enter — the "
              "ranking, not the feature count, carries the information\n");
  return 0;
}
