// A6 — budgeted neural architecture search (section 3.2, "Customized ML").
//
// "NAS is usually a time-consuming operation, so it is performed in an
// offline training phase. Once a good neural network architecture has been
// identified and trained, it can be installed to the kernel for inference."
// The harness runs random-search NAS over MLP architectures for the
// scheduler-mimicry task under three work-unit budgets (including the real
// sched_migrate hook budget), then installs each winner through the RMT
// oracle and measures live mimicry accuracy — architecture search with the
// verifier's cost model as a hard constraint.
#include <cstdio>
#include <memory>

#include "src/ml/nas.h"
#include "src/sim/sched/cfs_sim.h"
#include "src/sim/sched/rmt_oracle.h"
#include "src/verifier/verifier.h"
#include "src/workloads/cpu_jobs.h"

int main() {
  using namespace rkd;

  std::printf("=== Ablation A6: NAS under verifier budgets (scheduler task) ===\n\n");

  SchedConfig sched_config;
  JobConfig job_config;
  job_config.num_tasks = 16;
  job_config.base_work = 8000;
  const JobSpec job = MakeJob(JobKind::kStreamcluster, job_config);
  Dataset train = CollectMigrationDataset(sched_config, job);
  std::printf("search dataset: %zu migration decisions, 15 features\n", train.size());
  const uint64_t hook_budget = BudgetForHook(HookKind::kSchedMigrate).max_work_units;
  std::printf("sched_migrate hook budget: %lu work units\n\n",
              static_cast<unsigned long>(hook_budget));

  std::printf("%14s %16s %12s %12s %12s\n", "budget", "winning arch", "val acc (%)",
              "work units", "live acc (%)");
  for (const uint64_t budget : {uint64_t{600}, uint64_t{2000}, hook_budget}) {
    NasConfig config;
    config.trials = 10;
    config.search_epochs = 12;
    config.final_epochs = 40;
    config.work_unit_budget = budget;
    config.seed = 5;
    Result<NasResult> result = RandomSearchNas(train, config);
    if (!result.ok()) {
      std::printf("%14lu   (no architecture fits: %s)\n", static_cast<unsigned long>(budget),
                  result.status().ToString().c_str());
      continue;
    }
    std::string arch = "15";
    for (const size_t width : result->hidden_sizes) {
      arch += "-" + std::to_string(width);
    }
    arch += "-2";

    // Install the winner behind the RMT oracle and measure live mimicry.
    RmtMigrationOracle oracle;
    double live_acc = 0.0;
    if (oracle.Init().ok() &&
        oracle.InstallModel(std::make_shared<QuantizedMlp>(std::move(result->model))).ok()) {
      CfsSim sim(sched_config);
      const SchedMetrics metrics = sim.Run(job, oracle.AsOracle());
      live_acc = metrics.agreement() * 100;
    }
    std::printf("%14lu %16s %12.2f %12lu %12.2f\n", static_cast<unsigned long>(budget),
                arch.c_str(), result->validation_accuracy * 100,
                static_cast<unsigned long>(result->work_units), live_acc);
  }

  std::printf("\nexpected shape: tight budgets force narrow architectures with little (or "
              "no) accuracy loss on this task — the verifier's cost model is a usable NAS "
              "constraint, which is the section 3.2 proposal\n");
  return 0;
}
