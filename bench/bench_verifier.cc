// M4 — section 3.3: verification is an admission-time cost, not a runtime
// one. Measures verifier latency against program size and shape, the guard
// rewriter, and the end-to-end admission path (verify + JIT compile), so
// EXPERIMENTS.md can state the one-time cost a reconfiguration pays.
#include <benchmark/benchmark.h>

#include "src/base/rng.h"
#include "src/bytecode/assembler.h"
#include "src/verifier/guards.h"
#include "src/verifier/verifier.h"
#include "src/vm/jit.h"

namespace {

using namespace rkd;

BytecodeProgram MakeProgram(size_t length, uint64_t seed) {
  Rng rng(seed);
  Assembler a("bench");
  for (int reg = 0; reg <= 9; ++reg) {
    a.MovImm(reg, rng.NextInt(1, 100));
  }
  std::vector<Assembler::Label> pending;
  for (size_t i = 0; i < length; ++i) {
    const int dst = static_cast<int>(rng.NextBounded(10));
    const int src = static_cast<int>(rng.NextBounded(10));
    switch (rng.NextBounded(6)) {
      case 0: a.Add(dst, src); break;
      case 1: a.Sub(dst, src); break;
      case 2: a.Mov(dst, src); break;
      case 3: a.StStack(-8, src); break;
      case 4: a.AndImm(dst, 0xfff); break;
      case 5: {
        auto label = a.NewLabel();
        a.JgeImm(dst, 10, label);
        pending.push_back(label);
        break;
      }
    }
    while (pending.size() > 2) {
      a.Bind(pending.front());
      pending.erase(pending.begin());
    }
  }
  for (auto& label : pending) {
    a.Bind(label);
  }
  a.Mov(0, 1);
  a.Exit();
  return std::move(a.Build()).value();
}

void BM_Verify(benchmark::State& state) {
  // The default generic budget caps at 512 instructions; lift it so the
  // size sweep is about analysis cost, not rejection cost.
  static HookBudget budget = [] {
    HookBudget b = BudgetForHook(HookKind::kGeneric);
    b.max_instructions = 1 << 16;
    b.max_path_length = 1 << 16;
    return b;
  }();
  VerifierConfig config;
  config.budget_override = &budget;
  const Verifier verifier(config);
  const BytecodeProgram program = MakeProgram(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.Verify(program));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Verify)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_VerifyRejecting(benchmark::State& state) {
  // Worst-ish case: a program with many diagnostics (every read is
  // uninitialized) still verifies in one pass.
  BytecodeProgram program;
  program.name = "bad";
  for (int i = 0; i < 256; ++i) {
    Instruction insn;
    insn.opcode = Opcode::kAdd;
    insn.dst = 6;
    insn.src = 7;
    program.code.push_back(insn);
  }
  Instruction exit_insn;
  exit_insn.opcode = Opcode::kExit;
  program.code.push_back(exit_insn);
  const Verifier verifier;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.Verify(program));
  }
}
BENCHMARK(BM_VerifyRejecting);

void BM_GuardInsertion(benchmark::State& state) {
  Assembler a("grants", HookKind::kMemPrefetch);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    a.MovImm(1, 100 + i);
    a.MovImm(2, 1);
    a.Call(HelperId::kPrefetchEmit);
  }
  a.MovImm(0, 0).Exit();
  const BytecodeProgram original = std::move(a.Build()).value();
  for (auto _ : state) {
    BytecodeProgram copy = original;
    benchmark::DoNotOptimize(InsertRateLimitGuards(copy));
  }
}
BENCHMARK(BM_GuardInsertion)->Arg(1)->Arg(8)->Arg(32);

void BM_FullAdmission(benchmark::State& state) {
  // verify + JIT compile: the complete cost of pushing one new action.
  static HookBudget budget = [] {
    HookBudget b = BudgetForHook(HookKind::kGeneric);
    b.max_instructions = 1 << 16;
    b.max_path_length = 1 << 16;
    return b;
  }();
  VerifierConfig config;
  config.budget_override = &budget;
  const Verifier verifier(config);
  const BytecodeProgram program = MakeProgram(static_cast<size_t>(state.range(0)), 5);
  for (auto _ : state) {
    const VerifyReport report = verifier.Verify(program);
    benchmark::DoNotOptimize(report);
    benchmark::DoNotOptimize(CompiledProgram::Compile(program));
  }
}
BENCHMARK(BM_FullAdmission)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
