// M6 — overload-governor behavior under ramped offered load, plus the cost
// of the admission check on an unloaded fire path.
//
// Two claims under test:
//
//  1. Unloaded cost: the governor's fire-path admission is one relaxed load
//     of the program's ladder level, paid whether or not the program is
//     governed — so governing a healthy program must not move its fire cost.
//     Declaring a fire deadline adds the arming clock read plus the entry
//     poll; that variant is reported separately so the deadline's own price
//     stays visible.
//
//  2. Graceful degradation: as the fraction of fires that blow their
//     deadline ramps up (a latency failpoint at the helper site), the ladder
//     engages and most fires route to the fallback oracle. The steady-state
//     shape: light overload below the governor's tolerated rate keeps the
//     learned policy serving every fire (p99 = payload, shed rate 0); heavy
//     sustained overload settles into a probe cycle — the governor re-promotes
//     after `promote_windows` clean degraded ticks, breaches immediately, and
//     re-demotes — so the shed rate caps the fraction of fires paying the
//     payload at the probe duty cycle and the *median* fire collapses to
//     fallback cost while p99 tracks the probes.
//
// Results land in BENCH_overload.json (override with --out=FILE).
//
//   $ build/bench/bench_overload              # ~5s
//   $ build/bench/bench_overload --quick      # CI smoke
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/base/failpoints.h"
#include "src/base/epoch.h"
#include "src/bytecode/assembler.h"
#include "src/rmt/control_plane.h"
#include "src/rmt/governor.h"
#include "src/rmt/hooks.h"
#include "src/telemetry/telemetry.h"

namespace rkd {
namespace {

constexpr uint64_t kDeadlineNs = 100'000;     // 100us fire budget
constexpr uint64_t kPayloadNs = 1'000'000;    // 1ms injected helper latency

// Pure-ALU action (key + 100): the unloaded fire-path variant.
RmtProgramSpec AluSpec(const std::string& name, const std::string& hook_name) {
  Assembler a("add_imm", HookKind::kGeneric);
  a.Mov(0, 1).AddImm(0, 100).Exit();
  RmtProgramSpec spec;
  spec.name = name;
  RmtTableSpec table;
  table.name = "tab";
  table.hook_point = hook_name;
  table.actions.push_back(std::move(a.Build()).value());
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  return spec;
}

// Helper-calling action with a long straight-line body so both VM tiers
// cross a deadline poll boundary after the "vm.helper" failpoint site has
// injected its latency (same shape as the governor tests and chaos storm).
RmtProgramSpec SlowSpec(const std::string& name, const std::string& hook_name) {
  Assembler a("slow_add", HookKind::kGeneric);
  a.Call(HelperId::kGetTime);
  a.Mov(0, 1);
  for (int i = 0; i < 160; ++i) {
    a.AddImm(0, 1);
  }
  a.Exit();
  RmtProgramSpec spec;
  spec.name = name;
  RmtTableSpec table;
  table.name = "tab";
  table.hook_point = hook_name;
  table.actions.push_back(std::move(a.Build()).value());
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  return spec;
}

GovernorConfig RampGovernor() {
  GovernorConfig config;
  config.window_fires = 64;
  // Tolerate up to 10% overruns before breaching a window, so the 1/16 ramp
  // point stays at kFull and shows the un-governed p99 for contrast.
  config.max_deadline_rate = 0.10;
  config.demote_windows = 1;
  config.promote_windows = 2;
  config.shed_probe_ticks = 4;
  return config;
}

// ns/fire over `iters` fires, minimum of `reps` passes (minimum because the
// quantity of interest is the cost floor, not scheduler noise).
double MeasureNsPerFire(HookRegistry& hooks, HookId hook, uint64_t iters, int reps) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const uint64_t start = MonotonicNowNs();
    int64_t sink = 0;
    for (uint64_t i = 0; i < iters; ++i) {
      sink += hooks.Fire(hook, i & 0xff);
    }
    const uint64_t elapsed = MonotonicNowNs() - start;
    if (sink == 0) {
      std::fprintf(stderr, "unexpected zero sink\n");
    }
    const double ns = static_cast<double>(elapsed) / static_cast<double>(iters);
    if (rep == 0 || ns < best) {
      best = ns;
    }
  }
  return best;
}

struct UnloadedResult {
  double ungoverned_ns = 0.0;
  double governed_ns = 0.0;
  double deadline_ns = 0.0;
  double overhead_ratio = 0.0;
  bool regression = false;
};

// Phase 1: the same ALU program fired three ways — bare, governed (no
// deadline declared), and governed with a 1s deadline that never trips.
UnloadedResult RunUnloaded(bool quick) {
  HookRegistry hooks;
  ControlPlane cp(&hooks);
  const HookId hook = *hooks.Register("bench.unloaded", HookKind::kGeneric);

  Result<ControlPlane::ProgramHandle> handle =
      cp.Install(AluSpec("unloaded", "bench.unloaded"));
  if (!handle.ok()) {
    std::fprintf(stderr, "FAIL: install: %s\n", handle.status().message().c_str());
    std::exit(1);
  }

  // Calibrate iteration count off a warmup burst (~0.2s per variant; quick
  // ~20ms) so the bench is host-speed independent.
  const uint64_t warmup = quick ? 20'000 : 100'000;
  const uint64_t warm_start = MonotonicNowNs();
  (void)MeasureNsPerFire(hooks, hook, warmup, 1);
  const uint64_t warm_ns = MonotonicNowNs() - warm_start;
  const double fires_per_sec =
      static_cast<double>(warmup) * 1e9 / static_cast<double>(warm_ns > 0 ? warm_ns : 1);
  const uint64_t iters = static_cast<uint64_t>(fires_per_sec * (quick ? 0.02 : 0.2)) + 1;
  const int reps = quick ? 3 : 5;

  UnloadedResult r;
  r.ungoverned_ns = MeasureNsPerFire(hooks, hook, iters, reps);

  OverloadGovernor governor(&cp);
  if (!governor.Govern(*handle, RampGovernor()).ok()) {
    std::fprintf(stderr, "FAIL: govern\n");
    std::exit(1);
  }
  r.governed_ns = MeasureNsPerFire(hooks, hook, iters, reps);

  // Re-install with a generous declared deadline: every fire now arms the
  // budget and runs the entry poll, which is the deadline's own cost.
  if (!governor.Ungovern(*handle).ok() || !cp.Uninstall(*handle).ok()) {
    std::fprintf(stderr, "FAIL: remove\n");
    std::exit(1);
  }
  RmtProgramSpec armed = AluSpec("unloaded_deadline", "bench.unloaded");
  armed.fire_deadline_ns = 1'000'000'000;  // 1s: never overruns
  Result<ControlPlane::ProgramHandle> armed_handle = cp.Install(std::move(armed));
  if (!armed_handle.ok() || !governor.Govern(*armed_handle, RampGovernor()).ok()) {
    std::fprintf(stderr, "FAIL: reinstall with deadline\n");
    std::exit(1);
  }
  r.deadline_ns = MeasureNsPerFire(hooks, hook, iters, reps);

  r.overhead_ratio = r.governed_ns / (r.ungoverned_ns > 0 ? r.ungoverned_ns : 1);
  // Generous bound: the governed path adds one relaxed load, so anything
  // beyond 30% is a real regression, not timer noise.
  r.regression = r.overhead_ratio > 1.30;

  std::printf("unloaded: %7.1f ns/fire bare, %7.1f governed (x%.3f), %7.1f with deadline\n",
              r.ungoverned_ns, r.governed_ns, r.overhead_ratio, r.deadline_ns);
  return r;
}

struct RampPoint {
  double overrun_fraction = 0.0;  // offered: fraction of fires carrying the payload
  uint64_t fires = 0;             // steady-state measurement fires
  double shed_rate = 0.0;         // (degraded + shed) / fires in steady state
  double p50_ns = 0.0;            // steady-state median fire cost
  double p99_ns = 0.0;            // steady-state fire p99
  std::string final_level;
};

// Phase 2: ramp the offered overload (every-Nth latency failpoint) and
// record the governor's steady-state response at each point.
std::vector<RampPoint> RunRamp(bool quick) {
  HookRegistry hooks;
  ControlPlane cp(&hooks);
  const HookId hook = *hooks.Register("bench.ramp", HookKind::kGeneric);
  if (!hooks
           .SetFallbackOracle(hook,
                              [](uint64_t key, std::span<const int64_t>) {
                                return static_cast<int64_t>(key) + 1;
                              })
           .ok()) {
    std::fprintf(stderr, "FAIL: fallback oracle\n");
    std::exit(1);
  }

  RmtProgramSpec spec = SlowSpec("ramped", "bench.ramp");
  spec.fire_deadline_ns = kDeadlineNs;
  Result<ControlPlane::ProgramHandle> handle = cp.Install(std::move(spec));
  if (!handle.ok()) {
    std::fprintf(stderr, "FAIL: install: %s\n", handle.status().message().c_str());
    std::exit(1);
  }

  OverloadGovernor governor(&cp);

  // every_nth = 0 means no payload at all. 1 = every fire.
  constexpr uint64_t kRampEveryNth[] = {0, 16, 4, 2, 1};
  const GovernorConfig config = RampGovernor();
  const int adapt_rounds = quick ? 4 : 8;
  const int measure_rounds = quick ? 4 : 16;

  std::vector<RampPoint> points;
  for (const uint64_t every_nth : kRampEveryNth) {
    // Fresh ladder per point: Govern resets to kFull with a new window.
    if (governor.IsGoverned(*handle) && !governor.Ungovern(*handle).ok()) {
      std::fprintf(stderr, "FAIL: ungovern\n");
      std::exit(1);
    }
    if (!governor.Govern(*handle, config).ok()) {
      std::fprintf(stderr, "FAIL: govern\n");
      std::exit(1);
    }
    FailpointRegistry::Global().DisableAll();
    if (every_nth > 0) {
      FailpointSpec fault;
      fault.mode = every_nth == 1 ? FailpointMode::kAlways : FailpointMode::kEveryNth;
      fault.n = every_nth;
      fault.latency_ns = kPayloadNs;
      FailpointRegistry::Global().Enable("vm.helper", fault);
    }

    const HookMetrics metrics = hooks.MetricsOf(hook);
    auto run_rounds = [&](int rounds) {
      for (int round = 0; round < rounds; ++round) {
        for (uint64_t i = 0; i < config.window_fires; ++i) {
          (void)hooks.Fire(hook, i);
        }
        (void)governor.Tick();
      }
    };

    run_rounds(adapt_rounds);  // let the ladder settle

    HistogramWindow window;
    window.Reset(metrics.fire_ns());
    const uint64_t fires0 = metrics.fires();
    const uint64_t fallback0 = metrics.degraded_fires() + metrics.shed_fires();
    run_rounds(measure_rounds);

    RampPoint p;
    p.overrun_fraction = every_nth == 0 ? 0.0 : 1.0 / static_cast<double>(every_nth);
    p.fires = metrics.fires() - fires0;
    const uint64_t fallback = metrics.degraded_fires() + metrics.shed_fires() - fallback0;
    p.shed_rate = p.fires > 0
                      ? static_cast<double>(fallback) / static_cast<double>(p.fires)
                      : 0.0;
    p.p50_ns = window.DeltaPercentile(metrics.fire_ns(), 50.0);
    p.p99_ns = window.DeltaPercentile(metrics.fire_ns(), 99.0);
    p.final_level = GovLevelName(governor.LevelOf(*handle));
    points.push_back(p);
    std::printf("ramp %5.3f overrun: shed_rate %.3f  p50 %8.0f ns  p99 %10.0f ns  level %s\n",
                p.overrun_fraction, p.shed_rate, p.p50_ns, p.p99_ns, p.final_level.c_str());
  }
  FailpointRegistry::Global().DisableAll();
  GlobalEpochDomain().Synchronize();
  (void)GlobalEpochDomain().TryAdvance();
  return points;
}

int Run(const std::string& out_path, bool quick) {
  const UnloadedResult unloaded = RunUnloaded(quick);
  const std::vector<RampPoint> ramp = RunRamp(quick);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"overload\",\n"
               "  \"deadline_ns\": %" PRIu64 ",\n"
               "  \"payload_ns\": %" PRIu64 ",\n"
               "  \"unloaded\": {\n"
               "    \"ungoverned_ns_per_fire\": %.1f,\n"
               "    \"governed_ns_per_fire\": %.1f,\n"
               "    \"governed_deadline_ns_per_fire\": %.1f,\n"
               "    \"overhead_ratio\": %.3f,\n"
               "    \"regression\": %s\n"
               "  },\n"
               "  \"ramp\": [\n",
               kDeadlineNs, kPayloadNs, unloaded.ungoverned_ns, unloaded.governed_ns,
               unloaded.deadline_ns, unloaded.overhead_ratio,
               unloaded.regression ? "true" : "false");
  for (size_t i = 0; i < ramp.size(); ++i) {
    std::fprintf(out,
                 "    {\"overrun_fraction\": %.4f, \"fires\": %" PRIu64
                 ", \"shed_rate\": %.4f, \"p50_ns\": %.0f, \"p99_ns\": %.0f,"
                 " \"final_level\": \"%s\"}%s\n",
                 ramp[i].overrun_fraction, ramp[i].fires, ramp[i].shed_rate, ramp[i].p50_ns,
                 ramp[i].p99_ns, ramp[i].final_level.c_str(),
                 i + 1 < ramp.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return unloaded.regression ? 1 : 0;
}

}  // namespace
}  // namespace rkd

int main(int argc, char** argv) {
  std::string out_path = "BENCH_overload.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out=FILE]\n", argv[0]);
      return 2;
    }
  }
  return rkd::Run(out_path, quick);
}
