// M: critical-path analysis throughput + advisory fire-path neutrality.
//
// Two asserted claims from DESIGN.md "Trace-derived bottleneck analysis":
//
//   1. Analysis is cheap enough to run on every control-plane tick: the
//      CriticalPathAnalyzer must sustain a conservative spans/second floor
//      over a realistic snapshot (fire trees of root + table.lookup +
//      vm.exec + ml.eval, plus orphans from ring eviction).
//   2. Storing a BottleneckAdvisory on a program costs the fire path
//      nothing: the advisory lives on control-plane-owned state the fire
//      path never reads, so an *untraced* fire with an advisory installed
//      must be within noise of one without. A regression here means
//      advisory state leaked onto the dispatch path.
//
// Results land in BENCH_bottleneck.json (override with --out=FILE); --quick
// shrinks the snapshot and batch counts for CI smoke. Pass --benchmark to
// run the google-benchmark reporters instead.
//
// Floor rationale: the analyzer processes ~1-5M spans/s on the reference
// container (std::map grouping dominates). The 100k spans/s floor is ~10-50x
// headroom; at the default 1024-slot-per-thread ring a full analysis is
// well under a millisecond, far below TickTiering cadence.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/base/stats.h"
#include "src/bytecode/assembler.h"
#include "src/rmt/control_plane.h"
#include "src/telemetry/bottleneck.h"
#include "src/telemetry/span.h"
#include "src/telemetry/telemetry.h"

namespace rkd {
namespace {

constexpr double kAnalyzeFloorSpansPerSec = 100'000.0;
constexpr double kUntracedSlackNs = 25.0;    // absolute regression floor
constexpr double kUntracedSlackRatio = 0.20; // relative regression bound

// A realistic snapshot: `fires` four-span trees across two hooks plus a
// sprinkling of orphans (evicted parents) and control-plane spans.
std::vector<SpanRecord> MakeSnapshot(uint64_t fires) {
  std::vector<SpanRecord> spans;
  spans.reserve(fires * 4 + fires / 8 + 2);
  uint64_t id = 1;
  auto push = [&spans](uint64_t trace, uint64_t span, uint64_t parent, uint64_t start,
                       uint64_t end, const char* name) {
    SpanRecord record;
    record.trace_id = trace;
    record.span_id = span;
    record.parent_id = parent;
    record.start_ns = start;
    record.end_ns = end;
    std::strncpy(record.name, name, kMaxSpanNameLen);
    spans.push_back(record);
  };
  for (uint64_t f = 0; f < fires; ++f) {
    const uint64_t t0 = f * 1000;
    const uint64_t root = id;
    const char* hook = (f % 2 == 0) ? "hook.mem.page_fault" : "hook.sched.migrate";
    push(f + 1, id++, 0, t0, t0 + 400 + f % 64, hook);
    push(f + 1, id++, root, t0 + 10, t0 + 40 + f % 16, "table.lookup");
    const uint64_t exec = id;
    push(f + 1, id++, root, t0 + 60, t0 + 360, "vm.exec");
    push(f + 1, id++, exec, t0 + 80, t0 + 300 + f % 32, "ml.eval");
    if (f % 8 == 0) {
      // Orphan: its parent was evicted from the ring.
      push(fires + f + 1, id + 100000, id + 99999, t0 + 500, t0 + 520, "vm.exec");
      ++id;
    }
  }
  push(2 * fires + 1, id++, 0, 0, 50, "cp.install");
  push(2 * fires + 2, id++, 0, 60, 90, "guardian.tick");
  return spans;
}

double MedianAnalyzeSpansPerSec(const std::vector<SpanRecord>& spans, int batches) {
  const CriticalPathAnalyzer analyzer;
  Samples per_span_ns;
  for (int b = 0; b < batches; ++b) {
    const uint64_t start = MonotonicNowNs();
    const BottleneckReport report = analyzer.Analyze(spans);
    const uint64_t elapsed = MonotonicNowNs() - start;
    benchmark::DoNotOptimize(report.trees);
    per_span_ns.Add(static_cast<double>(elapsed) / static_cast<double>(spans.size()));
  }
  per_span_ns.Sort();
  const double ns_per_span = per_span_ns.PercentileSorted(50);
  return ns_per_span > 0 ? 1e9 / ns_per_span : 0.0;
}

// Same dispatch rig as bench_trace_overhead: one hook, one two-instruction
// action installed through the control plane.
struct FireRig {
  HookRegistry hooks;
  ControlPlane control_plane{&hooks};
  HookId hook = -1;
  ControlPlane::ProgramHandle handle = -1;

  bool Init() {
    Result<HookId> registered = hooks.Register("bench.hook", HookKind::kGeneric);
    if (!registered.ok()) {
      return false;
    }
    hook = *registered;
    Assembler as("bench_action", HookKind::kGeneric);
    as.MovImm(0, 1);
    as.Exit();
    RmtProgramSpec spec;
    spec.name = "bench_prog";
    RmtTableSpec table;
    table.name = "bench_tab";
    table.hook_point = "bench.hook";
    table.actions.push_back(std::move(as.Build()).value());
    table.default_action = 0;
    spec.tables.push_back(std::move(table));
    Result<ControlPlane::ProgramHandle> installed = control_plane.Install(spec);
    if (!installed.ok()) {
      return false;
    }
    handle = *installed;
    return true;
  }
};

double MedianFireNs(FireRig& rig, int batches, uint64_t fires_per_batch) {
  int64_t key = 0;
  for (uint64_t i = 0; i < fires_per_batch; ++i) {
    benchmark::DoNotOptimize(rig.hooks.Fire(rig.hook, key++));
  }
  Samples per_fire_ns;
  for (int b = 0; b < batches; ++b) {
    const uint64_t start = MonotonicNowNs();
    for (uint64_t i = 0; i < fires_per_batch; ++i) {
      benchmark::DoNotOptimize(rig.hooks.Fire(rig.hook, key++));
    }
    const uint64_t elapsed = MonotonicNowNs() - start;
    per_fire_ns.Add(static_cast<double>(elapsed) / static_cast<double>(fires_per_batch));
  }
  per_fire_ns.Sort();
  return per_fire_ns.PercentileSorted(50);
}

BottleneckAdvisory MakeAdvisory() {
  BottleneckAdvisory advisory;
  advisory.valid = true;
  advisory.label = BottleneckLabel::kMlEvalBound;
  advisory.evidence.fires = 4096;
  advisory.evidence.critical_path_ns = 1 << 20;
  advisory.evidence.ml_ns = 1 << 19;
  CriticalContributor ml;
  ml.name = "ml.eval";
  ml.count = 4096;
  ml.exclusive_ns = 1 << 19;
  advisory.contributors.push_back(ml);
  return advisory;
}

// --- google-benchmark reporting (--benchmark) ------------------------------

void BM_Analyze(benchmark::State& state) {
  const std::vector<SpanRecord> spans = MakeSnapshot(static_cast<uint64_t>(state.range(0)));
  const CriticalPathAnalyzer analyzer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.Analyze(spans));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(spans.size()));
}
BENCHMARK(BM_Analyze)->Arg(256)->Arg(4096);

void BM_FireWithAdvisoryInstalled(benchmark::State& state) {
  FireRig rig;
  if (!rig.Init()) {
    state.SkipWithError("install failed");
    return;
  }
  rig.hooks.telemetry().tracer().set_sample_every(0);
  if (!rig.control_plane.SetBottleneckAdvisory(rig.handle, MakeAdvisory()).ok()) {
    state.SkipWithError("advisory install failed");
    return;
  }
  int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.hooks.Fire(rig.hook, key++));
  }
}
BENCHMARK(BM_FireWithAdvisoryInstalled);

// --- asserted budgets + JSON emission --------------------------------------

int RunBudgetCheck(const std::string& out_path, bool quick) {
  const uint64_t fires = quick ? 2'000 : 40'000;
  const int analyze_batches = quick ? 9 : 25;
  const int fire_batches = quick ? 25 : 48;
  const uint64_t fires_per_batch = quick ? 2'000 : 4'000;

  const std::vector<SpanRecord> snapshot = MakeSnapshot(fires);
  const double spans_per_sec = MedianAnalyzeSpansPerSec(snapshot, analyze_batches);

  FireRig rig;
  if (!rig.Init()) {
    std::fprintf(stderr, "FAIL: bench rig install failed\n");
    return 1;
  }
  rig.hooks.telemetry().tracer().set_sample_every(0);
  const double baseline_ns = MedianFireNs(rig, fire_batches, fires_per_batch);
  if (!rig.control_plane.SetBottleneckAdvisory(rig.handle, MakeAdvisory()).ok()) {
    std::fprintf(stderr, "FAIL: advisory install failed\n");
    return 1;
  }
  const double advisory_ns = MedianFireNs(rig, fire_batches, fires_per_batch);

  const double delta_ns = advisory_ns - baseline_ns;
  const double bound_ns = baseline_ns * kUntracedSlackRatio > kUntracedSlackNs
                              ? baseline_ns * kUntracedSlackRatio
                              : kUntracedSlackNs;

  std::printf("analysis throughput:        %10.0f spans/s median (%zu-span snapshot, floor %.0f)\n",
              spans_per_sec, snapshot.size(), kAnalyzeFloorSpansPerSec);
  std::printf("untraced fire, no advisory: %8.1f ns median\n", baseline_ns);
  std::printf("untraced fire, advisory:    %8.1f ns median (delta %+.1f ns, bound %.1f ns)\n",
              advisory_ns, delta_ns, bound_ns);

  int failures = 0;
  if (spans_per_sec < kAnalyzeFloorSpansPerSec) {
    std::fprintf(stderr,
                 "FAIL: analysis sustains only %.0f spans/s, below the %.0f floor — the "
                 "analyzer must stay cheap enough to run on every control-plane tick\n",
                 spans_per_sec, kAnalyzeFloorSpansPerSec);
    ++failures;
  }
  if (delta_ns > bound_ns) {
    std::fprintf(stderr,
                 "FAIL: an installed advisory costs %.1f ns/fire over baseline (bound "
                 "%.1f ns) — advisory state must never be read on the fire path\n",
                 delta_ns, bound_ns);
    ++failures;
  }
  if (failures == 0) {
    std::printf("budget checks: OK\n");
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"bottleneck\",\n"
               "  \"snapshot_spans\": %zu,\n"
               "  \"analyze_spans_per_sec\": %.0f,\n"
               "  \"analyze_floor_spans_per_sec\": %.0f,\n"
               "  \"untraced_fire_ns\": %.2f,\n"
               "  \"untraced_fire_with_advisory_ns\": %.2f,\n"
               "  \"advisory_delta_ns\": %.2f,\n"
               "  \"advisory_bound_ns\": %.2f,\n"
               "  \"ok\": %s\n"
               "}\n",
               snapshot.size(), spans_per_sec, kAnalyzeFloorSpansPerSec, baseline_ns,
               advisory_ns, delta_ns, bound_ns, failures == 0 ? "true" : "false");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace rkd

int main(int argc, char** argv) {
  bool gbench = false;
  bool quick = false;
  std::string out_path = "BENCH_bottleneck.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
      gbench = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  if (gbench) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  return rkd::RunBudgetCheck(out_path, quick);
}
