// A5 — multi-process isolation: the per-application match/action story.
//
// Section 3.1: "Another set of entries may monitor per-application patterns
// ... The match fields of the entry control the pattern matching methods —
// e.g., ... PIDs for per-application entries." The payoff is that one
// learned datapath serves concurrent applications with *different* access
// patterns without cross-contamination: the match key separates their
// execution contexts, histories, and (through per-window vocabularies)
// their delta classes.
//
// The harness interleaves the two Table-1 workloads plus a random-access
// process into a single trace and compares each prefetcher's per-run
// metrics against its single-process Table-1 numbers. Expected shape: the
// RMT/ML prefetcher retains most of its single-process accuracy under
// interleaving (contexts are per-PID), while the cache-contention cost hits
// every policy's coverage roughly equally.
#include <cstdio>

#include "src/sim/mem/leap.h"
#include "src/sim/mem/memory_sim.h"
#include "src/sim/mem/ml_prefetcher.h"
#include "src/sim/mem/readahead.h"
#include "src/workloads/access_trace.h"

namespace {

using namespace rkd;

MemSimConfig SimConfig() {
  MemSimConfig config;
  config.frame_capacity = 384;  // three working sets share the cache
  config.hit_ns = 200;
  config.fault_ns = 80000;
  config.prefetch_issue_ns = 2500;
  return config;
}

struct Row {
  double accuracy;
  double coverage;
  double completion_s;
};

Row Run(Prefetcher& prefetcher, const AccessTrace& trace) {
  MemorySim sim(SimConfig(), &prefetcher);
  const MemMetrics metrics = sim.Run(trace);
  return Row{metrics.accuracy() * 100, metrics.coverage() * 100,
             metrics.completion_seconds()};
}

}  // namespace

int main() {
  std::printf("=== Ablation A5: multi-process interleaving (per-PID entries) ===\n\n");

  Rng rng(31);
  VideoResizeConfig video;
  video.pid = 1;
  MatrixConvConfig conv;
  conv.pid = 2;
  conv.height = 240;  // trim so the three traces have comparable lengths
  const AccessTrace video_trace = MakeVideoResizeTrace(video, rng);
  const AccessTrace conv_trace = MakeMatrixConvTrace(conv, rng);
  const AccessTrace random_trace = MakeRandomTrace(3, 1 << 20, 3000, rng);
  const AccessTrace mixed = Interleave({video_trace, conv_trace, random_trace});
  std::printf("mixed trace: %zu accesses from 3 processes (video / conv / random)\n\n",
              mixed.size());

  std::printf("%-16s %10s %10s %12s\n", "policy", "acc (%)", "cov (%)", "compl (s)");
  {
    ReadaheadPrefetcher linux_prefetcher;
    const Row row = Run(linux_prefetcher, mixed);
    std::printf("%-16s %10.2f %10.2f %12.3f\n", "linux", row.accuracy, row.coverage,
                row.completion_s);
  }
  {
    LeapPrefetcher leap;
    const Row row = Run(leap, mixed);
    std::printf("%-16s %10.2f %10.2f %12.3f\n", "leap", row.accuracy, row.coverage,
                row.completion_s);
  }
  {
    RmtMlPrefetcher ml;
    if (ml.Init().ok()) {
      const Row row = Run(ml, mixed);
      std::printf("%-16s %10.2f %10.2f %12.3f\n", "rmt_ml_dt", row.accuracy, row.coverage,
                  row.completion_s);
      std::printf("\nrmt_ml_dt trained %lu windows across the mixed stream; context store "
                  "held %zu per-PID entries\n",
                  static_cast<unsigned long>(ml.windows_trained()),
                  ml.control_plane().Get(ml.handle())->context().size());
    }
  }

  std::printf("\nexpected shape: the learned policy keeps its lead under interleaving "
              "because histories and vocabularies are per-PID; the random process drags "
              "every policy's coverage down equally (nothing is learnable there)\n");
  return 0;
}
