// M7 — the three-tier execution ladder, end to end, with asserted floors.
//
// Two hot scenarios, each run on every tier with raw per-invocation timing:
//
//   dispatch_hot_lookup — a classify-style action whose body is sixteen
//     constant-key lookups on a frozen hash map plus an ALU tail. Tier 2
//     pays one generic hash probe per lookup; tier 3 folds every lookup to
//     an immediate at specialization time and fuses the body into one
//     superblock, so the fire is a short constant-stream walk behind a
//     wait-free guard check.
//
//   mlp_inference — an MLP action at per-packet kernel-datapath size
//     (vector load, 16x8 input layer, relu, 4x16 classifier head, argmax —
//     the same shape bench_vm_dispatch's vector action uses). Tier 2 runs
//     the generic matmul through the tensor registry and zero-constructs
//     the whole ExecState per fire; tier 3 burns the weight pointers, fuses
//     relu/argmax into the tile kernels, and resets only the state the
//     program can observe.
//
// Asserted floors (exit 1 on violation, so CI catches tier-ladder
// regressions the same way bench_overload catches governor ones):
//
//   1. Hot floor, dispatch: tier 3 (guard check + specialized run) must be
//      >= 1.5x faster than tier 2 on the hot const-key-lookup scenario.
//      Folding turns every probe into an immediate, so the measured win is
//      ~2.5x; the asserted floor leaves headroom for noisy CI hosts.
//   2. Hot floor, ML: >= 1.15x on the MLP scenario. The bound is lower by
//      physics, not by implementation: the generic Q16.16 MatVec already
//      auto-vectorizes to MAC-throughput parity with the tile kernels, so
//      tier 3's ML win is overhead elimination (dispatch, state reset,
//      registry indirection) — typically ~1.35-1.45x at this model size,
//      but single-core hosts drift enough that the floor keeps margin.
//   3. Deopt-within-noise: a fire that fails the guard (stale map version)
//      and falls back to tier 2 must cost within 30% of a plain tier-2 fire
//      — the deopt path is a few relaxed loads, not a cliff.
//
// Results land in BENCH_vm_tiers.json (override with --out=FILE).
//
//   $ build/bench/bench_vm_tiers              # ~2s
//   $ build/bench/bench_vm_tiers --quick      # CI smoke
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/bytecode/assembler.h"
#include "src/ml/model_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/vm/context_store.h"
#include "src/vm/jit.h"
#include "src/vm/maps.h"
#include "src/vm/specialize.h"
#include "src/vm/vm.h"

namespace rkd {
namespace {

constexpr double kHotFloor = 1.5;    // dispatch scenario: tier3-vs-tier2 speedup
constexpr double kMlFloor = 1.15;    // ML scenario: MAC-bound, win is overhead
constexpr double kDeoptNoiseCeiling = 1.30;  // deopted fire vs plain tier 2

// ns/run over `iters` runs, minimum of `reps` passes (minimum because the
// quantity of interest is the cost floor, not scheduler noise).
template <typename Fn>
double MeasureNsPerRun(Fn&& run, uint64_t iters, int reps) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const uint64_t start = MonotonicNowNs();
    int64_t sink = 0;
    for (uint64_t i = 0; i < iters; ++i) {
      sink += run();
    }
    const uint64_t elapsed = MonotonicNowNs() - start;
    if (sink == INT64_MIN) {
      std::fprintf(stderr, "impossible sink\n");  // defeat dead-code removal
    }
    const double ns = static_cast<double>(elapsed) / static_cast<double>(iters);
    if (rep == 0 || ns < best) {
      best = ns;
    }
  }
  return best;
}

struct ScenarioResult {
  std::string name;
  double interp_ns = 0.0;
  double tier2_ns = 0.0;
  double tier3_ns = 0.0;   // guard check + specialized run
  double deopt_ns = 0.0;   // failed guard check + tier-2 run
  double speedup_tier3_vs_tier2 = 0.0;
  double deopt_overhead_ratio = 0.0;
  size_t superblocks = 0;
  size_t folded_lookups = 0;
  size_t tile_kernels = 0;
  double floor = 0.0;  // asserted speedup floor for this scenario
  bool floor_ok = false;
  bool deopt_within_noise = false;
};

// Everything one scenario needs to measure: the program, its environment,
// and the map-version cell the deopt phase bumps to stale the guard.
struct Scenario {
  std::string name;
  BytecodeProgram program;
  MapSet maps;
  ModelRegistry models;
  TensorRegistry tensors;
  ContextStore ctxt;
  // Stand-in for the owning RmtTable's snapshot version: bumping it stales
  // the guard of any specialization, even one with no folded map state.
  std::atomic<uint64_t> table_version{0};
  std::vector<int64_t> args;
  double floor = kHotFloor;  // asserted tier3-vs-tier2 speedup for this scenario

  VmEnv Env() {
    VmEnv env;
    env.maps = &maps;
    env.models = &models;
    env.tensors = &tensors;
    env.ctxt = &ctxt;
    return env;
  }

  SpecializeContext Context() {
    SpecializeContext ctx;
    ctx.maps = &maps;
    ctx.models = &models;
    ctx.tensors = &tensors;
    ctx.map_write_version = maps.write_version_cell();
    ctx.table_version = &table_version;
    return ctx;
  }
};

// Sixteen constant-key lookups on a frozen hash map (the classify-table
// shape: config keyed by policy constants), result mixed with the fire
// argument so the body is not fully foldable to one constant. Tier 2 pays a
// hash probe per lookup; tier 3 folds each to an immediate.
void BuildDispatchScenario(Scenario& s) {
  s.name = "dispatch_hot_lookup";
  Result<int64_t> map_id = s.maps.Create(MapKind::kHash, 64);
  if (!map_id.ok()) {
    std::fprintf(stderr, "FAIL: map create: %s\n", map_id.status().message().c_str());
    std::exit(1);
  }
  for (int64_t k = 0; k < 16; ++k) {
    if (!s.maps.Get(*map_id)->Update(k * 7, (k + 1) * 10)) {
      std::fprintf(stderr, "FAIL: map update\n");
      std::exit(1);
    }
  }
  Assembler a("dispatch_hot");
  a.DeclareMaps(1);
  a.Mov(0, 1);
  for (int64_t k = 0; k < 16; ++k) {
    a.MovImm(2, k * 7);
    a.MapLookup(3, 2, *map_id);
    a.Add(0, 3);
  }
  a.AndImm(0, 0x7fffffff);
  a.Exit();
  Result<BytecodeProgram> built = a.Build();
  if (!built.ok()) {
    std::fprintf(stderr, "FAIL: assemble: %s\n", built.status().message().c_str());
    std::exit(1);
  }
  s.program = std::move(built).value();
  s.args = {5};
}

// An MLP action at per-packet kernel-datapath size: vector load from the
// context store, a tall 16x8 input layer (weight-stationary), relu, a wide
// 4x16 classifier head (output-stationary), argmax back into r0. Small on
// purpose: it is the size class the paper's per-packet decision models live
// in, and the regime where tier 3 has real headroom. At >= 32x32 both
// tiers' MAC loops are throughput-bound (the generic MatVec
// auto-vectorizes), so larger layers only dilute the measurable win.
void BuildMlpScenario(Scenario& s) {
  s.name = "mlp_inference";
  s.floor = kMlFloor;
  FixedMatrix w1(16, 8);
  FixedMatrix w2(4, 16);
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<int32_t>(state % 131072) - 65536;  // ~[-1, 1) in Q16.16
  };
  for (auto& v : w1.data()) {
    v = next();
  }
  for (auto& v : w2.data()) {
    v = next();
  }
  s.tensors.Add(std::move(w1));
  s.tensors.Add(std::move(w2));
  ContextEntry* entry = s.ctxt.FindOrCreate(1);
  for (int i = 0; i < 8; ++i) {
    entry->features[i] = (i + 1) << 16;
  }
  Assembler a("mlp_action");
  a.DeclareTensors(2);
  a.VecLdCtxt(0, 1);
  a.MatMul(1, 0, 0);
  a.VecRelu(1, 1);
  a.MatMul(2, 1, 1);
  a.VecArgmax(0, 2);
  a.Exit();
  Result<BytecodeProgram> built = a.Build();
  if (!built.ok()) {
    std::fprintf(stderr, "FAIL: assemble: %s\n", built.status().message().c_str());
    std::exit(1);
  }
  s.program = std::move(built).value();
  s.args = {1};
}

ScenarioResult RunScenario(Scenario& s, bool quick) {
  const VmEnv env = s.Env();
  const Interpreter interp(env);
  Result<CompiledProgram> compiled = CompiledProgram::Compile(s.program);
  if (!compiled.ok()) {
    std::fprintf(stderr, "FAIL: compile: %s\n", compiled.status().message().c_str());
    std::exit(1);
  }
  Result<SpecializedProgram> spec = SpecializedProgram::Specialize(s.program, s.Context());
  if (!spec.ok()) {
    std::fprintf(stderr, "FAIL: specialize: %s\n", spec.status().message().c_str());
    std::exit(1);
  }
  const std::span<const int64_t> args(s.args);

  // Correctness gate before any timing: the ladder must agree on the result.
  const Result<int64_t> r1 = interp.Run(s.program, args);
  const Result<int64_t> r2 = compiled->Run(env, args);
  const Result<int64_t> r3 = spec->Run(env, args);
  if (!r1.ok() || !r2.ok() || !r3.ok() || *r1 != *r2 || *r2 != *r3) {
    std::fprintf(stderr, "FAIL: %s tiers disagree\n", s.name.c_str());
    std::exit(1);
  }

  // Calibrate iteration count off a tier-2 warmup burst so the bench is
  // host-speed independent (~0.1s per variant; quick ~10ms).
  const uint64_t warmup = quick ? 2'000 : 20'000;
  const uint64_t warm_start = MonotonicNowNs();
  (void)MeasureNsPerRun([&] { return *compiled->Run(env, args); }, warmup, 1);
  const uint64_t warm_ns = MonotonicNowNs() - warm_start;
  const double runs_per_sec =
      static_cast<double>(warmup) * 1e9 / static_cast<double>(warm_ns > 0 ? warm_ns : 1);
  const uint64_t iters = static_cast<uint64_t>(runs_per_sec * (quick ? 0.02 : 0.1)) + 1;
  const int reps = quick ? 5 : 7;

  ScenarioResult r;
  r.name = s.name;
  r.superblocks = spec->superblocks();
  r.folded_lookups = spec->folded_lookups();
  r.tile_kernels = spec->tile_kernels();

  r.interp_ns = MeasureNsPerRun([&] { return *interp.Run(s.program, args); }, iters, reps);
  // Interleave the tier-2 and tier-3 windows rep by rep: host-speed drift
  // (the dominant noise on shared single-core runners) then biases both
  // tiers the same way instead of skewing their ratio. Tier 3 is measured
  // on the honest fire path: guard check, then the specialized stream.
  for (int rep = 0; rep < reps; ++rep) {
    const double t2 = MeasureNsPerRun([&] { return *compiled->Run(env, args); }, iters, 1);
    const double t3 = MeasureNsPerRun(
        [&] { return spec->GuardOk() ? *spec->Run(env, args) : *compiled->Run(env, args); },
        iters, 1);
    if (rep == 0 || t2 < r.tier2_ns) {
      r.tier2_ns = t2;
    }
    if (rep == 0 || t3 < r.tier3_ns) {
      r.tier3_ns = t3;
    }
  }

  // Stale the guard (a control-plane map write plus a table snapshot bump,
  // so even a fold-free specialization deopts) and measure the deopted
  // fire: failed guard check + tier-2 run. Must sit within noise of tier 2.
  s.maps.BumpWriteVersion();
  s.table_version.fetch_add(1, std::memory_order_release);
  if (spec->GuardOk()) {
    std::fprintf(stderr, "FAIL: %s guard still passes after map write\n", s.name.c_str());
    std::exit(1);
  }
  r.deopt_ns = MeasureNsPerRun(
      [&] { return spec->GuardOk() ? *spec->Run(env, args) : *compiled->Run(env, args); },
      iters, reps);

  r.speedup_tier3_vs_tier2 = r.tier3_ns > 0 ? r.tier2_ns / r.tier3_ns : 0.0;
  r.deopt_overhead_ratio = r.tier2_ns > 0 ? r.deopt_ns / r.tier2_ns : 0.0;
  r.floor_ok = r.speedup_tier3_vs_tier2 >= s.floor;
  r.floor = s.floor;
  r.deopt_within_noise = r.deopt_overhead_ratio <= kDeoptNoiseCeiling;

  std::printf(
      "%-20s interp %7.1f ns  tier2 %7.1f ns  tier3 %7.1f ns (x%.2f)  deopt %7.1f ns "
      "(x%.2f)  [%zu superblocks, %zu folded, %zu tiles]%s%s\n",
      s.name.c_str(), r.interp_ns, r.tier2_ns, r.tier3_ns, r.speedup_tier3_vs_tier2,
      r.deopt_ns, r.deopt_overhead_ratio, r.superblocks, r.folded_lookups, r.tile_kernels,
      r.floor_ok ? "" : "  FLOOR VIOLATION", r.deopt_within_noise ? "" : "  DEOPT CLIFF");
  return r;
}

int Run(const std::string& out_path, bool quick) {
  std::vector<ScenarioResult> results;
  {
    Scenario dispatch;
    BuildDispatchScenario(dispatch);
    results.push_back(RunScenario(dispatch, quick));
  }
  {
    Scenario mlp;
    BuildMlpScenario(mlp);
    results.push_back(RunScenario(mlp, quick));
  }

  bool ok = true;
  for (const ScenarioResult& r : results) {
    ok = ok && r.floor_ok && r.deopt_within_noise;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"vm_tiers\",\n"
               "  \"hot_floor_speedup\": %.2f,\n"
               "  \"ml_floor_speedup\": %.2f,\n"
               "  \"deopt_noise_ceiling\": %.2f,\n"
               "  \"scenarios\": [\n",
               kHotFloor, kMlFloor, kDeoptNoiseCeiling);
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"interp_ns\": %.1f, \"tier2_ns\": %.1f,"
                 " \"tier3_ns\": %.1f, \"deopt_ns\": %.1f,"
                 " \"speedup_tier3_vs_tier2\": %.3f, \"deopt_overhead_ratio\": %.3f,"
                 " \"superblocks\": %zu, \"folded_lookups\": %zu, \"tile_kernels\": %zu,"
                 " \"floor\": %.2f, \"floor_ok\": %s, \"deopt_within_noise\": %s}%s\n",
                 r.name.c_str(), r.interp_ns, r.tier2_ns, r.tier3_ns, r.deopt_ns,
                 r.speedup_tier3_vs_tier2, r.deopt_overhead_ratio, r.superblocks,
                 r.folded_lookups, r.tile_kernels, r.floor, r.floor_ok ? "true" : "false",
                 r.deopt_within_noise ? "true" : "false", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"ok\": %s\n}\n", ok ? "true" : "false");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace rkd

int main(int argc, char** argv) {
  std::string out_path = "BENCH_vm_tiers.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out=FILE]\n", argv[0]);
      return 2;
    }
  }
  return rkd::Run(out_path, quick);
}
