// M: replay throughput microbenchmark.
//
// The shadow gate runs in CI and in the control plane's admission path, so
// replay must stay cheap: re-firing one recorded event through the sandbox
// (hook dispatch + table match + action exec + divergence bookkeeping) is
// the unit of cost. This bench builds a synthetic corpus, replays it on
// both VM tiers, and ASSERTS a minimum events/sec throughput — a regression
// that drags an allocation or a reverify into the per-record loop fails the
// binary, not just a dashboard. Corpus parse throughput (CRC + decode) is
// reported alongside.
//
// Results land in BENCH_replay.json (override with --out=FILE); pass
// --benchmark to run the google-benchmark reporters instead.
//
// Budget rationale: one replayed fire measured ~0.3-1.5 us on the reference
// container (dominated by hook dispatch + VM exec). The asserted floor of
// 100k events/sec (10 us/event) leaves ~10-30x headroom for CI noise while
// still catching an accidental O(corpus) or reverify-per-record blowup.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/base/stats.h"
#include "src/bytecode/assembler.h"
#include "src/replay/experience_log.h"
#include "src/replay/replay.h"

namespace rkd {
namespace {

constexpr double kMinEventsPerSec = 100'000.0;
constexpr uint64_t kCorpusFires = 100'000;

// A corpus of `fires` generic-hook records whose incumbent always decided 7,
// half of them labeled, and the matching constant-7 candidate — replay cost
// without simulator noise.
ExperienceLog MakeSyntheticCorpus(uint64_t fires) {
  ExperienceLog log;
  log.source = "bench";
  ExperienceHookInfo hook;
  hook.name = "bench.hook";
  hook.kind = HookKind::kGeneric;
  hook.decision_source = DecisionSource::kResult;
  hook.label_kind = "synthetic";
  log.hooks.push_back(hook);
  log.records.reserve(fires);
  for (uint64_t i = 0; i < fires; ++i) {
    ExperienceRecord rec;
    rec.kind = ExperienceRecordKind::kFire;
    rec.hook_index = 0;
    rec.vtime = i;
    rec.key = i % 509;
    rec.num_args = 1;
    rec.args[0] = static_cast<int64_t>(i);
    rec.action = 7;
    if (i % 2 == 0) {
      rec.flags = kExperienceLabeled | kExperienceRecordedMatch;
      rec.label = 7;
    }
    log.records.push_back(std::move(rec));
  }
  return log;
}

RmtProgramSpec MakeCandidate() {
  Assembler a("bench_const", HookKind::kGeneric);
  a.MovImm(0, 7);
  a.Exit();
  RmtProgramSpec spec;
  spec.name = "bench_replay_prog";
  RmtTableSpec table;
  table.name = "bench_tab";
  table.hook_point = "bench.hook";
  table.actions.push_back(std::move(a.Build()).value());
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  return spec;
}

// Best-of-`runs` replay throughput in events/sec (best shrugs off one-off
// scheduler blips; the asserted floor is far below any honest run).
double ReplayEventsPerSec(const ExperienceLog& log, const RmtProgramSpec& spec,
                          ExecTier tier, int runs, double* out_match_rate) {
  ReplayEngine engine;
  ReplayOptions options;
  options.tier = tier;
  double best = 0.0;
  for (int r = 0; r < runs; ++r) {
    const uint64_t start = MonotonicNowNs();
    Result<DivergenceReport> report = engine.Replay(log, spec, options);
    const uint64_t elapsed = MonotonicNowNs() - start;
    if (!report.ok()) {
      std::fprintf(stderr, "FAIL: replay: %s\n", report.status().ToString().c_str());
      return 0.0;
    }
    if (out_match_rate != nullptr) {
      *out_match_rate = report->decision_match_rate();
    }
    const double events_per_sec =
        static_cast<double>(log.fire_count()) * 1e9 / static_cast<double>(elapsed);
    best = events_per_sec > best ? events_per_sec : best;
  }
  return best;
}

// --- google-benchmark reporting (--benchmark) ------------------------------

void BM_ReplayCorpusJit(benchmark::State& state) {
  const ExperienceLog log = MakeSyntheticCorpus(4'096);
  const RmtProgramSpec spec = MakeCandidate();
  ReplayEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Replay(log, spec));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4'096);
}
BENCHMARK(BM_ReplayCorpusJit);

void BM_DeserializeCorpus(benchmark::State& state) {
  ExperienceLog log = MakeSyntheticCorpus(4'096);
  const std::vector<uint8_t> bytes = std::move(SerializeExperienceLog(log)).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeserializeExperienceLog(bytes));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_DeserializeCorpus);

// --- asserted throughput + JSON emission -----------------------------------

int RunThroughputCheck(const std::string& out_path) {
  ExperienceLog log = MakeSyntheticCorpus(kCorpusFires);
  const RmtProgramSpec spec = MakeCandidate();

  double match_rate = 0.0;
  const double jit_eps = ReplayEventsPerSec(log, spec, ExecTier::kJit, 3, &match_rate);
  const double interp_eps =
      ReplayEventsPerSec(log, spec, ExecTier::kInterpreter, 3, nullptr);

  // Parse throughput: CRC + decode of the serialized corpus.
  const std::vector<uint8_t> bytes = std::move(SerializeExperienceLog(log)).value();
  double parse_mb_per_sec = 0.0;
  for (int r = 0; r < 3; ++r) {
    const uint64_t start = MonotonicNowNs();
    Result<ExperienceLog> parsed = DeserializeExperienceLog(bytes);
    const uint64_t elapsed = MonotonicNowNs() - start;
    if (!parsed.ok()) {
      std::fprintf(stderr, "FAIL: parse: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    const double mb_per_sec =
        static_cast<double>(bytes.size()) * 1e9 / 1e6 / static_cast<double>(elapsed);
    parse_mb_per_sec = mb_per_sec > parse_mb_per_sec ? mb_per_sec : parse_mb_per_sec;
  }

  std::printf("corpus: %" PRIu64 " fires, %zu bytes serialized\n",
              static_cast<uint64_t>(kCorpusFires), bytes.size());
  std::printf("replay jit:         %12.0f events/sec (floor %.0f)\n", jit_eps,
              kMinEventsPerSec);
  std::printf("replay interpreter: %12.0f events/sec (floor %.0f)\n", interp_eps,
              kMinEventsPerSec);
  std::printf("corpus parse:       %12.1f MB/sec\n", parse_mb_per_sec);

  int failures = 0;
  if (match_rate != 1.0) {
    std::fprintf(stderr, "FAIL: constant candidate must match its own corpus (got %f)\n",
                 match_rate);
    ++failures;
  }
  if (jit_eps < kMinEventsPerSec) {
    std::fprintf(stderr,
                 "FAIL: jit replay %.0f events/sec below the %.0f floor — did the "
                 "per-record loop grow an allocation or a reverify?\n",
                 jit_eps, kMinEventsPerSec);
    ++failures;
  }
  if (interp_eps < kMinEventsPerSec) {
    std::fprintf(stderr, "FAIL: interpreter replay %.0f events/sec below the %.0f floor\n",
                 interp_eps, kMinEventsPerSec);
    ++failures;
  }
  if (failures == 0) {
    std::printf("throughput checks: OK\n");
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"replay\",\n"
               "  \"corpus_fires\": %" PRIu64 ",\n"
               "  \"corpus_bytes\": %zu,\n"
               "  \"replay_jit_events_per_sec\": %.0f,\n"
               "  \"replay_interpreter_events_per_sec\": %.0f,\n"
               "  \"parse_mb_per_sec\": %.1f,\n"
               "  \"min_events_per_sec\": %.0f,\n"
               "  \"ok\": %s\n"
               "}\n",
               static_cast<uint64_t>(kCorpusFires), bytes.size(), jit_eps, interp_eps,
               parse_mb_per_sec, kMinEventsPerSec, failures == 0 ? "true" : "false");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace rkd

int main(int argc, char** argv) {
  bool gbench = false;
  std::string out_path = "BENCH_replay.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
      gbench = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  if (gbench) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  return rkd::RunThroughputCheck(out_path);
}
