// A4 — model-family ablation on the prefetching task: why the paper's
// prototype uses an integer decision tree.
//
// Runs case study #1's online pipeline with three interchangeable in-kernel
// model families (the section 3.2 library: decision tree, random forest,
// quantized MLP) and reports the accuracy/cost frontier. The expected shape:
// the tree matches or beats the heavier families on this pattern-cycle task
// at a fraction of the verifier work units and training cost — the concrete
// version of "in certain cases, well-tuned heuristics may already go a long
// way", applied to model choice.
#include <chrono>
#include <cstdio>

#include "src/sim/mem/memory_sim.h"
#include "src/sim/mem/ml_prefetcher.h"
#include "src/workloads/access_trace.h"

int main() {
  using namespace rkd;

  std::printf("=== Ablation A4: in-kernel model family for page prefetching ===\n\n");

  MemSimConfig sim_config;
  sim_config.frame_capacity = 192;

  struct FamilySpec {
    const char* name;
    PrefetchModelFamily family;
  };
  const FamilySpec families[] = {
      {"decision_tree (paper)", PrefetchModelFamily::kDecisionTree},
      {"random_forest x6", PrefetchModelFamily::kRandomForest},
      {"quantized_mlp 4-24-C", PrefetchModelFamily::kQuantizedMlp},
  };

  struct WorkloadSpec {
    const char* name;
    AccessTrace trace;
  };
  Rng rng(2024);
  MatrixConvConfig conv;
  VideoResizeConfig video;
  WorkloadSpec workloads[] = {
      {"matrix conv", MakeMatrixConvTrace(conv, rng)},
      {"video resize", MakeVideoResizeTrace(video, rng)},
  };

  for (const WorkloadSpec& workload : workloads) {
    std::printf("-- %s (%zu accesses) --\n", workload.name, workload.trace.size());
    std::printf("%-24s %9s %9s %9s %10s %12s %10s\n", "family", "acc (%)", "cov (%)",
                "compl (s)", "windows", "work units", "train (ms)");
    for (const FamilySpec& family : families) {
      MlPrefetcherConfig config;
      config.family = family.family;
      RmtMlPrefetcher prefetcher(config);
      if (!prefetcher.Init().ok()) {
        continue;
      }
      MemorySim sim(sim_config, &prefetcher);
      const auto start = std::chrono::steady_clock::now();
      const MemMetrics metrics = sim.Run(workload.trace);
      const auto elapsed = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      const ModelPtr model =
          prefetcher.control_plane().Get(prefetcher.handle())->models().Get(0);
      const uint64_t work = model != nullptr ? model->Cost().WorkUnits() : 0;
      std::printf("%-24s %9.2f %9.2f %9.3f %10lu %12lu %10.1f\n", family.name,
                  metrics.accuracy() * 100, metrics.coverage() * 100,
                  metrics.completion_seconds(),
                  static_cast<unsigned long>(prefetcher.windows_trained()),
                  static_cast<unsigned long>(work), elapsed);
    }
    std::printf("\n");
  }
  std::printf("expected shape: the decision tree sits on the accuracy/cost frontier — the "
              "heavier families pay 10-100x the work units (and wall-clock training) without "
              "beating it on cyclic access patterns\n");
  return 0;
}
