// M8 — net datapath batched fire throughput at table scale.
//
// The claim under test: the three-stage RX pipeline (LPM route, ternary
// ACL, exact-match flow) keeps multi-thousand-packet FireBatch windows
// cheap even with >=10k installed table entries, and throughput scales
// with reader threads (the fire path is wait-free). Each "packet" costs
// three batched fires — one per match stage — exactly as DecideBatch
// issues them, with stage results feeding the flow action's args.
//
// Reported per point (1 and 4 threads): aggregate pkts/s and the share of
// pipeline time spent in each stage (the LPM and ternary matches dominate
// at this entry count; the exact-match flow stage is the cheap one).
// Results land in BENCH_net_datapath.json (override with --out=FILE).
//
// Asserted floor (exit 1 on violation, so CI catches fire-path or index
// regressions): the 4-thread batched rate must clear kFloorPktsPerSec.
// The bound is ~20x under a Release-build dev-box measurement, leaving
// headroom for noisy single-core CI hosts.
//
//   $ build/bench/bench_net_datapath              # ~1s per point
//   $ build/bench/bench_net_datapath --quick      # CI smoke
#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/base/epoch.h"
#include "src/base/rng.h"
#include "src/rmt/hooks.h"
#include "src/sim/net/rx_datapath.h"
#include "src/telemetry/telemetry.h"
#include "src/workloads/packet_trace.h"

namespace rkd {
namespace {

constexpr size_t kEventsPerBatch = 256;
constexpr double kFloorPktsPerSec = 50'000.0;

struct StageNs {
  uint64_t route = 0;
  uint64_t classify = 0;
  uint64_t flow = 0;
  uint64_t total() const { return route + classify + flow; }
};

// One thread's slice of the trace, pushed through all three stages in
// kEventsPerBatch windows. Returns per-stage wall time; `sink` defeats
// dead-code elimination of the fire results.
StageNs PumpSlice(RmtRxDatapath& dp, std::span<const PacketEvent> slice,
                  uint64_t iterations, std::atomic<uint64_t>& sink) {
  std::vector<HookEvent> events(kEventsPerBatch);
  std::vector<int64_t> route_classes(kEventsPerBatch);
  std::vector<int64_t> acl_verdicts(kEventsPerBatch);
  std::vector<int64_t> decisions(kEventsPerBatch);
  HookRegistry& hooks = dp.hooks();
  StageNs ns;
  uint64_t local_sink = 0;
  size_t cursor = 0;
  for (uint64_t iter = 0; iter < iterations; ++iter) {
    const size_t n = std::min(kEventsPerBatch, slice.size() - cursor);
    const std::span<const PacketEvent> batch = slice.subspan(cursor, n);
    cursor = cursor + n >= slice.size() ? 0 : cursor + n;

    uint64_t t0 = MonotonicNowNs();
    for (size_t i = 0; i < n; ++i) {
      events[i] = HookEvent(batch[i].dst_ip, {});
    }
    hooks.FireBatch(dp.route_hook(), std::span(events).first(n),
                    std::span(route_classes).first(n));
    uint64_t t1 = MonotonicNowNs();
    ns.route += t1 - t0;

    for (size_t i = 0; i < n; ++i) {
      events[i] = HookEvent(ClassifyKey(batch[i]), {});
    }
    hooks.FireBatch(dp.classify_hook(), std::span(events).first(n),
                    std::span(acl_verdicts).first(n));
    uint64_t t2 = MonotonicNowNs();
    ns.classify += t2 - t1;

    for (size_t i = 0; i < n; ++i) {
      events[i] = HookEvent(batch[i].flow_id,
                            {acl_verdicts[i], route_classes[i],
                             static_cast<int64_t>(batch[i].length)});
    }
    hooks.FireBatch(dp.packet_hook(), std::span(events).first(n),
                    std::span(decisions).first(n));
    ns.flow += MonotonicNowNs() - t2;

    for (size_t i = 0; i < n; ++i) {
      local_sink += static_cast<uint64_t>(decisions[i]);
    }
  }
  sink.fetch_add(local_sink, std::memory_order_relaxed);
  return ns;
}

struct Point {
  int threads = 0;
  uint64_t packets = 0;
  double pkts_per_sec = 0.0;
  double share_lpm = 0.0;
  double share_ternary = 0.0;
  double share_exact = 0.0;
};

Point RunPoint(RmtRxDatapath& dp, const PacketTrace& trace, int threads,
               uint64_t iterations_per_thread) {
  std::atomic<uint64_t> sink{0};
  std::vector<StageNs> stage_ns(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  const size_t slice_len = trace.size() / static_cast<size_t>(threads);
  const uint64_t start_ns = MonotonicNowNs();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const std::span<const PacketEvent> slice(trace.data() +
                                                   static_cast<size_t>(t) * slice_len,
                                               slice_len);
      stage_ns[static_cast<size_t>(t)] = PumpSlice(dp, slice, iterations_per_thread, sink);
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  const uint64_t elapsed_ns = MonotonicNowNs() - start_ns;
  GlobalEpochDomain().Synchronize();
  (void)GlobalEpochDomain().TryAdvance();

  StageNs total;
  for (const StageNs& ns : stage_ns) {
    total.route += ns.route;
    total.classify += ns.classify;
    total.flow += ns.flow;
  }
  Point p;
  p.threads = threads;
  p.packets = static_cast<uint64_t>(threads) * iterations_per_thread * kEventsPerBatch;
  p.pkts_per_sec = static_cast<double>(p.packets) * 1e9 /
                   static_cast<double>(elapsed_ns > 0 ? elapsed_ns : 1);
  const double denom = static_cast<double>(total.total() > 0 ? total.total() : 1);
  p.share_lpm = static_cast<double>(total.route) / denom;
  p.share_ternary = static_cast<double>(total.classify) / denom;
  p.share_exact = static_cast<double>(total.flow) / denom;
  return p;
}

int Run(const std::string& out_path, bool quick) {
  // Table scale: >=10k LPM prefixes and >=10k ternary ACL entries, the
  // acceptance bar for index (not linear-scan) lookup on the fire path.
  NetConfig config;
  config.route_prefixes = 10'000;
  config.acl_entries = 10'240;
  config.enable_tiering = false;  // measure the install tier, not a ladder hop
  RmtRxDatapath datapath(config, RxPolicyKind::kHeuristic);
  const Status init = datapath.Init();
  if (!init.ok()) {
    std::fprintf(stderr, "FAIL: datapath init: %s\n", init.ToString().c_str());
    return 1;
  }

  PacketTraceConfig trace_config;
  trace_config.packets = 1 << 15;
  trace_config.flows = 2048;
  trace_config.prefixes = 8192;  // all destinations resolve a /24 LPM entry
  Rng rng(2026);
  const PacketTrace trace = MakePacketTrace(trace_config, rng);

  // Calibrate so each point runs ~1s (quick: ~100ms) regardless of host
  // speed, using a single-threaded warmup burst.
  std::atomic<uint64_t> sink{0};
  const uint64_t warmup_iters = quick ? 8 : 64;
  const uint64_t warm_start = MonotonicNowNs();
  (void)PumpSlice(datapath, trace, warmup_iters, sink);
  const uint64_t warm_ns = MonotonicNowNs() - warm_start;
  const double iters_per_sec = static_cast<double>(warmup_iters) * 1e9 /
                               static_cast<double>(warm_ns > 0 ? warm_ns : 1);
  const uint64_t iters_per_thread =
      static_cast<uint64_t>(iters_per_sec * (quick ? 0.1 : 1.0)) + 1;

  std::vector<Point> points;
  for (const int threads : {1, 4}) {
    const Point p = RunPoint(datapath, trace, threads, iters_per_thread);
    points.push_back(p);
    std::printf(
        "%d thread%s: %12.0f pkts/s  (lpm %.0f%% / ternary %.0f%% / exact %.0f%%)\n",
        p.threads, p.threads == 1 ? " " : "s", p.pkts_per_sec, p.share_lpm * 100.0,
        p.share_ternary * 100.0, p.share_exact * 100.0);
  }

  const Point& mt = points.back();
  const bool floor_ok = mt.pkts_per_sec >= kFloorPktsPerSec;
  if (!floor_ok) {
    std::fprintf(stderr, "FAIL: %d-thread batched rate %.0f pkts/s under floor %.0f\n",
                 mt.threads, mt.pkts_per_sec, kFloorPktsPerSec);
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"net_datapath\",\n"
               "  \"hw_threads\": %u,\n"
               "  \"route_entries\": %u,\n"
               "  \"acl_entries\": %u,\n"
               "  \"batch_events\": %zu,\n"
               "  \"floor_pkts_per_sec\": %.0f,\n"
               "  \"floor_ok\": %s,\n"
               "  \"points\": [\n",
               hw, config.route_prefixes + 1, config.acl_entries, kEventsPerBatch,
               kFloorPktsPerSec, floor_ok ? "true" : "false");
  for (size_t i = 0; i < points.size(); ++i) {
    std::fprintf(out,
                 "    {\"threads\": %d, \"packets\": %" PRIu64
                 ", \"pkts_per_sec\": %.0f, \"speedup_vs_1\": %.3f,"
                 " \"stage_share\": {\"lpm\": %.3f, \"ternary\": %.3f, \"exact\": "
                 "%.3f}}%s\n",
                 points[i].threads, points[i].packets, points[i].pkts_per_sec,
                 points[i].pkts_per_sec / points.front().pkts_per_sec,
                 points[i].share_lpm, points[i].share_ternary, points[i].share_exact,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return floor_ok ? 0 : 1;
}

}  // namespace
}  // namespace rkd

int main(int argc, char** argv) {
  std::string out_path = "BENCH_net_datapath.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out=FILE]\n", argv[0]);
      return 2;
    }
  }
  return rkd::Run(out_path, quick);
}
