// M3 — section 3.2's critical-path inference costs.
//
// "Unlike learning, ML inference must be performed in the critical execution
// path, so it must be very efficient." Measures per-prediction latency of
// every model family the library offers, so the cost-model numbers the
// verifier reasons about correspond to observable wall-clock ratios:
// integer linear < decision tree < quantized MLP < float MLP.
#include <benchmark/benchmark.h>

#include "src/base/rng.h"
#include "src/ml/decision_tree.h"
#include "src/ml/forest.h"
#include "src/ml/linear.h"
#include "src/ml/mlp.h"
#include "src/ml/quantize.h"

namespace {

using namespace rkd;

Dataset BenchDataset(size_t features, size_t n, Rng& rng) {
  Dataset data(features);
  std::vector<int32_t> row(features);
  for (size_t i = 0; i < n; ++i) {
    int64_t total = 0;
    for (size_t f = 0; f < features; ++f) {
      row[f] = static_cast<int32_t>(rng.NextInt(0, 100));
      total += (f % 2 == 0) ? row[f] : -row[f];
    }
    data.Add(row, total > 0 ? 1 : 0);
  }
  return data;
}

void BM_DecisionTreePredict(benchmark::State& state) {
  Rng rng(1);
  const Dataset data = BenchDataset(8, 1000, rng);
  DecisionTreeConfig config;
  config.max_depth = static_cast<uint32_t>(state.range(0));
  const DecisionTree tree = std::move(DecisionTree::Train(data, config)).value();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Predict(data.row(i++ % data.size())));
  }
  state.counters["work_units"] = static_cast<double>(tree.Cost().WorkUnits());
}
BENCHMARK(BM_DecisionTreePredict)->Arg(4)->Arg(8)->Arg(12);

void BM_IntegerLinearPredict(benchmark::State& state) {
  Rng rng(2);
  const Dataset data = BenchDataset(static_cast<size_t>(state.range(0)), 1000, rng);
  const IntegerLinear model = std::move(IntegerLinear::Train(data)).value();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(data.row(i++ % data.size())));
  }
  state.counters["work_units"] = static_cast<double>(model.Cost().WorkUnits());
}
BENCHMARK(BM_IntegerLinearPredict)->Arg(8)->Arg(15);

void BM_RandomForestPredict(benchmark::State& state) {
  Rng rng(7);
  const Dataset data = BenchDataset(8, 1000, rng);
  ForestConfig config;
  config.num_trees = static_cast<uint32_t>(state.range(0));
  const RandomForest forest = std::move(RandomForest::Train(data, config)).value();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Predict(data.row(i++ % data.size())));
  }
  state.counters["work_units"] = static_cast<double>(forest.Cost().WorkUnits());
}
BENCHMARK(BM_RandomForestPredict)->Arg(4)->Arg(8)->Arg(16);

void BM_FloatMlpPredict(benchmark::State& state) {
  Rng rng(3);
  const Dataset data = BenchDataset(15, 1000, rng);
  MlpConfig config;
  config.hidden_sizes = {static_cast<size_t>(state.range(0)),
                         static_cast<size_t>(state.range(0))};
  config.epochs = 10;
  const Mlp mlp = std::move(Mlp::Train(data, config)).value();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.PredictClass(data.row(i++ % data.size())));
  }
}
BENCHMARK(BM_FloatMlpPredict)->Arg(8)->Arg(16)->Arg(32);

void BM_QuantizedMlpPredict(benchmark::State& state) {
  Rng rng(3);
  const Dataset data = BenchDataset(15, 1000, rng);
  MlpConfig config;
  config.hidden_sizes = {static_cast<size_t>(state.range(0)),
                         static_cast<size_t>(state.range(0))};
  config.epochs = 10;
  const Mlp mlp = std::move(Mlp::Train(data, config)).value();
  const QuantizedMlp quantized = std::move(QuantizedMlp::FromMlp(mlp)).value();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantized.PredictRaw(data.row(i++ % data.size())));
  }
  state.counters["work_units"] = static_cast<double>(quantized.Cost().WorkUnits());
}
BENCHMARK(BM_QuantizedMlpPredict)->Arg(8)->Arg(16)->Arg(32);

// Training-side costs, for the offline/online split story: tree windows are
// cheap enough to retrain continuously, MLPs are not.
void BM_DecisionTreeTrainWindow(benchmark::State& state) {
  Rng rng(4);
  const Dataset data = BenchDataset(4, static_cast<size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecisionTree::Train(data));
  }
}
BENCHMARK(BM_DecisionTreeTrainWindow)->Arg(128)->Arg(256)->Arg(512);

void BM_MlpTrainEpochs(benchmark::State& state) {
  Rng rng(5);
  const Dataset data = BenchDataset(15, 512, rng);
  MlpConfig config;
  config.hidden_sizes = {16, 16};
  config.epochs = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Mlp::Train(data, config));
  }
}
BENCHMARK(BM_MlpTrainEpochs)->Arg(5)->Arg(20);

void BM_Quantization(benchmark::State& state) {
  Rng rng(6);
  const Dataset data = BenchDataset(15, 256, rng);
  MlpConfig config;
  config.hidden_sizes = {16, 16};
  config.epochs = 5;
  const Mlp mlp = std::move(Mlp::Train(data, config)).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(QuantizedMlp::FromMlp(mlp));
  }
}
BENCHMARK(BM_Quantization);

}  // namespace

BENCHMARK_MAIN();
