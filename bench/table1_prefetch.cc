// Reproduces Table 1: "Case study: Page prefetching".
//
// Paper reference numbers (Linux v5.9.15, real OpenCV/NumPy workloads):
//
//   Benchmark            OpenCV video resize     Numpy matrix conv
//   Metric               Linux   Leap    Ours    Linux   Leap    Ours
//   Accuracy (%)         40.69   45.40   78.89   12.50   48.86   92.91
//   Coverage (%)         65.09   66.81   84.13   19.28   65.62   88.51
//   Completion time (s)  24.60   23.02   17.79   31.74   17.48   13.90
//
// This harness regenerates the same rows on the simulated substrate (see
// DESIGN.md for the substitutions). Absolute values differ from the paper's
// testbed; the claims under reproduction are the orderings: accuracy and
// coverage Linux < Leap < Ours on both workloads, completion time
// Linux > Leap > Ours, with the Linux-vs-ML gap much larger on the
// convolution workload than on video resize.
#include <cstdio>
#include <vector>

#include "src/sim/mem/leap.h"
#include "src/sim/mem/memory_sim.h"
#include "src/sim/mem/ml_prefetcher.h"
#include "src/sim/mem/readahead.h"
#include "src/workloads/access_trace.h"

namespace {

struct Row {
  double accuracy;
  double coverage;
  double completion_s;
};

rkd::MemSimConfig SimConfig() {
  rkd::MemSimConfig config;
  config.frame_capacity = 192;
  config.hit_ns = 200;
  config.fault_ns = 80000;
  config.prefetch_issue_ns = 2500;
  return config;
}

Row RunWith(rkd::Prefetcher& prefetcher, const rkd::AccessTrace& trace) {
  rkd::MemorySim sim(SimConfig(), &prefetcher);
  const rkd::MemMetrics metrics = sim.Run(trace);
  return Row{metrics.accuracy() * 100.0, metrics.coverage() * 100.0,
             metrics.completion_seconds()};
}

Row RunMl(const rkd::AccessTrace& trace) {
  rkd::MlPrefetcherConfig config;
  rkd::RmtMlPrefetcher prefetcher(config);
  const rkd::Status status = prefetcher.Init();
  if (!status.ok()) {
    std::fprintf(stderr, "ml prefetcher init failed: %s\n", status.ToString().c_str());
    return Row{0, 0, 0};
  }
  return RunWith(prefetcher, trace);
}

void PrintBenchmark(const char* name, const Row& linux_row, const Row& leap_row,
                    const Row& ours_row) {
  std::printf("%-24s %10s %10s %10s\n", name, "Linux", "Leap", "Ours");
  std::printf("%-24s %10.2f %10.2f %10.2f\n", "Accuracy (%)", linux_row.accuracy,
              leap_row.accuracy, ours_row.accuracy);
  std::printf("%-24s %10.2f %10.2f %10.2f\n", "Coverage (%)", linux_row.coverage,
              leap_row.coverage, ours_row.coverage);
  std::printf("%-24s %10.2f %10.2f %10.2f\n", "Completion time (s)", linux_row.completion_s,
              leap_row.completion_s, ours_row.completion_s);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Table 1: Case study: Page prefetching ===\n\n");

  rkd::Rng rng(2021);
  rkd::VideoResizeConfig video;
  const rkd::AccessTrace video_trace = rkd::MakeVideoResizeTrace(video, rng);

  rkd::Rng rng2(2022);
  rkd::MatrixConvConfig conv;
  const rkd::AccessTrace conv_trace = rkd::MakeMatrixConvTrace(conv, rng2);

  {
    rkd::ReadaheadPrefetcher linux_prefetcher;
    rkd::LeapPrefetcher leap_prefetcher;
    PrintBenchmark("OpenCV video resize", RunWith(linux_prefetcher, video_trace),
                   RunWith(leap_prefetcher, video_trace), RunMl(video_trace));
  }
  {
    rkd::ReadaheadPrefetcher linux_prefetcher;
    rkd::LeapPrefetcher leap_prefetcher;
    PrintBenchmark("Numpy matrix conv", RunWith(linux_prefetcher, conv_trace),
                   RunWith(leap_prefetcher, conv_trace), RunMl(conv_trace));
  }

  std::printf("paper shape: accuracy/coverage Linux < Leap < Ours; completion Linux > Leap > "
              "Ours; ML gap largest on matrix conv\n");
  return 0;
}
