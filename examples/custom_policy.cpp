// Writing a policy for a NEW kernel subsystem — the generality claim.
//
// The paper argues the RMT abstraction covers "varied kernel components".
// The two case studies cover memory and scheduling; this example adds a
// third subsystem from scratch: a hugepage-promotion policy. A (simulated)
// memory manager asks, per region, "should this region be promoted to a
// hugepage?" based on monitored fault counts and access density. The policy:
//
//   - an RMT table keyed by region id at a new hook, with a TERNARY match
//     that exempts kernel-owned regions (high bit of the id set),
//   - an integer SVM (the "Integer SVM" of Figure 1's model library) trained
//     offline on promotion outcomes, quantized to Q16.16,
//   - a rate-limit guard inserted automatically by the verifier pass, since
//     promotions consume a contended resource,
//   - a DP-noised aggregate statistics query for userspace telemetry, paid
//     from the program's privacy budget.
//
//   $ build/examples/custom_policy
#include <cstdio>
#include <memory>

#include "src/bytecode/assembler.h"
#include "src/ml/linear.h"
#include "src/rmt/control_plane.h"
#include "src/verifier/guards.h"
#include "src/verifier/verifier.h"

int main() {
  using namespace rkd;

  std::printf("== custom policy: hugepage promotion ==\n\n");

  // ------------------------------------------------------------------
  // 1. Offline training: promotion is worth it when fault count and
  //    access density are jointly high (synthetic outcome labels).
  // ------------------------------------------------------------------
  Rng rng(99);
  Dataset outcomes(2);  // features: [fault_count, access_density]
  for (int i = 0; i < 600; ++i) {
    const std::array<int32_t, 2> row{static_cast<int32_t>(rng.NextInt(0, 200)),
                                     static_cast<int32_t>(rng.NextInt(0, 100))};
    const bool promote_paid_off = 3 * row[0] + 4 * row[1] > 500;
    outcomes.Add(row, promote_paid_off ? 1 : 0);
  }
  Result<IntegerLinear> svm = IntegerLinear::Train(outcomes);
  std::printf("trained integer SVM on %zu promotion outcomes: accuracy %.1f%%, cost %lu "
              "work units\n",
              outcomes.size(), svm->Evaluate(outcomes) * 100,
              static_cast<unsigned long>(svm->Cost().WorkUnits()));

  // ------------------------------------------------------------------
  // 2. The action program: load the region's monitored features from the
  //    execution context, query the model, emit a promotion (a
  //    resource-granting priority hint in this subsystem's vocabulary).
  // ------------------------------------------------------------------
  Assembler a("hugepage_promote", HookKind::kSchedTick);  // tick-class budget
  a.DeclareModels(1);
  {
    auto done = a.NewLabel();
    a.VecLdCtxt(0, 1);              // v0 = ctxt[region].features
    a.MlCall(6, 0, 0);              // r6 = promote? (or -1: no model)
    a.JleImm(6, 0, done);           // don't promote / no model
    a.MovImm(2, 1);                 // one promotion unit
    a.Call(HelperId::kSetPriorityHint);  // "promote region r1"
    a.Bind(done);
    a.Mov(0, 6);
    a.Exit();
  }
  BytecodeProgram action = std::move(a.Build()).value();

  // The verifier refuses the raw program (unguarded resource grant), then
  // the guard pass repairs it — the section 3.3 flow.
  VerifyReport report = Verifier().Verify(action);
  std::printf("\nverifier before guard insertion: %s\n", report.status.ToString().c_str());
  (void)InsertRateLimitGuards(action);
  report = Verifier().Verify(action);
  std::printf("verifier after guard insertion:  %s\n", report.status.ToString().c_str());

  // A second action: DP-noised telemetry (count of promoted regions).
  Assembler t("telemetry", HookKind::kSchedTick);
  t.Mov(1, 2);                   // value to noise arrives as arg 2
  t.Call(HelperId::kDpNoise);
  t.Exit();
  BytecodeProgram telemetry = std::move(t.Build()).value();

  // ------------------------------------------------------------------
  // 3. Register the new subsystem's hook and install.
  // ------------------------------------------------------------------
  HookRegistry hooks;
  int64_t promotions = 0;
  SubsystemBindings bindings;
  bindings.priority_hint = [&](int64_t region, int64_t) {
    ++promotions;
    std::printf("  [mm] promoted region %ld to hugepages\n", static_cast<long>(region));
  };
  const HookId hook = *hooks.Register("mm.hugepage_scan", HookKind::kSchedTick, bindings);
  const HookId stats_hook = *hooks.Register("mm.hugepage_stats", HookKind::kSchedTick);

  ControlPlane cp(&hooks);
  RmtProgramSpec spec;
  spec.name = "hugepage_policy";
  spec.model_slots = 1;
  spec.rate_limit_capacity = 3;  // at most 3 promotions per refill window
  spec.rate_limit_refill = 1;
  spec.privacy_epsilon = 0.3;
  spec.epsilon_per_query = 0.1;

  RmtTableSpec table;
  table.name = "promote_tab";
  table.hook_point = "mm.hugepage_scan";
  table.match_kind = MatchKind::kTernary;
  table.actions.push_back(action);
  // Ternary entries: kernel-owned regions (bit 63 set) are exempt (no
  // action); everything else goes to the ML action.
  TableEntry kernel_regions;
  kernel_regions.key = 1ull << 63;
  kernel_regions.key2 = 1ull << 63;
  kernel_regions.priority = 10;
  kernel_regions.action_index = -1;  // no default -> no-op for these
  TableEntry user_regions;           // mask 0 matches everything
  user_regions.priority = 1;
  user_regions.action_index = 0;
  table.initial_entries = {kernel_regions, user_regions};
  table.default_action = -1;
  spec.tables.push_back(std::move(table));

  RmtTableSpec stats_table;
  stats_table.name = "stats_tab";
  stats_table.hook_point = "mm.hugepage_stats";
  stats_table.actions.push_back(telemetry);
  stats_table.default_action = 0;
  spec.tables.push_back(std::move(stats_table));

  Result<ControlPlane::ProgramHandle> handle = cp.Install(spec);
  if (!handle.ok()) {
    std::printf("install failed: %s\n", handle.status().ToString().c_str());
    return 1;
  }
  (void)cp.InstallModel(*handle, 0,
                        std::make_shared<IntegerLinear>(std::move(svm).value()));
  std::printf("\ninstalled '%s' with ternary region matching and the SVM in slot 0\n\n",
              cp.Get(*handle)->name().c_str());

  // ------------------------------------------------------------------
  // 4. Drive it: the memory manager scans regions, publishing each
  //    region's monitored features before asking for the decision.
  // ------------------------------------------------------------------
  InstalledProgram* program = cp.Get(*handle);
  struct Region {
    uint64_t id;
    int32_t faults;
    int32_t density;
  };
  const Region regions[] = {
      {1, 180, 90},                 // hot and dense: promote
      {2, 10, 5},                   // cold: keep
      {3, 150, 80},                 // promote
      {(1ull << 63) | 4, 200, 99},  // kernel-owned: exempt by ternary match
      {5, 120, 70},                 // promote (may hit the rate limit)
      {6, 170, 85},                 // promote (may hit the rate limit)
  };
  for (const Region& region : regions) {
    ContextEntry* entry = program->context().FindOrCreate(region.id);
    entry->features.fill(0);
    entry->features[0] = region.faults;
    entry->features[1] = region.density;
    const int64_t decision = hooks.Fire(hook, region.id);
    std::printf("region %ld (faults=%d density=%d) -> decision %ld\n",
                static_cast<long>(region.id & ~(1ull << 63)), region.faults, region.density,
                static_cast<long>(decision));
  }
  std::printf("\npromotions granted: %ld (rate limited per region: a region asking again "
              "immediately would be denied)\n",
              static_cast<long>(promotions));

  // ------------------------------------------------------------------
  // 5. Telemetry with a privacy budget: four queries, three answered.
  // ------------------------------------------------------------------
  std::printf("\nDP-noised telemetry (true value %ld):\n", static_cast<long>(promotions));
  for (int i = 0; i < 4; ++i) {
    const int64_t noisy = hooks.Fire(stats_hook, 0, std::array<int64_t, 1>{promotions});
    std::printf("  query %d -> %ld%s\n", i + 1, static_cast<long>(noisy),
                i == 3 ? "  (budget exhausted: hard zero)" : "");
  }
  const PrivacyBudget& budget = program->privacy_budget();
  std::printf("privacy budget: %.2f epsilon remaining, %lu answered, %lu refused\n",
              budget.remaining(), static_cast<unsigned long>(budget.queries_answered()),
              static_cast<unsigned long>(budget.queries_refused()));
  return 0;
}
