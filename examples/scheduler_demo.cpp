// Case study #2 live: teaching an MLP to mimic CFS `can_migrate_task`,
// quantizing it for the no-FPU inference path, installing it through the
// control plane, and measuring both mimicry accuracy and job completion
// time. Then the lean-monitoring step: rank the 15 features, keep 2, and
// show the accuracy barely moves.
//
//   $ build/examples/scheduler_demo
#include <cstdio>
#include <memory>

#include "src/ml/decision_tree.h"
#include "src/ml/feature_importance.h"
#include "src/ml/mlp.h"
#include "src/ml/quantize.h"
#include "src/sim/sched/cfs_sim.h"
#include "src/sim/sched/rmt_oracle.h"
#include "src/workloads/cpu_jobs.h"

namespace {

const char* FeatureName(size_t index) {
  static const char* kNames[] = {
      "src_nr_running", "dst_nr_running", "src_load",        "dst_load",
      "imbalance",      "task_weight",    "ticks_since_run", "total_runtime",
      "avg_burst",      "cache_footprint", "migrations",      "wait_ticks",
      "queue_delta",    "tick_phase",     "preferred_core"};
  return index < 15 ? kNames[index] : "?";
}

}  // namespace

int main() {
  using namespace rkd;

  std::printf("== case study 2: scheduler load balancing ==\n\n");

  SchedConfig sched_config;
  sched_config.cores = 4;
  JobConfig job_config;
  job_config.num_tasks = 16;
  job_config.base_work = 8000;
  const JobSpec job = MakeJob(JobKind::kStreamcluster, job_config);
  std::printf("workload: streamcluster-like, %zu tasks, %u barrier phases, %u cores\n",
              job.tasks.size(), job.num_phases, sched_config.cores);

  // Stock CFS run doubles as the training-data collection pass.
  Dataset train(kSchedNumFeatures);
  CfsSim sim(sched_config);
  const SchedMetrics linux_metrics = sim.Run(job, {}, &train);
  std::printf("\n[linux cfs]  JCT %.3fs, %lu migration decisions collected\n",
              linux_metrics.jct_seconds(sched_config.tick_ns),
              static_cast<unsigned long>(train.size()));

  // Offline float training, then quantization for the kernel side.
  MlpConfig mlp_config;
  mlp_config.hidden_sizes = {16, 16};
  mlp_config.epochs = 60;
  Result<Mlp> mlp = Mlp::Train(train, mlp_config);
  if (!mlp.ok()) {
    std::printf("training failed: %s\n", mlp.status().ToString().c_str());
    return 1;
  }
  Result<QuantizedMlp> quantized = QuantizedMlp::FromMlp(*mlp);
  std::printf("[userspace]  trained float MLP 15-16-16-2 (train acc %.1f%%), quantized to "
              "int16 (%lu work units, budget %lu)\n",
              mlp->Evaluate(train) * 100,
              static_cast<unsigned long>(quantized->Cost().WorkUnits()),
              static_cast<unsigned long>(
                  BudgetForHook(HookKind::kSchedMigrate).max_work_units));

  // Install via the RMT oracle and run the ML-driven scheduler.
  RmtMigrationOracle oracle;
  if (Status status = oracle.Init(); !status.ok()) {
    std::printf("oracle init failed: %s\n", status.ToString().c_str());
    return 1;
  }
  (void)oracle.InstallModel(std::make_shared<QuantizedMlp>(std::move(quantized).value()));
  const SchedMetrics full_metrics = sim.Run(job, oracle.AsOracle());
  std::printf("[full mlp]   mimicry accuracy %.2f%%, JCT %.3fs (%lu decisions, %lu "
              "migrations)\n",
              full_metrics.agreement() * 100, full_metrics.jct_seconds(sched_config.tick_ns),
              static_cast<unsigned long>(full_metrics.decisions),
              static_cast<unsigned long>(full_metrics.migrations));

  // Lean monitoring: rank features with an interpretable tree, keep two.
  Result<DecisionTree> ranker = DecisionTree::Train(train);
  const std::vector<double> importance = ranker->FeatureImportance();
  const std::vector<size_t> ranked = RankFeatures(importance);
  std::printf("\nfeature importance ranking (top 5):\n");
  for (size_t i = 0; i < 5; ++i) {
    std::printf("  %zu. %-16s %.3f\n", i + 1, FeatureName(ranked[i]), importance[ranked[i]]);
  }
  const FeatureSelection selection = SelectTopFeatures(train, importance, 2);
  std::printf("keeping {%s, %s}; the other 13 monitors can be switched off\n",
              FeatureName(selection.selected[0]), FeatureName(selection.selected[1]));

  Result<Mlp> lean_mlp = Mlp::Train(selection.projected, mlp_config);
  Result<QuantizedMlp> lean_quantized = QuantizedMlp::FromMlp(*lean_mlp);
  RmtOracleConfig lean_config;
  lean_config.selected_features = selection.selected;
  RmtMigrationOracle lean_oracle(lean_config);
  (void)lean_oracle.Init();
  (void)lean_oracle.InstallModel(
      std::make_shared<QuantizedMlp>(std::move(lean_quantized).value()));
  const SchedMetrics lean_metrics = sim.Run(job, lean_oracle.AsOracle());
  std::printf("[lean mlp]   mimicry accuracy %.2f%%, JCT %.3fs with 2 of 15 features\n",
              lean_metrics.agreement() * 100, lean_metrics.jct_seconds(sched_config.tick_ns));

  std::printf("\nJCT delta vs stock CFS: full %+.2f%%, lean %+.2f%%\n",
              (full_metrics.jct_seconds(sched_config.tick_ns) /
                   linux_metrics.jct_seconds(sched_config.tick_ns) -
               1.0) * 100,
              (lean_metrics.jct_seconds(sched_config.tick_ns) /
                   linux_metrics.jct_seconds(sched_config.tick_ns) -
               1.0) * 100);
  return 0;
}
