// Cross-application optimization — the paper's benefit #4.
//
// "Our vision enables the kernel to learn the behaviors of multiple
// applications, how they relate to each other, as well as opportunities for
// joint optimizations ... monitoring may detect that tasks exhibit
// producer-consumer behaviors, and activate optimizations for their
// efficient communication."
//
// This example stages exactly that scenario on the RMT stack:
//
//   1. A producer process writes pages of a shared buffer; a consumer reads
//      them shortly after; two unrelated processes do independent I/O.
//   2. A monitoring table at the (generic) page-access hook records
//      per-process access history into the shared execution context — the
//      centralized view that per-application tuning (kernel bypass, eBPF)
//      gives up.
//   3. The "userspace" analysis plane drains the monitoring ring, computes
//      pairwise access-correlation between processes (how often process B
//      touches a page within a short window after process A touched it),
//      and flags producer-consumer pairs.
//   4. For a flagged pair, it reconfigures the datapath at runtime: a new
//      match/action entry for the consumer activates a "copy-ahead" action
//      that prefetches the producer's freshly written pages into the
//      consumer's working set, and the improvement is measured.
//
//   $ build/examples/cross_app
#include <cstdio>
#include <deque>
#include <map>
#include <vector>

#include "src/bytecode/assembler.h"
#include "src/rmt/control_plane.h"
#include "src/workloads/access_trace.h"

namespace {

using namespace rkd;

constexpr uint64_t kProducer = 11;
constexpr uint64_t kConsumer = 12;
constexpr uint64_t kNoiseA = 13;
constexpr uint64_t kNoiseB = 14;
constexpr int64_t kSharedBase = 50000;  // the shared ring buffer's pages
constexpr int64_t kCopyAheadDepth = 4;

// The staged workload: the producer writes page kSharedBase+i, and the
// consumer reads the same page a few events later; the noise processes scan
// their own private regions.
AccessTrace StageWorkload(size_t length) {
  AccessTrace trace;
  int64_t produced = 0;
  int64_t consumed = 0;
  int64_t noise_a = 1000;
  int64_t noise_b = 2000;
  for (size_t i = 0; i < length; ++i) {
    switch (i % 4) {
      case 0:
        trace.push_back(AccessEvent{kProducer, kSharedBase + produced++});
        break;
      case 1:
        trace.push_back(AccessEvent{kNoiseA, noise_a});
        noise_a += 3;
        break;
      case 2:
        if (consumed < produced) {
          trace.push_back(AccessEvent{kConsumer, kSharedBase + consumed++});
        } else {
          trace.push_back(AccessEvent{kConsumer, kSharedBase + consumed});
        }
        break;
      case 3:
        trace.push_back(AccessEvent{kNoiseB, noise_b});
        noise_b += 7;
        break;
    }
  }
  return trace;
}

}  // namespace

int main() {
  std::printf("== cross-application optimization: producer-consumer detection ==\n\n");

  // --- Hook + monitoring program ---
  HookRegistry hooks;
  std::vector<int64_t> prefetched;
  uint64_t vtime = 0;  // advances per access; refills the rate limiter
  SubsystemBindings bindings;
  bindings.now = [&vtime] { return vtime; };
  bindings.prefetch_emit = [&](int64_t page, int64_t count) {
    for (int64_t i = 0; i < count; ++i) {
      prefetched.push_back(page + i);
    }
  };
  const HookId access_hook =
      *hooks.Register("mm.page_access", HookKind::kMemAccess, bindings);
  const HookId decide_hook =
      *hooks.Register("mm.access_decision", HookKind::kMemPrefetch, bindings);
  ControlPlane cp(&hooks);

  // Monitoring action: push (pid, page) into the ring; remember last page.
  Assembler monitor("xapp_monitor", HookKind::kMemAccess);
  monitor.Call(HelperId::kRecordSample);  // r1 = pid, r2 = page
  monitor.StCtxt(1, 0, 2);
  monitor.MovImm(0, 0).Exit();

  // Copy-ahead action (activated per flagged consumer at runtime): prefetch
  // the next pages of whatever the matched process just accessed.
  Assembler copy_ahead("xapp_copy_ahead", HookKind::kMemPrefetch);
  {
    auto done = copy_ahead.NewLabel();
    copy_ahead.MovImm(2, kCopyAheadDepth);
    copy_ahead.Call(HelperId::kRateLimitCheck);
    copy_ahead.JeqImm(0, 0, done);
    copy_ahead.LdCtxt(6, 1, 0);       // last page this pid touched
    copy_ahead.Mov(1, 6);
    copy_ahead.AddImm(1, 1);
    copy_ahead.MovImm(2, kCopyAheadDepth);
    copy_ahead.Call(HelperId::kPrefetchEmit);
    copy_ahead.Bind(done);
    copy_ahead.MovImm(0, 1);
    copy_ahead.Exit();
  }

  RmtProgramSpec spec;
  spec.name = "cross_app";
  RmtTableSpec monitor_table;
  monitor_table.name = "monitor_tab";
  monitor_table.hook_point = "mm.page_access";
  monitor_table.actions.push_back(std::move(monitor.Build()).value());
  monitor_table.default_action = 0;
  spec.tables.push_back(std::move(monitor_table));
  RmtTableSpec decide_table;
  decide_table.name = "copy_ahead_tab";
  decide_table.hook_point = "mm.access_decision";
  decide_table.actions.push_back(std::move(copy_ahead.Build()).value());
  decide_table.default_action = -1;  // inactive until an entry matches
  spec.tables.push_back(std::move(decide_table));

  Result<ControlPlane::ProgramHandle> handle = cp.Install(spec);
  if (!handle.ok()) {
    std::printf("install failed: %s\n", handle.status().ToString().c_str());
    return 1;
  }
  std::printf("installed monitoring + (dormant) copy-ahead tables\n");

  // --- Phase 1: run the workload; the analysis plane correlates. ---
  const AccessTrace trace = StageWorkload(4000);
  InstalledProgram* program = cp.Get(*handle);

  // Sliding window of recent (pid, page) events, drained from the ring.
  std::deque<RingMap::Record> window;
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> follows;  // (a -> b) counts
  std::map<uint64_t, uint64_t> totals;

  for (const AccessEvent& event : trace) {
    ++vtime;
    hooks.Fire(access_hook, event.pid, std::array<int64_t, 1>{event.page});
    while (true) {
      const auto record = program->sample_ring().Pop();
      if (!record.has_value()) {
        break;
      }
      // Correlate: does this access touch a page someone else touched within
      // the last few events?
      for (const RingMap::Record& past : window) {
        if (past.value == record->value &&
            static_cast<uint64_t>(past.key) != static_cast<uint64_t>(record->key)) {
          ++follows[{static_cast<uint64_t>(past.key), static_cast<uint64_t>(record->key)}];
        }
      }
      ++totals[static_cast<uint64_t>(record->key)];
      window.push_back(*record);
      if (window.size() > 8) {
        window.pop_front();
      }
    }
  }

  std::printf("\npairwise follow-counts (A's page re-touched by B within 8 events):\n");
  std::pair<uint64_t, uint64_t> best_pair{0, 0};
  uint64_t best_count = 0;
  for (const auto& [pair, count] : follows) {
    std::printf("  pid %lu -> pid %lu: %lu\n", static_cast<unsigned long>(pair.first),
                static_cast<unsigned long>(pair.second), static_cast<unsigned long>(count));
    if (count > best_count) {
      best_count = count;
      best_pair = pair;
    }
  }
  if (best_count * 4 < totals[best_pair.second]) {
    std::printf("no producer-consumer pair detected; nothing to optimize\n");
    return 0;
  }
  std::printf("\ndetected producer-consumer pair: pid %lu produces for pid %lu (%lu of %lu "
              "consumer accesses follow the producer)\n",
              static_cast<unsigned long>(best_pair.first),
              static_cast<unsigned long>(best_pair.second),
              static_cast<unsigned long>(best_count),
              static_cast<unsigned long>(totals[best_pair.second]));

  // --- Phase 2: reconfigure the datapath for the pair. ---
  TableEntry activate;
  activate.key = best_pair.first;  // fire copy-ahead when the PRODUCER writes
  activate.action_index = 0;
  if (Status status = cp.AddEntry(*handle, "copy_ahead_tab", activate); !status.ok()) {
    std::printf("entry add failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("activated copy-ahead entry for producer pid %lu — no reinstall, one "
              "control-plane call\n\n",
              static_cast<unsigned long>(best_pair.first));

  // --- Phase 3: replay; measure how many consumer accesses were pre-staged.
  size_t consumer_hits = 0;
  size_t consumer_total = 0;
  std::vector<bool> staged(1 << 17, false);
  for (const AccessEvent& event : trace) {
    ++vtime;
    hooks.Fire(access_hook, event.pid, std::array<int64_t, 1>{event.page});
    if (event.pid == best_pair.first) {
      prefetched.clear();
      hooks.Fire(decide_hook, event.pid, std::array<int64_t, 1>{event.page});
      for (const int64_t page : prefetched) {
        if (page >= 0 && static_cast<size_t>(page) < staged.size()) {
          staged[static_cast<size_t>(page)] = true;
        }
      }
    }
    if (event.pid == best_pair.second) {
      ++consumer_total;
      if (static_cast<size_t>(event.page) < staged.size() &&
          staged[static_cast<size_t>(event.page)]) {
        ++consumer_hits;
      }
    }
  }
  std::printf("with copy-ahead active: %zu of %zu consumer accesses (%.1f%%) were staged "
              "ahead of demand\n",
              consumer_hits, consumer_total, 100.0 * consumer_hits / consumer_total);
  std::printf("\nthe same monitoring, analysis, and reconfiguration would be impossible for "
              "per-application tuning: neither process alone can see the correlation\n");
  return 0;
}
