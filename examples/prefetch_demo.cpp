// Case study #1 live: the RMT/ML prefetcher learning a video-resize access
// pattern online, next to the Linux readahead baseline.
//
// Shows the moving parts of the paper's Figure 1 in motion: the data
// collection table filling the monitoring ring, windows of samples training
// fresh decision trees, models hot-swapping through the control plane, and
// the accuracy-driven adaptation knob.
//
//   $ build/examples/prefetch_demo
#include <cstdio>

#include "src/sim/mem/memory_sim.h"
#include "src/sim/mem/ml_prefetcher.h"
#include "src/sim/mem/readahead.h"
#include "src/workloads/access_trace.h"

int main() {
  using namespace rkd;

  std::printf("== case study 1: page prefetching ==\n\n");

  Rng rng(2021);
  VideoResizeConfig trace_config;
  const AccessTrace trace = MakeVideoResizeTrace(trace_config, rng);
  std::printf("workload: video resize, %zu page accesses, %ld frames\n", trace.size(),
              static_cast<long>(trace_config.frames));

  MemSimConfig sim_config;
  sim_config.frame_capacity = 192;

  // Baseline: Linux-style readahead.
  ReadaheadPrefetcher readahead;
  MemorySim baseline_sim(sim_config, &readahead);
  const MemMetrics baseline = baseline_sim.Run(trace);
  std::printf("\n[linux readahead]  accuracy %5.1f%%  coverage %5.1f%%  completion %.3fs\n",
              baseline.accuracy() * 100, baseline.coverage() * 100,
              baseline.completion_seconds());

  // The RMT pipeline: install, then run in chunks so the learning progress
  // is visible.
  MlPrefetcherConfig ml_config;
  RmtMlPrefetcher prefetcher(ml_config);
  if (Status status = prefetcher.Init(); !status.ok()) {
    std::printf("init failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("\n[rmt_ml_dt] installed program '%s': verified, JIT-compiled, attached to\n"
              "  mm.lookup_swap_cache (data collection) and mm.swap_cluster_readahead "
              "(prediction)\n\n",
              prefetcher.control_plane().Get(prefetcher.handle())->name().c_str());

  MemorySim ml_sim(sim_config, &prefetcher);
  const size_t chunk = trace.size() / 8;
  MemMetrics last{};
  for (size_t start = 0; start < trace.size(); start += chunk) {
    const size_t end = std::min(start + chunk, trace.size());
    const AccessTrace slice(trace.begin() + static_cast<long>(start),
                            trace.begin() + static_cast<long>(end));
    // Note: Run() starts cold each call; for the progress view we re-run the
    // prefix so the cache state is consistent. Learning state persists in
    // the prefetcher across calls, which is the point of the demo.
    const AccessTrace prefix(trace.begin(), trace.begin() + static_cast<long>(end));
    last = ml_sim.Run(prefix);
    std::printf("  after %6zu accesses: windows trained %2lu, rolling accuracy %5.1f%%, "
                "depth knob %ld, cumulative prefetch accuracy %5.1f%%\n",
                end, static_cast<unsigned long>(prefetcher.windows_trained()),
                prefetcher.rolling_accuracy() * 100,
                static_cast<long>(prefetcher.current_depth_knob()),
                last.accuracy() * 100);
  }

  std::printf("\n[rmt_ml_dt]        accuracy %5.1f%%  coverage %5.1f%%  completion %.3fs\n",
              last.accuracy() * 100, last.coverage() * 100, last.completion_seconds());
  std::printf("\nimprovement over readahead: %+.1f accuracy points, %.2fx completion time\n",
              (last.accuracy() - baseline.accuracy()) * 100,
              baseline.completion_seconds() / last.completion_seconds());
  return 0;
}
