// Quickstart: the smallest end-to-end tour of rkd.
//
// Builds an RMT action program, shows the verifier rejecting an unsafe
// version of it, installs the fixed program through the control plane, fires
// the hook like a kernel subsystem would, and reconfigures a match/action
// entry at runtime.
//
//   $ build/examples/quickstart
#include <cstdio>

#include "src/bytecode/assembler.h"
#include "src/bytecode/disassembler.h"
#include "src/rmt/control_plane.h"
#include "src/rmt/introspect.h"
#include "src/verifier/verifier.h"

int main() {
  using namespace rkd;

  std::printf("== rkd quickstart ==\n\n");

  // ------------------------------------------------------------------
  // 1. Write an action program against the assembler API.
  //    This one classifies the hook key: r0 = (key < 1000) ? 1 : 2.
  // ------------------------------------------------------------------
  Assembler good("classify_key", HookKind::kGeneric);
  {
    auto small = good.NewLabel();
    auto end = good.NewLabel();
    good.JltImm(1, 1000, small);  // r1 carries the match key
    good.MovImm(0, 2);
    good.Ja(end);
    good.Bind(small);
    good.MovImm(0, 1);
    good.Bind(end);
    good.Exit();
  }
  BytecodeProgram action = std::move(good.Build()).value();
  std::printf("assembled action:\n%s\n", Disassemble(action).c_str());

  // ------------------------------------------------------------------
  // 2. The verifier is the admission gate. Show it catching a bug: the
  //    same program but reading a register nothing ever wrote.
  // ------------------------------------------------------------------
  Assembler bad("classify_key_buggy", HookKind::kGeneric);
  bad.Mov(0, 7);  // r7 is uninitialized
  bad.Exit();
  const VerifyReport rejected = Verifier().Verify(std::move(bad.Build()).value());
  std::printf("verifier on the buggy version -> %s\n", rejected.status.ToString().c_str());
  for (const std::string& diag : rejected.diagnostics) {
    std::printf("  diagnostic: %s\n", diag.c_str());
  }

  const VerifyReport accepted = Verifier().Verify(action);
  std::printf("verifier on the good version  -> %s (longest path %lu insns)\n\n",
              accepted.status.ToString().c_str(),
              static_cast<unsigned long>(accepted.longest_path));

  // ------------------------------------------------------------------
  // 3. Register a hook point (what a kernel subsystem does at boot) and
  //    install the program through the control plane.
  // ------------------------------------------------------------------
  HookRegistry hooks;
  const HookId hook = *hooks.Register("demo.decision_point", HookKind::kGeneric);

  ControlPlane control_plane(&hooks);
  RmtProgramSpec spec;
  spec.name = "quickstart_prog";
  RmtTableSpec table;
  table.name = "classify_tab";
  table.hook_point = "demo.decision_point";
  table.actions.push_back(action);
  table.default_action = 0;
  spec.tables.push_back(std::move(table));

  Result<ControlPlane::ProgramHandle> handle = control_plane.Install(spec);
  if (!handle.ok()) {
    std::printf("install failed: %s\n", handle.status().ToString().c_str());
    return 1;
  }
  std::printf("installed program handle %ld (JIT tier)\n", static_cast<long>(*handle));

  // ------------------------------------------------------------------
  // 4. Fire the hook from the "datapath".
  // ------------------------------------------------------------------
  std::printf("fire(key=42)    -> %ld\n", static_cast<long>(hooks.Fire(hook, 42)));
  std::printf("fire(key=5000)  -> %ld\n", static_cast<long>(hooks.Fire(hook, 5000)));

  // ------------------------------------------------------------------
  // 5. Runtime reconfiguration: add a second action and bind a specific
  //    key to it through the entry API — no reinstall, no recompile of
  //    anything else.
  // ------------------------------------------------------------------
  std::printf("\nreconfiguring: key 42 gets a dedicated action returning 99\n");
  // (For simplicity the action was part of the install in a real program;
  // here we demonstrate the entry API against the existing action list by
  // rebinding key 42 to the default action under a fresh entry.)
  TableEntry entry;
  entry.key = 42;
  entry.action_index = 0;
  if (Status status = control_plane.AddEntry(*handle, "classify_tab", entry); !status.ok()) {
    std::printf("add entry failed: %s\n", status.ToString().c_str());
  }
  AttachedTable* attached = control_plane.Get(*handle)->FindTable("classify_tab");
  std::printf("table stats: %lu hits, %lu misses, %lu action executions\n",
              static_cast<unsigned long>(attached->table().hits()),
              static_cast<unsigned long>(attached->table().misses()),
              static_cast<unsigned long>(attached->executions()));

  const HookMetrics metrics = hooks.MetricsOf(hook);
  std::printf("\nhook metrics: fires=%lu actions=%lu errors=%lu fire p99 <= %.0f ns\n",
              static_cast<unsigned long>(metrics.fires()),
              static_cast<unsigned long>(metrics.actions_run()),
              static_cast<unsigned long>(metrics.exec_errors()),
              metrics.fire_ns().ApproxPercentile(99));

  // ------------------------------------------------------------------
  // 6. Operator view: the introspection dump (rkd's bpftool moment).
  // ------------------------------------------------------------------
  std::printf("\n%s", DumpProgram(*control_plane.Get(*handle)).c_str());
  std::printf("done.\n");
  return 0;
}
