# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/bytecode_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/jit_test[1]_include.cmake")
include("/root/repo/build/tests/maps_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/rmt_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/sim_mem_test[1]_include.cmake")
include("/root/repo/build/tests/sim_sched_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/forest_guarded_test[1]_include.cmake")
include("/root/repo/build/tests/introspect_test[1]_include.cmake")
include("/root/repo/build/tests/safety_property_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
