# Empty dependencies file for rmt_test.
# This may be replaced when dependencies are built.
