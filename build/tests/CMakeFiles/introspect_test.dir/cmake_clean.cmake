file(REMOVE_RECURSE
  "CMakeFiles/introspect_test.dir/introspect_test.cc.o"
  "CMakeFiles/introspect_test.dir/introspect_test.cc.o.d"
  "introspect_test"
  "introspect_test.pdb"
  "introspect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/introspect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
