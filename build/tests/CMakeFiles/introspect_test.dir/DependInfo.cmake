
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/introspect_test.cc" "tests/CMakeFiles/introspect_test.dir/introspect_test.cc.o" "gcc" "tests/CMakeFiles/introspect_test.dir/introspect_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rmt/CMakeFiles/rkd_rmt.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/rkd_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/verifier/CMakeFiles/rkd_verifier.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/rkd_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/rkd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/rkd_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
