file(REMOVE_RECURSE
  "CMakeFiles/safety_property_test.dir/safety_property_test.cc.o"
  "CMakeFiles/safety_property_test.dir/safety_property_test.cc.o.d"
  "safety_property_test"
  "safety_property_test.pdb"
  "safety_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safety_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
