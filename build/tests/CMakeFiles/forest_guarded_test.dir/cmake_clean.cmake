file(REMOVE_RECURSE
  "CMakeFiles/forest_guarded_test.dir/forest_guarded_test.cc.o"
  "CMakeFiles/forest_guarded_test.dir/forest_guarded_test.cc.o.d"
  "forest_guarded_test"
  "forest_guarded_test.pdb"
  "forest_guarded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forest_guarded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
