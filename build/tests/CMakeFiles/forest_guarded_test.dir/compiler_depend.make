# Empty compiler generated dependencies file for forest_guarded_test.
# This may be replaced when dependencies are built.
