file(REMOVE_RECURSE
  "CMakeFiles/maps_test.dir/maps_test.cc.o"
  "CMakeFiles/maps_test.dir/maps_test.cc.o.d"
  "maps_test"
  "maps_test.pdb"
  "maps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
