file(REMOVE_RECURSE
  "CMakeFiles/rkd_asm.dir/rkd_asm.cc.o"
  "CMakeFiles/rkd_asm.dir/rkd_asm.cc.o.d"
  "rkd_asm"
  "rkd_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rkd_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
