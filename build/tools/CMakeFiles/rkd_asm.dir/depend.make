# Empty dependencies file for rkd_asm.
# This may be replaced when dependencies are built.
