# Empty dependencies file for bench_verifier.
# This may be replaced when dependencies are built.
