# Empty compiler generated dependencies file for ablation_nas.
# This may be replaced when dependencies are built.
