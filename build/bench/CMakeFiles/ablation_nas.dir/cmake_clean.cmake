file(REMOVE_RECURSE
  "CMakeFiles/ablation_nas.dir/ablation_nas.cc.o"
  "CMakeFiles/ablation_nas.dir/ablation_nas.cc.o.d"
  "ablation_nas"
  "ablation_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
