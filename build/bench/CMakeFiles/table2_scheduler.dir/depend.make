# Empty dependencies file for table2_scheduler.
# This may be replaced when dependencies are built.
