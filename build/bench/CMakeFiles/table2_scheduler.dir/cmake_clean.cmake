file(REMOVE_RECURSE
  "CMakeFiles/table2_scheduler.dir/table2_scheduler.cc.o"
  "CMakeFiles/table2_scheduler.dir/table2_scheduler.cc.o.d"
  "table2_scheduler"
  "table2_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
