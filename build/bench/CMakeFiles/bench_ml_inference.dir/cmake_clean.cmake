file(REMOVE_RECURSE
  "CMakeFiles/bench_ml_inference.dir/bench_ml_inference.cc.o"
  "CMakeFiles/bench_ml_inference.dir/bench_ml_inference.cc.o.d"
  "bench_ml_inference"
  "bench_ml_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ml_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
