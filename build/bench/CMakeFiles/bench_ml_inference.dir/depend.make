# Empty dependencies file for bench_ml_inference.
# This may be replaced when dependencies are built.
