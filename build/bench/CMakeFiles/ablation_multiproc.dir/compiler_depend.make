# Empty compiler generated dependencies file for ablation_multiproc.
# This may be replaced when dependencies are built.
