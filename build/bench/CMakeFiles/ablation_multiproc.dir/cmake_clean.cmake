file(REMOVE_RECURSE
  "CMakeFiles/ablation_multiproc.dir/ablation_multiproc.cc.o"
  "CMakeFiles/ablation_multiproc.dir/ablation_multiproc.cc.o.d"
  "ablation_multiproc"
  "ablation_multiproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multiproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
