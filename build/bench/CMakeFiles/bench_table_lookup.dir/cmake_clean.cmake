file(REMOVE_RECURSE
  "CMakeFiles/bench_table_lookup.dir/bench_table_lookup.cc.o"
  "CMakeFiles/bench_table_lookup.dir/bench_table_lookup.cc.o.d"
  "bench_table_lookup"
  "bench_table_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
