# Empty compiler generated dependencies file for bench_table_lookup.
# This may be replaced when dependencies are built.
