file(REMOVE_RECURSE
  "CMakeFiles/table1_prefetch.dir/table1_prefetch.cc.o"
  "CMakeFiles/table1_prefetch.dir/table1_prefetch.cc.o.d"
  "table1_prefetch"
  "table1_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
