# Empty compiler generated dependencies file for table1_prefetch.
# This may be replaced when dependencies are built.
