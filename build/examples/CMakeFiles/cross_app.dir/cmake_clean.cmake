file(REMOVE_RECURSE
  "CMakeFiles/cross_app.dir/cross_app.cpp.o"
  "CMakeFiles/cross_app.dir/cross_app.cpp.o.d"
  "cross_app"
  "cross_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
