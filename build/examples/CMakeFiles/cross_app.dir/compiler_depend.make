# Empty compiler generated dependencies file for cross_app.
# This may be replaced when dependencies are built.
