# Empty compiler generated dependencies file for prefetch_demo.
# This may be replaced when dependencies are built.
