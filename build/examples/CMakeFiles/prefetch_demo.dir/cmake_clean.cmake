file(REMOVE_RECURSE
  "CMakeFiles/prefetch_demo.dir/prefetch_demo.cpp.o"
  "CMakeFiles/prefetch_demo.dir/prefetch_demo.cpp.o.d"
  "prefetch_demo"
  "prefetch_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
