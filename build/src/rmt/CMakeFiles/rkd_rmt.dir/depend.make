# Empty dependencies file for rkd_rmt.
# This may be replaced when dependencies are built.
