file(REMOVE_RECURSE
  "librkd_rmt.a"
)
