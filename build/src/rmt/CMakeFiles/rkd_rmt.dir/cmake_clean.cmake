file(REMOVE_RECURSE
  "CMakeFiles/rkd_rmt.dir/control_plane.cc.o"
  "CMakeFiles/rkd_rmt.dir/control_plane.cc.o.d"
  "CMakeFiles/rkd_rmt.dir/hooks.cc.o"
  "CMakeFiles/rkd_rmt.dir/hooks.cc.o.d"
  "CMakeFiles/rkd_rmt.dir/introspect.cc.o"
  "CMakeFiles/rkd_rmt.dir/introspect.cc.o.d"
  "CMakeFiles/rkd_rmt.dir/pipeline.cc.o"
  "CMakeFiles/rkd_rmt.dir/pipeline.cc.o.d"
  "CMakeFiles/rkd_rmt.dir/syscall.cc.o"
  "CMakeFiles/rkd_rmt.dir/syscall.cc.o.d"
  "CMakeFiles/rkd_rmt.dir/table.cc.o"
  "CMakeFiles/rkd_rmt.dir/table.cc.o.d"
  "librkd_rmt.a"
  "librkd_rmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rkd_rmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
