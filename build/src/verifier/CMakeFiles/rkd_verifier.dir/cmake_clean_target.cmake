file(REMOVE_RECURSE
  "librkd_verifier.a"
)
