file(REMOVE_RECURSE
  "CMakeFiles/rkd_verifier.dir/guards.cc.o"
  "CMakeFiles/rkd_verifier.dir/guards.cc.o.d"
  "CMakeFiles/rkd_verifier.dir/verifier.cc.o"
  "CMakeFiles/rkd_verifier.dir/verifier.cc.o.d"
  "librkd_verifier.a"
  "librkd_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rkd_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
