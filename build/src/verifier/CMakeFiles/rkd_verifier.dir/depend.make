# Empty dependencies file for rkd_verifier.
# This may be replaced when dependencies are built.
