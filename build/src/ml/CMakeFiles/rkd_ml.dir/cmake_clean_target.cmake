file(REMOVE_RECURSE
  "librkd_ml.a"
)
