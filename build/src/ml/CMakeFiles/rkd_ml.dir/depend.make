# Empty dependencies file for rkd_ml.
# This may be replaced when dependencies are built.
