file(REMOVE_RECURSE
  "CMakeFiles/rkd_ml.dir/decision_tree.cc.o"
  "CMakeFiles/rkd_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/rkd_ml.dir/distill.cc.o"
  "CMakeFiles/rkd_ml.dir/distill.cc.o.d"
  "CMakeFiles/rkd_ml.dir/feature_importance.cc.o"
  "CMakeFiles/rkd_ml.dir/feature_importance.cc.o.d"
  "CMakeFiles/rkd_ml.dir/forest.cc.o"
  "CMakeFiles/rkd_ml.dir/forest.cc.o.d"
  "CMakeFiles/rkd_ml.dir/guarded.cc.o"
  "CMakeFiles/rkd_ml.dir/guarded.cc.o.d"
  "CMakeFiles/rkd_ml.dir/linear.cc.o"
  "CMakeFiles/rkd_ml.dir/linear.cc.o.d"
  "CMakeFiles/rkd_ml.dir/mlp.cc.o"
  "CMakeFiles/rkd_ml.dir/mlp.cc.o.d"
  "CMakeFiles/rkd_ml.dir/model_registry.cc.o"
  "CMakeFiles/rkd_ml.dir/model_registry.cc.o.d"
  "CMakeFiles/rkd_ml.dir/nas.cc.o"
  "CMakeFiles/rkd_ml.dir/nas.cc.o.d"
  "CMakeFiles/rkd_ml.dir/online.cc.o"
  "CMakeFiles/rkd_ml.dir/online.cc.o.d"
  "CMakeFiles/rkd_ml.dir/quantize.cc.o"
  "CMakeFiles/rkd_ml.dir/quantize.cc.o.d"
  "CMakeFiles/rkd_ml.dir/serialize.cc.o"
  "CMakeFiles/rkd_ml.dir/serialize.cc.o.d"
  "librkd_ml.a"
  "librkd_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rkd_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
