
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/rkd_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/rkd_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/distill.cc" "src/ml/CMakeFiles/rkd_ml.dir/distill.cc.o" "gcc" "src/ml/CMakeFiles/rkd_ml.dir/distill.cc.o.d"
  "/root/repo/src/ml/feature_importance.cc" "src/ml/CMakeFiles/rkd_ml.dir/feature_importance.cc.o" "gcc" "src/ml/CMakeFiles/rkd_ml.dir/feature_importance.cc.o.d"
  "/root/repo/src/ml/forest.cc" "src/ml/CMakeFiles/rkd_ml.dir/forest.cc.o" "gcc" "src/ml/CMakeFiles/rkd_ml.dir/forest.cc.o.d"
  "/root/repo/src/ml/guarded.cc" "src/ml/CMakeFiles/rkd_ml.dir/guarded.cc.o" "gcc" "src/ml/CMakeFiles/rkd_ml.dir/guarded.cc.o.d"
  "/root/repo/src/ml/linear.cc" "src/ml/CMakeFiles/rkd_ml.dir/linear.cc.o" "gcc" "src/ml/CMakeFiles/rkd_ml.dir/linear.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/rkd_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/rkd_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/model_registry.cc" "src/ml/CMakeFiles/rkd_ml.dir/model_registry.cc.o" "gcc" "src/ml/CMakeFiles/rkd_ml.dir/model_registry.cc.o.d"
  "/root/repo/src/ml/nas.cc" "src/ml/CMakeFiles/rkd_ml.dir/nas.cc.o" "gcc" "src/ml/CMakeFiles/rkd_ml.dir/nas.cc.o.d"
  "/root/repo/src/ml/online.cc" "src/ml/CMakeFiles/rkd_ml.dir/online.cc.o" "gcc" "src/ml/CMakeFiles/rkd_ml.dir/online.cc.o.d"
  "/root/repo/src/ml/quantize.cc" "src/ml/CMakeFiles/rkd_ml.dir/quantize.cc.o" "gcc" "src/ml/CMakeFiles/rkd_ml.dir/quantize.cc.o.d"
  "/root/repo/src/ml/serialize.cc" "src/ml/CMakeFiles/rkd_ml.dir/serialize.cc.o" "gcc" "src/ml/CMakeFiles/rkd_ml.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/rkd_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
