file(REMOVE_RECURSE
  "librkd_base.a"
)
