file(REMOVE_RECURSE
  "CMakeFiles/rkd_base.dir/logging.cc.o"
  "CMakeFiles/rkd_base.dir/logging.cc.o.d"
  "CMakeFiles/rkd_base.dir/rng.cc.o"
  "CMakeFiles/rkd_base.dir/rng.cc.o.d"
  "CMakeFiles/rkd_base.dir/status.cc.o"
  "CMakeFiles/rkd_base.dir/status.cc.o.d"
  "librkd_base.a"
  "librkd_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rkd_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
