# Empty compiler generated dependencies file for rkd_base.
# This may be replaced when dependencies are built.
