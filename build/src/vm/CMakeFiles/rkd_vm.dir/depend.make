# Empty dependencies file for rkd_vm.
# This may be replaced when dependencies are built.
