file(REMOVE_RECURSE
  "librkd_vm.a"
)
