file(REMOVE_RECURSE
  "CMakeFiles/rkd_vm.dir/context_store.cc.o"
  "CMakeFiles/rkd_vm.dir/context_store.cc.o.d"
  "CMakeFiles/rkd_vm.dir/helpers.cc.o"
  "CMakeFiles/rkd_vm.dir/helpers.cc.o.d"
  "CMakeFiles/rkd_vm.dir/jit.cc.o"
  "CMakeFiles/rkd_vm.dir/jit.cc.o.d"
  "CMakeFiles/rkd_vm.dir/maps.cc.o"
  "CMakeFiles/rkd_vm.dir/maps.cc.o.d"
  "CMakeFiles/rkd_vm.dir/vm.cc.o"
  "CMakeFiles/rkd_vm.dir/vm.cc.o.d"
  "librkd_vm.a"
  "librkd_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rkd_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
