
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/context_store.cc" "src/vm/CMakeFiles/rkd_vm.dir/context_store.cc.o" "gcc" "src/vm/CMakeFiles/rkd_vm.dir/context_store.cc.o.d"
  "/root/repo/src/vm/helpers.cc" "src/vm/CMakeFiles/rkd_vm.dir/helpers.cc.o" "gcc" "src/vm/CMakeFiles/rkd_vm.dir/helpers.cc.o.d"
  "/root/repo/src/vm/jit.cc" "src/vm/CMakeFiles/rkd_vm.dir/jit.cc.o" "gcc" "src/vm/CMakeFiles/rkd_vm.dir/jit.cc.o.d"
  "/root/repo/src/vm/maps.cc" "src/vm/CMakeFiles/rkd_vm.dir/maps.cc.o" "gcc" "src/vm/CMakeFiles/rkd_vm.dir/maps.cc.o.d"
  "/root/repo/src/vm/vm.cc" "src/vm/CMakeFiles/rkd_vm.dir/vm.cc.o" "gcc" "src/vm/CMakeFiles/rkd_vm.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/rkd_base.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/rkd_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/rkd_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
