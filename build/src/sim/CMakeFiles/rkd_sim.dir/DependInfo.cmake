
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/mem/leap.cc" "src/sim/CMakeFiles/rkd_sim.dir/mem/leap.cc.o" "gcc" "src/sim/CMakeFiles/rkd_sim.dir/mem/leap.cc.o.d"
  "/root/repo/src/sim/mem/memory_sim.cc" "src/sim/CMakeFiles/rkd_sim.dir/mem/memory_sim.cc.o" "gcc" "src/sim/CMakeFiles/rkd_sim.dir/mem/memory_sim.cc.o.d"
  "/root/repo/src/sim/mem/ml_prefetcher.cc" "src/sim/CMakeFiles/rkd_sim.dir/mem/ml_prefetcher.cc.o" "gcc" "src/sim/CMakeFiles/rkd_sim.dir/mem/ml_prefetcher.cc.o.d"
  "/root/repo/src/sim/mem/readahead.cc" "src/sim/CMakeFiles/rkd_sim.dir/mem/readahead.cc.o" "gcc" "src/sim/CMakeFiles/rkd_sim.dir/mem/readahead.cc.o.d"
  "/root/repo/src/sim/sched/cfs_sim.cc" "src/sim/CMakeFiles/rkd_sim.dir/sched/cfs_sim.cc.o" "gcc" "src/sim/CMakeFiles/rkd_sim.dir/sched/cfs_sim.cc.o.d"
  "/root/repo/src/sim/sched/rmt_oracle.cc" "src/sim/CMakeFiles/rkd_sim.dir/sched/rmt_oracle.cc.o" "gcc" "src/sim/CMakeFiles/rkd_sim.dir/sched/rmt_oracle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/rkd_base.dir/DependInfo.cmake"
  "/root/repo/build/src/rmt/CMakeFiles/rkd_rmt.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/rkd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rkd_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/rkd_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/verifier/CMakeFiles/rkd_verifier.dir/DependInfo.cmake"
  "/root/repo/build/src/bytecode/CMakeFiles/rkd_bytecode.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
