# Empty dependencies file for rkd_sim.
# This may be replaced when dependencies are built.
