file(REMOVE_RECURSE
  "CMakeFiles/rkd_sim.dir/mem/leap.cc.o"
  "CMakeFiles/rkd_sim.dir/mem/leap.cc.o.d"
  "CMakeFiles/rkd_sim.dir/mem/memory_sim.cc.o"
  "CMakeFiles/rkd_sim.dir/mem/memory_sim.cc.o.d"
  "CMakeFiles/rkd_sim.dir/mem/ml_prefetcher.cc.o"
  "CMakeFiles/rkd_sim.dir/mem/ml_prefetcher.cc.o.d"
  "CMakeFiles/rkd_sim.dir/mem/readahead.cc.o"
  "CMakeFiles/rkd_sim.dir/mem/readahead.cc.o.d"
  "CMakeFiles/rkd_sim.dir/sched/cfs_sim.cc.o"
  "CMakeFiles/rkd_sim.dir/sched/cfs_sim.cc.o.d"
  "CMakeFiles/rkd_sim.dir/sched/rmt_oracle.cc.o"
  "CMakeFiles/rkd_sim.dir/sched/rmt_oracle.cc.o.d"
  "librkd_sim.a"
  "librkd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rkd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
