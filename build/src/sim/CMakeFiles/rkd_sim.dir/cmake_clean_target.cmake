file(REMOVE_RECURSE
  "librkd_sim.a"
)
