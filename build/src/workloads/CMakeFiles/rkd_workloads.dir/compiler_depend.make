# Empty compiler generated dependencies file for rkd_workloads.
# This may be replaced when dependencies are built.
