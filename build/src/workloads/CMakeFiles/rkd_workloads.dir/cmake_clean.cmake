file(REMOVE_RECURSE
  "CMakeFiles/rkd_workloads.dir/access_trace.cc.o"
  "CMakeFiles/rkd_workloads.dir/access_trace.cc.o.d"
  "CMakeFiles/rkd_workloads.dir/cpu_jobs.cc.o"
  "CMakeFiles/rkd_workloads.dir/cpu_jobs.cc.o.d"
  "librkd_workloads.a"
  "librkd_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rkd_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
