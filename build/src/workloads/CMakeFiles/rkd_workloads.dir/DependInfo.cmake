
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/access_trace.cc" "src/workloads/CMakeFiles/rkd_workloads.dir/access_trace.cc.o" "gcc" "src/workloads/CMakeFiles/rkd_workloads.dir/access_trace.cc.o.d"
  "/root/repo/src/workloads/cpu_jobs.cc" "src/workloads/CMakeFiles/rkd_workloads.dir/cpu_jobs.cc.o" "gcc" "src/workloads/CMakeFiles/rkd_workloads.dir/cpu_jobs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/rkd_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
