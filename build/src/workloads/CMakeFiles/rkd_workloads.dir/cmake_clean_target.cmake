file(REMOVE_RECURSE
  "librkd_workloads.a"
)
