# Empty dependencies file for rkd_bytecode.
# This may be replaced when dependencies are built.
