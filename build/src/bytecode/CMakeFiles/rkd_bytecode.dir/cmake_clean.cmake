file(REMOVE_RECURSE
  "CMakeFiles/rkd_bytecode.dir/assembler.cc.o"
  "CMakeFiles/rkd_bytecode.dir/assembler.cc.o.d"
  "CMakeFiles/rkd_bytecode.dir/disassembler.cc.o"
  "CMakeFiles/rkd_bytecode.dir/disassembler.cc.o.d"
  "CMakeFiles/rkd_bytecode.dir/isa.cc.o"
  "CMakeFiles/rkd_bytecode.dir/isa.cc.o.d"
  "CMakeFiles/rkd_bytecode.dir/parser.cc.o"
  "CMakeFiles/rkd_bytecode.dir/parser.cc.o.d"
  "CMakeFiles/rkd_bytecode.dir/serialize.cc.o"
  "CMakeFiles/rkd_bytecode.dir/serialize.cc.o.d"
  "librkd_bytecode.a"
  "librkd_bytecode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rkd_bytecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
