
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bytecode/assembler.cc" "src/bytecode/CMakeFiles/rkd_bytecode.dir/assembler.cc.o" "gcc" "src/bytecode/CMakeFiles/rkd_bytecode.dir/assembler.cc.o.d"
  "/root/repo/src/bytecode/disassembler.cc" "src/bytecode/CMakeFiles/rkd_bytecode.dir/disassembler.cc.o" "gcc" "src/bytecode/CMakeFiles/rkd_bytecode.dir/disassembler.cc.o.d"
  "/root/repo/src/bytecode/isa.cc" "src/bytecode/CMakeFiles/rkd_bytecode.dir/isa.cc.o" "gcc" "src/bytecode/CMakeFiles/rkd_bytecode.dir/isa.cc.o.d"
  "/root/repo/src/bytecode/parser.cc" "src/bytecode/CMakeFiles/rkd_bytecode.dir/parser.cc.o" "gcc" "src/bytecode/CMakeFiles/rkd_bytecode.dir/parser.cc.o.d"
  "/root/repo/src/bytecode/serialize.cc" "src/bytecode/CMakeFiles/rkd_bytecode.dir/serialize.cc.o" "gcc" "src/bytecode/CMakeFiles/rkd_bytecode.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/rkd_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
