file(REMOVE_RECURSE
  "librkd_bytecode.a"
)
