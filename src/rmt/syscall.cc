#include "src/rmt/syscall.h"

namespace rkd {

Result<int64_t> RmtSyscall(ControlPlane& cp, RmtCmd cmd, const RmtSyscallArgs& args) {
  switch (cmd) {
    case RmtCmd::kProgLoad: {
      if (args.spec == nullptr) {
        return InvalidArgumentError("kProgLoad requires a program spec");
      }
      RKD_ASSIGN_OR_RETURN(ControlPlane::ProgramHandle handle,
                           cp.Install(*args.spec, args.tier));
      return static_cast<int64_t>(handle);
    }
    case RmtCmd::kProgUnload:
      RKD_RETURN_IF_ERROR(cp.Uninstall(args.handle));
      return 0;
    case RmtCmd::kEntryAdd:
      RKD_RETURN_IF_ERROR(cp.AddEntry(args.handle, args.table, args.entry));
      return 0;
    case RmtCmd::kEntryRemove:
      RKD_RETURN_IF_ERROR(cp.RemoveEntry(args.handle, args.table, args.key, args.key2));
      return 0;
    case RmtCmd::kEntryModify:
      RKD_RETURN_IF_ERROR(cp.ModifyEntry(args.handle, args.table, args.entry.key,
                                         args.entry.key2, args.entry.action_index,
                                         args.entry.model_slot));
      return 0;
    case RmtCmd::kModelInstall:
      RKD_RETURN_IF_ERROR(cp.InstallModel(args.handle, args.slot, args.model));
      return 0;
    case RmtCmd::kMapWrite:
      RKD_RETURN_IF_ERROR(
          cp.WriteMap(args.handle, args.map_id, static_cast<int64_t>(args.key), args.value));
      return 0;
    case RmtCmd::kMapRead:
      return cp.ReadMap(args.handle, args.map_id, static_cast<int64_t>(args.key));
  }
  return InvalidArgumentError("unknown RMT syscall command");
}

}  // namespace rkd
