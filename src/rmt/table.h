// Reconfigurable match/action tables (paper section 3.1).
//
// "Each table represents a key decision point in the kernel datapath ...
// Each entry represents a decision control flow." A table is installed at a
// hook point; at fire time the current execution context's match key (PID,
// inode, cgroup id, ...) is looked up and the matching entry's action program
// runs. Entries can be inserted/removed at runtime through the control-plane
// API ("new entries are inserted when a file is opened").
//
// Match kinds mirror the RMT switch abstraction the design borrows:
//   kExact   - key == entry.key (hash lookup)
//   kLpm     - longest-prefix match on the key's high bits (aggregates:
//              address regions, directory subtrees encoded as prefixes)
//   kRange   - entry.key <= key <= entry.key2 (PID ranges, size classes)
//   kTernary - (key & entry.key2) == (entry.key & entry.key2), highest
//              priority wins (cgroup/flag masks)
//
// Concurrency model (see DESIGN.md "Concurrency model"): every mutation
// compiles and publishes an immutable index snapshot through an EpochPtr —
// exact is a hash, LPM probes one hash per distinct prefix length (longest
// first), range binary-searches a flattened disjoint segment array, ternary
// probes one hash per distinct mask in descending max-priority order with
// early exit. Match/Peek are wait-free pointer loads against the current
// snapshot; concurrent callers must hold an EpochGuard on the global domain
// across the lookup and any use of the returned entry (the fire path pins
// once per Fire). Writers serialize externally (the control plane's
// contract), paying the O(n) rebuild on the rare reconfiguration side.
// TableIndexMode::kLinear keeps the naive O(n) scans — over the snapshot's
// entry copy — for A/B benchmarking and as the semantic reference the
// property tests compare against.
#ifndef SRC_RMT_TABLE_H_
#define SRC_RMT_TABLE_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/epoch.h"
#include "src/base/status.h"
#include "src/bytecode/program.h"
#include "src/telemetry/telemetry.h"

namespace rkd {

enum class MatchKind { kExact, kLpm, kRange, kTernary };

std::string_view MatchKindName(MatchKind kind);

// How the published snapshot resolves a key. kCompiled is the datapath
// default; kLinear is the naive reference scan, kept selectable for A/B
// benchmarks and for the randomized equivalence tests.
enum class TableIndexMode { kLinear, kCompiled };

struct TableEntry {
  uint64_t key = 0;   // exact value | prefix value | range low | ternary value
  uint64_t key2 = 0;  // unused      | prefix bits  | range high | ternary mask
  int32_t priority = 0;      // ternary tie-break: higher wins
  int32_t action_index = -1; // index into the table's action programs; -1 = default
  int64_t model_slot = -1;   // model registry slot this entry prefers (informational)
};

class RmtTable {
 public:
  RmtTable(std::string name, MatchKind match_kind, size_t max_entries,
           TableIndexMode index_mode = TableIndexMode::kCompiled);

  // Writer context only: a table may be moved (into its attachment) before
  // the datapath can observe it, never while readers are live.
  RmtTable(RmtTable&& other) noexcept;
  RmtTable& operator=(RmtTable&&) = delete;
  RmtTable(const RmtTable&) = delete;
  RmtTable& operator=(const RmtTable&) = delete;

  // Inserts an entry and publishes a fresh index snapshot. Fails when full
  // or when an identical match spec exists (use Modify to change an action
  // in place).
  Status Insert(const TableEntry& entry);

  // Bulk load: validates and appends every entry, publishing one snapshot
  // for the whole batch instead of one per entry (initial population of
  // large tables would otherwise rebuild the index quadratically). All-or-
  // nothing: on any invalid entry nothing is inserted or published.
  Status InsertBatch(std::span<const TableEntry> batch);

  // Removes the entry with the same match spec (key/key2); publishes.
  Status Remove(uint64_t key, uint64_t key2 = 0);

  // Replaces the action binding of an existing entry; publishes (snapshots
  // are immutable, so even an in-place action change is a new snapshot).
  Status Modify(uint64_t key, uint64_t key2, int32_t action_index, int64_t model_slot);

  // Looks up `key` in the current snapshot; returns nullptr on miss.
  // Updates hit/miss counters. Wait-free. Under concurrent mutation the
  // caller must hold an EpochGuard on GlobalEpochDomain() across the call
  // and any dereference of the returned entry.
  const TableEntry* Match(uint64_t key);

  // Lookup without statistics side effects (control-plane inspection). Same
  // guard contract as Match.
  const TableEntry* Peek(uint64_t key) const;

  // Binds hit/miss counters and the entry-count gauge into `telemetry` under
  // "rkd.table.<name>.*" so exporters (rkd_stats) can see table activity.
  // The private hits()/misses() members keep counting either way.
  void BindTelemetry(TelemetryRegistry* telemetry);

  const std::string& name() const { return name_; }
  MatchKind match_kind() const { return match_kind_; }
  size_t size() const { return entries_.size(); }
  size_t max_entries() const { return max_entries_; }
  // Merged across per-thread shards (see ShardedCounter): race-free under
  // the multi-threaded driver, exact once fires quiesce.
  uint64_t hits() const { return hits_.value(); }
  uint64_t misses() const { return misses_.value(); }

  TableIndexMode index_mode() const { return index_mode_; }
  // Republishes the current entries under the new mode (atomic flip: no
  // reader ever sees a half-switched index).
  void set_index_mode(TableIndexMode mode);

  // Snapshots published since construction: every successful mutation is
  // exactly one publish, so this doubles as the mutation count.
  uint64_t version() const { return version_.load(std::memory_order_relaxed); }

  // The version cell itself, for the tier-3 specializer's entry guard: one
  // load per fire compared against the version pinned at specialize time.
  const std::atomic<uint64_t>* version_cell() const { return &version_; }

  // Writer-side master copy in insertion order (control-plane inspection;
  // not for concurrent readers — they match through the snapshot).
  const std::vector<TableEntry>& entries() const { return entries_; }

 private:
  // LPM: one hash bucket per distinct prefix length, longest first. A probe
  // is one mask + one hash lookup; the first hit is the longest match.
  struct LpmBucket {
    uint64_t bits = 0;
    uint64_t mask = 0;
    std::unordered_map<uint64_t, size_t> slots;  // (key & mask) -> entry index
  };

  // Range: overlapping entries flattened into disjoint segments covering
  // [start, next.start); entry < 0 marks a gap. Lookup is one upper_bound.
  struct RangeSegment {
    uint64_t start = 0;
    int64_t entry = -1;
  };

  // Ternary: entries grouped by distinct mask; within a group only the
  // winner of each (key & mask) cell can ever win globally, so cells store
  // the winner directly. Groups are probed in descending max-priority
  // order, stopping once the current best strictly beats all later groups.
  struct TernaryGroup {
    uint64_t mask = 0;
    int32_t max_priority = 0;
    std::unordered_map<uint64_t, size_t> slots;  // (key & mask) -> entry index
  };

  // The immutable published form: a copy of the entries (insertion order —
  // the tie-break rules depend on it) plus the compiled structures indexing
  // into that copy. Readers dereference entries of the snapshot they
  // loaded, so a returned TableEntry* stays valid for as long as the
  // reader's epoch guard is held, regardless of later mutations.
  struct Index {
    TableIndexMode mode = TableIndexMode::kCompiled;
    std::vector<TableEntry> entries;
    std::unordered_map<uint64_t, size_t> exact;
    std::vector<LpmBucket> lpm;
    std::vector<RangeSegment> range;
    std::vector<TernaryGroup> ternary;
  };

  Status Validate(const TableEntry& entry) const;
  const TableEntry* FindSpec(uint64_t key, uint64_t key2) const;
  void PublishIndex();

  static const TableEntry* MatchLinear(const Index& index, MatchKind kind, uint64_t key);
  static const TableEntry* MatchCompiled(const Index& index, MatchKind kind, uint64_t key);

  // Defined here so Match/Peek inline it: exact/compiled is the dominant
  // datapath shape, and keeping its probe call-free holds the lookup at
  // pre-snapshot cost.
  const TableEntry* MatchIn(const Index& index, uint64_t key) const {
    if (match_kind_ == MatchKind::kExact && index.mode == TableIndexMode::kCompiled) {
      const auto it = index.exact.find(key);
      return it == index.exact.end() ? nullptr : &index.entries[it->second];
    }
    return index.mode == TableIndexMode::kLinear ? MatchLinear(index, match_kind_, key)
                                                 : MatchCompiled(index, match_kind_, key);
  }

  std::string name_;
  MatchKind match_kind_;
  size_t max_entries_;
  TableIndexMode index_mode_;         // writer-side; copied into each snapshot
  std::vector<TableEntry> entries_;   // writer-side master, insertion order
  std::atomic<uint64_t> version_{0};  // publishes since construction

  EpochPtr<const Index> index_;

  ShardedCounter hits_;
  ShardedCounter misses_;
  // Optional exported mirrors of the private stats ("rkd.table.<name>.*").
  Counter* hits_counter_ = nullptr;
  Counter* misses_counter_ = nullptr;
  Gauge* entries_gauge_ = nullptr;
};

}  // namespace rkd

#endif  // SRC_RMT_TABLE_H_
