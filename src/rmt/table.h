// Reconfigurable match/action tables (paper section 3.1).
//
// "Each table represents a key decision point in the kernel datapath ...
// Each entry represents a decision control flow." A table is installed at a
// hook point; at fire time the current execution context's match key (PID,
// inode, cgroup id, ...) is looked up and the matching entry's action program
// runs. Entries can be inserted/removed at runtime through the control-plane
// API ("new entries are inserted when a file is opened").
//
// Match kinds mirror the RMT switch abstraction the design borrows:
//   kExact   - key == entry.key (hash lookup)
//   kLpm     - longest-prefix match on the key's high bits (aggregates:
//              address regions, directory subtrees encoded as prefixes)
//   kRange   - entry.key <= key <= entry.key2 (PID ranges, size classes)
//   kTernary - (key & entry.key2) == (entry.key & entry.key2), highest
//              priority wins (cgroup/flag masks)
//
// Lookup cost: the datapath matches through a compiled index (see
// DESIGN.md "Fire-path performance") rebuilt lazily after mutations —
// exact is a maintained hash, LPM probes one hash per distinct prefix
// length (longest first), range binary-searches a flattened disjoint
// segment array, ternary probes one hash per distinct mask in descending
// max-priority order with early exit. TableIndexMode::kLinear keeps the
// naive O(n) scans for A/B benchmarking and as the semantic reference the
// property tests compare against.
#ifndef SRC_RMT_TABLE_H_
#define SRC_RMT_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/bytecode/program.h"
#include "src/telemetry/telemetry.h"

namespace rkd {

enum class MatchKind { kExact, kLpm, kRange, kTernary };

std::string_view MatchKindName(MatchKind kind);

// How MatchImpl resolves a key. kCompiled is the datapath default; kLinear
// is the naive reference scan, kept selectable for A/B benchmarks and for
// the randomized equivalence tests.
enum class TableIndexMode { kLinear, kCompiled };

struct TableEntry {
  uint64_t key = 0;   // exact value | prefix value | range low | ternary value
  uint64_t key2 = 0;  // unused      | prefix bits  | range high | ternary mask
  int32_t priority = 0;      // ternary tie-break: higher wins
  int32_t action_index = -1; // index into the table's action programs; -1 = default
  int64_t model_slot = -1;   // model registry slot this entry prefers (informational)
};

class RmtTable {
 public:
  RmtTable(std::string name, MatchKind match_kind, size_t max_entries,
           TableIndexMode index_mode = TableIndexMode::kCompiled);

  // Inserts an entry. Fails when full or when an identical match spec exists
  // (use ModifyEntry to change an action in place).
  Status Insert(const TableEntry& entry);

  // Removes the entry with the same match spec (key/key2).
  Status Remove(uint64_t key, uint64_t key2 = 0);

  // Replaces the action binding of an existing entry.
  Status Modify(uint64_t key, uint64_t key2, int32_t action_index, int64_t model_slot);

  // Looks up `key`; returns nullptr on miss. Updates hit/miss counters.
  const TableEntry* Match(uint64_t key);

  // Lookup without statistics side effects (control-plane inspection).
  const TableEntry* Peek(uint64_t key) const;

  // Binds hit/miss counters and the entry-count gauge into `telemetry` under
  // "rkd.table.<name>.*" so exporters (rkd_stats) can see table activity.
  // The private hits()/misses() members keep counting either way. Mutation
  // and match share the table's external-synchronization contract, so plain
  // counter increments are safe here.
  void BindTelemetry(TelemetryRegistry* telemetry);

  const std::string& name() const { return name_; }
  MatchKind match_kind() const { return match_kind_; }
  size_t size() const { return entries_.size(); }
  size_t max_entries() const { return max_entries_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  TableIndexMode index_mode() const { return index_mode_; }
  void set_index_mode(TableIndexMode mode);
  // Mutations since construction; a compiled index is stamped with the epoch
  // it was built at and rebuilt lazily when stale.
  uint64_t mutation_epoch() const { return epoch_; }
  uint64_t index_rebuilds() const { return index_rebuilds_; }

  // Entry storage order is an implementation detail: exact-kind removal
  // swaps with the last entry, so positions are not stable across Remove.
  const std::vector<TableEntry>& entries() const { return entries_; }

 private:
  const TableEntry* FindSpec(uint64_t key, uint64_t key2) const;
  const TableEntry* MatchImpl(uint64_t key) const;
  const TableEntry* MatchLinear(uint64_t key) const;
  const TableEntry* MatchCompiled(uint64_t key) const;
  void CompileIndex() const;
  void MarkDirty();

  std::string name_;
  MatchKind match_kind_;
  size_t max_entries_;
  TableIndexMode index_mode_;
  std::vector<TableEntry> entries_;

  // Exact-match index: key -> index into entries_, maintained incrementally
  // (insert appends; remove swap-and-pops and patches the one displaced
  // slot). Exact keys are unique (Insert enforces it), so the index is a
  // bijection over the entries.
  std::unordered_map<uint64_t, size_t> exact_index_;

  // --- Compiled index state (non-exact kinds). Lazily rebuilt, so lookups
  // through const Peek() must be able to compile: mutable by design. The
  // table's concurrency contract (control-plane mutation is externally
  // synchronized against datapath matches) covers the rebuild.
  uint64_t epoch_ = 0;
  mutable uint64_t compiled_epoch_ = 0;
  mutable bool index_dirty_ = false;
  mutable uint64_t index_rebuilds_ = 0;

  // LPM: one hash bucket per distinct prefix length, longest first. A probe
  // is one mask + one hash lookup; the first hit is the longest match.
  struct LpmBucket {
    uint64_t bits = 0;
    uint64_t mask = 0;
    std::unordered_map<uint64_t, size_t> slots;  // (key & mask) -> entry index
  };
  mutable std::vector<LpmBucket> lpm_buckets_;

  // Range: overlapping entries flattened into disjoint segments covering
  // [start, next.start); entry < 0 marks a gap. Lookup is one upper_bound.
  struct RangeSegment {
    uint64_t start = 0;
    int64_t entry = -1;
  };
  mutable std::vector<RangeSegment> range_segments_;

  // Ternary: entries grouped by distinct mask; within a group only the
  // winner of each (key & mask) cell can ever win globally, so cells store
  // the winner directly. Groups are probed in descending max-priority
  // order, stopping once the current best strictly beats all later groups.
  struct TernaryGroup {
    uint64_t mask = 0;
    int32_t max_priority = 0;
    std::unordered_map<uint64_t, size_t> slots;  // (key & mask) -> entry index
  };
  mutable std::vector<TernaryGroup> ternary_groups_;

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  // Optional exported mirrors of the private stats ("rkd.table.<name>.*").
  Counter* hits_counter_ = nullptr;
  Counter* misses_counter_ = nullptr;
  Gauge* entries_gauge_ = nullptr;
};

}  // namespace rkd

#endif  // SRC_RMT_TABLE_H_
