// Reconfigurable match/action tables (paper section 3.1).
//
// "Each table represents a key decision point in the kernel datapath ...
// Each entry represents a decision control flow." A table is installed at a
// hook point; at fire time the current execution context's match key (PID,
// inode, cgroup id, ...) is looked up and the matching entry's action program
// runs. Entries can be inserted/removed at runtime through the control-plane
// API ("new entries are inserted when a file is opened").
//
// Match kinds mirror the RMT switch abstraction the design borrows:
//   kExact   - key == entry.key (hash lookup)
//   kLpm     - longest-prefix match on the key's high bits (aggregates:
//              address regions, directory subtrees encoded as prefixes)
//   kRange   - entry.key <= key <= entry.key2 (PID ranges, size classes)
//   kTernary - (key & entry.key2) == (entry.key & entry.key2), highest
//              priority wins (cgroup/flag masks)
#ifndef SRC_RMT_TABLE_H_
#define SRC_RMT_TABLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/bytecode/program.h"

namespace rkd {

enum class MatchKind { kExact, kLpm, kRange, kTernary };

std::string_view MatchKindName(MatchKind kind);

struct TableEntry {
  uint64_t key = 0;   // exact value | prefix value | range low | ternary value
  uint64_t key2 = 0;  // unused      | prefix bits  | range high | ternary mask
  int32_t priority = 0;      // ternary tie-break: higher wins
  int32_t action_index = -1; // index into the table's action programs; -1 = default
  int64_t model_slot = -1;   // model registry slot this entry prefers (informational)
};

class RmtTable {
 public:
  RmtTable(std::string name, MatchKind match_kind, size_t max_entries);

  // Inserts an entry. Fails when full or when an identical match spec exists
  // (use ModifyEntry to change an action in place).
  Status Insert(const TableEntry& entry);

  // Removes the entry with the same match spec (key/key2).
  Status Remove(uint64_t key, uint64_t key2 = 0);

  // Replaces the action binding of an existing entry.
  Status Modify(uint64_t key, uint64_t key2, int32_t action_index, int64_t model_slot);

  // Looks up `key`; returns nullptr on miss. Updates hit/miss counters.
  const TableEntry* Match(uint64_t key);

  // Lookup without statistics side effects (control-plane inspection).
  const TableEntry* Peek(uint64_t key) const;

  const std::string& name() const { return name_; }
  MatchKind match_kind() const { return match_kind_; }
  size_t size() const { return entries_.size(); }
  size_t max_entries() const { return max_entries_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  const std::vector<TableEntry>& entries() const { return entries_; }

 private:
  const TableEntry* FindSpec(uint64_t key, uint64_t key2) const;
  const TableEntry* MatchImpl(uint64_t key) const;

  std::string name_;
  MatchKind match_kind_;
  size_t max_entries_;
  std::vector<TableEntry> entries_;
  // Exact-match index: key -> index into entries_. Rebuilt on remove (removal
  // is a control-plane operation; the datapath only matches).
  std::unordered_map<uint64_t, size_t> exact_index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace rkd

#endif  // SRC_RMT_TABLE_H_
