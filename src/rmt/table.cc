#include "src/rmt/table.h"

#include <algorithm>
#include <array>
#include <memory>
#include <set>
#include <utility>

namespace rkd {

std::string_view MatchKindName(MatchKind kind) {
  switch (kind) {
    case MatchKind::kExact:
      return "exact";
    case MatchKind::kLpm:
      return "lpm";
    case MatchKind::kRange:
      return "range";
    case MatchKind::kTernary:
      return "ternary";
  }
  return "unknown";
}

namespace {

// True when `key` falls under an LPM entry matching the top `bits` bits.
bool LpmMatches(uint64_t key, uint64_t value, uint64_t bits) {
  if (bits == 0) {
    return true;  // default route
  }
  if (bits >= 64) {
    return key == value;
  }
  const uint64_t mask = ~0ull << (64 - bits);
  return (key & mask) == (value & mask);
}

uint64_t LpmMask(uint64_t bits) {
  if (bits == 0) {
    return 0;
  }
  if (bits >= 64) {
    return ~0ull;
  }
  return ~0ull << (64 - bits);
}

}  // namespace

RmtTable::RmtTable(std::string name, MatchKind match_kind, size_t max_entries,
                   TableIndexMode index_mode)
    : name_(std::move(name)),
      match_kind_(match_kind),
      max_entries_(max_entries),
      index_mode_(index_mode) {}

RmtTable::RmtTable(RmtTable&& other) noexcept
    : name_(std::move(other.name_)),
      match_kind_(other.match_kind_),
      max_entries_(other.max_entries_),
      index_mode_(other.index_mode_),
      entries_(std::move(other.entries_)),
      version_(other.version_.load(std::memory_order_relaxed)),
      index_(std::move(other.index_)),
      hits_(std::move(other.hits_)),
      misses_(std::move(other.misses_)),
      hits_counter_(other.hits_counter_),
      misses_counter_(other.misses_counter_),
      entries_gauge_(other.entries_gauge_) {}

void RmtTable::set_index_mode(TableIndexMode mode) {
  index_mode_ = mode;
  PublishIndex();  // atomic flip: readers see either the old or new form whole
}

void RmtTable::BindTelemetry(TelemetryRegistry* telemetry) {
  if (telemetry == nullptr) {
    hits_counter_ = nullptr;
    misses_counter_ = nullptr;
    entries_gauge_ = nullptr;
    return;
  }
  const std::string prefix = "rkd.table." + name_;
  hits_counter_ = telemetry->GetCounter(prefix + ".hits");
  misses_counter_ = telemetry->GetCounter(prefix + ".misses");
  entries_gauge_ = telemetry->GetGauge(prefix + ".entries");
  entries_gauge_->Set(static_cast<double>(entries_.size()));
}

const TableEntry* RmtTable::FindSpec(uint64_t key, uint64_t key2) const {
  for (const TableEntry& entry : entries_) {
    if (entry.key == key && entry.key2 == key2) {
      return &entry;
    }
  }
  return nullptr;
}

Status RmtTable::Validate(const TableEntry& entry) const {
  if (match_kind_ == MatchKind::kExact) {
    // Exact keys are unique outright: key2 plays no role in exact matching,
    // so a second entry for the same key could never be matched.
    for (const TableEntry& existing : entries_) {
      if (existing.key == entry.key) {
        return AlreadyExistsError("table '" + name_ + "' already has this exact key");
      }
    }
  } else if (FindSpec(entry.key, entry.key2) != nullptr) {
    return AlreadyExistsError("table '" + name_ + "' already has this match spec");
  }
  if (match_kind_ == MatchKind::kRange && entry.key > entry.key2) {
    return InvalidArgumentError("range entry has low > high");
  }
  if (match_kind_ == MatchKind::kLpm && entry.key2 > 64) {
    return InvalidArgumentError("lpm prefix length exceeds 64");
  }
  return OkStatus();
}

Status RmtTable::Insert(const TableEntry& entry) {
  if (entries_.size() >= max_entries_) {
    return ResourceExhaustedError("table '" + name_ + "' is full (" +
                                  std::to_string(max_entries_) + " entries)");
  }
  RKD_RETURN_IF_ERROR(Validate(entry));
  entries_.push_back(entry);
  PublishIndex();
  return OkStatus();
}

Status RmtTable::InsertBatch(std::span<const TableEntry> batch) {
  if (entries_.size() + batch.size() > max_entries_) {
    return ResourceExhaustedError("table '" + name_ + "' cannot hold " +
                                  std::to_string(batch.size()) + " more entries (" +
                                  std::to_string(max_entries_) + " max)");
  }
  const size_t before = entries_.size();
  for (const TableEntry& entry : batch) {
    const Status valid = Validate(entry);
    if (!valid.ok()) {
      entries_.resize(before);  // all-or-nothing: nothing was published yet
      return valid;
    }
    entries_.push_back(entry);  // grow as we go so in-batch duplicates fail too
  }
  if (!batch.empty()) {
    PublishIndex();
  }
  return OkStatus();
}

Status RmtTable::Remove(uint64_t key, uint64_t key2) {
  const auto it = std::find_if(entries_.begin(), entries_.end(), [&](const TableEntry& entry) {
    return entry.key == key && entry.key2 == key2;
  });
  if (it == entries_.end()) {
    return NotFoundError("no entry with this match spec in table '" + name_ + "'");
  }
  // Erase in place: entry position encodes insertion order, which the match
  // semantics' tie-breaks depend on (the snapshot rebuild below re-indexes
  // everything anyway, so there is nothing to patch incrementally).
  entries_.erase(it);
  PublishIndex();
  return OkStatus();
}

Status RmtTable::Modify(uint64_t key, uint64_t key2, int32_t action_index, int64_t model_slot) {
  for (TableEntry& entry : entries_) {
    if (entry.key == key && entry.key2 == key2) {
      entry.action_index = action_index;
      entry.model_slot = model_slot;
      // Snapshots carry entry copies, so even an action-only change must
      // republish to become visible to readers.
      PublishIndex();
      return OkStatus();
    }
  }
  return NotFoundError("no entry with this match spec in table '" + name_ + "'");
}

void RmtTable::PublishIndex() {
  auto index = std::make_unique<Index>();
  index->mode = index_mode_;
  index->entries = entries_;

  if (index->mode == TableIndexMode::kCompiled) {
    switch (match_kind_) {
      case MatchKind::kExact: {
        index->exact.reserve(index->entries.size());
        for (size_t i = 0; i < index->entries.size(); ++i) {
          // emplace keeps the first entry per key; Insert enforces
          // uniqueness, so this is a bijection over the entries.
          index->exact.emplace(index->entries[i].key, i);
        }
        break;
      }

      case MatchKind::kLpm: {
        // Counting pre-pass: one bucket per distinct prefix length, each hash
        // table sized once. Without the reserve, building a 10k+ route table
        // rehashed every bucket log-many times per publish — and Insert()
        // publishes per call.
        std::array<uint32_t, 65> count_of{};
        std::array<int32_t, 65> bucket_of;
        bucket_of.fill(-1);
        size_t distinct = 0;
        for (const TableEntry& entry : index->entries) {
          if (count_of[static_cast<size_t>(entry.key2)]++ == 0) {
            ++distinct;
          }
        }
        index->lpm.reserve(distinct);
        for (size_t i = 0; i < index->entries.size(); ++i) {
          const uint64_t bits = index->entries[i].key2;  // validated <= 64 at insert
          int32_t& slot = bucket_of[static_cast<size_t>(bits)];
          if (slot < 0) {
            slot = static_cast<int32_t>(index->lpm.size());
            index->lpm.push_back(LpmBucket{bits, LpmMask(bits), {}});
            index->lpm.back().slots.reserve(count_of[static_cast<size_t>(bits)]);
          }
          LpmBucket& bucket = index->lpm[static_cast<size_t>(slot)];
          // emplace keeps the first entry of this (length, prefix): the same
          // winner the linear scan's strict longest-prefix comparison picks.
          bucket.slots.emplace(index->entries[i].key & bucket.mask, i);
        }
        std::sort(index->lpm.begin(), index->lpm.end(),
                  [](const LpmBucket& a, const LpmBucket& b) { return a.bits > b.bits; });
        break;
      }

      case MatchKind::kRange: {
        const size_t n = index->entries.size();
        if (n == 0) {
          break;
        }
        const std::vector<TableEntry>& entries = index->entries;
        // Sweep the boundary points; at each point the winner is the active
        // entry with the smallest position (first in insertion order, the
        // linear scan's rule). Segments between points are constant, so only
        // winner changes are emitted.
        std::vector<size_t> starts(n);
        std::vector<size_t> ends(n);
        for (size_t i = 0; i < n; ++i) {
          starts[i] = ends[i] = i;
        }
        std::sort(starts.begin(), starts.end(),
                  [&](size_t a, size_t b) { return entries[a].key < entries[b].key; });
        std::sort(ends.begin(), ends.end(),
                  [&](size_t a, size_t b) { return entries[a].key2 < entries[b].key2; });
        std::vector<uint64_t> points;
        points.reserve(2 * n);
        for (size_t i = 0; i < n; ++i) {
          points.push_back(entries[i].key);
          if (entries[i].key2 != ~0ull) {
            points.push_back(entries[i].key2 + 1);
          }
        }
        std::sort(points.begin(), points.end());
        points.erase(std::unique(points.begin(), points.end()), points.end());

        std::set<size_t> active;
        size_t si = 0;
        size_t ei = 0;
        int64_t last_winner = -2;  // differs from every real winner and from "gap"
        for (const uint64_t p : points) {
          while (si < n && entries[starts[si]].key <= p) {
            active.insert(starts[si++]);
          }
          while (ei < n && entries[ends[ei]].key2 < p) {
            active.erase(ends[ei++]);
          }
          const int64_t winner =
              active.empty() ? -1 : static_cast<int64_t>(*active.begin());
          if (winner != last_winner) {
            index->range.push_back(RangeSegment{p, winner});
            last_winner = winner;
          }
        }
        break;
      }

      case MatchKind::kTernary: {
        // Counting pre-pass, for the same reason as LPM — plus one more:
        // growing the group vector incrementally copied every already-built
        // group, hash maps included, on each reallocation. A wide-open ACL
        // (many distinct wildcard masks, 10k+ entries) made every publish
        // quadratic-ish in practice.
        std::unordered_map<uint64_t, uint32_t> mask_count;  // mask -> entries
        for (const TableEntry& entry : index->entries) {
          ++mask_count[entry.key2];
        }
        index->ternary.reserve(mask_count.size());
        std::unordered_map<uint64_t, size_t> group_of;  // mask -> group position
        group_of.reserve(mask_count.size());
        for (size_t i = 0; i < index->entries.size(); ++i) {
          const uint64_t mask = index->entries[i].key2;
          const auto [git, fresh] = group_of.try_emplace(mask, index->ternary.size());
          if (fresh) {
            index->ternary.push_back(TernaryGroup{mask, index->entries[i].priority, {}});
            index->ternary.back().slots.reserve(mask_count[mask]);
          }
          TernaryGroup& group = index->ternary[git->second];
          group.max_priority = std::max(group.max_priority, index->entries[i].priority);
          // Two entries agreeing on (mask, key & mask) match identical keys,
          // so only the cell's winner (highest priority, earliest insertion on
          // ties — the linear rule) can ever win globally.
          const auto [cell, inserted] =
              group.slots.try_emplace(index->entries[i].key & mask, i);
          if (!inserted && index->entries[i].priority > index->entries[cell->second].priority) {
            cell->second = i;
          }
        }
        std::stable_sort(index->ternary.begin(), index->ternary.end(),
                         [](const TernaryGroup& a, const TernaryGroup& b) {
                           return a.max_priority > b.max_priority;
                         });
        break;
      }
    }
  }

  version_.fetch_add(1, std::memory_order_relaxed);
  index_.Publish(index.release(), GlobalEpochDomain());
  if (entries_gauge_ != nullptr) {
    entries_gauge_->Set(static_cast<double>(entries_.size()));
  }
}

const TableEntry* RmtTable::MatchLinear(const Index& index, MatchKind kind, uint64_t key) {
  const std::vector<TableEntry>& entries = index.entries;
  switch (kind) {
    case MatchKind::kExact: {
      for (const TableEntry& entry : entries) {
        if (entry.key == key) {
          return &entry;
        }
      }
      return nullptr;
    }
    case MatchKind::kLpm: {
      const TableEntry* best = nullptr;
      for (const TableEntry& entry : entries) {
        if (LpmMatches(key, entry.key, entry.key2) &&
            (best == nullptr || entry.key2 > best->key2)) {
          best = &entry;
        }
      }
      return best;
    }
    case MatchKind::kRange: {
      // First matching range in insertion order.
      for (const TableEntry& entry : entries) {
        if (entry.key <= key && key <= entry.key2) {
          return &entry;
        }
      }
      return nullptr;
    }
    case MatchKind::kTernary: {
      const TableEntry* best = nullptr;
      for (const TableEntry& entry : entries) {
        if ((key & entry.key2) == (entry.key & entry.key2) &&
            (best == nullptr || entry.priority > best->priority)) {
          best = &entry;
        }
      }
      return best;
    }
  }
  return nullptr;
}

const TableEntry* RmtTable::MatchCompiled(const Index& index, MatchKind kind, uint64_t key) {
  switch (kind) {
    case MatchKind::kExact: {
      const auto it = index.exact.find(key);
      return it == index.exact.end() ? nullptr : &index.entries[it->second];
    }

    case MatchKind::kLpm: {
      // Longest prefix first; the first bucket hit is the answer.
      for (const LpmBucket& bucket : index.lpm) {
        const auto it = bucket.slots.find(key & bucket.mask);
        if (it != bucket.slots.end()) {
          return &index.entries[it->second];
        }
      }
      return nullptr;
    }

    case MatchKind::kRange: {
      const auto it = std::upper_bound(
          index.range.begin(), index.range.end(), key,
          [](uint64_t k, const RangeSegment& s) { return k < s.start; });
      if (it == index.range.begin()) {
        return nullptr;  // below the lowest range
      }
      const RangeSegment& segment = *(it - 1);
      return segment.entry < 0 ? nullptr
                               : &index.entries[static_cast<size_t>(segment.entry)];
    }

    case MatchKind::kTernary: {
      const TableEntry* best = nullptr;
      size_t best_pos = 0;
      for (const TernaryGroup& group : index.ternary) {
        if (best != nullptr && best->priority > group.max_priority) {
          break;  // no later group can win (they only tie-lose or rank lower)
        }
        const auto it = group.slots.find(key & group.mask);
        if (it == group.slots.end()) {
          continue;
        }
        const TableEntry& entry = index.entries[it->second];
        if (best == nullptr || entry.priority > best->priority ||
            (entry.priority == best->priority && it->second < best_pos)) {
          best = &entry;
          best_pos = it->second;
        }
      }
      return best;
    }
  }
  return nullptr;
}

const TableEntry* RmtTable::Match(uint64_t key) {
  const Index* index = index_.Load();
  const TableEntry* entry = index == nullptr ? nullptr : MatchIn(*index, key);
  if (entry != nullptr) {
    hits_.Increment();
    if (hits_counter_ != nullptr) {
      hits_counter_->Increment();
    }
  } else {
    misses_.Increment();
    if (misses_counter_ != nullptr) {
      misses_counter_->Increment();
    }
  }
  return entry;
}

const TableEntry* RmtTable::Peek(uint64_t key) const {
  const Index* index = index_.Load();
  return index == nullptr ? nullptr : MatchIn(*index, key);
}

}  // namespace rkd
