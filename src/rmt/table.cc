#include "src/rmt/table.h"

#include <algorithm>
#include <array>
#include <set>

namespace rkd {

std::string_view MatchKindName(MatchKind kind) {
  switch (kind) {
    case MatchKind::kExact:
      return "exact";
    case MatchKind::kLpm:
      return "lpm";
    case MatchKind::kRange:
      return "range";
    case MatchKind::kTernary:
      return "ternary";
  }
  return "unknown";
}

namespace {

// True when `key` falls under an LPM entry matching the top `bits` bits.
bool LpmMatches(uint64_t key, uint64_t value, uint64_t bits) {
  if (bits == 0) {
    return true;  // default route
  }
  if (bits >= 64) {
    return key == value;
  }
  const uint64_t mask = ~0ull << (64 - bits);
  return (key & mask) == (value & mask);
}

uint64_t LpmMask(uint64_t bits) {
  if (bits == 0) {
    return 0;
  }
  if (bits >= 64) {
    return ~0ull;
  }
  return ~0ull << (64 - bits);
}

}  // namespace

RmtTable::RmtTable(std::string name, MatchKind match_kind, size_t max_entries,
                   TableIndexMode index_mode)
    : name_(std::move(name)),
      match_kind_(match_kind),
      max_entries_(max_entries),
      index_mode_(index_mode) {}

void RmtTable::set_index_mode(TableIndexMode mode) {
  index_mode_ = mode;
  index_dirty_ = true;  // compiled structures may be stale or absent
}

void RmtTable::BindTelemetry(TelemetryRegistry* telemetry) {
  if (telemetry == nullptr) {
    hits_counter_ = nullptr;
    misses_counter_ = nullptr;
    entries_gauge_ = nullptr;
    return;
  }
  const std::string prefix = "rkd.table." + name_;
  hits_counter_ = telemetry->GetCounter(prefix + ".hits");
  misses_counter_ = telemetry->GetCounter(prefix + ".misses");
  entries_gauge_ = telemetry->GetGauge(prefix + ".entries");
  entries_gauge_->Set(static_cast<double>(entries_.size()));
}

void RmtTable::MarkDirty() {
  ++epoch_;
  index_dirty_ = true;
  if (entries_gauge_ != nullptr) {
    entries_gauge_->Set(static_cast<double>(entries_.size()));
  }
}

const TableEntry* RmtTable::FindSpec(uint64_t key, uint64_t key2) const {
  for (const TableEntry& entry : entries_) {
    if (entry.key == key && entry.key2 == key2) {
      return &entry;
    }
  }
  return nullptr;
}

Status RmtTable::Insert(const TableEntry& entry) {
  if (entries_.size() >= max_entries_) {
    return ResourceExhaustedError("table '" + name_ + "' is full (" +
                                  std::to_string(max_entries_) + " entries)");
  }
  if (match_kind_ == MatchKind::kExact) {
    // Exact keys are unique outright: key2 plays no role in exact matching,
    // so a second entry for the same key could never be matched.
    if (exact_index_.find(entry.key) != exact_index_.end()) {
      return AlreadyExistsError("table '" + name_ + "' already has this exact key");
    }
  } else if (FindSpec(entry.key, entry.key2) != nullptr) {
    return AlreadyExistsError("table '" + name_ + "' already has this match spec");
  }
  if (match_kind_ == MatchKind::kRange && entry.key > entry.key2) {
    return InvalidArgumentError("range entry has low > high");
  }
  if (match_kind_ == MatchKind::kLpm && entry.key2 > 64) {
    return InvalidArgumentError("lpm prefix length exceeds 64");
  }
  entries_.push_back(entry);
  if (match_kind_ == MatchKind::kExact) {
    exact_index_[entry.key] = entries_.size() - 1;
  }
  MarkDirty();
  return OkStatus();
}

Status RmtTable::Remove(uint64_t key, uint64_t key2) {
  if (match_kind_ == MatchKind::kExact) {
    // O(1): swap with the last entry and patch its one index slot instead of
    // rebuilding the whole index.
    const auto it = exact_index_.find(key);
    if (it == exact_index_.end() || entries_[it->second].key2 != key2) {
      return NotFoundError("no entry with this match spec in table '" + name_ + "'");
    }
    const size_t idx = it->second;
    exact_index_.erase(it);
    const size_t last = entries_.size() - 1;
    if (idx != last) {
      entries_[idx] = entries_[last];
      exact_index_[entries_[idx].key] = idx;
    }
    entries_.pop_back();
    MarkDirty();
    return OkStatus();
  }
  // Non-exact kinds erase in place: entry position encodes insertion order,
  // which the match semantics' tie-breaks depend on.
  const auto it = std::find_if(entries_.begin(), entries_.end(), [&](const TableEntry& entry) {
    return entry.key == key && entry.key2 == key2;
  });
  if (it == entries_.end()) {
    return NotFoundError("no entry with this match spec in table '" + name_ + "'");
  }
  entries_.erase(it);
  MarkDirty();
  return OkStatus();
}

Status RmtTable::Modify(uint64_t key, uint64_t key2, int32_t action_index, int64_t model_slot) {
  // No MarkDirty: the match structure is untouched; compiled indexes hold
  // entry positions, and the entry mutates in place.
  for (TableEntry& entry : entries_) {
    if (entry.key == key && entry.key2 == key2) {
      entry.action_index = action_index;
      entry.model_slot = model_slot;
      return OkStatus();
    }
  }
  return NotFoundError("no entry with this match spec in table '" + name_ + "'");
}

const TableEntry* RmtTable::MatchLinear(uint64_t key) const {
  switch (match_kind_) {
    case MatchKind::kExact: {
      for (const TableEntry& entry : entries_) {
        if (entry.key == key) {
          return &entry;
        }
      }
      return nullptr;
    }
    case MatchKind::kLpm: {
      const TableEntry* best = nullptr;
      for (const TableEntry& entry : entries_) {
        if (LpmMatches(key, entry.key, entry.key2) &&
            (best == nullptr || entry.key2 > best->key2)) {
          best = &entry;
        }
      }
      return best;
    }
    case MatchKind::kRange: {
      // First matching range in insertion order.
      for (const TableEntry& entry : entries_) {
        if (entry.key <= key && key <= entry.key2) {
          return &entry;
        }
      }
      return nullptr;
    }
    case MatchKind::kTernary: {
      const TableEntry* best = nullptr;
      for (const TableEntry& entry : entries_) {
        if ((key & entry.key2) == (entry.key & entry.key2) &&
            (best == nullptr || entry.priority > best->priority)) {
          best = &entry;
        }
      }
      return best;
    }
  }
  return nullptr;
}

void RmtTable::CompileIndex() const {
  ++index_rebuilds_;
  compiled_epoch_ = epoch_;
  index_dirty_ = false;
  switch (match_kind_) {
    case MatchKind::kExact:
      return;  // the maintained exact_index_ is already the compiled form

    case MatchKind::kLpm: {
      lpm_buckets_.clear();
      std::array<int32_t, 65> bucket_of;
      bucket_of.fill(-1);
      for (size_t i = 0; i < entries_.size(); ++i) {
        const uint64_t bits = entries_[i].key2;  // validated <= 64 at insert
        int32_t& slot = bucket_of[static_cast<size_t>(bits)];
        if (slot < 0) {
          slot = static_cast<int32_t>(lpm_buckets_.size());
          lpm_buckets_.push_back(LpmBucket{bits, LpmMask(bits), {}});
        }
        LpmBucket& bucket = lpm_buckets_[static_cast<size_t>(slot)];
        // emplace keeps the first entry of this (length, prefix): the same
        // winner the linear scan's strict longest-prefix comparison picks.
        bucket.slots.emplace(entries_[i].key & bucket.mask, i);
      }
      std::sort(lpm_buckets_.begin(), lpm_buckets_.end(),
                [](const LpmBucket& a, const LpmBucket& b) { return a.bits > b.bits; });
      return;
    }

    case MatchKind::kRange: {
      range_segments_.clear();
      const size_t n = entries_.size();
      if (n == 0) {
        return;
      }
      // Sweep the boundary points; at each point the winner is the active
      // entry with the smallest position (first in insertion order, the
      // linear scan's rule). Segments between points are constant, so only
      // winner changes are emitted.
      std::vector<size_t> starts(n);
      std::vector<size_t> ends(n);
      for (size_t i = 0; i < n; ++i) {
        starts[i] = ends[i] = i;
      }
      std::sort(starts.begin(), starts.end(),
                [&](size_t a, size_t b) { return entries_[a].key < entries_[b].key; });
      std::sort(ends.begin(), ends.end(),
                [&](size_t a, size_t b) { return entries_[a].key2 < entries_[b].key2; });
      std::vector<uint64_t> points;
      points.reserve(2 * n);
      for (size_t i = 0; i < n; ++i) {
        points.push_back(entries_[i].key);
        if (entries_[i].key2 != ~0ull) {
          points.push_back(entries_[i].key2 + 1);
        }
      }
      std::sort(points.begin(), points.end());
      points.erase(std::unique(points.begin(), points.end()), points.end());

      std::set<size_t> active;
      size_t si = 0;
      size_t ei = 0;
      int64_t last_winner = -2;  // differs from every real winner and from "gap"
      for (const uint64_t p : points) {
        while (si < n && entries_[starts[si]].key <= p) {
          active.insert(starts[si++]);
        }
        while (ei < n && entries_[ends[ei]].key2 < p) {
          active.erase(ends[ei++]);
        }
        const int64_t winner =
            active.empty() ? -1 : static_cast<int64_t>(*active.begin());
        if (winner != last_winner) {
          range_segments_.push_back(RangeSegment{p, winner});
          last_winner = winner;
        }
      }
      return;
    }

    case MatchKind::kTernary: {
      ternary_groups_.clear();
      std::unordered_map<uint64_t, size_t> group_of;  // mask -> group position
      for (size_t i = 0; i < entries_.size(); ++i) {
        const uint64_t mask = entries_[i].key2;
        const auto [git, fresh] = group_of.try_emplace(mask, ternary_groups_.size());
        if (fresh) {
          ternary_groups_.push_back(TernaryGroup{mask, entries_[i].priority, {}});
        }
        TernaryGroup& group = ternary_groups_[git->second];
        group.max_priority = std::max(group.max_priority, entries_[i].priority);
        // Two entries agreeing on (mask, key & mask) match identical keys,
        // so only the cell's winner (highest priority, earliest insertion on
        // ties — the linear rule) can ever win globally.
        const auto [cell, inserted] = group.slots.try_emplace(entries_[i].key & mask, i);
        if (!inserted && entries_[i].priority > entries_[cell->second].priority) {
          cell->second = i;
        }
      }
      std::stable_sort(ternary_groups_.begin(), ternary_groups_.end(),
                       [](const TernaryGroup& a, const TernaryGroup& b) {
                         return a.max_priority > b.max_priority;
                       });
      return;
    }
  }
}

const TableEntry* RmtTable::MatchCompiled(uint64_t key) const {
  switch (match_kind_) {
    case MatchKind::kExact:
      return nullptr;  // unreachable: MatchImpl resolves exact directly

    case MatchKind::kLpm: {
      // Longest prefix first; the first bucket hit is the answer.
      for (const LpmBucket& bucket : lpm_buckets_) {
        const auto it = bucket.slots.find(key & bucket.mask);
        if (it != bucket.slots.end()) {
          return &entries_[it->second];
        }
      }
      return nullptr;
    }

    case MatchKind::kRange: {
      const auto it = std::upper_bound(
          range_segments_.begin(), range_segments_.end(), key,
          [](uint64_t k, const RangeSegment& s) { return k < s.start; });
      if (it == range_segments_.begin()) {
        return nullptr;  // below the lowest range
      }
      const RangeSegment& segment = *(it - 1);
      return segment.entry < 0 ? nullptr : &entries_[static_cast<size_t>(segment.entry)];
    }

    case MatchKind::kTernary: {
      const TableEntry* best = nullptr;
      size_t best_pos = 0;
      for (const TernaryGroup& group : ternary_groups_) {
        if (best != nullptr && best->priority > group.max_priority) {
          break;  // no later group can win (they only tie-lose or rank lower)
        }
        const auto it = group.slots.find(key & group.mask);
        if (it == group.slots.end()) {
          continue;
        }
        const TableEntry& entry = entries_[it->second];
        if (best == nullptr || entry.priority > best->priority ||
            (entry.priority == best->priority && it->second < best_pos)) {
          best = &entry;
          best_pos = it->second;
        }
      }
      return best;
    }
  }
  return nullptr;
}

const TableEntry* RmtTable::MatchImpl(uint64_t key) const {
  if (match_kind_ == MatchKind::kExact && index_mode_ == TableIndexMode::kCompiled) {
    const auto it = exact_index_.find(key);
    return it == exact_index_.end() ? nullptr : &entries_[it->second];
  }
  if (index_mode_ == TableIndexMode::kLinear) {
    return MatchLinear(key);
  }
  if (index_dirty_ || compiled_epoch_ != epoch_) {
    CompileIndex();
  }
  return MatchCompiled(key);
}

const TableEntry* RmtTable::Match(uint64_t key) {
  const TableEntry* entry = MatchImpl(key);
  if (entry != nullptr) {
    ++hits_;
    if (hits_counter_ != nullptr) {
      hits_counter_->Increment();
    }
  } else {
    ++misses_;
    if (misses_counter_ != nullptr) {
      misses_counter_->Increment();
    }
  }
  return entry;
}

const TableEntry* RmtTable::Peek(uint64_t key) const { return MatchImpl(key); }

}  // namespace rkd
