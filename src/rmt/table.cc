#include "src/rmt/table.h"

#include <algorithm>

namespace rkd {

std::string_view MatchKindName(MatchKind kind) {
  switch (kind) {
    case MatchKind::kExact:
      return "exact";
    case MatchKind::kLpm:
      return "lpm";
    case MatchKind::kRange:
      return "range";
    case MatchKind::kTernary:
      return "ternary";
  }
  return "unknown";
}

namespace {

// True when `key` falls under an LPM entry matching the top `bits` bits.
bool LpmMatches(uint64_t key, uint64_t value, uint64_t bits) {
  if (bits == 0) {
    return true;  // default route
  }
  if (bits >= 64) {
    return key == value;
  }
  const uint64_t mask = ~0ull << (64 - bits);
  return (key & mask) == (value & mask);
}

}  // namespace

RmtTable::RmtTable(std::string name, MatchKind match_kind, size_t max_entries)
    : name_(std::move(name)), match_kind_(match_kind), max_entries_(max_entries) {}

const TableEntry* RmtTable::FindSpec(uint64_t key, uint64_t key2) const {
  for (const TableEntry& entry : entries_) {
    if (entry.key == key && entry.key2 == key2) {
      return &entry;
    }
  }
  return nullptr;
}

Status RmtTable::Insert(const TableEntry& entry) {
  if (entries_.size() >= max_entries_) {
    return ResourceExhaustedError("table '" + name_ + "' is full (" +
                                  std::to_string(max_entries_) + " entries)");
  }
  if (FindSpec(entry.key, entry.key2) != nullptr) {
    return AlreadyExistsError("table '" + name_ + "' already has this match spec");
  }
  if (match_kind_ == MatchKind::kRange && entry.key > entry.key2) {
    return InvalidArgumentError("range entry has low > high");
  }
  if (match_kind_ == MatchKind::kLpm && entry.key2 > 64) {
    return InvalidArgumentError("lpm prefix length exceeds 64");
  }
  entries_.push_back(entry);
  if (match_kind_ == MatchKind::kExact) {
    exact_index_[entry.key] = entries_.size() - 1;
  }
  return OkStatus();
}

Status RmtTable::Remove(uint64_t key, uint64_t key2) {
  const auto it = std::find_if(entries_.begin(), entries_.end(), [&](const TableEntry& entry) {
    return entry.key == key && entry.key2 == key2;
  });
  if (it == entries_.end()) {
    return NotFoundError("no entry with this match spec in table '" + name_ + "'");
  }
  entries_.erase(it);
  if (match_kind_ == MatchKind::kExact) {
    exact_index_.clear();
    for (size_t i = 0; i < entries_.size(); ++i) {
      exact_index_[entries_[i].key] = i;
    }
  }
  return OkStatus();
}

Status RmtTable::Modify(uint64_t key, uint64_t key2, int32_t action_index, int64_t model_slot) {
  for (TableEntry& entry : entries_) {
    if (entry.key == key && entry.key2 == key2) {
      entry.action_index = action_index;
      entry.model_slot = model_slot;
      return OkStatus();
    }
  }
  return NotFoundError("no entry with this match spec in table '" + name_ + "'");
}

const TableEntry* RmtTable::MatchImpl(uint64_t key) const {
  switch (match_kind_) {
    case MatchKind::kExact: {
      const auto it = exact_index_.find(key);
      return it == exact_index_.end() ? nullptr : &entries_[it->second];
    }
    case MatchKind::kLpm: {
      const TableEntry* best = nullptr;
      for (const TableEntry& entry : entries_) {
        if (LpmMatches(key, entry.key, entry.key2) &&
            (best == nullptr || entry.key2 > best->key2)) {
          best = &entry;
        }
      }
      return best;
    }
    case MatchKind::kRange: {
      // First matching range in insertion order.
      for (const TableEntry& entry : entries_) {
        if (entry.key <= key && key <= entry.key2) {
          return &entry;
        }
      }
      return nullptr;
    }
    case MatchKind::kTernary: {
      const TableEntry* best = nullptr;
      for (const TableEntry& entry : entries_) {
        if ((key & entry.key2) == (entry.key & entry.key2) &&
            (best == nullptr || entry.priority > best->priority)) {
          best = &entry;
        }
      }
      return best;
    }
  }
  return nullptr;
}

const TableEntry* RmtTable::Match(uint64_t key) {
  const TableEntry* entry = MatchImpl(key);
  if (entry != nullptr) {
    ++hits_;
  } else {
    ++misses_;
  }
  return entry;
}

const TableEntry* RmtTable::Peek(uint64_t key) const { return MatchImpl(key); }

}  // namespace rkd
