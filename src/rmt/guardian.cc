#include "src/rmt/guardian.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "src/base/epoch.h"
#include "src/telemetry/trace_export.h"

namespace rkd {

namespace {

uint64_t SatDelta(uint64_t now, uint64_t base) { return now > base ? now - base : 0; }

}  // namespace

std::string_view GuardStateName(GuardState state) {
  switch (state) {
    case GuardState::kHealthy: return "healthy";
    case GuardState::kTripped: return "tripped";
    case GuardState::kProbation: return "probation";
    case GuardState::kQuarantined: return "quarantined";
  }
  return "unknown";
}

PolicyGuardian::PolicyGuardian(ControlPlane* control_plane) : control_plane_(control_plane) {
  TelemetryRegistry& telemetry = control_plane_->telemetry();
  ticks_ = telemetry.GetCounter("rkd.guard.ticks");
  trips_ = telemetry.GetCounter("rkd.guard.trips");
  probations_ = telemetry.GetCounter("rkd.guard.probations");
  recoveries_ = telemetry.GetCounter("rkd.guard.recoveries");
  quarantines_ = telemetry.GetCounter("rkd.guard.quarantines");
}

PolicyGuardian::Guarded* PolicyGuardian::Find(ControlPlane::ProgramHandle handle) {
  for (Guarded& guard : guarded_) {
    if (guard.handle == handle) {
      return &guard;
    }
  }
  return nullptr;
}

const PolicyGuardian::Guarded* PolicyGuardian::Find(ControlPlane::ProgramHandle handle) const {
  for (const Guarded& guard : guarded_) {
    if (guard.handle == handle) {
      return &guard;
    }
  }
  return nullptr;
}

Status PolicyGuardian::Guard(ControlPlane::ProgramHandle handle, const BreakerConfig& config) {
  if (Find(handle) != nullptr) {
    return AlreadyExistsError("program handle " + std::to_string(handle) +
                              " is already guarded");
  }
  InstalledProgram* program = control_plane_->Get(handle);
  if (program == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(handle));
  }
  RKD_ASSIGN_OR_RETURN(bool suspended, control_plane_->IsSuspended(handle));
  if (suspended) {
    return FailedPreconditionError("cannot guard a suspended program");
  }
  if (config.window_execs == 0 || config.probation_execs == 0) {
    return InvalidArgumentError("window_execs and probation_execs must be positive");
  }
  Guarded guard;
  guard.handle = handle;
  guard.name = program->name();
  guard.config = config;
  guard.state_gauge =
      control_plane_->telemetry().GetGauge("rkd.guard.state." + program->name());
  guarded_.push_back(std::move(guard));
  Guarded& stored = guarded_.back();
  OpenWindow(stored);
  SetState(stored, GuardState::kHealthy);
  return OkStatus();
}

Status PolicyGuardian::Unguard(ControlPlane::ProgramHandle handle) {
  for (size_t i = 0; i < guarded_.size(); ++i) {
    if (guarded_[i].handle == handle) {
      ReleaseProbationTrace(guarded_[i]);
      guarded_.erase(guarded_.begin() + static_cast<ptrdiff_t>(i));
      return OkStatus();
    }
  }
  return NotFoundError("program handle " + std::to_string(handle) + " is not guarded");
}

GuardState PolicyGuardian::StateOf(ControlPlane::ProgramHandle handle) const {
  const Guarded* guard = Find(handle);
  return guard != nullptr ? guard->state : GuardState::kHealthy;
}

uint32_t PolicyGuardian::TripsOf(ControlPlane::ProgramHandle handle) const {
  const Guarded* guard = Find(handle);
  return guard != nullptr ? guard->trips : 0;
}

bool PolicyGuardian::IsGuarded(ControlPlane::ProgramHandle handle) const {
  return Find(handle) != nullptr;
}

void PolicyGuardian::OpenWindow(Guarded& guard) {
  InstalledProgram* program = control_plane_->Get(guard.handle);
  if (program == nullptr) {
    return;
  }
  const ProgramExecMetrics& metrics = program->exec_metrics();
  guard.execs0 = metrics.execs->value();
  guard.errors0 = metrics.exec_errors->value();
  guard.resolved0 = program->prediction_log().total_resolved();
  guard.correct0 = program->prediction_log().total_correct();
  guard.window.Reset(*metrics.exec_ns);
}

void PolicyGuardian::SetState(Guarded& guard, GuardState state) {
  guard.state = state;
  guard.state_gauge->Set(static_cast<double>(state));
}

std::string PolicyGuardian::Breach(const Guarded& guard, uint64_t needed_execs) {
  const InstalledProgram* program = control_plane_->Get(guard.handle);
  if (program == nullptr) {
    return "";
  }
  const ProgramExecMetrics& metrics = program->exec_metrics();
  const uint64_t execs = SatDelta(metrics.execs->value(), guard.execs0);
  if (execs < needed_execs) {
    return "";  // window still filling; no decision yet
  }
  const BreakerConfig& config = guard.config;
  const uint64_t errors = SatDelta(metrics.exec_errors->value(), guard.errors0);
  const double error_rate = static_cast<double>(errors) / static_cast<double>(execs);
  if (error_rate > config.max_error_rate) {
    return "exec error rate " + std::to_string(error_rate) + " over " +
           std::to_string(execs) + " execs exceeds " + std::to_string(config.max_error_rate);
  }
  if (config.max_p99_ns > 0.0) {
    const double p99 = guard.window.DeltaPercentile(*metrics.exec_ns, 99.0);
    if (p99 > config.max_p99_ns) {
      return "exec p99 " + std::to_string(p99) + "ns exceeds budget " +
             std::to_string(config.max_p99_ns) + "ns";
    }
  }
  if (config.min_accuracy > 0.0) {
    const PredictionLog& log = program->prediction_log();
    const uint64_t resolved = SatDelta(log.total_resolved(), guard.resolved0);
    if (resolved >= config.min_accuracy_samples) {
      const uint64_t correct = SatDelta(log.total_correct(), guard.correct0);
      const double accuracy =
          static_cast<double>(correct) / static_cast<double>(resolved);
      if (accuracy < config.min_accuracy) {
        return "rolling accuracy " + std::to_string(accuracy) + " over " +
               std::to_string(resolved) + " predictions below floor " +
               std::to_string(config.min_accuracy);
      }
    }
  }
  return "";
}

void PolicyGuardian::ReleaseProbationTrace(Guarded& guard) {
  if (!guard.probation_traced) {
    return;
  }
  guard.probation_traced = false;
  control_plane_->AdjustForceTraceFor(guard.handle, -1);
}

void PolicyGuardian::DumpFlightRecorder(const std::string& program,
                                        const std::string& reason) {
  if (flight_recorder_dir_.empty()) {
    return;
  }
  // Snapshot BEFORE naming the file so the dump ordinal only advances on a
  // successful write attempt; the spans leading up to the breach are still
  // resident because the rings are bounded but never cleared.
  const std::vector<SpanRecord> spans =
      control_plane_->telemetry().tracer().Snapshot();
  TraceExportOptions options;
  options.program = program;
  options.reason = reason;
  std::string safe_name = program;
  for (char& c : safe_name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  const std::string path = flight_recorder_dir_ + "/flight_" + safe_name + "_" +
                           std::to_string(flight_dumps_ + 1) + ".json";
  if (WriteTextFile(path, ExportPerfettoTrace(spans, options))) {
    ++flight_dumps_;
    last_flight_dump_ = path;
  }
}

void PolicyGuardian::TripInto(Guarded& guard, TickSummary& summary,
                              const std::string& reason) {
  GuardEvent event;
  event.handle = guard.handle;
  event.program = guard.name;
  event.from = guard.state;
  event.reason = reason;

  // A trip out of probation ends the probation force-trace hold. Release
  // before suspending so the refcount never outlives the attachment.
  ReleaseProbationTrace(guard);
  (void)control_plane_->Suspend(guard.handle);
  ++guard.trips;
  trips_->Increment();
  if (guard.trips >= guard.config.max_trips) {
    SetState(guard, GuardState::kQuarantined);
    quarantines_->Increment();
    event.reason += "; trip budget exhausted, quarantined";
  } else {
    // Exponential backoff: each trip waits multiplier times longer than the
    // last, clamped. Counted in ticks, so tests control time exactly.
    const uint64_t next =
        guard.current_backoff == 0
            ? guard.config.backoff_initial_ticks
            : static_cast<uint64_t>(
                  std::ceil(static_cast<double>(guard.current_backoff) *
                            guard.config.backoff_multiplier));
    guard.current_backoff =
        std::max<uint64_t>(1, std::min(next, guard.config.backoff_max_ticks));
    guard.backoff_remaining = guard.current_backoff;
    SetState(guard, GuardState::kTripped);
  }
  event.to = guard.state;
  // Auto-snapshot the flight recorder: the rings still hold the (force-traced
  // or sampled) fires that drove the breach.
  DumpFlightRecorder(guard.name, event.reason);
  summary.transitions.push_back(std::move(event));
}

Result<PolicyGuardian::GuardEvent> PolicyGuardian::ReportBreach(
    ControlPlane::ProgramHandle handle, const std::string& reason) {
  Guarded* guard = Find(handle);
  if (guard == nullptr) {
    return NotFoundError("program handle " + std::to_string(handle) + " is not guarded");
  }
  if (guard->state == GuardState::kTripped || guard->state == GuardState::kQuarantined) {
    return FailedPreconditionError("program is already contained; breach not re-counted");
  }
  TickSummary summary;
  TripInto(*guard, summary, reason);
  return summary.transitions.back();
}

PolicyGuardian::TickSummary PolicyGuardian::Tick() {
  TickSummary summary;
  ++tick_count_;
  ticks_->Increment();
  // Like ControlPlane::TickReport: guardian ticks double as quiescence
  // points for the global epoch domain.
  GlobalEpochDomain().TryAdvance();
  ScopedSpan tick_span(&control_plane_->telemetry().tracer(), "guardian.tick");
  tick_span.Tag("tick", static_cast<int64_t>(tick_count_));
  tick_span.Tag("guarded", static_cast<int64_t>(guarded_.size()));

  for (Guarded& guard : guarded_) {
    // A program uninstalled behind our back has nothing left to guard.
    if (control_plane_->Get(guard.handle) == nullptr) {
      continue;
    }
    switch (guard.state) {
      case GuardState::kHealthy: {
        const std::string reason = Breach(guard, guard.config.window_execs);
        if (!reason.empty()) {
          TripInto(guard, summary, reason);
        } else {
          // Slide the window once it has filled, so the breaker always
          // judges recent behaviour rather than the lifetime average.
          const InstalledProgram* program = control_plane_->Get(guard.handle);
          if (SatDelta(program->exec_metrics().execs->value(), guard.execs0) >=
              guard.config.window_execs) {
            OpenWindow(guard);
          }
        }
        break;
      }
      case GuardState::kTripped: {
        if (guard.backoff_remaining > 0) {
          --guard.backoff_remaining;
        }
        if (guard.backoff_remaining == 0) {
          GuardEvent event;
          event.handle = guard.handle;
          event.program = guard.name;
          event.from = guard.state;
          const Status resumed = control_plane_->Resume(guard.handle);
          if (resumed.ok()) {
            OpenWindow(guard);
            SetState(guard, GuardState::kProbation);
            probations_->Increment();
            // Probation fires decide re-admission: force-trace them all so a
            // renewed breach dumps a complete causal record.
            control_plane_->AdjustForceTraceFor(guard.handle, +1);
            guard.probation_traced = true;
            event.to = guard.state;
            event.reason = "backoff expired; re-admitted half-open";
            summary.transitions.push_back(std::move(event));
          }
          // Resume can only fail if the operator resumed/uninstalled the
          // program manually; leave the state machine where it is.
        }
        break;
      }
      case GuardState::kProbation: {
        const std::string reason = Breach(guard, guard.config.probation_execs);
        if (!reason.empty()) {
          TripInto(guard, summary, reason);
          break;
        }
        const InstalledProgram* program = control_plane_->Get(guard.handle);
        if (SatDelta(program->exec_metrics().execs->value(), guard.execs0) >=
            guard.config.probation_execs) {
          GuardEvent event;
          event.handle = guard.handle;
          event.program = guard.name;
          event.from = guard.state;
          ReleaseProbationTrace(guard);
          OpenWindow(guard);
          SetState(guard, GuardState::kHealthy);
          recoveries_->Increment();
          event.to = guard.state;
          event.reason = "clean probation window; fully re-enabled";
          summary.transitions.push_back(std::move(event));
        }
        break;
      }
      case GuardState::kQuarantined:
        break;  // terminal
    }
  }

  // Drive every active rollout toward its verdict.
  for (const ControlPlane::RolloutId id : control_plane_->ActiveRollouts()) {
    Result<ControlPlane::RolloutReport> report = control_plane_->EvaluateRollout(id);
    if (report.ok()) {
      if (report->decision == ControlPlane::RolloutReport::Decision::kRolledBack) {
        DumpFlightRecorder(report->canary.name, report->reason);
      }
      summary.rollouts.push_back(std::move(report).value());
    }
  }
  tick_span.Tag("transitions", static_cast<int64_t>(summary.transitions.size()));
  return summary;
}

}  // namespace rkd
