// Hook points: where RMT tables meet the kernel datapath.
//
// A kernel subsystem registers each of its performance-critical decision
// sites as a named hook ("mm.lookup_swap_cache", "sched.can_migrate_task",
// ...) together with the subsystem services programs at that site may use
// (virtual clock, the prefetch sink, the priority-hint sink). The control
// plane attaches verified tables to hooks; the subsystem fires the hook on
// its datapath and gets back the action's decision.
//
// Fire() is datapath code: it cannot propagate Status. Execution errors are
// counted and reported through stats, and the hook returns the fallback
// value so the kernel's default behaviour resumes — a misbehaving RMT
// program degrades to stock-kernel behaviour, never to a crash.
#ifndef SRC_RMT_HOOKS_H_
#define SRC_RMT_HOOKS_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/bytecode/program.h"

namespace rkd {

class AttachedTable;  // defined in src/rmt/pipeline.h

using HookId = int32_t;
inline constexpr HookId kInvalidHook = -1;

// Subsystem-provided services, copied into the helper environment of every
// table attached to the hook.
struct SubsystemBindings {
  std::function<uint64_t()> now;
  std::function<void(int64_t, int64_t)> prefetch_emit;   // (first_page, count)
  std::function<void(int64_t, int64_t)> priority_hint;   // (task, bias)
};

// The fallback value Fire() returns when no table is attached or the action
// faulted; the call site treats it exactly like "RMT not present".
inline constexpr int64_t kHookFallback = -1;

class HookRegistry {
 public:
  // Registers a hook point. Fails on duplicate names.
  Result<HookId> Register(std::string name, HookKind kind, SubsystemBindings bindings = {});

  Result<HookId> Lookup(std::string_view name) const;
  HookKind KindOf(HookId id) const;
  const std::string& NameOf(HookId id) const;
  const SubsystemBindings& BindingsOf(HookId id) const;
  size_t size() const { return hooks_.size(); }

  // Datapath entry point: runs every attached table's match+action in attach
  // order with (key, args) and returns the last action's r0, or kHookFallback
  // when nothing ran.
  int64_t Fire(HookId id, uint64_t key, std::span<const int64_t> args = {});

  // Attachment management (control plane only).
  Status Attach(HookId id, AttachedTable* table);
  Status Detach(HookId id, AttachedTable* table);

  struct HookStats {
    uint64_t fires = 0;
    uint64_t actions_run = 0;
    uint64_t exec_errors = 0;
  };
  const HookStats& StatsOf(HookId id) const;

 private:
  struct Hook {
    std::string name;
    HookKind kind;
    SubsystemBindings bindings;
    std::vector<AttachedTable*> tables;  // not owned; owned by ControlPlane
    HookStats stats;
  };

  bool Valid(HookId id) const { return id >= 0 && static_cast<size_t>(id) < hooks_.size(); }

  std::vector<Hook> hooks_;
};

}  // namespace rkd

#endif  // SRC_RMT_HOOKS_H_
