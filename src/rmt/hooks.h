// Hook points: where RMT tables meet the kernel datapath.
//
// A kernel subsystem registers each of its performance-critical decision
// sites as a named hook ("mm.lookup_swap_cache", "sched.can_migrate_task",
// ...) together with the subsystem services programs at that site may use
// (virtual clock, the prefetch sink, the priority-hint sink). The control
// plane attaches verified tables to hooks; the subsystem fires the hook on
// its datapath and gets back the action's decision.
//
// Fire() is datapath code: it cannot propagate Status. Execution errors are
// counted and reported through stats, and the hook returns the fallback
// value so the kernel's default behaviour resumes — a misbehaving RMT
// program degrades to stock-kernel behaviour, never to a crash.
//
// Concurrency model (see DESIGN.md "Concurrency model"): Fire/FireBatch are
// wait-free readers. Each call pins one epoch guard and walks immutable
// snapshots — the hook directory (so Register can grow the hook set under
// live fire) and each hook's attachment list (so Attach/Detach swap lists
// atomically; a fire in flight finishes against the list it loaded).
// Register/Attach/Detach serialize on a writer mutex, publish the new
// snapshot, and retire the old one into the global epoch domain.
#ifndef SRC_RMT_HOOKS_H_
#define SRC_RMT_HOOKS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/epoch.h"
#include "src/base/status.h"
#include "src/bytecode/program.h"
#include "src/telemetry/telemetry.h"

namespace rkd {

class AttachedTable;  // defined in src/rmt/pipeline.h

using HookId = int32_t;
inline constexpr HookId kInvalidHook = -1;

// Subsystem-provided services, copied into the helper environment of every
// table attached to the hook.
struct SubsystemBindings {
  std::function<uint64_t()> now;
  std::function<void(int64_t, int64_t)> prefetch_emit;   // (first_page, count)
  std::function<void(int64_t, int64_t)> priority_hint;   // (task, bias)
};

// The fallback value Fire() returns when no table is attached or the action
// faulted; the call site treats it exactly like "RMT not present".
inline constexpr int64_t kHookFallback = -1;

// The overload-governor degradation ladder (see src/rmt/governor.h). Every
// fire consults the firing table's program-level rung with one relaxed load:
//   kFull     - learned policy runs normally
//   kDegraded - learned policy is skipped; the hook's registered fallback
//               oracle (the heuristic baseline) answers instead
//   kShed     - nothing runs; the fire returns kHookFallback (stock kernel)
// Stored as uint8_t so the per-program cell is a single-byte atomic.
enum class GovLevel : uint8_t { kFull = 0, kDegraded = 1, kShed = 2 };

std::string_view GovLevelName(GovLevel level);

// Heuristic baseline a subsystem registers per hook for the kDegraded rung:
// same (key, args) contract as an action program, same result-merge rule
// (kHookFallback = no opinion). Must be cheap and side-effect-safe — it runs
// on the datapath in place of the learned policy.
using FallbackOracle = std::function<int64_t(uint64_t key, std::span<const int64_t> args)>;

// One event of a FireBatch call: the (key, args) a single Fire would take,
// with args inlined so a batch is one contiguous allocation.
struct HookEvent {
  uint64_t key = 0;
  uint32_t num_args = 0;
  std::array<int64_t, 4> args{};  // Fire truncates to four anyway

  HookEvent() = default;
  HookEvent(uint64_t k, std::initializer_list<int64_t> a) : key(k) {
    for (const int64_t v : a) {
      if (num_args >= args.size()) {
        break;
      }
      args[num_args++] = v;
    }
  }
};

// Observer for hook traffic. The experience recorder (src/replay/) hangs
// off this to capture live fire streams into a replayable corpus; anything
// else that wants an ordered feed of (hook, key, args, decision) tuples can
// implement it too. OnFire is called on the datapath after the attached
// tables ran, so implementations must be cheap and must not re-enter the
// registry.
class HookEventSink {
 public:
  virtual ~HookEventSink() = default;
  virtual void OnFire(HookId id, uint64_t key, std::span<const int64_t> args,
                      int64_t result) = 0;
};

// Per-batch tally an AttachedTable::ExecuteBatch call reports back so the
// hook layer can bulk-increment its counters once per batch.
struct HookBatchStats {
  uint64_t actions_run = 0;
  uint64_t exec_errors = 0;
};

// Read-only view over one hook's slice of the telemetry registry. The
// underlying metrics live for the registry's lifetime, so the view is a
// cheap value type; callers may keep it across fires and re-read.
// Names: rkd.hook.<name>.fires / .actions_run / .exec_errors / .fire_ns.
class HookMetrics {
 public:
  uint64_t fires() const { return fires_->value(); }
  uint64_t actions_run() const { return actions_run_->value(); }
  uint64_t exec_errors() const { return exec_errors_->value(); }
  // Fires answered by the fallback oracle (program on kDegraded) and fires
  // skipped entirely (kShed, or kDegraded with no oracle registered).
  uint64_t degraded_fires() const { return degraded_fires_->value(); }
  uint64_t shed_fires() const { return shed_fires_->value(); }
  // Per-fire wall latency of the whole Fire() call (match + action).
  const LatencyHistogram& fire_ns() const { return *fire_ns_; }

 private:
  friend class HookRegistry;
  HookMetrics(const Counter* fires, const Counter* actions_run, const Counter* exec_errors,
              const Counter* degraded_fires, const Counter* shed_fires,
              const LatencyHistogram* fire_ns)
      : fires_(fires), actions_run_(actions_run), exec_errors_(exec_errors),
        degraded_fires_(degraded_fires), shed_fires_(shed_fires), fire_ns_(fire_ns) {}

  const Counter* fires_;
  const Counter* actions_run_;
  const Counter* exec_errors_;
  const Counter* degraded_fires_;
  const Counter* shed_fires_;
  const LatencyHistogram* fire_ns_;
};

class HookRegistry {
 public:
  // By default every registry owns a private TelemetryRegistry (test
  // isolation); pass an external one to aggregate several subsystems into a
  // single exporter endpoint.
  HookRegistry();
  explicit HookRegistry(TelemetryRegistry* telemetry);

  // Registers a hook point. Fails on duplicate names.
  Result<HookId> Register(std::string name, HookKind kind, SubsystemBindings bindings = {});

  Result<HookId> Lookup(std::string_view name) const;
  HookKind KindOf(HookId id) const;
  const std::string& NameOf(HookId id) const;
  const SubsystemBindings& BindingsOf(HookId id) const;
  size_t size() const;

  // Datapath entry point: runs every attached table's match+action in attach
  // order with (key, args) and returns the last action's r0, or kHookFallback
  // when nothing ran.
  int64_t Fire(HookId id, uint64_t key, std::span<const int64_t> args = {});

  // Batched datapath entry point for naturally-bursty call sites (readahead
  // windows, migration scans). Semantically `results[i]` is what
  // `Fire(id, events[i].key, events[i].args)` would return, but the fixed
  // per-event overhead — fire-sequence atomic, canary-gate load, telemetry
  // timestamps, histogram records, trace push, VM frame setup — is paid once
  // per batch. Fire sequence numbers stay dense (event i gets seq_base + i),
  // so canary routing is bit-identical to N single fires. Tables execute in
  // attach order, each consuming the whole batch before the next table runs;
  // for the single-table hooks the sims use this matches Fire ordering
  // exactly (see DESIGN.md "Fire-path performance" for the multi-table
  // caveat). `results.size()` must be >= `events.size()`.
  void FireBatch(HookId id, std::span<const HookEvent> events, std::span<int64_t> results);

  // Attachment management (control plane only).
  Status Attach(HookId id, AttachedTable* table);
  Status Detach(HookId id, AttachedTable* table);

  // Registers (or replaces; an empty function clears) the heuristic baseline
  // the kDegraded rung routes fires to. Epoch-published like the attachment
  // list, so the fire path reads it with the guard it already holds — no new
  // synchronization on the hot path.
  Status SetFallbackOracle(HookId id, FallbackOracle oracle);
  bool HasFallbackOracle(HookId id) const;

  // Force-trace refcount: while positive, every fire of this hook is traced
  // regardless of the sampling rate. The control plane raises it for the
  // duration of a canary rollout and the guardian for programs on probation,
  // so the fires that decide a promotion / re-admission always leave spans
  // in the flight recorder. Balanced +1/-1 deltas; never goes below zero.
  void AdjustForceTrace(HookId id, int delta);
  bool ForceTraced(HookId id) const;

  // The stats API: a per-hook view over the telemetry registry. Valid for
  // any id (an invalid id yields a zeroed view).
  HookMetrics MetricsOf(HookId id) const;

  // The registry all hook metrics and the fire trace live in.
  TelemetryRegistry& telemetry() const { return *telemetry_; }

  // Installs (or clears, with nullptr) the event sink. Not owned; the caller
  // must keep it alive until every in-flight fire that could observe it has
  // drained. Single observer by design — the recorder is the only intended
  // client and one atomic load keeps the disarmed cost on Fire() negligible.
  void set_event_sink(HookEventSink* sink) {
    event_sink_.store(sink, std::memory_order_release);
  }
  HookEventSink* event_sink() const { return event_sink_.load(std::memory_order_acquire); }

 private:
  // One registered hook point. Heap-allocated and never freed before the
  // registry, so Hook pointers in a published directory stay valid for any
  // reader holding an epoch guard. The attachment list is itself an
  // epoch-published immutable snapshot.
  struct Hook {
    std::string name;
    HookKind kind;
    SubsystemBindings bindings;
    // Attached tables (not owned; owned by ControlPlane). Never null: an
    // empty list is published at Register().
    EpochPtr<const std::vector<AttachedTable*>> tables;
    // Telemetry slice, resolved once at Register() so Fire() only touches
    // raw pointers. `fires` stays a single-cell Counter on purpose: its
    // FetchIncrement is the dense fire sequence canary routing and trace
    // sampling key on.
    Counter* fires = nullptr;
    Counter* actions_run = nullptr;
    Counter* exec_errors = nullptr;
    Counter* degraded_fires = nullptr;
    Counter* shed_fires = nullptr;
    LatencyHistogram* fire_ns = nullptr;
    // Heuristic baseline for the kDegraded rung; null until the subsystem
    // registers one. Loaded only on the degraded path.
    EpochPtr<const FallbackOracle> fallback;
    // Root-span label ("hook.<name>") and the force-trace refcount
    // (mutable: adjusted through the reader-side const Hook*).
    std::string span_label;
    mutable std::atomic<uint32_t> force_trace{0};
  };

  // The published hook directory: an immutable snapshot of Hook pointers,
  // replaced wholesale when Register grows the set. HookId indexes into it.
  struct Directory {
    std::vector<Hook*> hooks;  // not owned; owned by storage_
  };

  // Reader-side resolution: id -> Hook under the caller's epoch guard.
  const Hook* Resolve(HookId id) const {
    const Directory* dir = dir_.Load();
    if (dir == nullptr || id < 0 || static_cast<size_t>(id) >= dir->hooks.size()) {
      return nullptr;
    }
    return dir->hooks[static_cast<size_t>(id)];
  }

  std::unique_ptr<TelemetryRegistry> owned_telemetry_;  // null when external
  TelemetryRegistry* telemetry_;
  std::atomic<HookEventSink*> event_sink_{nullptr};

  std::mutex writer_mutex_;  // serializes Register/Attach/Detach
  std::vector<std::unique_ptr<Hook>> storage_;  // guarded by writer_mutex_
  EpochPtr<const Directory> dir_;
};

}  // namespace rkd

#endif  // SRC_RMT_HOOKS_H_
