// The RMT control plane (paper section 3.1, "Updating RMT entries").
//
// "The RMT datapath represent decision points, but their policies are
// reconfigured via the control plane API. This API supports adding, removing,
// modifying match/action entries and ML models." Install() is the admission
// path: every action program runs through the RMT verifier against its hook's
// budget before anything touches a hook point; InstallModel() re-applies the
// cost model at model-swap time, so a hot-swapped model can never bust the
// budget its table was admitted under.
//
// The adaptation loop implements the accuracy-driven reconfiguration the
// paper sketches: "if the prefetching accuracy falls below a threshold, the
// control plane will recompute ML decisions to be more conservative in
// prefetching". Here the conservatism knob is a cell in the program's config
// map that actions read (e.g. prefetch depth); Tick() moves it down when the
// prediction log's rolling accuracy is poor and back up when it recovers.
#ifndef SRC_RMT_CONTROL_PLANE_H_
#define SRC_RMT_CONTROL_PLANE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/status.h"
#include "src/rmt/pipeline.h"
#include "src/verifier/verifier.h"

namespace rkd {

// Offline admission check a candidate program must pass before it may even
// canary. Declared here (not in src/replay/) so the control plane stays
// ignorant of the replay subsystem; src/replay's ShadowGate is the
// production implementation, replaying the candidate against a recorded
// experience corpus. The gate ordering is: record → shadow → canary →
// promote (see DESIGN.md "Record, replay, and shadow evaluation").
class ShadowEvaluator {
 public:
  virtual ~ShadowEvaluator() = default;

  struct Verdict {
    bool admitted = false;
    std::string reason;  // first threshold breached; empty when admitted
    double decision_match_rate = 1.0;
    double counterfactual_score = -1.0;  // -1 = corpus carries no labels
    double recorded_score = -1.0;        // incumbent's score on the same labels
    uint64_t replay_exec_errors = 0;
    std::string report;  // serialized DivergenceReport (archival / artifacts)
  };

  // Evaluates `candidate` offline. Errors mean the evaluation itself could
  // not run (no corpus, candidate fails verification); a failed threshold is
  // a non-error Verdict with admitted = false.
  virtual Result<Verdict> Evaluate(const RmtProgramSpec& candidate, ExecTier tier) = 0;
};

// The control plane's slice of the telemetry registry (names under
// "rkd.cp."). Like HookMetrics this is a view: the metrics live in the hook
// registry's TelemetryRegistry.
struct ControlPlaneMetrics {
  Counter* installs = nullptr;        // successful Install() calls
  Counter* install_errors = nullptr;  // rejected Install() calls
  Counter* uninstalls = nullptr;
  Counter* model_swaps = nullptr;     // successful InstallModel() calls
  Counter* model_swap_errors = nullptr;
  Counter* ticks = nullptr;           // adaptation Tick() evaluations
  Counter* knob_raised = nullptr;
  Counter* knob_lowered = nullptr;
  Counter* suspends = nullptr;        // Suspend() detachments
  Counter* resumes = nullptr;         // Resume() re-attachments
  Counter* canary_installs = nullptr; // InstallCanary() successes
  Counter* promotions = nullptr;      // rollouts resolved in the canary's favour
  Counter* rollbacks = nullptr;       // rollouts resolved against the canary
  Counter* shadow_evals = nullptr;    // InstallShadowed() evaluations run
  Counter* shadow_admits = nullptr;   // candidates that passed the shadow gate
  Counter* shadow_rejects = nullptr;  // candidates the shadow gate refused
  // Tier-3 specializing-compiler slice ("rkd.vm.tier3.*"). Specialize-time
  // facts accumulate at publish; fire-path execs/deopts are mirrored from
  // each program's sharded Tier3Stats on every tiering tick.
  Counter* tier3_specializations = nullptr;  // specialized streams published
  Counter* tier3_retires = nullptr;          // streams retired (demotion/respecialize)
  Counter* tier3_superblocks = nullptr;      // superblocks formed across publishes
  Counter* tier3_folded_lookups = nullptr;   // map lookups const-folded
  Counter* tier3_folded_models = nullptr;    // model slots burned into streams
  Counter* tier3_execs = nullptr;            // fires served by tier 3 (mirrored)
  // Bottleneck-advisory slice ("rkd.bottleneck.*"): refresh count plus
  // per-program label/fires/critical-path gauges registered on first use.
  Counter* bottleneck_refreshes = nullptr;   // RefreshBottleneck() analyses run
  Counter* tier3_deopt_map_write = nullptr;      // deopts: control-plane map write
  Counter* tier3_deopt_model_install = nullptr;  // deopts: model hot-swap
  Counter* tier3_deopt_table_mutation = nullptr; // deopts: table entry churn
  LatencyHistogram* install_ns = nullptr;  // full Install() wall latency
  LatencyHistogram* verify_ns = nullptr;   // admission (verifier) phase only
  Gauge* knob = nullptr;                   // knob value after the last tick
  Gauge* accuracy = nullptr;               // rolling accuracy at the last tick
  Gauge* shadow_divergence = nullptr;      // 1 - decision_match_rate of the last eval
  Gauge* shadow_score = nullptr;           // counterfactual score of the last eval
  Gauge* tier3_actions = nullptr;          // live specializations after the last tick
};

class ControlPlane {
 public:
  using ProgramHandle = int64_t;

  explicit ControlPlane(HookRegistry* hooks, VerifierConfig verifier_config = {});

  // Verifies, compiles, and attaches `spec`. On any verification failure
  // nothing is installed and the error carries the first diagnostic.
  Result<ProgramHandle> Install(const RmtProgramSpec& spec, ExecTier tier = ExecTier::kJit);

  // Detaches all tables and destroys the program's state.
  Status Uninstall(ProgramHandle handle);

  InstalledProgram* Get(ProgramHandle handle);

  // --- Lifecycle (circuit-breaker integration) ---
  // Detaches every table from its hook WITHOUT destroying program state
  // (maps, models, logs, context survive), so the hook reverts to the stock
  // heuristic while the guardian decides whether to re-admit. While
  // suspended, mutating ops (entries, models, map writes) fail with
  // kFailedPrecondition; ReadMap stays allowed for diagnosis.
  Status Suspend(ProgramHandle handle);
  // Re-attaches a suspended program's tables (half-open probation re-entry).
  Status Resume(ProgramHandle handle);
  Result<bool> IsSuspended(ProgramHandle handle) const;

  // --- Canary rollout ---
  struct CanaryConfig {
    uint32_t canary_permille = 100;    // fraction of fires routed to the canary
    uint64_t soak_min_execs = 32;      // per-arm executions before a verdict
    double max_error_rate = 0.05;      // canary exec-error rate bound
    double max_latency_ratio = 2.0;    // canary p99 / incumbent p99 bound (0 = off)
    double min_accuracy_delta = 0.0;   // canary accuracy must beat incumbent by this
    uint64_t min_accuracy_samples = 0; // per-arm resolved predictions (0 = skip check)
  };

  using RolloutId = int64_t;

  // One rollout arm's telemetry over the soak window.
  struct ArmSnapshot {
    std::string name;
    uint64_t execs = 0;
    uint64_t exec_errors = 0;
    double error_rate = 0.0;
    double p99_ns = 0.0;
    uint64_t accuracy_samples = 0;
    double accuracy = 0.0;
  };

  struct RolloutReport {
    enum class Decision { kSoaking, kPromoted, kRolledBack };
    Decision decision = Decision::kSoaking;
    RolloutId id = -1;
    ProgramHandle incumbent_handle = -1;
    ProgramHandle canary_handle = -1;
    ArmSnapshot incumbent;
    ArmSnapshot canary;
    std::string reason;  // which bound decided (empty while soaking)
  };

  // Installs `candidate` alongside the incumbent and starts routing
  // `canary_permille` of the incumbent's hook fires to it. The candidate
  // goes through full admission (verifier, budgets) like any install and
  // must carry a distinct program name so its telemetry slice is separate.
  Result<RolloutId> InstallCanary(ProgramHandle incumbent, const RmtProgramSpec& candidate,
                                  const CanaryConfig& config, ExecTier tier = ExecTier::kJit);

  // Compares the two arms' telemetry since InstallCanary(). Below the soak
  // threshold: kSoaking (call again after more traffic). Otherwise the
  // rollout resolves exactly once: kPromoted uninstalls the incumbent and
  // gives the canary full traffic, kRolledBack uninstalls the canary.
  Result<RolloutReport> EvaluateRollout(RolloutId id);

  std::vector<RolloutId> ActiveRollouts() const;

  // --- Shadow evaluation (offline admission before canary) ---
  // Wires the evaluator used by InstallShadowed(). Not owned; pass nullptr
  // to disconnect. The canonical implementation is rkd::ShadowGate
  // (src/replay/shadow.h), which replays the candidate against a recorded
  // experience corpus.
  void set_shadow_evaluator(ShadowEvaluator* evaluator) { shadow_ = evaluator; }
  ShadowEvaluator* shadow_evaluator() const { return shadow_; }

  struct ShadowedInstall {
    ShadowEvaluator::Verdict verdict;
    // Valid (>= 0) only when the verdict admitted the candidate and the
    // canary rollout started; resolve it with EvaluateRollout() as usual.
    RolloutId rollout = -1;
  };

  // The shadowed admission path: evaluates `candidate` against the
  // configured ShadowEvaluator and, only if the verdict admits it, hands it
  // to InstallCanary() with `config`. A rejected candidate never touches the
  // live hooks — the returned ShadowedInstall carries the verdict (with the
  // serialized divergence report) and no rollout. Fails with
  // kFailedPrecondition when no evaluator is wired.
  Result<ShadowedInstall> InstallShadowed(ProgramHandle incumbent,
                                          const RmtProgramSpec& candidate,
                                          const CanaryConfig& config,
                                          ExecTier tier = ExecTier::kJit);

  // --- Entry management (runtime reconfiguration) ---
  Status AddEntry(ProgramHandle handle, std::string_view table, const TableEntry& entry);
  Status RemoveEntry(ProgramHandle handle, std::string_view table, uint64_t key,
                     uint64_t key2 = 0);
  Status ModifyEntry(ProgramHandle handle, std::string_view table, uint64_t key, uint64_t key2,
                     int32_t action_index, int64_t model_slot = -1);

  // --- Model management ---
  // Installs `model` into `slot`, re-checking the verifier cost model against
  // the tightest hook budget among the program's tables.
  Status InstallModel(ProgramHandle handle, int64_t slot, ModelPtr model);

  // --- Map access from "userspace" ---
  Status WriteMap(ProgramHandle handle, int64_t map_id, int64_t key, int64_t value);
  Result<int64_t> ReadMap(ProgramHandle handle, int64_t map_id, int64_t key);

  // --- Tier-3 specialization (the tier ladder) ---
  // The ladder is interpret (tier 1) → compiled (tier 2) → specialized
  // (tier 3). Tiers 1/2 are fixed per table at Install(); tier 3 is an
  // overlay this control plane promotes hot programs into and demotes them
  // out of. Promotion is deterministic: a program whose always-on exec
  // counter reaches `hot_execs` gets every action of every jit-tier table
  // specialized against the current map/model/table snapshot at the next
  // TickTiering(). Demotion is automatic (fires deoptimize to tier 2 the
  // moment a guard goes stale) and explicit (the tick retires streams while
  // the overload governor holds the program below kFull — a degraded
  // program must not pay respecialization churn).
  struct TieringConfig {
    uint64_t hot_execs = 4096;        // promotion threshold (exec count)
    bool fold_map_constants = true;   // fold/burn frozen-map lookups
    bool fold_models = true;          // burn model-slot weights
    // Let the trace-derived bottleneck advisory scale the promotion
    // threshold (see EffectiveHotExecs): programs whose label specialization
    // can actually help (dispatch/ml-eval-bound) promote at hot_execs;
    // table-bound programs — whose fix is index tuning, not tier 3 — wait
    // 4x as long; helper/deadline-bound wait 2x. A program with no valid
    // advisory keeps the flat threshold, preserving pre-advisory behaviour.
    bool advisory_promotion = true;
  };
  Status EnableTiering(ProgramHandle handle, const TieringConfig& config);
  Status EnableTiering(ProgramHandle handle) { return EnableTiering(handle, TieringConfig()); }

  // What one tiering tick saw and did.
  struct TierReport {
    int tier = 1;                        // highest tier live after this tick (1/2/3)
    uint64_t execs = 0;                  // lifetime fires (promotion driver)
    uint64_t hot_execs = 0;              // configured promotion threshold
    size_t specialized_actions = 0;      // actions carrying a live specialization
    uint64_t specializations = 0;        // streams published this tick
    uint64_t retires = 0;                // streams retired this tick
    uint64_t superblocks = 0;            // across live specializations
    uint64_t folded_lookups = 0;         // across live specializations
    uint64_t burned_lookups = 0;         // across live specializations
    uint64_t folded_models = 0;          // across live specializations
    uint64_t tile_kernels = 0;           // across live specializations
    uint64_t tier3_execs = 0;            // lifetime fires served by tier 3
    uint64_t tier3_deopts = 0;           // lifetime guard-failure fallbacks
    std::array<uint64_t, 3> deopts_by_reason{};  // indexed by DeoptReason
    GovLevel governor_level = GovLevel::kFull;
    // Advisory-scaled promotion: the label in force and the threshold this
    // tick actually compared execs against (== hot_execs when the advisory
    // is absent, neutral, or advisory_promotion is off).
    BottleneckLabel advisory_label = BottleneckLabel::kInconclusive;
    uint64_t effective_hot_execs = 0;
  };

  // Runs one pass of the tier ladder: mirrors fire-path tier-3 tallies into
  // telemetry, demotes while governed/suspended, promotes or respecializes
  // (stale guards) when hot. Call periodically alongside TickReport().
  // Errors if tiering is not enabled.
  Result<TierReport> TickTiering(ProgramHandle handle);

  // --- Trace-derived bottleneck advisory ---
  // Snapshots the tracer's flight-recorder rings, runs the critical-path
  // analysis (src/telemetry/bottleneck.h), merges the hooks this program's
  // tables attach to into one advisory, stores it on the program, and
  // mirrors it into "rkd.bottleneck.*" telemetry. Pure function of the
  // recorded span bytes: the same resident spans yield a byte-identical
  // advisory on any run and either VM tier. Call off the datapath (it walks
  // every resident span), typically alongside TickTiering().
  Result<BottleneckAdvisory> RefreshBottleneck(ProgramHandle handle,
                                               const AnalyzerConfig& config = {});

  // Installs a precomputed advisory (offline analysis of a flight dump, or
  // tests steering the tier ladder deterministically). Same storage and
  // telemetry side effects as RefreshBottleneck.
  Status SetBottleneckAdvisory(ProgramHandle handle, const BottleneckAdvisory& advisory);

  // The promotion threshold TickTiering compares execs against, given the
  // program's current advisory. Exposed for tests and tools.
  static uint64_t EffectiveHotExecs(const TieringConfig& config,
                                    const BottleneckAdvisory& advisory);

  // --- Accuracy-driven adaptation ---
  struct AdaptationConfig {
    double low_accuracy = 0.5;   // below: decrement the knob
    double high_accuracy = 0.8;  // above: increment the knob
    uint64_t min_samples = 32;   // resolved predictions needed per decision
    int64_t config_map = 0;      // map holding the knob
    int64_t knob_key = 0;        // key of the knob cell
    int64_t min_value = 1;
    int64_t max_value = 8;
  };
  Status EnableAdaptation(ProgramHandle handle, const AdaptationConfig& config);

  // What one adaptation evaluation saw and did.
  struct AdaptationReport {
    int64_t knob = 0;       // knob value after adjustment
    double accuracy = 0.0;  // rolling accuracy evaluated this tick (0 below min_samples)
    uint64_t samples = 0;   // resolved predictions considered
    int direction = 0;      // -1 lowered, 0 unchanged, +1 raised
    // Overload-governor state at tick time (kFull when ungoverned).
    GovLevel governor_level = GovLevel::kFull;
    uint64_t map_quota_breaches = 0;
    // Tier-ladder state at tick time (tier stays at the table tier when
    // tiering was never enabled). See TierReport for the full picture.
    int exec_tier = 1;                  // highest tier live (1/2/3)
    size_t specialized_actions = 0;     // actions carrying a live specialization
    uint64_t tier3_execs = 0;           // lifetime fires served by tier 3
    uint64_t tier3_deopts = 0;          // lifetime guard-failure fallbacks
    // Stored bottleneck advisory at tick time (mirror, not a re-analysis —
    // the tick stays a pure function of program state, so enabling the
    // advisory never perturbs adaptation determinism).
    BottleneckLabel bottleneck = BottleneckLabel::kInconclusive;
    uint64_t bottleneck_fires = 0;
    uint64_t bottleneck_critical_path_ns = 0;
  };

  // Evaluates the program's prediction log and adjusts the knob. Call
  // periodically (the paper's control plane runs this off the datapath).
  // Errors if adaptation is not enabled.
  Result<AdaptationReport> TickReport(ProgramHandle handle);

  // Older knob-value-only form; delegates to TickReport().
  Result<int64_t> Tick(ProgramHandle handle);

  // Control-plane telemetry view ("rkd.cp.*" in the hook registry's
  // TelemetryRegistry).
  const ControlPlaneMetrics& Metrics() const { return metrics_; }

  // The registry all control-plane (and guardian) metrics land in.
  TelemetryRegistry& telemetry() const;

  // Raises/lowers the force-trace refcount on every hook `handle`'s program
  // attaches to. The control plane holds one for the span of a rollout; the
  // guardian holds one while a program is on probation. Deltas must balance.
  void AdjustForceTraceFor(ProgramHandle handle, int delta);

  size_t installed_count() const;

 private:
  Result<ProgramHandle> InstallImpl(const RmtProgramSpec& spec, ExecTier tier);
  struct Slot {
    std::unique_ptr<InstalledProgram> program;
    bool adaptation_enabled = false;
    bool suspended = false;
    AdaptationConfig adaptation;
    bool tiering_enabled = false;
    TieringConfig tiering;
    // Map ids any action may write at fire time (union across all actions of
    // all tables); lookups on every other map are fold candidates.
    std::vector<int64_t> fire_written_maps;
    // Registry-mirror baselines: how much of the program's sharded tier-3
    // tallies has already been flushed into the global counters.
    uint64_t tier3_execs_flushed = 0;
    std::array<uint64_t, 3> tier3_deopts_flushed{};
    // Tier observed by the last tiering tick (0 = never ticked); transitions
    // push kTierTransitionEvent so counter tracks line up with traces.
    int last_tier = 0;
  };

  // Where one rollout arm's counters stood when the soak window opened.
  struct ArmBaseline {
    uint64_t execs = 0;
    uint64_t errors = 0;
    uint64_t resolved = 0;
    uint64_t correct = 0;
    HistogramWindow window;
  };

  struct Rollout {
    bool active = false;
    ProgramHandle incumbent = -1;
    ProgramHandle canary = -1;
    CanaryConfig config;
    // Outlives the rollout's resolution: tables are re-pointed to
    // kSolo/nullptr before either program is uninstalled.
    std::unique_ptr<CanaryGate> gate;
    ArmBaseline incumbent_base;
    ArmBaseline canary_base;
    // Whether this rollout still holds a +1 force-trace on the shared hooks.
    bool force_traced = false;
  };

  Slot* FindSlot(ProgramHandle handle);
  const Slot* FindSlot(ProgramHandle handle) const;
  static ArmBaseline BaselineOf(const InstalledProgram& program);
  static ArmSnapshot SnapshotArm(const InstalledProgram& program, const ArmBaseline& base);
  // Returns every table of `handle`'s program to solo routing.
  void ClearCanaryRole(ProgramHandle handle);
  // Releases a rollout's force-trace hold exactly once.
  void ReleaseRolloutForceTrace(Rollout& rollout);
  // Stores `advisory` on the slot's program and mirrors it into the
  // "rkd.bottleneck.<program>.*" gauges.
  void StoreAdvisory(Slot& slot, BottleneckAdvisory advisory);
  // Pushes a kCanaryRoutingEvent (counter-track sample) for `rollout`.
  void PushCanaryRoutingEvent(RolloutId id, uint32_t permille);

  HookRegistry* hooks_;  // not owned
  VerifierConfig verifier_config_;
  ControlPlaneMetrics metrics_;
  ShadowEvaluator* shadow_ = nullptr;  // not owned
  std::vector<Slot> slots_;
  std::vector<Rollout> rollouts_;
};

}  // namespace rkd

#endif  // SRC_RMT_CONTROL_PLANE_H_
