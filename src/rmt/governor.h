// The overload governor: graceful degradation under fire-path stress.
//
// The guardian (src/rmt/guardian.h) contains *misbehaving* programs — wrong
// answers, faults. The governor contains *expensive* ones: a program whose
// learned policy is correct but can no longer afford its fire-time budget
// under the current load should not be quarantined, it should be walked down
// a degradation ladder and walked back up when the storm passes:
//
//     kFull      learned policy runs normally
//       │ demote (sustained deadline overruns / p99 / map-quota breaches)
//       ▼
//     kDegraded  learned policy skipped; the hook's registered fallback
//       │        oracle (the heuristic baseline, e.g. readahead or the
//       │        vanilla CFS test) answers instead
//       ▼
//     kShed      nothing runs; fires return kHookFallback (stock kernel)
//
// Promote/demote decisions are hysteresis-gated window verdicts over the
// per-program telemetry the datapath already records (deadline-error rate,
// windowed exec p99, map-quota breaches), evaluated only in Tick() — never
// on the datapath. The datapath's entire involvement is one relaxed load of
// the program's rung cell per fire (see HookRegistry::Fire) plus the coarse
// deadline polls inside the VM tiers. All timing a verdict depends on is
// tick-counted or measured against the injectable clock, so ladder traces
// are deterministic under test.
//
// A program that keeps cycling down to kShed is not allowed to shed silently
// forever: after `shed_cycles_to_breaker` demotions into kShed the governor
// reports the breach to the PolicyGuardian, whose breaker takes over
// (suspend, backoff, eventually quarantine).
#ifndef SRC_RMT_GOVERNOR_H_
#define SRC_RMT_GOVERNOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/rmt/control_plane.h"
#include "src/rmt/guardian.h"

namespace rkd {

// Hysteresis thresholds for one governed program. Zero-valued bounds disable
// their check; the default config demotes on deadline overruns and map-quota
// breaches only.
struct GovernorConfig {
  // A window verdict needs this many executions since the window opened.
  // While the program sheds (no executions), verdicts pause — re-promotion
  // out of kShed is driven by shed_probe_ticks below instead.
  uint64_t window_fires = 64;
  // Deadline overruns / execs over the window before the window counts as
  // breached.
  double max_deadline_rate = 0.05;
  // Windowed exec p99 bound in ns (0 = off). Set this when latency matters
  // even before the hard deadline trips.
  double max_p99_ns = 0.0;
  // Map-quota breaches tolerated per window; any more breaches the window.
  uint64_t max_quota_breaches = 0;
  // Consecutive breached windows before demoting one rung.
  uint32_t demote_windows = 1;
  // Consecutive clean windows before promoting one rung (hysteresis: climb
  // slower than you fall).
  uint32_t promote_windows = 2;
  // In kShed no executions happen, so windows never fill. After this many
  // ticks at kShed the governor probes upward to kDegraded on its own.
  uint64_t shed_probe_ticks = 4;
  // Demotions into kShed before the breach is escalated to the guardian's
  // breaker (0 = never escalate).
  uint32_t shed_cycles_to_breaker = 3;
};

class OverloadGovernor {
 public:
  // `clock` is the timebase deadline checks and transition timestamps use;
  // empty = MonotonicNowNs. Govern() installs it into the program, so one
  // fake clock drives both the VM's deadline polls and the governor.
  explicit OverloadGovernor(ControlPlane* control_plane,
                            std::function<uint64_t()> clock = {});

  // Wires the guardian escalation path (nullptr disconnects it).
  void set_guardian(PolicyGuardian* guardian) { guardian_ = guardian; }

  // Starts governing `handle` at kFull. The program must be installed; its
  // first window opens at the current telemetry values.
  Status Govern(ControlPlane::ProgramHandle handle, const GovernorConfig& config = {});

  // Stops governing and restores the program to kFull.
  Status Ungovern(ControlPlane::ProgramHandle handle);

  GovLevel LevelOf(ControlPlane::ProgramHandle handle) const;
  bool IsGoverned(ControlPlane::ProgramHandle handle) const;

  // One ladder transition: what moved, which way, and why.
  struct LadderEvent {
    ControlPlane::ProgramHandle handle = -1;
    std::string program;
    GovLevel from = GovLevel::kFull;
    GovLevel to = GovLevel::kFull;
    std::string reason;
  };

  struct TickSummary {
    std::vector<LadderEvent> transitions;
    uint32_t breaker_reports = 0;  // escalations handed to the guardian
  };

  // One deterministic evaluation pass over every governed program. Call it
  // periodically off the datapath (alongside PolicyGuardian::Tick); tests
  // call it directly, interleaved with fires, for exact control.
  TickSummary Tick();

  uint64_t ticks() const { return tick_count_; }

  // Flight-recorder auto-dump, mirroring the guardian's: every ladder
  // transition snapshots the tracer's span rings into `dir` tagged with the
  // program and reason. Empty (the default) disables dumping. Filenames are
  // deterministic (program name + dump ordinal, no wall clock).
  void set_flight_recorder_dir(std::string dir) { flight_recorder_dir_ = std::move(dir); }
  const std::string& last_flight_dump() const { return last_flight_dump_; }
  uint64_t flight_dumps() const { return flight_dumps_; }

 private:
  struct Governed {
    ControlPlane::ProgramHandle handle = -1;
    std::string name;
    GovernorConfig config;
    GovLevel level = GovLevel::kFull;
    // Window baselines over the program's exec metrics and map quota.
    uint64_t execs0 = 0;
    uint64_t deadline0 = 0;
    uint64_t quota0 = 0;
    HistogramWindow window;
    // Hysteresis state.
    uint32_t breached_windows = 0;
    uint32_t clean_windows = 0;
    uint64_t ticks_at_shed = 0;
    uint32_t shed_entries = 0;  // demotions into kShed since last full recovery
    Gauge* level_gauge = nullptr;  // rkd.gov.level.<name>
  };

  Governed* Find(ControlPlane::ProgramHandle handle);
  const Governed* Find(ControlPlane::ProgramHandle handle) const;
  void OpenWindow(Governed& gov);
  // Evaluates the overload thresholds over the current window. Empty string
  // when every bound holds; "(filling)" sentinel never escapes Tick().
  std::string Breach(const Governed& gov, uint64_t execs, uint64_t deadline_errs,
                     uint64_t quota_breaches) const;
  void Transition(Governed& gov, GovLevel to, const std::string& reason,
                  TickSummary& summary);
  uint64_t Now() const;
  void DumpFlightRecorder(const std::string& program, const std::string& reason);

  ControlPlane* control_plane_;  // not owned
  PolicyGuardian* guardian_ = nullptr;  // not owned
  std::function<uint64_t()> clock_;
  std::vector<Governed> governed_;
  uint64_t tick_count_ = 0;
  std::string flight_recorder_dir_;
  std::string last_flight_dump_;
  uint64_t flight_dumps_ = 0;

  // "rkd.gov.*" slice in the control plane's telemetry registry.
  Counter* ticks_ = nullptr;
  Counter* demotions_ = nullptr;
  Counter* promotions_ = nullptr;
  Counter* breaker_reports_ = nullptr;
};

}  // namespace rkd

#endif  // SRC_RMT_GOVERNOR_H_
