// The installable program unit and its runtime form.
//
// An RmtProgramSpec is what "userspace" hands to the control plane: table
// definitions (each with its action programs and initial entries), sized
// maps, model slots, and weight tensors — the `rmt_prefetch_prog` bundle of
// the paper's Figure 1. After verification the spec becomes an
// InstalledProgram: tables with compiled actions, a private execution
// environment (context store, maps, model/tensor registries, rate limiter,
// privacy budget, prediction log), attached to its hook points.
#ifndef SRC_RMT_PIPELINE_H_
#define SRC_RMT_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/epoch.h"
#include "src/base/status.h"
#include "src/bytecode/program.h"
#include "src/ml/model_registry.h"
#include "src/rmt/hooks.h"
#include "src/rmt/table.h"
#include "src/telemetry/bottleneck.h"
#include "src/vm/jit.h"
#include "src/vm/specialize.h"
#include "src/vm/vm.h"

namespace rkd {

enum class ExecTier { kInterpreter, kJit };

// Per-program execution telemetry ("rkd.guard.prog.<name>.*"), the slice the
// policy guardian's circuit breakers and rollout comparisons read. Per-hook
// metrics aggregate every attached table; these isolate one program, so an
// incumbent and its canary sharing a hook stay distinguishable.
struct ProgramExecMetrics {
  Counter* execs = nullptr;         // action executions attempted
  Counter* exec_errors = nullptr;   // executions that faulted
  // Breach attribution: which resource bound an erroring execution hit.
  // Both also count in exec_errors; the split keeps deadline overruns,
  // instruction-budget exhaustion, and plain faults distinguishable for the
  // guardian and the overload governor.
  Counter* deadline_errors = nullptr;  // kDeadlineExceeded (wall-clock budget)
  Counter* budget_errors = nullptr;    // kResourceExhausted (step/map budget)
  LatencyHistogram* exec_ns = nullptr;  // per-execution wall latency
};

// Which slice of a hook's fire stream a table serves during a canary
// rollout. Routing is by fire sequence number so it is deterministic and
// every table of a program agrees on the same decision for one fire.
enum class CanaryRole {
  kSolo,       // no rollout in progress; runs on every fire
  kIncumbent,  // runs on fires NOT routed to the canary
  kCanary,     // runs on the configured per-mille of fires
};

// Shared routing state for one incumbent/canary pair. Owned by the control
// plane's rollout record; both programs' tables point at it.
struct CanaryGate {
  std::atomic<uint32_t> canary_permille{0};
};

struct RmtTableSpec {
  std::string name;
  std::string hook_point;  // registered hook name this table attaches to
  MatchKind match_kind = MatchKind::kExact;
  size_t max_entries = 1024;
  // Action programs; entries reference them by index. The hook kind of every
  // action must equal the hook point's kind (verified at install).
  std::vector<BytecodeProgram> actions;
  int32_t default_action = -1;  // action on table miss; -1 = no-op
  std::vector<TableEntry> initial_entries;
};

struct MapSpec {
  MapKind kind = MapKind::kArray;
  size_t capacity = 64;
};

struct RmtProgramSpec {
  std::string name;
  std::vector<RmtTableSpec> tables;
  std::vector<MapSpec> maps;
  uint32_t model_slots = 0;
  std::vector<FixedMatrix> tensors;

  // Runtime-policy knobs owned by the installed program.
  int64_t rate_limit_capacity = 64;     // token bucket size per key
  int64_t rate_limit_refill = 4;        // tokens per virtual-time tick
  double privacy_epsilon = 1.0;         // total DP budget
  double epsilon_per_query = 0.1;
  double dp_sensitivity = 1.0;
  uint64_t seed = 42;                   // DP noise determinism

  // Overload-governor resource declarations. Both default to 0 = unbounded,
  // preserving pre-governor behaviour for specs that never declare them.
  uint64_t fire_deadline_ns = 0;   // per-execution wall-clock budget
  uint64_t map_bytes_quota = 0;    // byte budget across all of the program's maps
};

// One table at runtime: the match structure plus its compiled actions and
// the helper environment every action of this table executes in.
class AttachedTable {
 public:
  AttachedTable(RmtTable table, HookId hook, HookKind hook_kind, ExecTier tier)
      : table_(std::move(table)), hook_(hook), hook_kind_(hook_kind), tier_(tier) {}

  // Matches `key` and runs the selected action with r1 = key, r2.. = args.
  // kHookFallback on no-action; execution errors surface as Status.
  // `tracer` is non-null only for traced fires (HookRegistry decides); it
  // makes Execute emit "table.lookup" and "vm.exec" child spans and routes
  // the VM's opcode profile into the program's OpcodeProfile.
  Result<int64_t> Execute(uint64_t key, std::span<const int64_t> args,
                          Tracer* tracer = nullptr);

  // Batch counterpart (HookRegistry::FireBatch): runs every admitted event
  // of the batch with one canary-gate resolution, one exec-metrics
  // timestamp pair, one reusable JIT frame (or one interpreter/env copy),
  // and bulk VM-metric updates. Event i is fire seq_base + i for routing.
  // Per-event result-merge semantics match Fire: an ok, non-fallback result
  // overwrites results[i]; errors and skipped events leave it untouched.
  // A traced batch (`tracer` non-null) emits one "table.lookup" span per
  // table pass — tagged with the index kind, epoch, and batch tallies — and
  // accumulates the batch's opcode/helper profile; ml.eval spans still nest
  // per model call.
  void ExecuteBatch(std::span<const HookEvent> events, uint64_t seq_base,
                    std::span<int64_t> results, HookBatchStats* stats,
                    Tracer* tracer = nullptr);

  RmtTable& table() { return table_; }
  const RmtTable& table() const { return table_; }
  HookId hook() const { return hook_; }
  HookKind hook_kind() const { return hook_kind_; }
  ExecTier tier() const { return tier_; }

  // Whether this table participates in fire number `seq` given its canary
  // role. Called by HookRegistry::Fire on the datapath.
  bool ShouldRun(uint64_t seq) const {
    if (role_ == CanaryRole::kSolo || gate_ == nullptr) {
      return true;
    }
    const bool canary_turn =
        seq % 1000 < gate_->canary_permille.load(std::memory_order_relaxed);
    return role_ == CanaryRole::kCanary ? canary_turn : !canary_turn;
  }
  CanaryRole role() const { return role_; }

  // The owning program's degradation-ladder rung, read by HookRegistry on
  // every fire with one relaxed load. Null cell (tables built outside an
  // InstalledProgram, e.g. unit tests) reads as kFull.
  GovLevel governor_level() const {
    if (gov_level_ == nullptr) {
      return GovLevel::kFull;
    }
    return static_cast<GovLevel>(gov_level_->load(std::memory_order_relaxed));
  }
  void set_governor_cell(const std::atomic<uint8_t>* cell) { gov_level_ = cell; }

  // Wiring performed by ControlPlane at install time.
  void set_actions(std::vector<BytecodeProgram> actions,
                   std::vector<CompiledProgram> compiled, int32_t default_action);
  void set_env(VmEnv env, HelperServices* services);
  void set_tail_resolver(CompiledProgram::Resolver resolver,
                         std::function<const BytecodeProgram*(int64_t)> interp_resolver);
  void set_exec_metrics(const ProgramExecMetrics* metrics) { exec_metrics_ = metrics; }
  // Fire-time wall-clock budget (0 = unbounded) and the clock it is measured
  // against. `clock` is non-owning (the InstalledProgram's injectable clock);
  // both must be wired before the table sees traffic.
  void set_fire_budget(uint64_t budget_ns, const std::function<uint64_t()>* clock) {
    fire_budget_ns_ = budget_ns;
    fire_clock_ = clock;
  }
  uint64_t fire_budget_ns() const { return fire_budget_ns_; }
  // The program's opcode/helper profile sink, fed only on traced fires.
  void set_opcode_profile(OpcodeProfile* profile) { opcode_profile_ = profile; }
  // Rollout wiring (ControlPlane). `gate` must outlive the table or be
  // cleared back to kSolo/nullptr before it dies.
  void set_canary(CanaryRole role, const CanaryGate* gate) {
    gate_ = gate;
    role_ = role;
  }

  const CompiledProgram* compiled_default() const;
  const BytecodeProgram* default_action_program() const;
  size_t action_count() const { return actions_.size(); }
  const std::vector<BytecodeProgram>& actions() const { return actions_; }
  uint64_t executions() const { return executions_.value(); }

  // --- Tier-3 surface (control-plane writer, fire-path reader) ---
  // Publishes (spec != nullptr) or retires (nullptr) the specialized form
  // of action `index`. Takes ownership; the displaced specialization is
  // epoch-retired, so in-flight fires running it finish safely.
  void PublishSpecialized(size_t index, const SpecializedProgram* spec);
  // Control-plane / introspection peek. The returned pointer is only stable
  // while no concurrent PublishSpecialized runs — i.e. under the control
  // plane's single-writer contract.
  const SpecializedProgram* specialized(size_t index) const;
  // Actions currently carrying a live specialization.
  size_t specialized_count() const;
  void set_tier3_stats(Tier3Stats* stats) { tier3_stats_ = stats; }

 private:
  RmtTable table_;
  HookId hook_;
  HookKind hook_kind_;
  ExecTier tier_;

  std::vector<BytecodeProgram> actions_;
  std::vector<CompiledProgram> compiled_;
  // Tier-3 overlay, one slot per action (sized by set_actions, never
  // reallocated once the datapath can see the table). A null slot or a
  // failed entry guard falls back to compiled_ for that fire.
  std::vector<EpochPtr<const SpecializedProgram>> specialized_;
  Tier3Stats* tier3_stats_ = nullptr;  // owned by InstalledProgram
  int32_t default_action_ = -1;

  VmEnv env_;
  HelperServices* services_ = nullptr;  // owned by InstalledProgram
  CompiledProgram::Resolver tail_resolver_;
  ShardedCounter executions_;  // incremented by concurrent fires
  const ProgramExecMetrics* exec_metrics_ = nullptr;  // owned by InstalledProgram
  OpcodeProfile* opcode_profile_ = nullptr;           // owned by InstalledProgram
  CanaryRole role_ = CanaryRole::kSolo;
  const CanaryGate* gate_ = nullptr;  // owned by the ControlPlane rollout
  // Degradation-ladder rung of the owning program (owned by
  // InstalledProgram); null = ungoverned, always kFull.
  const std::atomic<uint8_t>* gov_level_ = nullptr;
  // Per-execution wall-clock budget; 0 keeps deadline polling disarmed.
  uint64_t fire_budget_ns_ = 0;
  const std::function<uint64_t()>* fire_clock_ = nullptr;  // owned by InstalledProgram

  friend class InstalledProgram;
};

// The runtime form of one installed RmtProgramSpec, owning all its state.
class InstalledProgram {
 public:
  ~InstalledProgram();
  InstalledProgram(const InstalledProgram&) = delete;
  InstalledProgram& operator=(const InstalledProgram&) = delete;

  const std::string& name() const { return name_; }
  // The hook registry this program is attached to (and with it, the
  // telemetry registry its metrics land in).
  const HookRegistry& hooks() const { return *hooks_; }
  ContextStore& context() { return ctxt_; }
  MapSet& maps() { return maps_; }
  ModelRegistry& models() { return models_; }
  TensorRegistry& tensors() { return tensors_; }
  PredictionLog& prediction_log() { return prediction_log_; }
  const PredictionLog& prediction_log() const { return prediction_log_; }
  RingMap& sample_ring() { return sample_ring_; }
  // The guardian's per-program telemetry slice (set up at install).
  const ProgramExecMetrics& exec_metrics() const { return exec_metrics_; }
  // Sampled opcode/helper profile across every action of this program
  // (accumulated on traced fires; see VmEnv::profile). Its always-on exec
  // tally (OpcodeProfile::total_execs) is bumped on every fire and drives
  // deterministic tier-3 promotion.
  OpcodeProfile& opcode_profile() { return opcode_profile_obj_; }
  const OpcodeProfile& opcode_profile() const { return opcode_profile_obj_; }
  // Tier-3 fire-path tallies (specialized executions + deopts by reason).
  Tier3Stats& tier3_stats() { return tier3_stats_; }
  const Tier3Stats& tier3_stats() const { return tier3_stats_; }
  PrivacyBudget& privacy_budget() { return privacy_budget_; }
  RateLimiter& rate_limiter() { return rate_limiter_; }

  // Overload-governor surface. The rung cell is a single-byte atomic every
  // attached table points at; the governor (or tests) move the program up
  // and down the ladder by storing into it.
  GovLevel governor_level() const {
    return static_cast<GovLevel>(gov_level_.load(std::memory_order_relaxed));
  }
  void set_governor_level(GovLevel level) {
    gov_level_.store(static_cast<uint8_t>(level), std::memory_order_relaxed);
  }
  const std::atomic<uint8_t>* governor_cell() const { return &gov_level_; }
  // Declared per-execution wall-clock budget (0 = none declared).
  uint64_t fire_deadline_ns() const { return fire_deadline_ns_; }
  // Injectable clock for deadline checks; empty = MonotonicNowNs. Only safe
  // to replace while the program is quiescent (no fires in flight) — tables
  // read through a pointer to this member on the datapath.
  void set_fire_clock(std::function<uint64_t()> clock) { fire_clock_ = std::move(clock); }
  const std::function<uint64_t()>* fire_clock() const { return &fire_clock_; }

  // Trace-derived bottleneck advisory: the per-program merge of the latest
  // critical-path analysis (ControlPlane::RefreshBottleneck writes it; the
  // tier ladder and DumpProgram read it). Control-plane-thread state — never
  // touched by the fire path, so an installed advisory costs fires nothing.
  const BottleneckAdvisory& bottleneck() const { return bottleneck_; }
  void set_bottleneck(BottleneckAdvisory advisory) { bottleneck_ = std::move(advisory); }

  AttachedTable* FindTable(std::string_view table_name);
  const std::vector<std::unique_ptr<AttachedTable>>& tables() const { return tables_; }

 private:
  friend class ControlPlane;
  InstalledProgram(const RmtProgramSpec& spec, HookRegistry* hooks);

  std::string name_;
  HookRegistry* hooks_;  // not owned

  ContextStore ctxt_;
  MapSet maps_;
  ModelRegistry models_;
  TensorRegistry tensors_;
  VmMetrics vm_metrics_;  // "rkd.vm.*" slice every action execution feeds
  ProgramExecMetrics exec_metrics_;  // "rkd.guard.prog.<name>.*" slice
  OpcodeProfile opcode_profile_obj_;  // sampled opcode/helper attribution
  Tier3Stats tier3_stats_;  // specialized-fire + deopt tallies
  RateLimiter rate_limiter_;
  PrivacyBudget privacy_budget_;
  DpNoiseSource dp_noise_;
  PredictionLog prediction_log_;
  RingMap sample_ring_;

  BottleneckAdvisory bottleneck_;  // latest trace-derived advisory

  // Overload-governor state: the ladder rung, the declared fire budget, and
  // the (injectable) clock deadline checks read.
  std::atomic<uint8_t> gov_level_{static_cast<uint8_t>(GovLevel::kFull)};
  uint64_t fire_deadline_ns_ = 0;
  std::function<uint64_t()> fire_clock_;

  // One HelperServices per table (hook bindings differ per table).
  std::vector<std::unique_ptr<HelperServices>> services_;
  std::vector<std::unique_ptr<AttachedTable>> tables_;
  bool attached_ = false;
};

}  // namespace rkd

#endif  // SRC_RMT_PIPELINE_H_
