#include "src/rmt/control_plane.h"

#include <algorithm>

#include "src/base/epoch.h"

namespace rkd {

ControlPlane::ControlPlane(HookRegistry* hooks, VerifierConfig verifier_config)
    : hooks_(hooks), verifier_config_(verifier_config) {
  TelemetryRegistry& telemetry = hooks_->telemetry();
  metrics_.installs = telemetry.GetCounter("rkd.cp.installs");
  metrics_.install_errors = telemetry.GetCounter("rkd.cp.install_errors");
  metrics_.uninstalls = telemetry.GetCounter("rkd.cp.uninstalls");
  metrics_.model_swaps = telemetry.GetCounter("rkd.cp.model_swaps");
  metrics_.model_swap_errors = telemetry.GetCounter("rkd.cp.model_swap_errors");
  metrics_.ticks = telemetry.GetCounter("rkd.cp.ticks");
  metrics_.knob_raised = telemetry.GetCounter("rkd.cp.knob_raised");
  metrics_.knob_lowered = telemetry.GetCounter("rkd.cp.knob_lowered");
  metrics_.suspends = telemetry.GetCounter("rkd.cp.suspends");
  metrics_.resumes = telemetry.GetCounter("rkd.cp.resumes");
  metrics_.canary_installs = telemetry.GetCounter("rkd.cp.canary_installs");
  metrics_.shadow_evals = telemetry.GetCounter("rkd.cp.shadow_evals");
  metrics_.shadow_admits = telemetry.GetCounter("rkd.cp.shadow_admits");
  metrics_.shadow_rejects = telemetry.GetCounter("rkd.cp.shadow_rejects");
  metrics_.shadow_divergence = telemetry.GetGauge("rkd.cp.shadow_divergence");
  metrics_.shadow_score = telemetry.GetGauge("rkd.cp.shadow_score");
  metrics_.promotions = telemetry.GetCounter("rkd.cp.promotions");
  metrics_.rollbacks = telemetry.GetCounter("rkd.cp.rollbacks");
  metrics_.install_ns = telemetry.GetHistogram("rkd.cp.install_ns");
  metrics_.verify_ns = telemetry.GetHistogram("rkd.cp.verify_ns");
  metrics_.knob = telemetry.GetGauge("rkd.cp.adapt.knob");
  metrics_.accuracy = telemetry.GetGauge("rkd.cp.adapt.accuracy");
  metrics_.tier3_specializations = telemetry.GetCounter("rkd.vm.tier3.specializations");
  metrics_.tier3_retires = telemetry.GetCounter("rkd.vm.tier3.retires");
  metrics_.tier3_superblocks = telemetry.GetCounter("rkd.vm.tier3.superblocks");
  metrics_.tier3_folded_lookups = telemetry.GetCounter("rkd.vm.tier3.folded_lookups");
  metrics_.tier3_folded_models = telemetry.GetCounter("rkd.vm.tier3.folded_models");
  metrics_.tier3_execs = telemetry.GetCounter("rkd.vm.tier3.execs");
  metrics_.tier3_deopt_map_write = telemetry.GetCounter("rkd.vm.tier3.deopt_map_write");
  metrics_.tier3_deopt_model_install = telemetry.GetCounter("rkd.vm.tier3.deopt_model_install");
  metrics_.tier3_deopt_table_mutation = telemetry.GetCounter("rkd.vm.tier3.deopt_table_mutation");
  metrics_.bottleneck_refreshes = telemetry.GetCounter("rkd.bottleneck.refreshes");
  metrics_.tier3_actions = telemetry.GetGauge("rkd.vm.tier3.actions");
}

Result<ControlPlane::ProgramHandle> ControlPlane::Install(const RmtProgramSpec& spec,
                                                          ExecTier tier) {
  // Control-plane operations are rare, so installs are always traced: every
  // admission leaves a cp.install → cp.verify tree in the flight recorder.
  ScopedSpan install_span(&hooks_->telemetry().tracer(), "cp.install");
  install_span.Tag("tables", static_cast<int64_t>(spec.tables.size()));
  const uint64_t start_ns = MonotonicNowNs();
  Result<ProgramHandle> result = InstallImpl(spec, tier);
  metrics_.install_ns->Record(MonotonicNowNs() - start_ns);
  (result.ok() ? metrics_.installs : metrics_.install_errors)->Increment();
  install_span.Tag("ok", result.ok() ? 1 : 0);
  return result;
}

Result<ControlPlane::ProgramHandle> ControlPlane::InstallImpl(const RmtProgramSpec& spec,
                                                              ExecTier tier) {
  if (spec.tables.empty()) {
    return InvalidArgumentError("program '" + spec.name + "' declares no tables");
  }

  // Phase 1: resolve hooks and statically admit every action program.
  struct PlannedTable {
    HookId hook;
    HookKind kind;
  };
  std::vector<PlannedTable> planned;
  Verifier verifier(verifier_config_);
  verifier.BindTelemetry(&hooks_->telemetry());
  {
  // Times the admission phase on every exit path, including rejections.
  struct VerifyTimer {
    LatencyHistogram* sink;
    uint64_t start = MonotonicNowNs();
    ~VerifyTimer() { sink->Record(MonotonicNowNs() - start); }
  } verify_timer{metrics_.verify_ns};
  ScopedSpan verify_span(&hooks_->telemetry().tracer(), "cp.verify");
  for (const RmtTableSpec& table_spec : spec.tables) {
    RKD_ASSIGN_OR_RETURN(HookId hook, hooks_->Lookup(table_spec.hook_point));
    const HookKind kind = hooks_->KindOf(hook);
    for (const BytecodeProgram& action : table_spec.actions) {
      if (action.hook_kind != kind) {
        return VerificationFailedError(
            "action '" + action.name + "' targets hook kind '" +
            std::string(HookKindName(action.hook_kind)) + "' but table '" + table_spec.name +
            "' attaches to '" + std::string(HookKindName(kind)) + "'");
      }
      // Resource declarations must be coverable by the spec's resources.
      if (action.num_maps > spec.maps.size()) {
        return VerificationFailedError("action '" + action.name +
                                       "' declares more maps than the program provides");
      }
      if (action.num_models > spec.model_slots) {
        return VerificationFailedError("action '" + action.name +
                                       "' declares more model slots than the program provides");
      }
      if (action.num_tensors > spec.tensors.size()) {
        return VerificationFailedError("action '" + action.name +
                                       "' declares more tensors than the program provides");
      }
      if (action.num_tables > spec.tables.size()) {
        return VerificationFailedError("action '" + action.name +
                                       "' declares more tail-call tables than the program has");
      }
      const VerifyReport report = verifier.Verify(action);
      if (!report.ok()) {
        return report.status;
      }
    }
    if (table_spec.default_action >= 0 &&
        static_cast<size_t>(table_spec.default_action) >= table_spec.actions.size()) {
      return InvalidArgumentError("table '" + table_spec.name +
                                  "' default action index out of range");
    }
    for (const TableEntry& entry : table_spec.initial_entries) {
      if (entry.action_index >= 0 &&
          static_cast<size_t>(entry.action_index) >= table_spec.actions.size()) {
        return InvalidArgumentError("table '" + table_spec.name +
                                    "' entry action index out of range");
      }
    }
    planned.push_back(PlannedTable{hook, kind});
  }
  }  // verify_timer scope

  // Phase 2: build the runtime program.
  auto program = std::unique_ptr<InstalledProgram>(new InstalledProgram(spec, hooks_));
  program->vm_metrics_ = VmMetrics::ForRegistry(hooks_->telemetry());
  // The per-program slice the guardian's breakers and rollout comparisons
  // read. Keyed by program name, so a canary must be named distinctly.
  {
    TelemetryRegistry& telemetry = hooks_->telemetry();
    const std::string prefix = "rkd.guard.prog." + spec.name;
    program->exec_metrics_.execs = telemetry.GetCounter(prefix + ".execs");
    program->exec_metrics_.exec_errors = telemetry.GetCounter(prefix + ".exec_errors");
    program->exec_metrics_.deadline_errors = telemetry.GetCounter(prefix + ".deadline_errors");
    program->exec_metrics_.budget_errors = telemetry.GetCounter(prefix + ".budget_errors");
    program->exec_metrics_.exec_ns = telemetry.GetHistogram(prefix + ".exec_ns");
  }
  for (const MapSpec& map_spec : spec.maps) {
    RKD_ASSIGN_OR_RETURN(int64_t map_id, program->maps_.Create(map_spec.kind, map_spec.capacity));
    (void)map_id;
  }
  for (uint32_t i = 0; i < spec.model_slots; ++i) {
    program->models_.AddSlot();
  }
  for (const FixedMatrix& tensor : spec.tensors) {
    program->tensors_.Add(tensor);
  }

  for (size_t t = 0; t < spec.tables.size(); ++t) {
    const RmtTableSpec& table_spec = spec.tables[t];
    RmtTable table(table_spec.name, table_spec.match_kind, table_spec.max_entries);
    // Export "rkd.table.<name>.*" before the move: the bound metric pointers
    // live in the registry and survive the table's relocation.
    table.BindTelemetry(&hooks_->telemetry());
    // Bulk load: one published index snapshot for all initial entries.
    RKD_RETURN_IF_ERROR(table.InsertBatch(table_spec.initial_entries));
    auto attached = std::make_unique<AttachedTable>(std::move(table), planned[t].hook,
                                                    planned[t].kind, tier);

    std::vector<CompiledProgram> compiled;
    compiled.reserve(table_spec.actions.size());
    for (const BytecodeProgram& action : table_spec.actions) {
      RKD_ASSIGN_OR_RETURN(CompiledProgram cp, CompiledProgram::Compile(action));
      compiled.push_back(std::move(cp));
    }
    attached->set_actions(table_spec.actions, std::move(compiled), table_spec.default_action);

    // Helper environment: program-owned services plus this hook's bindings.
    auto services = std::make_unique<HelperServices>();
    const SubsystemBindings& bindings = hooks_->BindingsOf(planned[t].hook);
    services->now = bindings.now;
    services->ctxt = &program->ctxt_;
    services->sample_ring = &program->sample_ring_;
    services->rate_limiter = &program->rate_limiter_;
    services->dp_noise = &program->dp_noise_;
    services->prefetch_emit = bindings.prefetch_emit;
    services->priority_hint = bindings.priority_hint;
    services->prediction_log = &program->prediction_log_;

    VmEnv env;
    env.ctxt = &program->ctxt_;
    env.maps = &program->maps_;
    env.models = &program->models_;
    env.tensors = &program->tensors_;
    env.helpers = services.get();
    env.metrics = &program->vm_metrics_;
    attached->set_env(env, services.get());
    attached->set_exec_metrics(&program->exec_metrics_);
    attached->set_opcode_profile(&program->opcode_profile_obj_);
    attached->set_tier3_stats(&program->tier3_stats_);
    // Overload-governor wiring: the ladder rung cell and the declared
    // fire-time budget (measured against the program's injectable clock).
    attached->set_governor_cell(program->governor_cell());
    attached->set_fire_budget(spec.fire_deadline_ns, program->fire_clock());

    program->services_.push_back(std::move(services));
    program->tables_.push_back(std::move(attached));
  }

  // Phase 3: tail-call wiring. Table id i resolves to table i's default
  // action ("models can also be cascaded using TAIL_CALL").
  InstalledProgram* raw = program.get();
  for (const auto& attached : raw->tables_) {
    attached->set_tail_resolver(
        [raw](int64_t table_id) -> const CompiledProgram* {
          if (table_id < 0 || static_cast<size_t>(table_id) >= raw->tables_.size()) {
            return nullptr;
          }
          return raw->tables_[static_cast<size_t>(table_id)]->compiled_default();
        },
        [raw](int64_t table_id) -> const BytecodeProgram* {
          if (table_id < 0 || static_cast<size_t>(table_id) >= raw->tables_.size()) {
            return nullptr;
          }
          return raw->tables_[static_cast<size_t>(table_id)]->default_action_program();
        });
  }

  // Phase 4: attach to the datapath (the point of no return).
  for (const auto& attached : raw->tables_) {
    RKD_RETURN_IF_ERROR(hooks_->Attach(attached->hook(), attached.get()));
  }
  raw->attached_ = true;

  Slot slot;
  slot.program = std::move(program);
  slots_.push_back(std::move(slot));
  return static_cast<ProgramHandle>(slots_.size()) - 1;
}

ControlPlane::Slot* ControlPlane::FindSlot(ProgramHandle handle) {
  if (handle < 0 || static_cast<size_t>(handle) >= slots_.size()) {
    return nullptr;
  }
  Slot& slot = slots_[static_cast<size_t>(handle)];
  return slot.program != nullptr ? &slot : nullptr;
}

const ControlPlane::Slot* ControlPlane::FindSlot(ProgramHandle handle) const {
  if (handle < 0 || static_cast<size_t>(handle) >= slots_.size()) {
    return nullptr;
  }
  const Slot& slot = slots_[static_cast<size_t>(handle)];
  return slot.program != nullptr ? &slot : nullptr;
}

Status ControlPlane::Uninstall(ProgramHandle handle) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(handle));
  }
  // A manual uninstall of a rollout arm abandons the rollout: the surviving
  // arm must stop filtering fires against the now-dead partner.
  for (Rollout& rollout : rollouts_) {
    if (!rollout.active || (rollout.incumbent != handle && rollout.canary != handle)) {
      continue;
    }
    rollout.active = false;
    ReleaseRolloutForceTrace(rollout);
    ClearCanaryRole(rollout.incumbent == handle ? rollout.canary : rollout.incumbent);
  }
  slot->program.reset();  // destructor detaches from hooks
  slot->suspended = false;
  slot->adaptation_enabled = false;
  metrics_.uninstalls->Increment();
  return OkStatus();
}

Status ControlPlane::Suspend(ProgramHandle handle) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(handle));
  }
  if (slot->suspended) {
    return FailedPreconditionError("program is already suspended");
  }
  for (const auto& table : slot->program->tables()) {
    (void)hooks_->Detach(table->hook(), table.get());
  }
  slot->program->attached_ = false;
  slot->suspended = true;
  metrics_.suspends->Increment();
  return OkStatus();
}

Status ControlPlane::Resume(ProgramHandle handle) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(handle));
  }
  if (!slot->suspended) {
    return FailedPreconditionError("program is not suspended");
  }
  for (const auto& table : slot->program->tables()) {
    RKD_RETURN_IF_ERROR(hooks_->Attach(table->hook(), table.get()));
  }
  slot->program->attached_ = true;
  slot->suspended = false;
  metrics_.resumes->Increment();
  return OkStatus();
}

Result<bool> ControlPlane::IsSuspended(ProgramHandle handle) const {
  const Slot* slot = FindSlot(handle);
  if (slot == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(handle));
  }
  return slot->suspended;
}

InstalledProgram* ControlPlane::Get(ProgramHandle handle) {
  Slot* slot = FindSlot(handle);
  return slot == nullptr ? nullptr : slot->program.get();
}

Status ControlPlane::AddEntry(ProgramHandle handle, std::string_view table,
                              const TableEntry& entry) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(handle));
  }
  if (slot->suspended) {
    return FailedPreconditionError("program is suspended; resume before reconfiguring");
  }
  AttachedTable* attached = slot->program->FindTable(table);
  if (attached == nullptr) {
    return NotFoundError("no table named '" + std::string(table) + "'");
  }
  if (entry.action_index >= 0 &&
      static_cast<size_t>(entry.action_index) >= attached->action_count()) {
    return InvalidArgumentError("entry action index out of range");
  }
  return attached->table().Insert(entry);
}

Status ControlPlane::RemoveEntry(ProgramHandle handle, std::string_view table, uint64_t key,
                                 uint64_t key2) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(handle));
  }
  if (slot->suspended) {
    return FailedPreconditionError("program is suspended; resume before reconfiguring");
  }
  AttachedTable* attached = slot->program->FindTable(table);
  if (attached == nullptr) {
    return NotFoundError("no table named '" + std::string(table) + "'");
  }
  return attached->table().Remove(key, key2);
}

Status ControlPlane::ModifyEntry(ProgramHandle handle, std::string_view table, uint64_t key,
                                 uint64_t key2, int32_t action_index, int64_t model_slot) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(handle));
  }
  if (slot->suspended) {
    return FailedPreconditionError("program is suspended; resume before reconfiguring");
  }
  AttachedTable* attached = slot->program->FindTable(table);
  if (attached == nullptr) {
    return NotFoundError("no table named '" + std::string(table) + "'");
  }
  if (action_index >= 0 && static_cast<size_t>(action_index) >= attached->action_count()) {
    return InvalidArgumentError("entry action index out of range");
  }
  return attached->table().Modify(key, key2, action_index, model_slot);
}

Status ControlPlane::InstallModel(ProgramHandle handle, int64_t slot_id, ModelPtr model) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(handle));
  }
  if (slot->suspended) {
    metrics_.model_swap_errors->Increment();
    return FailedPreconditionError("program is suspended; resume before swapping models");
  }
  if (model != nullptr) {
    // Cost-model re-check at swap time: the tightest budget among the hooks
    // this program's tables attach to bounds any model it may host.
    uint64_t tightest = ~0ull;
    for (const auto& table : slot->program->tables()) {
      const HookBudget budget =
          verifier_config_.budget_override != nullptr ? *verifier_config_.budget_override
                                                      : BudgetForHook(table->hook_kind());
      tightest = std::min(tightest, budget.max_work_units);
    }
    const uint64_t work = model->Cost().WorkUnits();
    if (work > tightest) {
      metrics_.model_swap_errors->Increment();
      return VerificationFailedError(
          "model work units " + std::to_string(work) + " exceed the tightest hook budget " +
          std::to_string(tightest) + " (distill or compress the model first)");
    }
  }
  Status status = slot->program->models().Install(slot_id, std::move(model));
  (status.ok() ? metrics_.model_swaps : metrics_.model_swap_errors)->Increment();
  return status;
}

Status ControlPlane::WriteMap(ProgramHandle handle, int64_t map_id, int64_t key, int64_t value) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(handle));
  }
  if (slot->suspended) {
    return FailedPreconditionError("program is suspended; resume before writing maps");
  }
  RmtMap* map = slot->program->maps().Get(map_id);
  if (map == nullptr) {
    return NotFoundError("map " + std::to_string(map_id) + " does not exist");
  }
  const uint64_t breaches_before = slot->program->maps().quota().breaches();
  if (!map->Update(key, value)) {
    // Distinguish quota breaches (kResourceExhausted — the overload
    // governor's signal) from ordinary capacity/key-range rejections.
    if (slot->program->maps().quota().breaches() > breaches_before) {
      return ResourceExhaustedError("map update rejected (program map quota exhausted)");
    }
    return OutOfRangeError("map update rejected (key range or capacity)");
  }
  // Tier-3 deopt signal: every control-plane map write invalidates any
  // specialization that folded map state. Bumped after the update so a fire
  // passing the old guard read only pre-write values (still a consistent
  // pre-write snapshot); the next fire deoptimizes.
  slot->program->maps().BumpWriteVersion();
  return OkStatus();
}

Result<int64_t> ControlPlane::ReadMap(ProgramHandle handle, int64_t map_id, int64_t key) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(handle));
  }
  RmtMap* map = slot->program->maps().Get(map_id);
  if (map == nullptr) {
    return NotFoundError("map " + std::to_string(map_id) + " does not exist");
  }
  return map->Lookup(key).value_or(0);
}

Status ControlPlane::EnableTiering(ProgramHandle handle, const TieringConfig& config) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(handle));
  }
  if (config.hot_execs == 0) {
    return InvalidArgumentError("hot_execs must be positive");
  }
  slot->tiering_enabled = true;
  slot->tiering = config;
  // Close the fire-time map-writer set once (actions are immutable after
  // install): any map some action may update or delete from can never be
  // folded; every other map's only writer is ControlPlane::WriteMap, which
  // bumps the guarded write version.
  std::vector<int64_t> written;
  for (const auto& table : slot->program->tables()) {
    for (const BytecodeProgram& action : table->actions()) {
      for (const Instruction& insn : action.code) {
        if (insn.opcode == Opcode::kMapUpdate || insn.opcode == Opcode::kMapDelete) {
          written.push_back(insn.imm);
        }
      }
    }
  }
  std::sort(written.begin(), written.end());
  written.erase(std::unique(written.begin(), written.end()), written.end());
  slot->fire_written_maps = std::move(written);
  return OkStatus();
}

Result<ControlPlane::TierReport> ControlPlane::TickTiering(ProgramHandle handle) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(handle));
  }
  if (!slot->tiering_enabled) {
    return FailedPreconditionError("tiering not enabled for this program");
  }
  InstalledProgram& prog = *slot->program;
  TierReport report;
  report.hot_execs = slot->tiering.hot_execs;
  report.execs = prog.opcode_profile().total_execs();
  report.governor_level = prog.governor_level();
  // Advisory-scaled promotion: the bottleneck label decides how hot a
  // program must run before tier 3 is worth compiling (see EffectiveHotExecs).
  report.advisory_label = prog.bottleneck().valid ? prog.bottleneck().label
                                                  : BottleneckLabel::kInconclusive;
  report.effective_hot_execs = EffectiveHotExecs(slot->tiering, prog.bottleneck());
  report.tier3_execs = prog.tier3_stats().execs.value();
  for (size_t r = 0; r < report.deopts_by_reason.size(); ++r) {
    report.deopts_by_reason[r] = prog.tier3_stats().deopts[r].value();
    report.tier3_deopts += report.deopts_by_reason[r];
  }

  // Mirror the fire path's sharded tallies into the registry as deltas since
  // the last flush (counters are monotone; the sharded side never resets).
  const auto flush = [](Counter* sink, uint64_t now, uint64_t& flushed) {
    if (now > flushed) {
      sink->Increment(now - flushed);
      flushed = now;
    }
  };
  flush(metrics_.tier3_execs, report.tier3_execs, slot->tier3_execs_flushed);
  flush(metrics_.tier3_deopt_map_write, report.deopts_by_reason[0],
        slot->tier3_deopts_flushed[0]);
  flush(metrics_.tier3_deopt_model_install, report.deopts_by_reason[1],
        slot->tier3_deopts_flushed[1]);
  flush(metrics_.tier3_deopt_table_mutation, report.deopts_by_reason[2],
        slot->tier3_deopts_flushed[2]);

  // Tick is a quiescence point: retired specializations reclaim here too.
  GlobalEpochDomain().TryAdvance();

  // Demote while degraded or suspended: the governor's rung outranks the
  // tier ladder, and a respecialization churn is exactly the control-plane
  // work a degraded program must shed.
  const bool demote = slot->suspended || prog.governor_level() != GovLevel::kFull;
  const bool hot = report.execs >= report.effective_hot_execs;
  uint64_t retires = 0;
  for (const auto& table : prog.tables()) {
    if (table->tier() != ExecTier::kJit) {
      continue;  // no tier 3 above the interpreter: the ladder goes 1→2→3
    }
    for (size_t a = 0; a < table->action_count(); ++a) {
      const SpecializedProgram* live = table->specialized(a);
      if (demote || !hot) {
        if (live != nullptr) {
          table->PublishSpecialized(a, nullptr);
          ++retires;
        }
        continue;
      }
      if (live != nullptr && live->GuardOk()) {
        continue;  // current snapshot still valid
      }
      if (live != nullptr) {
        ++retires;  // stale; the publish below epoch-retires it
      }
      SpecializeContext ctx;
      ctx.maps = &prog.maps();
      ctx.models = &prog.models();
      ctx.tensors = &prog.tensors();
      ctx.fire_written_maps = slot->fire_written_maps;
      ctx.map_write_version = prog.maps().write_version_cell();
      ctx.table_version = table->table().version_cell();
      ctx.fold_map_constants = slot->tiering.fold_map_constants;
      ctx.fold_models = slot->tiering.fold_models;
      ScopedSpan span(&hooks_->telemetry().tracer(), "vm.specialize");
      span.Tag("action", static_cast<int64_t>(a));
      Result<SpecializedProgram> specialized =
          SpecializedProgram::Specialize(table->actions()[a], ctx);
      span.Tag("ok", specialized.ok() ? 1 : 0);
      if (!specialized.ok()) {
        // A program tier 2 admitted always specializes; surfacing the error
        // (instead of silently staying on tier 2) keeps the invariant loud.
        return specialized.status();
      }
      auto* spec = new SpecializedProgram(std::move(*specialized));
      span.Tag("superblocks", static_cast<int64_t>(spec->superblocks()));
      span.Tag("folded", static_cast<int64_t>(spec->folded_lookups() + spec->folded_models()));
      metrics_.tier3_specializations->Increment();
      metrics_.tier3_superblocks->Increment(spec->superblocks());
      metrics_.tier3_folded_lookups->Increment(spec->folded_lookups());
      metrics_.tier3_folded_models->Increment(spec->folded_models());
      table->PublishSpecialized(a, spec);
      ++report.specializations;
    }
  }
  report.retires = retires;
  if (retires > 0) {
    metrics_.tier3_retires->Increment(retires);
  }

  // Aggregate the facts of whatever is live after this tick.
  bool any_jit = false;
  for (const auto& table : prog.tables()) {
    if (table->tier() == ExecTier::kJit) {
      any_jit = true;
    }
    for (size_t a = 0; a < table->action_count(); ++a) {
      const SpecializedProgram* live = table->specialized(a);
      if (live == nullptr) {
        continue;
      }
      ++report.specialized_actions;
      report.superblocks += live->superblocks();
      report.folded_lookups += live->folded_lookups();
      report.burned_lookups += live->burned_lookups();
      report.folded_models += live->folded_models();
      report.tile_kernels += live->tile_kernels();
    }
  }
  report.tier = report.specialized_actions > 0 ? 3 : (any_jit ? 2 : 1);
  metrics_.tier3_actions->Set(static_cast<double>(report.specialized_actions));
  // Tier-transition event (counter-track sample): one record per observed
  // tier change so Perfetto's "rkd.tier.p<handle>" track lines up with the
  // span stream. The first tick seeds the track's baseline value.
  if (slot->last_tier != report.tier) {
    TraceEvent event;
    event.ts_ns = MonotonicNowNs();
    event.source = static_cast<int32_t>(handle);
    event.kind = kTierTransitionEvent;
    event.key = static_cast<uint64_t>(slot->last_tier);
    event.value = report.tier;
    telemetry().trace().Push(event);
    slot->last_tier = report.tier;
  }
  return report;
}

uint64_t ControlPlane::EffectiveHotExecs(const TieringConfig& config,
                                         const BottleneckAdvisory& advisory) {
  if (!config.advisory_promotion || !advisory.valid) {
    return config.hot_execs;
  }
  switch (advisory.label) {
    case BottleneckLabel::kDispatchBound:
    case BottleneckLabel::kMlEvalBound:
      // Specialization attacks exactly these costs (superblocks flatten
      // dispatch, tile kernels + folded weights cut ml.eval): promote first.
      return config.hot_execs;
    case BottleneckLabel::kHelperBound:
    case BottleneckLabel::kDeadlineBound:
      // Helpers run outside the specialized stream and a deadline-bound
      // program is governor territory; tier 3 helps at the margin only.
      return config.hot_execs * 2;
    case BottleneckLabel::kTableBound:
      // The fix is index tuning, not code specialization — deprioritize
      // hard so genuinely specializable programs win the compile budget.
      return config.hot_execs * 4;
    case BottleneckLabel::kInconclusive:
      return config.hot_execs;  // neutral: behave exactly as pre-advisory
  }
  return config.hot_execs;
}

void ControlPlane::StoreAdvisory(Slot& slot, BottleneckAdvisory advisory) {
  const std::string prefix = "rkd.bottleneck." + slot.program->name();
  TelemetryRegistry& telemetry = hooks_->telemetry();
  telemetry.GetGauge(prefix + ".label")
      ->Set(static_cast<double>(static_cast<uint8_t>(advisory.label)));
  telemetry.GetGauge(prefix + ".fires")
      ->Set(static_cast<double>(advisory.evidence.fires));
  telemetry.GetGauge(prefix + ".critical_path_ns")
      ->Set(static_cast<double>(advisory.evidence.critical_path_ns));
  slot.program->set_bottleneck(std::move(advisory));
}

Result<BottleneckAdvisory> ControlPlane::RefreshBottleneck(ProgramHandle handle,
                                                           const AnalyzerConfig& config) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(handle));
  }
  const CriticalPathAnalyzer analyzer(config);
  const BottleneckReport report = analyzer.Analyze(hooks_->telemetry().tracer().Snapshot());

  // This program's slice of the per-hook analysis: the root span labels of
  // every hook its tables attach to (deduplicated — several tables can
  // share one hook).
  std::vector<std::string> labels;
  for (const auto& table : slot->program->tables()) {
    std::string label = "hook." + hooks_->NameOf(table->hook());
    if (std::find(labels.begin(), labels.end(), label) == labels.end()) {
      labels.push_back(std::move(label));
    }
  }
  std::vector<const BottleneckAdvisory*> parts;
  for (const HookBottleneck& hook : report.hooks) {
    if (std::find(labels.begin(), labels.end(), hook.hook) != labels.end()) {
      parts.push_back(&hook.advisory);
    }
  }
  BottleneckAdvisory advisory = MergeAdvisories(parts, config.classifier);
  // An analysis that saw no fires is still a (inconclusive) verdict: the
  // stored advisory reflects the latest refresh, not the last lucky sample.
  advisory.valid = true;
  metrics_.bottleneck_refreshes->Increment();
  StoreAdvisory(*slot, advisory);
  return advisory;
}

Status ControlPlane::SetBottleneckAdvisory(ProgramHandle handle,
                                           const BottleneckAdvisory& advisory) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(handle));
  }
  StoreAdvisory(*slot, advisory);
  return OkStatus();
}

Status ControlPlane::EnableAdaptation(ProgramHandle handle, const AdaptationConfig& config) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(handle));
  }
  if (slot->program->maps().Get(config.config_map) == nullptr) {
    return NotFoundError("adaptation config map does not exist");
  }
  slot->adaptation_enabled = true;
  slot->adaptation = config;
  // Initialize the knob at the aggressive end; adaptation walks it down.
  return WriteMap(handle, config.config_map, config.knob_key, config.max_value);
}

Result<ControlPlane::AdaptationReport> ControlPlane::TickReport(ProgramHandle handle) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(handle));
  }
  if (!slot->adaptation_enabled) {
    return FailedPreconditionError("adaptation not enabled for this program");
  }
  const AdaptationConfig& config = slot->adaptation;
  // Control-plane tick is the quiescence point: try to advance the global
  // epoch so snapshots retired since the last tick get reclaimed even when
  // no writer has hit the opportunistic retire-batch threshold.
  GlobalEpochDomain().TryAdvance();
  PredictionLog& log = slot->program->prediction_log();
  RKD_ASSIGN_OR_RETURN(int64_t knob,
                       ReadMap(handle, config.config_map, config.knob_key));
  AdaptationReport report;
  report.samples = log.total_resolved();
  metrics_.ticks->Increment();
  if (log.total_resolved() >= config.min_samples) {
    const double accuracy = log.accuracy();
    report.accuracy = accuracy;
    const int64_t before = knob;
    if (accuracy < config.low_accuracy) {
      knob = std::max(config.min_value, knob - 1);  // be more conservative
    } else if (accuracy > config.high_accuracy) {
      knob = std::min(config.max_value, knob + 1);  // recover aggressiveness
    }
    log.ResetCounters();
    RKD_RETURN_IF_ERROR(WriteMap(handle, config.config_map, config.knob_key, knob));
    report.direction = knob > before ? 1 : (knob < before ? -1 : 0);
    if (report.direction > 0) {
      metrics_.knob_raised->Increment();
    } else if (report.direction < 0) {
      metrics_.knob_lowered->Increment();
    }
    metrics_.accuracy->Set(accuracy);
  }
  report.knob = knob;
  metrics_.knob->Set(static_cast<double>(knob));
  // Surface the overload governor's view of this program alongside the
  // adaptation verdict, so one tick report answers "how is it doing".
  report.governor_level = slot->program->governor_level();
  report.map_quota_breaches = slot->program->maps().quota().breaches();
  // Tier-ladder state: which tier the next untraced fire will take.
  bool any_jit = false;
  size_t specialized_actions = 0;
  for (const auto& table : slot->program->tables()) {
    if (table->tier() == ExecTier::kJit) {
      any_jit = true;
    }
    specialized_actions += table->specialized_count();
  }
  report.specialized_actions = specialized_actions;
  report.exec_tier = specialized_actions > 0 ? 3 : (any_jit ? 2 : 1);
  report.tier3_execs = slot->program->tier3_stats().execs.value();
  report.tier3_deopts = slot->program->tier3_stats().total_deopts();
  // Mirror the stored bottleneck advisory (set by RefreshBottleneck /
  // SetBottleneckAdvisory); the tick itself never re-analyzes.
  const BottleneckAdvisory& advisory = slot->program->bottleneck();
  if (advisory.valid) {
    report.bottleneck = advisory.label;
    report.bottleneck_fires = advisory.evidence.fires;
    report.bottleneck_critical_path_ns = advisory.evidence.critical_path_ns;
  }
  return report;
}

Result<int64_t> ControlPlane::Tick(ProgramHandle handle) {
  RKD_ASSIGN_OR_RETURN(AdaptationReport report, TickReport(handle));
  return report.knob;
}

namespace {

// Counters can be reset under us (e.g. PredictionLog::ResetCounters from the
// adaptation loop), so window deltas saturate at zero instead of wrapping.
uint64_t SatDelta(uint64_t now, uint64_t base) { return now > base ? now - base : 0; }

}  // namespace

ControlPlane::ArmBaseline ControlPlane::BaselineOf(const InstalledProgram& program) {
  ArmBaseline base;
  const ProgramExecMetrics& metrics = program.exec_metrics();
  base.execs = metrics.execs->value();
  base.errors = metrics.exec_errors->value();
  base.resolved = program.prediction_log().total_resolved();
  base.correct = program.prediction_log().total_correct();
  base.window.Reset(*metrics.exec_ns);
  return base;
}

ControlPlane::ArmSnapshot ControlPlane::SnapshotArm(const InstalledProgram& program,
                                                    const ArmBaseline& base) {
  ArmSnapshot snap;
  snap.name = program.name();
  const ProgramExecMetrics& metrics = program.exec_metrics();
  snap.execs = SatDelta(metrics.execs->value(), base.execs);
  snap.exec_errors = SatDelta(metrics.exec_errors->value(), base.errors);
  snap.error_rate = snap.execs == 0
                        ? 0.0
                        : static_cast<double>(snap.exec_errors) / static_cast<double>(snap.execs);
  snap.p99_ns = base.window.DeltaPercentile(*metrics.exec_ns, 99.0);
  const PredictionLog& log = program.prediction_log();
  snap.accuracy_samples = SatDelta(log.total_resolved(), base.resolved);
  const uint64_t correct = SatDelta(log.total_correct(), base.correct);
  snap.accuracy = snap.accuracy_samples == 0
                      ? 0.0
                      : static_cast<double>(correct) / static_cast<double>(snap.accuracy_samples);
  return snap;
}

void ControlPlane::ClearCanaryRole(ProgramHandle handle) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr) {
    return;
  }
  for (const auto& table : slot->program->tables()) {
    table->set_canary(CanaryRole::kSolo, nullptr);
  }
}

void ControlPlane::AdjustForceTraceFor(ProgramHandle handle, int delta) {
  Slot* slot = FindSlot(handle);
  if (slot == nullptr) {
    return;
  }
  for (const auto& table : slot->program->tables()) {
    hooks_->AdjustForceTrace(table->hook(), delta);
  }
}

void ControlPlane::ReleaseRolloutForceTrace(Rollout& rollout) {
  if (!rollout.force_traced) {
    return;
  }
  rollout.force_traced = false;
  // The hold was taken via the canary's tables; either arm's table set names
  // the same hooks, but the canary may already be gone when an arm was
  // uninstalled externally — try both handles.
  if (FindSlot(rollout.canary) != nullptr) {
    AdjustForceTraceFor(rollout.canary, -1);
  } else {
    AdjustForceTraceFor(rollout.incumbent, -1);
  }
}

Result<ControlPlane::RolloutId> ControlPlane::InstallCanary(ProgramHandle incumbent,
                                                            const RmtProgramSpec& candidate,
                                                            const CanaryConfig& config,
                                                            ExecTier tier) {
  Slot* slot = FindSlot(incumbent);
  if (slot == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(incumbent));
  }
  if (slot->suspended) {
    return FailedPreconditionError("cannot canary against a suspended incumbent");
  }
  if (candidate.name == slot->program->name()) {
    return InvalidArgumentError(
        "canary must have a distinct program name (telemetry slices would merge)");
  }
  if (config.canary_permille == 0 || config.canary_permille >= 1000) {
    return InvalidArgumentError("canary_permille must be in [1, 999]");
  }
  for (const Rollout& rollout : rollouts_) {
    if (rollout.active && (rollout.incumbent == incumbent || rollout.canary == incumbent)) {
      return FailedPreconditionError("incumbent already participates in an active rollout");
    }
  }

  RKD_ASSIGN_OR_RETURN(ProgramHandle canary, Install(candidate, tier));

  Rollout rollout;
  rollout.active = true;
  rollout.incumbent = incumbent;
  rollout.canary = canary;
  rollout.config = config;
  rollout.gate = std::make_unique<CanaryGate>();
  rollout.gate->canary_permille.store(config.canary_permille, std::memory_order_relaxed);

  // Re-resolve the incumbent slot: Install() may have reallocated slots_.
  Slot* incumbent_slot = FindSlot(incumbent);
  Slot* canary_slot = FindSlot(canary);
  for (const auto& table : incumbent_slot->program->tables()) {
    table->set_canary(CanaryRole::kIncumbent, rollout.gate.get());
  }
  for (const auto& table : canary_slot->program->tables()) {
    table->set_canary(CanaryRole::kCanary, rollout.gate.get());
  }
  rollout.incumbent_base = BaselineOf(*incumbent_slot->program);
  rollout.canary_base = BaselineOf(*canary_slot->program);

  // Force-trace the rollout's hooks for its whole soak: the fires that will
  // decide promotion always land in the flight recorder, whatever the
  // sampling rate.
  AdjustForceTraceFor(canary, +1);
  rollout.force_traced = true;

  rollouts_.push_back(std::move(rollout));
  metrics_.canary_installs->Increment();
  const RolloutId id = static_cast<RolloutId>(rollouts_.size()) - 1;
  PushCanaryRoutingEvent(id, config.canary_permille);
  return id;
}

void ControlPlane::PushCanaryRoutingEvent(RolloutId id, uint32_t permille) {
  TraceEvent event;
  event.ts_ns = MonotonicNowNs();
  event.source = static_cast<int32_t>(id);
  event.kind = kCanaryRoutingEvent;
  event.value = permille;
  telemetry().trace().Push(event);
}

Result<ControlPlane::ShadowedInstall> ControlPlane::InstallShadowed(
    ProgramHandle incumbent, const RmtProgramSpec& candidate, const CanaryConfig& config,
    ExecTier tier) {
  if (shadow_ == nullptr) {
    return FailedPreconditionError(
        "InstallShadowed requires a ShadowEvaluator (set_shadow_evaluator)");
  }
  if (FindSlot(incumbent) == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(incumbent));
  }
  metrics_.shadow_evals->Increment();
  RKD_ASSIGN_OR_RETURN(ShadowEvaluator::Verdict verdict,
                       shadow_->Evaluate(candidate, tier));
  metrics_.shadow_divergence->Set(1.0 - verdict.decision_match_rate);
  metrics_.shadow_score->Set(verdict.counterfactual_score);

  ShadowedInstall out;
  out.verdict = std::move(verdict);
  if (!out.verdict.admitted) {
    // The candidate never touches the live hooks; the caller gets the
    // verdict (and its archived divergence report) to decide what to retrain.
    metrics_.shadow_rejects->Increment();
    return out;
  }
  metrics_.shadow_admits->Increment();
  RKD_ASSIGN_OR_RETURN(out.rollout, InstallCanary(incumbent, candidate, config, tier));
  return out;
}

Result<ControlPlane::RolloutReport> ControlPlane::EvaluateRollout(RolloutId id) {
  if (id < 0 || static_cast<size_t>(id) >= rollouts_.size()) {
    return NotFoundError("no rollout with id " + std::to_string(id));
  }
  Rollout& rollout = rollouts_[static_cast<size_t>(id)];
  if (!rollout.active) {
    return FailedPreconditionError("rollout " + std::to_string(id) + " already resolved");
  }
  Slot* incumbent_slot = FindSlot(rollout.incumbent);
  Slot* canary_slot = FindSlot(rollout.canary);
  if (incumbent_slot == nullptr || canary_slot == nullptr) {
    rollout.active = false;
    return FailedPreconditionError("a rollout arm was uninstalled externally");
  }

  RolloutReport report;
  report.id = id;
  report.incumbent_handle = rollout.incumbent;
  report.canary_handle = rollout.canary;
  report.incumbent = SnapshotArm(*incumbent_slot->program, rollout.incumbent_base);
  report.canary = SnapshotArm(*canary_slot->program, rollout.canary_base);

  const CanaryConfig& config = rollout.config;
  if (report.incumbent.execs < config.soak_min_execs ||
      report.canary.execs < config.soak_min_execs) {
    report.decision = RolloutReport::Decision::kSoaking;
    return report;
  }

  // The canary survives only if it breaches no bound. Checks are ordered
  // most-severe-first so `reason` names the worst problem.
  std::string reason;
  if (report.canary.error_rate > config.max_error_rate) {
    reason = "canary error rate " + std::to_string(report.canary.error_rate) +
             " exceeds bound " + std::to_string(config.max_error_rate);
  } else if (config.max_latency_ratio > 0.0 && report.incumbent.p99_ns > 0.0 &&
             report.canary.p99_ns > config.max_latency_ratio * report.incumbent.p99_ns) {
    reason = "canary p99 " + std::to_string(report.canary.p99_ns) + "ns exceeds " +
             std::to_string(config.max_latency_ratio) + "x incumbent p99 " +
             std::to_string(report.incumbent.p99_ns) + "ns";
  } else if (config.min_accuracy_samples > 0 &&
             report.incumbent.accuracy_samples >= config.min_accuracy_samples &&
             report.canary.accuracy_samples >= config.min_accuracy_samples &&
             report.canary.accuracy < report.incumbent.accuracy + config.min_accuracy_delta) {
    reason = "canary accuracy " + std::to_string(report.canary.accuracy) +
             " below incumbent " + std::to_string(report.incumbent.accuracy) + " + delta " +
             std::to_string(config.min_accuracy_delta);
  } else if (const uint64_t declared = canary_slot->program->fire_deadline_ns();
             declared > 0 && report.canary.p99_ns > static_cast<double>(declared)) {
    // A program must not be promoted into a fire-time budget its measured
    // canary cost already busts — the governor would demote it immediately.
    reason = "canary p99 " + std::to_string(report.canary.p99_ns) +
             "ns exceeds its declared fire deadline " + std::to_string(declared) + "ns";
  }

  // Resolve: return the surviving arm to solo routing BEFORE uninstalling
  // the loser, so no table ever points at a gate mid-teardown.
  rollout.active = false;
  ReleaseRolloutForceTrace(rollout);
  if (reason.empty()) {
    ClearCanaryRole(rollout.canary);
    RKD_RETURN_IF_ERROR(Uninstall(rollout.incumbent));
    report.decision = RolloutReport::Decision::kPromoted;
    report.reason = "canary within every bound; promoted to full traffic";
    metrics_.promotions->Increment();
    PushCanaryRoutingEvent(id, 1000);
  } else {
    ClearCanaryRole(rollout.incumbent);
    RKD_RETURN_IF_ERROR(Uninstall(rollout.canary));
    report.decision = RolloutReport::Decision::kRolledBack;
    report.reason = reason;
    metrics_.rollbacks->Increment();
    PushCanaryRoutingEvent(id, 0);
  }
  return report;
}

std::vector<ControlPlane::RolloutId> ControlPlane::ActiveRollouts() const {
  std::vector<RolloutId> active;
  for (size_t i = 0; i < rollouts_.size(); ++i) {
    if (rollouts_[i].active) {
      active.push_back(static_cast<RolloutId>(i));
    }
  }
  return active;
}

TelemetryRegistry& ControlPlane::telemetry() const { return hooks_->telemetry(); }

size_t ControlPlane::installed_count() const {
  size_t count = 0;
  for (const Slot& slot : slots_) {
    if (slot.program != nullptr) {
      ++count;
    }
  }
  return count;
}

}  // namespace rkd
