// The policy guardian: runtime containment of misbehaving learned policies.
//
// Admission-time verification (the RMT verifier) bounds what a program CAN
// do; it cannot bound what a program DOES once real traffic, a corrupted
// model, or a failing helper turns it pathological. The guardian closes
// that loop with a per-program circuit breaker driven by the telemetry the
// datapath already records:
//
//     healthy ──(error rate / p99 / accuracy breach)──► tripped
//     tripped ──(backoff expires)──► probation (half-open)
//     probation ──(clean window)──► healthy
//     probation ──(breach)──► tripped (backoff doubles)
//     any trip with trips >= max_trips ──► quarantined (permanent)
//
// Tripping suspends the program through the control plane: tables detach,
// the hook reverts to the stock heuristic — the paper's "degrade to
// stock-kernel behaviour, never to a crash", promoted from per-fire to
// per-program. All timing is in Tick() calls, never wall-clock, so guard
// behaviour is deterministic under test.
//
// Tick() also drives any active canary rollouts to their verdict, making
// the guardian the single periodic entry point a deployment runs.
#ifndef SRC_RMT_GUARDIAN_H_
#define SRC_RMT_GUARDIAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/rmt/control_plane.h"

namespace rkd {

enum class GuardState {
  kHealthy,      // attached, window under evaluation
  kTripped,      // suspended, waiting out the backoff
  kProbation,    // re-attached half-open, on a short leash
  kQuarantined,  // suspended permanently (trip budget exhausted)
};

std::string_view GuardStateName(GuardState state);

// Thresholds for one guarded program. Zero-valued thresholds disable their
// check, so the default config trips on error rate only.
struct BreakerConfig {
  // A breaker decision needs this many executions since the window opened.
  uint64_t window_execs = 64;
  double max_error_rate = 0.1;       // exec errors / execs over the window
  double max_p99_ns = 0.0;           // windowed exec p99 bound (0 = off)
  double min_accuracy = 0.0;         // rolling accuracy floor (0 = off)
  uint64_t min_accuracy_samples = 16;  // resolved predictions before the floor applies
  // Probation evaluates after this many half-open executions.
  uint64_t probation_execs = 16;
  // Backoff, counted in Tick() calls: first trip waits backoff_initial_ticks,
  // each further trip multiplies the wait, clamped to backoff_max_ticks.
  uint64_t backoff_initial_ticks = 1;
  double backoff_multiplier = 2.0;
  uint64_t backoff_max_ticks = 64;
  // Trips before the program is quarantined for good.
  uint32_t max_trips = 3;
};

class PolicyGuardian {
 public:
  explicit PolicyGuardian(ControlPlane* control_plane);

  // Starts guarding `handle`. The program must be installed and not
  // suspended; its breaker window opens at the current telemetry values.
  Status Guard(ControlPlane::ProgramHandle handle, const BreakerConfig& config = {});

  // Stops guarding. A tripped/quarantined program is left suspended — the
  // operator decides whether to Resume() or Uninstall() it.
  Status Unguard(ControlPlane::ProgramHandle handle);

  GuardState StateOf(ControlPlane::ProgramHandle handle) const;
  uint32_t TripsOf(ControlPlane::ProgramHandle handle) const;
  bool IsGuarded(ControlPlane::ProgramHandle handle) const;

  // What one Tick() observed and did for one guarded program.
  struct GuardEvent {
    ControlPlane::ProgramHandle handle = -1;
    std::string program;
    GuardState from = GuardState::kHealthy;
    GuardState to = GuardState::kHealthy;
    std::string reason;  // which threshold drove the transition
  };

  struct TickSummary {
    std::vector<GuardEvent> transitions;           // state changes only
    std::vector<ControlPlane::RolloutReport> rollouts;  // resolved or soaking
  };

  // One deterministic evaluation pass over every guarded program and every
  // active rollout. Call it periodically off the datapath; tests call it
  // directly, interleaved with hook fires, for exact control.
  TickSummary Tick();

  // External breach entry: another containment layer (the overload governor,
  // when a program keeps cycling back down to kShed) reports a sustained
  // resource breach and the breaker trips through the normal machinery —
  // suspend, trip accounting, backoff/quarantine, flight-recorder dump —
  // instead of the program shedding silently forever. Fails if the handle is
  // not guarded or the program is already tripped/quarantined.
  Result<GuardEvent> ReportBreach(ControlPlane::ProgramHandle handle,
                                  const std::string& reason);

  uint64_t ticks() const { return tick_count_; }

  // Flight-recorder auto-dump: when set, every containment decision — a
  // breaker trip, a quarantine, a canary rollback — snapshots the tracer's
  // span rings into `dir` as a Perfetto trace tagged with the offending
  // program and the breach reason. Empty (the default) disables dumping.
  // Filenames are deterministic (program name + dump ordinal, no wall
  // clock); `dir` must already exist.
  void set_flight_recorder_dir(std::string dir) { flight_recorder_dir_ = std::move(dir); }
  const std::string& flight_recorder_dir() const { return flight_recorder_dir_; }
  // Path of the most recent dump ("" before the first one).
  const std::string& last_flight_dump() const { return last_flight_dump_; }
  uint64_t flight_dumps() const { return flight_dumps_; }

 private:
  struct Guarded {
    ControlPlane::ProgramHandle handle = -1;
    std::string name;
    BreakerConfig config;
    GuardState state = GuardState::kHealthy;
    uint32_t trips = 0;
    uint64_t backoff_remaining = 0;  // ticks left in kTripped
    uint64_t current_backoff = 0;    // last backoff length, for the multiplier
    // Breaker window baselines.
    uint64_t execs0 = 0;
    uint64_t errors0 = 0;
    uint64_t resolved0 = 0;
    uint64_t correct0 = 0;
    HistogramWindow window;
    Gauge* state_gauge = nullptr;  // rkd.guard.state.<name>
    // Whether this guard holds a +1 force-trace for its probation period.
    bool probation_traced = false;
  };

  Guarded* Find(ControlPlane::ProgramHandle handle);
  const Guarded* Find(ControlPlane::ProgramHandle handle) const;
  void OpenWindow(Guarded& guard);
  // Evaluates the breaker thresholds over the current window. Empty string
  // when every threshold holds or the window is still filling.
  std::string Breach(const Guarded& guard, uint64_t needed_execs);
  void TripInto(Guarded& guard, TickSummary& summary, const std::string& reason);
  void SetState(Guarded& guard, GuardState state);
  // Ends a probation hold (probation → healthy or probation → tripped).
  void ReleaseProbationTrace(Guarded& guard);
  // Writes the flight-recorder snapshot for one containment decision.
  void DumpFlightRecorder(const std::string& program, const std::string& reason);

  ControlPlane* control_plane_;  // not owned
  std::vector<Guarded> guarded_;
  uint64_t tick_count_ = 0;
  std::string flight_recorder_dir_;
  std::string last_flight_dump_;
  uint64_t flight_dumps_ = 0;

  // "rkd.guard.*" slice in the control plane's telemetry registry.
  Counter* ticks_ = nullptr;
  Counter* trips_ = nullptr;
  Counter* probations_ = nullptr;
  Counter* recoveries_ = nullptr;
  Counter* quarantines_ = nullptr;
};

}  // namespace rkd

#endif  // SRC_RMT_GUARDIAN_H_
