#include "src/rmt/governor.h"

#include <algorithm>
#include <cctype>

#include "src/base/epoch.h"
#include "src/telemetry/trace_export.h"

namespace rkd {

namespace {

uint64_t SatDelta(uint64_t now, uint64_t base) { return now > base ? now - base : 0; }

GovLevel OneRungDown(GovLevel level) {
  return level == GovLevel::kFull ? GovLevel::kDegraded : GovLevel::kShed;
}

GovLevel OneRungUp(GovLevel level) {
  return level == GovLevel::kShed ? GovLevel::kDegraded : GovLevel::kFull;
}

}  // namespace

OverloadGovernor::OverloadGovernor(ControlPlane* control_plane,
                                   std::function<uint64_t()> clock)
    : control_plane_(control_plane), clock_(std::move(clock)) {
  TelemetryRegistry& telemetry = control_plane_->telemetry();
  ticks_ = telemetry.GetCounter("rkd.gov.ticks");
  demotions_ = telemetry.GetCounter("rkd.gov.demotions");
  promotions_ = telemetry.GetCounter("rkd.gov.promotions");
  breaker_reports_ = telemetry.GetCounter("rkd.gov.breaker_reports");
}

uint64_t OverloadGovernor::Now() const {
  return clock_ ? clock_() : MonotonicNowNs();
}

OverloadGovernor::Governed* OverloadGovernor::Find(ControlPlane::ProgramHandle handle) {
  for (Governed& gov : governed_) {
    if (gov.handle == handle) {
      return &gov;
    }
  }
  return nullptr;
}

const OverloadGovernor::Governed* OverloadGovernor::Find(
    ControlPlane::ProgramHandle handle) const {
  for (const Governed& gov : governed_) {
    if (gov.handle == handle) {
      return &gov;
    }
  }
  return nullptr;
}

Status OverloadGovernor::Govern(ControlPlane::ProgramHandle handle,
                                const GovernorConfig& config) {
  if (Find(handle) != nullptr) {
    return AlreadyExistsError("program handle " + std::to_string(handle) +
                              " is already governed");
  }
  InstalledProgram* program = control_plane_->Get(handle);
  if (program == nullptr) {
    return NotFoundError("no installed program with handle " + std::to_string(handle));
  }
  if (config.window_fires == 0 || config.demote_windows == 0 ||
      config.promote_windows == 0 || config.shed_probe_ticks == 0) {
    return InvalidArgumentError(
        "window_fires, demote_windows, promote_windows and shed_probe_ticks "
        "must be positive");
  }
  // Hand the program our timebase so the VM's deadline polls and the
  // governor's verdicts read the same (possibly fake) clock. Only safe here
  // because governing happens at setup time, before traffic.
  if (clock_) {
    program->set_fire_clock(clock_);
  }
  Governed gov;
  gov.handle = handle;
  gov.name = program->name();
  gov.config = config;
  gov.level_gauge =
      control_plane_->telemetry().GetGauge("rkd.gov.level." + program->name());
  governed_.push_back(std::move(gov));
  Governed& stored = governed_.back();
  OpenWindow(stored);
  program->set_governor_level(GovLevel::kFull);
  stored.level_gauge->Set(static_cast<double>(GovLevel::kFull));
  return OkStatus();
}

Status OverloadGovernor::Ungovern(ControlPlane::ProgramHandle handle) {
  for (size_t i = 0; i < governed_.size(); ++i) {
    if (governed_[i].handle == handle) {
      // Leave the program un-throttled: shedding only makes sense while
      // someone is watching the telemetry to walk it back up.
      if (InstalledProgram* program = control_plane_->Get(handle); program != nullptr) {
        program->set_governor_level(GovLevel::kFull);
      }
      governed_[i].level_gauge->Set(static_cast<double>(GovLevel::kFull));
      governed_.erase(governed_.begin() + static_cast<ptrdiff_t>(i));
      return OkStatus();
    }
  }
  return NotFoundError("program handle " + std::to_string(handle) + " is not governed");
}

GovLevel OverloadGovernor::LevelOf(ControlPlane::ProgramHandle handle) const {
  const Governed* gov = Find(handle);
  return gov != nullptr ? gov->level : GovLevel::kFull;
}

bool OverloadGovernor::IsGoverned(ControlPlane::ProgramHandle handle) const {
  return Find(handle) != nullptr;
}

void OverloadGovernor::OpenWindow(Governed& gov) {
  InstalledProgram* program = control_plane_->Get(gov.handle);
  if (program == nullptr) {
    return;
  }
  const ProgramExecMetrics& metrics = program->exec_metrics();
  gov.execs0 = metrics.execs->value();
  gov.deadline0 = metrics.deadline_errors->value();
  gov.quota0 = program->maps().quota().breaches();
  gov.window.Reset(*metrics.exec_ns);
}

std::string OverloadGovernor::Breach(const Governed& gov, uint64_t execs,
                                     uint64_t deadline_errs,
                                     uint64_t quota_breaches) const {
  const GovernorConfig& config = gov.config;
  if (quota_breaches > config.max_quota_breaches) {
    return "map quota breached " + std::to_string(quota_breaches) +
           " times this window (tolerated " + std::to_string(config.max_quota_breaches) +
           ")";
  }
  if (execs == 0) {
    return "";  // nothing executed: only the resource bound above can breach
  }
  const double deadline_rate =
      static_cast<double>(deadline_errs) / static_cast<double>(execs);
  if (deadline_rate > config.max_deadline_rate) {
    return "deadline overrun rate " + std::to_string(deadline_rate) + " over " +
           std::to_string(execs) + " execs exceeds " +
           std::to_string(config.max_deadline_rate);
  }
  if (config.max_p99_ns > 0.0) {
    const InstalledProgram* program = control_plane_->Get(gov.handle);
    if (program != nullptr) {
      const double p99 =
          gov.window.DeltaPercentile(*program->exec_metrics().exec_ns, 99.0);
      if (p99 > config.max_p99_ns) {
        return "exec p99 " + std::to_string(p99) + "ns exceeds budget " +
               std::to_string(config.max_p99_ns) + "ns";
      }
    }
  }
  return "";
}

void OverloadGovernor::DumpFlightRecorder(const std::string& program,
                                          const std::string& reason) {
  if (flight_recorder_dir_.empty()) {
    return;
  }
  const std::vector<SpanRecord> spans = control_plane_->telemetry().tracer().Snapshot();
  TraceExportOptions options;
  options.program = program;
  options.reason = reason;
  std::string safe_name = program;
  for (char& c : safe_name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  const std::string path = flight_recorder_dir_ + "/gov_" + safe_name + "_" +
                           std::to_string(flight_dumps_ + 1) + ".json";
  if (WriteTextFile(path, ExportPerfettoTrace(spans, options))) {
    ++flight_dumps_;
    last_flight_dump_ = path;
  }
}

void OverloadGovernor::Transition(Governed& gov, GovLevel to, const std::string& reason,
                                  TickSummary& summary) {
  LadderEvent event;
  event.handle = gov.handle;
  event.program = gov.name;
  event.from = gov.level;
  event.to = to;
  event.reason = reason;

  const bool demotion = static_cast<uint8_t>(to) > static_cast<uint8_t>(gov.level);
  gov.level = to;
  if (InstalledProgram* program = control_plane_->Get(gov.handle); program != nullptr) {
    program->set_governor_level(to);
  }
  gov.level_gauge->Set(static_cast<double>(to));
  (demotion ? demotions_ : promotions_)->Increment();

  // Ladder transitions are rare and diagnostic gold: record each one in the
  // trace ring (source = program handle, key/value = from/to rung) and, when
  // a dump directory is armed, snapshot the flight recorder like the
  // guardian does for containment decisions.
  TraceEvent trace;
  trace.ts_ns = Now();
  trace.source = static_cast<int32_t>(gov.handle);
  trace.kind = kGovTransitionEvent;
  trace.key = static_cast<uint64_t>(event.from);
  trace.value = static_cast<int64_t>(to);
  control_plane_->telemetry().trace().Push(trace);
  DumpFlightRecorder(gov.name, event.reason);

  // Every transition closes the verdict window and the hysteresis streaks:
  // the new rung is judged only on what happens after it.
  gov.breached_windows = 0;
  gov.clean_windows = 0;
  OpenWindow(gov);

  if (to == GovLevel::kShed) {
    gov.ticks_at_shed = 0;
    ++gov.shed_entries;
    const GovernorConfig& config = gov.config;
    if (config.shed_cycles_to_breaker > 0 &&
        gov.shed_entries >= config.shed_cycles_to_breaker && guardian_ != nullptr) {
      // The program keeps falling off the bottom of the ladder: shedding is
      // supposed to be a temporary shelter, not a permanent state. Hand the
      // breach to the guardian's breaker, which suspends with backoff and
      // eventually quarantines — visible containment instead of silent loss.
      const auto reported = guardian_->ReportBreach(
          gov.handle, "overload governor shed " + std::to_string(gov.shed_entries) +
                          " times; sustained resource breach (" + reason + ")");
      if (reported.ok()) {
        ++summary.breaker_reports;
        breaker_reports_->Increment();
        gov.shed_entries = 0;
      }
    }
  } else if (to == GovLevel::kFull) {
    gov.shed_entries = 0;  // full recovery resets the escalation count
  }
  summary.transitions.push_back(std::move(event));
}

OverloadGovernor::TickSummary OverloadGovernor::Tick() {
  TickSummary summary;
  ++tick_count_;
  ticks_->Increment();
  GlobalEpochDomain().TryAdvance();
  ScopedSpan tick_span(&control_plane_->telemetry().tracer(), "governor.tick");
  tick_span.Tag("tick", static_cast<int64_t>(tick_count_));
  tick_span.Tag("governed", static_cast<int64_t>(governed_.size()));

  for (Governed& gov : governed_) {
    InstalledProgram* program = control_plane_->Get(gov.handle);
    if (program == nullptr) {
      continue;  // uninstalled behind our back; nothing left to govern
    }
    if (gov.level == GovLevel::kShed) {
      // Shedding runs nothing, so exec windows can never fill. Probe back up
      // after a fixed number of ticks; the degraded rung then has to earn
      // kFull through clean windows (or fall straight back down).
      if (++gov.ticks_at_shed >= gov.config.shed_probe_ticks) {
        Transition(gov, GovLevel::kDegraded,
                   "shed probe after " + std::to_string(gov.ticks_at_shed) +
                       " ticks; re-admitting heuristic fallback",
                   summary);
      }
      continue;
    }

    const ProgramExecMetrics& metrics = program->exec_metrics();
    const uint64_t execs = SatDelta(metrics.execs->value(), gov.execs0);
    const uint64_t deadline_errs =
        SatDelta(metrics.deadline_errors->value(), gov.deadline0);
    const uint64_t quota_breaches =
        SatDelta(program->maps().quota().breaches(), gov.quota0);

    // A verdict closes when the exec window fills, when resource breaches
    // exceed the budget outright (map pressure needs no execution — the
    // control plane keeps writing while execution degrades), or — on the
    // degraded rung only — every tick, because the learned policy is not
    // executing and clean time is the only promotion evidence there is.
    std::string reason;
    bool verdict = false;
    if (execs >= gov.config.window_fires) {
      reason = Breach(gov, execs, deadline_errs, quota_breaches);
      verdict = true;
    } else if (quota_breaches > gov.config.max_quota_breaches) {
      reason = Breach(gov, execs, deadline_errs, quota_breaches);
      verdict = true;
    } else if (gov.level == GovLevel::kDegraded && execs == 0) {
      verdict = true;  // clean degraded tick
    }
    if (!verdict) {
      continue;  // window still filling; no decision this tick
    }
    if (!reason.empty()) {
      gov.clean_windows = 0;
      if (++gov.breached_windows >= gov.config.demote_windows) {
        Transition(gov, OneRungDown(gov.level), reason, summary);
      } else {
        OpenWindow(gov);  // breach noted; judge the next window fresh
      }
    } else {
      gov.breached_windows = 0;
      ++gov.clean_windows;
      if (gov.level != GovLevel::kFull && gov.clean_windows >= gov.config.promote_windows) {
        Transition(gov, OneRungUp(gov.level),
                   std::to_string(gov.clean_windows) + " clean windows; promoting",
                   summary);
      } else {
        OpenWindow(gov);  // slide: always judge recent behaviour
      }
    }
  }
  tick_span.Tag("transitions", static_cast<int64_t>(summary.transitions.size()));
  return summary;
}

}  // namespace rkd
