// Introspection: a human-readable dump of an installed program's state —
// the `bpftool`-style operator view. Tables with entries and hit counters,
// per-action disassembly, model slots with cost-model numbers, map contents
// summaries, rate-limit and privacy-budget standing.
#ifndef SRC_RMT_INTROSPECT_H_
#define SRC_RMT_INTROSPECT_H_

#include <string>

#include "src/rmt/pipeline.h"

namespace rkd {

struct IntrospectOptions {
  bool disassemble_actions = true;
  bool list_entries = true;
  size_t max_entries_listed = 16;
  // Rows in the sampled opcode-profile section (sorted by exec count).
  size_t max_opcodes_listed = 10;
};

// Renders the full state of `program` as text.
std::string DumpProgram(InstalledProgram& program, const IntrospectOptions& options = {});

}  // namespace rkd

#endif  // SRC_RMT_INTROSPECT_H_
