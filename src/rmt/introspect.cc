#include "src/rmt/introspect.h"

#include <algorithm>
#include <sstream>

#include "src/bytecode/disassembler.h"
#include "src/bytecode/isa.h"

namespace rkd {

namespace {

void DumpTable(const AttachedTable& attached, const IntrospectOptions& options,
               std::ostringstream& out) {
  const RmtTable& table = attached.table();
  out << "table '" << table.name() << "' (" << MatchKindName(table.match_kind())
      << " match, hook kind " << HookKindName(attached.hook_kind()) << ", tier "
      << (attached.tier() == ExecTier::kJit ? "jit" : "interpreter") << ")\n";
  out << "  entries " << table.size() << "/" << table.max_entries() << ", hits "
      << table.hits() << ", misses " << table.misses() << ", executions "
      << attached.executions() << "\n";
  // Tier-3 overlay: which actions currently run a specialized stream and
  // what each stream folded. Silent when nothing is specialized.
  if (attached.specialized_count() > 0) {
    out << "  tier-3 specializations:\n";
    for (size_t a = 0; a < attached.action_count(); ++a) {
      const SpecializedProgram* spec = attached.specialized(a);
      if (spec == nullptr) {
        continue;
      }
      out << "    action " << a << " '" << spec->name() << "': " << spec->superblocks()
          << " superblocks, " << spec->folded_lookups() << " folded + "
          << spec->burned_lookups() << " burned lookups, " << spec->folded_models()
          << " folded models, " << spec->tile_kernels() << " tile kernels";
      for (size_t k = 0; k < spec->tile_kernels(); ++k) {
        out << (k == 0 ? " (" : ", ") << DataflowStrategyName(spec->tile_strategy(k));
        if (k + 1 == spec->tile_kernels()) {
          out << ")";
        }
      }
      out << ", pinned map v" << spec->pinned_map_version() << " table v"
          << spec->pinned_table_version() << "\n";
    }
  }
  if (options.list_entries) {
    size_t listed = 0;
    for (const TableEntry& entry : table.entries()) {
      if (listed++ >= options.max_entries_listed) {
        out << "    ... (" << table.size() - options.max_entries_listed << " more)\n";
        break;
      }
      out << "    key=" << entry.key;
      if (table.match_kind() == MatchKind::kLpm) {
        out << "/" << entry.key2;
      } else if (table.match_kind() == MatchKind::kRange) {
        out << ".." << entry.key2;
      } else if (table.match_kind() == MatchKind::kTernary) {
        out << " mask=" << entry.key2 << " prio=" << entry.priority;
      }
      out << " -> action " << entry.action_index;
      if (entry.model_slot >= 0) {
        out << " (model slot " << entry.model_slot << ")";
      }
      out << "\n";
    }
  }
  if (options.disassemble_actions) {
    const BytecodeProgram* action = attached.default_action_program();
    if (action != nullptr) {
      std::istringstream listing(Disassemble(*action));
      std::string line;
      out << "  default action:\n";
      while (std::getline(listing, line)) {
        out << "    " << line << "\n";
      }
    }
  }
}

// The sampled opcode/helper attribution accumulated on traced fires: which
// instructions this program actually spends its datapath budget on.
void DumpOpcodeProfile(const OpcodeProfile& profile, const IntrospectOptions& options,
                       std::ostringstream& out) {
  struct OpRow {
    Opcode op;
    uint64_t count;
    uint64_t ns;
  };
  std::vector<OpRow> rows;
  uint64_t total_count = 0;
  for (size_t i = 0; i < OpcodeProfile::kNumOpcodes; ++i) {
    const uint64_t count = profile.counts[i].load(std::memory_order_relaxed);
    if (count == 0) {
      continue;
    }
    rows.push_back(OpRow{static_cast<Opcode>(i), count,
                         profile.ns[i].load(std::memory_order_relaxed)});
    total_count += count;
  }
  if (rows.empty()) {
    return;  // no traced fire has run; stay quiet rather than print zeros
  }
  std::sort(rows.begin(), rows.end(),
            [](const OpRow& a, const OpRow& b) { return a.count > b.count; });
  out << "opcode profile (sampled, " << total_count << " instructions):\n";
  size_t listed = 0;
  for (const OpRow& row : rows) {
    if (listed++ >= options.max_opcodes_listed) {
      out << "  ... (" << rows.size() - options.max_opcodes_listed << " more opcodes)\n";
      break;
    }
    out << "  " << OpcodeName(row.op) << ": " << row.count << " execs, " << row.ns
        << "ns cumulative\n";
  }
  bool any_helper = false;
  for (size_t i = 0; i < OpcodeProfile::kNumHelpers; ++i) {
    const uint64_t count = profile.helper_counts[i].load(std::memory_order_relaxed);
    if (count == 0) {
      continue;
    }
    if (!any_helper) {
      out << "helper profile (sampled):\n";
      any_helper = true;
    }
    out << "  " << HelperName(static_cast<HelperId>(i)) << ": " << count << " calls\n";
  }
}

}  // namespace

std::string DumpProgram(InstalledProgram& program, const IntrospectOptions& options) {
  std::ostringstream out;
  out << "=== program '" << program.name() << "' ===\n";

  for (const auto& attached : program.tables()) {
    DumpTable(*attached, options, out);
  }

  out << "context store: " << program.context().size() << "/"
      << program.context().max_entries() << " keys\n";

  out << "model slots: " << program.models().size() << "\n";
  for (size_t slot = 0; slot < program.models().size(); ++slot) {
    const ModelPtr model = program.models().Get(static_cast<int64_t>(slot));
    out << "  slot " << slot << ": ";
    if (model == nullptr) {
      out << "(empty)\n";
      continue;
    }
    const ModelCost cost = model->Cost();
    out << model->kind() << ", " << model->num_features() << " features, " << cost.macs
        << " MACs + " << cost.comparisons << " cmps = " << cost.WorkUnits()
        << " work units, " << cost.param_bytes << " bytes\n";
  }

  out << "maps: " << program.maps().size() << "\n";
  for (size_t id = 0; id < program.maps().size(); ++id) {
    const RmtMap* map = program.maps().Get(static_cast<int64_t>(id));
    out << "  map " << id << ": " << MapKindName(map->kind()) << ", " << map->size() << "/"
        << map->capacity() << "\n";
  }

  // Telemetry section: per-hook datapath metrics for every hook this
  // program's tables attach to (views over the hook registry's
  // TelemetryRegistry; see DESIGN.md "Observability").
  out << "hook metrics:\n";
  for (const auto& attached : program.tables()) {
    const HookId hook = attached->hook();
    const HookMetrics metrics = program.hooks().MetricsOf(hook);
    out << "  " << program.hooks().NameOf(hook) << ": fires " << metrics.fires()
        << ", actions " << metrics.actions_run() << ", errors " << metrics.exec_errors();
    const LatencyHistogram& fire_ns = metrics.fire_ns();
    if (fire_ns.count() > 0) {
      out << ", fire latency mean " << static_cast<uint64_t>(fire_ns.mean()) << "ns p99 <= "
          << static_cast<uint64_t>(fire_ns.ApproxPercentile(99)) << "ns";
    }
    out << "\n";
  }

  DumpOpcodeProfile(program.opcode_profile(), options, out);

  // Critical path & bottleneck: the stored trace-derived advisory (label,
  // critical-path time, top-3 slack contributors). Quiet until a refresh has
  // ever run — the neutral default prints nothing, like the tier-3 section.
  if (program.bottleneck().valid) {
    out << "critical path & bottleneck:\n";
    std::istringstream advisory(RenderAdvisory(program.bottleneck(), 3));
    std::string line;
    while (std::getline(advisory, line)) {
      out << "  " << line << "\n";
    }
  }

  // Tier-ladder state: the always-on exec tally that drives promotion and
  // the specialized-fire/deopt split. Quiet until tier 3 has ever engaged.
  const Tier3Stats& tier3 = program.tier3_stats();
  if (tier3.execs.value() > 0 || tier3.total_deopts() > 0) {
    out << "tier-3: " << tier3.execs.value() << " specialized fires, "
        << tier3.total_deopts() << " deopts (";
    for (size_t r = 0; r < tier3.deopts.size(); ++r) {
      out << (r == 0 ? "" : ", ") << DeoptReasonName(static_cast<DeoptReason>(r)) << " "
          << tier3.deopts[r].value();
    }
    out << ")\n";
  }

  out << "monitoring ring: " << program.sample_ring().size() << " pending, "
      << program.sample_ring().dropped() << " dropped\n";
  out << "prediction log: " << program.prediction_log().total_resolved() << " resolved, "
      << "rolling accuracy "
      << static_cast<int>(program.prediction_log().accuracy() * 100 + 0.5) << "%\n";
  out << "privacy budget: " << program.privacy_budget().remaining() << " epsilon remaining ("
      << program.privacy_budget().queries_answered() << " answered, "
      << program.privacy_budget().queries_refused() << " refused)\n";
  return out.str();
}

}  // namespace rkd
