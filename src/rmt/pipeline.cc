#include "src/rmt/pipeline.h"

#include <array>
#include <optional>

#include "src/base/epoch.h"

namespace rkd {

// --- AttachedTable ---

void AttachedTable::set_actions(std::vector<BytecodeProgram> actions,
                                std::vector<CompiledProgram> compiled,
                                int32_t default_action) {
  actions_ = std::move(actions);
  compiled_ = std::move(compiled);
  default_action_ = default_action;
  // One tier-3 slot per action, fixed for the table's lifetime: the fire
  // path indexes this vector concurrently with control-plane publishes, so
  // it must never reallocate.
  specialized_ = std::vector<EpochPtr<const SpecializedProgram>>(actions_.size());
}

void AttachedTable::PublishSpecialized(size_t index, const SpecializedProgram* spec) {
  if (index >= specialized_.size()) {
    delete spec;
    return;
  }
  specialized_[index].Publish(spec, GlobalEpochDomain());
}

const SpecializedProgram* AttachedTable::specialized(size_t index) const {
  if (index >= specialized_.size()) {
    return nullptr;
  }
  EpochGuard guard(GlobalEpochDomain());
  return specialized_[index].Load();
}

size_t AttachedTable::specialized_count() const {
  EpochGuard guard(GlobalEpochDomain());
  size_t live = 0;
  for (const auto& slot : specialized_) {
    if (slot.Load() != nullptr) {
      ++live;
    }
  }
  return live;
}

void AttachedTable::set_env(VmEnv env, HelperServices* services) {
  env_ = std::move(env);
  services_ = services;
}

void AttachedTable::set_tail_resolver(
    CompiledProgram::Resolver resolver,
    std::function<const BytecodeProgram*(int64_t)> interp_resolver) {
  tail_resolver_ = std::move(resolver);
  env_.resolve_table = std::move(interp_resolver);
}

const CompiledProgram* AttachedTable::compiled_default() const {
  if (default_action_ < 0 || static_cast<size_t>(default_action_) >= compiled_.size()) {
    return nullptr;
  }
  return &compiled_[static_cast<size_t>(default_action_)];
}

const BytecodeProgram* AttachedTable::default_action_program() const {
  if (default_action_ < 0 || static_cast<size_t>(default_action_) >= actions_.size()) {
    return nullptr;
  }
  return &actions_[static_cast<size_t>(default_action_)];
}

Result<int64_t> AttachedTable::Execute(uint64_t key, std::span<const int64_t> args,
                                       Tracer* tracer) {
  const TableEntry* entry = [&] {
    ScopedSpan lookup_span(tracer, "table.lookup");
    const TableEntry* matched = table_.Match(key);
    lookup_span.Tag("kind", static_cast<int64_t>(table_.match_kind()));
    lookup_span.Tag("index", static_cast<int64_t>(table_.index_mode()));
    lookup_span.Tag("epoch", static_cast<int64_t>(table_.version()));
    lookup_span.Tag("hit", matched != nullptr ? 1 : 0);
    return matched;
  }();
  const int32_t action_index = entry != nullptr ? entry->action_index : default_action_;
  // A matched entry with action -1 inherits the default action; a miss with
  // no default action is a deliberate no-op.
  const int32_t effective = action_index >= 0 ? action_index : default_action_;
  if (effective < 0 || static_cast<size_t>(effective) >= actions_.size()) {
    return static_cast<int64_t>(kHookFallback);
  }
  executions_.Increment();
  // Always-on exec counter: the tier ladder promotes on execution count, so
  // hotness must accumulate on every fire, not only the traced sample.
  if (opcode_profile_ != nullptr) {
    opcode_profile_->RecordExec();
  }

  // r1 = match key, r2..r5 = hook arguments (truncated to four).
  int64_t call_args[5] = {static_cast<int64_t>(key), 0, 0, 0, 0};
  const size_t extra = args.size() < 4 ? args.size() : 4;
  for (size_t i = 0; i < extra; ++i) {
    call_args[i + 1] = args[i];
  }
  const std::span<const int64_t> arg_span(call_args, 1 + extra);

  // A traced or deadline-armed fire runs through an env copy carrying the
  // tracer (ml.eval child spans), the program's opcode-profile sink, and/or
  // a stack-armed absolute deadline; the plain path keeps the shared env
  // untouched.
  const VmEnv* exec_env = &env_;
  VmEnv local_env;
  FireDeadline deadline;
  if (tracer != nullptr || fire_budget_ns_ > 0) {
    local_env = env_;
    if (tracer != nullptr) {
      local_env.tracer = tracer;
      local_env.profile = opcode_profile_;
    }
    if (fire_budget_ns_ > 0) {
      deadline.now_ns = fire_clock_;
      deadline.deadline_ns = deadline.Now() + fire_budget_ns_;
      local_env.deadline = &deadline;
    }
    exec_env = &local_env;
  }
  ScopedSpan exec_span(tracer, "vm.exec");
  exec_span.Tag("action", effective);
  exec_span.Tag("tier", tier_ == ExecTier::kJit ? 1 : 0);

  const uint64_t start_ns = exec_metrics_ != nullptr ? MonotonicNowNs() : 0;
  Result<int64_t> run = [&]() -> Result<int64_t> {
    if (tier_ != ExecTier::kJit) {
      return Interpreter(*exec_env).Run(actions_[static_cast<size_t>(effective)], arg_span);
    }
    // Tier 3: untraced fires may take the specialized stream. Traced fires
    // stay on tier 2 so sampling keeps observing the real opcode mix. The
    // epoch guard must outlive the whole spec run: it pins the stream (and
    // everything it burned) against a concurrent respecialize/retire.
    if (tracer == nullptr && !specialized_.empty()) {
      EpochGuard guard(GlobalEpochDomain());
      const SpecializedProgram* spec = specialized_[static_cast<size_t>(effective)].Load();
      if (spec != nullptr) {
        DeoptReason why = DeoptReason::kMapWrite;
        if (spec->GuardOk(&why)) {
          if (tier3_stats_ != nullptr) {
            tier3_stats_->execs.Increment();
          }
          return spec->Run(*exec_env, arg_span, nullptr, tail_resolver_);
        }
        if (tier3_stats_ != nullptr) {
          tier3_stats_->deopts[static_cast<size_t>(why)].Increment();
        }
      }
    }
    return compiled_[static_cast<size_t>(effective)].Run(*exec_env, arg_span, nullptr,
                                                         tail_resolver_);
  }();
  exec_span.Tag("err", run.ok() ? 0 : 1);
  if (!run.ok() && run.status().code() == StatusCode::kDeadlineExceeded) {
    // Deadline-overrun marker the bottleneck analyzer counts per fire.
    exec_span.Tag("ddl", 1);
  }
  if (exec_metrics_ != nullptr) {
    exec_metrics_->execs->Increment();
    exec_metrics_->exec_ns->Record(MonotonicNowNs() - start_ns);
    if (!run.ok()) {
      exec_metrics_->exec_errors->Increment();
      // Breach attribution: keep wall-clock overruns, budget exhaustion,
      // and plain faults separable for the guardian and governor.
      if (run.status().code() == StatusCode::kDeadlineExceeded) {
        exec_metrics_->deadline_errors->Increment();
      } else if (run.status().code() == StatusCode::kResourceExhausted) {
        exec_metrics_->budget_errors->Increment();
      }
    }
  }
  return run;
}

void AttachedTable::ExecuteBatch(std::span<const HookEvent> events, uint64_t seq_base,
                                 std::span<int64_t> results, HookBatchStats* stats,
                                 Tracer* tracer) {
  // Canary routing resolved once per batch: a mid-batch permille update
  // applies from the next batch on (Fire re-reads it per event).
  bool route_all = true;
  bool canary_side = false;
  uint32_t permille = 0;
  if (role_ != CanaryRole::kSolo && gate_ != nullptr) {
    route_all = false;
    canary_side = role_ == CanaryRole::kCanary;
    permille = gate_->canary_permille.load(std::memory_order_relaxed);
  }

  // A traced batch gets one "table.lookup" span covering the whole pass over
  // this table (per-event spans would swamp the ring), tagged with the index
  // shape up front and the batch tallies at close.
  ScopedSpan batch_table_span(tracer, "table.lookup");
  batch_table_span.Tag("events", static_cast<int64_t>(events.size()));
  batch_table_span.Tag("kind", static_cast<int64_t>(table_.match_kind()));
  batch_table_span.Tag("index", static_cast<int64_t>(table_.index_mode()));
  batch_table_span.Tag("epoch", static_cast<int64_t>(table_.version()));

  // One env copy per batch with VM telemetry detached: per-run stats are
  // aggregated locally and flushed to the counters in bulk below. A traced
  // batch also carries the tracer (ml.eval child spans) and the program's
  // opcode-profile sink.
  VmEnv batch_env = env_;
  batch_env.metrics = nullptr;
  if (tracer != nullptr) {
    batch_env.tracer = tracer;
    batch_env.profile = opcode_profile_;
  }
  // Deadline-armed batches share one stack deadline, re-armed per event so
  // each event gets the same budget an equivalent single Fire would.
  FireDeadline deadline;
  if (fire_budget_ns_ > 0) {
    deadline.now_ns = fire_clock_;
    batch_env.deadline = &deadline;
  }
  const Interpreter interp(batch_env);
  CompiledProgram::Frame frame;

  // Tier-3 overlay: untraced jit batches may take specialized streams. One
  // epoch guard pins every stream loaded in the loop for the whole batch
  // (the batch caller already holds one; this keeps ExecuteBatch safe when
  // driven directly). Deopt tallies are aggregated locally and flushed once.
  const bool tier3_eligible =
      tier_ == ExecTier::kJit && tracer == nullptr && !specialized_.empty();
  std::optional<EpochGuard> tier3_guard;
  if (tier3_eligible) {
    tier3_guard.emplace(GlobalEpochDomain());
  }
  uint64_t tier3_execs = 0;
  std::array<uint64_t, static_cast<size_t>(DeoptReason::kReasonCount)> tier3_deopts{};

  const bool vm_metrics = env_.metrics != nullptr;
  const bool timed = exec_metrics_ != nullptr || vm_metrics;
  const uint64_t start_ns = timed ? MonotonicNowNs() : 0;

  uint64_t execs = 0;
  uint64_t errors = 0;
  uint64_t deadline_errors = 0;
  uint64_t budget_errors = 0;
  RunStats agg;
  int64_t call_args[5];
  for (size_t i = 0; i < events.size(); ++i) {
    if (!route_all && ((seq_base + i) % 1000 < permille) != canary_side) {
      continue;  // this fire is routed to the other rollout arm
    }
    const HookEvent& event = events[i];
    const TableEntry* entry = table_.Match(event.key);
    const int32_t action_index = entry != nullptr ? entry->action_index : default_action_;
    const int32_t effective = action_index >= 0 ? action_index : default_action_;
    if (effective < 0 || static_cast<size_t>(effective) >= actions_.size()) {
      if (stats != nullptr) {
        ++stats->actions_run;  // Fire counts the deliberate no-op as ok
      }
      continue;
    }
    ++execs;

    call_args[0] = static_cast<int64_t>(event.key);
    const size_t extra = event.num_args < 4 ? event.num_args : 4;
    for (size_t a = 0; a < extra; ++a) {
      call_args[a + 1] = event.args[a];
    }
    const std::span<const int64_t> arg_span(call_args, 1 + extra);

    if (fire_budget_ns_ > 0) {
      deadline.deadline_ns = deadline.Now() + fire_budget_ns_;
    }
    RunStats rs;
    const Result<int64_t> run = [&]() -> Result<int64_t> {
      if (tier_ != ExecTier::kJit) {
        return interp.Run(actions_[static_cast<size_t>(effective)], arg_span, &rs);
      }
      if (tier3_eligible) {
        const SpecializedProgram* spec = specialized_[static_cast<size_t>(effective)].Load();
        if (spec != nullptr) {
          DeoptReason why = DeoptReason::kMapWrite;
          if (spec->GuardOk(&why)) {
            ++tier3_execs;
            return spec->RunInFrame(frame, batch_env, arg_span, &rs, tail_resolver_);
          }
          ++tier3_deopts[static_cast<size_t>(why)];
        }
      }
      return compiled_[static_cast<size_t>(effective)].RunInFrame(frame, batch_env, arg_span,
                                                                  &rs, tail_resolver_);
    }();
    agg.steps += rs.steps;
    agg.tail_calls += rs.tail_calls;
    agg.helper_calls += rs.helper_calls;
    agg.ml_calls += rs.ml_calls;
    if (run.ok()) {
      if (stats != nullptr) {
        ++stats->actions_run;
      }
      if (*run != kHookFallback) {
        results[i] = *run;
      }
    } else {
      ++errors;
      if (run.status().code() == StatusCode::kDeadlineExceeded) {
        ++deadline_errors;
      } else if (run.status().code() == StatusCode::kResourceExhausted) {
        ++budget_errors;
      }
      if (stats != nullptr) {
        ++stats->exec_errors;
      }
    }
  }

  batch_table_span.Tag("execs", static_cast<int64_t>(execs));
  batch_table_span.Tag("errors", static_cast<int64_t>(errors));
  if (execs > 0) {
    executions_.Increment(execs);
    // Always-on exec counter (see Execute): promotion hotness accumulates on
    // every fire, traced or not.
    if (opcode_profile_ != nullptr) {
      opcode_profile_->RecordExec(execs);
    }
  }
  if (tier3_stats_ != nullptr) {
    if (tier3_execs > 0) {
      tier3_stats_->execs.Increment(tier3_execs);
    }
    for (size_t reason = 0; reason < tier3_deopts.size(); ++reason) {
      if (tier3_deopts[reason] > 0) {
        tier3_stats_->deopts[reason].Increment(tier3_deopts[reason]);
      }
    }
  }

  const uint64_t elapsed_ns = timed ? MonotonicNowNs() - start_ns : 0;
  if (exec_metrics_ != nullptr && execs > 0) {
    exec_metrics_->execs->Increment(execs);
    exec_metrics_->exec_ns->RecordBatch(elapsed_ns, execs);
    if (errors > 0) {
      exec_metrics_->exec_errors->Increment(errors);
    }
    if (deadline_errors > 0) {
      exec_metrics_->deadline_errors->Increment(deadline_errors);
    }
    if (budget_errors > 0) {
      exec_metrics_->budget_errors->Increment(budget_errors);
    }
  }
  if (vm_metrics && execs > 0) {
    env_.metrics->invocations->Increment(execs);
    env_.metrics->steps->Increment(agg.steps);
    env_.metrics->helper_calls->Increment(agg.helper_calls);
    env_.metrics->ml_calls->Increment(agg.ml_calls);
    env_.metrics->tail_calls->Increment(agg.tail_calls);
    env_.metrics->run_ns->RecordBatch(elapsed_ns, execs);
  }
}

// --- InstalledProgram ---

InstalledProgram::InstalledProgram(const RmtProgramSpec& spec, HookRegistry* hooks)
    : name_(spec.name),
      hooks_(hooks),
      rate_limiter_(spec.rate_limit_capacity, spec.rate_limit_refill),
      privacy_budget_(spec.privacy_epsilon, spec.epsilon_per_query),
      dp_noise_(&privacy_budget_, spec.dp_sensitivity, spec.seed),
      sample_ring_(4096),
      fire_deadline_ns_(spec.fire_deadline_ns) {
  maps_.SetQuotaBytes(spec.map_bytes_quota);
}

InstalledProgram::~InstalledProgram() {
  if (!attached_) {
    return;
  }
  for (const auto& table : tables_) {
    (void)hooks_->Detach(table->hook(), table.get());
  }
  // Grace period: a fire in flight may still hold an attachment list naming
  // our tables. Wait until every reader pinned before the detaches above has
  // unpinned, so no datapath thread can touch the members destroyed next.
  GlobalEpochDomain().Synchronize();
}

AttachedTable* InstalledProgram::FindTable(std::string_view table_name) {
  for (const auto& table : tables_) {
    if (table->table().name() == table_name) {
      return table.get();
    }
  }
  return nullptr;
}

}  // namespace rkd
