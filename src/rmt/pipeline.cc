#include "src/rmt/pipeline.h"

namespace rkd {

// --- AttachedTable ---

void AttachedTable::set_actions(std::vector<BytecodeProgram> actions,
                                std::vector<CompiledProgram> compiled,
                                int32_t default_action) {
  actions_ = std::move(actions);
  compiled_ = std::move(compiled);
  default_action_ = default_action;
}

void AttachedTable::set_env(VmEnv env, HelperServices* services) {
  env_ = std::move(env);
  services_ = services;
}

void AttachedTable::set_tail_resolver(
    CompiledProgram::Resolver resolver,
    std::function<const BytecodeProgram*(int64_t)> interp_resolver) {
  tail_resolver_ = std::move(resolver);
  env_.resolve_table = std::move(interp_resolver);
}

const CompiledProgram* AttachedTable::compiled_default() const {
  if (default_action_ < 0 || static_cast<size_t>(default_action_) >= compiled_.size()) {
    return nullptr;
  }
  return &compiled_[static_cast<size_t>(default_action_)];
}

const BytecodeProgram* AttachedTable::default_action_program() const {
  if (default_action_ < 0 || static_cast<size_t>(default_action_) >= actions_.size()) {
    return nullptr;
  }
  return &actions_[static_cast<size_t>(default_action_)];
}

Result<int64_t> AttachedTable::Execute(uint64_t key, std::span<const int64_t> args) {
  const TableEntry* entry = table_.Match(key);
  const int32_t action_index = entry != nullptr ? entry->action_index : default_action_;
  // A matched entry with action -1 inherits the default action; a miss with
  // no default action is a deliberate no-op.
  const int32_t effective = action_index >= 0 ? action_index : default_action_;
  if (effective < 0 || static_cast<size_t>(effective) >= actions_.size()) {
    return static_cast<int64_t>(kHookFallback);
  }
  ++executions_;

  // r1 = match key, r2..r5 = hook arguments (truncated to four).
  int64_t call_args[5] = {static_cast<int64_t>(key), 0, 0, 0, 0};
  const size_t extra = args.size() < 4 ? args.size() : 4;
  for (size_t i = 0; i < extra; ++i) {
    call_args[i + 1] = args[i];
  }
  const std::span<const int64_t> arg_span(call_args, 1 + extra);

  const uint64_t start_ns = exec_metrics_ != nullptr ? MonotonicNowNs() : 0;
  Result<int64_t> run =
      tier_ == ExecTier::kJit
          ? compiled_[static_cast<size_t>(effective)].Run(env_, arg_span, nullptr,
                                                          tail_resolver_)
          : Interpreter(env_).Run(actions_[static_cast<size_t>(effective)], arg_span);
  if (exec_metrics_ != nullptr) {
    exec_metrics_->execs->Increment();
    exec_metrics_->exec_ns->Record(MonotonicNowNs() - start_ns);
    if (!run.ok()) {
      exec_metrics_->exec_errors->Increment();
    }
  }
  return run;
}

// --- InstalledProgram ---

InstalledProgram::InstalledProgram(const RmtProgramSpec& spec, HookRegistry* hooks)
    : name_(spec.name),
      hooks_(hooks),
      rate_limiter_(spec.rate_limit_capacity, spec.rate_limit_refill),
      privacy_budget_(spec.privacy_epsilon, spec.epsilon_per_query),
      dp_noise_(&privacy_budget_, spec.dp_sensitivity, spec.seed),
      sample_ring_(4096) {}

InstalledProgram::~InstalledProgram() {
  if (!attached_) {
    return;
  }
  for (const auto& table : tables_) {
    (void)hooks_->Detach(table->hook(), table.get());
  }
}

AttachedTable* InstalledProgram::FindTable(std::string_view table_name) {
  for (const auto& table : tables_) {
    if (table->table().name() == table_name) {
      return table.get();
    }
  }
  return nullptr;
}

}  // namespace rkd
