// The syscall-style front door of Figure 1 (`syscall_rmt()`).
//
// In the paper, RMT programs are "compiled into machine-independent bytecode,
// and installed via a system call". RmtSyscall is that narrow waist: a single
// command-multiplexed entry point over the control plane, mirroring how
// bpf(2) multiplexes its subcommands. Library users can call ControlPlane
// directly; the syscall layer exists so the examples (and any future
// serialized-program loader) exercise the same shape of interface a kernel
// would expose.
#ifndef SRC_RMT_SYSCALL_H_
#define SRC_RMT_SYSCALL_H_

#include <cstdint>
#include <string_view>

#include "src/base/status.h"
#include "src/rmt/control_plane.h"

namespace rkd {

enum class RmtCmd {
  kProgLoad,      // install a program spec
  kProgUnload,    // uninstall
  kEntryAdd,      // add a match/action entry
  kEntryRemove,   // remove an entry
  kEntryModify,   // rebind an entry's action/model
  kModelInstall,  // install/replace a model in a slot
  kMapWrite,      // write a map cell from userspace
  kMapRead,       // read a map cell from userspace
};

// Argument bundle: only the fields a given command reads need to be set.
struct RmtSyscallArgs {
  const RmtProgramSpec* spec = nullptr;  // kProgLoad
  ExecTier tier = ExecTier::kJit;        // kProgLoad
  ControlPlane::ProgramHandle handle = -1;
  std::string_view table;                // entry commands
  TableEntry entry;                      // kEntryAdd / kEntryModify
  uint64_t key = 0;                      // kEntryRemove / map commands
  uint64_t key2 = 0;
  int64_t slot = -1;                     // kModelInstall
  ModelPtr model;                        // kModelInstall
  int64_t map_id = 0;                    // map commands
  int64_t value = 0;                     // kMapWrite
};

// Executes one command against `cp`. The int64 result is the new program
// handle (kProgLoad), the read value (kMapRead), or 0.
Result<int64_t> RmtSyscall(ControlPlane& cp, RmtCmd cmd, const RmtSyscallArgs& args);

}  // namespace rkd

#endif  // SRC_RMT_SYSCALL_H_
