#include "src/rmt/hooks.h"

#include <algorithm>

#include "src/rmt/pipeline.h"

namespace rkd {

Result<HookId> HookRegistry::Register(std::string name, HookKind kind,
                                      SubsystemBindings bindings) {
  for (const Hook& hook : hooks_) {
    if (hook.name == name) {
      return AlreadyExistsError("hook '" + name + "' is already registered");
    }
  }
  Hook hook;
  hook.name = std::move(name);
  hook.kind = kind;
  hook.bindings = std::move(bindings);
  hooks_.push_back(std::move(hook));
  return static_cast<HookId>(hooks_.size()) - 1;
}

Result<HookId> HookRegistry::Lookup(std::string_view name) const {
  for (size_t i = 0; i < hooks_.size(); ++i) {
    if (hooks_[i].name == name) {
      return static_cast<HookId>(i);
    }
  }
  return NotFoundError("hook '" + std::string(name) + "' is not registered");
}

HookKind HookRegistry::KindOf(HookId id) const {
  return Valid(id) ? hooks_[static_cast<size_t>(id)].kind : HookKind::kGeneric;
}

const std::string& HookRegistry::NameOf(HookId id) const {
  static const std::string kUnknown = "<invalid hook>";
  return Valid(id) ? hooks_[static_cast<size_t>(id)].name : kUnknown;
}

const SubsystemBindings& HookRegistry::BindingsOf(HookId id) const {
  static const SubsystemBindings kEmpty;
  return Valid(id) ? hooks_[static_cast<size_t>(id)].bindings : kEmpty;
}

int64_t HookRegistry::Fire(HookId id, uint64_t key, std::span<const int64_t> args) {
  if (!Valid(id)) {
    return kHookFallback;
  }
  Hook& hook = hooks_[static_cast<size_t>(id)];
  ++hook.stats.fires;
  int64_t result = kHookFallback;
  for (AttachedTable* table : hook.tables) {
    Result<int64_t> action = table->Execute(key, args);
    if (action.ok()) {
      ++hook.stats.actions_run;
      if (*action != kHookFallback) {
        result = *action;
      }
    } else {
      // Datapath rule: a faulting action degrades to stock behaviour.
      ++hook.stats.exec_errors;
    }
  }
  return result;
}

Status HookRegistry::Attach(HookId id, AttachedTable* table) {
  if (!Valid(id)) {
    return NotFoundError("cannot attach to invalid hook id");
  }
  hooks_[static_cast<size_t>(id)].tables.push_back(table);
  return OkStatus();
}

Status HookRegistry::Detach(HookId id, AttachedTable* table) {
  if (!Valid(id)) {
    return NotFoundError("cannot detach from invalid hook id");
  }
  auto& tables = hooks_[static_cast<size_t>(id)].tables;
  const auto it = std::find(tables.begin(), tables.end(), table);
  if (it == tables.end()) {
    return NotFoundError("table is not attached to this hook");
  }
  tables.erase(it);
  return OkStatus();
}

const HookRegistry::HookStats& HookRegistry::StatsOf(HookId id) const {
  static const HookStats kEmpty;
  return Valid(id) ? hooks_[static_cast<size_t>(id)].stats : kEmpty;
}

}  // namespace rkd
