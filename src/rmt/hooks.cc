#include "src/rmt/hooks.h"

#include <algorithm>

#include "src/rmt/pipeline.h"

namespace rkd {

std::string_view GovLevelName(GovLevel level) {
  switch (level) {
    case GovLevel::kFull:
      return "full";
    case GovLevel::kDegraded:
      return "degraded";
    case GovLevel::kShed:
      return "shed";
  }
  return "unknown";
}

HookRegistry::HookRegistry()
    : owned_telemetry_(std::make_unique<TelemetryRegistry>()),
      telemetry_(owned_telemetry_.get()) {}

HookRegistry::HookRegistry(TelemetryRegistry* telemetry)
    : telemetry_(telemetry != nullptr ? telemetry : &GlobalTelemetry()) {}

Result<HookId> HookRegistry::Register(std::string name, HookKind kind,
                                      SubsystemBindings bindings) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  for (const std::unique_ptr<Hook>& hook : storage_) {
    if (hook->name == name) {
      return AlreadyExistsError("hook '" + name + "' is already registered");
    }
  }
  auto hook = std::make_unique<Hook>();
  hook->name = std::move(name);
  hook->kind = kind;
  hook->bindings = std::move(bindings);
  const std::string prefix = "rkd.hook." + hook->name;
  hook->fires = telemetry_->GetCounter(prefix + ".fires");
  hook->actions_run = telemetry_->GetCounter(prefix + ".actions_run");
  hook->exec_errors = telemetry_->GetCounter(prefix + ".exec_errors");
  hook->degraded_fires = telemetry_->GetCounter(prefix + ".degraded_fires");
  hook->shed_fires = telemetry_->GetCounter(prefix + ".shed_fires");
  hook->fire_ns = telemetry_->GetHistogram(prefix + ".fire_ns");
  hook->span_label = "hook." + hook->name;
  hook->tables.Publish(new std::vector<AttachedTable*>(), GlobalEpochDomain());
  storage_.push_back(std::move(hook));

  auto* dir = new Directory();
  dir->hooks.reserve(storage_.size());
  for (const std::unique_ptr<Hook>& h : storage_) {
    dir->hooks.push_back(h.get());
  }
  dir_.Publish(dir, GlobalEpochDomain());
  return static_cast<HookId>(storage_.size()) - 1;
}

Result<HookId> HookRegistry::Lookup(std::string_view name) const {
  EpochGuard guard(GlobalEpochDomain());
  const Directory* dir = dir_.Load();
  if (dir != nullptr) {
    for (size_t i = 0; i < dir->hooks.size(); ++i) {
      if (dir->hooks[i]->name == name) {
        return static_cast<HookId>(i);
      }
    }
  }
  return NotFoundError("hook '" + std::string(name) + "' is not registered");
}

HookKind HookRegistry::KindOf(HookId id) const {
  EpochGuard guard(GlobalEpochDomain());
  const Hook* hook = Resolve(id);
  return hook != nullptr ? hook->kind : HookKind::kGeneric;
}

const std::string& HookRegistry::NameOf(HookId id) const {
  static const std::string kUnknown = "<invalid hook>";
  EpochGuard guard(GlobalEpochDomain());
  const Hook* hook = Resolve(id);
  return hook != nullptr ? hook->name : kUnknown;
}

const SubsystemBindings& HookRegistry::BindingsOf(HookId id) const {
  static const SubsystemBindings kEmpty;
  EpochGuard guard(GlobalEpochDomain());
  const Hook* hook = Resolve(id);
  return hook != nullptr ? hook->bindings : kEmpty;
}

size_t HookRegistry::size() const {
  EpochGuard guard(GlobalEpochDomain());
  const Directory* dir = dir_.Load();
  return dir == nullptr ? 0 : dir->hooks.size();
}

int64_t HookRegistry::Fire(HookId id, uint64_t key, std::span<const int64_t> args) {
  // One pin covers the whole fire: the directory, the hook, its attachment
  // list, and every table index snapshot loaded during matching stay alive
  // until the guard drops.
  EpochGuard guard(GlobalEpochDomain());
  const Hook* hook_ptr = Resolve(id);
  if (hook_ptr == nullptr) {
    return kHookFallback;
  }
  const Hook& hook = *hook_ptr;
  // The pre-increment fire count doubles as the deterministic sequence
  // number canary routing keys on (see AttachedTable::ShouldRun) and as the
  // sampling key for causal tracing: same fire stream, same traced set.
  const uint64_t seq = hook.fires->FetchIncrement();
  Tracer& t = telemetry_->tracer();
  Tracer* const tracer =
      hook.force_trace.load(std::memory_order_relaxed) != 0 || t.ShouldSample(seq)
          ? &t
          : nullptr;
  ScopedSpan fire_span(tracer, hook.span_label.c_str());
  fire_span.Tag("hook", id);
  fire_span.Tag("seq", static_cast<int64_t>(seq));
  fire_span.Tag("key", static_cast<int64_t>(key));
  const uint64_t start_ns = MonotonicNowNs();
  int64_t result = kHookFallback;
  GovLevel worst_level = GovLevel::kFull;
  const std::vector<AttachedTable*>* tables = hook.tables.Load();
  for (AttachedTable* table : *tables) {
    if (!table->ShouldRun(seq)) {
      continue;  // this fire is routed to the other rollout arm
    }
    // Governor admission: one relaxed load of the program's ladder rung.
    // Anything below kFull bypasses the learned policy entirely.
    const GovLevel level = table->governor_level();
    if (level > worst_level) {
      worst_level = level;
    }
    if (level != GovLevel::kFull) {
      if (level == GovLevel::kDegraded) {
        const FallbackOracle* fallback = hook.fallback.Load();
        if (fallback != nullptr && *fallback) {
          const int64_t answer = (*fallback)(key, args);
          hook.degraded_fires->Increment();
          if (answer != kHookFallback) {
            result = answer;
          }
          continue;
        }
      }
      // kShed, or kDegraded with no oracle registered: stock behaviour.
      hook.shed_fires->Increment();
      continue;
    }
    Result<int64_t> action = table->Execute(key, args, tracer);
    if (action.ok()) {
      hook.actions_run->Increment();
      if (*action != kHookFallback) {
        result = *action;
      }
    } else {
      // Datapath rule: a faulting action degrades to stock behaviour.
      hook.exec_errors->Increment();
    }
  }
  const uint64_t elapsed_ns = MonotonicNowNs() - start_ns;
  hook.fire_ns->Record(elapsed_ns);
  if (worst_level != GovLevel::kFull) {
    // Degraded-admission marker: the bottleneck analyzer counts fires that
    // ran below kFull toward deadline/governor pressure.
    fire_span.Tag("gov", static_cast<int64_t>(worst_level));
  }
  fire_span.Tag("result", result);
  if (HookEventSink* sink = event_sink_.load(std::memory_order_acquire); sink != nullptr) {
    sink->OnFire(id, key, args, result);
  }

  TraceEvent event;
  event.ts_ns = start_ns;
  event.source = id;
  event.kind = kHookFireEvent;
  event.key = key;
  event.value = result;
  event.duration_ns = elapsed_ns > 0xffffffffull ? 0xffffffffu
                                                 : static_cast<uint32_t>(elapsed_ns);
  telemetry_->trace().Push(event);
  return result;
}

void HookRegistry::FireBatch(HookId id, std::span<const HookEvent> events,
                             std::span<int64_t> results) {
  const size_t n = events.size();
  for (size_t i = 0; i < n && i < results.size(); ++i) {
    results[i] = kHookFallback;
  }
  EpochGuard guard(GlobalEpochDomain());
  const Hook* hook_ptr = Resolve(id);
  if (hook_ptr == nullptr || n == 0 || results.size() < n) {
    return;
  }
  const Hook& hook = *hook_ptr;
  // Reserve a dense run of fire sequence numbers: event i is fire
  // seq_base + i, so canary routing decides each event exactly as the
  // equivalent single Fire would.
  const uint64_t seq_base = hook.fires->FetchIncrement(n);
  // The batch is traced when forced or when any of its dense sequence
  // numbers would sample — identical to the fires-traced set N single Fire
  // calls would produce.
  Tracer& t = telemetry_->tracer();
  Tracer* tracer = nullptr;
  if (hook.force_trace.load(std::memory_order_relaxed) != 0) {
    tracer = &t;
  } else if (const uint32_t every = t.sample_every(); every != 0) {
    const uint64_t to_next = (every - seq_base % every) % every;
    if (to_next < n) {
      tracer = &t;
    }
  }
  ScopedSpan batch_span(tracer, hook.span_label.c_str());
  batch_span.Tag("hook", id);
  batch_span.Tag("seq", static_cast<int64_t>(seq_base));
  batch_span.Tag("batch", static_cast<int64_t>(n));
  const uint64_t start_ns = MonotonicNowNs();
  HookBatchStats stats;
  const std::vector<AttachedTable*>* tables = hook.tables.Load();
  for (AttachedTable* table : *tables) {
    // Governor admission, checked once per table pass (the rung cannot
    // change mid-batch: demotion publishes for future fires only).
    const GovLevel level = table->governor_level();
    if (level != GovLevel::kFull) {
      if (level == GovLevel::kDegraded) {
        const FallbackOracle* fallback = hook.fallback.Load();
        if (fallback != nullptr && *fallback) {
          for (size_t i = 0; i < n; ++i) {
            const int64_t answer =
                (*fallback)(events[i].key, std::span<const int64_t>(events[i].args.data(),
                                                                    events[i].num_args));
            if (answer != kHookFallback) {
              results[i] = answer;
            }
          }
          hook.degraded_fires->Increment(n);
          continue;
        }
      }
      hook.shed_fires->Increment(n);
      continue;
    }
    table->ExecuteBatch(events, seq_base, results, &stats, tracer);
  }
  if (stats.actions_run > 0) {
    hook.actions_run->Increment(stats.actions_run);
  }
  if (stats.exec_errors > 0) {
    hook.exec_errors->Increment(stats.exec_errors);
  }
  const uint64_t elapsed_ns = MonotonicNowNs() - start_ns;
  hook.fire_ns->RecordBatch(elapsed_ns, n);
  if (HookEventSink* sink = event_sink_.load(std::memory_order_acquire); sink != nullptr) {
    // Per-event callbacks so the sink sees the same ordered stream N single
    // Fire calls would have produced.
    for (size_t i = 0; i < n; ++i) {
      sink->OnFire(id, events[i].key,
                   std::span<const int64_t>(events[i].args.data(), events[i].num_args),
                   results[i]);
    }
  }

  // One trace record summarises the batch (events would flood the ring).
  TraceEvent event;
  event.ts_ns = start_ns;
  event.source = id;
  event.kind = kHookBatchEvent;
  event.key = n;
  event.value = results[n - 1];
  event.duration_ns = elapsed_ns > 0xffffffffull ? 0xffffffffu
                                                 : static_cast<uint32_t>(elapsed_ns);
  telemetry_->trace().Push(event);
}

Status HookRegistry::Attach(HookId id, AttachedTable* table) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (id < 0 || static_cast<size_t>(id) >= storage_.size()) {
    return NotFoundError("cannot attach to invalid hook id");
  }
  Hook& hook = *storage_[static_cast<size_t>(id)];
  // Copy-on-write: the live list is immutable, so build the successor and
  // publish it; fires in flight finish against the list they loaded.
  auto* next = new std::vector<AttachedTable*>(*hook.tables.Load());
  next->push_back(table);
  hook.tables.Publish(next, GlobalEpochDomain());
  return OkStatus();
}

Status HookRegistry::Detach(HookId id, AttachedTable* table) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (id < 0 || static_cast<size_t>(id) >= storage_.size()) {
    return NotFoundError("cannot detach from invalid hook id");
  }
  Hook& hook = *storage_[static_cast<size_t>(id)];
  const std::vector<AttachedTable*>* current = hook.tables.Load();
  const auto it = std::find(current->begin(), current->end(), table);
  if (it == current->end()) {
    return NotFoundError("table is not attached to this hook");
  }
  auto* next = new std::vector<AttachedTable*>(*current);
  next->erase(next->begin() + (it - current->begin()));
  hook.tables.Publish(next, GlobalEpochDomain());
  return OkStatus();
}

Status HookRegistry::SetFallbackOracle(HookId id, FallbackOracle oracle) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (id < 0 || static_cast<size_t>(id) >= storage_.size()) {
    return NotFoundError("cannot set fallback oracle on invalid hook id");
  }
  Hook& hook = *storage_[static_cast<size_t>(id)];
  hook.fallback.Publish(oracle ? new FallbackOracle(std::move(oracle)) : nullptr,
                        GlobalEpochDomain());
  return OkStatus();
}

bool HookRegistry::HasFallbackOracle(HookId id) const {
  EpochGuard guard(GlobalEpochDomain());
  const Hook* hook = Resolve(id);
  if (hook == nullptr) {
    return false;
  }
  const FallbackOracle* fallback = hook->fallback.Load();
  return fallback != nullptr && *fallback;
}

void HookRegistry::AdjustForceTrace(HookId id, int delta) {
  EpochGuard guard(GlobalEpochDomain());
  const Hook* hook = Resolve(id);
  if (hook == nullptr) {
    return;
  }
  std::atomic<uint32_t>& count = hook->force_trace;
  if (delta >= 0) {
    count.fetch_add(static_cast<uint32_t>(delta), std::memory_order_relaxed);
    return;
  }
  // Clamped decrement: unbalanced releases saturate at zero.
  uint32_t current = count.load(std::memory_order_relaxed);
  const auto down = static_cast<uint32_t>(-delta);
  while (true) {
    const uint32_t next = current > down ? current - down : 0;
    if (count.compare_exchange_weak(current, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

bool HookRegistry::ForceTraced(HookId id) const {
  EpochGuard guard(GlobalEpochDomain());
  const Hook* hook = Resolve(id);
  return hook != nullptr && hook->force_trace.load(std::memory_order_relaxed) != 0;
}

HookMetrics HookRegistry::MetricsOf(HookId id) const {
  EpochGuard guard(GlobalEpochDomain());
  const Hook* hook = Resolve(id);
  if (hook == nullptr) {
    static const Counter kZeroCounter;
    static const LatencyHistogram kZeroHistogram;
    return HookMetrics(&kZeroCounter, &kZeroCounter, &kZeroCounter, &kZeroCounter,
                       &kZeroCounter, &kZeroHistogram);
  }
  return HookMetrics(hook->fires, hook->actions_run, hook->exec_errors, hook->degraded_fires,
                     hook->shed_fires, hook->fire_ns);
}

}  // namespace rkd
