// Trace-derived critical-path and bottleneck analysis.
//
// The CriticalPathAnalyzer closes the observe→decide seam: it consumes the
// same SpanRecord snapshots the Perfetto exporter renders for humans
// (Tracer::Snapshot, flight dumps), reconstructs the causal DAG of every
// fire from parent_id + timestamps, computes inclusive and exclusive (self)
// time per span, derives the per-hook critical path, and hands the result
// to a rule-based BottleneckClassifier that emits exactly one label per
// hook/program with the evidence attached (component time shares as
// criticality weights, deadline/degraded fire shares).
//
// Determinism contract: the analysis is a pure function of the recorded
// span bytes — no wall-clock reads, no RNG, no pointer- or hash-ordered
// iteration, integer (permille) arithmetic only, lexicographic tie-breaks —
// so the same snapshot yields a byte-identical report on any run and on
// both VM tiers. tests/bottleneck_test.cc asserts this, including against
// input-order permutations, orphaned parents (ring eviction), and torn
// rings. The ControlPlane stores the per-program merge of this report as a
// BottleneckAdvisory that steers tier-3 promotion order (see
// ControlPlane::RefreshBottleneck / EffectiveHotExecs).
#ifndef SRC_TELEMETRY_BOTTLENECK_H_
#define SRC_TELEMETRY_BOTTLENECK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/telemetry/span.h"

namespace rkd {

// Exactly one label per hot program. Ordering is part of the API: higher
// labels never outrank the deadline check (see ClassifyBottleneck).
enum class BottleneckLabel : uint8_t {
  kInconclusive = 0,  // too few fires, or no component dominates
  kDispatchBound,     // hook fan-out + VM dispatch self time dominates
  kTableBound,        // table.lookup (match/index) self time dominates
  kMlEvalBound,       // ml.eval self time dominates
  kHelperBound,       // vm.helper self time dominates
  kDeadlineBound,     // governor/deadline pressure: overruns or degraded fires
};
std::string_view BottleneckLabelName(BottleneckLabel label);

// The integer facts a classification is a function of. All *_ns fields are
// exclusive (self) time summed over analyzed fire trees, so they partition
// critical_path_ns exactly; merging evidence across hooks is field-wise
// addition (see Merge).
struct BottleneckEvidence {
  uint64_t fires = 0;                 // complete causal trees attributed
  uint64_t critical_path_ns = 0;      // summed per-fire critical path
  uint64_t max_critical_path_ns = 0;  // slowest single fire
  uint64_t dispatch_ns = 0;           // hook.* self + vm.exec self
  uint64_t table_ns = 0;              // table.lookup self
  uint64_t ml_ns = 0;                 // ml.eval self
  uint64_t helper_ns = 0;             // vm.helper self
  uint64_t other_ns = 0;              // spans outside the known fire shape
  uint64_t deadline_fires = 0;        // fires whose vm.exec overran its deadline
  uint64_t degraded_fires = 0;        // fires admitted below GovLevel::kFull

  // Integer share of the summed critical path (0 when no path was seen).
  uint32_t Permille(uint64_t ns) const {
    return critical_path_ns == 0
               ? 0
               : static_cast<uint32_t>(ns * 1000 / critical_path_ns);
  }
  // Integer share of the analyzed fires.
  uint32_t FirePermille(uint64_t n) const {
    return fires == 0 ? 0 : static_cast<uint32_t>(n * 1000 / fires);
  }
  void Merge(const BottleneckEvidence& other);
};

// Classifier thresholds. Defaults are documented in DESIGN.md; every value
// is an integer so two hosts can never disagree on a comparison.
struct ClassifierConfig {
  uint64_t min_fires = 8;           // below: kInconclusive (not enough signal)
  uint32_t dominant_permille = 400; // a component must own >= this share
  uint32_t deadline_permille = 150; // deadline/degraded fire share trigger
};

// The rule ladder (first match wins):
//   1. fires < min_fires or empty path        -> kInconclusive
//   2. deadline or degraded fire share >= deadline_permille -> kDeadlineBound
//   3. largest component share >= dominant_permille -> that component's
//      label; ties break by fixed precedence ml > table > helper > dispatch
//      (the order in which specialization/index tuning can act on them)
//   4. otherwise                              -> kInconclusive
BottleneckLabel ClassifyBottleneck(const BottleneckEvidence& evidence,
                                   const ClassifierConfig& config);

// Per-span-name rollup across the analyzed fires of one hook (or program).
struct CriticalContributor {
  std::string name;
  uint64_t count = 0;
  uint64_t inclusive_ns = 0;
  uint64_t exclusive_ns = 0;           // inclusive minus direct children
  uint32_t criticality_permille = 0;   // exclusive share of the critical path
  // What would remain of the critical path if this contributor cost zero —
  // the contributor with the least slack is the one to optimize first.
  uint64_t slack_ns = 0;
};

// One classified unit: a hook's fires, or the per-program merge the control
// plane stores. `valid` distinguishes "analyzed, possibly inconclusive"
// from "never analyzed" (the neutral default every program starts with).
struct BottleneckAdvisory {
  bool valid = false;
  BottleneckLabel label = BottleneckLabel::kInconclusive;
  BottleneckEvidence evidence;
  // Sorted by exclusive_ns descending, name ascending on ties.
  std::vector<CriticalContributor> contributors;
};

struct HookBottleneck {
  std::string hook;  // root span label, e.g. "hook.mem.page_fault"
  BottleneckAdvisory advisory;
  // Span names along the longest root→leaf descent of the slowest fire
  // (ties broken by span_id), i.e. the modal critical chain.
  std::vector<std::string> critical_chain;
};

struct BottleneckReport {
  uint64_t spans = 0;           // records in the snapshot
  uint64_t trees = 0;           // fire trees analyzed (root label "hook.*")
  uint64_t orphan_spans = 0;    // parent evicted from the ring / torn away
  uint64_t non_fire_spans = 0;  // control-plane spans (cp.*, guardian.*, ...)
  std::vector<HookBottleneck> hooks;  // sorted by hook name ascending
};

struct AnalyzerConfig {
  ClassifierConfig classifier;
};

class CriticalPathAnalyzer {
 public:
  explicit CriticalPathAnalyzer(AnalyzerConfig config = {}) : config_(config) {}

  // Pure function of `spans`: grouping, attribution, and classification use
  // only the recorded ids/timestamps/tags. Input order does not matter —
  // spans are re-sorted internally — so Tracer::Snapshot order and any
  // permutation of it produce identical reports.
  BottleneckReport Analyze(const std::vector<SpanRecord>& spans) const;

  const AnalyzerConfig& config() const { return config_; }

 private:
  AnalyzerConfig config_;
};

// Field-wise merge of per-hook advisories into one program-level advisory,
// reclassified under `config`. `max_contributors` bounds the merged list
// (0 = keep all).
BottleneckAdvisory MergeAdvisories(const std::vector<const BottleneckAdvisory*>& parts,
                                   const ClassifierConfig& config,
                                   size_t max_contributors = 0);

// Deterministic text renderings — the canonical bytes the determinism tests
// and the rkd_bottleneck tool compare.
std::string RenderAdvisory(const BottleneckAdvisory& advisory,
                           size_t max_contributors = 3);
std::string RenderBottleneckReport(const BottleneckReport& report);

}  // namespace rkd

#endif  // SRC_TELEMETRY_BOTTLENECK_H_
