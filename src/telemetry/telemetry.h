// The unified telemetry core: datapath-cheap metrics shared by every layer
// (hooks, VM tiers, control plane, simulators).
//
// Design constraints, in order:
//   1. Recording on the hot path must be allocation-free and lock-free —
//      a counter increment is one relaxed atomic add; a histogram record is
//      three (bucket, count, sum). Nothing on the record path takes a mutex.
//   2. Memory is bounded up front: histograms have a fixed log2 bucket array
//      (values above the last edge land in the overflow bucket) and the
//      trace ring overwrites its oldest slot when full (lossy by design).
//   3. Names are stable strings registered once; the hot path holds raw
//      pointers into the registry, which never invalidates them.
//
// Naming scheme (see DESIGN.md "Observability"):
//   rkd.hook.<name>.fires / .actions_run / .exec_errors / .fire_ns
//   rkd.vm.invocations / .steps / .helper_calls / .ml_calls / .tail_calls / .run_ns
//   rkd.cp.installs / .install_errors / .install_ns / .verify_ns / ...
//   rkd.sim.mem.* / rkd.sim.sched.*
#ifndef SRC_TELEMETRY_TELEMETRY_H_
#define SRC_TELEMETRY_TELEMETRY_H_

#include <atomic>
#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/telemetry/span.h"

namespace rkd {

// Wall-latency source for the instrumentation layer. The simulators keep
// their own VirtualClock for modelled time; this clock measures the *real*
// cost of running rkd code (the overhead the paper's tables quantify).
inline uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Monotonic event count. Relaxed atomics: increments from concurrent
// datapaths never lose updates; readers see an eventually-consistent value.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  // Increment that returns the pre-increment value: a cheap global sequence
  // number (the hook layer numbers fires with it so every table attached to
  // one Fire() agrees on the same canary-routing decision).
  uint64_t FetchIncrement(uint64_t n = 1) {
    return value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A counter striped across cache-line-padded cells so concurrent datapath
// threads increment without bouncing one line between cores. Each thread is
// assigned a cell once (thread-local); value() merges the cells on read —
// which is how per-shard state reaches the guardian: windows snapshot the
// merged sum at Tick(), never per-fire. Use this for pure tallies (table
// hits, action executions); it cannot provide FetchIncrement, so dense
// sequence numbers (the hook fire seq canary routing keys on) stay on the
// single-cell Counter.
//
// The first kShards-1 threads own their cell exclusively, so their
// increment is a relaxed load+store pair — no locked RMW, which keeps the
// single-thread fire path at plain-increment cost. Threads beyond that
// share the last cell and fall back to fetch_add (exact, just slower).
class ShardedCounter {
 public:
  static constexpr size_t kShards = 16;

  ShardedCounter() = default;
  // Moves are writer-context only (e.g. a table moved into its attachment
  // before the datapath can see it).
  ShardedCounter(ShardedCounter&& other) noexcept { MoveFrom(other); }
  ShardedCounter& operator=(ShardedCounter&& other) noexcept {
    if (this != &other) {
      MoveFrom(other);
    }
    return *this;
  }

  void Increment(uint64_t n = 1) {
    const uint8_t shard = ThisThreadShard();
    std::atomic<uint64_t>& cell = cells_[shard].v;
    if (shard < kShards - 1) {  // exclusive cell: no other thread writes it
      cell.store(cell.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
    } else {
      cell.fetch_add(n, std::memory_order_relaxed);
    }
  }

  // Merged view across all shards (eventually consistent, never lossy).
  uint64_t value() const {
    uint64_t sum = 0;
    for (const Cell& cell : cells_) {
      sum += cell.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };

  static constexpr uint8_t kUnassignedShard = 0xff;

  static uint8_t AssignShard();  // slow path: claims the next shard id

  // Sentinel + constinit instead of a dynamically-initialized thread_local:
  // the hot path is one TLS byte load and a predicted branch, with no
  // per-access init-guard check (this sits on every table lookup). The
  // first kShards-1 threads get distinct ids (their cells are exclusive);
  // every later thread gets kShards-1, the shared fetch_add cell.
  static uint8_t ThisThreadShard() {
    if (t_shard_ == kUnassignedShard) {
      t_shard_ = AssignShard();
    }
    return t_shard_;
  }

  static thread_local constinit uint8_t t_shard_;

  void MoveFrom(const ShardedCounter& other) {
    for (size_t i = 0; i < kShards; ++i) {
      cells_[i].v.store(other.cells_[i].v.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
  }

  std::array<Cell, kShards> cells_{};
};

// Last-write-wins instantaneous value (accuracies, knob positions, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket log2 latency histogram.
//
// Bucket 0 holds the value 0; bucket i (1 <= i < kNumBuckets-1) holds
// [2^(i-1), 2^i - 1]; the last bucket is the overflow bucket for everything
// >= 2^(kNumBuckets-2). With 40 buckets the finite range tops out at
// 2^38 ns (~4.6 min), far beyond any datapath latency of interest.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  void Record(uint64_t ns) {
    const size_t bucket = BucketIndex(ns);
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ns, std::memory_order_relaxed);
  }

  // Records `count` samples totalling `total_ns` with three atomic adds for
  // the whole batch (the per-event record cost is what batched dispatch
  // amortizes away). All `count` samples land in the mean's bucket, so
  // within-batch latency spread is blurred to one log2 bucket — count and
  // sum (and therefore the mean) stay exact.
  void RecordBatch(uint64_t total_ns, uint64_t count) {
    if (count == 0) {
      return;
    }
    buckets_[BucketIndex(total_ns / count)].fetch_add(count, std::memory_order_relaxed);
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(total_ns, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  uint64_t bucket_count(size_t i) const {
    return i < kNumBuckets ? buckets_[i].load(std::memory_order_relaxed) : 0;
  }

  // Bucket index a value lands in: floor(log2(v)) + 1, clamped to overflow.
  static size_t BucketIndex(uint64_t ns) {
    return std::min<size_t>(static_cast<size_t>(std::bit_width(ns)), kNumBuckets - 1);
  }
  // Inclusive upper edge of bucket i. The last bucket is unbounded; its
  // nominal edge is returned for percentile math.
  static uint64_t BucketUpperBound(size_t i) {
    return i >= kNumBuckets - 1 ? (1ull << (kNumBuckets - 2)) : (1ull << i) - 1;
  }

  // Upper-edge estimate of the p-th percentile (p in [0, 100]). Exact to
  // within one log2 bucket, which is all a reconfiguration policy needs.
  double ApproxPercentile(double p) const {
    const uint64_t n = count();
    if (n == 0) {
      return 0.0;
    }
    const auto target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(n - 1)) + 1;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      cumulative += bucket_count(i);
      if (cumulative >= target) {
        return static_cast<double>(BucketUpperBound(i));
      }
    }
    return static_cast<double>(BucketUpperBound(kNumBuckets - 1));
  }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Windowed view over a cumulative LatencyHistogram. Histograms never reset
// (exporters want process-lifetime totals), but breaker and rollout
// decisions need "p99 over the last window" — so consumers snapshot the
// bucket array with Reset() and compute percentiles over the delta.
class HistogramWindow {
 public:
  // Captures `h`'s current bucket counts as the new window start.
  void Reset(const LatencyHistogram& h);

  // Records observed since the last Reset(). A window that was never Reset
  // spans the histogram's whole lifetime.
  uint64_t DeltaCount(const LatencyHistogram& h) const;

  // Upper-edge estimate of the p-th percentile over the window's delta
  // (same one-log2-bucket precision as LatencyHistogram::ApproxPercentile).
  // 0 when the window is empty.
  double DeltaPercentile(const LatencyHistogram& h, double p) const;

 private:
  std::array<uint64_t, LatencyHistogram::kNumBuckets> base_{};
};

// One recent-event record. `source` and `kind` are producer-defined (the
// hook layer stores the HookId and kHookFireEvent).
struct TraceEvent {
  uint64_t ts_ns = 0;        // MonotonicNowNs() at the event
  int32_t source = 0;        // producer id (e.g. HookId)
  uint32_t kind = 0;         // producer-defined event kind
  uint64_t key = 0;          // e.g. the hook match key
  int64_t value = 0;         // e.g. the action result
  uint32_t duration_ns = 0;  // saturated at ~4.2 s
};

inline constexpr uint32_t kHookFireEvent = 1;
// One FireBatch call: `key` holds the batch size, `value` the last result.
inline constexpr uint32_t kHookBatchEvent = 2;
// One overload-governor ladder transition: `source` holds the program
// handle, `key` the from-level, `value` the to-level (GovLevel values).
inline constexpr uint32_t kGovTransitionEvent = 3;
// One tier-ladder transition (TickTiering observed the live tier change):
// `source` holds the program handle, `key` the from-tier, `value` the
// to-tier (1 = interpret, 2 = jit, 3 = specialized).
inline constexpr uint32_t kTierTransitionEvent = 4;
// One canary routing change: `source` holds the rollout id, `value` the
// permille of fires now routed to the canary (1000 after promotion, 0
// after rollback).
inline constexpr uint32_t kCanaryRoutingEvent = 5;

// Lossy fixed-capacity ring of recent events. Push is wait-free: one
// relaxed fetch_add to claim a slot, the slot store, and a release store of
// the slot's sequence stamp. The stamp protocol (odd = write in flight,
// 2*seq+2 = seq's event is complete) lets Snapshot run against concurrent
// writers without ever returning a torn event — a slot whose stamp moved
// while it was being copied is simply skipped (lossy trace contract; use
// Counter for anything that must not lose updates). Slot fields are relaxed
// atomics: once the ring wraps, two writers can own the same slot index
// concurrently, and the stamp check is what rejects the resulting mix — the
// atomics just make the mixed write well-defined.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 1024)
      : slots_(std::bit_ceil(capacity < 2 ? size_t{2} : capacity)),
        stamps_(slots_.size()),
        mask_(slots_.size() - 1) {}

  void Push(const TraceEvent& event) {
    const uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
    const size_t slot = seq & mask_;
    stamps_[slot].store(2 * seq + 1, std::memory_order_relaxed);
    slots_[slot].Store(event);
    stamps_[slot].store(2 * seq + 2, std::memory_order_release);
  }

  size_t capacity() const { return slots_.size(); }
  // Events ever pushed; min(total, capacity) are still resident.
  uint64_t total() const { return head_.load(std::memory_order_relaxed); }
  uint64_t dropped() const {
    const uint64_t n = total();
    return n > slots_.size() ? n - slots_.size() : 0;
  }

  // Copies the resident events in push order (oldest first), validating
  // each slot's stamp so concurrently-overwritten slots are skipped rather
  // than returned torn.
  std::vector<TraceEvent> Snapshot() const;

 private:
  struct Slot {
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<int32_t> source{0};
    std::atomic<uint32_t> kind{0};
    std::atomic<uint64_t> key{0};
    std::atomic<int64_t> value{0};
    std::atomic<uint32_t> duration_ns{0};

    void Store(const TraceEvent& e) {
      ts_ns.store(e.ts_ns, std::memory_order_relaxed);
      source.store(e.source, std::memory_order_relaxed);
      kind.store(e.kind, std::memory_order_relaxed);
      key.store(e.key, std::memory_order_relaxed);
      value.store(e.value, std::memory_order_relaxed);
      duration_ns.store(e.duration_ns, std::memory_order_relaxed);
    }
    TraceEvent Load() const {
      TraceEvent e;
      e.ts_ns = ts_ns.load(std::memory_order_relaxed);
      e.source = source.load(std::memory_order_relaxed);
      e.kind = kind.load(std::memory_order_relaxed);
      e.key = key.load(std::memory_order_relaxed);
      e.value = value.load(std::memory_order_relaxed);
      e.duration_ns = duration_ns.load(std::memory_order_relaxed);
      return e;
    }
  };

  std::vector<Slot> slots_;
  std::vector<std::atomic<uint64_t>> stamps_;  // 0 = empty; see class comment
  uint64_t mask_;
  std::atomic<uint64_t> head_{0};
};

// The registry: stable string names -> metric instances. Registration takes
// a mutex; returned pointers stay valid for the registry's lifetime, so the
// datapath looks a metric up once and then records through the raw pointer.
class TelemetryRegistry {
 public:
  explicit TelemetryRegistry(size_t trace_capacity = 1024) : trace_(trace_capacity) {}
  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  // Find-or-create by name. Never returns null.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  LatencyHistogram* GetHistogram(std::string_view name);

  TraceRing& trace() { return trace_; }
  const TraceRing& trace() const { return trace_; }

  // The registry's causal tracer / flight recorder (see span.h). Same
  // ownership story as the trace ring: one per registry, shared by every
  // layer that can see the registry.
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  // Snapshot views for exporters, sorted by name.
  std::vector<std::pair<std::string, const Counter*>> Counters() const;
  std::vector<std::pair<std::string, const Gauge*>> Gauges() const;
  std::vector<std::pair<std::string, const LatencyHistogram*>> Histograms() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>> histograms_;
  TraceRing trace_;
  Tracer tracer_;
};

// Process-wide default registry for code without a better-scoped one
// (benches, ad-hoc tools). Library layers prefer an explicitly plumbed
// registry (HookRegistry owns one by default) so tests stay isolated.
TelemetryRegistry& GlobalTelemetry();

}  // namespace rkd

#endif  // SRC_TELEMETRY_TELEMETRY_H_
