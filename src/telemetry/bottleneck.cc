#include "src/telemetry/bottleneck.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>

namespace rkd {

namespace {

// Component families the classifier weighs. Everything the fire path emits
// today maps to one of these; unknown names (future instrumentation, user
// spans) land in kOther so they still count against the critical path.
enum class SpanFamily { kDispatch, kTable, kMl, kHelper, kOther };

SpanFamily FamilyOf(const char* name) {
  if (std::strncmp(name, "hook.", 5) == 0 || std::strcmp(name, "vm.exec") == 0) {
    return SpanFamily::kDispatch;
  }
  if (std::strcmp(name, "table.lookup") == 0) {
    return SpanFamily::kTable;
  }
  if (std::strcmp(name, "ml.eval") == 0) {
    return SpanFamily::kMl;
  }
  if (std::strcmp(name, "vm.helper") == 0) {
    return SpanFamily::kHelper;
  }
  return SpanFamily::kOther;
}

const SpanTag* FindTag(const SpanRecord& span, const char* key) {
  for (uint8_t i = 0; i < span.num_tags; ++i) {
    if (span.tags[i].key != nullptr && std::strcmp(span.tags[i].key, key) == 0) {
      return &span.tags[i];
    }
  }
  return nullptr;
}

void AppendU64(std::string& out, uint64_t v) { out += std::to_string(v); }

void AppendPermille(std::string& out, uint32_t permille) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u%%", permille / 10, permille % 10);
  out += buf;
}

// Rolls contributor name stats and finalizes an advisory's derived fields.
struct ContributorAccumulator {
  std::map<std::string, CriticalContributor> by_name;

  void Add(const std::string& name, uint64_t inclusive_ns, uint64_t exclusive_ns,
           uint64_t count) {
    CriticalContributor& c = by_name[name];
    if (c.count == 0 && c.inclusive_ns == 0) {
      c.name = name;
    }
    c.count += count;
    c.inclusive_ns += inclusive_ns;
    c.exclusive_ns += exclusive_ns;
  }

  std::vector<CriticalContributor> Finish(const BottleneckEvidence& evidence,
                                          size_t max_contributors) {
    std::vector<CriticalContributor> out;
    out.reserve(by_name.size());
    for (auto& [name, c] : by_name) {
      c.criticality_permille = evidence.Permille(c.exclusive_ns);
      c.slack_ns = evidence.critical_path_ns > c.exclusive_ns
                       ? evidence.critical_path_ns - c.exclusive_ns
                       : 0;
      out.push_back(std::move(c));
    }
    std::sort(out.begin(), out.end(),
              [](const CriticalContributor& a, const CriticalContributor& b) {
                return a.exclusive_ns != b.exclusive_ns ? a.exclusive_ns > b.exclusive_ns
                                                        : a.name < b.name;
              });
    if (max_contributors != 0 && out.size() > max_contributors) {
      out.resize(max_contributors);
    }
    return out;
  }
};

// Per-hook accumulation state while walking trees.
struct HookAccumulator {
  BottleneckEvidence evidence;
  ContributorAccumulator contributors;
  // Slowest fire seen so far and its critical chain (names root→leaf).
  uint64_t slowest_ns = 0;
  uint64_t slowest_root_span_id = 0;
  std::vector<std::string> critical_chain;
};

}  // namespace

std::string_view BottleneckLabelName(BottleneckLabel label) {
  switch (label) {
    case BottleneckLabel::kInconclusive:
      return "inconclusive";
    case BottleneckLabel::kDispatchBound:
      return "dispatch-bound";
    case BottleneckLabel::kTableBound:
      return "table-bound";
    case BottleneckLabel::kMlEvalBound:
      return "ml-eval-bound";
    case BottleneckLabel::kHelperBound:
      return "helper-bound";
    case BottleneckLabel::kDeadlineBound:
      return "deadline-bound";
  }
  return "unknown";
}

void BottleneckEvidence::Merge(const BottleneckEvidence& other) {
  fires += other.fires;
  critical_path_ns += other.critical_path_ns;
  max_critical_path_ns = std::max(max_critical_path_ns, other.max_critical_path_ns);
  dispatch_ns += other.dispatch_ns;
  table_ns += other.table_ns;
  ml_ns += other.ml_ns;
  helper_ns += other.helper_ns;
  other_ns += other.other_ns;
  deadline_fires += other.deadline_fires;
  degraded_fires += other.degraded_fires;
}

BottleneckLabel ClassifyBottleneck(const BottleneckEvidence& evidence,
                                   const ClassifierConfig& config) {
  if (evidence.fires < config.min_fires || evidence.critical_path_ns == 0) {
    return BottleneckLabel::kInconclusive;
  }
  if (evidence.FirePermille(evidence.deadline_fires) >= config.deadline_permille ||
      evidence.FirePermille(evidence.degraded_fires) >= config.deadline_permille) {
    return BottleneckLabel::kDeadlineBound;
  }
  const uint32_t ml = evidence.Permille(evidence.ml_ns);
  const uint32_t table = evidence.Permille(evidence.table_ns);
  const uint32_t helper = evidence.Permille(evidence.helper_ns);
  const uint32_t dispatch = evidence.Permille(evidence.dispatch_ns);
  const uint32_t best = std::max(std::max(ml, table), std::max(helper, dispatch));
  if (best < config.dominant_permille) {
    return BottleneckLabel::kInconclusive;
  }
  // Fixed tie precedence: the order in which the control plane can act
  // (specialize ml, tune the index, inline the helper, flatten dispatch).
  if (ml == best) {
    return BottleneckLabel::kMlEvalBound;
  }
  if (table == best) {
    return BottleneckLabel::kTableBound;
  }
  if (helper == best) {
    return BottleneckLabel::kHelperBound;
  }
  return BottleneckLabel::kDispatchBound;
}

BottleneckReport CriticalPathAnalyzer::Analyze(const std::vector<SpanRecord>& spans) const {
  BottleneckReport report;
  report.spans = spans.size();

  // Group into causal trees. std::map keys make iteration order a function
  // of the recorded trace ids, never of input order or pointer values.
  std::map<uint64_t, std::vector<const SpanRecord*>> trees;
  for (const SpanRecord& span : spans) {
    trees[span.trace_id].push_back(&span);
  }

  std::map<std::string, HookAccumulator> hooks;
  for (auto& [trace_id, members] : trees) {
    (void)trace_id;
    // Canonical member order regardless of how the snapshot was assembled.
    std::sort(members.begin(), members.end(),
              [](const SpanRecord* a, const SpanRecord* b) {
                return a->start_ns != b->start_ns ? a->start_ns < b->start_ns
                                                  : a->span_id < b->span_id;
              });
    const SpanRecord* root = nullptr;
    std::map<uint64_t, const SpanRecord*> by_id;
    for (const SpanRecord* span : members) {
      by_id[span->span_id] = span;
      if (span->parent_id == 0 && root == nullptr) {
        root = span;
      }
    }
    // Child adjacency (only edges whose parent survived in the snapshot).
    std::map<uint64_t, std::vector<const SpanRecord*>> children;
    for (const SpanRecord* span : members) {
      if (span->parent_id != 0 && by_id.count(span->parent_id) != 0) {
        children[span->parent_id].push_back(span);
      }
    }
    if (root == nullptr) {
      // The ring evicted the fire root out from under its children: nothing
      // to attribute the remains to.
      report.orphan_spans += members.size();
      continue;
    }
    // Reachability from the root separates the attributable tree from
    // orphans whose parent link was torn away mid-chain.
    std::map<uint64_t, bool> reached;
    std::vector<const SpanRecord*> stack{root};
    std::vector<const SpanRecord*> ordered;  // DFS order, children start-sorted
    reached[root->span_id] = true;
    while (!stack.empty()) {
      const SpanRecord* span = stack.back();
      stack.pop_back();
      ordered.push_back(span);
      const auto kids = children.find(span->span_id);
      if (kids == children.end()) {
        continue;
      }
      for (auto it = kids->second.rbegin(); it != kids->second.rend(); ++it) {
        reached[(*it)->span_id] = true;
        stack.push_back(*it);
      }
    }
    uint64_t orphans = 0;
    for (const SpanRecord* span : members) {
      if (reached.count(span->span_id) == 0) {
        ++orphans;
      }
    }
    report.orphan_spans += orphans;

    if (std::strncmp(root->name, "hook.", 5) != 0) {
      // Control-plane trees (cp.install, guardian.tick, vm.specialize, ...)
      // are not fire trees; count and move on.
      report.non_fire_spans += ordered.size();
      continue;
    }
    ++report.trees;
    HookAccumulator& acc = hooks[root->name];
    BottleneckEvidence& ev = acc.evidence;
    ++ev.fires;
    const uint64_t path_ns = root->duration_ns();
    ev.critical_path_ns += path_ns;
    ev.max_critical_path_ns = std::max(ev.max_critical_path_ns, path_ns);

    bool deadline_hit = false;
    for (const SpanRecord* span : ordered) {
      // Exclusive (self) time: inclusive minus direct surviving children.
      // Spans within one fire are same-thread and strictly nested, so every
      // self-time nanosecond lies on the fire's critical path and the
      // family sums partition it exactly (orphaned descendants collapse
      // into their nearest surviving ancestor's self time).
      uint64_t child_ns = 0;
      if (const auto kids = children.find(span->span_id); kids != children.end()) {
        for (const SpanRecord* kid : kids->second) {
          child_ns += kid->duration_ns();
        }
      }
      const uint64_t inclusive = span->duration_ns();
      const uint64_t exclusive = inclusive > child_ns ? inclusive - child_ns : 0;
      switch (FamilyOf(span->name)) {
        case SpanFamily::kDispatch:
          ev.dispatch_ns += exclusive;
          break;
        case SpanFamily::kTable:
          ev.table_ns += exclusive;
          break;
        case SpanFamily::kMl:
          ev.ml_ns += exclusive;
          break;
        case SpanFamily::kHelper:
          ev.helper_ns += exclusive;
          break;
        case SpanFamily::kOther:
          ev.other_ns += exclusive;
          break;
      }
      acc.contributors.Add(span->name, inclusive, exclusive, 1);
      if (std::strcmp(span->name, "vm.exec") == 0) {
        if (const SpanTag* ddl = FindTag(*span, "ddl"); ddl != nullptr && ddl->value != 0) {
          deadline_hit = true;
        }
      }
    }
    if (deadline_hit) {
      ++ev.deadline_fires;
    }
    if (FindTag(*root, "gov") != nullptr) {
      ++ev.degraded_fires;
    }

    // Track the slowest fire's critical chain: descend into the child with
    // the largest inclusive time (ties: lowest span_id — children are
    // start-sorted, and start ties resolve by span_id in the sort above).
    if (path_ns > acc.slowest_ns ||
        (path_ns == acc.slowest_ns &&
         (acc.slowest_root_span_id == 0 || root->span_id < acc.slowest_root_span_id))) {
      acc.slowest_ns = path_ns;
      acc.slowest_root_span_id = root->span_id;
      acc.critical_chain.clear();
      const SpanRecord* at = root;
      while (at != nullptr) {
        acc.critical_chain.push_back(at->name);
        const auto kids = children.find(at->span_id);
        const SpanRecord* next = nullptr;
        if (kids != children.end()) {
          for (const SpanRecord* kid : kids->second) {
            if (next == nullptr || kid->duration_ns() > next->duration_ns() ||
                (kid->duration_ns() == next->duration_ns() &&
                 kid->span_id < next->span_id)) {
              next = kid;
            }
          }
        }
        at = next;
      }
    }
  }

  report.hooks.reserve(hooks.size());
  for (auto& [name, acc] : hooks) {
    HookBottleneck hook;
    hook.hook = name;
    hook.advisory.valid = true;
    hook.advisory.evidence = acc.evidence;
    hook.advisory.label = ClassifyBottleneck(acc.evidence, config_.classifier);
    hook.advisory.contributors = acc.contributors.Finish(acc.evidence, 0);
    hook.critical_chain = std::move(acc.critical_chain);
    report.hooks.push_back(std::move(hook));
  }
  return report;
}

BottleneckAdvisory MergeAdvisories(const std::vector<const BottleneckAdvisory*>& parts,
                                   const ClassifierConfig& config,
                                   size_t max_contributors) {
  BottleneckAdvisory merged;
  ContributorAccumulator contributors;
  for (const BottleneckAdvisory* part : parts) {
    if (part == nullptr || !part->valid) {
      continue;
    }
    merged.valid = true;
    merged.evidence.Merge(part->evidence);
    for (const CriticalContributor& c : part->contributors) {
      contributors.Add(c.name, c.inclusive_ns, c.exclusive_ns, c.count);
    }
  }
  if (!merged.valid) {
    return merged;
  }
  merged.contributors = contributors.Finish(merged.evidence, max_contributors);
  merged.label = ClassifyBottleneck(merged.evidence, config);
  return merged;
}

std::string RenderAdvisory(const BottleneckAdvisory& advisory, size_t max_contributors) {
  std::string out;
  if (!advisory.valid) {
    out += "bottleneck: (no advisory)\n";
    return out;
  }
  const BottleneckEvidence& ev = advisory.evidence;
  out += "bottleneck: ";
  out += BottleneckLabelName(advisory.label);
  out += "\n  fires ";
  AppendU64(out, ev.fires);
  out += ", critical path ";
  AppendU64(out, ev.critical_path_ns);
  out += " ns (max ";
  AppendU64(out, ev.max_critical_path_ns);
  out += " ns)\n  shares: dispatch ";
  AppendPermille(out, ev.Permille(ev.dispatch_ns));
  out += ", table ";
  AppendPermille(out, ev.Permille(ev.table_ns));
  out += ", ml ";
  AppendPermille(out, ev.Permille(ev.ml_ns));
  out += ", helper ";
  AppendPermille(out, ev.Permille(ev.helper_ns));
  out += ", other ";
  AppendPermille(out, ev.Permille(ev.other_ns));
  out += "\n  pressure: deadline fires ";
  AppendPermille(out, ev.FirePermille(ev.deadline_fires));
  out += ", degraded fires ";
  AppendPermille(out, ev.FirePermille(ev.degraded_fires));
  out += "\n";
  size_t listed = 0;
  for (const CriticalContributor& c : advisory.contributors) {
    if (max_contributors != 0 && listed++ >= max_contributors) {
      break;
    }
    out += "  ";
    out += c.name;
    out += ": self ";
    AppendU64(out, c.exclusive_ns);
    out += " ns (";
    AppendPermille(out, c.criticality_permille);
    out += " criticality), incl ";
    AppendU64(out, c.inclusive_ns);
    out += " ns, n=";
    AppendU64(out, c.count);
    out += ", slack ";
    AppendU64(out, c.slack_ns);
    out += " ns\n";
  }
  return out;
}

std::string RenderBottleneckReport(const BottleneckReport& report) {
  std::string out = "=== bottleneck report ===\n";
  out += "spans ";
  AppendU64(out, report.spans);
  out += ", fire trees ";
  AppendU64(out, report.trees);
  out += ", orphan spans ";
  AppendU64(out, report.orphan_spans);
  out += ", non-fire spans ";
  AppendU64(out, report.non_fire_spans);
  out += "\n";
  for (const HookBottleneck& hook : report.hooks) {
    out += "--- ";
    out += hook.hook;
    out += " ---\n";
    if (!hook.critical_chain.empty()) {
      out += "critical chain: ";
      for (size_t i = 0; i < hook.critical_chain.size(); ++i) {
        if (i > 0) {
          out += " -> ";
        }
        out += hook.critical_chain[i];
      }
      out += "\n";
    }
    out += RenderAdvisory(hook.advisory, 0);
  }
  return out;
}

}  // namespace rkd
