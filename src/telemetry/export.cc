#include "src/telemetry/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace rkd {

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map '.' (and
// anything else) to '_'.
std::string SanitizePrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string ExportPrometheus(const TelemetryRegistry& registry) {
  std::ostringstream out;
  for (const auto& [name, counter] : registry.Counters()) {
    const std::string prom = SanitizePrometheusName(name);
    out << "# TYPE " << prom << " counter\n";
    out << prom << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : registry.Gauges()) {
    const std::string prom = SanitizePrometheusName(name);
    out << "# TYPE " << prom << " gauge\n";
    out << prom << " " << FormatDouble(gauge->value()) << "\n";
  }
  for (const auto& [name, histogram] : registry.Histograms()) {
    const std::string prom = SanitizePrometheusName(name);
    out << "# TYPE " << prom << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      cumulative += histogram->bucket_count(i);
      if (i == LatencyHistogram::kNumBuckets - 1) {
        out << prom << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
      } else {
        out << prom << "_bucket{le=\"" << LatencyHistogram::BucketUpperBound(i) << "\"} "
            << cumulative << "\n";
      }
    }
    out << prom << "_sum " << histogram->sum() << "\n";
    out << prom << "_count " << histogram->count() << "\n";
  }
  return out.str();
}

std::string ExportJson(const TelemetryRegistry& registry, const JsonExportOptions& options) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : registry.Counters()) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": " << counter->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : registry.Gauges()) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": " << FormatDouble(gauge->value());
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : registry.Histograms()) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": {\n";
    out << "      \"count\": " << histogram->count() << ",\n";
    out << "      \"sum\": " << histogram->sum() << ",\n";
    out << "      \"mean\": " << FormatDouble(histogram->mean()) << ",\n";
    out << "      \"p50\": " << FormatDouble(histogram->ApproxPercentile(50)) << ",\n";
    out << "      \"p99\": " << FormatDouble(histogram->ApproxPercentile(99)) << ",\n";
    out << "      \"buckets\": [";
    bool first_bucket = true;
    for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      const uint64_t n = histogram->bucket_count(i);
      if (options.skip_empty_buckets && n == 0) {
        continue;
      }
      out << (first_bucket ? "" : ", ") << "{\"le\": ";
      if (i == LatencyHistogram::kNumBuckets - 1) {
        out << "\"+Inf\"";
      } else {
        out << LatencyHistogram::BucketUpperBound(i);
      }
      out << ", \"count\": " << n << "}";
      first_bucket = false;
    }
    out << "]\n    }";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}";

  if (options.include_trace) {
    const TraceRing& trace = registry.trace();
    std::vector<TraceEvent> events = trace.Snapshot();
    const size_t keep = events.size() < options.max_trace_events ? events.size()
                                                                 : options.max_trace_events;
    out << ",\n  \"trace\": {\n";
    out << "    \"capacity\": " << trace.capacity() << ",\n";
    out << "    \"total\": " << trace.total() << ",\n";
    out << "    \"dropped\": " << trace.dropped() << ",\n";
    out << "    \"events\": [";
    for (size_t i = events.size() - keep; i < events.size(); ++i) {
      const TraceEvent& ev = events[i];
      out << (i == events.size() - keep ? "\n" : ",\n");
      out << "      {\"ts_ns\": " << ev.ts_ns << ", \"source\": " << ev.source
          << ", \"kind\": " << ev.kind << ", \"key\": " << ev.key
          << ", \"value\": " << ev.value << ", \"duration_ns\": " << ev.duration_ns << "}";
    }
    out << (keep == 0 ? "" : "\n    ") << "]\n  }";
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace rkd
