// Consumers for Tracer snapshots: a Chrome/Perfetto trace_event JSON
// exporter (load the file at ui.perfetto.dev or chrome://tracing), a plain
// text tree renderer for terminals, and a per-name aggregation used by the
// rkd_trace "hottest spans" report.
#ifndef SRC_TELEMETRY_TRACE_EXPORT_H_
#define SRC_TELEMETRY_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "src/telemetry/span.h"
#include "src/telemetry/telemetry.h"

namespace rkd {

// One sampled value on a Perfetto counter track ("C" event).
struct CounterSample {
  uint64_t ts_ns = 0;
  int64_t value = 0;
};

// A named counter track rendered alongside the span events, so overload
// ladder moves, tier transitions, and canary routing line up with the
// causal trees in the Perfetto UI.
struct CounterTrack {
  std::string name;
  std::vector<CounterSample> samples;
};

// Optional metadata stamped into the trace file's otherData section — the
// guardian uses it to name the offending program and breach reason.
struct TraceExportOptions {
  std::string program;
  std::string reason;
  std::vector<CounterTrack> counters;
};

// Derives counter tracks from the telemetry trace ring's event stream:
// governor ladder transitions ("rkd.gov.level.p<handle>"), tier ladder
// transitions ("rkd.tier.p<handle>"), and canary routing permille
// ("rkd.canary.permille.r<rollout>"). Events of other kinds are ignored.
std::vector<CounterTrack> CounterTracksFromTrace(const std::vector<TraceEvent>& events);

// Chrome trace_event JSON: one "X" (complete) event per span, ts/dur in
// microseconds, tid = the tracer's thread index. Spans on one thread nest by
// time containment, which is exactly how the span stack emitted them, so
// Perfetto renders the causal tree without explicit flow events. Tags become
// the event's args; trace/span/parent ids ride along for programmatic use.
std::string ExportPerfettoTrace(const std::vector<SpanRecord>& spans,
                                const TraceExportOptions& options = {});

// Indented text rendering of the causal trees, newest trace last. Traces are
// grouped by trace_id; children attach to their parent_id and sort by start
// time. `max_traces` keeps terminal output bounded (0 = all).
std::string RenderSpanTree(const std::vector<SpanRecord>& spans, size_t max_traces = 0);

// Per-name rollup for the hottest-span report, sorted by total time desc.
// `total_ns` is inclusive (double-counts nested children); `self_ns` is
// exclusive — inclusive minus direct children still present in the snapshot
// — so nested spans (vm.exec inside hook.*) no longer misattribute hotness.
struct SpanAggregate {
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t max_ns = 0;
  uint64_t self_ns = 0;
};
std::vector<SpanAggregate> AggregateSpans(const std::vector<SpanRecord>& spans);

// Writes `contents` to `path`, returning false on any I/O failure.
bool WriteTextFile(const std::string& path, const std::string& contents);

}  // namespace rkd

#endif  // SRC_TELEMETRY_TRACE_EXPORT_H_
