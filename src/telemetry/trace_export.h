// Consumers for Tracer snapshots: a Chrome/Perfetto trace_event JSON
// exporter (load the file at ui.perfetto.dev or chrome://tracing), a plain
// text tree renderer for terminals, and a per-name aggregation used by the
// rkd_trace "hottest spans" report.
#ifndef SRC_TELEMETRY_TRACE_EXPORT_H_
#define SRC_TELEMETRY_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "src/telemetry/span.h"

namespace rkd {

// Optional metadata stamped into the trace file's otherData section — the
// guardian uses it to name the offending program and breach reason.
struct TraceExportOptions {
  std::string program;
  std::string reason;
};

// Chrome trace_event JSON: one "X" (complete) event per span, ts/dur in
// microseconds, tid = the tracer's thread index. Spans on one thread nest by
// time containment, which is exactly how the span stack emitted them, so
// Perfetto renders the causal tree without explicit flow events. Tags become
// the event's args; trace/span/parent ids ride along for programmatic use.
std::string ExportPerfettoTrace(const std::vector<SpanRecord>& spans,
                                const TraceExportOptions& options = {});

// Indented text rendering of the causal trees, newest trace last. Traces are
// grouped by trace_id; children attach to their parent_id and sort by start
// time. `max_traces` keeps terminal output bounded (0 = all).
std::string RenderSpanTree(const std::vector<SpanRecord>& spans, size_t max_traces = 0);

// Per-name rollup for the hottest-span report, sorted by total time desc.
struct SpanAggregate {
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t max_ns = 0;
};
std::vector<SpanAggregate> AggregateSpans(const std::vector<SpanRecord>& spans);

// Writes `contents` to `path`, returning false on any I/O failure.
bool WriteTextFile(const std::string& path, const std::string& contents);

}  // namespace rkd

#endif  // SRC_TELEMETRY_TRACE_EXPORT_H_
