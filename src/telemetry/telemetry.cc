#include "src/telemetry/telemetry.h"

namespace rkd {

thread_local constinit uint8_t ShardedCounter::t_shard_ = ShardedCounter::kUnassignedShard;

uint8_t ShardedCounter::AssignShard() {
  static std::atomic<uint32_t> next{0};
  const uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id < kShards - 1 ? static_cast<uint8_t>(id) : static_cast<uint8_t>(kShards - 1);
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  const uint64_t n = total();
  const uint64_t resident = n < slots_.size() ? n : slots_.size();
  std::vector<TraceEvent> out;
  out.reserve(resident);
  for (uint64_t i = n - resident; i < n; ++i) {
    const size_t slot = i & mask_;
    // Validate the slot holds exactly push number i, both before and after
    // the copy; anything else means a concurrent writer lapped us and the
    // slot is skipped (its newer content is either covered by a later i or
    // outside this snapshot's window).
    const uint64_t before = stamps_[slot].load(std::memory_order_acquire);
    if (before != 2 * i + 2) {
      continue;
    }
    TraceEvent event = slots_[slot].Load();
    std::atomic_thread_fence(std::memory_order_acquire);
    if (stamps_[slot].load(std::memory_order_relaxed) != before) {
      continue;
    }
    out.push_back(event);
  }
  return out;
}

void HistogramWindow::Reset(const LatencyHistogram& h) {
  for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    base_[i] = h.bucket_count(i);
  }
}

uint64_t HistogramWindow::DeltaCount(const LatencyHistogram& h) const {
  uint64_t total = 0;
  for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    const uint64_t now = h.bucket_count(i);
    total += now > base_[i] ? now - base_[i] : 0;
  }
  return total;
}

double HistogramWindow::DeltaPercentile(const LatencyHistogram& h, double p) const {
  const uint64_t n = DeltaCount(h);
  if (n == 0) {
    return 0.0;
  }
  const auto target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(n - 1)) + 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    const uint64_t now = h.bucket_count(i);
    cumulative += now > base_[i] ? now - base_[i] : 0;
    if (cumulative >= target) {
      return static_cast<double>(LatencyHistogram::BucketUpperBound(i));
    }
  }
  return static_cast<double>(LatencyHistogram::BucketUpperBound(LatencyHistogram::kNumBuckets - 1));
}

Counter* TelemetryRegistry::GetCounter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    return it->second.get();
  }
  return counters_.emplace(std::string(name), std::make_unique<Counter>())
      .first->second.get();
}

Gauge* TelemetryRegistry::GetGauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    return it->second.get();
  }
  return gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first->second.get();
}

LatencyHistogram* TelemetryRegistry::GetHistogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    return it->second.get();
  }
  return histograms_.emplace(std::string(name), std::make_unique<LatencyHistogram>())
      .first->second.get();
}

std::vector<std::pair<std::string, const Counter*>> TelemetryRegistry::Counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter.get());
  }
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> TelemetryRegistry::Gauges() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge.get());
  }
  return out;
}

std::vector<std::pair<std::string, const LatencyHistogram*>> TelemetryRegistry::Histograms()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const LatencyHistogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram.get());
  }
  return out;
}

TelemetryRegistry& GlobalTelemetry() {
  static TelemetryRegistry* registry = new TelemetryRegistry();
  return *registry;
}

}  // namespace rkd
