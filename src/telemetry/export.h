// Snapshot exporters for a TelemetryRegistry: Prometheus text exposition
// format and a JSON document (which also carries the trace ring — traces
// have no Prometheus representation).
#ifndef SRC_TELEMETRY_EXPORT_H_
#define SRC_TELEMETRY_EXPORT_H_

#include <string>

#include "src/telemetry/telemetry.h"

namespace rkd {

// Prometheus text format: counters as `<name> <value>` with `# TYPE`
// headers, histograms as cumulative `_bucket{le="..."}` series plus `_sum`
// and `_count`. Metric names are sanitized ('.' and other non-identifier
// characters become '_'). Deterministic: series are sorted by name.
std::string ExportPrometheus(const TelemetryRegistry& registry);

struct JsonExportOptions {
  bool include_trace = true;
  size_t max_trace_events = 64;  // most recent events kept in the document
  bool skip_empty_buckets = true;
};

// One JSON object: {"counters": {...}, "gauges": {...}, "histograms":
// {...}, "trace": {...}}. Deterministic apart from the trace contents.
std::string ExportJson(const TelemetryRegistry& registry, const JsonExportOptions& options = {});

}  // namespace rkd

#endif  // SRC_TELEMETRY_EXPORT_H_
