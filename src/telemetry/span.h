// Causal span tracing + flight recorder.
//
// A Span is one timed region of the datapath (a hook fire, a table lookup,
// a VM execution, a model eval) with a trace id shared by every span in the
// same causal tree, a parent id, and a handful of integer tags. Spans nest
// on a lock-free thread-local stack: Begin pushes, End pops, and the parent
// is whatever span was open on the same thread — so one Fire() yields one
// tree (hook.fire -> table.lookup -> vm.exec -> ml.eval) with zero explicit
// context passing.
//
// Completed spans land in a bounded per-thread ring that doubles as the
// always-on flight recorder: when a guardian breach happens, the last N
// spans per thread are still resident and can be snapshotted to a trace
// file after the fact. Rings are single-writer (the owning thread); the
// snapshot side validates per-slot sequence stamps, so a reader never
// observes a torn record.
//
// Cost contract: an untraced fire pays one relaxed load and one branch
// (ShouldSample). A traced span costs two clock reads, a name copy, and one
// ring store — bench/bench_trace_overhead asserts both budgets.
#ifndef SRC_TELEMETRY_SPAN_H_
#define SRC_TELEMETRY_SPAN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace rkd {

inline constexpr size_t kMaxSpanTags = 6;
inline constexpr size_t kMaxSpanNameLen = 47;  // + NUL terminator
inline constexpr size_t kMaxSpanDepth = 16;

// One integer tag. Keys must be string literals (or strings that outlive the
// tracer); values are whatever integer the producer finds useful.
struct SpanTag {
  const char* key = nullptr;
  int64_t value = 0;
};

// One completed span. `name` is copied in (hook names live in resizable
// registries, so pointer stability cannot be assumed across installs).
struct SpanRecord {
  uint64_t trace_id = 0;   // shared by every span in one causal tree
  uint64_t span_id = 0;    // unique per span
  uint64_t parent_id = 0;  // 0 = root
  uint64_t start_ns = 0;   // MonotonicNowNs at Begin
  uint64_t end_ns = 0;     // MonotonicNowNs at End
  uint32_t thread_index = 0;
  uint16_t depth = 0;      // 0 = root
  uint8_t num_tags = 0;
  char name[kMaxSpanNameLen + 1] = {};
  SpanTag tags[kMaxSpanTags] = {};

  uint64_t duration_ns() const { return end_ns > start_ns ? end_ns - start_ns : 0; }
};

// The tracer: sampling policy + per-thread span stacks + flight-recorder
// rings. One per TelemetryRegistry; every layer that can see the registry
// can open spans.
class Tracer {
 public:
  static constexpr uint32_t kDefaultSampleEvery = 1024;

  explicit Tracer(size_t ring_capacity = 1024);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Deterministic sampling: fire number `seq` is traced iff sampling is
  // enabled and seq is a multiple of sample_every. Same fire sequence ->
  // same traced set, no RNG involved.
  bool ShouldSample(uint64_t seq) const {
    const uint32_t n = sample_every_.load(std::memory_order_relaxed);
    return n != 0 && seq % n == 0;
  }
  // 0 disables sampling (forced traces still record); 1 traces every fire.
  void set_sample_every(uint32_t n) { sample_every_.store(n, std::memory_order_relaxed); }
  uint32_t sample_every() const { return sample_every_.load(std::memory_order_relaxed); }

  // Span lifecycle. Begin when no span is open starts a new trace (fresh
  // trace id); otherwise the open span becomes the parent. Nesting deeper
  // than kMaxSpanDepth is counted and discarded, never fatal.
  void BeginSpan(const char* name);
  void TagCurrent(const char* key, int64_t value);  // no-op without an open span
  void EndSpan();

  // True when this thread has a span open — instrumentation below the fire
  // root uses this to decide whether to emit child spans.
  bool InSpan();

  // Flight recorder: every completed span still resident in any thread's
  // ring, sorted by start time. Safe against concurrent Begin/End (torn
  // slots are skipped, never returned).
  std::vector<SpanRecord> Snapshot() const;

  uint64_t spans_recorded() const { return recorded_.load(std::memory_order_relaxed); }
  uint64_t spans_dropped() const { return dropped_.load(std::memory_order_relaxed); }
  size_t ring_capacity() const { return ring_capacity_; }

 private:
  struct ThreadState;

  ThreadState* State();

  const size_t ring_capacity_;  // per thread, rounded up to a power of two
  const uint64_t instance_id_;  // defeats ABA on the thread-local cache
  std::atomic<uint32_t> sample_every_{kDefaultSampleEvery};
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};  // depth overflow + ring overwrites

  mutable std::mutex mu_;  // thread registration + snapshot; never on Begin/End fast path
  std::vector<std::unique_ptr<ThreadState>> threads_;
};

// RAII span. A null tracer makes every operation a no-op, so instrumentation
// sites write one unconditional ScopedSpan and pass null when untraced.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name) : tracer_(tracer) {
    if (tracer_ != nullptr) {
      tracer_->BeginSpan(name);
    }
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->EndSpan();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Tag(const char* key, int64_t value) {
    if (tracer_ != nullptr) {
      tracer_->TagCurrent(key, value);
    }
  }
  Tracer* tracer() const { return tracer_; }

 private:
  Tracer* tracer_;
};

}  // namespace rkd

#endif  // SRC_TELEMETRY_SPAN_H_
