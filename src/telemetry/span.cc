#include "src/telemetry/span.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>

namespace rkd {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

std::atomic<uint64_t> g_tracer_instances{1};

}  // namespace

// Per-thread state: the span stack plus the flight-recorder ring. The ring
// is single-writer (only the owning thread pushes); per-slot stamps make the
// snapshot side safe. Stamp protocol: 0 = never written, 2*push_index + 1 =
// write in progress, 2*push_index + 2 = slot holds push number push_index.
struct Tracer::ThreadState {
  explicit ThreadState(size_t capacity, uint32_t index)
      : thread_index(index), slots(capacity), stamps(capacity), mask(capacity - 1) {}

  void PushRecord(const SpanRecord& record) {
    const uint64_t seq = head;
    head++;
    const size_t slot = seq & mask;
    stamps[slot].store(2 * seq + 1, std::memory_order_relaxed);
    slots[slot] = record;
    stamps[slot].store(2 * seq + 2, std::memory_order_release);
  }

  uint32_t thread_index;
  uint16_t depth = 0;          // open spans on the stack
  uint32_t overflow = 0;       // Begins discarded past kMaxSpanDepth
  SpanRecord stack[kMaxSpanDepth];

  std::vector<SpanRecord> slots;
  std::vector<std::atomic<uint64_t>> stamps;
  uint64_t mask;
  uint64_t head = 0;  // written only by the owner; snapshots read stamps
};

namespace {

// One-entry thread-local cache: the common case (one tracer per datapath)
// resolves ThreadState without touching the registration mutex.
struct ThreadCache {
  uint64_t tracer_instance = 0;
  void* state = nullptr;
};
thread_local ThreadCache t_cache;

}  // namespace

Tracer::Tracer(size_t ring_capacity)
    : ring_capacity_(std::bit_ceil(ring_capacity < 2 ? size_t{2} : ring_capacity)),
      instance_id_(g_tracer_instances.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() = default;

Tracer::ThreadState* Tracer::State() {
  if (t_cache.tracer_instance == instance_id_) {
    return static_cast<ThreadState*>(t_cache.state);
  }
  const std::lock_guard<std::mutex> lock(mu_);
  auto state = std::make_unique<ThreadState>(ring_capacity_,
                                             static_cast<uint32_t>(threads_.size()));
  ThreadState* raw = state.get();
  threads_.push_back(std::move(state));
  t_cache = ThreadCache{instance_id_, raw};
  return raw;
}

void Tracer::BeginSpan(const char* name) {
  ThreadState* ts = State();
  if (ts->depth >= kMaxSpanDepth) {
    ts->overflow++;
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SpanRecord& span = ts->stack[ts->depth];
  span = SpanRecord{};
  if (ts->depth == 0) {
    span.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
    span.parent_id = 0;
  } else {
    const SpanRecord& parent = ts->stack[ts->depth - 1];
    span.trace_id = parent.trace_id;
    span.parent_id = parent.span_id;
  }
  span.span_id = next_span_id_.fetch_add(1, std::memory_order_relaxed);
  span.thread_index = ts->thread_index;
  span.depth = ts->depth;
  if (name != nullptr) {
    std::strncpy(span.name, name, kMaxSpanNameLen);
  }
  span.start_ns = NowNs();
  ts->depth++;
}

void Tracer::TagCurrent(const char* key, int64_t value) {
  ThreadState* ts = State();
  if (ts->depth == 0 || ts->overflow > 0) {
    return;
  }
  SpanRecord& span = ts->stack[ts->depth - 1];
  if (span.num_tags < kMaxSpanTags) {
    span.tags[span.num_tags] = SpanTag{key, value};
    span.num_tags++;
  }
}

void Tracer::EndSpan() {
  ThreadState* ts = State();
  if (ts->overflow > 0) {
    ts->overflow--;
    return;
  }
  if (ts->depth == 0) {
    return;  // unbalanced End: tolerated, never fatal
  }
  ts->depth--;
  SpanRecord& span = ts->stack[ts->depth];
  span.end_ns = NowNs();
  if (ts->head >= ts->slots.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);  // overwriting the oldest
  }
  ts->PushRecord(span);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

bool Tracer::InSpan() {
  return State()->depth > 0;
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<SpanRecord> out;
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ts : threads_) {
    // Read the owner's head through the newest stamp: scan is bounded by
    // capacity, so just probe every slot and validate its stamp.
    for (size_t slot = 0; slot <= ts->mask; ++slot) {
      const uint64_t before = ts->stamps[slot].load(std::memory_order_acquire);
      if (before == 0 || (before & 1) != 0) {
        continue;  // never written, or a write is in flight
      }
      SpanRecord record = ts->slots[slot];
      std::atomic_thread_fence(std::memory_order_acquire);
      const uint64_t after = ts->stamps[slot].load(std::memory_order_relaxed);
      if (after != before) {
        continue;  // overwritten while copying
      }
      out.push_back(record);
    }
  }
  std::sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    return a.start_ns != b.start_ns ? a.start_ns < b.start_ns : a.span_id < b.span_id;
  });
  return out;
}

}  // namespace rkd
