#include "src/telemetry/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string_view>
#include <unordered_map>

namespace rkd {
namespace {

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendMicros(std::string& out, uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

std::string ExportPerfettoTrace(const std::vector<SpanRecord>& spans,
                                const TraceExportOptions& options) {
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n  {\"name\": \"";
    AppendJsonEscaped(out, span.name);
    out += "\", \"cat\": \"rkd\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
    out += std::to_string(span.thread_index);
    out += ", \"ts\": ";
    AppendMicros(out, span.start_ns);
    out += ", \"dur\": ";
    AppendMicros(out, span.duration_ns());
    out += ", \"args\": {\"trace_id\": ";
    out += std::to_string(span.trace_id);
    out += ", \"span_id\": ";
    out += std::to_string(span.span_id);
    out += ", \"parent_id\": ";
    out += std::to_string(span.parent_id);
    for (uint8_t i = 0; i < span.num_tags; ++i) {
      out += ", \"";
      AppendJsonEscaped(out, span.tags[i].key == nullptr ? "" : span.tags[i].key);
      out += "\": ";
      out += std::to_string(span.tags[i].value);
    }
    out += "}}";
  }
  // Counter tracks ride in the same traceEvents array as "C" events (one
  // sample per event), which keeps the file valid trace_event JSON.
  for (const CounterTrack& track : options.counters) {
    for (const CounterSample& sample : track.samples) {
      if (!first) {
        out += ",";
      }
      first = false;
      out += "\n  {\"name\": \"";
      AppendJsonEscaped(out, track.name);
      out += "\", \"cat\": \"rkd\", \"ph\": \"C\", \"pid\": 1, \"ts\": ";
      AppendMicros(out, sample.ts_ns);
      out += ", \"args\": {\"value\": ";
      out += std::to_string(sample.value);
      out += "}}";
    }
  }
  out += "\n], \"displayTimeUnit\": \"ns\"";
  if (!options.program.empty() || !options.reason.empty()) {
    out += ", \"otherData\": {\"program\": \"";
    AppendJsonEscaped(out, options.program);
    out += "\", \"reason\": \"";
    AppendJsonEscaped(out, options.reason);
    out += "\"}";
  }
  out += "}\n";
  return out;
}

std::string RenderSpanTree(const std::vector<SpanRecord>& spans, size_t max_traces) {
  // Group spans into traces preserving snapshot (start-time) order, then
  // render each trace's tree: children attach by parent_id and are already
  // start-sorted. Orphans (parent fell out of the ring) render at the root.
  std::map<uint64_t, std::vector<const SpanRecord*>> traces;  // trace_id -> spans
  std::vector<uint64_t> trace_order;
  for (const SpanRecord& span : spans) {
    auto [it, inserted] = traces.try_emplace(span.trace_id);
    if (inserted) {
      trace_order.push_back(span.trace_id);
    }
    it->second.push_back(&span);
  }
  if (max_traces != 0 && trace_order.size() > max_traces) {
    trace_order.erase(trace_order.begin(),
                      trace_order.end() - static_cast<ptrdiff_t>(max_traces));
  }

  std::string out;
  for (const uint64_t trace_id : trace_order) {
    const std::vector<const SpanRecord*>& members = traces[trace_id];
    out += "trace ";
    out += std::to_string(trace_id);
    out += ":\n";
    std::unordered_map<uint64_t, std::vector<const SpanRecord*>> children;
    std::unordered_map<uint64_t, bool> present;
    for (const SpanRecord* span : members) {
      present[span->span_id] = true;
    }
    std::vector<const SpanRecord*> roots;
    for (const SpanRecord* span : members) {
      if (span->parent_id != 0 && present.count(span->parent_id) != 0) {
        children[span->parent_id].push_back(span);
      } else {
        roots.push_back(span);
      }
    }
    // Iterative depth-first print (spans are depth-bounded, but avoid
    // recursion anyway).
    struct Item {
      const SpanRecord* span;
      size_t indent;
    };
    std::vector<Item> stack;
    for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
      stack.push_back({*it, 1});
    }
    while (!stack.empty()) {
      const Item item = stack.back();
      stack.pop_back();
      out.append(item.indent * 2, ' ');
      out += item.span->name;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "  %llu ns",
                    static_cast<unsigned long long>(item.span->duration_ns()));
      out += buf;
      for (uint8_t i = 0; i < item.span->num_tags; ++i) {
        out += i == 0 ? "  [" : ", ";
        out += item.span->tags[i].key == nullptr ? "?" : item.span->tags[i].key;
        out += "=";
        out += std::to_string(item.span->tags[i].value);
      }
      if (item.span->num_tags > 0) {
        out += "]";
      }
      out += "\n";
      const auto kids = children.find(item.span->span_id);
      if (kids != children.end()) {
        for (auto it = kids->second.rbegin(); it != kids->second.rend(); ++it) {
          stack.push_back({*it, item.indent + 1});
        }
      }
    }
  }
  return out;
}

std::vector<CounterTrack> CounterTracksFromTrace(const std::vector<TraceEvent>& events) {
  // Keyed maps (not hash maps) so track order is a function of the event
  // stream, never of hashing.
  std::map<std::string, CounterTrack> tracks;
  const auto append = [&tracks](std::string name, uint64_t ts_ns, int64_t value) {
    CounterTrack& track = tracks[name];
    if (track.name.empty()) {
      track.name = std::move(name);
    }
    track.samples.push_back(CounterSample{ts_ns, value});
  };
  for (const TraceEvent& event : events) {
    switch (event.kind) {
      case kGovTransitionEvent:
        append("rkd.gov.level.p" + std::to_string(event.source), event.ts_ns, event.value);
        break;
      case kTierTransitionEvent:
        append("rkd.tier.p" + std::to_string(event.source), event.ts_ns, event.value);
        break;
      case kCanaryRoutingEvent:
        append("rkd.canary.permille.r" + std::to_string(event.source), event.ts_ns,
               event.value);
        break;
      default:
        break;  // fire/batch events are spans' business, not counters'
    }
  }
  std::vector<CounterTrack> out;
  out.reserve(tracks.size());
  for (auto& [name, track] : tracks) {
    out.push_back(std::move(track));
  }
  return out;
}

std::vector<SpanAggregate> AggregateSpans(const std::vector<SpanRecord>& spans) {
  // Exclusive (self) time needs each span's direct-children sum. Orphaned
  // children (parent evicted from the ring) charge a missing id, which
  // simply never gets read back.
  std::unordered_map<uint64_t, uint64_t> child_ns;
  for (const SpanRecord& span : spans) {
    if (span.parent_id != 0) {
      child_ns[span.parent_id] += span.duration_ns();
    }
  }
  std::map<std::string, SpanAggregate> by_name;
  for (const SpanRecord& span : spans) {
    SpanAggregate& agg = by_name[span.name];
    if (agg.count == 0) {
      agg.name = span.name;
    }
    agg.count++;
    agg.total_ns += span.duration_ns();
    agg.max_ns = std::max(agg.max_ns, span.duration_ns());
    const auto kids = child_ns.find(span.span_id);
    const uint64_t nested = kids != child_ns.end() ? kids->second : 0;
    agg.self_ns += span.duration_ns() > nested ? span.duration_ns() - nested : 0;
  }
  std::vector<SpanAggregate> out;
  out.reserve(by_name.size());
  for (auto& [name, agg] : by_name) {
    out.push_back(std::move(agg));
  }
  std::sort(out.begin(), out.end(), [](const SpanAggregate& a, const SpanAggregate& b) {
    return a.total_ns != b.total_ns ? a.total_ns > b.total_ns : a.name < b.name;
  });
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  return static_cast<bool>(out);
}

}  // namespace rkd
