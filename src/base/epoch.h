// Epoch-based reclamation: the one read/update primitive of the datapath.
//
// The paper's premise is that learned policies live *in* kernel fast paths:
// many concurrent readers (hook fires), rare reconfiguration (table updates,
// model pushes, attach/detach). The kernel answer to that shape is RCU —
// readers mark a critical section, writers publish an immutable replacement
// and defer freeing the old version until every reader that could hold it
// has moved on. This header is the repo's userspace equivalent, and every
// versioned structure on the fire path (compiled table indexes, model slots,
// hook attachment lists) is built on it:
//
//   EpochDomain  - the grace-period machinery: a global epoch, one padded
//                  slot per reader thread, and three limbo buckets of
//                  retired objects.
//   EpochGuard   - RAII read-side critical section ("pin"). Nested pins on
//                  one thread are one increment; only the outermost pin
//                  touches the shared epoch word.
//   EpochPtr<T>  - an atomically replaceable pointer to an immutable
//                  snapshot: readers Load() under a guard, writers
//                  Publish() a replacement and the old snapshot is retired
//                  into the domain.
//
// Reclamation rule (lag-3): Retire() appends to bucket `epoch % 3`;
// advancing the global epoch from E to E+1 first frees bucket (E+1) % 3,
// whose objects were retired at epoch E-2 or earlier. A reader pinned at
// epoch P blocks any advance past P+1, so the oldest object a pinned reader
// can possibly hold (retired at P+1, by a writer racing the reader's pin)
// is freed no earlier than the advance to P+4 — two full grace periods
// after the reader unpinned. The release-store at unpin and the seq_cst
// slot scan at advance give the happens-before edge that makes the deferred
// free race-free (and ThreadSanitizer-clean).
//
// Who advances: ControlPlane::Tick / PolicyGuardian::Tick are the
// quiescence points (reconfiguration cadence), and Retire() opportunistically
// tries an advance once enough garbage accumulates so write-heavy phases
// without ticks stay bounded. Advancing never blocks: if any reader is
// still pinned in an older epoch the attempt just fails and the garbage
// waits.
//
// Contracts:
//   - Readers on concurrent paths MUST hold an EpochGuard across every
//     Load() and every dereference of the loaded snapshot.
//   - Writers serialize among themselves externally (control-plane mutex);
//     Publish/Retire are thread-safe against readers and each other.
//   - A domain (and anything retiring into it) must be destroyed only when
//     no reader is pinned; destruction drains all limbo buckets.
//   - At most kMaxReaders distinct threads may ever pin one domain.
#ifndef SRC_BASE_EPOCH_H_
#define SRC_BASE_EPOCH_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace rkd {

class EpochDomain {
 public:
  // Distinct threads that may ever enter read-side critical sections of one
  // domain. Slots are claimed once per (thread, domain) and never returned;
  // a quiescent slot (epoch 0) does not block advances.
  static constexpr size_t kMaxReaders = 64;

  // Retired objects that trigger an opportunistic advance attempt.
  static constexpr size_t kRetireBatch = 64;

  EpochDomain();
  ~EpochDomain();
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  // --- Writer side ---

  using Deleter = void (*)(void*);

  // Defers `deleter(obj)` until every reader that could hold `obj` has
  // unpinned (see the lag-3 rule above). nullptr is a no-op.
  void Retire(void* obj, Deleter deleter);

  template <typename T>
  void Retire(const T* obj) {
    if (obj != nullptr) {
      Retire(const_cast<void*>(static_cast<const void*>(obj)),
             [](void* p) { delete static_cast<T*>(p); });
    }
  }

  // One quiescence step: if no reader is pinned in an older epoch, frees the
  // eligible limbo bucket and bumps the global epoch. Returns whether the
  // epoch advanced. Never blocks.
  bool TryAdvance();

  // Blocks (spinning on TryAdvance) until two full grace periods elapse:
  // every reader pinned at entry has unpinned, so everything unlinked before
  // the call is unreachable. Must NOT be called while this thread holds an
  // EpochGuard on this domain (self-deadlock).
  void Synchronize();

  // --- Introspection ---

  uint64_t epoch() const { return global_epoch_.load(std::memory_order_acquire); }
  uint64_t retired() const { return retired_.load(std::memory_order_relaxed); }
  uint64_t reclaimed() const { return reclaimed_.load(std::memory_order_relaxed); }
  uint64_t pending() const { return retired() - reclaimed(); }
  uint64_t advances() const { return advances_.load(std::memory_order_relaxed); }

 private:
  friend class EpochGuard;

  struct alignas(64) Slot {
    // 0 = quiescent; otherwise the global epoch observed when pinning.
    std::atomic<uint64_t> epoch{0};
    // Nesting depth. Owner thread only, so no atomicity needed.
    uint32_t nest = 0;
  };

  // Slots live in a shared_ptr block so a thread's cached reference stays
  // valid even if the domain is destroyed first (test-local domains).
  struct SlotBlock {
    std::array<Slot, kMaxReaders> slots;
    std::atomic<uint32_t> claimed{0};
    std::atomic<bool> abandoned{false};
  };

  struct Retired {
    void* obj;
    Deleter deleter;
  };

  // Per-thread cache of claimed slots, keyed by domain id (ids are unique
  // for the process lifetime, so a recycled domain address can never alias a
  // stale cache entry).
  struct ThreadCache {
    struct Entry {
      uint64_t domain_id = 0;
      Slot* slot = nullptr;
      std::shared_ptr<SlotBlock> block;
    };
    std::array<Entry, 4> entries;
    size_t next_evict = 0;
  };

  static ThreadCache& Cache() {
    static thread_local ThreadCache cache;
    return cache;
  }

  Slot* Pin() {
    Slot* slot = SlotForThisThread();
    if (slot->nest++ != 0) {
      return slot;  // nested pin: the outer guard already holds the epoch
    }
    // Publish the observed epoch, then re-check it: without the re-check a
    // concurrent advance could scan this slot before the store lands and
    // treat the thread as quiescent one epoch too early — the seq_cst
    // store/load pair closes that window.
    uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    while (true) {
      slot->epoch.store(e, std::memory_order_seq_cst);
      const uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
      if (now == e) {
        break;
      }
      e = now;
    }
    return slot;
  }

  void Unpin(Slot* slot) {
    if (--slot->nest == 0) {
      // Release: everything this reader did happens-before the advance that
      // observes the slot quiescent (and thus before any deferred free).
      slot->epoch.store(0, std::memory_order_release);
    }
  }

  Slot* SlotForThisThread() {
    ThreadCache& cache = Cache();
    for (ThreadCache::Entry& entry : cache.entries) {
      if (entry.domain_id == id_ && entry.slot != nullptr) {
        return entry.slot;
      }
    }
    return ClaimSlot();
  }

  Slot* ClaimSlot();     // slow path: claim + install into the thread cache
  bool AdvanceLocked();  // requires limbo_mutex_

  const uint64_t id_;
  std::shared_ptr<SlotBlock> block_;
  std::atomic<uint64_t> global_epoch_{1};  // slot epoch 0 means quiescent

  std::mutex limbo_mutex_;
  std::array<std::vector<Retired>, 3> limbo_;  // guarded by limbo_mutex_
  size_t limbo_size_ = 0;                      // guarded by limbo_mutex_

  std::atomic<uint64_t> retired_{0};
  std::atomic<uint64_t> reclaimed_{0};
  std::atomic<uint64_t> advances_{0};
};

// RAII read-side critical section. Cheap enough for per-fire use: the
// outermost pin is two seq_cst accesses on a thread-private cache line plus
// the epoch load; nested pins are a plain increment.
class EpochGuard {
 public:
  explicit EpochGuard(EpochDomain& domain) : domain_(&domain), slot_(domain.Pin()) {}
  ~EpochGuard() { domain_->Unpin(slot_); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochDomain* domain_;
  EpochDomain::Slot* slot_;
};

// An atomically replaceable pointer to an immutable snapshot, owned by one
// writer-side structure. Readers Load() under an EpochGuard; the writer
// Publish()es a replacement and the displaced snapshot is retired into the
// domain. The destructor frees the final snapshot directly (destruction
// implies no readers, per the domain contract).
template <typename T>
class EpochPtr {
 public:
  EpochPtr() = default;
  explicit EpochPtr(T* initial) : ptr_(initial) {}
  ~EpochPtr() { delete ptr_.load(std::memory_order_relaxed); }

  EpochPtr(const EpochPtr&) = delete;
  EpochPtr& operator=(const EpochPtr&) = delete;

  // Moves are writer-context only (e.g. a table moved into its attachment
  // before any reader can see it).
  EpochPtr(EpochPtr&& other) noexcept
      : ptr_(other.ptr_.exchange(nullptr, std::memory_order_relaxed)) {}
  EpochPtr& operator=(EpochPtr&& other) noexcept {
    if (this != &other) {
      delete ptr_.exchange(other.ptr_.exchange(nullptr, std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
    return *this;
  }

  // Reader side. Requires an EpochGuard on the retiring domain whenever a
  // writer can run concurrently.
  T* Load() const { return ptr_.load(std::memory_order_acquire); }

  // Writer side: takes ownership of `next`, retires the displaced snapshot.
  void Publish(T* next, EpochDomain& domain) {
    T* old = ptr_.exchange(next, std::memory_order_acq_rel);
    domain.Retire(old);
  }

 private:
  std::atomic<T*> ptr_{nullptr};
};

// The process-wide domain the datapath retires into (tables, model slots,
// hook lists). Unit tests exercising reclamation edge cases build their own
// local EpochDomain instead.
EpochDomain& GlobalEpochDomain();

}  // namespace rkd

#endif  // SRC_BASE_EPOCH_H_
