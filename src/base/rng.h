// Deterministic pseudo-random number generation for rkd.
//
// Every stochastic component (workload generators, ML initialization, NAS
// search, DP noise) draws from an explicitly seeded Rng so that tests,
// examples, and benchmark tables are bit-for-bit reproducible. The generator
// is xoshiro256**, seeded through splitmix64 per its authors' recommendation.
#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

namespace rkd {

class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  // Re-seeds the full 256-bit state from a 64-bit seed via splitmix64.
  void Seed(uint64_t seed);

  // Uniform 64-bit draw; also satisfies the UniformRandomBitGenerator concept.
  uint64_t Next();
  uint64_t operator()() { return Next(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ull; }

  // Uniform integer in [0, bound). bound must be > 0. Uses Lemire rejection
  // to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Standard normal via Box-Muller (no cached spare; cheap enough here).
  double NextGaussian();

  // Bernoulli draw with probability p of true.
  bool NextBool(double p = 0.5);

  // Laplace(0, scale) draw; the DP noise primitive.
  double NextLaplace(double scale);

  // Fisher-Yates shuffle of [first, last).
  template <typename It>
  void Shuffle(It first, It last) {
    auto n = static_cast<uint64_t>(last - first);
    for (uint64_t i = n; i > 1; --i) {
      uint64_t j = NextBounded(i);
      std::swap(first[i - 1], first[j]);
    }
  }

 private:
  std::array<uint64_t, 4> state_{};
};

// Zipf(s, n) sampler over {0, ..., n-1} via precomputed CDF and binary search;
// used by the mixed-workload trace generator.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s);
  uint64_t Sample(Rng& rng) const;
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

}  // namespace rkd

#endif  // SRC_BASE_RNG_H_
