#include "src/base/failpoints.h"

#include <charconv>
#include <chrono>

namespace rkd {

namespace {

// Busy-wait so the injected latency is attributed to the site itself and
// lands in whatever latency histogram times the surrounding code. A sleep
// would deschedule and under-report on loaded machines.
void BusyWaitNs(uint64_t ns) {
  const auto now = [] {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };
  const uint64_t deadline = now() + ns;
  while (now() < deadline) {
    // spin
  }
}

Result<uint64_t> ParseU64(std::string_view text, std::string_view what) {
  uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return InvalidArgumentError("failpoint spec: bad " + std::string(what) + " '" +
                                std::string(text) + "'");
  }
  return value;
}

}  // namespace

std::optional<FailpointSpec> Failpoint::Fire() {
  if (!armed_.load(std::memory_order_relaxed)) {
    return std::nullopt;
  }
  FailpointSpec triggered;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    evaluations_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t hit = hits_++;
    bool fires = false;
    switch (spec_.mode) {
      case FailpointMode::kOff: fires = false; break;
      case FailpointMode::kAlways: fires = true; break;
      case FailpointMode::kFirstN: fires = hit < spec_.n; break;
      case FailpointMode::kEveryNth: fires = spec_.n > 0 && (hit + 1) % spec_.n == 0; break;
      case FailpointMode::kAfterN: fires = hit >= spec_.n; break;
    }
    if (!fires) {
      return std::nullopt;
    }
    triggers_.fetch_add(1, std::memory_order_relaxed);
    triggered = spec_;
  }
  if (triggered.latency_ns > 0) {
    BusyWaitNs(triggered.latency_ns);
  }
  return triggered;
}

void Failpoint::Enable(const FailpointSpec& spec) {
  const std::lock_guard<std::mutex> lock(mu_);
  spec_ = spec;
  hits_ = 0;
  evaluations_.store(0, std::memory_order_relaxed);
  triggers_.store(0, std::memory_order_relaxed);
  armed_.store(spec.mode != FailpointMode::kOff, std::memory_order_relaxed);
}

void Failpoint::Disable() {
  const std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
  spec_ = FailpointSpec{};
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

Failpoint* FailpointRegistry::Get(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(name);
  if (it != points_.end()) {
    return it->second.get();
  }
  return points_.emplace(std::string(name), std::make_unique<Failpoint>(std::string(name)))
      .first->second.get();
}

void FailpointRegistry::Enable(std::string_view name, const FailpointSpec& spec) {
  Get(name)->Enable(spec);
}

Status FailpointRegistry::Disable(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(name);
  if (it == points_.end()) {
    return NotFoundError("failpoint '" + std::string(name) + "' does not exist");
  }
  it->second->Disable();
  return OkStatus();
}

void FailpointRegistry::DisableAll() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, point] : points_) {
    point->Disable();
  }
}

std::vector<std::string> FailpointRegistry::Names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, point] : points_) {
    names.push_back(name);
  }
  return names;
}

Result<FailpointSpec> FailpointRegistry::ParseSpec(std::string_view text) {
  FailpointSpec spec;
  size_t start = 0;
  bool first = true;
  while (start <= text.size()) {
    const size_t plus = text.find('+', start);
    const std::string_view part =
        text.substr(start, plus == std::string_view::npos ? std::string_view::npos
                                                          : plus - start);
    const size_t colon = part.find(':');
    const std::string_view head = part.substr(0, colon);
    const std::string_view arg =
        colon == std::string_view::npos ? std::string_view() : part.substr(colon + 1);
    if (first) {
      // The leading component is the trigger mode.
      if (head == "off") {
        spec.mode = FailpointMode::kOff;
      } else if (head == "always") {
        spec.mode = FailpointMode::kAlways;
      } else if (head == "first") {
        spec.mode = FailpointMode::kFirstN;
        RKD_ASSIGN_OR_RETURN(spec.n, ParseU64(arg, "first count"));
      } else if (head == "every") {
        spec.mode = FailpointMode::kEveryNth;
        RKD_ASSIGN_OR_RETURN(spec.n, ParseU64(arg, "every period"));
      } else if (head == "after") {
        spec.mode = FailpointMode::kAfterN;
        RKD_ASSIGN_OR_RETURN(spec.n, ParseU64(arg, "after count"));
      } else {
        return InvalidArgumentError("failpoint spec: unknown mode '" + std::string(head) + "'");
      }
      first = false;
    } else if (head == "error") {
      spec.force_error = true;
    } else if (head == "latency") {
      RKD_ASSIGN_OR_RETURN(spec.latency_ns, ParseU64(arg, "latency"));
    } else if (head == "corrupt") {
      uint64_t bits = 0;
      RKD_ASSIGN_OR_RETURN(bits, ParseU64(arg, "corrupt mask"));
      spec.corrupt_xor = static_cast<int64_t>(bits);
    } else {
      return InvalidArgumentError("failpoint spec: unknown payload '" + std::string(head) + "'");
    }
    if (plus == std::string_view::npos) {
      break;
    }
    start = plus + 1;
  }
  return spec;
}

Status FailpointRegistry::EnableFromDirective(std::string_view directive) {
  const size_t eq = directive.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return InvalidArgumentError("failpoint directive must be '<name>=<spec>', got '" +
                                std::string(directive) + "'");
  }
  RKD_ASSIGN_OR_RETURN(FailpointSpec spec, ParseSpec(directive.substr(eq + 1)));
  Enable(directive.substr(0, eq), spec);
  return OkStatus();
}

}  // namespace rkd
