// Q16.16 fixed-point arithmetic.
//
// The paper (section 3.2) rules out floating point on the in-kernel inference
// path: enabling the FPU in kernel context is expensive, so learned models run
// on integer arithmetic ("integer-based learning"). Fixed32 is the numeric
// type every in-VM model (decision-tree thresholds, quantized MLP activations,
// linear-model weights) computes with. Training in "userspace" may use float;
// quantization converts to Fixed32/int8 before a model is admitted.
#ifndef SRC_BASE_FIXED_POINT_H_
#define SRC_BASE_FIXED_POINT_H_

#include <cstdint>
#include <limits>
#include <ostream>

namespace rkd {

class Fixed32 {
 public:
  static constexpr int kFractionBits = 16;
  static constexpr int32_t kOneRaw = 1 << kFractionBits;

  constexpr Fixed32() : raw_(0) {}

  // Named constructors keep int-vs-raw confusion impossible at call sites.
  static constexpr Fixed32 FromRaw(int32_t raw) { return Fixed32(raw); }
  static constexpr Fixed32 FromInt(int32_t value) {
    return Fixed32(static_cast<int32_t>(value << kFractionBits));
  }
  static Fixed32 FromDouble(double value) {
    return Fixed32(static_cast<int32_t>(value * kOneRaw + (value >= 0 ? 0.5 : -0.5)));
  }

  constexpr int32_t raw() const { return raw_; }
  constexpr int32_t ToInt() const { return raw_ >> kFractionBits; }
  constexpr double ToDouble() const { return static_cast<double>(raw_) / kOneRaw; }

  static constexpr Fixed32 Zero() { return Fixed32(0); }
  static constexpr Fixed32 One() { return Fixed32(kOneRaw); }
  static constexpr Fixed32 Max() { return Fixed32(std::numeric_limits<int32_t>::max()); }
  static constexpr Fixed32 Min() { return Fixed32(std::numeric_limits<int32_t>::min()); }

  // Saturating arithmetic: kernel-side inference must never trap on overflow,
  // so every op clamps to the representable range instead.
  friend Fixed32 operator+(Fixed32 a, Fixed32 b) {
    return FromRaw(Saturate(static_cast<int64_t>(a.raw_) + b.raw_));
  }
  friend Fixed32 operator-(Fixed32 a, Fixed32 b) {
    return FromRaw(Saturate(static_cast<int64_t>(a.raw_) - b.raw_));
  }
  friend Fixed32 operator*(Fixed32 a, Fixed32 b) {
    const int64_t wide = static_cast<int64_t>(a.raw_) * b.raw_;
    return FromRaw(Saturate(wide >> kFractionBits));
  }
  friend Fixed32 operator/(Fixed32 a, Fixed32 b) {
    if (b.raw_ == 0) {
      // Division by zero saturates toward the sign of the numerator; the
      // verifier additionally requires guarded divides in bytecode.
      return a.raw_ >= 0 ? Max() : Min();
    }
    const int64_t wide = (static_cast<int64_t>(a.raw_) << kFractionBits) / b.raw_;
    return FromRaw(Saturate(wide));
  }
  friend Fixed32 operator-(Fixed32 a) { return FromRaw(Saturate(-static_cast<int64_t>(a.raw_))); }

  Fixed32& operator+=(Fixed32 other) { return *this = *this + other; }
  Fixed32& operator-=(Fixed32 other) { return *this = *this - other; }
  Fixed32& operator*=(Fixed32 other) { return *this = *this * other; }
  Fixed32& operator/=(Fixed32 other) { return *this = *this / other; }

  friend constexpr bool operator==(Fixed32 a, Fixed32 b) { return a.raw_ == b.raw_; }
  friend constexpr bool operator!=(Fixed32 a, Fixed32 b) { return a.raw_ != b.raw_; }
  friend constexpr bool operator<(Fixed32 a, Fixed32 b) { return a.raw_ < b.raw_; }
  friend constexpr bool operator<=(Fixed32 a, Fixed32 b) { return a.raw_ <= b.raw_; }
  friend constexpr bool operator>(Fixed32 a, Fixed32 b) { return a.raw_ > b.raw_; }
  friend constexpr bool operator>=(Fixed32 a, Fixed32 b) { return a.raw_ >= b.raw_; }

 private:
  explicit constexpr Fixed32(int32_t raw) : raw_(raw) {}

  static constexpr int32_t Saturate(int64_t wide) {
    if (wide > std::numeric_limits<int32_t>::max()) {
      return std::numeric_limits<int32_t>::max();
    }
    if (wide < std::numeric_limits<int32_t>::min()) {
      return std::numeric_limits<int32_t>::min();
    }
    return static_cast<int32_t>(wide);
  }

  int32_t raw_;
};

inline std::ostream& operator<<(std::ostream& os, Fixed32 value) {
  return os << value.ToDouble();
}

// ReLU on fixed point; the activation the quantized MLPs use in-VM.
inline Fixed32 FixedRelu(Fixed32 x) { return x > Fixed32::Zero() ? x : Fixed32::Zero(); }

}  // namespace rkd

#endif  // SRC_BASE_FIXED_POINT_H_
