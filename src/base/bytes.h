// Bounds-checked little-endian byte stream reader/writer, shared by the
// bytecode and model serializers. Deliberately tiny: fixed-width integers
// and length-prefixed byte strings only.
#ifndef SRC_BASE_BYTES_H_
#define SRC_BASE_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace rkd {

class ByteWriter {
 public:
  template <typename T>
  void Put(T value) {
    static_assert(std::is_integral_v<T>);
    const size_t offset = bytes_.size();
    bytes_.resize(offset + sizeof(T));
    std::memcpy(&bytes_[offset], &value, sizeof(T));
  }

  void PutString(std::string_view s) {
    Put<uint32_t>(static_cast<uint32_t>(s.size()));
    const size_t offset = bytes_.size();
    bytes_.resize(offset + s.size());
    std::memcpy(bytes_.data() + offset, s.data(), s.size());
  }

  template <typename T>
  void PutArray(std::span<const T> values) {
    static_assert(std::is_integral_v<T>);
    Put<uint64_t>(values.size());
    const size_t offset = bytes_.size();
    bytes_.resize(offset + values.size_bytes());
    std::memcpy(bytes_.data() + offset, values.data(), values.size_bytes());
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  Result<T> Get() {
    static_assert(std::is_integral_v<T>);
    if (position_ + sizeof(T) > bytes_.size()) {
      return OutOfRangeError("byte stream truncated");
    }
    T value;
    std::memcpy(&value, &bytes_[position_], sizeof(T));
    position_ += sizeof(T);
    return value;
  }

  Result<std::string> GetString(size_t max_length = 1 << 16) {
    RKD_ASSIGN_OR_RETURN(uint32_t length, Get<uint32_t>());
    if (length > max_length || position_ + length > bytes_.size()) {
      return OutOfRangeError("string length out of range");
    }
    std::string out(reinterpret_cast<const char*>(&bytes_[position_]), length);
    position_ += length;
    return out;
  }

  template <typename T>
  Result<std::vector<T>> GetArray(size_t max_elements = 1 << 24) {
    static_assert(std::is_integral_v<T>);
    RKD_ASSIGN_OR_RETURN(uint64_t count, Get<uint64_t>());
    if (count > max_elements || position_ + count * sizeof(T) > bytes_.size()) {
      return OutOfRangeError("array length out of range");
    }
    std::vector<T> out(count);
    std::memcpy(out.data(), &bytes_[position_], count * sizeof(T));
    position_ += count * sizeof(T);
    return out;
  }

  bool AtEnd() const { return position_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - position_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t position_ = 0;
};

}  // namespace rkd

#endif  // SRC_BASE_BYTES_H_
