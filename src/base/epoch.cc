#include "src/base/epoch.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

namespace rkd {

namespace {

uint64_t NextDomainId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

EpochDomain::EpochDomain() : id_(NextDomainId()), block_(std::make_shared<SlotBlock>()) {}

EpochDomain::~EpochDomain() {
  // Destruction contract: no pinned readers, no concurrent writers. Threads
  // may still hold cached slot references through the shared block; mark it
  // abandoned so those cache entries become evictable.
  block_->abandoned.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(limbo_mutex_);
  for (std::vector<Retired>& bucket : limbo_) {
    for (const Retired& r : bucket) {
      r.deleter(r.obj);
    }
    reclaimed_.fetch_add(bucket.size(), std::memory_order_relaxed);
    bucket.clear();
  }
  limbo_size_ = 0;
}

EpochDomain::Slot* EpochDomain::ClaimSlot() {
  const uint32_t index = block_->claimed.fetch_add(1, std::memory_order_acq_rel);
  if (index >= kMaxReaders) {
    std::fprintf(stderr,
                 "rkd: EpochDomain reader-slot limit exceeded (%zu threads)\n",
                 kMaxReaders);
    std::abort();
  }
  Slot* slot = &block_->slots[index];

  // Install into the thread cache: prefer an empty or abandoned entry, then
  // round-robin evict. An evicted live entry only costs a re-claim if this
  // thread pins that domain again (slots are monotonic by design).
  ThreadCache& cache = Cache();
  ThreadCache::Entry* victim = nullptr;
  for (ThreadCache::Entry& entry : cache.entries) {
    if (entry.slot == nullptr || entry.block->abandoned.load(std::memory_order_acquire)) {
      victim = &entry;
      break;
    }
  }
  if (victim == nullptr) {
    victim = &cache.entries[cache.next_evict];
    cache.next_evict = (cache.next_evict + 1) % cache.entries.size();
  }
  victim->domain_id = id_;
  victim->slot = slot;
  victim->block = block_;
  return slot;
}

void EpochDomain::Retire(void* obj, Deleter deleter) {
  if (obj == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(limbo_mutex_);
  const uint64_t e = global_epoch_.load(std::memory_order_relaxed);
  limbo_[e % 3].push_back(Retired{obj, deleter});
  ++limbo_size_;
  retired_.fetch_add(1, std::memory_order_relaxed);
  // Keep garbage bounded during write-heavy phases that never tick: attempt
  // an advance once a batch accumulates. Failure (a reader still pinned in
  // an older epoch) is harmless — the next Retire or Tick retries.
  if (limbo_size_ >= kRetireBatch) {
    (void)AdvanceLocked();
  }
}

bool EpochDomain::TryAdvance() {
  std::lock_guard<std::mutex> lock(limbo_mutex_);
  return AdvanceLocked();
}

bool EpochDomain::AdvanceLocked() {
  const uint64_t current = global_epoch_.load(std::memory_order_relaxed);
  const uint32_t claimed = block_->claimed.load(std::memory_order_acquire);
  const uint32_t used = claimed < kMaxReaders ? claimed : kMaxReaders;
  for (uint32_t i = 0; i < used; ++i) {
    const uint64_t e = block_->slots[i].epoch.load(std::memory_order_seq_cst);
    if (e != 0 && e != current) {
      return false;  // a reader is still pinned in an older epoch
    }
  }
  // Every reader is quiescent or pinned at `current`, so nothing can hold an
  // object retired at `next - 3` or earlier: free that bucket, then open the
  // next epoch.
  const uint64_t next = current + 1;
  std::vector<Retired>& bucket = limbo_[next % 3];
  for (const Retired& r : bucket) {
    r.deleter(r.obj);
  }
  reclaimed_.fetch_add(bucket.size(), std::memory_order_relaxed);
  limbo_size_ -= bucket.size();
  bucket.clear();
  global_epoch_.store(next, std::memory_order_seq_cst);
  advances_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void EpochDomain::Synchronize() {
  // Two successful advances: the first retires the epoch every in-flight
  // reader could be pinned at, the second waits those readers out (a pinned
  // reader blocks any advance past its epoch + 1).
  int advanced = 0;
  while (advanced < 2) {
    if (TryAdvance()) {
      ++advanced;
    } else {
      std::this_thread::yield();
    }
  }
}

EpochDomain& GlobalEpochDomain() {
  static EpochDomain* domain = new EpochDomain();  // immortal: datapath outlives statics
  return *domain;
}

}  // namespace rkd
