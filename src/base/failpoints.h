// Deterministic fault injection (kernel-style failpoints).
//
// A failpoint is a named site in production code where a test, the chaos
// driver, or an operator can inject a failure: a forced error return, extra
// latency (busy-wait, so it also shows up in latency histograms), or bit
// corruption of the value produced at the site. Sites are compiled in
// unconditionally; a disarmed failpoint costs one relaxed atomic load, so
// datapath code (VM helper calls, map ops, model evaluation) can afford one.
//
// Determinism is the point: trigger modes are counter-based (always, first
// N, every Nth, after N), never probabilistic, so a test that arms
// `vm.helper` as `first:3+error` sees exactly three faults and can assert
// exact counter values. See DESIGN.md "Failure model & guard states".
#ifndef SRC_BASE_FAILPOINTS_H_
#define SRC_BASE_FAILPOINTS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace rkd {

// When an armed failpoint fires relative to its per-arming hit counter.
enum class FailpointMode {
  kOff,
  kAlways,    // every evaluation
  kFirstN,    // hits 0..n-1 only (a transient fault that clears)
  kEveryNth,  // hits n-1, 2n-1, ... (intermittent)
  kAfterN,    // hits n, n+1, ... (a fault that develops later)
};

// What the site should do when the failpoint triggers. Any combination is
// valid; a spec with no payload set still counts triggers (a pure probe).
struct FailpointSpec {
  FailpointMode mode = FailpointMode::kOff;
  uint64_t n = 0;           // parameter for kFirstN / kEveryNth / kAfterN
  bool force_error = false;  // site returns its injected-fault error
  uint64_t latency_ns = 0;   // busy-wait this long at the site
  int64_t corrupt_xor = 0;   // XOR into the site's produced value
};

// One named failpoint. Stable address for the process lifetime once created
// through the registry, so sites cache the pointer in a function-local
// static and never look it up again.
class Failpoint {
 public:
  explicit Failpoint(std::string name) : name_(std::move(name)) {}
  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  const std::string& name() const { return name_; }

  // The site-side check. Disarmed: one relaxed load, returns nullopt.
  // Armed: advances the hit counter, applies injected latency here (so the
  // site's own timing instrumentation observes it), and returns the spec
  // when the trigger mode says this hit fires.
  std::optional<FailpointSpec> Fire();

  // Arms the failpoint and resets the hit/trigger counters (so re-arming
  // in a fresh test starts a fresh deterministic sequence).
  void Enable(const FailpointSpec& spec);
  void Disable();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Counters since the last Enable(). `evaluations` counts armed Fire()
  // calls; `triggers` counts the subset that actually fired.
  uint64_t evaluations() const { return evaluations_.load(std::memory_order_relaxed); }
  uint64_t triggers() const { return triggers_.load(std::memory_order_relaxed); }

 private:
  const std::string name_;
  std::atomic<bool> armed_{false};
  std::mutex mu_;  // guards spec_ and the mode decision; armed path only
  FailpointSpec spec_;
  uint64_t hits_ = 0;  // under mu_
  std::atomic<uint64_t> evaluations_{0};
  std::atomic<uint64_t> triggers_{0};
};

// Process-wide name -> failpoint map. Pointers returned by Get() stay valid
// forever (the registry never erases).
class FailpointRegistry {
 public:
  static FailpointRegistry& Global();

  // Find-or-create. Never returns null.
  Failpoint* Get(std::string_view name);

  // Arm/disarm by name. Enable creates the failpoint if no site registered
  // it yet (the site picks up the armed spec on first evaluation).
  void Enable(std::string_view name, const FailpointSpec& spec);
  Status Disable(std::string_view name);  // NotFound if never created
  void DisableAll();

  std::vector<std::string> Names() const;

  // Parses the CLI directive syntax used by tools/rkd_chaos:
  //   <mode>          := off | always | first:<N> | every:<N> | after:<N>
  //   <payload>       := error | latency:<NS> | corrupt:<X>
  //   <spec>          := <mode>{+<payload>}
  // e.g. "first:3+error", "every:10+latency:50000", "always+corrupt:1".
  static Result<FailpointSpec> ParseSpec(std::string_view spec);

  // "name=spec" form; arms the named failpoint on success.
  Status EnableFromDirective(std::string_view directive);

 private:
  FailpointRegistry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Failpoint>, std::less<>> points_;
};

// RAII arming for tests: enables on construction, disables on destruction.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string_view name, const FailpointSpec& spec)
      : point_(FailpointRegistry::Global().Get(name)) {
    point_->Enable(spec);
  }
  ~ScopedFailpoint() { point_->Disable(); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  Failpoint& point() { return *point_; }

 private:
  Failpoint* point_;
};

// Site-side macro: resolves the named failpoint once (function-local
// static), then evaluates it. Yields std::optional<FailpointSpec>.
//
//   if (auto fault = RKD_FAILPOINT("vm.helper"); fault && fault->force_error)
//     return fail(InternalError("injected helper fault"));
#define RKD_FAILPOINT(name)                                                        \
  ([]() -> ::rkd::Failpoint* {                                                     \
    static ::rkd::Failpoint* rkd_fp__ = ::rkd::FailpointRegistry::Global().Get(name); \
    return rkd_fp__;                                                               \
  }())                                                                             \
      ->Fire()

}  // namespace rkd

#endif  // SRC_BASE_FAILPOINTS_H_
