#include "src/base/logging.h"

namespace rkd {

namespace {
LogLevel g_log_level = LogLevel::kWarning;

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace log_internal {

LogMessage::LogMessage(LogLevel level, std::string_view file, int line) : level_(level) {
  // Trim the path down to the basename for readability.
  const auto slash = file.find_last_of('/');
  if (slash != std::string_view::npos) {
    file.remove_prefix(slash + 1);
  }
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  (void)level_;
}

}  // namespace log_internal

}  // namespace rkd
