#include "src/base/status.h"

namespace rkd {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kPermissionDenied:
      return "permission_denied";
    case StatusCode::kVerificationFailed:
      return "verification_failed";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status PermissionDeniedError(std::string message) {
  return Status(StatusCode::kPermissionDenied, std::move(message));
}
Status VerificationFailedError(std::string message) {
  return Status(StatusCode::kVerificationFailed, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace rkd
