// Small statistics helpers shared by the simulators and bench harnesses.
#ifndef SRC_BASE_STATS_H_
#define SRC_BASE_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace rkd {

// Numerically stable running mean/variance (Welford).
class RunningStats {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
  }

  uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Keeps every sample; supports exact percentiles. Used where distributions
// (not just moments) matter, e.g. fault-latency tails in the memory sim.
//
// Threading contract: Percentile() sorts lazily, so it MUTATES the sample
// buffer — it is non-const and must never race with Add() (or another
// Percentile()) from a different thread. Readers that hold a quiesced
// Samples (no further Adds) should call Sort() once and then use the const
// PercentileSorted() path, which is safe to call concurrently.
class Samples {
 public:
  void Add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }

  uint64_t count() const { return values_.size(); }

  // Convenience single-threaded path: sorts lazily (mutating; see the class
  // contract above), then interpolates.
  double Percentile(double p) {
    Sort();
    return PercentileSorted(p);
  }

  // Sorts the buffer so PercentileSorted() becomes valid. Idempotent.
  void Sort() {
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
  }

  // Const percentile over a previously Sort()ed buffer; any Add() since the
  // last Sort() invalidates the precondition and the result falls back to
  // the unsorted buffer's interpolation (deterministic but meaningless).
  // Used by the benches, which sort once after the measurement loop.
  double PercentileSorted(double p) const {
    if (values_.empty()) {
      return 0.0;
    }
    const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
    const auto lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, values_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values_[lo] * (1.0 - frac) + values_[hi] * frac;
  }

  bool sorted() const { return sorted_; }

  double Mean() const {
    if (values_.empty()) {
      return 0.0;
    }
    double total = 0.0;
    for (double v : values_) {
      total += v;
    }
    return total / static_cast<double>(values_.size());
  }

 private:
  std::vector<double> values_;
  bool sorted_ = false;
};

// Confusion-matrix style accuracy tracking for binary predictors; drives the
// Table 2 "Acc (%)" column and the control plane's accuracy-triggered
// reconfiguration policy.
class BinaryAccuracy {
 public:
  void Record(bool predicted, bool actual) {
    if (predicted == actual) {
      predicted ? ++true_positive_ : ++true_negative_;
    } else {
      predicted ? ++false_positive_ : ++false_negative_;
    }
  }

  uint64_t total() const {
    return true_positive_ + true_negative_ + false_positive_ + false_negative_;
  }
  double accuracy() const {
    const uint64_t n = total();
    return n == 0 ? 0.0
                  : static_cast<double>(true_positive_ + true_negative_) / static_cast<double>(n);
  }
  double precision() const {
    const uint64_t denom = true_positive_ + false_positive_;
    return denom == 0 ? 0.0 : static_cast<double>(true_positive_) / static_cast<double>(denom);
  }
  double recall() const {
    const uint64_t denom = true_positive_ + false_negative_;
    return denom == 0 ? 0.0 : static_cast<double>(true_positive_) / static_cast<double>(denom);
  }

  uint64_t true_positive() const { return true_positive_; }
  uint64_t true_negative() const { return true_negative_; }
  uint64_t false_positive() const { return false_positive_; }
  uint64_t false_negative() const { return false_negative_; }

 private:
  uint64_t true_positive_ = 0;
  uint64_t true_negative_ = 0;
  uint64_t false_positive_ = 0;
  uint64_t false_negative_ = 0;
};

}  // namespace rkd

#endif  // SRC_BASE_STATS_H_
