#include "src/base/rng.h"

#include <algorithm>
#include <cmath>

namespace rkd {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  for (auto& word : state_) {
    word = SplitMix64(seed);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  const auto span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  while (u1 <= 0.0) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextLaplace(double scale) {
  // Inverse-CDF sampling: u uniform in (-1/2, 1/2).
  const double u = NextDouble() - 0.5;
  const double sign = (u < 0.0) ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), cdf_(n) {
  double total = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) {
    c /= total;
  }
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace rkd
