// Lightweight error-reporting types used across rkd instead of exceptions.
//
// Fallible library APIs return Status (no payload) or Result<T> (payload or
// error). Both carry a StatusCode plus a human-readable message that names the
// failing check, so verifier diagnostics and control-plane errors surface as
// actionable text rather than error numbers.
#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <cassert>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace rkd {

// Error taxonomy. Mirrors the classes of failure the paper's architecture
// distinguishes: malformed programs, verifier rejections, resource limits,
// and runtime faults inside the VM.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // Caller passed something structurally wrong.
  kNotFound,           // Named table/model/map/hook does not exist.
  kAlreadyExists,      // Install/insert collided with an existing object.
  kFailedPrecondition, // Operation is valid but not in the current state.
  kOutOfRange,         // Index/offset beyond a checked bound.
  kResourceExhausted,  // Budget exhausted (steps, privacy epsilon, memory).
  kDeadlineExceeded,   // Fire-time wall-clock budget exceeded.
  kPermissionDenied,   // Helper or hook not allowed for this program type.
  kVerificationFailed, // Static admission check rejected the program.
  kInternal,           // Invariant violation inside rkd itself.
};

// Returns a stable lowercase name for `code` ("ok", "invalid_argument", ...).
std::string_view StatusCodeName(StatusCode code);

// Status: either OK or an error code plus message. Cheap to copy when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use Status() or OkStatus() for success");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "verification_failed: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors, one per error code.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DeadlineExceededError(std::string message);
Status PermissionDeniedError(std::string message);
Status VerificationFailedError(std::string message);
Status InternalError(std::string message);

// Result<T>: a value or an error Status. Dereferencing a failed Result is a
// programming error (asserted in debug builds), matching the Core Guidelines
// advice to make misuse loud rather than silently undefined.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {    // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).ok() && "Result<T> built from OK status has no value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) {
      return kOkStatus;
    }
    return std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

// Propagates errors up the call stack without exceptions.
#define RKD_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::rkd::Status rkd_status__ = (expr);   \
    if (!rkd_status__.ok()) {              \
      return rkd_status__;                 \
    }                                      \
  } while (0)

// Unwraps a Result<T> into `lhs`, or returns its error. The two-level concat
// is required so __LINE__ expands before pasting.
#define RKD_CONCAT_INNER_(a, b) a##b
#define RKD_CONCAT_(a, b) RKD_CONCAT_INNER_(a, b)
#define RKD_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = std::move(tmp).value()
#define RKD_ASSIGN_OR_RETURN(lhs, expr) \
  RKD_ASSIGN_OR_RETURN_IMPL_(RKD_CONCAT_(rkd_result__, __LINE__), lhs, expr)

}  // namespace rkd

#endif  // SRC_BASE_STATUS_H_
