// Minimal leveled logging. Kept deliberately tiny: rkd libraries log only at
// kWarning and above by default so benchmark output stays clean; examples and
// tools can raise verbosity via SetLogLevel.
#ifndef SRC_BASE_LOGGING_H_
#define SRC_BASE_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string_view>

namespace rkd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is filtered out.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace log_internal

#define RKD_LOG(level)                                                            \
  (::rkd::LogLevel::level < ::rkd::GetLogLevel())                                 \
      ? (void)0                                                                   \
      : ::rkd::log_internal::Voidify() &                                          \
            ::rkd::log_internal::LogMessage(::rkd::LogLevel::level, __FILE__, __LINE__).stream()

}  // namespace rkd

#endif  // SRC_BASE_LOGGING_H_
