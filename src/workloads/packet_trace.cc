#include "src/workloads/packet_trace.h"

#include <algorithm>

namespace rkd {

namespace {

// splitmix64 finalizer: full-avalanche mix of a 64-bit value.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// One live connection. Rank is its popularity slot in the Zipf draw; the
// 5-tuple is regenerated on churn while the rank (and thus the rate class)
// survives, so churn replaces *connections*, not the traffic shape.
struct Flow {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t proto = 0;
  uint64_t digest = 0;
};

constexpr uint16_t kServicePorts[] = {80, 443, 53, 8080, 123, 25};

Flow MakeFlow(const PacketTraceConfig& config, size_t rank, Rng& rng) {
  Flow flow;
  flow.src_ip = static_cast<uint32_t>(0xC0A80000u + rng.NextBounded(1u << 16));
  const uint32_t prefix = static_cast<uint32_t>(rank) % std::max(1u, config.prefixes);
  flow.dst_ip = PrefixBase(prefix) + static_cast<uint32_t>(rng.NextBounded(256));
  flow.src_port = static_cast<uint16_t>(1024 + rng.NextBounded(64511));
  flow.dst_port = kServicePorts[rng.NextBounded(std::size(kServicePorts))];
  flow.proto = rng.NextBool(0.8) ? 6 : 17;
  flow.digest =
      FlowDigest(flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port, flow.proto);
  return flow;
}

PacketEvent MakePacket(const PacketTraceConfig& config, const Flow& flow, size_t rank,
                       Rng& rng) {
  PacketEvent pkt;
  pkt.flow_id = flow.digest;
  pkt.src_ip = flow.src_ip;
  pkt.dst_ip = flow.dst_ip;
  pkt.src_port = flow.src_port;
  pkt.dst_port = flow.dst_port;
  pkt.proto = flow.proto;
  // Elephants (top eighth of ranks) run near-MTU frames; mice send small
  // request/response datagrams. Length only shapes the byte-imbalance
  // metric, so a coarse two-class draw is enough.
  const bool elephant = rank < std::max<size_t>(1, config.flows / 8);
  pkt.length = elephant ? static_cast<uint16_t>(1000 + rng.NextBounded(501))
                        : static_cast<uint16_t>(64 + rng.NextBounded(449));
  pkt.ingress_queue =
      static_cast<uint16_t>(pkt.flow_id % std::max<uint16_t>(1, config.nic_queues));
  return pkt;
}

PacketEvent MakeFloodPacket(const PacketTraceConfig& config, Rng& rng) {
  PacketEvent pkt;
  // Spoofed source: unique per packet, so every flood frame is a new flow
  // that misses both the exact-match flow table and the curated ACL.
  pkt.src_ip = static_cast<uint32_t>(rng.Next());
  pkt.dst_ip = PrefixBase(config.victim_prefix) + static_cast<uint32_t>(rng.NextBounded(256));
  pkt.src_port = static_cast<uint16_t>(1024 + rng.NextBounded(64511));
  pkt.dst_port = config.victim_port;
  pkt.proto = 17;
  pkt.length = 64;
  pkt.flow_id = FlowDigest(pkt.src_ip, pkt.dst_ip, pkt.src_port, pkt.dst_port, pkt.proto);
  pkt.ingress_queue =
      static_cast<uint16_t>(pkt.flow_id % std::max<uint16_t>(1, config.nic_queues));
  pkt.flood = true;
  return pkt;
}

}  // namespace

uint64_t FlowDigest(uint32_t src_ip, uint32_t dst_ip, uint16_t src_port,
                    uint16_t dst_port, uint8_t proto) {
  uint64_t packed = (static_cast<uint64_t>(src_ip) << 32) | dst_ip;
  packed = Mix64(packed);
  packed ^= (static_cast<uint64_t>(src_port) << 24) ^ (static_cast<uint64_t>(dst_port) << 8) ^
            proto;
  return Mix64(packed);
}

PacketTrace MakePacketTrace(const PacketTraceConfig& config, Rng& rng) {
  PacketTrace trace;
  trace.reserve(config.packets);
  if (config.packets == 0 || config.flows == 0) {
    return trace;
  }

  std::vector<Flow> active;
  active.reserve(config.flows);
  for (size_t rank = 0; rank < config.flows; ++rank) {
    active.push_back(MakeFlow(config, rank, rng));
  }
  const ZipfSampler popularity(config.flows, config.zipf_skew);

  const size_t flood_lo = static_cast<size_t>(config.flood_begin * config.packets);
  const size_t flood_hi = static_cast<size_t>(config.flood_end * config.packets);

  size_t churn_countdown = config.churn_interval;
  while (trace.size() < config.packets) {
    const size_t at = trace.size();
    const bool in_flood_window =
        config.flood_prob > 0.0 && at >= flood_lo && at < flood_hi;
    if (in_flood_window && rng.NextBool(config.flood_prob)) {
      trace.push_back(MakeFloodPacket(config, rng));
      continue;
    }

    // Schedule one flow and let it burst.
    const size_t rank = popularity.Sample(rng);
    size_t train = 1;
    while (train < config.max_burst && rng.NextBool(config.burst_continue)) {
      ++train;
    }
    for (size_t i = 0; i < train && trace.size() < config.packets; ++i) {
      trace.push_back(MakePacket(config, active[rank], rank, rng));
    }

    if (config.churn_interval > 0) {
      if (churn_countdown <= train) {
        // Retire one random connection; a fresh tuple inherits its rank.
        const size_t victim = rng.NextBounded(config.flows);
        active[victim] = MakeFlow(config, victim, rng);
        churn_countdown = config.churn_interval;
      } else {
        churn_countdown -= train;
      }
    }
  }
  return trace;
}

}  // namespace rkd
