// Synthetic packet traces for the network RX case study.
//
// The net datapath (src/sim/net/) steers, classifies, and drops packets; the
// only properties its two policies differ on are the *flow structure* of the
// traffic, so that is what these generators reproduce:
//
//   Zipf flow mix: a handful of elephant flows carry most bytes while a long
//   tail of mice carries the rest. Static RSS hash steering is oblivious to
//   rates, so two elephants that collide on a hash bucket overload one RX
//   queue — the imbalance a rate-aware learned steer can remove.
//
//   Bursts: packets of one flow arrive back-to-back (GRO/LRO trains), so
//   per-flow state written on one packet is immediately useful for the next.
//
//   Flow churn: connections retire and new ones replace them, bounding the
//   useful lifetime of any exact-match flow-table entry (the LRU pressure).
//
//   Attack-like floods: windows of spoofed-source datagrams toward one
//   victim service. Every flood packet is a brand-new flow (it misses the
//   exact-match table) and matches no curated ACL entry (it misses the
//   ternary table) — precisely the traffic a static pipeline passes through
//   to the slow path and a learned drop policy can cut at the hook.
//
// All generators are deterministic given (config, seed).
#ifndef SRC_WORKLOADS_PACKET_TRACE_H_
#define SRC_WORKLOADS_PACKET_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/rng.h"

namespace rkd {

struct PacketEvent {
  uint64_t flow_id = 0;    // stable 5-tuple digest (exact-match flow key)
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t proto = 0;       // 6 = TCP, 17 = UDP
  uint16_t length = 0;     // frame bytes
  uint16_t ingress_queue = 0;  // NIC RSS delivery queue (pre-policy hint)
  bool flood = false;      // generator ground truth: part of an attack flood
};

using PacketTrace = std::vector<PacketEvent>;

// Deterministic 5-tuple digest used as the flow key everywhere (generator,
// tables, context store). splitmix64-style finalizer over the packed tuple.
uint64_t FlowDigest(uint32_t src_ip, uint32_t dst_ip, uint16_t src_port,
                    uint16_t dst_port, uint8_t proto);

// The ternary classification key the datapath matches ACL entries against:
// proto in bits [32,40), src_port in [16,32), dst_port in [0,16).
inline uint64_t ClassifyKey(const PacketEvent& pkt) {
  return (static_cast<uint64_t>(pkt.proto) << 32) |
         (static_cast<uint64_t>(pkt.src_port) << 16) |
         static_cast<uint64_t>(pkt.dst_port);
}

// Destination address layout: flows target /24 prefixes carved out of
// 10.0.0.0/8, one per route-table entry. Prefix p covers hosts
// [PrefixBase(p), PrefixBase(p) + 256).
inline uint32_t PrefixBase(uint32_t prefix) {
  return 0x0A000000u | (prefix << 8);
}

struct PacketTraceConfig {
  size_t packets = 1 << 16;
  size_t flows = 512;           // concurrent flow population
  double zipf_skew = 1.1;       // flow popularity skew (rank 0 = top elephant)
  uint32_t prefixes = 64;       // dst /24 prefixes the flows spread across
  uint16_t nic_queues = 8;      // RSS delivery queues (ingress_queue hint)

  // Bursts: each scheduled flow emits a geometric train of packets.
  double burst_continue = 0.6;  // P(train continues after each packet)
  size_t max_burst = 32;

  // Flow churn: every `churn_interval` packets one active flow retires and a
  // fresh 5-tuple takes over its popularity rank. 0 disables churn.
  size_t churn_interval = 512;

  // Attack flood: inside the window [flood_begin, flood_end) (fractions of
  // the trace), each packet slot is a spoofed-source flood datagram with
  // probability flood_prob. Flood packets are 64-byte UDP toward the victim
  // prefix's service port, each from a never-seen source (ternary-miss,
  // flow-table-miss by construction).
  double flood_begin = 0.0;
  double flood_end = 0.0;       // flood_end <= flood_begin disables the flood
  double flood_prob = 0.0;
  uint32_t victim_prefix = 0;   // dst prefix the flood targets
  uint16_t victim_port = 53;    // dst service port the flood targets
};

// The full mix: Zipf-weighted bursty flows with churn and optional flood
// windows, per the config. Deterministic given (config, rng state).
PacketTrace MakePacketTrace(const PacketTraceConfig& config, Rng& rng);

}  // namespace rkd

#endif  // SRC_WORKLOADS_PACKET_TRACE_H_
