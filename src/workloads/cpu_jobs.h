// CPU job models for the scheduler case study (Table 2).
//
// The paper uses PARSEC's blackscholes and streamcluster plus Fibonacci and
// matrix-multiplication programs. These task-behaviour models generate the
// same *scheduling-relevant* structure — how work is distributed across
// tasks, whether tasks synchronize at barriers, and how large each task's
// cache footprint is — which is what the CFS load balancer's 15 features
// (and therefore the MLP that mimics it) actually see.
//
//   Blackscholes:  embarrassingly parallel; equal chunks, no barriers.
//   Streamcluster: phase-structured; all tasks barrier between phases, with
//                  phase lengths varying, creating periodic imbalance.
//   Fib:           recursive fork-style imbalance; task sizes geometric,
//                  arrivals staggered.
//   MatMul:        regular blocked compute with large per-task cache
//                  footprint (migration is expensive: cache-hot most of the
//                  time).
#ifndef SRC_WORKLOADS_CPU_JOBS_H_
#define SRC_WORKLOADS_CPU_JOBS_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/base/rng.h"

namespace rkd {

enum class JobKind { kBlackscholes, kStreamcluster, kFib, kMatMul };

std::string_view JobKindName(JobKind kind);

struct TaskSpec {
  int64_t pid = 0;
  uint64_t arrival_tick = 0;
  uint64_t total_work = 0;     // ticks of CPU needed
  uint64_t phase_work = 0;     // ticks per barrier phase; 0 = no barriers
  int32_t weight = 1024;       // CFS load weight
  int64_t cache_footprint = 0; // pages; drives the cache-hotness feature
  // Blocking behaviour (memory stalls, I/O): after run_burst executed ticks
  // the task sleeps sleep_ticks, then wakes on the waker's core. 0 = never
  // blocks.
  uint64_t run_burst = 0;
  uint64_t sleep_ticks = 0;
};

struct JobSpec {
  JobKind kind = JobKind::kBlackscholes;
  std::vector<TaskSpec> tasks;
  uint32_t num_phases = 0;  // > 0 for barrier-structured jobs
};

struct JobConfig {
  size_t num_tasks = 16;
  uint64_t base_work = 2000;  // ticks; scaled per kind
  uint64_t seed = 11;
};

JobSpec MakeJob(JobKind kind, const JobConfig& config = {});

}  // namespace rkd

#endif  // SRC_WORKLOADS_CPU_JOBS_H_
