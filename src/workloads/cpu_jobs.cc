#include "src/workloads/cpu_jobs.h"

#include <algorithm>

namespace rkd {

std::string_view JobKindName(JobKind kind) {
  switch (kind) {
    case JobKind::kBlackscholes:
      return "blackscholes";
    case JobKind::kStreamcluster:
      return "streamcluster";
    case JobKind::kFib:
      return "fib";
    case JobKind::kMatMul:
      return "matmul";
  }
  return "unknown";
}

JobSpec MakeJob(JobKind kind, const JobConfig& config) {
  Rng rng(config.seed);
  JobSpec job;
  job.kind = kind;
  int64_t next_pid = 100;

  switch (kind) {
    case JobKind::kBlackscholes: {
      // Equal option-pricing chunks; small per-task working set; tasks all
      // arrive at t=0. Slight work jitter models input-dependent pricing.
      for (size_t i = 0; i < config.num_tasks; ++i) {
        TaskSpec task;
        task.pid = next_pid++;
        task.arrival_tick = 0;
        task.total_work =
            config.base_work + static_cast<uint64_t>(rng.NextInt(0, config.base_work / 10));
        task.cache_footprint = 64;
        task.run_burst = 400;   // occasional page-fault stalls
        task.sleep_ticks = 5;
        job.tasks.push_back(task);
      }
      break;
    }
    case JobKind::kStreamcluster: {
      // Barrier phases: every task does phase_work then waits for peers.
      job.num_phases = 8;
      for (size_t i = 0; i < config.num_tasks; ++i) {
        TaskSpec task;
        task.pid = next_pid++;
        task.arrival_tick = 0;
        task.phase_work =
            config.base_work / job.num_phases +
            static_cast<uint64_t>(rng.NextInt(0, config.base_work / (4 * job.num_phases)));
        task.total_work = task.phase_work * job.num_phases;
        task.cache_footprint = 256;
        task.run_burst = 250;   // stream reads stall on memory
        task.sleep_ticks = 4;
        job.tasks.push_back(task);
      }
      break;
    }
    case JobKind::kFib: {
      // Geometric task-size distribution with staggered arrivals, mimicking
      // recursive spawning: a few large subproblems and a long tail of tiny
      // ones.
      uint64_t arrival = 0;
      for (size_t i = 0; i < config.num_tasks; ++i) {
        TaskSpec task;
        task.pid = next_pid++;
        task.arrival_tick = arrival;
        const uint64_t shrink = std::min<uint64_t>(i / 2, 6);
        task.total_work = std::max<uint64_t>(config.base_work >> shrink, 32);
        task.cache_footprint = 16;
        task.run_burst = 300;   // recursion spills trigger short stalls
        task.sleep_ticks = 3;
        job.tasks.push_back(task);
        arrival += static_cast<uint64_t>(rng.NextInt(0, 64));
      }
      break;
    }
    case JobKind::kMatMul: {
      // Regular blocked compute; big cache footprint makes migration costly.
      for (size_t i = 0; i < config.num_tasks; ++i) {
        TaskSpec task;
        task.pid = next_pid++;
        task.arrival_tick = 0;
        task.total_work = config.base_work;
        task.cache_footprint = 1024;
        task.run_burst = 150;   // memory-bound: frequent stalls
        task.sleep_ticks = 10;
        job.tasks.push_back(task);
      }
      break;
    }
  }
  return job;
}

}  // namespace rkd
