// Page-access trace generators for the memory case study (Table 1).
//
// The paper drives its prefetching evaluation with an OpenCV video-resize
// application and a NumPy matrix-convolution program. Neither is available
// here, so these generators reproduce the *access structure* those programs
// exhibit — which is the only property the three prefetchers differ on:
//
//   Video resize: per output frame, the resizer walks the source frame and
//   the destination frame in interleaved row-major order. Because the two
//   frames live in different address regions, the delta stream alternates
//   between a small intra-row stride and a large inter-region jump — a
//   *periodic multi-delta* pattern. A sequential detector (Linux readahead)
//   only credits the small strides; a majority-stride detector (Leap) locks
//   onto the most common delta and misses the alternation; a learned model
//   conditioned on recent deltas captures the whole cycle.
//
//   Matrix convolution: an im2col-style sweep reads a KxK neighborhood per
//   output element: K-1 unit strides then a row jump of (width - K + 1),
//   repeated K times, then a tile jump. Again periodic multi-delta, with an
//   even smaller sequential fraction, which is why Linux collapses to ~12%
//   accuracy in the paper while the learned model exceeds 90%.
//
// All generators are deterministic given (config, seed).
#ifndef SRC_WORKLOADS_ACCESS_TRACE_H_
#define SRC_WORKLOADS_ACCESS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/rng.h"

namespace rkd {

struct AccessEvent {
  uint64_t pid = 0;
  int64_t page = 0;
};

using AccessTrace = std::vector<AccessEvent>;

// Pure sequential scan: pages start, start+1, ...
AccessTrace MakeSequentialTrace(uint64_t pid, int64_t start, size_t length);

// Fixed-stride scan with optional per-access noise (random page with
// probability noise_prob).
AccessTrace MakeStridedTrace(uint64_t pid, int64_t start, int64_t stride, size_t length,
                             double noise_prob, Rng& rng);

// Uniformly random pages in [0, page_space).
AccessTrace MakeRandomTrace(uint64_t pid, int64_t page_space, size_t length, Rng& rng);

// Zipf-distributed pages (hot-set skew), for cache-pollution stress tests.
AccessTrace MakeZipfTrace(uint64_t pid, int64_t page_space, double skew, size_t length,
                          Rng& rng);

// Video-resize read pattern, two passes per frame like a planar-YUV resizer:
//
//   Luma pass (bilinear): each output row interpolates from two consecutive
//   source rows, so the reader alternates between row y and row y+1 while
//   stepping columns by the scale factor. Page-delta stream:
//     +width, -width+scale, +width, -width+scale, ...   (a 2-cycle)
//   No +1 runs and no strict-majority delta: sequential readahead only
//   profits from its fallback cluster accidentally covering column steps,
//   and Leap's majority vote finds nothing.
//
//   Chroma pass (subsampled nearest-neighbour): a single-stride scan over
//   the chroma plane with column step = scale. One dominant delta — the
//   pattern Leap was built for — which gives Leap its modest edge over
//   Linux on this workload (45.4% vs 40.7% in the paper's Table 1).
//
// A learned model conditioned on recent deltas captures both passes.
struct VideoResizeConfig {
  uint64_t pid = 1;
  int64_t src_base = 4096;       // first page of the source frame buffer
  int64_t width_pages = 24;      // pages per source row
  int64_t output_rows = 16;      // output rows per frame (reads 2 src rows each)
  int64_t scale = 3;             // downscale factor (column step)
  int64_t frames = 24;
  double noise_prob = 0.01;      // stray accesses (metadata, code pages)
};
AccessTrace MakeVideoResizeTrace(const VideoResizeConfig& config, Rng& rng);

// im2col-style convolution sweep: for each output tile the reader grabs a
// two-page column span from `kernel` consecutive rows, then jumps
// `tile_step` pages to the next tile. With kernel = 3 the page-delta stream
// is the uniform 6-cycle
//   +1, +width-1, +1, +width-1, +1, -2*width + tile_step - 1
// Consequences per prefetcher: the readahead cluster launched at the start
// of a pair covers exactly the +1 page and wastes the rest (the paper's
// 12.5%-accuracy regime for Linux); +1 holds exactly half the stream, so
// Leap's strict-majority vote fails and its short fallback scores in the
// middle; the learned model conditioned on the last four deltas resolves
// every position of the cycle. Band tile phases are staggered so straight
// stride extrapolation cannot luck into the next band.
struct MatrixConvConfig {
  uint64_t pid = 2;
  int64_t input_base = 1 << 16;
  int64_t width_pages = 96;   // pages per matrix row
  int64_t height = 720;       // rows
  int64_t kernel = 3;         // rows per neighborhood column
  int64_t tile_step = 16;     // pages between consecutive tile columns
  double noise_prob = 0.005;
};
AccessTrace MakeMatrixConvTrace(const MatrixConvConfig& config, Rng& rng);

// Round-robin interleave of several single-process traces into one
// multi-process trace (cross-application workloads).
AccessTrace Interleave(const std::vector<AccessTrace>& traces);

}  // namespace rkd

#endif  // SRC_WORKLOADS_ACCESS_TRACE_H_
