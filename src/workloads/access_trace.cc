#include "src/workloads/access_trace.h"

#include <algorithm>

namespace rkd {

AccessTrace MakeSequentialTrace(uint64_t pid, int64_t start, size_t length) {
  AccessTrace trace;
  trace.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    trace.push_back(AccessEvent{pid, start + static_cast<int64_t>(i)});
  }
  return trace;
}

AccessTrace MakeStridedTrace(uint64_t pid, int64_t start, int64_t stride, size_t length,
                             double noise_prob, Rng& rng) {
  AccessTrace trace;
  trace.reserve(length);
  int64_t page = start;
  for (size_t i = 0; i < length; ++i) {
    if (noise_prob > 0.0 && rng.NextBool(noise_prob)) {
      trace.push_back(AccessEvent{pid, rng.NextInt(0, start + static_cast<int64_t>(length) *
                                                           std::max<int64_t>(1, stride))});
      continue;
    }
    trace.push_back(AccessEvent{pid, page});
    page += stride;
  }
  return trace;
}

AccessTrace MakeRandomTrace(uint64_t pid, int64_t page_space, size_t length, Rng& rng) {
  AccessTrace trace;
  trace.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    trace.push_back(AccessEvent{pid, rng.NextInt(0, page_space - 1)});
  }
  return trace;
}

AccessTrace MakeZipfTrace(uint64_t pid, int64_t page_space, double skew, size_t length,
                          Rng& rng) {
  const ZipfSampler sampler(static_cast<uint64_t>(page_space), skew);
  AccessTrace trace;
  trace.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    trace.push_back(AccessEvent{pid, static_cast<int64_t>(sampler.Sample(rng))});
  }
  return trace;
}

AccessTrace MakeVideoResizeTrace(const VideoResizeConfig& config, Rng& rng) {
  AccessTrace trace;
  const int64_t width = config.width_pages;
  const int64_t luma_pages = 2 * config.output_rows * width;
  const int64_t chroma_pages = luma_pages;  // 4:4:4 planes: chroma as large as luma
  const int64_t frame_pages = luma_pages + chroma_pages;
  for (int64_t frame = 0; frame < config.frames; ++frame) {
    const int64_t base = config.src_base + frame * frame_pages;
    // Luma pass: bilinear two-row alternation.
    for (int64_t y = 0; y < config.output_rows; ++y) {
      const int64_t row0 = base + 2 * y * width;
      for (int64_t x = 0; x < width; x += config.scale) {
        if (config.noise_prob > 0.0 && rng.NextBool(config.noise_prob)) {
          trace.push_back(AccessEvent{config.pid, rng.NextInt(0, config.src_base - 1)});
        }
        trace.push_back(AccessEvent{config.pid, row0 + x});          // source row 2y
        trace.push_back(AccessEvent{config.pid, row0 + width + x});  // source row 2y+1
      }
    }
    // Chroma pass: single-stride (2) subsampled scan — one dominant delta.
    const int64_t chroma_base = base + luma_pages;
    for (int64_t p = 0; p < chroma_pages; p += 2) {
      if (config.noise_prob > 0.0 && rng.NextBool(config.noise_prob)) {
        trace.push_back(AccessEvent{config.pid, rng.NextInt(0, config.src_base - 1)});
      }
      trace.push_back(AccessEvent{config.pid, chroma_base + p});
    }
  }
  return trace;
}

AccessTrace MakeMatrixConvTrace(const MatrixConvConfig& config, Rng& rng) {
  AccessTrace trace;
  const int64_t width = config.width_pages;
  // Non-overlapping bands of `kernel` rows; within a band, walk tile columns
  // (tile_step pages apart), reading a two-page span from each of the band's
  // rows. Band tile phases are staggered so a deep straight-stride guess
  // from one band does not accidentally land on the next band's tiles.
  int64_t band_index = 0;
  for (int64_t band = 0; band + config.kernel <= config.height; band += config.kernel) {
    const int64_t phase = (band_index * 7) % config.tile_step;
    ++band_index;
    for (int64_t col = phase; col + 1 < width; col += config.tile_step) {
      for (int64_t kr = 0; kr < config.kernel; ++kr) {
        if (config.noise_prob > 0.0 && rng.NextBool(config.noise_prob)) {
          trace.push_back(AccessEvent{config.pid, rng.NextInt(0, config.input_base - 1)});
        }
        const int64_t row_page = config.input_base + (band + kr) * width + col;
        trace.push_back(AccessEvent{config.pid, row_page});
        trace.push_back(AccessEvent{config.pid, row_page + 1});
      }
    }
  }
  return trace;
}

AccessTrace Interleave(const std::vector<AccessTrace>& traces) {
  AccessTrace out;
  size_t total = 0;
  for (const AccessTrace& trace : traces) {
    total += trace.size();
  }
  out.reserve(total);
  std::vector<size_t> cursor(traces.size(), 0);
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t t = 0; t < traces.size(); ++t) {
      if (cursor[t] < traces[t].size()) {
        out.push_back(traces[t][cursor[t]++]);
        progress = true;
      }
    }
  }
  return out;
}

}  // namespace rkd
