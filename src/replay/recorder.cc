#include "src/replay/recorder.h"

#include "src/ml/serialize.h"

namespace rkd {

ExperienceRecorder::ExperienceRecorder(HookRegistry* hooks, ExperienceRecorderConfig config)
    : hooks_(hooks), config_(std::move(config)) {
  log_.source = config_.source;
  recorded_metric_ = hooks_->telemetry().GetCounter("rkd.replay.recorded");
  dropped_metric_ = hooks_->telemetry().GetCounter("rkd.replay.record_dropped");
}

ExperienceRecorder::~ExperienceRecorder() { Detach(); }

Status ExperienceRecorder::Track(HookId id, DecisionSource source, std::string label_kind) {
  if (id < 0 || static_cast<size_t>(id) >= hooks_->size()) {
    return NotFoundError("recorder: cannot track invalid hook id");
  }
  if (static_cast<size_t>(id) >= tracked_.size()) {
    tracked_.resize(static_cast<size_t>(id) + 1);
  }
  Tracked& t = tracked_[static_cast<size_t>(id)];
  if (t.tracked) {
    return AlreadyExistsError("recorder: hook '" + hooks_->NameOf(id) +
                              "' is already tracked");
  }
  ExperienceHookInfo info;
  info.name = hooks_->NameOf(id);
  info.kind = hooks_->KindOf(id);
  info.decision_source = source;
  info.label_kind = std::move(label_kind);
  t.tracked = true;
  t.corpus_index = static_cast<uint32_t>(log_.hooks.size());
  log_.hooks.push_back(std::move(info));
  return OkStatus();
}

void ExperienceRecorder::Attach() {
  hooks_->set_event_sink(this);
  attached_ = true;
}

void ExperienceRecorder::Detach() {
  if (attached_ && hooks_->event_sink() == this) {
    hooks_->set_event_sink(nullptr);
  }
  attached_ = false;
}

ExperienceRecord* ExperienceRecorder::Append(ExperienceRecordKind kind) {
  if (Full()) {
    ++dropped_;
    dropped_metric_->Increment();
    return nullptr;
  }
  log_.records.emplace_back();
  log_.records.back().kind = kind;
  ++recorded_;
  recorded_metric_->Increment();
  return &log_.records.back();
}

void ExperienceRecorder::OnFire(HookId id, uint64_t key, std::span<const int64_t> args,
                                int64_t result) {
  if (id < 0 || static_cast<size_t>(id) >= tracked_.size() ||
      !tracked_[static_cast<size_t>(id)].tracked) {
    return;
  }
  Tracked& t = tracked_[static_cast<size_t>(id)];
  ExperienceRecord* rec = Append(ExperienceRecordKind::kFire);
  if (rec == nullptr) {
    // Buffer full: staged entries for this fire must still be consumed so
    // later fires do not pair with stale ones, and last_fire must go stale
    // too — otherwise the caller's post-fire AnnotateDecision/SetLabel for
    // THIS (dropped) fire would clobber the previous recorded one.
    if (!t.staged.empty()) {
      t.staged.pop_front();
    }
    if (!t.staged_labels.empty()) {
      t.staged_labels.pop_front();
    }
    t.last_fire = kNoFire;
    return;
  }
  rec->hook_index = t.corpus_index;
  const SubsystemBindings& bindings = hooks_->BindingsOf(id);
  rec->vtime = bindings.now ? bindings.now() : 0;
  rec->key = key;
  rec->num_args = static_cast<uint8_t>(args.size() < kExperienceMaxArgs ? args.size()
                                                                        : kExperienceMaxArgs);
  for (uint8_t i = 0; i < rec->num_args; ++i) {
    rec->args[i] = args[i];
  }
  rec->action = result;
  if (!t.staged.empty()) {
    rec->ctxt_features = std::move(t.staged.front());
    t.staged.pop_front();
  }
  t.last_fire = log_.records.size() - 1;
  if (!t.staged_labels.empty()) {
    const int64_t label = t.staged_labels.front();
    t.staged_labels.pop_front();
    SetLabel(t.last_fire, label);
  }
}

void ExperienceRecorder::StageLabel(HookId id, int64_t label) {
  if (id < 0 || static_cast<size_t>(id) >= tracked_.size() ||
      !tracked_[static_cast<size_t>(id)].tracked) {
    return;
  }
  tracked_[static_cast<size_t>(id)].staged_labels.push_back(label);
}

void ExperienceRecorder::StageContextFeatures(HookId id, std::span<const int32_t> lanes) {
  if (id < 0 || static_cast<size_t>(id) >= tracked_.size() ||
      !tracked_[static_cast<size_t>(id)].tracked) {
    return;
  }
  tracked_[static_cast<size_t>(id)].staged.emplace_back(lanes.begin(), lanes.end());
}

uint64_t ExperienceRecorder::last_fire(HookId id) const {
  if (id < 0 || static_cast<size_t>(id) >= tracked_.size()) {
    return kNoFire;
  }
  return tracked_[static_cast<size_t>(id)].last_fire;
}

void ExperienceRecorder::AnnotateDecision(uint64_t handle, int64_t decision) {
  if (handle >= log_.records.size() ||
      log_.records[handle].kind != ExperienceRecordKind::kFire) {
    return;
  }
  log_.records[handle].action = decision;
}

void ExperienceRecorder::SetLabel(uint64_t handle, int64_t label) {
  if (handle >= log_.records.size() ||
      log_.records[handle].kind != ExperienceRecordKind::kFire) {
    return;
  }
  ExperienceRecord& rec = log_.records[handle];
  rec.label = label;
  rec.flags |= kExperienceLabeled;
  if (rec.action == label) {
    rec.flags |= kExperienceRecordedMatch;
  } else {
    rec.flags &= static_cast<uint8_t>(~kExperienceRecordedMatch);
  }
}

void ExperienceRecorder::RecordMapWrite(int64_t map_id, int64_t key, int64_t value) {
  ExperienceRecord* rec = Append(ExperienceRecordKind::kMapWrite);
  if (rec == nullptr) {
    return;
  }
  rec->map_id = map_id;
  rec->map_key = key;
  rec->map_value = value;
}

Status ExperienceRecorder::RecordModelInstall(int64_t slot, const InferenceModel& model) {
  RKD_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, SerializeModel(model));
  ExperienceRecord* rec = Append(ExperienceRecordKind::kModelInstall);
  if (rec == nullptr) {
    return ResourceExhaustedError("recorder: corpus buffer full, model install dropped");
  }
  rec->model_slot = slot;
  rec->model_bytes = std::move(bytes);
  return OkStatus();
}

Status ExperienceRecorder::Flush(const std::string& path) {
  return WriteExperienceLog(path, log_);
}

ExperienceLog ExperienceRecorder::TakeLog() {
  ExperienceLog out = std::move(log_);
  log_ = ExperienceLog();
  log_.source = config_.source;
  log_.hooks = out.hooks;  // tracked hook set survives the flush
  for (Tracked& t : tracked_) {
    t.last_fire = kNoFire;
    t.staged.clear();
    t.staged_labels.clear();
  }
  return out;
}

}  // namespace rkd
