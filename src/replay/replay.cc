#include "src/replay/replay.h"

#include <algorithm>
#include <cstdio>

#include "src/bytecode/isa.h"
#include "src/ml/serialize.h"
#include "src/vm/context_store.h"

namespace rkd {

namespace {

void AppendRate(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6f", key, value);
  out += buf;
}

void AppendCount(std::string& out, const char* key, uint64_t value) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

}  // namespace

double DivergenceReport::decision_match_rate() const {
  uint64_t fires = 0;
  uint64_t matches = 0;
  for (const HookDivergence& h : hooks) {
    fires += h.fires;
    matches += h.decision_matches;
  }
  return fires == 0 ? 1.0 : static_cast<double>(matches) / static_cast<double>(fires);
}

uint64_t DivergenceReport::labeled_fires() const {
  uint64_t labeled = 0;
  for (const HookDivergence& h : hooks) {
    labeled += h.labeled;
  }
  return labeled;
}

double DivergenceReport::counterfactual_score() const {
  uint64_t labeled = 0;
  uint64_t matches = 0;
  for (const HookDivergence& h : hooks) {
    labeled += h.labeled;
    matches += h.label_matches;
  }
  return labeled == 0 ? -1.0 : static_cast<double>(matches) / static_cast<double>(labeled);
}

double DivergenceReport::recorded_score() const {
  uint64_t labeled = 0;
  uint64_t matches = 0;
  for (const HookDivergence& h : hooks) {
    labeled += h.labeled;
    matches += h.recorded_label_matches;
  }
  return labeled == 0 ? -1.0 : static_cast<double>(matches) / static_cast<double>(labeled);
}

uint64_t DivergenceReport::total_exec_errors() const {
  uint64_t errors = 0;
  for (const HookDivergence& h : hooks) {
    errors += h.exec_errors;
  }
  return errors;
}

std::string DivergenceReport::Serialize() const {
  std::string out;
  out.reserve(512 + hooks.size() * 196);
  out += "{\"corpus\":{\"source\":\"" + corpus_source + "\",";
  AppendCount(out, "fingerprint", corpus_fingerprint);
  out += ',';
  AppendCount(out, "records", corpus_records);
  out += ',';
  AppendCount(out, "fires", corpus_fires);
  out += "},\"program\":\"" + program + "\",\"tier\":\"";
  out += tier == ExecTier::kJit ? "jit" : "interpreter";
  out += "\",\"hooks\":[";
  for (size_t i = 0; i < hooks.size(); ++i) {
    const HookDivergence& h = hooks[i];
    if (i > 0) {
      out += ',';
    }
    out += "{\"hook\":\"" + h.hook + "\",";
    AppendCount(out, "fires", h.fires);
    out += ',';
    AppendCount(out, "decision_matches", h.decision_matches);
    out += ',';
    AppendRate(out, "decision_match_rate", h.decision_match_rate());
    out += ',';
    AppendCount(out, "labeled", h.labeled);
    out += ',';
    AppendCount(out, "label_matches", h.label_matches);
    out += ',';
    AppendCount(out, "recorded_label_matches", h.recorded_label_matches);
    out += ',';
    AppendCount(out, "exec_errors", h.exec_errors);
    out += '}';
  }
  out += "],";
  AppendRate(out, "decision_match_rate", decision_match_rate());
  out += ',';
  AppendRate(out, "counterfactual_score", counterfactual_score());
  out += ',';
  AppendRate(out, "recorded_score", recorded_score());
  out += ',';
  AppendCount(out, "replay_exec_errors", total_exec_errors());
  out += ',';
  AppendCount(out, "map_write_errors", map_write_errors);
  out += ',';
  AppendCount(out, "model_install_rejects", model_install_rejects);
  out += ',';
  AppendCount(out, "context_write_errors", context_write_errors);
  out += '}';
  return out;
}

ReplayEngine::ReplayEngine(TelemetryRegistry* telemetry) : telemetry_(telemetry) {}

Result<DivergenceReport> ReplayEngine::Replay(const ExperienceLog& log,
                                              const RmtProgramSpec& candidate,
                                              const ReplayOptions& options) {
  const uint64_t start_ns = MonotonicNowNs();

  // Sandbox: the corpus's hook set, re-registered in index order, driven by
  // a virtual clock pinned to the record under replay and a private emit
  // sink for kFirstEmit decision extraction.
  uint64_t current_vtime = 0;
  std::vector<int64_t> emits;
  HookRegistry sandbox;
  if (options.trace_sample_every > 0) {
    sandbox.telemetry().tracer().set_sample_every(options.trace_sample_every);
  } else {
    sandbox.telemetry().tracer().set_sample_every(0);
  }
  SubsystemBindings bindings;
  bindings.now = [&current_vtime] { return current_vtime; };
  bindings.prefetch_emit = [&emits](int64_t first, int64_t count) {
    for (int64_t i = 0; i < count; ++i) {
      emits.push_back(first + i);
    }
  };
  bindings.priority_hint = [](int64_t, int64_t) {};
  std::vector<HookId> hook_ids;
  hook_ids.reserve(log.hooks.size());
  for (const ExperienceHookInfo& info : log.hooks) {
    RKD_ASSIGN_OR_RETURN(HookId id, sandbox.Register(info.name, info.kind, bindings));
    hook_ids.push_back(id);
  }

  ControlPlane cp(&sandbox);
  RKD_ASSIGN_OR_RETURN(ControlPlane::ProgramHandle handle,
                       cp.Install(candidate, options.tier));
  InstalledProgram* program = cp.Get(handle);

  DivergenceReport report;
  report.corpus_source = log.source;
  report.corpus_fingerprint = log.fingerprint;
  report.corpus_records = log.records.size();
  report.corpus_fires = log.fire_count();
  report.program = candidate.name;
  report.tier = options.tier;
  report.hooks.resize(log.hooks.size());
  for (size_t i = 0; i < log.hooks.size(); ++i) {
    report.hooks[i].hook = log.hooks[i].name;
  }

  for (const ExperienceRecord& rec : log.records) {
    switch (rec.kind) {
      case ExperienceRecordKind::kMapWrite:
        if (!cp.WriteMap(handle, rec.map_id, rec.map_key, rec.map_value).ok()) {
          ++report.map_write_errors;
        }
        break;
      case ExperienceRecordKind::kModelInstall: {
        Result<ModelPtr> model = DeserializeModel(rec.model_bytes);
        if (!model.ok() || !cp.InstallModel(handle, rec.model_slot, *model).ok()) {
          ++report.model_install_rejects;
        }
        break;
      }
      case ExperienceRecordKind::kFire: {
        const ExperienceHookInfo& info = log.hooks[rec.hook_index];
        HookDivergence& tally = report.hooks[rec.hook_index];
        current_vtime = rec.vtime;
        if (!rec.ctxt_features.empty()) {
          ContextEntry* entry = program->context().FindOrCreate(rec.key);
          if (entry == nullptr) {
            ++report.context_write_errors;
          } else {
            entry->features.fill(0);
            const size_t lanes =
                std::min<size_t>(rec.ctxt_features.size(), entry->features.size());
            for (size_t lane = 0; lane < lanes; ++lane) {
              entry->features[lane] = rec.ctxt_features[lane];
            }
          }
        }
        emits.clear();
        const int64_t result = sandbox.Fire(
            hook_ids[rec.hook_index], rec.key,
            std::span<const int64_t>(rec.args.data(), rec.num_args));
        const int64_t decision = info.decision_source == DecisionSource::kResult
                                     ? result
                                     : (emits.empty() ? kHookFallback : emits.front());
        ++tally.fires;
        if (decision == rec.action) {
          ++tally.decision_matches;
        }
        if ((rec.flags & kExperienceLabeled) != 0) {
          ++tally.labeled;
          if (decision == rec.label) {
            ++tally.label_matches;
          }
          if ((rec.flags & kExperienceRecordedMatch) != 0) {
            ++tally.recorded_label_matches;
          }
        }
        break;
      }
    }
  }

  // Candidate action faults during replay, per hook, from the sandbox's own
  // latency/error telemetry (the corpus hook order is the registration
  // order, so indices line up).
  for (size_t i = 0; i < hook_ids.size(); ++i) {
    report.hooks[i].exec_errors = sandbox.MetricsOf(hook_ids[i]).exec_errors();
  }

  if (options.capture_spans != nullptr) {
    *options.capture_spans = sandbox.telemetry().tracer().Snapshot();
  }

  if (telemetry_ != nullptr) {
    telemetry_->GetCounter("rkd.replay.replays")->Increment();
    telemetry_->GetCounter("rkd.replay.replay_fires")->Increment(report.corpus_fires);
    uint64_t divergences = 0;
    for (const HookDivergence& h : report.hooks) {
      divergences += h.fires - h.decision_matches;
    }
    telemetry_->GetCounter("rkd.replay.replay_divergences")->Increment(divergences);
    telemetry_->GetCounter("rkd.replay.replay_errors")->Increment(report.total_exec_errors());
    telemetry_->GetHistogram("rkd.replay.replay_ns")->Record(MonotonicNowNs() - start_ns);
  }
  return report;
}

}  // namespace rkd
