// The experience corpus: a versioned, checksummed, length-prefixed binary
// log of everything that happened at the hook points during one recorded
// run.
//
// The paper's control plane keeps swapping learned programs into live hook
// points; the expensive question is whether a candidate is safe and better
// BEFORE it touches traffic. KML answers this for storage ML by validating
// models offline against captured workload traces — this log is that
// capture. Three record kinds interleave in arrival order:
//
//   kFire          one hook fire: (hook, virtual time, key, args), the
//                  decision the incumbent made, an optional outcome label
//                  the simulator resolved after the fact ("the page actually
//                  accessed next", "what the stock heuristic said"), and an
//                  optional pre-fire context-feature snapshot for hooks whose
//                  actions read externally-written state.
//   kMapWrite      a control-plane map write (knob moves, vocabulary
//                  publishes) — replayed so candidate actions read the same
//                  configuration the incumbent did at that point in time.
//   kModelInstall  a serialized model push (src/ml/serialize wire form) —
//                  replayed so kMlCall resolves the same model the incumbent
//                  had installed at that point in the stream.
//
// Every record is length-prefixed and CRC32-guarded, so a truncated,
// bit-flipped, or version-skewed corpus is a structured Status error naming
// the failing byte offset — never a crash, never a silently dropped tail.
#ifndef SRC_REPLAY_EXPERIENCE_LOG_H_
#define SRC_REPLAY_EXPERIENCE_LOG_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/bytecode/program.h"

namespace rkd {

inline constexpr uint32_t kExperienceMagic = 0x52444b52;  // "RKDR"
inline constexpr uint32_t kExperienceVersion = 1;

// CRC-32 (IEEE 802.3 polynomial, reflected). Shared by the record guard and
// the whole-corpus fingerprint the DivergenceReport embeds.
uint32_t Crc32(std::span<const uint8_t> bytes, uint32_t seed = 0);

// How a hook's "decision" is derived, both at record time and at replay
// time. The two sides MUST agree, so the choice is stamped into the corpus
// header per hook.
enum class DecisionSource : uint8_t {
  kResult = 0,     // the hook's Fire() return value (sched.can_migrate_task)
  kFirstEmit = 1,  // first page pushed through prefetch_emit (-1 when none)
};

// One hook point of the recorded registry. Replay re-registers hooks with
// these names/kinds in a sandboxed HookRegistry, in index order.
struct ExperienceHookInfo {
  std::string name;
  HookKind kind = HookKind::kGeneric;
  DecisionSource decision_source = DecisionSource::kResult;
  std::string label_kind;  // human-readable label semantic ("" = unlabeled hook)
};

enum class ExperienceRecordKind : uint8_t {
  kFire = 0,
  kMapWrite = 1,
  kModelInstall = 2,
};

// Fire-record flags.
inline constexpr uint8_t kExperienceLabeled = 1u << 0;
// The incumbent's decision satisfied the label at record time (the baseline
// the counterfactual score is compared against).
inline constexpr uint8_t kExperienceRecordedMatch = 1u << 1;

inline constexpr size_t kExperienceMaxArgs = 4;

// One log record. Flat struct covering all three kinds; which fields are
// meaningful depends on `kind`.
struct ExperienceRecord {
  ExperienceRecordKind kind = ExperienceRecordKind::kFire;

  // kFire fields.
  uint32_t hook_index = 0;
  uint64_t vtime = 0;  // the subsystem's now() at the fire (replay pins it)
  uint64_t key = 0;
  uint8_t num_args = 0;
  std::array<int64_t, kExperienceMaxArgs> args{};
  int64_t action = 0;  // the recorded decision (per-hook DecisionSource)
  uint8_t flags = 0;
  int64_t label = 0;                  // valid when kExperienceLabeled
  std::vector<int32_t> ctxt_features; // pre-fire feature snapshot (may be empty)

  // kMapWrite fields.
  int64_t map_id = 0;
  int64_t map_key = 0;
  int64_t map_value = 0;

  // kModelInstall fields.
  int64_t model_slot = 0;
  std::vector<uint8_t> model_bytes;  // src/ml/serialize wire form
};

// A loaded (or under-construction) corpus.
struct ExperienceLog {
  std::string source;  // recording subsystem ("prefetcher", "cfs", ...)
  std::vector<ExperienceHookInfo> hooks;
  std::vector<ExperienceRecord> records;
  // CRC32 of the serialized byte stream; filled by Serialize/Deserialize so
  // reports can name exactly which corpus produced them.
  uint32_t fingerprint = 0;

  uint64_t fire_count() const {
    uint64_t n = 0;
    for (const ExperienceRecord& r : records) {
      n += r.kind == ExperienceRecordKind::kFire ? 1 : 0;
    }
    return n;
  }
};

// Serializes the corpus (header + length-prefixed, CRC-guarded records).
// Updates `log.fingerprint` as a side effect. The RKD_FAILPOINT site
// "replay.log_write" can force an error or flip a byte of the output.
Result<std::vector<uint8_t>> SerializeExperienceLog(ExperienceLog& log);

// Parses and validates a corpus. Any structural damage — bad magic, version
// skew, truncation, a record whose CRC does not match — is a Status error
// whose message names the failing byte offset; no partially-parsed tail is
// ever returned. The RKD_FAILPOINT site "replay.log_read" can inject the
// same failures deterministically.
Result<ExperienceLog> DeserializeExperienceLog(std::span<const uint8_t> bytes);

// File convenience wrappers around the serializers.
Status WriteExperienceLog(const std::string& path, ExperienceLog& log);
Result<ExperienceLog> ReadExperienceLog(const std::string& path);

}  // namespace rkd

#endif  // SRC_REPLAY_EXPERIENCE_LOG_H_
