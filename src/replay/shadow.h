// ShadowGate: the replay-backed implementation of ControlPlane's
// ShadowEvaluator — the offline admission stage between "a candidate
// program exists" and "the candidate sees live traffic as a canary".
//
// The gate holds one or more recorded experience corpora. Evaluate()
// replays the candidate against every corpus (ReplayEngine, deterministic)
// and admits it only when, on each corpus:
//
//   * the replay exec-error rate stays within max_error_rate (a candidate
//     that faults on recorded traffic has no business near a hook point),
//   * decision divergence (1 - decision_match_rate) stays within
//     max_divergence, and
//   * when the corpus carries at least min_labeled outcome labels, the
//     candidate's counterfactual score is no worse than the incumbent's
//     recorded score by more than min_score_delta.
//
// On rejection the gate dumps a flight recording of the failing replay
// (Perfetto JSON, same format as the guardian's breach dumps) so the spans
// of the diverging candidate survive for post-mortem.
#ifndef SRC_REPLAY_SHADOW_H_
#define SRC_REPLAY_SHADOW_H_

#include <string>
#include <vector>

#include "src/replay/replay.h"

namespace rkd {

struct ShadowGateConfig {
  // Upper bound on (1 - decision_match_rate) per corpus.
  double max_divergence = 0.25;
  // The candidate's counterfactual score may trail the incumbent's recorded
  // score by at most this much (negative values allow a small regression).
  double min_score_delta = 0.0;
  // Labeled fires a corpus needs before the score check applies.
  uint64_t min_labeled = 16;
  // Upper bound on replayed action faults / fires. 0 = any fault rejects.
  double max_error_rate = 0.0;
  // Directory for rejection flight dumps ("" disables dumping).
  std::string flight_recorder_dir;
  // Tracer sampling inside the replay sandbox while dumping is enabled
  // (1 = trace every replayed fire).
  uint32_t trace_sample_every = 16;
};

class ShadowGate final : public ShadowEvaluator {
 public:
  explicit ShadowGate(ShadowGateConfig config = {}, TelemetryRegistry* telemetry = nullptr);

  // Corpus management. Evaluate() fails until at least one corpus is added.
  void AddCorpus(ExperienceLog corpus);
  Status AddCorpusFile(const std::string& path);
  size_t corpus_count() const { return corpora_.size(); }

  // ShadowEvaluator. The verdict's `report` field is a deterministic JSON
  // array holding one DivergenceReport per corpus, in AddCorpus order.
  Result<Verdict> Evaluate(const RmtProgramSpec& candidate, ExecTier tier) override;

  uint64_t flight_dumps() const { return flight_dumps_; }
  const std::string& last_flight_dump() const { return last_flight_dump_; }

 private:
  void DumpFlightRecorder(const std::string& program, const std::string& reason,
                          const std::vector<SpanRecord>& spans);

  ShadowGateConfig config_;
  TelemetryRegistry* telemetry_;  // not owned; may be null
  std::vector<ExperienceLog> corpora_;
  uint64_t flight_dumps_ = 0;
  std::string last_flight_dump_;
};

}  // namespace rkd

#endif  // SRC_REPLAY_SHADOW_H_
