// ExperienceRecorder: the live capture side of record/replay.
//
// Hangs off HookRegistry's event sink and appends one kFire record per hook
// fire into a bounded in-memory ExperienceLog. The owning simulator enriches
// the stream through small side channels:
//
//   StageContextFeatures   before Fire, for hooks whose actions read
//                          externally-written context lanes (the CFS oracle
//                          publishes Q16 features before every query);
//   AnnotateDecision       after Fire, for hooks whose decision is not the
//                          Fire() result (the prefetcher's decision is the
//                          first emitted page, visible only to the caller);
//   SetLabel               when the simulator later learns the outcome (the
//                          page actually referenced next, the stock
//                          heuristic's verdict);
//   RecordMapWrite /       control-plane reconfiguration (knob moves,
//   RecordModelInstall     vocabulary publishes, model pushes) interleaved
//                          at their true position in the stream, so replay
//                          reproduces the incumbent's full state evolution.
//
// OnFire runs on the datapath, so the append path is one tracked-hook table
// lookup plus a vector push; when the bounded buffer fills, further records
// are counted as dropped, never blocking the datapath.
#ifndef SRC_REPLAY_RECORDER_H_
#define SRC_REPLAY_RECORDER_H_

#include <deque>
#include <string>
#include <vector>

#include "src/ml/model.h"
#include "src/replay/experience_log.h"
#include "src/rmt/hooks.h"

namespace rkd {

struct ExperienceRecorderConfig {
  std::string source;             // stamped into the corpus header
  size_t max_records = 1 << 20;   // bounded buffering: append stops here
};

class ExperienceRecorder final : public HookEventSink {
 public:
  // A fire-record handle (index into the log's record vector), or kNoFire.
  static constexpr uint64_t kNoFire = ~0ull;

  explicit ExperienceRecorder(HookRegistry* hooks, ExperienceRecorderConfig config = {});
  ~ExperienceRecorder() override;

  // Declares that fires of `id` are captured, stamping the decision
  // derivation and label semantic into the corpus header. Untracked hooks
  // fire through the sink unrecorded.
  Status Track(HookId id, DecisionSource source, std::string label_kind = "");

  // Install/remove this recorder as the registry's event sink.
  void Attach();
  void Detach();

  // HookEventSink. Captures (hook, vtime via the hook's now() binding, key,
  // args, result) plus any staged context lanes.
  void OnFire(HookId id, uint64_t key, std::span<const int64_t> args,
              int64_t result) override;

  // Side channels (see file comment). StageLabel is the pre-fire variant of
  // SetLabel for labels already known before the fire (the stock heuristic's
  // verdict); staged entries pair with fires in order, so it also works for
  // FireBatch, where per-fire handles are not observable from the caller.
  void StageContextFeatures(HookId id, std::span<const int32_t> lanes);
  void StageLabel(HookId id, int64_t label);
  uint64_t last_fire(HookId id) const;
  void AnnotateDecision(uint64_t handle, int64_t decision);
  void SetLabel(uint64_t handle, int64_t label);
  void RecordMapWrite(int64_t map_id, int64_t key, int64_t value);
  Status RecordModelInstall(int64_t slot, const InferenceModel& model);

  // Capture status.
  uint64_t recorded() const { return recorded_; }
  uint64_t dropped() const { return dropped_; }
  const ExperienceLog& log() const { return log_; }

  // Explicit flush: serializes the buffered corpus to `path`. The buffer is
  // kept, so a longer run can flush checkpoints of a growing corpus.
  Status Flush(const std::string& path);
  // Moves the corpus out, leaving an empty buffer (tracked hooks survive).
  ExperienceLog TakeLog();

 private:
  struct Tracked {
    bool tracked = false;
    uint32_t corpus_index = 0;
    uint64_t last_fire = kNoFire;
    std::deque<std::vector<int32_t>> staged;  // pre-fire feature snapshots
    std::deque<int64_t> staged_labels;        // pre-fire outcome labels
  };

  bool Full() const { return log_.records.size() >= config_.max_records; }
  ExperienceRecord* Append(ExperienceRecordKind kind);

  HookRegistry* hooks_;  // not owned
  ExperienceRecorderConfig config_;
  ExperienceLog log_;
  std::vector<Tracked> tracked_;  // indexed by HookId
  bool attached_ = false;
  uint64_t recorded_ = 0;
  uint64_t dropped_ = 0;
  Counter* recorded_metric_ = nullptr;  // rkd.replay.recorded
  Counter* dropped_metric_ = nullptr;   // rkd.replay.record_dropped
};

}  // namespace rkd

#endif  // SRC_REPLAY_RECORDER_H_
