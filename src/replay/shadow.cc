#include "src/replay/shadow.h"

#include <cctype>
#include <cstdio>

#include "src/telemetry/trace_export.h"

namespace rkd {

namespace {

std::string FormatRate(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  return buf;
}

}  // namespace

ShadowGate::ShadowGate(ShadowGateConfig config, TelemetryRegistry* telemetry)
    : config_(std::move(config)), telemetry_(telemetry) {}

void ShadowGate::AddCorpus(ExperienceLog corpus) {
  corpora_.push_back(std::move(corpus));
}

Status ShadowGate::AddCorpusFile(const std::string& path) {
  RKD_ASSIGN_OR_RETURN(ExperienceLog corpus, ReadExperienceLog(path));
  corpora_.push_back(std::move(corpus));
  return OkStatus();
}

Result<ShadowEvaluator::Verdict> ShadowGate::Evaluate(const RmtProgramSpec& candidate,
                                                      ExecTier tier) {
  if (corpora_.empty()) {
    return FailedPreconditionError("shadow gate has no experience corpus loaded");
  }

  ReplayEngine engine(telemetry_);
  Verdict verdict;
  verdict.admitted = true;

  // Aggregates across corpora for the verdict's scalar summary.
  uint64_t fires = 0;
  uint64_t matches = 0;
  uint64_t labeled = 0;
  uint64_t label_matches = 0;
  uint64_t recorded_matches = 0;

  std::string reports = "[";
  std::vector<SpanRecord> reject_spans;
  for (size_t i = 0; i < corpora_.size(); ++i) {
    const ExperienceLog& corpus = corpora_[i];
    ReplayOptions options;
    options.tier = tier;
    std::vector<SpanRecord> spans;
    if (!config_.flight_recorder_dir.empty()) {
      options.trace_sample_every = config_.trace_sample_every;
      options.capture_spans = &spans;
    }
    RKD_ASSIGN_OR_RETURN(DivergenceReport report, engine.Replay(corpus, candidate, options));
    if (i > 0) {
      reports += ',';
    }
    reports += report.Serialize();

    uint64_t corpus_fires = 0;
    for (const HookDivergence& h : report.hooks) {
      corpus_fires += h.fires;
      fires += h.fires;
      matches += h.decision_matches;
      labeled += h.labeled;
      label_matches += h.label_matches;
      recorded_matches += h.recorded_label_matches;
    }
    verdict.replay_exec_errors += report.total_exec_errors();

    // Threshold checks, most damning first. The first breach across all
    // corpora names the verdict's reason; later corpora still replay so the
    // archived report array always covers the full corpus set.
    if (verdict.admitted) {
      const double error_rate =
          corpus_fires == 0 ? 0.0
                            : static_cast<double>(report.total_exec_errors()) /
                                  static_cast<double>(corpus_fires);
      const double divergence = 1.0 - report.decision_match_rate();
      if (error_rate > config_.max_error_rate) {
        verdict.admitted = false;
        verdict.reason = "replay exec-error rate " + FormatRate(error_rate) + " on corpus '" +
                         corpus.source + "' above " + FormatRate(config_.max_error_rate);
      } else if (divergence > config_.max_divergence) {
        verdict.admitted = false;
        verdict.reason = "decision divergence " + FormatRate(divergence) + " on corpus '" +
                         corpus.source + "' above " + FormatRate(config_.max_divergence);
      } else if (report.labeled_fires() >= config_.min_labeled &&
                 report.counterfactual_score() <
                     report.recorded_score() - config_.min_score_delta) {
        verdict.admitted = false;
        verdict.reason = "counterfactual score " + FormatRate(report.counterfactual_score()) +
                         " on corpus '" + corpus.source + "' below incumbent " +
                         FormatRate(report.recorded_score()) + " - delta " +
                         FormatRate(config_.min_score_delta);
      }
      if (!verdict.admitted) {
        reject_spans = std::move(spans);
      }
    }
  }
  reports += ']';

  verdict.decision_match_rate =
      fires == 0 ? 1.0 : static_cast<double>(matches) / static_cast<double>(fires);
  verdict.counterfactual_score =
      labeled == 0 ? -1.0 : static_cast<double>(label_matches) / static_cast<double>(labeled);
  verdict.recorded_score =
      labeled == 0 ? -1.0
                   : static_cast<double>(recorded_matches) / static_cast<double>(labeled);
  verdict.report = std::move(reports);

  if (!verdict.admitted) {
    DumpFlightRecorder(candidate.name, verdict.reason, reject_spans);
  }
  return verdict;
}

void ShadowGate::DumpFlightRecorder(const std::string& program, const std::string& reason,
                                    const std::vector<SpanRecord>& spans) {
  if (config_.flight_recorder_dir.empty()) {
    return;
  }
  TraceExportOptions options;
  options.program = program;
  options.reason = reason;
  std::string safe_name = program;
  for (char& c : safe_name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  const std::string path = config_.flight_recorder_dir + "/flight_shadow_" + safe_name + "_" +
                           std::to_string(flight_dumps_ + 1) + ".json";
  if (WriteTextFile(path, ExportPerfettoTrace(spans, options))) {
    ++flight_dumps_;
    last_flight_dump_ = path;
  }
}

}  // namespace rkd
