// ReplayEngine: deterministic offline re-execution of an experience corpus
// against an arbitrary candidate program.
//
// The engine builds a sandboxed HookRegistry with the corpus's hook set, a
// private ControlPlane, and a virtual clock pinned to each record's captured
// time, then walks the log in order: map writes and model installs are
// applied exactly where the incumbent applied them, and every fire record is
// re-fired with its recorded (key, args, context lanes). The candidate's
// decision for each fire is compared against the recorded decision
// (divergence) and the recorded outcome label (counterfactual score).
//
// Determinism contract: the same corpus bytes plus the same candidate spec
// produce a byte-identical DivergenceReport::Serialize() on every run, on
// both VM tiers — nothing wall-clock-dependent enters the report (replay
// latency goes to telemetry only), iteration order is the log order, and
// the sandbox's virtual clock comes from the records themselves.
#ifndef SRC_REPLAY_REPLAY_H_
#define SRC_REPLAY_REPLAY_H_

#include <string>
#include <vector>

#include "src/replay/experience_log.h"
#include "src/rmt/control_plane.h"
#include "src/telemetry/span.h"

namespace rkd {

// Per-hook divergence tallies between the candidate's replayed decisions
// and the corpus.
struct HookDivergence {
  std::string hook;
  uint64_t fires = 0;
  uint64_t decision_matches = 0;         // candidate decision == recorded decision
  uint64_t labeled = 0;                  // fires carrying an outcome label
  uint64_t label_matches = 0;            // candidate decision == label
  uint64_t recorded_label_matches = 0;   // incumbent decision == label (baseline)
  uint64_t exec_errors = 0;              // candidate action faults during replay

  double decision_match_rate() const {
    return fires == 0 ? 1.0 : static_cast<double>(decision_matches) / static_cast<double>(fires);
  }
};

struct DivergenceReport {
  std::string corpus_source;
  uint32_t corpus_fingerprint = 0;
  uint64_t corpus_records = 0;
  uint64_t corpus_fires = 0;
  std::string program;
  ExecTier tier = ExecTier::kJit;
  std::vector<HookDivergence> hooks;
  uint64_t map_write_errors = 0;      // recorded map writes the candidate rejected
  uint64_t model_install_rejects = 0; // recorded model pushes the candidate rejected
  uint64_t context_write_errors = 0;  // recorded context snapshots that found no entry

  // Aggregates across hooks.
  double decision_match_rate() const;
  // Fraction of labeled fires where the candidate's decision equals the
  // recorded label. -1 when the corpus carries no labels.
  double counterfactual_score() const;
  // Same metric for the incumbent's recorded decisions (the bar to clear).
  double recorded_score() const;
  uint64_t total_exec_errors() const;
  uint64_t labeled_fires() const;

  // Canonical deterministic JSON rendering (stable field order, %.6f rates).
  // This is the artifact the determinism tests byte-compare and the shadow
  // gate archives.
  std::string Serialize() const;
};

struct ReplayOptions {
  ExecTier tier = ExecTier::kJit;
  // >0 samples replay fires into the sandbox tracer (1 = every fire); the
  // resulting spans are copied into `capture_spans` after the run so the
  // shadow gate can dump a flight recording of a rejected candidate.
  uint32_t trace_sample_every = 0;
  std::vector<SpanRecord>* capture_spans = nullptr;
};

class ReplayEngine {
 public:
  // `telemetry` (optional, not owned) receives the rkd.replay.* metrics:
  // replays / replay_fires / replay_divergences / replay_errors counters and
  // the replay_ns wall-latency histogram. The report itself never includes
  // wall time, preserving byte-identical output.
  explicit ReplayEngine(TelemetryRegistry* telemetry = nullptr);

  // Re-fires every record of `log` against `candidate` in a fresh sandbox.
  // Errors only on structural impossibility (candidate fails verification,
  // or references hooks the corpus does not contain); divergence, label
  // misses, and action faults are data, not errors.
  Result<DivergenceReport> Replay(const ExperienceLog& log, const RmtProgramSpec& candidate,
                                  const ReplayOptions& options = {});

 private:
  TelemetryRegistry* telemetry_;  // not owned; may be null
};

}  // namespace rkd

#endif  // SRC_REPLAY_REPLAY_H_
