#include "src/replay/experience_log.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

#include "src/base/bytes.h"
#include "src/base/failpoints.h"

namespace rkd {
namespace {

// Standard CRC-32 table (reflected 0xEDB88320), built once.
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::string OffsetMessage(std::string_view what, size_t offset) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%.*s (record at offset %zu)",
                static_cast<int>(what.size()), what.data(), offset);
  return std::string(buf);
}

void SerializeRecord(const ExperienceRecord& rec, ByteWriter& w) {
  w.Put<uint8_t>(static_cast<uint8_t>(rec.kind));
  switch (rec.kind) {
    case ExperienceRecordKind::kFire:
      w.Put<uint32_t>(rec.hook_index);
      w.Put<uint64_t>(rec.vtime);
      w.Put<uint64_t>(rec.key);
      w.Put<uint8_t>(rec.num_args);
      for (uint8_t i = 0; i < rec.num_args && i < kExperienceMaxArgs; ++i) {
        w.Put<int64_t>(rec.args[i]);
      }
      w.Put<int64_t>(rec.action);
      w.Put<uint8_t>(rec.flags);
      w.Put<int64_t>(rec.label);
      w.PutArray<int32_t>(rec.ctxt_features);
      break;
    case ExperienceRecordKind::kMapWrite:
      w.Put<int64_t>(rec.map_id);
      w.Put<int64_t>(rec.map_key);
      w.Put<int64_t>(rec.map_value);
      break;
    case ExperienceRecordKind::kModelInstall:
      w.Put<int64_t>(rec.model_slot);
      w.PutArray<uint8_t>(rec.model_bytes);
      break;
  }
}

Result<ExperienceRecord> ParseRecord(std::span<const uint8_t> payload, size_t offset) {
  ByteReader r(payload);
  ExperienceRecord rec;
  RKD_ASSIGN_OR_RETURN(uint8_t kind, r.Get<uint8_t>());
  if (kind > static_cast<uint8_t>(ExperienceRecordKind::kModelInstall)) {
    return InvalidArgumentError(OffsetMessage("experience log: unknown record kind", offset));
  }
  rec.kind = static_cast<ExperienceRecordKind>(kind);
  switch (rec.kind) {
    case ExperienceRecordKind::kFire: {
      RKD_ASSIGN_OR_RETURN(rec.hook_index, r.Get<uint32_t>());
      RKD_ASSIGN_OR_RETURN(rec.vtime, r.Get<uint64_t>());
      RKD_ASSIGN_OR_RETURN(rec.key, r.Get<uint64_t>());
      RKD_ASSIGN_OR_RETURN(rec.num_args, r.Get<uint8_t>());
      if (rec.num_args > kExperienceMaxArgs) {
        return InvalidArgumentError(
            OffsetMessage("experience log: fire record arg count out of range", offset));
      }
      for (uint8_t i = 0; i < rec.num_args; ++i) {
        RKD_ASSIGN_OR_RETURN(rec.args[i], r.Get<int64_t>());
      }
      RKD_ASSIGN_OR_RETURN(rec.action, r.Get<int64_t>());
      RKD_ASSIGN_OR_RETURN(rec.flags, r.Get<uint8_t>());
      RKD_ASSIGN_OR_RETURN(rec.label, r.Get<int64_t>());
      RKD_ASSIGN_OR_RETURN(rec.ctxt_features, r.GetArray<int32_t>());
      break;
    }
    case ExperienceRecordKind::kMapWrite: {
      RKD_ASSIGN_OR_RETURN(rec.map_id, r.Get<int64_t>());
      RKD_ASSIGN_OR_RETURN(rec.map_key, r.Get<int64_t>());
      RKD_ASSIGN_OR_RETURN(rec.map_value, r.Get<int64_t>());
      break;
    }
    case ExperienceRecordKind::kModelInstall: {
      RKD_ASSIGN_OR_RETURN(rec.model_slot, r.Get<int64_t>());
      RKD_ASSIGN_OR_RETURN(rec.model_bytes, r.GetArray<uint8_t>());
      break;
    }
  }
  if (!r.AtEnd()) {
    return InvalidArgumentError(
        OffsetMessage("experience log: trailing bytes inside record", offset));
  }
  return rec;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> bytes, uint32_t seed) {
  const auto& table = Crc32Table();
  uint32_t crc = seed ^ 0xffffffffu;
  for (const uint8_t b : bytes) {
    crc = table[(crc ^ b) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

Result<std::vector<uint8_t>> SerializeExperienceLog(ExperienceLog& log) {
  if (auto fault = RKD_FAILPOINT("replay.log_write"); fault && fault->force_error) {
    return InternalError("injected experience log write fault");
  }
  ByteWriter header;
  header.Put<uint32_t>(kExperienceMagic);
  header.Put<uint32_t>(kExperienceVersion);
  header.PutString(log.source);
  header.Put<uint32_t>(static_cast<uint32_t>(log.hooks.size()));
  for (const ExperienceHookInfo& hook : log.hooks) {
    header.PutString(hook.name);
    header.Put<uint8_t>(static_cast<uint8_t>(hook.kind));
    header.Put<uint8_t>(static_cast<uint8_t>(hook.decision_source));
    header.PutString(hook.label_kind);
  }
  header.Put<uint64_t>(log.records.size());

  std::vector<uint8_t> out = header.Take();
  for (const ExperienceRecord& rec : log.records) {
    ByteWriter body;
    SerializeRecord(rec, body);
    const std::vector<uint8_t>& payload = body.bytes();
    ByteWriter frame;
    frame.Put<uint32_t>(static_cast<uint32_t>(payload.size()));
    frame.Put<uint32_t>(Crc32(payload));
    out.insert(out.end(), frame.bytes().begin(), frame.bytes().end());
    out.insert(out.end(), payload.begin(), payload.end());
  }

  if (auto fault = RKD_FAILPOINT("replay.log_write"); fault && fault->corrupt_xor != 0) {
    // Deterministic bit rot: flip bits in the middle of the stream, which
    // lands inside a record payload and must surface as a CRC mismatch on
    // read, never as a crash or a silently shortened corpus.
    out[out.size() / 2] ^= static_cast<uint8_t>(fault->corrupt_xor);
  }
  log.fingerprint = Crc32(out);
  return out;
}

Result<ExperienceLog> DeserializeExperienceLog(std::span<const uint8_t> bytes) {
  std::vector<uint8_t> corrupted;  // backing store when a failpoint flips bits
  if (auto fault = RKD_FAILPOINT("replay.log_read")) {
    if (fault->force_error) {
      return InternalError("injected experience log read fault");
    }
    if (fault->corrupt_xor != 0 && !bytes.empty()) {
      corrupted.assign(bytes.begin(), bytes.end());
      corrupted[corrupted.size() / 2] ^= static_cast<uint8_t>(fault->corrupt_xor);
      bytes = corrupted;
    }
  }

  ExperienceLog log;
  ByteReader r(bytes);
  RKD_ASSIGN_OR_RETURN(uint32_t magic, r.Get<uint32_t>());
  if (magic != kExperienceMagic) {
    return InvalidArgumentError("experience log: bad magic (not an RKDR corpus)");
  }
  RKD_ASSIGN_OR_RETURN(uint32_t version, r.Get<uint32_t>());
  if (version != kExperienceVersion) {
    return InvalidArgumentError(
        "experience log: version mismatch (got " + std::to_string(version) +
        ", want " + std::to_string(kExperienceVersion) + ")");
  }
  RKD_ASSIGN_OR_RETURN(log.source, r.GetString());
  RKD_ASSIGN_OR_RETURN(uint32_t num_hooks, r.Get<uint32_t>());
  if (num_hooks > 1024) {
    return InvalidArgumentError("experience log: hook count out of range");
  }
  log.hooks.reserve(num_hooks);
  for (uint32_t i = 0; i < num_hooks; ++i) {
    ExperienceHookInfo hook;
    RKD_ASSIGN_OR_RETURN(hook.name, r.GetString());
    RKD_ASSIGN_OR_RETURN(uint8_t kind, r.Get<uint8_t>());
    hook.kind = static_cast<HookKind>(kind);
    RKD_ASSIGN_OR_RETURN(uint8_t source, r.Get<uint8_t>());
    if (source > static_cast<uint8_t>(DecisionSource::kFirstEmit)) {
      return InvalidArgumentError("experience log: unknown decision source");
    }
    hook.decision_source = static_cast<DecisionSource>(source);
    RKD_ASSIGN_OR_RETURN(hook.label_kind, r.GetString());
    log.hooks.push_back(std::move(hook));
  }
  RKD_ASSIGN_OR_RETURN(uint64_t num_records, r.Get<uint64_t>());

  // Record frames are consumed with an explicit cursor so every error can
  // name the byte offset of the frame it choked on.
  size_t pos = bytes.size() - r.remaining();
  log.records.reserve(num_records < (1u << 22) ? num_records : 0);
  for (uint64_t i = 0; i < num_records; ++i) {
    const size_t offset = pos;
    if (bytes.size() - pos < 8) {
      return OutOfRangeError(
          OffsetMessage("experience log: truncated record frame", offset));
    }
    uint32_t length = 0;
    uint32_t want_crc = 0;
    std::memcpy(&length, &bytes[pos], sizeof(length));
    std::memcpy(&want_crc, &bytes[pos + 4], sizeof(want_crc));
    pos += 8;
    if (length > bytes.size() - pos) {
      return OutOfRangeError(
          OffsetMessage("experience log: truncated record payload", offset));
    }
    std::span<const uint8_t> payload = bytes.subspan(pos, length);
    pos += length;
    if (Crc32(payload) != want_crc) {
      return InvalidArgumentError(
          OffsetMessage("experience log: record checksum mismatch", offset));
    }
    RKD_ASSIGN_OR_RETURN(ExperienceRecord rec, ParseRecord(payload, offset));
    if (rec.kind == ExperienceRecordKind::kFire && rec.hook_index >= log.hooks.size()) {
      return InvalidArgumentError(
          OffsetMessage("experience log: fire record names unknown hook", offset));
    }
    log.records.push_back(std::move(rec));
  }
  if (pos != bytes.size()) {
    return InvalidArgumentError(
        OffsetMessage("experience log: trailing bytes after last record", pos));
  }
  log.fingerprint = Crc32(bytes);
  return log;
}

Status WriteExperienceLog(const std::string& path, ExperienceLog& log) {
  RKD_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, SerializeExperienceLog(log));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return InternalError("experience log: cannot open for write: " + path);
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    return InternalError("experience log: short write: " + path);
  }
  return OkStatus();
}

Result<ExperienceLog> ReadExperienceLog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("experience log: cannot open: " + path);
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return DeserializeExperienceLog(bytes);
}

}  // namespace rkd
