// The constrained helper surface RMT programs may call (paper section 3.1:
// "an RMT program has access to a constrained set of kernel functions that
// are dedicated to learning and inference"). Helpers are the only way a
// program touches anything outside its registers/stack/declared resources,
// and the verifier whitelists them per hook kind.
//
// This header also defines the runtime services behind three verifier
// concerns from section 3.3:
//   RateLimiter   - performance-interference guard ("the verifier may insert
//                   additional logic to enforce rate limits")
//   PrivacyBudget + DpNoiseSource - differential-privacy accounting ("the
//                   kernel can maintain a 'privacy budget' ... and subtract
//                   from this overall budget for each table match")
//   PredictionLog - prediction/outcome bookkeeping that lets the control
//                   plane react to accuracy drops (section 3.1, updating RMT
//                   entries when prefetch accuracy falls below threshold)
#ifndef SRC_VM_HELPERS_H_
#define SRC_VM_HELPERS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "src/base/rng.h"
#include "src/bytecode/isa.h"
#include "src/vm/context_store.h"
#include "src/vm/maps.h"

namespace rkd {

// Token bucket per key. Capacity tokens, refilled at refill_per_tick per
// virtual-time tick. Check() consumes `units` if available. Thread-safe:
// concurrent fires of one program share the limiter, so the bucket map is
// guarded by a mutex (held for a hash probe and a handful of arithmetic ops;
// cheap next to the VM run around it).
class RateLimiter {
 public:
  RateLimiter(int64_t capacity, int64_t refill_per_tick)
      : capacity_(capacity), refill_per_tick_(refill_per_tick) {}

  // Returns true (and consumes) if `key` may spend `units` at time `now`.
  bool Check(int64_t key, int64_t units, uint64_t now);

  int64_t TokensAvailable(int64_t key, uint64_t now);

 private:
  struct Bucket {
    int64_t tokens;
    uint64_t last_refill;
  };
  Bucket& GetBucket(int64_t key, uint64_t now);  // requires mutex_ held

  int64_t capacity_;
  int64_t refill_per_tick_;
  std::mutex mutex_;
  std::unordered_map<int64_t, Bucket> buckets_;  // guarded by mutex_
};

// Epsilon accounting in differential-privacy terms. Each noisy query spends
// per_query_epsilon; once the total budget is gone, queries are refused and
// the helper returns a hard zero instead of a noisy value.
class PrivacyBudget {
 public:
  PrivacyBudget(double total_epsilon, double per_query_epsilon)
      : remaining_(total_epsilon), per_query_(per_query_epsilon) {}

  // Consumes one query's epsilon. False once exhausted.
  bool Consume();

  double remaining() const { return remaining_; }
  double per_query_epsilon() const { return per_query_; }
  uint64_t queries_answered() const { return queries_answered_; }
  uint64_t queries_refused() const { return queries_refused_; }

 private:
  double remaining_;
  double per_query_;
  uint64_t queries_answered_ = 0;
  uint64_t queries_refused_ = 0;
};

// Laplace mechanism over an integer value, at sensitivity / epsilon scale.
class DpNoiseSource {
 public:
  DpNoiseSource(PrivacyBudget* budget, double sensitivity, uint64_t seed)
      : budget_(budget), sensitivity_(sensitivity), rng_(seed) {}

  // value + Laplace(sensitivity / epsilon) if budget remains; 0 otherwise.
  int64_t Noisy(int64_t value);

 private:
  PrivacyBudget* budget_;  // not owned
  double sensitivity_;
  Rng rng_;
};

// Last prediction per key, plus rolling hit/total counters resolved by the
// subsystem when ground truth becomes known. Thread-safe: the pending map is
// mutex-guarded (datapath fires record, subsystem threads resolve); the
// rolling counters are relaxed atomics so the control plane's accuracy reads
// never block a fire.
class PredictionLog {
 public:
  void Record(int64_t key, int64_t predicted);

  // Consumes and returns the pending prediction for `key`, if any.
  std::optional<int64_t> Take(int64_t key);

  // Resolves the pending prediction for `key` against the actual outcome
  // (no-op when nothing is pending). Feeds the rolling accuracy.
  void Resolve(int64_t key, int64_t actual);

  uint64_t total_resolved() const { return total_.load(std::memory_order_relaxed); }
  uint64_t total_correct() const { return correct_.load(std::memory_order_relaxed); }
  double accuracy() const {
    const uint64_t total = total_resolved();
    return total == 0 ? 0.0
                      : static_cast<double>(total_correct()) / static_cast<double>(total);
  }
  void ResetCounters() {
    total_.store(0, std::memory_order_relaxed);
    correct_.store(0, std::memory_order_relaxed);
  }

 private:
  std::mutex mutex_;
  std::unordered_map<int64_t, int64_t> pending_;  // guarded by mutex_
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> correct_{0};
};

// Everything the helper implementations reach outside the VM. Unset members
// make the corresponding helper return 0 (helpers never fault; the verifier
// limits which ones a program can call in the first place).
struct HelperServices {
  std::function<uint64_t()> now;                          // kGetTime
  ContextStore* ctxt = nullptr;                           // history helpers
  RingMap* sample_ring = nullptr;                         // kRecordSample
  RateLimiter* rate_limiter = nullptr;                    // kRateLimitCheck
  DpNoiseSource* dp_noise = nullptr;                      // kDpNoise
  std::function<void(int64_t, int64_t)> prefetch_emit;    // kPrefetchEmit
  std::function<void(int64_t, int64_t)> priority_hint;    // kSetPriorityHint
  PredictionLog* prediction_log = nullptr;                // kPredictionLog
};

// Dispatches one helper call: r0_result = helper(args r1..r5).
int64_t CallHelper(HelperId id, HelperServices& services, const int64_t args[5]);

}  // namespace rkd

#endif  // SRC_VM_HELPERS_H_
