// Tier-3 specializing compiler (the "reconfigurable datapaths run as fast as
// the hardware allows" tier, ROADMAP item 2). Sits above CompiledProgram:
// where tier 2 pre-decodes instructions but still pays one indirect call,
// one generic map probe, and one generic Q16.16 matmul loop per operation,
// tier 3 specializes a hot program against the *current contents* of its
// environment:
//
//   1. Superblock formation — straight-line dispatch chains are fused into
//      superblocks executed by one switch loop; the fire deadline is polled
//      at superblock boundaries (entry / block transition / tail call)
//      instead of every kDeadlinePollDispatches dispatches, preserving the
//      governor's containment semantics at a fraction of the poll cost.
//   2. Constant folding of stable state — map lookups whose map no action of
//      the program writes ("frozen" maps: the control plane is the only
//      writer, and every ControlPlane::WriteMap bumps the MapSet write
//      version) are folded to immediates when the key is a compile-time
//      constant, or burned to a devirtualized/raw-cell access when it is
//      not; ModelSlot weights and tensors are burned as direct pointers.
//   3. Tile-aware ML kernels — each kMatMul site gets a kernel chosen from
//      the folded weight dimensions: dataflow strategy (output- vs weight-
//      stationary) by aspect ratio, and a fixed-trip-count tile kernel when
//      the reduction length matches a compiled tile size.
//
// Deoptimization: every specialization pins the MapSet write version, the
// owning RmtTable's snapshot version, and each folded ModelSlot's version.
// GuardOk() re-checks all three at fire entry — a handful of relaxed loads,
// wait-free — and on any mismatch the fire runs tier 2 (which reads live
// state) while the control plane respecializes at the next tick. A fire that
// passes the guard computes from the pinned snapshot; a concurrent mutation
// mid-run is indistinguishable from the fire having been linearized before
// it, exactly as in tier 2's epoch-pinned reads.
//
// Traced fires (tracer/profile set) always run tier 2: the specialized
// stream has no per-opcode attribution, and sampling must keep observing
// the real opcode mix that drives promotion.
#ifndef SRC_VM_SPECIALIZE_H_
#define SRC_VM_SPECIALIZE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/bytecode/program.h"
#include "src/ml/model_registry.h"
#include "src/ml/online.h"
#include "src/telemetry/telemetry.h"
#include "src/vm/jit.h"
#include "src/vm/vm.h"

namespace rkd {

// Dataflow strategy of one specialized kMatMul site (kpu-sim naming). Both
// orders accumulate each output lane's terms through uint64 wraparound
// addition, which is associative and commutative — so any summation order
// (including the split accumulator chains the kernels use) is bit-identical
// to FixedMatrix::MatVec; the choice only moves where the reuse is.
enum class DataflowStrategy : uint8_t {
  kOutputStationary = 0,  // rows outer: one output accumulator hot at a time
  kWeightStationary = 1,  // cols outer: one weight column streamed across all outputs
};

std::string_view DataflowStrategyName(DataflowStrategy strategy);

// Why a specialized program refused a fire (first stale guard dimension).
enum class DeoptReason : uint8_t {
  kMapWrite = 0,       // control plane wrote this program's maps
  kModelInstall = 1,   // a folded model slot published a new model
  kTableMutation = 2,  // the owning table published a new snapshot
  kReasonCount,
};

std::string_view DeoptReasonName(DeoptReason reason);

// Everything the specializer may fold against. All pointers are non-owning
// and must outlive the SpecializedProgram (the installed program owns them).
struct SpecializeContext {
  MapSet* maps = nullptr;
  ModelRegistry* models = nullptr;
  TensorRegistry* tensors = nullptr;
  // Map ids any action of the owning program may write at fire time
  // (kMapUpdate / kMapDelete targets across every action of every table —
  // tail calls stay within the program, so this closes the writer set).
  // Lookups on any other map are foldable: the only remaining writer is
  // ControlPlane::WriteMap, which bumps the pinned write version below.
  std::vector<int64_t> fire_written_maps;
  // Pinned snapshot cells; a null cell disables that guard dimension (and,
  // for map_write_version, all map folding — folding without a guard would
  // be unsound).
  const std::atomic<uint64_t>* map_write_version = nullptr;
  const std::atomic<uint64_t>* table_version = nullptr;
  bool fold_map_constants = true;
  bool fold_models = true;
};

// Per-program tier-3 fire-path tallies. Sharded, wait-free.
struct Tier3Stats {
  ShardedCounter execs;  // fires served by a specialized stream
  std::array<ShardedCounter, static_cast<size_t>(DeoptReason::kReasonCount)> deopts;

  uint64_t total_deopts() const {
    uint64_t sum = 0;
    for (const ShardedCounter& c : deopts) {
      sum += c.value();
    }
    return sum;
  }
};

class SpecializedProgram {
 public:
  using Frame = CompiledProgram::Frame;
  using Resolver = CompiledProgram::Resolver;

  // Specializes `program` against the state reachable through `ctx`,
  // pinning the snapshot versions the result depends on. Fails on the same
  // malformed-program conditions as CompiledProgram::Compile.
  static Result<SpecializedProgram> Specialize(const BytecodeProgram& program,
                                               const SpecializeContext& ctx);

  // Entry guard: true while every pinned snapshot is still current. Wait-
  // free — a few relaxed/acquire loads; callers must hold an EpochGuard
  // across this call and the subsequent Run (the same pin the fire path
  // already holds). On mismatch fills `reason` with the first stale
  // dimension.
  bool GuardOk(DeoptReason* reason = nullptr) const;

  // Execution mirrors CompiledProgram::Run / RunInFrame: args in r1..r5,
  // returns r0, VmMetrics recorded by Run only (steps untouched — this tier
  // has no step accounting either). env->profile is ignored: callers route
  // traced fires to tier 2. Unlike tier 2, Run does not rebuild a zeroed
  // ExecState per fire: it reuses a thread-local frame and resets only the
  // state the specializer proved the program can observe (scalar regs
  // always; vregs per the entry reset mask; stack only when touched),
  // falling back to a fully zeroed local frame on reentrant fires.
  Result<int64_t> Run(const VmEnv& env, std::span<const int64_t> args,
                      RunStats* stats = nullptr, const Resolver& resolve = {}) const;
  Result<int64_t> RunInFrame(Frame& frame, const VmEnv& env, std::span<const int64_t> args,
                             RunStats* stats = nullptr, const Resolver& resolve = {}) const;

  const std::string& name() const { return name_; }
  size_t size() const { return ops_.size(); }
  // --- Specialization facts (telemetry / introspection) ---
  size_t superblocks() const { return blocks_.size(); }
  size_t folded_lookups() const { return folded_lookups_; }   // const-folded map reads
  size_t burned_lookups() const { return burned_lookups_; }   // devirtualized dynamic-key reads
  size_t folded_models() const { return models_.size(); }
  size_t tile_kernels() const { return tiles_.size(); }
  DataflowStrategy tile_strategy(size_t site) const { return tiles_[site].strategy; }
  uint64_t pinned_map_version() const { return pinned_map_version_; }
  uint64_t pinned_table_version() const { return pinned_table_version_; }
  uint64_t pinned_model_version(size_t site) const { return models_[site].pinned_version; }

 private:
  SpecializedProgram() = default;

  // One specialized operation. `code` is either an original Opcode value
  // (generic semantics, identical to tier 2) or one of the extended codes
  // in specialize.cc. `arg` holds the absolute target *block* for branches,
  // the resume block for kTailCall, and the raw offset (stack slot, ctxt
  // slot, vector lane) otherwise. `aux` indexes the side tables below.
  struct SpecOp {
    uint16_t code = 0;
    uint8_t dst = 0;
    uint8_t src = 0;
    int32_t arg = 0;
    uint32_t aux = 0;
    int64_t imm = 0;
  };

  // A straight-line run of specialized ops; the executor dispatches once
  // per block, not once per op.
  struct Superblock {
    uint32_t first = 0;
    uint32_t count = 0;
  };

  // y[0..rows) = W x, bit-identical to FixedMatrix::MatVec.
  using MatVecFn = void (*)(const int32_t* w, size_t rows, size_t cols,
                            const int32_t* x, int32_t* y);

  struct TileKernel {
    const int32_t* weights = nullptr;  // burned row-major Q16.16 data
    uint32_t rows = 0;
    uint32_t cols = 0;
    DataflowStrategy strategy = DataflowStrategy::kOutputStationary;
    // A kVecRelu whose dst == src == this site's dst and that immediately
    // follows it (same block, not a branch target) is folded into the store:
    // clamping all kVectorLanes lanes after the kernel is bit-identical to
    // running the separate relu over the matmul's output vreg.
    bool fuse_relu = false;
    MatVecFn fn = nullptr;
  };

  // Devirtualized Predict thunk: resolved once at specialize time from the
  // folded model's dynamic type (every production model class is final), so
  // the fire path pays a direct call instead of a vtable load.
  using PredictFn = int64_t (*)(const InferenceModel*, std::span<const int32_t>);

  struct FoldedModel {
    ModelPtr keepalive;  // holds the pinned snapshot's refcount
    const InferenceModel* model = nullptr;
    const ModelSlot* slot = nullptr;  // stable storage in the registry
    PredictFn predict = nullptr;
    uint64_t pinned_version = 0;
    int64_t model_id = 0;  // original kMlCall imm, for span tags
  };

  struct BurnedMap {
    RmtMap* map = nullptr;  // devirtualization target for dynamic keys
    const std::atomic<int64_t>* cells = nullptr;  // array-map raw fast path
    size_t len = 0;
  };

  Result<int64_t> Execute(Frame& frame, RunStats* stats, const Resolver& resolve) const;

  std::string name_;
  std::vector<SpecOp> ops_;
  std::vector<Superblock> blocks_;
  std::vector<TileKernel> tiles_;
  std::vector<FoldedModel> models_;
  std::vector<BurnedMap> burned_maps_;
  std::vector<const FixedMatrix*> bias_tensors_;  // kVecAddT burned sites
  size_t folded_lookups_ = 0;
  size_t burned_lookups_ = 0;
  bool touches_stack_ = false;
  bool touches_vregs_ = false;
  // Fire-entry reset mask: bit v set means vreg v may be read before the
  // program fully overwrites it, so it must be zeroed at entry. Vregs whose
  // first access is a full 32-lane write in the entry straight-line prefix
  // are skipped — for ML programs that start with kVecLdCtxt this drops most
  // of the per-fire ExecState clearing.
  uint8_t vreg_reset_mask_ = 0;
  // Guard state (see GuardOk).
  const std::atomic<uint64_t>* map_write_cell_ = nullptr;
  const std::atomic<uint64_t>* table_version_cell_ = nullptr;
  uint64_t pinned_map_version_ = 0;
  uint64_t pinned_table_version_ = 0;
};

}  // namespace rkd

#endif  // SRC_VM_SPECIALIZE_H_
