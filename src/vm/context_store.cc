#include "src/vm/context_store.h"

namespace rkd {

const ContextEntry* ContextStore::Find(uint64_t key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

ContextEntry* ContextStore::FindMutable(uint64_t key) {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

ContextEntry* ContextStore::FindOrCreate(uint64_t key) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    return &it->second;
  }
  if (entries_.size() >= max_entries_) {
    return nullptr;
  }
  return &entries_[key];
}

}  // namespace rkd
