#include "src/vm/helpers.h"

#include <algorithm>
#include <cmath>

namespace rkd {

// --- RateLimiter ---

RateLimiter::Bucket& RateLimiter::GetBucket(int64_t key, uint64_t now) {
  auto [it, inserted] = buckets_.try_emplace(key, Bucket{capacity_, now});
  Bucket& bucket = it->second;
  if (!inserted && now > bucket.last_refill) {
    const uint64_t ticks = now - bucket.last_refill;
    const int64_t refill =
        ticks > static_cast<uint64_t>(capacity_)
            ? capacity_
            : static_cast<int64_t>(ticks) * refill_per_tick_;
    bucket.tokens = std::min(capacity_, bucket.tokens + refill);
    bucket.last_refill = now;
  }
  return bucket;
}

bool RateLimiter::Check(int64_t key, int64_t units, uint64_t now) {
  if (units <= 0) {
    return true;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = GetBucket(key, now);
  if (bucket.tokens >= units) {
    bucket.tokens -= units;
    return true;
  }
  return false;
}

int64_t RateLimiter::TokensAvailable(int64_t key, uint64_t now) {
  std::lock_guard<std::mutex> lock(mutex_);
  return GetBucket(key, now).tokens;
}

// --- PrivacyBudget ---

bool PrivacyBudget::Consume() {
  if (remaining_ + 1e-12 < per_query_) {
    ++queries_refused_;
    return false;
  }
  remaining_ -= per_query_;
  ++queries_answered_;
  return true;
}

// --- DpNoiseSource ---

int64_t DpNoiseSource::Noisy(int64_t value) {
  if (budget_ == nullptr || !budget_->Consume()) {
    return 0;
  }
  const double scale = sensitivity_ / budget_->per_query_epsilon();
  const double noisy = static_cast<double>(value) + rng_.NextLaplace(scale);
  return static_cast<int64_t>(std::llround(noisy));
}

// --- PredictionLog ---

void PredictionLog::Record(int64_t key, int64_t predicted) {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_[key] = predicted;
}

std::optional<int64_t> PredictionLog::Take(int64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = pending_.find(key);
  if (it == pending_.end()) {
    return std::nullopt;
  }
  const int64_t value = it->second;
  pending_.erase(it);
  return value;
}

void PredictionLog::Resolve(int64_t key, int64_t actual) {
  const std::optional<int64_t> predicted = Take(key);
  if (!predicted.has_value()) {
    return;
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  if (*predicted == actual) {
    correct_.fetch_add(1, std::memory_order_relaxed);
  }
}

// --- Dispatch ---

int64_t CallHelper(HelperId id, HelperServices& services, const int64_t args[5]) {
  switch (id) {
    case HelperId::kGetTime:
      return services.now ? static_cast<int64_t>(services.now()) : 0;
    case HelperId::kRecordSample:
      if (services.sample_ring != nullptr) {
        return services.sample_ring->Update(args[0], args[1]) ? 1 : 0;
      }
      return 0;
    case HelperId::kHistoryAppend: {
      if (services.ctxt == nullptr) {
        return 0;
      }
      ContextEntry* entry = services.ctxt->FindOrCreate(static_cast<uint64_t>(args[0]));
      if (entry == nullptr) {
        return 0;
      }
      entry->AppendHistory(args[1]);
      return 1;
    }
    case HelperId::kHistoryGet: {
      if (services.ctxt == nullptr) {
        return 0;
      }
      const ContextEntry* entry = services.ctxt->Find(static_cast<uint64_t>(args[0]));
      return entry == nullptr ? 0 : entry->HistoryAt(static_cast<uint32_t>(args[1]));
    }
    case HelperId::kHistoryLen: {
      if (services.ctxt == nullptr) {
        return 0;
      }
      const ContextEntry* entry = services.ctxt->Find(static_cast<uint64_t>(args[0]));
      return entry == nullptr ? 0 : entry->history_len;
    }
    case HelperId::kRateLimitCheck:
      if (services.rate_limiter != nullptr) {
        const uint64_t now = services.now ? services.now() : 0;
        return services.rate_limiter->Check(args[0], args[1], now) ? 1 : 0;
      }
      return 1;  // no limiter configured: allow
    case HelperId::kDpNoise:
      return services.dp_noise != nullptr ? services.dp_noise->Noisy(args[0]) : args[0];
    case HelperId::kPrefetchEmit:
      if (services.prefetch_emit) {
        services.prefetch_emit(args[0], args[1]);
        return 1;
      }
      return 0;
    case HelperId::kSetPriorityHint:
      if (services.priority_hint) {
        services.priority_hint(args[0], args[1]);
        return 1;
      }
      return 0;
    case HelperId::kPredictionLog:
      if (services.prediction_log != nullptr) {
        services.prediction_log->Record(args[0], args[1]);
        return 1;
      }
      return 0;
    case HelperId::kHelperCount:
      break;
  }
  return 0;
}

}  // namespace rkd
