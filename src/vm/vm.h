// The RMT virtual machine: environment, execution state, and the interpreter
// tier (paper section 3.1: "the program runs in the virtual machine in
// interpreted mode or it is just-in-time (JIT) compiled to machine code for
// efficiency" — the JIT tier lives in src/vm/jit.h).
//
// The interpreter is the fully-checked tier: every register number, stack
// offset, map id, and jump target is validated at execution time, so it is
// safe to run even unverified programs (tests do). The JIT tier assumes a
// verifier-admitted program and pre-resolves those checks at compile time.
#ifndef SRC_VM_VM_H_
#define SRC_VM_VM_H_

#include <array>
#include <cstdint>
#include <functional>
#include <span>

#include "src/base/status.h"
#include "src/bytecode/program.h"
#include "src/ml/model_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/vm/context_store.h"
#include "src/vm/helpers.h"
#include "src/vm/maps.h"

namespace rkd {

// Telemetry sink both execution tiers publish into when VmEnv::metrics is
// set. All pointers live in a TelemetryRegistry; a null VmMetrics pointer in
// the env disables VM telemetry entirely (the bench-critical default).
// The JIT tier leaves `steps` untouched: eliminating per-instruction step
// accounting is that tier's whole point (see src/vm/jit.h).
struct VmMetrics {
  Counter* invocations = nullptr;
  Counter* steps = nullptr;
  Counter* helper_calls = nullptr;
  Counter* ml_calls = nullptr;
  Counter* tail_calls = nullptr;
  LatencyHistogram* run_ns = nullptr;

  // Registers the standard "rkd.vm.*" names in `registry`.
  static VmMetrics ForRegistry(TelemetryRegistry& registry);
};

// Per-program opcode/helper execution profile. Both tiers accumulate into it
// only when VmEnv::profile is set — the fire path sets it solely for traced
// fires, so the profile is a sampled picture of where an admitted program
// spends its instructions (rkd_stats / rkd_trace render the top-N). Relaxed
// atomics: concurrent traced fires never lose counts.
struct OpcodeProfile {
  static constexpr size_t kNumOpcodes = static_cast<size_t>(Opcode::kOpcodeCount);
  static constexpr size_t kNumHelpers = static_cast<size_t>(HelperId::kHelperCount);

  std::array<std::atomic<uint64_t>, kNumOpcodes> counts{};
  std::array<std::atomic<uint64_t>, kNumOpcodes> ns{};
  std::array<std::atomic<uint64_t>, kNumHelpers> helper_counts{};

  void RecordCount(Opcode op, uint64_t n = 1) {
    counts[static_cast<size_t>(op)].fetch_add(n, std::memory_order_relaxed);
  }
  void RecordNs(Opcode op, uint64_t dur) {
    ns[static_cast<size_t>(op)].fetch_add(dur, std::memory_order_relaxed);
  }
  void RecordHelper(int64_t helper_id) {
    if (helper_id >= 0 && helper_id < static_cast<int64_t>(kNumHelpers)) {
      helper_counts[static_cast<size_t>(helper_id)].fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Always-on execution tally: the fire path bumps it on EVERY action
  // execution in any tier, traced or not, so tier-3 promotion is a
  // deterministic threshold on real fire counts rather than a function of
  // trace sampling. Sharded + relaxed — one cache-local increment per fire.
  ShardedCounter execs;
  void RecordExec(uint64_t n = 1) { execs.Increment(n); }
  uint64_t total_execs() const { return execs.value(); }
};

// Per-fire wall-clock budget. The fire path arms it (absolute deadline in
// the clock's timebase) before entering either tier; a zero deadline_ns
// means disarmed. `now_ns` is injectable so the overload governor and tests
// can drive a fake clock — null falls back to MonotonicNowNs(). Polling is
// deliberately coarse: at entry, then every kDeadlinePollSteps instructions
// in the interpreter and every kDeadlinePollDispatches dispatch blocks in
// the JIT, so the unarmed fast path pays only a null-pointer test.
struct FireDeadline {
  uint64_t deadline_ns = 0;
  // Non-owning: points at the governed program's clock so arming a deadline
  // on the stack per fire never copies a std::function. Null (or an empty
  // function) falls back to MonotonicNowNs().
  const std::function<uint64_t()>* now_ns = nullptr;

  uint64_t Now() const {
    return now_ns != nullptr && *now_ns ? (*now_ns)() : MonotonicNowNs();
  }
  bool Expired() const { return deadline_ns != 0 && Now() >= deadline_ns; }
};

// Interpreter polls the armed deadline once per this many executed steps.
inline constexpr uint64_t kDeadlinePollSteps = 128;

// Everything an executing program can reach. All pointers are non-owning and
// must outlive any Run() call; null members simply make the corresponding
// instructions read as zero / drop writes.
struct VmEnv {
  ContextStore* ctxt = nullptr;
  MapSet* maps = nullptr;
  ModelRegistry* models = nullptr;
  TensorRegistry* tensors = nullptr;
  HelperServices* helpers = nullptr;
  // Resolves a kTailCall target table id to its action program (nullptr =
  // unresolvable; execution falls through, eBPF-style).
  std::function<const BytecodeProgram*(int64_t)> resolve_table;
  // Optional telemetry sink; null (the default) records nothing.
  const VmMetrics* metrics = nullptr;
  // Causal tracing: set only for traced fires (see src/telemetry/span.h).
  // When set, both tiers emit a "vm.exec"-nested "ml.eval" span per kMlCall.
  Tracer* tracer = nullptr;
  // Opcode/helper profile sink; set only for traced fires. The interpreter
  // records per-opcode counts and wall time; the JIT records the same via
  // its profiled frame loop (see CompiledProgram).
  OpcodeProfile* profile = nullptr;
  // Armed fire-time wall-clock budget; null (the default) disables deadline
  // polling entirely. Both tiers return kDeadlineExceeded when it expires.
  const FireDeadline* deadline = nullptr;
};

struct VmConfig {
  uint64_t max_steps = 65536;  // hard per-invocation instruction budget
};

struct RunStats {
  uint64_t steps = 0;
  uint64_t tail_calls = 0;
  uint64_t helper_calls = 0;
  uint64_t ml_calls = 0;
};

// Register file + stack of one program invocation.
struct ExecState {
  std::array<int64_t, kNumScalarRegs> regs{};
  std::array<std::array<int32_t, kVectorLanes>, kNumVectorRegs> vregs{};
  alignas(8) std::array<uint8_t, kStackSize> stack{};
};

// Sentinel kMlCall result when the model slot is empty (no model installed
// yet); action programs branch on it to fall back to the default action.
inline constexpr int64_t kNoModelSentinel = -1;

class Interpreter {
 public:
  explicit Interpreter(VmEnv env, VmConfig config = {}) : env_(std::move(env)), config_(config) {}

  // Executes `program` with args loaded into r1..r5. Returns r0 at kExit.
  // Errors: kResourceExhausted when the step budget is hit,
  // kDeadlineExceeded when an armed VmEnv::deadline expires, kOutOfRange /
  // kInvalidArgument on malformed (unverified) programs.
  Result<int64_t> Run(const BytecodeProgram& program, std::span<const int64_t> args,
                      RunStats* stats = nullptr) const;

  const VmEnv& env() const { return env_; }
  VmEnv& env() { return env_; }

 private:
  VmEnv env_;
  VmConfig config_;
};

}  // namespace rkd

#endif  // SRC_VM_VM_H_
