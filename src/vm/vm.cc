#include "src/vm/vm.h"

#include <cstring>
#include <limits>

#include "src/base/failpoints.h"

namespace rkd {

namespace {

// Saturating add for vector lanes (Q16.16 raw int32).
int32_t SatAdd32(int32_t a, int32_t b) {
  const int64_t wide = static_cast<int64_t>(a) + b;
  if (wide > std::numeric_limits<int32_t>::max()) {
    return std::numeric_limits<int32_t>::max();
  }
  if (wide < std::numeric_limits<int32_t>::min()) {
    return std::numeric_limits<int32_t>::min();
  }
  return static_cast<int32_t>(wide);
}

bool ValidStackAccess(int32_t offset) {
  // 8-byte slots addressed below the frame pointer: [-kStackSize, -8].
  return offset >= -kStackSize && offset <= -8 && (offset % 8) == 0;
}

}  // namespace

VmMetrics VmMetrics::ForRegistry(TelemetryRegistry& registry) {
  VmMetrics metrics;
  metrics.invocations = registry.GetCounter("rkd.vm.invocations");
  metrics.steps = registry.GetCounter("rkd.vm.steps");
  metrics.helper_calls = registry.GetCounter("rkd.vm.helper_calls");
  metrics.ml_calls = registry.GetCounter("rkd.vm.ml_calls");
  metrics.tail_calls = registry.GetCounter("rkd.vm.tail_calls");
  metrics.run_ns = registry.GetHistogram("rkd.vm.run_ns");
  return metrics;
}

Result<int64_t> Interpreter::Run(const BytecodeProgram& program, std::span<const int64_t> args,
                                 RunStats* stats) const {
  if (program.code.empty()) {
    return InvalidArgumentError("Interpreter::Run: empty program");
  }
  if (args.size() > 5) {
    return InvalidArgumentError("Interpreter::Run: more than five arguments");
  }

  ExecState state;
  for (size_t i = 0; i < args.size(); ++i) {
    state.regs[i + 1] = args[i];
  }

  const BytecodeProgram* current = &program;
  uint64_t steps = 0;
  uint64_t tail_calls = 0;
  uint64_t helper_calls = 0;
  uint64_t ml_calls = 0;
  size_t pc = 0;
  const uint64_t start_ns = env_.metrics != nullptr ? MonotonicNowNs() : 0;
  // Hoisted once: on untraced fires (profile == nullptr) profiling costs one
  // predictable branch per instruction.
  OpcodeProfile* const prof = env_.profile;
  uint64_t op_start_ns = 0;

  const auto publish = [&] {
    if (stats != nullptr) {
      stats->steps = steps;
      stats->tail_calls = tail_calls;
      stats->helper_calls = helper_calls;
      stats->ml_calls = ml_calls;
    }
    if (env_.metrics != nullptr) {
      env_.metrics->invocations->Increment();
      env_.metrics->steps->Increment(steps);
      env_.metrics->helper_calls->Increment(helper_calls);
      env_.metrics->ml_calls->Increment(ml_calls);
      env_.metrics->tail_calls->Increment(tail_calls);
      env_.metrics->run_ns->Record(MonotonicNowNs() - start_ns);
    }
  };
  const auto fail = [&](Status status) -> Result<int64_t> {
    publish();
    return status;
  };

  // Entry poll: a deadline that expired before the first instruction (fake
  // clocks, storm backpressure) fails deterministically on every tier.
  if (env_.deadline != nullptr && env_.deadline->Expired()) {
    return fail(DeadlineExceededError("fire deadline exceeded before execution"));
  }

  while (true) {
    if (steps++ >= config_.max_steps) {
      return fail(ResourceExhaustedError("instruction budget exceeded"));
    }
    if ((steps % kDeadlinePollSteps) == 0 && env_.deadline != nullptr &&
        env_.deadline->Expired()) {
      return fail(DeadlineExceededError("fire deadline exceeded"));
    }
    if (pc >= current->code.size()) {
      return fail(OutOfRangeError("program counter " + std::to_string(pc) + " out of bounds"));
    }
    const Instruction& insn = current->code[pc];
    const int dst = insn.dst;
    const int src = insn.src;

    // Register validation for the safe tier. Vector ops validate against the
    // vector file; everything else against the scalar file.
    const bool vector_op = IsVectorOp(insn.opcode);
    if (vector_op) {
      // Operand roles vary: kMlCall / kVecArgmax / kVecExtract write a scalar
      // via dst, kVecStCtxt's dst is the scalar key register, and kVecLdCtxt /
      // kScalarVal read a scalar via src.
      const bool dst_is_scalar =
          insn.opcode == Opcode::kMlCall || insn.opcode == Opcode::kVecArgmax ||
          insn.opcode == Opcode::kVecExtract || insn.opcode == Opcode::kVecStCtxt;
      const bool src_is_scalar =
          insn.opcode == Opcode::kVecLdCtxt || insn.opcode == Opcode::kScalarVal;
      if ((dst_is_scalar && dst >= kNumScalarRegs) || (!dst_is_scalar && dst >= kNumVectorRegs)) {
        return fail(OutOfRangeError("vector instruction register out of range"));
      }
      if ((src_is_scalar && src >= kNumScalarRegs) || (!src_is_scalar && src >= kNumVectorRegs)) {
        return fail(OutOfRangeError("vector instruction register out of range"));
      }
    } else if (dst >= kNumScalarRegs || src >= kNumScalarRegs) {
      return fail(OutOfRangeError("scalar register out of range"));
    }

    auto& regs = state.regs;
    size_t next_pc = pc + 1;

    if (prof != nullptr) {
      prof->RecordCount(insn.opcode);
      op_start_ns = MonotonicNowNs();
    }

    switch (insn.opcode) {
      case Opcode::kAdd: regs[dst] += regs[src]; break;
      case Opcode::kSub: regs[dst] -= regs[src]; break;
      case Opcode::kMul: regs[dst] *= regs[src]; break;
      case Opcode::kDiv: regs[dst] = regs[src] == 0 ? 0 : regs[dst] / regs[src]; break;
      case Opcode::kMod: regs[dst] = regs[src] == 0 ? 0 : regs[dst] % regs[src]; break;
      case Opcode::kAnd: regs[dst] &= regs[src]; break;
      case Opcode::kOr: regs[dst] |= regs[src]; break;
      case Opcode::kXor: regs[dst] ^= regs[src]; break;
      case Opcode::kShl: regs[dst] <<= (regs[src] & 63); break;
      case Opcode::kShr:
        regs[dst] = static_cast<int64_t>(static_cast<uint64_t>(regs[dst]) >> (regs[src] & 63));
        break;
      case Opcode::kAshr: regs[dst] >>= (regs[src] & 63); break;
      case Opcode::kMov: regs[dst] = regs[src]; break;
      case Opcode::kAddImm: regs[dst] += insn.imm; break;
      case Opcode::kSubImm: regs[dst] -= insn.imm; break;
      case Opcode::kMulImm: regs[dst] *= insn.imm; break;
      case Opcode::kDivImm: regs[dst] = insn.imm == 0 ? 0 : regs[dst] / insn.imm; break;
      case Opcode::kModImm: regs[dst] = insn.imm == 0 ? 0 : regs[dst] % insn.imm; break;
      case Opcode::kAndImm: regs[dst] &= insn.imm; break;
      case Opcode::kOrImm: regs[dst] |= insn.imm; break;
      case Opcode::kXorImm: regs[dst] ^= insn.imm; break;
      case Opcode::kShlImm: regs[dst] <<= (insn.imm & 63); break;
      case Opcode::kShrImm:
        regs[dst] = static_cast<int64_t>(static_cast<uint64_t>(regs[dst]) >> (insn.imm & 63));
        break;
      case Opcode::kAshrImm: regs[dst] >>= (insn.imm & 63); break;
      case Opcode::kMovImm: regs[dst] = insn.imm; break;
      case Opcode::kNeg: regs[dst] = -regs[dst]; break;

      case Opcode::kJa: next_pc = pc + 1 + insn.offset; break;
      case Opcode::kJeq: if (regs[dst] == regs[src]) { next_pc = pc + 1 + insn.offset; } break;
      case Opcode::kJne: if (regs[dst] != regs[src]) { next_pc = pc + 1 + insn.offset; } break;
      case Opcode::kJlt: if (regs[dst] < regs[src]) { next_pc = pc + 1 + insn.offset; } break;
      case Opcode::kJle: if (regs[dst] <= regs[src]) { next_pc = pc + 1 + insn.offset; } break;
      case Opcode::kJgt: if (regs[dst] > regs[src]) { next_pc = pc + 1 + insn.offset; } break;
      case Opcode::kJge: if (regs[dst] >= regs[src]) { next_pc = pc + 1 + insn.offset; } break;
      case Opcode::kJset:
        if ((regs[dst] & regs[src]) != 0) { next_pc = pc + 1 + insn.offset; }
        break;
      case Opcode::kJeqImm: if (regs[dst] == insn.imm) { next_pc = pc + 1 + insn.offset; } break;
      case Opcode::kJneImm: if (regs[dst] != insn.imm) { next_pc = pc + 1 + insn.offset; } break;
      case Opcode::kJltImm: if (regs[dst] < insn.imm) { next_pc = pc + 1 + insn.offset; } break;
      case Opcode::kJleImm: if (regs[dst] <= insn.imm) { next_pc = pc + 1 + insn.offset; } break;
      case Opcode::kJgtImm: if (regs[dst] > insn.imm) { next_pc = pc + 1 + insn.offset; } break;
      case Opcode::kJgeImm: if (regs[dst] >= insn.imm) { next_pc = pc + 1 + insn.offset; } break;
      case Opcode::kJsetImm:
        if ((regs[dst] & insn.imm) != 0) { next_pc = pc + 1 + insn.offset; }
        break;

      case Opcode::kLdStack: {
        if (!ValidStackAccess(insn.offset)) {
          return fail(OutOfRangeError("stack read out of bounds"));
        }
        std::memcpy(&regs[dst], &state.stack[kStackSize + insn.offset], 8);
        break;
      }
      case Opcode::kStStack: {
        if (!ValidStackAccess(insn.offset)) {
          return fail(OutOfRangeError("stack write out of bounds"));
        }
        std::memcpy(&state.stack[kStackSize + insn.offset], &regs[src], 8);
        break;
      }
      case Opcode::kStStackImm: {
        if (!ValidStackAccess(insn.offset)) {
          return fail(OutOfRangeError("stack write out of bounds"));
        }
        std::memcpy(&state.stack[kStackSize + insn.offset], &insn.imm, 8);
        break;
      }

      case Opcode::kLdCtxt: {
        if (insn.offset < 0 || insn.offset >= kCtxtScalarSlots) {
          return fail(OutOfRangeError("context slot out of range"));
        }
        const ContextEntry* entry =
            env_.ctxt != nullptr ? env_.ctxt->Find(static_cast<uint64_t>(regs[src])) : nullptr;
        regs[dst] = entry == nullptr ? 0 : entry->slots[static_cast<size_t>(insn.offset)];
        break;
      }
      case Opcode::kStCtxt: {
        if (insn.offset < 0 || insn.offset >= kCtxtScalarSlots) {
          return fail(OutOfRangeError("context slot out of range"));
        }
        if (env_.ctxt != nullptr) {
          ContextEntry* entry = env_.ctxt->FindOrCreate(static_cast<uint64_t>(regs[dst]));
          if (entry != nullptr) {
            entry->slots[static_cast<size_t>(insn.offset)] = regs[src];
          }
        }
        break;
      }
      case Opcode::kMatchCtxt:
        regs[dst] = env_.ctxt != nullptr &&
                            env_.ctxt->Contains(static_cast<uint64_t>(regs[src]))
                        ? 1
                        : 0;
        break;

      case Opcode::kMapLookup: {
        RmtMap* map = env_.maps != nullptr ? env_.maps->Get(insn.imm) : nullptr;
        if (map == nullptr) {
          return fail(NotFoundError("map " + std::to_string(insn.imm) + " does not exist"));
        }
        regs[dst] = map->Lookup(regs[src]).value_or(0);
        if (const auto fault = RKD_FAILPOINT("vm.map_lookup")) {
          if (fault->force_error) {
            return fail(InternalError("failpoint vm.map_lookup: injected lookup fault"));
          }
          regs[dst] ^= fault->corrupt_xor;
        }
        break;
      }
      case Opcode::kMapExists: {
        RmtMap* map = env_.maps != nullptr ? env_.maps->Get(insn.imm) : nullptr;
        if (map == nullptr) {
          return fail(NotFoundError("map " + std::to_string(insn.imm) + " does not exist"));
        }
        regs[dst] = map->Contains(regs[src]) ? 1 : 0;
        break;
      }
      case Opcode::kMapUpdate: {
        RmtMap* map = env_.maps != nullptr ? env_.maps->Get(insn.imm) : nullptr;
        if (map == nullptr) {
          return fail(NotFoundError("map " + std::to_string(insn.imm) + " does not exist"));
        }
        if (const auto fault = RKD_FAILPOINT("vm.map_update")) {
          if (fault->force_error) {
            return fail(InternalError("failpoint vm.map_update: injected update fault"));
          }
          break;  // injected silent write drop
        }
        map->Update(regs[dst], regs[src]);
        break;
      }
      case Opcode::kMapDelete: {
        RmtMap* map = env_.maps != nullptr ? env_.maps->Get(insn.imm) : nullptr;
        if (map == nullptr) {
          return fail(NotFoundError("map " + std::to_string(insn.imm) + " does not exist"));
        }
        map->Delete(regs[src]);
        break;
      }

      case Opcode::kVecLdCtxt: {
        const ContextEntry* entry =
            env_.ctxt != nullptr ? env_.ctxt->Find(static_cast<uint64_t>(regs[src])) : nullptr;
        if (entry == nullptr) {
          state.vregs[dst].fill(0);
        } else {
          state.vregs[dst] = entry->features;
        }
        break;
      }
      case Opcode::kVecStCtxt: {
        if (env_.ctxt != nullptr) {
          ContextEntry* entry = env_.ctxt->FindOrCreate(static_cast<uint64_t>(regs[dst]));
          if (entry != nullptr) {
            entry->features = state.vregs[src];
          }
        }
        break;
      }
      case Opcode::kVecZero:
        state.vregs[dst].fill(0);
        break;
      case Opcode::kScalarVal: {
        if (insn.offset < 0 || insn.offset >= kVectorLanes) {
          return fail(OutOfRangeError("vector lane out of range"));
        }
        state.vregs[dst][static_cast<size_t>(insn.offset)] = static_cast<int32_t>(regs[src]);
        break;
      }
      case Opcode::kVecExtract: {
        if (insn.offset < 0 || insn.offset >= kVectorLanes) {
          return fail(OutOfRangeError("vector lane out of range"));
        }
        regs[dst] = state.vregs[src][static_cast<size_t>(insn.offset)];
        break;
      }
      case Opcode::kMatMul: {
        const FixedMatrix* tensor =
            env_.tensors != nullptr ? env_.tensors->Get(insn.imm) : nullptr;
        if (tensor == nullptr) {
          return fail(NotFoundError("tensor " + std::to_string(insn.imm) + " does not exist"));
        }
        if (tensor->rows() > kVectorLanes || tensor->cols() > kVectorLanes) {
          return fail(OutOfRangeError("tensor larger than the vector register file"));
        }
        std::array<int32_t, kVectorLanes> result{};
        tensor->MatVec(state.vregs[src], result);
        state.vregs[dst] = result;
        break;
      }
      case Opcode::kVecAddT: {
        const FixedMatrix* tensor =
            env_.tensors != nullptr ? env_.tensors->Get(insn.imm) : nullptr;
        if (tensor == nullptr) {
          return fail(NotFoundError("tensor " + std::to_string(insn.imm) + " does not exist"));
        }
        const size_t n = tensor->rows() < kVectorLanes ? tensor->rows() : kVectorLanes;
        for (size_t i = 0; i < n; ++i) {
          state.vregs[dst][i] = SatAdd32(state.vregs[dst][i], tensor->at(i, 0));
        }
        break;
      }
      case Opcode::kVecAdd:
        for (int i = 0; i < kVectorLanes; ++i) {
          state.vregs[dst][i] = SatAdd32(state.vregs[dst][i], state.vregs[src][i]);
        }
        break;
      case Opcode::kVecRelu:
        for (int i = 0; i < kVectorLanes; ++i) {
          const int32_t v = state.vregs[src][i];
          state.vregs[dst][i] = v > 0 ? v : 0;
        }
        break;
      case Opcode::kVecArgmax: {
        int best = 0;
        for (int i = 1; i < kVectorLanes; ++i) {
          if (state.vregs[src][i] > state.vregs[src][best]) {
            best = i;
          }
        }
        regs[dst] = best;
        break;
      }
      case Opcode::kVecDot: {
        int64_t acc = 0;
        for (int i = 0; i < kVectorLanes; ++i) {
          acc += static_cast<int64_t>(state.vregs[dst][i]) * state.vregs[src][i];
        }
        // The Q16.16 product lands in the scalar register numbered like the
        // vector dst operand (v2 dot v3 -> r2).
        regs[insn.dst] = acc >> 16;
        break;
      }

      case Opcode::kCall: {
        if (insn.imm < 0 || insn.imm >= static_cast<int64_t>(HelperId::kHelperCount)) {
          return fail(NotFoundError("helper " + std::to_string(insn.imm) + " does not exist"));
        }
        ++helper_calls;
        if (prof != nullptr) {
          prof->RecordHelper(insn.imm);
        }
        if (const auto fault = RKD_FAILPOINT("vm.helper"); fault && fault->force_error) {
          return fail(InternalError("failpoint vm.helper: injected helper fault"));
        }
        int64_t call_args[5] = {regs[1], regs[2], regs[3], regs[4], regs[5]};
        if (env_.helpers != nullptr) {
          // Traced fires time each helper call under its own span so the
          // bottleneck analyzer can attribute helper-bound programs.
          ScopedSpan helper_span(env_.tracer, "vm.helper");
          helper_span.Tag("id", insn.imm);
          regs[0] = CallHelper(static_cast<HelperId>(insn.imm), *env_.helpers, call_args);
        } else {
          regs[0] = 0;
        }
        break;
      }
      case Opcode::kMlCall: {
        ++ml_calls;
        const ModelPtr model = env_.models != nullptr ? env_.models->Get(insn.imm) : nullptr;
        if (env_.tracer != nullptr && model != nullptr) {
          ScopedSpan ml_span(env_.tracer, "ml.eval");
          ml_span.Tag("model", insn.imm);
          regs[dst] = model->Predict(state.vregs[src]);
          ml_span.Tag("result", regs[dst]);
        } else {
          regs[dst] = model != nullptr ? model->Predict(state.vregs[src]) : kNoModelSentinel;
        }
        if (const auto fault = RKD_FAILPOINT("ml.eval")) {
          // Simulated weight corruption: the model "computed" a wrong class.
          if (fault->force_error) {
            return fail(InternalError("failpoint ml.eval: injected model fault"));
          }
          regs[dst] ^= fault->corrupt_xor;
        }
        break;
      }
      case Opcode::kTailCall: {
        const BytecodeProgram* target =
            env_.resolve_table ? env_.resolve_table(insn.imm) : nullptr;
        if (target != nullptr && !target->code.empty() &&
            tail_calls < kMaxTailCallDepth) {
          ++tail_calls;
          current = target;
          next_pc = 0;
        }
        // Unresolvable target or depth exhausted: fall through (eBPF rule).
        break;
      }
      case Opcode::kExit: {
        publish();
        return regs[0];
      }
      case Opcode::kOpcodeCount:
        return fail(InvalidArgumentError("invalid opcode"));
    }

    if (prof != nullptr) {
      prof->RecordNs(insn.opcode, MonotonicNowNs() - op_start_ns);
    }

    pc = next_pc;
  }
}

}  // namespace rkd
