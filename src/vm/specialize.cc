#include "src/vm/specialize.h"

#include <cstring>
#include <limits>
#include <optional>

#include "src/base/failpoints.h"
#include "src/ml/decision_tree.h"
#include "src/ml/forest.h"
#include "src/ml/guarded.h"
#include "src/ml/linear.h"
#include "src/ml/quantize.h"

namespace rkd {

namespace {

constexpr uint16_t kOpCount = static_cast<uint16_t>(Opcode::kOpcodeCount);

// Extended operations produced by folding. Values above the opcode range so
// the executor can switch on one uint16.
constexpr uint16_t kSpecMapLookupConst = kOpCount + 0;   // imm = folded value
constexpr uint16_t kSpecMapLookupArray = kOpCount + 1;   // aux -> BurnedMap (raw cells)
constexpr uint16_t kSpecMapLookupBurned = kOpCount + 2;  // aux -> BurnedMap (devirtualized)
constexpr uint16_t kSpecMlCallBurned = kOpCount + 3;     // aux -> FoldedModel
constexpr uint16_t kSpecMatMulTile = kOpCount + 4;       // aux -> TileKernel
constexpr uint16_t kSpecVecAddTBurned = kOpCount + 5;    // aux -> bias tensor
// Classifier head: kMatMul (+ fused in-place relu) whose output vreg is
// consumed by a kVecArgmax and provably dead afterwards — the tile kernel
// writes a local buffer and only the argmax lane index reaches the scalar
// file. dst = argmax's scalar reg, src = the matmul input vreg.
constexpr uint16_t kSpecMatMulTileArgmax = kOpCount + 6;  // aux -> TileKernel

#define OPC(name) static_cast<uint16_t>(::rkd::Opcode::name)

// Devirtualized Predict thunks: folding a model pins its dynamic type for
// the specialization's lifetime (any install bumps the guarded slot
// version), so the concrete Predict can be resolved once here instead of
// through the vtable on every fire. Every production model class is final.
using RawPredictFn = int64_t (*)(const InferenceModel*, std::span<const int32_t>);

template <typename T>
int64_t PredictAs(const InferenceModel* model, std::span<const int32_t> features) {
  return static_cast<const T*>(model)->Predict(features);
}

// True when no instruction at pc > `after_pc` can observe vreg `v`
// (conservative: full overwrites count as mentions, and a tail call may
// hand the frame to a program that reads anything). Control flow is
// forward-only, so a linear suffix scan covers every reachable read.
bool VregDeadAfter(const BytecodeProgram& program, int64_t after_pc, uint8_t v) {
  const int64_t n = static_cast<int64_t>(program.code.size());
  for (int64_t pc = after_pc + 1; pc < n; ++pc) {
    const Instruction& insn = program.code[static_cast<size_t>(pc)];
    switch (insn.opcode) {
      case Opcode::kVecLdCtxt:
      case Opcode::kVecZero:
      case Opcode::kScalarVal:
      case Opcode::kVecAddT:
        if (insn.dst == v) {
          return false;
        }
        break;
      case Opcode::kVecStCtxt:
      case Opcode::kVecExtract:
      case Opcode::kVecArgmax:
      case Opcode::kMlCall:
        if (insn.src == v) {
          return false;
        }
        break;
      case Opcode::kMatMul:
      case Opcode::kVecRelu:
      case Opcode::kVecAdd:
      case Opcode::kVecDot:
        if (insn.dst == v || insn.src == v) {
          return false;
        }
        break;
      case Opcode::kTailCall:
        return false;
      default:
        break;
    }
  }
  return true;
}

RawPredictFn ResolvePredict(const InferenceModel* model) {
  if (dynamic_cast<const QuantizedMlp*>(model) != nullptr) {
    return PredictAs<QuantizedMlp>;
  }
  if (dynamic_cast<const DecisionTree*>(model) != nullptr) {
    return PredictAs<DecisionTree>;
  }
  if (dynamic_cast<const RandomForest*>(model) != nullptr) {
    return PredictAs<RandomForest>;
  }
  if (dynamic_cast<const IntegerLinear*>(model) != nullptr) {
    return PredictAs<IntegerLinear>;
  }
  if (dynamic_cast<const GuardedModel*>(model) != nullptr) {
    return PredictAs<GuardedModel>;
  }
  return PredictAs<InferenceModel>;  // unknown subclass: keep the virtual call
}

int32_t SatAdd32(int32_t a, int32_t b) {
  const int64_t wide = static_cast<int64_t>(a) + b;
  if (wide > std::numeric_limits<int32_t>::max()) {
    return std::numeric_limits<int32_t>::max();
  }
  if (wide < std::numeric_limits<int32_t>::min()) {
    return std::numeric_limits<int32_t>::min();
  }
  return static_cast<int32_t>(wide);
}

// Compile-time ALU evaluation with the exact runtime handler semantics
// (div/mod by zero yield 0, shifts mask to 6 bits, kShr is logical).
// Add/sub/mul/shl go through uint64 so evaluating a dynamically-unreachable
// op can never trip signed-overflow UB that the runtime would not have.
// Returns false when folding is unsafe (INT64_MIN / -1 must keep its
// runtime trap).
bool EvalAlu(Opcode op, int64_t a, int64_t b, int64_t* out) {
  const uint64_t ua = static_cast<uint64_t>(a);
  const uint64_t ub = static_cast<uint64_t>(b);
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kAddImm:
      *out = static_cast<int64_t>(ua + ub);
      return true;
    case Opcode::kSub:
    case Opcode::kSubImm:
      *out = static_cast<int64_t>(ua - ub);
      return true;
    case Opcode::kMul:
    case Opcode::kMulImm:
      *out = static_cast<int64_t>(ua * ub);
      return true;
    case Opcode::kDiv:
    case Opcode::kDivImm:
      if (b == 0) {
        *out = 0;
        return true;
      }
      if (a == std::numeric_limits<int64_t>::min() && b == -1) {
        return false;
      }
      *out = a / b;
      return true;
    case Opcode::kMod:
    case Opcode::kModImm:
      if (b == 0) {
        *out = 0;
        return true;
      }
      if (a == std::numeric_limits<int64_t>::min() && b == -1) {
        return false;
      }
      *out = a % b;
      return true;
    case Opcode::kAnd:
    case Opcode::kAndImm:
      *out = a & b;
      return true;
    case Opcode::kOr:
    case Opcode::kOrImm:
      *out = a | b;
      return true;
    case Opcode::kXor:
    case Opcode::kXorImm:
      *out = a ^ b;
      return true;
    case Opcode::kShl:
    case Opcode::kShlImm:
      *out = static_cast<int64_t>(ua << (ub & 63));
      return true;
    case Opcode::kShr:
    case Opcode::kShrImm:
      *out = static_cast<int64_t>(ua >> (ub & 63));
      return true;
    case Opcode::kAshr:
    case Opcode::kAshrImm:
      *out = a >> (b & 63);
      return true;
    case Opcode::kMov:
    case Opcode::kMovImm:
      *out = b;
      return true;
    default:
      return false;
  }
}

// Branch condition with the exact runtime handler semantics.
bool EvalBranch(Opcode op, int64_t a, int64_t b) {
  switch (op) {
    case Opcode::kJeq:
    case Opcode::kJeqImm:
      return a == b;
    case Opcode::kJne:
    case Opcode::kJneImm:
      return a != b;
    case Opcode::kJlt:
    case Opcode::kJltImm:
      return a < b;
    case Opcode::kJle:
    case Opcode::kJleImm:
      return a <= b;
    case Opcode::kJgt:
    case Opcode::kJgtImm:
      return a > b;
    case Opcode::kJge:
    case Opcode::kJgeImm:
      return a >= b;
    case Opcode::kJset:
    case Opcode::kJsetImm:
      return (a & b) != 0;
    default:
      return false;
  }
}

bool IsImmBranch(Opcode op) {
  switch (op) {
    case Opcode::kJeqImm:
    case Opcode::kJneImm:
    case Opcode::kJltImm:
    case Opcode::kJleImm:
    case Opcode::kJgtImm:
    case Opcode::kJgeImm:
    case Opcode::kJsetImm:
      return true;
    default:
      return false;
  }
}

// --- Tile kernels ---
//
// All kernels accumulate each output lane's terms through uint64 wraparound
// addition, which is commutative and associative and equals two's-complement
// int64 accumulation bit for bit — so ANY summation order produces a result
// bit-identical to FixedMatrix::MatVec's sequential one. That freedom is the
// whole point: the output-stationary kernels split each row's reduction into
// four independent accumulator chains (the sequential chain in MatVec is
// latency-bound on the add; four chains keep the multiplier pipeline full),
// and fixed-trip-count variants let the compiler fully unroll the common
// layer sizes. Measured ~2x over the generic MatVec at 32x32.

template <size_t Cols>
void MatVecFixedCols(const int32_t* w, size_t rows, size_t cols, const int32_t* x, int32_t* y) {
  (void)cols;
  for (size_t r = 0; r < rows; ++r) {
    const int32_t* row = w + r * Cols;
    uint64_t a0 = 0;
    uint64_t a1 = 0;
    uint64_t a2 = 0;
    uint64_t a3 = 0;
    size_t c = 0;
    for (; c + 4 <= Cols; c += 4) {
      a0 += static_cast<uint64_t>(static_cast<int64_t>(row[c + 0]) * x[c + 0]);
      a1 += static_cast<uint64_t>(static_cast<int64_t>(row[c + 1]) * x[c + 1]);
      a2 += static_cast<uint64_t>(static_cast<int64_t>(row[c + 2]) * x[c + 2]);
      a3 += static_cast<uint64_t>(static_cast<int64_t>(row[c + 3]) * x[c + 3]);
    }
    for (; c < Cols; ++c) {
      a0 += static_cast<uint64_t>(static_cast<int64_t>(row[c]) * x[c]);
    }
    y[r] = static_cast<int32_t>(static_cast<int64_t>(a0 + a1 + a2 + a3) >>
                                Fixed32::kFractionBits);
  }
}

void MatVecGenericOS(const int32_t* w, size_t rows, size_t cols, const int32_t* x, int32_t* y) {
  for (size_t r = 0; r < rows; ++r) {
    const int32_t* row = w + r * cols;
    uint64_t a0 = 0;
    uint64_t a1 = 0;
    uint64_t a2 = 0;
    uint64_t a3 = 0;
    size_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      a0 += static_cast<uint64_t>(static_cast<int64_t>(row[c + 0]) * x[c + 0]);
      a1 += static_cast<uint64_t>(static_cast<int64_t>(row[c + 1]) * x[c + 1]);
      a2 += static_cast<uint64_t>(static_cast<int64_t>(row[c + 2]) * x[c + 2]);
      a3 += static_cast<uint64_t>(static_cast<int64_t>(row[c + 3]) * x[c + 3]);
    }
    for (; c < cols; ++c) {
      a0 += static_cast<uint64_t>(static_cast<int64_t>(row[c]) * x[c]);
    }
    y[r] = static_cast<int32_t>(static_cast<int64_t>(a0 + a1 + a2 + a3) >>
                                Fixed32::kFractionBits);
  }
}

// Weight-stationary: process four output rows at a time so each x element
// is loaded once per block and reused across the four row accumulators —
// all held in registers (a full acc[rows] array bounces through memory and
// is latency-bound on store forwarding).
inline void MatVecRowBlock4(const int32_t* w, size_t r, size_t cols, const int32_t* x,
                            int32_t* y) {
  const int32_t* row0 = w + (r + 0) * cols;
  const int32_t* row1 = w + (r + 1) * cols;
  const int32_t* row2 = w + (r + 2) * cols;
  const int32_t* row3 = w + (r + 3) * cols;
  uint64_t a0 = 0;
  uint64_t a1 = 0;
  uint64_t a2 = 0;
  uint64_t a3 = 0;
  for (size_t c = 0; c < cols; ++c) {
    const int64_t xc = x[c];
    a0 += static_cast<uint64_t>(static_cast<int64_t>(row0[c]) * xc);
    a1 += static_cast<uint64_t>(static_cast<int64_t>(row1[c]) * xc);
    a2 += static_cast<uint64_t>(static_cast<int64_t>(row2[c]) * xc);
    a3 += static_cast<uint64_t>(static_cast<int64_t>(row3[c]) * xc);
  }
  y[r + 0] = static_cast<int32_t>(static_cast<int64_t>(a0) >> Fixed32::kFractionBits);
  y[r + 1] = static_cast<int32_t>(static_cast<int64_t>(a1) >> Fixed32::kFractionBits);
  y[r + 2] = static_cast<int32_t>(static_cast<int64_t>(a2) >> Fixed32::kFractionBits);
  y[r + 3] = static_cast<int32_t>(static_cast<int64_t>(a3) >> Fixed32::kFractionBits);
}

template <size_t Rows>
void MatVecFixedRows(const int32_t* w, size_t rows, size_t cols, const int32_t* x, int32_t* y) {
  (void)rows;
  static_assert(Rows % 4 == 0);
  for (size_t r = 0; r < Rows; r += 4) {
    MatVecRowBlock4(w, r, cols, x, y);
  }
}

void MatVecGenericWS(const int32_t* w, size_t rows, size_t cols, const int32_t* x, int32_t* y) {
  size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    MatVecRowBlock4(w, r, cols, x, y);
  }
  for (; r < rows; ++r) {
    const int32_t* row = w + r * cols;
    uint64_t acc = 0;
    for (size_t c = 0; c < cols; ++c) {
      acc += static_cast<uint64_t>(static_cast<int64_t>(row[c]) * x[c]);
    }
    y[r] = static_cast<int32_t>(static_cast<int64_t>(acc) >> Fixed32::kFractionBits);
  }
}

}  // namespace

std::string_view DataflowStrategyName(DataflowStrategy strategy) {
  switch (strategy) {
    case DataflowStrategy::kOutputStationary:
      return "output_stationary";
    case DataflowStrategy::kWeightStationary:
      return "weight_stationary";
  }
  return "unknown";
}

std::string_view DeoptReasonName(DeoptReason reason) {
  switch (reason) {
    case DeoptReason::kMapWrite:
      return "map_write";
    case DeoptReason::kModelInstall:
      return "model_install";
    case DeoptReason::kTableMutation:
      return "table_mutation";
    case DeoptReason::kReasonCount:
      break;
  }
  return "unknown";
}

Result<SpecializedProgram> SpecializedProgram::Specialize(const BytecodeProgram& program,
                                                          const SpecializeContext& ctx) {
  if (program.code.empty()) {
    return InvalidArgumentError("specialize: empty program");
  }
  const int64_t n = static_cast<int64_t>(program.code.size());

  SpecializedProgram out;
  out.name_ = program.name;

  // Pin guard versions FIRST: a write that lands between this pin and a
  // folding read below makes the guard fail closed (first fire deopts and
  // the control plane respecializes) — never the reverse.
  if (ctx.map_write_version != nullptr) {
    out.pinned_map_version_ = ctx.map_write_version->load(std::memory_order_acquire);
  }
  if (ctx.table_version != nullptr) {
    out.table_version_cell_ = ctx.table_version;
    out.pinned_table_version_ = ctx.table_version->load(std::memory_order_acquire);
  }

  // --- Pass 1: validation (mirrors CompiledProgram::Compile) + leaders ---
  std::vector<bool> leader(static_cast<size_t>(n), false);
  leader[0] = true;
  // Fire-entry reset analysis: a vreg escapes the entry zeroing only when
  // its first access is a full 32-lane write. Control flow is forward-only,
  // so full writes are trusted only inside the entry straight-line prefix
  // (before any branch, tail call, or secondary leader) — a later full write
  // could be jumped over.
  uint8_t vregs_fully_written = 0;
  bool entry_prefix = true;
  const auto vreg_read = [&](uint8_t v) {
    if ((vregs_fully_written & (1u << v)) == 0) {
      out.vreg_reset_mask_ |= static_cast<uint8_t>(1u << v);
    }
  };
  const auto vreg_full_write = [&](uint8_t v) {
    if (entry_prefix) {
      vregs_fully_written |= static_cast<uint8_t>(1u << v);
    }
  };
  for (int64_t pc = 0; pc < n; ++pc) {
    const Instruction& insn = program.code[static_cast<size_t>(pc)];
    if (pc > 0 && leader[static_cast<size_t>(pc)]) {
      entry_prefix = false;  // a branch targets (or falls through to) here
    }

    const bool vector_op = IsVectorOp(insn.opcode);
    if (vector_op) {
      const bool dst_is_scalar =
          insn.opcode == Opcode::kMlCall || insn.opcode == Opcode::kVecArgmax ||
          insn.opcode == Opcode::kVecExtract || insn.opcode == Opcode::kVecStCtxt;
      const bool src_is_scalar =
          insn.opcode == Opcode::kVecLdCtxt || insn.opcode == Opcode::kScalarVal;
      if ((dst_is_scalar && insn.dst >= kNumScalarRegs) ||
          (!dst_is_scalar && insn.dst >= kNumVectorRegs) ||
          (src_is_scalar && insn.src >= kNumScalarRegs) ||
          (!src_is_scalar && insn.src >= kNumVectorRegs)) {
        return VerificationFailedError("specialize: register out of range at " +
                                       std::to_string(pc));
      }
    } else if (insn.dst >= kNumScalarRegs || insn.src >= kNumScalarRegs) {
      return VerificationFailedError("specialize: register out of range at " + std::to_string(pc));
    }

    // Vreg access classification (reads before writes, matching execution).
    switch (insn.opcode) {
      case Opcode::kVecLdCtxt:
      case Opcode::kVecZero:
        vreg_full_write(insn.dst);
        break;
      case Opcode::kVecStCtxt:
      case Opcode::kVecExtract:
      case Opcode::kVecArgmax:
      case Opcode::kMlCall:
        vreg_read(insn.src);
        break;
      case Opcode::kScalarVal:
        vreg_read(insn.dst);  // single-lane write: the other lanes show through
        break;
      case Opcode::kMatMul:
        vreg_read(insn.src);
        vreg_full_write(insn.dst);  // all paths fill every lane of dst
        break;
      case Opcode::kVecAddT:
        vreg_read(insn.dst);
        break;
      case Opcode::kVecAdd:
      case Opcode::kVecDot:
        vreg_read(insn.dst);
        vreg_read(insn.src);
        break;
      case Opcode::kVecRelu:
        vreg_read(insn.src);
        vreg_full_write(insn.dst);
        break;
      default:
        break;
    }

    if (IsBranch(insn.opcode)) {
      const int64_t target = pc + 1 + insn.offset;
      if (target <= pc) {
        return VerificationFailedError("specialize: backward jump at " + std::to_string(pc));
      }
      if (target >= n) {
        return VerificationFailedError("specialize: jump out of range at " + std::to_string(pc));
      }
      leader[static_cast<size_t>(target)] = true;
      if (pc + 1 < n) {
        leader[static_cast<size_t>(pc + 1)] = true;  // conditional fall-through
      }
    }

    switch (insn.opcode) {
      case Opcode::kLdStack:
      case Opcode::kStStack:
      case Opcode::kStStackImm:
        if (insn.offset < -kStackSize || insn.offset > -8 || insn.offset % 8 != 0) {
          return VerificationFailedError("specialize: bad stack offset at " + std::to_string(pc));
        }
        out.touches_stack_ = true;
        break;
      case Opcode::kLdCtxt:
      case Opcode::kStCtxt:
        if (insn.offset < 0 || insn.offset >= kCtxtScalarSlots) {
          return VerificationFailedError("specialize: bad ctxt slot at " + std::to_string(pc));
        }
        break;
      case Opcode::kScalarVal:
      case Opcode::kVecExtract:
        if (insn.offset < 0 || insn.offset >= kVectorLanes) {
          return VerificationFailedError("specialize: bad vector lane at " + std::to_string(pc));
        }
        break;
      case Opcode::kCall:
        if (insn.imm < 0 || insn.imm >= static_cast<int64_t>(HelperId::kHelperCount)) {
          return VerificationFailedError("specialize: unknown helper at " + std::to_string(pc));
        }
        break;
      case Opcode::kTailCall:
        // The chained program executes in the same frame; assume the worst.
        out.touches_stack_ = true;
        out.touches_vregs_ = true;
        out.vreg_reset_mask_ = 0xff;
        if (pc + 1 < n) {
          leader[static_cast<size_t>(pc + 1)] = true;  // fall-through resume
        }
        break;
      case Opcode::kOpcodeCount:
        return VerificationFailedError("specialize: invalid opcode at " + std::to_string(pc));
      default:
        break;
    }
    if (vector_op) {
      out.touches_vregs_ = true;
    }
    if (IsBranch(insn.opcode) || insn.opcode == Opcode::kTailCall) {
      entry_prefix = false;  // later full writes could be jumped over
    }
  }
  const Opcode last = program.code.back().opcode;
  if (last != Opcode::kExit && last != Opcode::kJa) {
    return VerificationFailedError("specialize: program may fall off the end");
  }

  // Leader pc -> superblock index, in pc order (fall-through == blk + 1).
  std::vector<int32_t> block_of(static_cast<size_t>(n), -1);
  int32_t num_blocks = 0;
  for (int64_t pc = 0; pc < n; ++pc) {
    if (leader[static_cast<size_t>(pc)]) {
      block_of[static_cast<size_t>(pc)] = num_blocks++;
    }
  }
  out.blocks_.reserve(static_cast<size_t>(num_blocks));

  // --- Pass 2: per-block constant propagation + specialized emission ---
  const bool maps_foldable =
      ctx.fold_map_constants && ctx.maps != nullptr && ctx.map_write_version != nullptr;
  const auto fire_written = [&ctx](int64_t id) {
    for (const int64_t written : ctx.fire_written_maps) {
      if (written == id) {
        return true;
      }
    }
    return false;
  };

  std::array<std::optional<int64_t>, kNumScalarRegs> known;
  bool any_map_fold = false;

  const auto emit = [&out](uint16_t code, uint8_t dst, uint8_t src, int32_t arg, uint32_t aux,
                           int64_t imm) {
    out.ops_.push_back(SpecOp{code, dst, src, arg, aux, imm});
  };

  int skip_count = 0;  // following insns already fused into the last emission
  for (int64_t pc = 0; pc < n; ++pc) {
    if (leader[static_cast<size_t>(pc)]) {
      out.blocks_.push_back(Superblock{static_cast<uint32_t>(out.ops_.size()), 0});
      known.fill(std::nullopt);  // conservatively unknown at every block entry
    }
    if (skip_count > 0) {
      --skip_count;
      continue;
    }
    const Instruction& insn = program.code[static_cast<size_t>(pc)];
    const uint16_t code = static_cast<uint16_t>(insn.opcode);

    switch (insn.opcode) {
      // --- Scalar ALU: propagate constants; a fully-known result folds to
      // one kMovImm. ---
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kMod:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kAshr: {
        int64_t v = 0;
        if (known[insn.dst] && known[insn.src] &&
            EvalAlu(insn.opcode, *known[insn.dst], *known[insn.src], &v)) {
          emit(OPC(kMovImm), insn.dst, 0, 0, 0, v);
          known[insn.dst] = v;
        } else {
          emit(code, insn.dst, insn.src, 0, 0, insn.imm);
          known[insn.dst] = std::nullopt;
        }
        break;
      }
      case Opcode::kAddImm:
      case Opcode::kSubImm:
      case Opcode::kMulImm:
      case Opcode::kDivImm:
      case Opcode::kModImm:
      case Opcode::kAndImm:
      case Opcode::kOrImm:
      case Opcode::kXorImm:
      case Opcode::kShlImm:
      case Opcode::kShrImm:
      case Opcode::kAshrImm: {
        int64_t v = 0;
        if (known[insn.dst] && EvalAlu(insn.opcode, *known[insn.dst], insn.imm, &v)) {
          emit(OPC(kMovImm), insn.dst, 0, 0, 0, v);
          known[insn.dst] = v;
        } else {
          emit(code, insn.dst, insn.src, 0, 0, insn.imm);
          known[insn.dst] = std::nullopt;
        }
        break;
      }
      case Opcode::kMov:
        if (known[insn.src]) {
          emit(OPC(kMovImm), insn.dst, 0, 0, 0, *known[insn.src]);
        } else {
          emit(code, insn.dst, insn.src, 0, 0, insn.imm);
        }
        known[insn.dst] = known[insn.src];
        break;
      case Opcode::kMovImm:
        emit(code, insn.dst, 0, 0, 0, insn.imm);
        known[insn.dst] = insn.imm;
        break;
      case Opcode::kNeg: {
        if (known[insn.dst]) {
          const int64_t v = static_cast<int64_t>(0 - static_cast<uint64_t>(*known[insn.dst]));
          emit(OPC(kMovImm), insn.dst, 0, 0, 0, v);
          known[insn.dst] = v;
        } else {
          emit(code, insn.dst, insn.src, 0, 0, 0);
        }
        break;
      }

      // --- Branches: arg holds the absolute target BLOCK; a known
      // condition folds to an unconditional jump or disappears. ---
      case Opcode::kJa:
      case Opcode::kJeq:
      case Opcode::kJne:
      case Opcode::kJlt:
      case Opcode::kJle:
      case Opcode::kJgt:
      case Opcode::kJge:
      case Opcode::kJset:
      case Opcode::kJeqImm:
      case Opcode::kJneImm:
      case Opcode::kJltImm:
      case Opcode::kJleImm:
      case Opcode::kJgtImm:
      case Opcode::kJgeImm:
      case Opcode::kJsetImm: {
        const int64_t target = pc + 1 + insn.offset;
        const int32_t target_block = block_of[static_cast<size_t>(target)];
        if (insn.opcode == Opcode::kJa) {
          emit(OPC(kJa), 0, 0, target_block, 0, 0);
          break;
        }
        std::optional<bool> taken;
        if (IsImmBranch(insn.opcode)) {
          if (known[insn.dst]) {
            taken = EvalBranch(insn.opcode, *known[insn.dst], insn.imm);
          }
        } else if (known[insn.dst] && known[insn.src]) {
          taken = EvalBranch(insn.opcode, *known[insn.dst], *known[insn.src]);
        }
        if (taken.has_value()) {
          if (*taken) {
            emit(OPC(kJa), 0, 0, target_block, 0, 0);
          }
          // Known-not-taken: drop the branch; the block falls through.
        } else {
          emit(code, insn.dst, insn.src, target_block, 0, insn.imm);
        }
        break;
      }

      // --- Maps ---
      case Opcode::kMapLookup: {
        RmtMap* map = maps_foldable ? ctx.maps->Get(insn.imm) : nullptr;
        if (map == nullptr || fire_written(insn.imm)) {
          emit(code, insn.dst, insn.src, 0, 0, insn.imm);  // generic, live reads
        } else if (map->kind() == MapKind::kRing) {
          // Ring lookups are always nullopt -> 0 regardless of key or
          // contents, so this fold needs no write-version guard at all.
          emit(kSpecMapLookupConst, insn.dst, insn.src, 0, 0, 0);
          ++out.folded_lookups_;
        } else if (known[insn.src] && map->kind() != MapKind::kLru) {
          // Array/hash lookups are side-effect free: evaluate now. (LRU
          // lookups refresh recency — they keep their per-fire call.)
          const int64_t v = map->Lookup(*known[insn.src]).value_or(0);
          emit(kSpecMapLookupConst, insn.dst, insn.src, 0, 0, v);
          ++out.folded_lookups_;
          any_map_fold = true;
        } else if (map->kind() == MapKind::kArray) {
          const auto cells = static_cast<ArrayMap*>(map)->cells();
          emit(kSpecMapLookupArray, insn.dst, insn.src, 0,
               static_cast<uint32_t>(out.burned_maps_.size()), insn.imm);
          out.burned_maps_.push_back(BurnedMap{map, cells.data(), cells.size()});
          ++out.burned_lookups_;
          any_map_fold = true;
        } else {
          emit(kSpecMapLookupBurned, insn.dst, insn.src, 0,
               static_cast<uint32_t>(out.burned_maps_.size()), insn.imm);
          out.burned_maps_.push_back(BurnedMap{map, nullptr, 0});
          ++out.burned_lookups_;
          any_map_fold = true;
        }
        // Even a folded value is perturbable at runtime (vm.map_lookup
        // corrupt failpoint), so dst is never a propagatable constant.
        known[insn.dst] = std::nullopt;
        break;
      }
      case Opcode::kMapExists: {
        RmtMap* map = maps_foldable ? ctx.maps->Get(insn.imm) : nullptr;
        if (map != nullptr && !fire_written(insn.imm) && known[insn.src]) {
          const int64_t v = map->Contains(*known[insn.src]) ? 1 : 0;
          emit(OPC(kMovImm), insn.dst, 0, 0, 0, v);
          known[insn.dst] = v;  // kMapExists has no failpoint to perturb it
          ++out.folded_lookups_;
          any_map_fold = true;
        } else {
          emit(code, insn.dst, insn.src, 0, 0, insn.imm);
          known[insn.dst] = std::nullopt;
        }
        break;
      }
      case Opcode::kMapUpdate:
      case Opcode::kMapDelete:
        emit(code, insn.dst, insn.src, 0, 0, insn.imm);
        break;

      // --- ML ---
      case Opcode::kMlCall: {
        const ModelSlot* slot =
            ctx.fold_models && ctx.models != nullptr ? ctx.models->slot(insn.imm) : nullptr;
        ModelSlot::VersionedModel snap;
        if (slot != nullptr) {
          snap = slot->Snapshot();
        }
        if (snap.model != nullptr) {
          emit(kSpecMlCallBurned, insn.dst, insn.src, 0,
               static_cast<uint32_t>(out.models_.size()), insn.imm);
          out.models_.push_back(FoldedModel{snap.model, snap.model.get(), slot,
                                            ResolvePredict(snap.model.get()), snap.version,
                                            insn.imm});
        } else {
          // Empty slot: the generic op picks a later install up live, so
          // there is no pinned state to guard.
          emit(code, insn.dst, insn.src, 0, 0, insn.imm);
        }
        known[insn.dst] = std::nullopt;
        break;
      }
      case Opcode::kMatMul: {
        const FixedMatrix* tensor = ctx.tensors != nullptr ? ctx.tensors->Get(insn.imm) : nullptr;
        if (ctx.tensors == nullptr) {
          emit(code, insn.dst, insn.src, 0, 0, insn.imm);
        } else if (tensor == nullptr || tensor->rows() > kVectorLanes ||
                   tensor->cols() > kVectorLanes) {
          // Tier 2 zero-fills; tensors are immutable, so fold the fill.
          emit(OPC(kVecZero), insn.dst, 0, 0, 0, 0);
        } else {
          const auto rows = static_cast<uint32_t>(tensor->rows());
          const auto cols = static_cast<uint32_t>(tensor->cols());
          // Tall-skinny layers reuse x best column-wise (weight-stationary);
          // wide layers vectorize the per-output reduction (output-
          // stationary). Fixed-trip tiles when the reduction length matches.
          const DataflowStrategy strategy = cols < rows ? DataflowStrategy::kWeightStationary
                                                        : DataflowStrategy::kOutputStationary;
          MatVecFn fn = nullptr;
          if (strategy == DataflowStrategy::kOutputStationary) {
            switch (cols) {
              case 4: fn = MatVecFixedCols<4>; break;
              case 8: fn = MatVecFixedCols<8>; break;
              case 16: fn = MatVecFixedCols<16>; break;
              case 32: fn = MatVecFixedCols<32>; break;
              default: fn = MatVecGenericOS; break;
            }
          } else {
            switch (rows) {
              case 4: fn = MatVecFixedRows<4>; break;
              case 8: fn = MatVecFixedRows<8>; break;
              case 16: fn = MatVecFixedRows<16>; break;
              case 32: fn = MatVecFixedRows<32>; break;
              default: fn = MatVecGenericWS; break;
            }
          }
          // Fold an immediately following in-place relu into the kernel
          // store: clamping all lanes after the tile writes is bit-identical
          // to the separate kVecRelu pass over the matmul's output vreg.
          bool fuse_relu = false;
          int64_t look = pc + 1;
          if (look < n && !leader[static_cast<size_t>(look)]) {
            const Instruction& next = program.code[static_cast<size_t>(look)];
            if (next.opcode == Opcode::kVecRelu && next.dst == insn.dst &&
                next.src == insn.dst) {
              fuse_relu = true;
              ++look;
            }
          }
          // Classifier-head fusion: when the (relu'd) output feeds a
          // kVecArgmax and is dead afterwards, elide the vreg store
          // entirely — only the winning lane index leaves the kernel.
          bool fuse_argmax = false;
          uint8_t argmax_dst = 0;
          if (look < n && !leader[static_cast<size_t>(look)]) {
            const Instruction& next = program.code[static_cast<size_t>(look)];
            if (next.opcode == Opcode::kVecArgmax && next.src == insn.dst &&
                VregDeadAfter(program, look, insn.dst)) {
              fuse_argmax = true;
              argmax_dst = next.dst;
              ++look;
            }
          }
          skip_count = static_cast<int>(look - (pc + 1));
          if (fuse_argmax) {
            emit(kSpecMatMulTileArgmax, argmax_dst, insn.src, 0,
                 static_cast<uint32_t>(out.tiles_.size()), insn.imm);
            known[argmax_dst] = std::nullopt;  // the fused op writes a scalar
          } else {
            emit(kSpecMatMulTile, insn.dst, insn.src, 0,
                 static_cast<uint32_t>(out.tiles_.size()), insn.imm);
          }
          out.tiles_.push_back(
              TileKernel{tensor->data().data(), rows, cols, strategy, fuse_relu, fn});
        }
        break;
      }
      case Opcode::kVecAddT: {
        const FixedMatrix* tensor = ctx.tensors != nullptr ? ctx.tensors->Get(insn.imm) : nullptr;
        if (ctx.tensors == nullptr) {
          emit(code, insn.dst, insn.src, 0, 0, insn.imm);
        } else if (tensor == nullptr) {
          // Tier 2 no-ops on a missing tensor; tensors are immutable — drop.
        } else {
          emit(kSpecVecAddTBurned, insn.dst, insn.src, 0,
               static_cast<uint32_t>(out.bias_tensors_.size()), insn.imm);
          out.bias_tensors_.push_back(tensor);
        }
        break;
      }

      // --- Scalar-writing ops with unfoldable results ---
      case Opcode::kLdStack:
      case Opcode::kLdCtxt:
      case Opcode::kMatchCtxt:
      case Opcode::kVecExtract:
      case Opcode::kVecArgmax:
      case Opcode::kVecDot:
        emit(code, insn.dst, insn.src, insn.offset, 0, insn.imm);
        known[insn.dst] = std::nullopt;
        break;
      case Opcode::kCall:
        emit(code, insn.dst, insn.src, 0, 0, insn.imm);
        known[0] = std::nullopt;  // helpers write r0, read r1..r5
        break;

      // --- Control ---
      case Opcode::kTailCall:
        // arg = resume block (the chain falls through there when the target
        // is unresolvable or the depth budget is exhausted).
        emit(code, insn.dst, insn.src, block_of[static_cast<size_t>(pc + 1)], 0, insn.imm);
        break;
      case Opcode::kExit:
        emit(code, 0, 0, 0, 0, 0);
        break;

      // --- Everything else: generic emission, offset in arg ---
      default:
        emit(code, insn.dst, insn.src, insn.offset, 0, insn.imm);
        break;
    }

    out.blocks_.back().count =
        static_cast<uint32_t>(out.ops_.size()) - out.blocks_.back().first;
  }

  // Only guard dimensions that were actually folded: a program with no
  // folded map state must not deopt on unrelated WriteMap traffic.
  if (any_map_fold) {
    out.map_write_cell_ = ctx.map_write_version;
  }
  return out;
}

bool SpecializedProgram::GuardOk(DeoptReason* reason) const {
  if (map_write_cell_ != nullptr &&
      map_write_cell_->load(std::memory_order_acquire) != pinned_map_version_) {
    if (reason != nullptr) {
      *reason = DeoptReason::kMapWrite;
    }
    return false;
  }
  for (const FoldedModel& folded : models_) {
    if (folded.slot->version() != folded.pinned_version) {
      if (reason != nullptr) {
        *reason = DeoptReason::kModelInstall;
      }
      return false;
    }
  }
  if (table_version_cell_ != nullptr &&
      table_version_cell_->load(std::memory_order_acquire) != pinned_table_version_) {
    if (reason != nullptr) {
      *reason = DeoptReason::kTableMutation;
    }
    return false;
  }
  return true;
}

Result<int64_t> SpecializedProgram::Execute(Frame& frame, RunStats* stats,
                                            const Resolver& resolve) const {
  const FireDeadline* deadline = frame.env->deadline;
  const auto fill_stats = [&frame, stats] {
    if (stats != nullptr) {
      stats->tail_calls = frame.tail_calls;
      stats->helper_calls = frame.helper_calls;
      stats->ml_calls = frame.ml_calls;
    }
  };
  // Entry poll mirrors both lower tiers: an already-expired deadline fails
  // before the first block.
  if (deadline != nullptr && deadline->Expired()) {
    fill_stats();
    return DeadlineExceededError("fire deadline exceeded before execution");
  }

  auto& r = frame.state.regs;
  auto& vregs = frame.state.vregs;
  size_t blk = 0;
  while (true) {
    {
      const Superblock& block = blocks_[blk];
      size_t next = blk + 1;
      const uint32_t end = block.first + block.count;
      for (uint32_t i = block.first; i < end; ++i) {
        const SpecOp& op = ops_[i];
        switch (op.code) {
          // --- Scalar ALU ---
          case OPC(kAdd): r[op.dst] += r[op.src]; break;
          case OPC(kSub): r[op.dst] -= r[op.src]; break;
          case OPC(kMul): r[op.dst] *= r[op.src]; break;
          case OPC(kDiv): r[op.dst] = r[op.src] == 0 ? 0 : r[op.dst] / r[op.src]; break;
          case OPC(kMod): r[op.dst] = r[op.src] == 0 ? 0 : r[op.dst] % r[op.src]; break;
          case OPC(kAnd): r[op.dst] &= r[op.src]; break;
          case OPC(kOr): r[op.dst] |= r[op.src]; break;
          case OPC(kXor): r[op.dst] ^= r[op.src]; break;
          case OPC(kShl): r[op.dst] <<= (r[op.src] & 63); break;
          case OPC(kShr):
            r[op.dst] = static_cast<int64_t>(static_cast<uint64_t>(r[op.dst]) >> (r[op.src] & 63));
            break;
          case OPC(kAshr): r[op.dst] >>= (r[op.src] & 63); break;
          case OPC(kMov): r[op.dst] = r[op.src]; break;
          case OPC(kAddImm): r[op.dst] += op.imm; break;
          case OPC(kSubImm): r[op.dst] -= op.imm; break;
          case OPC(kMulImm): r[op.dst] *= op.imm; break;
          case OPC(kDivImm): r[op.dst] = op.imm == 0 ? 0 : r[op.dst] / op.imm; break;
          case OPC(kModImm): r[op.dst] = op.imm == 0 ? 0 : r[op.dst] % op.imm; break;
          case OPC(kAndImm): r[op.dst] &= op.imm; break;
          case OPC(kOrImm): r[op.dst] |= op.imm; break;
          case OPC(kXorImm): r[op.dst] ^= op.imm; break;
          case OPC(kShlImm): r[op.dst] <<= (op.imm & 63); break;
          case OPC(kShrImm):
            r[op.dst] = static_cast<int64_t>(static_cast<uint64_t>(r[op.dst]) >> (op.imm & 63));
            break;
          case OPC(kAshrImm): r[op.dst] >>= (op.imm & 63); break;
          case OPC(kMovImm): r[op.dst] = op.imm; break;
          case OPC(kNeg): r[op.dst] = -r[op.dst]; break;

          // --- Branches (always block terminators) ---
          case OPC(kJa):
            next = static_cast<size_t>(op.arg);
            goto block_done;
          case OPC(kJeq):
            if (r[op.dst] == r[op.src]) next = static_cast<size_t>(op.arg);
            goto block_done;
          case OPC(kJne):
            if (r[op.dst] != r[op.src]) next = static_cast<size_t>(op.arg);
            goto block_done;
          case OPC(kJlt):
            if (r[op.dst] < r[op.src]) next = static_cast<size_t>(op.arg);
            goto block_done;
          case OPC(kJle):
            if (r[op.dst] <= r[op.src]) next = static_cast<size_t>(op.arg);
            goto block_done;
          case OPC(kJgt):
            if (r[op.dst] > r[op.src]) next = static_cast<size_t>(op.arg);
            goto block_done;
          case OPC(kJge):
            if (r[op.dst] >= r[op.src]) next = static_cast<size_t>(op.arg);
            goto block_done;
          case OPC(kJset):
            if ((r[op.dst] & r[op.src]) != 0) next = static_cast<size_t>(op.arg);
            goto block_done;
          case OPC(kJeqImm):
            if (r[op.dst] == op.imm) next = static_cast<size_t>(op.arg);
            goto block_done;
          case OPC(kJneImm):
            if (r[op.dst] != op.imm) next = static_cast<size_t>(op.arg);
            goto block_done;
          case OPC(kJltImm):
            if (r[op.dst] < op.imm) next = static_cast<size_t>(op.arg);
            goto block_done;
          case OPC(kJleImm):
            if (r[op.dst] <= op.imm) next = static_cast<size_t>(op.arg);
            goto block_done;
          case OPC(kJgtImm):
            if (r[op.dst] > op.imm) next = static_cast<size_t>(op.arg);
            goto block_done;
          case OPC(kJgeImm):
            if (r[op.dst] >= op.imm) next = static_cast<size_t>(op.arg);
            goto block_done;
          case OPC(kJsetImm):
            if ((r[op.dst] & op.imm) != 0) next = static_cast<size_t>(op.arg);
            goto block_done;

          // --- Stack ---
          case OPC(kLdStack):
            std::memcpy(&r[op.dst], &frame.state.stack[kStackSize + op.arg], 8);
            break;
          case OPC(kStStack):
            std::memcpy(&frame.state.stack[kStackSize + op.arg], &r[op.src], 8);
            break;
          case OPC(kStStackImm):
            std::memcpy(&frame.state.stack[kStackSize + op.arg], &op.imm, 8);
            break;

          // --- Context ---
          case OPC(kLdCtxt): {
            const ContextEntry* entry =
                frame.env->ctxt != nullptr
                    ? frame.env->ctxt->Find(static_cast<uint64_t>(r[op.src]))
                    : nullptr;
            r[op.dst] = entry == nullptr ? 0 : entry->slots[static_cast<size_t>(op.arg)];
            break;
          }
          case OPC(kStCtxt):
            if (frame.env->ctxt != nullptr) {
              ContextEntry* entry =
                  frame.env->ctxt->FindOrCreate(static_cast<uint64_t>(r[op.dst]));
              if (entry != nullptr) {
                entry->slots[static_cast<size_t>(op.arg)] = r[op.src];
              }
            }
            break;
          case OPC(kMatchCtxt):
            r[op.dst] = frame.env->ctxt != nullptr &&
                                frame.env->ctxt->Contains(static_cast<uint64_t>(r[op.src]))
                            ? 1
                            : 0;
            break;

          // --- Maps: generic + specialized forms ---
          case OPC(kMapLookup): {
            RmtMap* map = frame.env->maps != nullptr ? frame.env->maps->Get(op.imm) : nullptr;
            r[op.dst] = map != nullptr ? map->Lookup(r[op.src]).value_or(0) : 0;
            if (const auto fault = RKD_FAILPOINT("vm.map_lookup")) {
              if (fault->force_error) {
                frame.fault = InternalError("failpoint vm.map_lookup: injected lookup fault");
                goto fault_exit;
              }
              r[op.dst] ^= fault->corrupt_xor;
            }
            break;
          }
          case kSpecMapLookupConst:
            r[op.dst] = op.imm;
            if (const auto fault = RKD_FAILPOINT("vm.map_lookup")) {
              if (fault->force_error) {
                frame.fault = InternalError("failpoint vm.map_lookup: injected lookup fault");
                goto fault_exit;
              }
              r[op.dst] ^= fault->corrupt_xor;
            }
            break;
          case kSpecMapLookupArray: {
            const BurnedMap& burned = burned_maps_[op.aux];
            const int64_t key = r[op.src];
            r[op.dst] = key >= 0 && static_cast<size_t>(key) < burned.len
                            ? burned.cells[static_cast<size_t>(key)].load(std::memory_order_relaxed)
                            : 0;
            if (const auto fault = RKD_FAILPOINT("vm.map_lookup")) {
              if (fault->force_error) {
                frame.fault = InternalError("failpoint vm.map_lookup: injected lookup fault");
                goto fault_exit;
              }
              r[op.dst] ^= fault->corrupt_xor;
            }
            break;
          }
          case kSpecMapLookupBurned:
            r[op.dst] = burned_maps_[op.aux].map->Lookup(r[op.src]).value_or(0);
            if (const auto fault = RKD_FAILPOINT("vm.map_lookup")) {
              if (fault->force_error) {
                frame.fault = InternalError("failpoint vm.map_lookup: injected lookup fault");
                goto fault_exit;
              }
              r[op.dst] ^= fault->corrupt_xor;
            }
            break;
          case OPC(kMapExists): {
            RmtMap* map = frame.env->maps != nullptr ? frame.env->maps->Get(op.imm) : nullptr;
            r[op.dst] = map != nullptr && map->Contains(r[op.src]) ? 1 : 0;
            break;
          }
          case OPC(kMapUpdate): {
            if (const auto fault = RKD_FAILPOINT("vm.map_update")) {
              if (fault->force_error) {
                frame.fault = InternalError("failpoint vm.map_update: injected update fault");
                goto fault_exit;
              }
              break;  // injected silent write drop
            }
            RmtMap* map = frame.env->maps != nullptr ? frame.env->maps->Get(op.imm) : nullptr;
            if (map != nullptr) {
              map->Update(r[op.dst], r[op.src]);
            }
            break;
          }
          case OPC(kMapDelete): {
            RmtMap* map = frame.env->maps != nullptr ? frame.env->maps->Get(op.imm) : nullptr;
            if (map != nullptr) {
              map->Delete(r[op.src]);
            }
            break;
          }

          // --- Vector / ML ---
          case OPC(kVecLdCtxt): {
            const ContextEntry* entry =
                frame.env->ctxt != nullptr
                    ? frame.env->ctxt->Find(static_cast<uint64_t>(r[op.src]))
                    : nullptr;
            if (entry == nullptr) {
              vregs[op.dst].fill(0);
            } else {
              vregs[op.dst] = entry->features;
            }
            break;
          }
          case OPC(kVecStCtxt):
            if (frame.env->ctxt != nullptr) {
              ContextEntry* entry =
                  frame.env->ctxt->FindOrCreate(static_cast<uint64_t>(r[op.dst]));
              if (entry != nullptr) {
                entry->features = vregs[op.src];
              }
            }
            break;
          case OPC(kVecZero): vregs[op.dst].fill(0); break;
          case OPC(kScalarVal):
            vregs[op.dst][static_cast<size_t>(op.arg)] = static_cast<int32_t>(r[op.src]);
            break;
          case OPC(kVecExtract):
            r[op.dst] = vregs[op.src][static_cast<size_t>(op.arg)];
            break;
          case OPC(kMatMul): {
            const FixedMatrix* tensor =
                frame.env->tensors != nullptr ? frame.env->tensors->Get(op.imm) : nullptr;
            if (tensor == nullptr || tensor->rows() > kVectorLanes ||
                tensor->cols() > kVectorLanes) {
              vregs[op.dst].fill(0);
              break;
            }
            std::array<int32_t, kVectorLanes> result{};
            tensor->MatVec(vregs[op.src], result);
            vregs[op.dst] = result;
            break;
          }
          case kSpecMatMulTile: {
            const TileKernel& tile = tiles_[op.aux];
            auto& dst = vregs[op.dst];
            if (op.dst == op.src) {
              // The kernel reads x while writing y; an aliased dst needs the
              // same bounce buffer tier 2 uses.
              std::array<int32_t, kVectorLanes> result{};
              tile.fn(tile.weights, tile.rows, tile.cols, vregs[op.src].data(), result.data());
              dst = result;
            } else {
              tile.fn(tile.weights, tile.rows, tile.cols, vregs[op.src].data(), dst.data());
              for (size_t lane = tile.rows; lane < static_cast<size_t>(kVectorLanes); ++lane) {
                dst[lane] = 0;  // tier 2 zero-fills the lanes past `rows`
              }
            }
            if (tile.fuse_relu) {
              for (int lane = 0; lane < kVectorLanes; ++lane) {
                const int32_t v = dst[static_cast<size_t>(lane)];
                dst[static_cast<size_t>(lane)] = v > 0 ? v : 0;
              }
            }
            break;
          }
          case kSpecMatMulTileArgmax: {
            const TileKernel& tile = tiles_[op.aux];
            // The output vreg is provably dead: keep the scores in a local
            // buffer (zeroed, so lanes past `rows` match tier 2's fill) and
            // publish only the winning lane.
            std::array<int32_t, kVectorLanes> result{};
            tile.fn(tile.weights, tile.rows, tile.cols, vregs[op.src].data(), result.data());
            if (tile.fuse_relu) {
              for (auto& lane : result) {
                lane = lane > 0 ? lane : 0;
              }
            }
            int best = 0;
            for (int lane = 1; lane < kVectorLanes; ++lane) {
              if (result[static_cast<size_t>(lane)] > result[static_cast<size_t>(best)]) {
                best = lane;
              }
            }
            r[op.dst] = best;
            break;
          }
          case OPC(kVecAddT): {
            const FixedMatrix* tensor =
                frame.env->tensors != nullptr ? frame.env->tensors->Get(op.imm) : nullptr;
            if (tensor != nullptr) {
              const size_t rows = tensor->rows() < kVectorLanes ? tensor->rows() : kVectorLanes;
              for (size_t lane = 0; lane < rows; ++lane) {
                vregs[op.dst][lane] = SatAdd32(vregs[op.dst][lane], tensor->at(lane, 0));
              }
            }
            break;
          }
          case kSpecVecAddTBurned: {
            const FixedMatrix* tensor = bias_tensors_[op.aux];
            const size_t rows = tensor->rows() < kVectorLanes ? tensor->rows() : kVectorLanes;
            for (size_t lane = 0; lane < rows; ++lane) {
              vregs[op.dst][lane] = SatAdd32(vregs[op.dst][lane], tensor->at(lane, 0));
            }
            break;
          }
          case OPC(kVecAdd):
            for (int lane = 0; lane < kVectorLanes; ++lane) {
              vregs[op.dst][lane] = SatAdd32(vregs[op.dst][lane], vregs[op.src][lane]);
            }
            break;
          case OPC(kVecRelu):
            for (int lane = 0; lane < kVectorLanes; ++lane) {
              const int32_t v = vregs[op.src][lane];
              vregs[op.dst][lane] = v > 0 ? v : 0;
            }
            break;
          case OPC(kVecArgmax): {
            int best = 0;
            const auto& v = vregs[op.src];
            for (int lane = 1; lane < kVectorLanes; ++lane) {
              if (v[lane] > v[best]) {
                best = lane;
              }
            }
            r[op.dst] = best;
            break;
          }
          case OPC(kVecDot): {
            int64_t acc = 0;
            for (int lane = 0; lane < kVectorLanes; ++lane) {
              acc += static_cast<int64_t>(vregs[op.dst][lane]) * vregs[op.src][lane];
            }
            r[op.dst] = acc >> 16;
            break;
          }

          // --- Calls / control ---
          case OPC(kCall): {
            ++frame.helper_calls;
            if (const auto fault = RKD_FAILPOINT("vm.helper"); fault && fault->force_error) {
              frame.fault = InternalError("failpoint vm.helper: injected helper fault");
              goto fault_exit;
            }
            const int64_t call_args[5] = {r[1], r[2], r[3], r[4], r[5]};
            r[0] = frame.env->helpers != nullptr
                       ? CallHelper(static_cast<HelperId>(op.imm), *frame.env->helpers, call_args)
                       : 0;
            break;
          }
          case OPC(kMlCall): {
            ++frame.ml_calls;
            const ModelPtr model =
                frame.env->models != nullptr ? frame.env->models->Get(op.imm) : nullptr;
            if (frame.env->tracer != nullptr && model != nullptr) {
              ScopedSpan ml_span(frame.env->tracer, "ml.eval");
              ml_span.Tag("model", op.imm);
              r[op.dst] = model->Predict(vregs[op.src]);
              ml_span.Tag("result", r[op.dst]);
            } else {
              r[op.dst] = model != nullptr ? model->Predict(vregs[op.src]) : kNoModelSentinel;
            }
            if (const auto fault = RKD_FAILPOINT("ml.eval")) {
              if (fault->force_error) {
                frame.fault = InternalError("failpoint ml.eval: injected model fault");
                goto fault_exit;
              }
              r[op.dst] ^= fault->corrupt_xor;
            }
            break;
          }
          case kSpecMlCallBurned: {
            ++frame.ml_calls;
            const FoldedModel& folded = models_[op.aux];
            if (frame.env->tracer != nullptr) {
              ScopedSpan ml_span(frame.env->tracer, "ml.eval");
              ml_span.Tag("model", folded.model_id);
              r[op.dst] = folded.predict(folded.model, vregs[op.src]);
              ml_span.Tag("result", r[op.dst]);
            } else {
              r[op.dst] = folded.predict(folded.model, vregs[op.src]);
            }
            if (const auto fault = RKD_FAILPOINT("ml.eval")) {
              if (fault->force_error) {
                frame.fault = InternalError("failpoint ml.eval: injected model fault");
                goto fault_exit;
              }
              r[op.dst] ^= fault->corrupt_xor;
            }
            break;
          }
          case OPC(kTailCall): {
            // Tail-call boundary poll, exactly like tier 2's.
            if (deadline != nullptr && deadline->Expired()) {
              fill_stats();
              return DeadlineExceededError("fire deadline exceeded at tail call");
            }
            const CompiledProgram* target = resolve ? resolve(op.imm) : nullptr;
            if (target != nullptr && target->size() > 0 &&
                frame.tail_calls < kMaxTailCallDepth) {
              ++frame.tail_calls;
              // Chain into the target's tier-2 loop with the live frame:
              // cumulative call tallies and the shared register file carry
              // over, so results and RunStats match tier 2 byte for byte.
              return target->ContinueFrame(frame, stats, resolve);
            }
            next = static_cast<size_t>(op.arg);  // failed tail call falls through
            goto block_done;
          }
          case OPC(kExit):
            fill_stats();
            return r[0];

          default:
            break;  // unreachable: Specialize emits only the codes above
        }
      }
    block_done:
      blk = next;
    }
    // Superblock-boundary poll: dispatch polling is hoisted out of blocks.
    // Control flow is forward-only (plus depth-bounded tail chains), so the
    // number of blocks crossed per fire is bounded and every fire still
    // observes an armed deadline within one block of expiry.
    if (deadline != nullptr && deadline->Expired()) {
      fill_stats();
      return DeadlineExceededError("fire deadline exceeded at superblock boundary");
    }
  }

fault_exit:
  fill_stats();
  return frame.fault;
}

Result<int64_t> SpecializedProgram::Run(const VmEnv& env, std::span<const int64_t> args,
                                        RunStats* stats, const Resolver& resolve) const {
  if (args.size() > 5) {
    return InvalidArgumentError("SpecializedProgram::Run: more than five arguments");
  }
  const uint64_t start_ns = env.metrics != nullptr ? MonotonicNowNs() : 0;
  const auto run_in = [&](Frame& frame) {
    frame.env = &env;
    for (size_t i = 0; i < args.size(); ++i) {
      frame.state.regs[i + 1] = args[i];
    }
    Result<int64_t> result = Execute(frame, stats, resolve);
    if (env.metrics != nullptr) {
      // `steps` stays untouched, as in tier 2: no step accounting here either.
      env.metrics->invocations->Increment();
      env.metrics->helper_calls->Increment(frame.helper_calls);
      env.metrics->ml_calls->Increment(frame.ml_calls);
      env.metrics->tail_calls->Increment(frame.tail_calls);
      env.metrics->run_ns->Record(MonotonicNowNs() - start_ns);
    }
    return result;
  };
  // Hot fires reuse a thread-local frame and reset only the state this
  // program can observe, instead of zero-constructing the whole ExecState
  // (~1.6KB) per fire. A nested fire on the same thread (a helper or
  // resolver re-entering Run) falls back to a fresh zeroed frame.
  static thread_local Frame tls_frame;
  static thread_local bool tls_busy = false;
  if (!tls_busy) {
    tls_busy = true;
    struct BusyReset {
      bool* flag;
      ~BusyReset() { *flag = false; }
    } busy_reset{&tls_busy};
    Frame& frame = tls_frame;
    frame.state.regs.fill(0);
    if (vreg_reset_mask_ != 0) {
      for (size_t v = 0; v < kNumVectorRegs; ++v) {
        if ((vreg_reset_mask_ & (1u << v)) != 0) {
          frame.state.vregs[v].fill(0);
        }
      }
    }
    if (touches_stack_) {
      frame.state.stack.fill(0);
    }
    frame.tail_calls = 0;
    frame.helper_calls = 0;
    frame.ml_calls = 0;
    frame.fault = OkStatus();
    return run_in(frame);
  }
  Frame frame;  // reentrant fire: zero-initialized by construction
  return run_in(frame);
}

Result<int64_t> SpecializedProgram::RunInFrame(Frame& frame, const VmEnv& env,
                                               std::span<const int64_t> args, RunStats* stats,
                                               const Resolver& resolve) const {
  if (args.size() > 5) {
    return InvalidArgumentError("SpecializedProgram::RunInFrame: more than five arguments");
  }
  // Targeted reset, mirroring CompiledProgram::RunInFrame — but per-vreg:
  // only vregs the program may read before fully overwriting are zeroed.
  frame.state.regs.fill(0);
  if (vreg_reset_mask_ != 0) {
    for (size_t v = 0; v < kNumVectorRegs; ++v) {
      if ((vreg_reset_mask_ & (1u << v)) != 0) {
        frame.state.vregs[v].fill(0);
      }
    }
  }
  if (touches_stack_) {
    frame.state.stack.fill(0);
  }
  frame.env = &env;
  frame.tail_calls = 0;
  frame.helper_calls = 0;
  frame.ml_calls = 0;
  frame.fault = OkStatus();
  for (size_t i = 0; i < args.size(); ++i) {
    frame.state.regs[i + 1] = args[i];
  }
  return Execute(frame, stats, resolve);
}

}  // namespace rkd
