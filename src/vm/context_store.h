// The execution-context store backing RMT_CTXT (paper section 3.1).
//
// "The execution context is akin to today's kernel monitoring data, but the
// pattern match strips away unnecessary monitoring ... This is also
// constant-time in a system-wide manner without having to walk complex kernel
// data structures." Entries are keyed by a 64-bit match key (PID, inode,
// cgroup id, ...) and hold three fixed-size regions:
//   - scalar slots, addressed by kLdCtxt / kStCtxt
//   - a feature vector, the unit kVecLdCtxt / kVecStCtxt move to/from vector
//     registers (and what kMlCall models consume)
//   - a bounded history ring, fed by the history helpers (access-pattern
//     collection for online training)
#ifndef SRC_VM_CONTEXT_STORE_H_
#define SRC_VM_CONTEXT_STORE_H_

#include <array>
#include <cstdint>
#include <unordered_map>

#include "src/bytecode/isa.h"

namespace rkd {

struct ContextEntry {
  std::array<int64_t, kCtxtScalarSlots> slots{};
  std::array<int32_t, kVectorLanes> features{};

  // Fixed-capacity ring of recent observations (newest overwrite oldest).
  std::array<int64_t, kCtxtHistoryCapacity> history{};
  uint32_t history_head = 0;  // next write position
  uint32_t history_len = 0;   // min(appends, capacity)

  void AppendHistory(int64_t value) {
    history[history_head] = value;
    history_head = (history_head + 1) % kCtxtHistoryCapacity;
    if (history_len < kCtxtHistoryCapacity) {
      ++history_len;
    }
  }

  // Element `back` positions from the newest (back=0 is the last append).
  // Returns 0 when out of range, matching the VM's "absent reads as zero"
  // convention.
  int64_t HistoryAt(uint32_t back) const {
    if (back >= history_len) {
      return 0;
    }
    const uint32_t index =
        (history_head + kCtxtHistoryCapacity - 1 - back) % kCtxtHistoryCapacity;
    return history[index];
  }
};

class ContextStore {
 public:
  explicit ContextStore(size_t max_entries = 4096) : max_entries_(max_entries) {}

  // Returns the entry for `key`, or nullptr if absent.
  const ContextEntry* Find(uint64_t key) const;
  ContextEntry* FindMutable(uint64_t key);

  // Returns the entry for `key`, creating it if absent. Returns nullptr only
  // when the store is full and the key is new (capacity back-pressure; the
  // VM surfaces that as the write silently dropping, never as a fault).
  ContextEntry* FindOrCreate(uint64_t key);

  bool Contains(uint64_t key) const { return entries_.contains(key); }
  bool Erase(uint64_t key) { return entries_.erase(key) > 0; }
  size_t size() const { return entries_.size(); }
  size_t max_entries() const { return max_entries_; }
  void Clear() { entries_.clear(); }

  // Iteration for control-plane sweeps (e.g. aggregate queries).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, entry] : entries_) {
      fn(key, entry);
    }
  }

 private:
  size_t max_entries_;
  std::unordered_map<uint64_t, ContextEntry> entries_;
};

}  // namespace rkd

#endif  // SRC_VM_CONTEXT_STORE_H_
