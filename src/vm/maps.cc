#include "src/vm/maps.h"

namespace rkd {

std::string_view MapKindName(MapKind kind) {
  switch (kind) {
    case MapKind::kArray:
      return "array";
    case MapKind::kHash:
      return "hash";
    case MapKind::kLru:
      return "lru";
    case MapKind::kRing:
      return "ring";
  }
  return "unknown";
}

// --- ArrayMap ---

std::optional<int64_t> ArrayMap::Lookup(int64_t key) {
  if (key < 0 || static_cast<size_t>(key) >= values_.size()) {
    return std::nullopt;
  }
  return values_[static_cast<size_t>(key)].load(std::memory_order_relaxed);
}

bool ArrayMap::Contains(int64_t key) const {
  return key >= 0 && static_cast<size_t>(key) < values_.size();
}

bool ArrayMap::Update(int64_t key, int64_t value) {
  if (key < 0 || static_cast<size_t>(key) >= values_.size()) {
    return false;
  }
  values_[static_cast<size_t>(key)].store(value, std::memory_order_relaxed);
  return true;
}

bool ArrayMap::Delete(int64_t key) { return Update(key, 0); }

// --- HashMap ---

std::optional<int64_t> HashMap::Lookup(int64_t key) {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool HashMap::Contains(int64_t key) const { return values_.contains(key); }

bool HashMap::Update(int64_t key, int64_t value) {
  const auto it = values_.find(key);
  if (it != values_.end()) {
    it->second = value;
    return true;
  }
  if (values_.size() >= capacity_) {
    return false;
  }
  if (quota_ != nullptr && !quota_->TryCharge(MapQuota::kBytesPerEntry)) {
    return false;
  }
  values_.emplace(key, value);
  return true;
}

bool HashMap::Delete(int64_t key) {
  if (values_.erase(key) == 0) {
    return false;
  }
  if (quota_ != nullptr) {
    quota_->Release(MapQuota::kBytesPerEntry);
  }
  return true;
}

// --- LruMap ---

void LruMap::Touch(int64_t key) {
  const auto it = entries_.find(key);
  order_.erase(it->second.position);
  order_.push_front(key);
  it->second.position = order_.begin();
}

std::optional<int64_t> LruMap::Lookup(int64_t key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  Touch(key);
  return it->second.value;
}

bool LruMap::Contains(int64_t key) const { return entries_.contains(key); }

bool LruMap::Update(int64_t key, int64_t value) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.value = value;
    Touch(key);
    return true;
  }
  if (entries_.size() >= capacity_) {
    // Evict the least-recently-used entry; the evicted entry's bytes pay
    // for the new one, so quota usage is unchanged.
    const int64_t victim = order_.back();
    order_.pop_back();
    entries_.erase(victim);
  } else if (quota_ != nullptr && !quota_->TryCharge(MapQuota::kBytesPerEntry)) {
    return false;
  }
  order_.push_front(key);
  entries_.emplace(key, Entry{value, order_.begin()});
  return true;
}

bool LruMap::Delete(int64_t key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return false;
  }
  order_.erase(it->second.position);
  entries_.erase(it);
  if (quota_ != nullptr) {
    quota_->Release(MapQuota::kBytesPerEntry);
  }
  return true;
}

// --- RingMap ---

std::optional<int64_t> RingMap::Lookup(int64_t key) {
  (void)key;
  return std::nullopt;
}

bool RingMap::Contains(int64_t) const { return false; }

size_t RingMap::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

bool RingMap::Update(int64_t key, int64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (records_.size() >= capacity_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(Record{key, value});
  return true;
}

bool RingMap::Delete(int64_t) { return false; }

std::optional<RingMap::Record> RingMap::Pop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (records_.empty()) {
    return std::nullopt;
  }
  const Record out = records_.front();
  records_.pop_front();
  return out;
}

uint64_t RingMap::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

// --- MapSet ---

Result<int64_t> MapSet::Create(MapKind kind, size_t capacity) {
  if (capacity == 0) {
    return InvalidArgumentError("map capacity must be positive");
  }
  // Dense kinds pay their full footprint up front; sparse kinds charge per
  // live entry inside Update/Delete.
  switch (kind) {
    case MapKind::kArray:
      if (!quota_.TryCharge(capacity * sizeof(int64_t))) {
        return ResourceExhaustedError("array map footprint exceeds program map quota");
      }
      maps_.push_back(std::make_unique<ArrayMap>(capacity));
      break;
    case MapKind::kHash:
      maps_.push_back(std::make_unique<HashMap>(capacity, &quota_));
      break;
    case MapKind::kLru:
      maps_.push_back(std::make_unique<LruMap>(capacity, &quota_));
      break;
    case MapKind::kRing:
      if (!quota_.TryCharge(capacity * MapQuota::kBytesPerEntry)) {
        return ResourceExhaustedError("ring map footprint exceeds program map quota");
      }
      maps_.push_back(std::make_unique<RingMap>(capacity));
      break;
  }
  return static_cast<int64_t>(maps_.size()) - 1;
}

RmtMap* MapSet::Get(int64_t id) {
  if (id < 0 || static_cast<size_t>(id) >= maps_.size()) {
    return nullptr;
  }
  return maps_[static_cast<size_t>(id)].get();
}

const RmtMap* MapSet::Get(int64_t id) const {
  if (id < 0 || static_cast<size_t>(id) >= maps_.size()) {
    return nullptr;
  }
  return maps_[static_cast<size_t>(id)].get();
}

}  // namespace rkd
