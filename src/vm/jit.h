// The JIT execution tier: bytecode pre-compiled to direct-threaded code.
//
// The paper's VM runs programs "in interpreted mode or ... just-in-time (JIT)
// compiled to machine code for efficiency" (section 3.1). Emitting raw
// machine code is out of scope for this userspace reproduction (see
// DESIGN.md); instead Compile() lowers each instruction to a pre-decoded
// record with a direct handler function pointer, eliminating the three
// per-instruction costs of the interpreter tier:
//   1. operand validation (done once at compile time),
//   2. step-budget accounting (unnecessary: compilation re-checks that all
//      jumps are forward and in range, so execution terminates structurally),
//   3. opcode switch dispatch (replaced by one indirect call).
// Compilation refuses any program an eBPF-classic verifier would refuse on
// control-flow grounds, so the fast tier can never be handed an unbounded
// program even if callers skip the full RMT verifier.
#ifndef SRC_VM_JIT_H_
#define SRC_VM_JIT_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/base/status.h"
#include "src/bytecode/program.h"
#include "src/vm/vm.h"

namespace rkd {

// JIT tier polls an armed fire deadline once per this many dispatch blocks
// (plus at entry and at every tail-call boundary). Smaller than the
// interpreter's kDeadlinePollSteps because one dispatch may be a whole
// helper or ML call, not a single cheap instruction.
inline constexpr uint64_t kDeadlinePollDispatches = 64;

class CompiledProgram {
 public:
  // Resolves kTailCall targets to other compiled programs (the RMT pipeline
  // compiles every table's action and supplies this).
  using Resolver = std::function<const CompiledProgram*(int64_t)>;

  // Pre-decodes `program`. Fails on: out-of-range registers, invalid stack /
  // ctxt-slot / lane offsets, out-of-range or backward jumps, or unknown
  // opcodes. Does not duplicate the full RMT verifier (helper whitelists,
  // cost model, ...) — run that first for real admission.
  static Result<CompiledProgram> Compile(const BytecodeProgram& program);

  // Executes with args in r1..r5, returning r0. `resolve` may be empty if
  // the program has no kTailCall.
  Result<int64_t> Run(const VmEnv& env, std::span<const int64_t> args,
                      RunStats* stats = nullptr, const Resolver& resolve = {}) const;

  size_t size() const { return code_.size(); }
  const std::string& name() const { return name_; }

  // One pre-decoded instruction. Public only because handler functions are
  // file-local free functions in jit.cc.
  struct Decoded;
  struct Frame;
  using Handler = size_t (*)(Frame& frame, const Decoded& d, size_t pc);

  struct Decoded {
    Handler fn;
    uint8_t dst;
    uint8_t src;
    uint8_t opcode;    // original Opcode, for the profiled frame loop
    int32_t offset;    // pre-biased: branch handlers store the absolute target
    int64_t imm;
  };

  // The execution frame: registers, stack, and per-run bookkeeping. Public
  // so batch dispatchers can allocate it once and run many events through
  // RunInFrame; Run() constructs a fresh one per call.
  struct Frame {
    ExecState state;
    const VmEnv* env = nullptr;
    uint64_t tail_calls = 0;
    uint64_t helper_calls = 0;
    uint64_t ml_calls = 0;
    int64_t tail_imm = 0;     // pending kTailCall table id
    size_t tail_resume = 0;   // pc to resume at if the tail call fails
    Status fault;             // set by a handler that returns kFaultPc
  };

  // Run() minus the per-call frame construction and VmMetrics recording: the
  // batch fast path. Resets only the frame state this program can observe
  // (scalar regs always; vector regs / stack only when the program — or, via
  // kTailCall, a program it may chain to — touches them), so per-event setup
  // cost tracks the program's actual footprint. Callers aggregate RunStats
  // into VmMetrics themselves.
  Result<int64_t> RunInFrame(Frame& frame, const VmEnv& env, std::span<const int64_t> args,
                             RunStats* stats = nullptr, const Resolver& resolve = {}) const;

  // Continues execution in an existing frame from pc 0 — the tier-3
  // specializer's tail-call chain entry (a specialized program resolves the
  // target and hands the live frame to this tier-2 loop, cumulative call
  // tallies and all). Runs the same divert logic as Run, including the
  // deadline-armed variant.
  Result<int64_t> ContinueFrame(Frame& frame, RunStats* stats, const Resolver& resolve) const {
    return ExecuteFrame(frame, stats, resolve);
  }

 private:
  CompiledProgram() = default;

  Result<int64_t> ExecuteFrame(Frame& frame, RunStats* stats, const Resolver& resolve) const;
  // The traced-fire variant: same dispatch loop, but each instruction also
  // records its opcode count and wall time into `prof`. Kept separate so the
  // fast loop stays branch-free; ExecuteFrame diverts here only when
  // VmEnv::profile is set.
  Result<int64_t> ExecuteFrameProfiled(Frame& frame, RunStats* stats, const Resolver& resolve,
                                       OpcodeProfile* prof) const;
  // The deadline-armed variant: same dispatch loop, but polls the fire
  // deadline at entry, every kDeadlinePollDispatches dispatch blocks, and at
  // tail-call boundaries, returning kDeadlineExceeded on expiry. Kept
  // separate so the unarmed loop stays branch-free; ExecuteFrame diverts
  // here only when VmEnv::deadline is set.
  Result<int64_t> ExecuteFrameDeadline(Frame& frame, RunStats* stats, const Resolver& resolve,
                                       const FireDeadline* deadline) const;

  std::string name_;
  std::vector<Decoded> code_;
  // Whether any instruction reads/writes the stack or vector registers
  // (kTailCall conservatively implies both: the chained program shares the
  // frame). Lets RunInFrame skip the corresponding zeroing.
  bool touches_stack_ = false;
  bool touches_vregs_ = false;
};

}  // namespace rkd

#endif  // SRC_VM_JIT_H_
