#include "src/vm/jit.h"

#include <cstring>
#include <limits>

#include "src/base/failpoints.h"

namespace rkd {

namespace {

constexpr size_t kExitPc = std::numeric_limits<size_t>::max();
constexpr size_t kTailPc = kExitPc - 1;
// Runtime fault sentinel: the fast tier has no per-instruction error checks
// (compilation proved them away), but injected faults still need a path out.
// A handler stores the Status in the frame and returns kFaultPc.
constexpr size_t kFaultPc = kExitPc - 2;

int32_t SatAdd32(int32_t a, int32_t b) {
  const int64_t wide = static_cast<int64_t>(a) + b;
  if (wide > std::numeric_limits<int32_t>::max()) {
    return std::numeric_limits<int32_t>::max();
  }
  if (wide < std::numeric_limits<int32_t>::min()) {
    return std::numeric_limits<int32_t>::min();
  }
  return static_cast<int32_t>(wide);
}

}  // namespace

namespace {

using Frame = CompiledProgram::Frame;
using Decoded = CompiledProgram::Decoded;

// --- ALU handlers (register and immediate forms) ---

#define RKD_ALU_HANDLER(NAME, EXPR_REG, EXPR_IMM)                                \
  size_t Op##NAME(Frame& f, const Decoded& d, size_t pc) {                      \
    auto& r = f.state.regs;                                                      \
    (void)r;                                                                     \
    r[d.dst] = (EXPR_REG);                                                       \
    return pc + 1;                                                               \
  }                                                                              \
  size_t Op##NAME##Imm(Frame& f, const Decoded& d, size_t pc) {                  \
    auto& r = f.state.regs;                                                      \
    (void)r;                                                                     \
    r[d.dst] = (EXPR_IMM);                                                       \
    return pc + 1;                                                               \
  }

RKD_ALU_HANDLER(Add, r[d.dst] + r[d.src], r[d.dst] + d.imm)
RKD_ALU_HANDLER(Sub, r[d.dst] - r[d.src], r[d.dst] - d.imm)
RKD_ALU_HANDLER(Mul, r[d.dst] * r[d.src], r[d.dst] * d.imm)
RKD_ALU_HANDLER(Div, r[d.src] == 0 ? 0 : r[d.dst] / r[d.src],
                d.imm == 0 ? 0 : r[d.dst] / d.imm)
RKD_ALU_HANDLER(Mod, r[d.src] == 0 ? 0 : r[d.dst] % r[d.src],
                d.imm == 0 ? 0 : r[d.dst] % d.imm)
RKD_ALU_HANDLER(And, r[d.dst] & r[d.src], r[d.dst] & d.imm)
RKD_ALU_HANDLER(Or, r[d.dst] | r[d.src], r[d.dst] | d.imm)
RKD_ALU_HANDLER(Xor, r[d.dst] ^ r[d.src], r[d.dst] ^ d.imm)
RKD_ALU_HANDLER(Shl, r[d.dst] << (r[d.src] & 63), r[d.dst] << (d.imm & 63))
RKD_ALU_HANDLER(Shr,
                static_cast<int64_t>(static_cast<uint64_t>(r[d.dst]) >> (r[d.src] & 63)),
                static_cast<int64_t>(static_cast<uint64_t>(r[d.dst]) >> (d.imm & 63)))
RKD_ALU_HANDLER(Ashr, r[d.dst] >> (r[d.src] & 63), r[d.dst] >> (d.imm & 63))
RKD_ALU_HANDLER(Mov, r[d.src], d.imm)
#undef RKD_ALU_HANDLER

size_t OpNeg(Frame& f, const Decoded& d, size_t pc) {
  f.state.regs[d.dst] = -f.state.regs[d.dst];
  return pc + 1;
}

// --- Branch handlers; d.offset holds the pre-computed absolute target ---

size_t OpJa(Frame&, const Decoded& d, size_t) { return static_cast<size_t>(d.offset); }

#define RKD_BRANCH_HANDLER(NAME, COND_REG, COND_IMM)                             \
  size_t Op##NAME(Frame& f, const Decoded& d, size_t pc) {                      \
    auto& r = f.state.regs;                                                      \
    return (COND_REG) ? static_cast<size_t>(d.offset) : pc + 1;                  \
  }                                                                              \
  size_t Op##NAME##Imm(Frame& f, const Decoded& d, size_t pc) {                  \
    auto& r = f.state.regs;                                                      \
    return (COND_IMM) ? static_cast<size_t>(d.offset) : pc + 1;                  \
  }

RKD_BRANCH_HANDLER(Jeq, r[d.dst] == r[d.src], r[d.dst] == d.imm)
RKD_BRANCH_HANDLER(Jne, r[d.dst] != r[d.src], r[d.dst] != d.imm)
RKD_BRANCH_HANDLER(Jlt, r[d.dst] < r[d.src], r[d.dst] < d.imm)
RKD_BRANCH_HANDLER(Jle, r[d.dst] <= r[d.src], r[d.dst] <= d.imm)
RKD_BRANCH_HANDLER(Jgt, r[d.dst] > r[d.src], r[d.dst] > d.imm)
RKD_BRANCH_HANDLER(Jge, r[d.dst] >= r[d.src], r[d.dst] >= d.imm)
RKD_BRANCH_HANDLER(Jset, (r[d.dst] & r[d.src]) != 0, (r[d.dst] & d.imm) != 0)
#undef RKD_BRANCH_HANDLER

// --- Stack ---

size_t OpLdStack(Frame& f, const Decoded& d, size_t pc) {
  std::memcpy(&f.state.regs[d.dst], &f.state.stack[kStackSize + d.offset], 8);
  return pc + 1;
}
size_t OpStStack(Frame& f, const Decoded& d, size_t pc) {
  std::memcpy(&f.state.stack[kStackSize + d.offset], &f.state.regs[d.src], 8);
  return pc + 1;
}
size_t OpStStackImm(Frame& f, const Decoded& d, size_t pc) {
  std::memcpy(&f.state.stack[kStackSize + d.offset], &d.imm, 8);
  return pc + 1;
}

// --- Context ---

size_t OpLdCtxt(Frame& f, const Decoded& d, size_t pc) {
  const ContextEntry* entry =
      f.env->ctxt != nullptr
          ? f.env->ctxt->Find(static_cast<uint64_t>(f.state.regs[d.src]))
          : nullptr;
  f.state.regs[d.dst] = entry == nullptr ? 0 : entry->slots[static_cast<size_t>(d.offset)];
  return pc + 1;
}
size_t OpStCtxt(Frame& f, const Decoded& d, size_t pc) {
  if (f.env->ctxt != nullptr) {
    ContextEntry* entry = f.env->ctxt->FindOrCreate(static_cast<uint64_t>(f.state.regs[d.dst]));
    if (entry != nullptr) {
      entry->slots[static_cast<size_t>(d.offset)] = f.state.regs[d.src];
    }
  }
  return pc + 1;
}
size_t OpMatchCtxt(Frame& f, const Decoded& d, size_t pc) {
  f.state.regs[d.dst] =
      f.env->ctxt != nullptr && f.env->ctxt->Contains(static_cast<uint64_t>(f.state.regs[d.src]))
          ? 1
          : 0;
  return pc + 1;
}

// --- Maps (missing maps read as zero / drop writes in the fast tier) ---

size_t OpMapLookup(Frame& f, const Decoded& d, size_t pc) {
  RmtMap* map = f.env->maps != nullptr ? f.env->maps->Get(d.imm) : nullptr;
  f.state.regs[d.dst] = map != nullptr ? map->Lookup(f.state.regs[d.src]).value_or(0) : 0;
  if (const auto fault = RKD_FAILPOINT("vm.map_lookup")) {
    if (fault->force_error) {
      f.fault = InternalError("failpoint vm.map_lookup: injected lookup fault");
      return kFaultPc;
    }
    f.state.regs[d.dst] ^= fault->corrupt_xor;
  }
  return pc + 1;
}
size_t OpMapExists(Frame& f, const Decoded& d, size_t pc) {
  RmtMap* map = f.env->maps != nullptr ? f.env->maps->Get(d.imm) : nullptr;
  f.state.regs[d.dst] = map != nullptr && map->Contains(f.state.regs[d.src]) ? 1 : 0;
  return pc + 1;
}
size_t OpMapUpdate(Frame& f, const Decoded& d, size_t pc) {
  if (const auto fault = RKD_FAILPOINT("vm.map_update")) {
    if (fault->force_error) {
      f.fault = InternalError("failpoint vm.map_update: injected update fault");
      return kFaultPc;
    }
    return pc + 1;  // injected silent write drop
  }
  RmtMap* map = f.env->maps != nullptr ? f.env->maps->Get(d.imm) : nullptr;
  if (map != nullptr) {
    map->Update(f.state.regs[d.dst], f.state.regs[d.src]);
  }
  return pc + 1;
}
size_t OpMapDelete(Frame& f, const Decoded& d, size_t pc) {
  RmtMap* map = f.env->maps != nullptr ? f.env->maps->Get(d.imm) : nullptr;
  if (map != nullptr) {
    map->Delete(f.state.regs[d.src]);
  }
  return pc + 1;
}

// --- Vector / ML ---

size_t OpVecLdCtxt(Frame& f, const Decoded& d, size_t pc) {
  const ContextEntry* entry =
      f.env->ctxt != nullptr
          ? f.env->ctxt->Find(static_cast<uint64_t>(f.state.regs[d.src]))
          : nullptr;
  if (entry == nullptr) {
    f.state.vregs[d.dst].fill(0);
  } else {
    f.state.vregs[d.dst] = entry->features;
  }
  return pc + 1;
}
size_t OpVecStCtxt(Frame& f, const Decoded& d, size_t pc) {
  if (f.env->ctxt != nullptr) {
    ContextEntry* entry = f.env->ctxt->FindOrCreate(static_cast<uint64_t>(f.state.regs[d.dst]));
    if (entry != nullptr) {
      entry->features = f.state.vregs[d.src];
    }
  }
  return pc + 1;
}
size_t OpVecZero(Frame& f, const Decoded& d, size_t pc) {
  f.state.vregs[d.dst].fill(0);
  return pc + 1;
}
size_t OpScalarVal(Frame& f, const Decoded& d, size_t pc) {
  f.state.vregs[d.dst][static_cast<size_t>(d.offset)] =
      static_cast<int32_t>(f.state.regs[d.src]);
  return pc + 1;
}
size_t OpVecExtract(Frame& f, const Decoded& d, size_t pc) {
  f.state.regs[d.dst] = f.state.vregs[d.src][static_cast<size_t>(d.offset)];
  return pc + 1;
}
size_t OpMatMul(Frame& f, const Decoded& d, size_t pc) {
  const FixedMatrix* tensor = f.env->tensors != nullptr ? f.env->tensors->Get(d.imm) : nullptr;
  if (tensor == nullptr || tensor->rows() > kVectorLanes || tensor->cols() > kVectorLanes) {
    f.state.vregs[d.dst].fill(0);
    return pc + 1;
  }
  std::array<int32_t, kVectorLanes> result{};
  tensor->MatVec(f.state.vregs[d.src], result);
  f.state.vregs[d.dst] = result;
  return pc + 1;
}
size_t OpVecAddT(Frame& f, const Decoded& d, size_t pc) {
  const FixedMatrix* tensor = f.env->tensors != nullptr ? f.env->tensors->Get(d.imm) : nullptr;
  if (tensor != nullptr) {
    const size_t n = tensor->rows() < kVectorLanes ? tensor->rows() : kVectorLanes;
    for (size_t i = 0; i < n; ++i) {
      f.state.vregs[d.dst][i] = SatAdd32(f.state.vregs[d.dst][i], tensor->at(i, 0));
    }
  }
  return pc + 1;
}
size_t OpVecAdd(Frame& f, const Decoded& d, size_t pc) {
  for (int i = 0; i < kVectorLanes; ++i) {
    f.state.vregs[d.dst][i] = SatAdd32(f.state.vregs[d.dst][i], f.state.vregs[d.src][i]);
  }
  return pc + 1;
}
size_t OpVecRelu(Frame& f, const Decoded& d, size_t pc) {
  for (int i = 0; i < kVectorLanes; ++i) {
    const int32_t v = f.state.vregs[d.src][i];
    f.state.vregs[d.dst][i] = v > 0 ? v : 0;
  }
  return pc + 1;
}
size_t OpVecArgmax(Frame& f, const Decoded& d, size_t pc) {
  int best = 0;
  const auto& v = f.state.vregs[d.src];
  for (int i = 1; i < kVectorLanes; ++i) {
    if (v[i] > v[best]) {
      best = i;
    }
  }
  f.state.regs[d.dst] = best;
  return pc + 1;
}
size_t OpVecDot(Frame& f, const Decoded& d, size_t pc) {
  int64_t acc = 0;
  for (int i = 0; i < kVectorLanes; ++i) {
    acc += static_cast<int64_t>(f.state.vregs[d.dst][i]) * f.state.vregs[d.src][i];
  }
  f.state.regs[d.dst] = acc >> 16;
  return pc + 1;
}

// --- Calls / control ---

size_t OpCall(Frame& f, const Decoded& d, size_t pc) {
  ++f.helper_calls;
  if (const auto fault = RKD_FAILPOINT("vm.helper"); fault && fault->force_error) {
    f.fault = InternalError("failpoint vm.helper: injected helper fault");
    return kFaultPc;
  }
  auto& r = f.state.regs;
  const int64_t call_args[5] = {r[1], r[2], r[3], r[4], r[5]};
  if (f.env->helpers != nullptr) {
    // Same per-helper span as the interpreter tier, so traced fires yield
    // an identical span-name set on both tiers (the bottleneck analyzer's
    // cross-tier determinism leans on this).
    ScopedSpan helper_span(f.env->tracer, "vm.helper");
    helper_span.Tag("id", d.imm);
    r[0] = CallHelper(static_cast<HelperId>(d.imm), *f.env->helpers, call_args);
  } else {
    r[0] = 0;
  }
  return pc + 1;
}
size_t OpMlCall(Frame& f, const Decoded& d, size_t pc) {
  ++f.ml_calls;
  const ModelPtr model = f.env->models != nullptr ? f.env->models->Get(d.imm) : nullptr;
  if (f.env->tracer != nullptr && model != nullptr) {
    ScopedSpan ml_span(f.env->tracer, "ml.eval");
    ml_span.Tag("model", d.imm);
    f.state.regs[d.dst] = model->Predict(f.state.vregs[d.src]);
    ml_span.Tag("result", f.state.regs[d.dst]);
  } else {
    f.state.regs[d.dst] =
        model != nullptr ? model->Predict(f.state.vregs[d.src]) : kNoModelSentinel;
  }
  if (const auto fault = RKD_FAILPOINT("ml.eval")) {
    if (fault->force_error) {
      f.fault = InternalError("failpoint ml.eval: injected model fault");
      return kFaultPc;
    }
    f.state.regs[d.dst] ^= fault->corrupt_xor;
  }
  return pc + 1;
}
size_t OpTailCall(Frame& f, const Decoded& d, size_t pc) {
  f.tail_imm = d.imm;
  f.tail_resume = pc + 1;
  return kTailPc;
}
size_t OpExit(Frame&, const Decoded&, size_t) { return kExitPc; }

}  // namespace

Result<CompiledProgram> CompiledProgram::Compile(const BytecodeProgram& program) {
  if (program.code.empty()) {
    return InvalidArgumentError("CompiledProgram: empty program");
  }
  CompiledProgram out;
  out.name_ = program.name;
  out.code_.reserve(program.code.size());
  const int64_t n = static_cast<int64_t>(program.code.size());

  for (int64_t pc = 0; pc < n; ++pc) {
    const Instruction& insn = program.code[static_cast<size_t>(pc)];
    Decoded d{};
    d.dst = insn.dst;
    d.src = insn.src;
    d.opcode = static_cast<uint8_t>(insn.opcode);
    d.offset = insn.offset;
    d.imm = insn.imm;

    // Register validation, mirroring the interpreter's role table.
    const bool vector_op = IsVectorOp(insn.opcode);
    if (vector_op) {
      const bool dst_is_scalar =
          insn.opcode == Opcode::kMlCall || insn.opcode == Opcode::kVecArgmax ||
          insn.opcode == Opcode::kVecExtract || insn.opcode == Opcode::kVecStCtxt;
      const bool src_is_scalar =
          insn.opcode == Opcode::kVecLdCtxt || insn.opcode == Opcode::kScalarVal;
      if ((dst_is_scalar && insn.dst >= kNumScalarRegs) ||
          (!dst_is_scalar && insn.dst >= kNumVectorRegs) ||
          (src_is_scalar && insn.src >= kNumScalarRegs) ||
          (!src_is_scalar && insn.src >= kNumVectorRegs)) {
        return VerificationFailedError("jit: register out of range at " + std::to_string(pc));
      }
    } else if (insn.dst >= kNumScalarRegs || insn.src >= kNumScalarRegs) {
      return VerificationFailedError("jit: register out of range at " + std::to_string(pc));
    }

    if (IsBranch(insn.opcode)) {
      const int64_t target = pc + 1 + insn.offset;
      if (target <= pc) {
        return VerificationFailedError("jit: backward jump at " + std::to_string(pc));
      }
      if (target >= n) {
        return VerificationFailedError("jit: jump out of range at " + std::to_string(pc));
      }
      d.offset = static_cast<int32_t>(target);  // absolute target for the handler
    }

    switch (insn.opcode) {
      case Opcode::kLdStack:
      case Opcode::kStStack:
      case Opcode::kStStackImm:
        if (insn.offset < -kStackSize || insn.offset > -8 || insn.offset % 8 != 0) {
          return VerificationFailedError("jit: bad stack offset at " + std::to_string(pc));
        }
        break;
      case Opcode::kLdCtxt:
      case Opcode::kStCtxt:
        if (insn.offset < 0 || insn.offset >= kCtxtScalarSlots) {
          return VerificationFailedError("jit: bad ctxt slot at " + std::to_string(pc));
        }
        break;
      case Opcode::kScalarVal:
      case Opcode::kVecExtract:
        if (insn.offset < 0 || insn.offset >= kVectorLanes) {
          return VerificationFailedError("jit: bad vector lane at " + std::to_string(pc));
        }
        break;
      case Opcode::kCall:
        if (insn.imm < 0 || insn.imm >= static_cast<int64_t>(HelperId::kHelperCount)) {
          return VerificationFailedError("jit: unknown helper at " + std::to_string(pc));
        }
        break;
      default:
        break;
    }

    switch (insn.opcode) {
      case Opcode::kAdd: d.fn = OpAdd; break;
      case Opcode::kSub: d.fn = OpSub; break;
      case Opcode::kMul: d.fn = OpMul; break;
      case Opcode::kDiv: d.fn = OpDiv; break;
      case Opcode::kMod: d.fn = OpMod; break;
      case Opcode::kAnd: d.fn = OpAnd; break;
      case Opcode::kOr: d.fn = OpOr; break;
      case Opcode::kXor: d.fn = OpXor; break;
      case Opcode::kShl: d.fn = OpShl; break;
      case Opcode::kShr: d.fn = OpShr; break;
      case Opcode::kAshr: d.fn = OpAshr; break;
      case Opcode::kMov: d.fn = OpMov; break;
      case Opcode::kAddImm: d.fn = OpAddImm; break;
      case Opcode::kSubImm: d.fn = OpSubImm; break;
      case Opcode::kMulImm: d.fn = OpMulImm; break;
      case Opcode::kDivImm: d.fn = OpDivImm; break;
      case Opcode::kModImm: d.fn = OpModImm; break;
      case Opcode::kAndImm: d.fn = OpAndImm; break;
      case Opcode::kOrImm: d.fn = OpOrImm; break;
      case Opcode::kXorImm: d.fn = OpXorImm; break;
      case Opcode::kShlImm: d.fn = OpShlImm; break;
      case Opcode::kShrImm: d.fn = OpShrImm; break;
      case Opcode::kAshrImm: d.fn = OpAshrImm; break;
      case Opcode::kMovImm: d.fn = OpMovImm; break;
      case Opcode::kNeg: d.fn = OpNeg; break;
      case Opcode::kJa: d.fn = OpJa; break;
      case Opcode::kJeq: d.fn = OpJeq; break;
      case Opcode::kJne: d.fn = OpJne; break;
      case Opcode::kJlt: d.fn = OpJlt; break;
      case Opcode::kJle: d.fn = OpJle; break;
      case Opcode::kJgt: d.fn = OpJgt; break;
      case Opcode::kJge: d.fn = OpJge; break;
      case Opcode::kJset: d.fn = OpJset; break;
      case Opcode::kJeqImm: d.fn = OpJeqImm; break;
      case Opcode::kJneImm: d.fn = OpJneImm; break;
      case Opcode::kJltImm: d.fn = OpJltImm; break;
      case Opcode::kJleImm: d.fn = OpJleImm; break;
      case Opcode::kJgtImm: d.fn = OpJgtImm; break;
      case Opcode::kJgeImm: d.fn = OpJgeImm; break;
      case Opcode::kJsetImm: d.fn = OpJsetImm; break;
      case Opcode::kLdStack: d.fn = OpLdStack; break;
      case Opcode::kStStack: d.fn = OpStStack; break;
      case Opcode::kStStackImm: d.fn = OpStStackImm; break;
      case Opcode::kLdCtxt: d.fn = OpLdCtxt; break;
      case Opcode::kStCtxt: d.fn = OpStCtxt; break;
      case Opcode::kMatchCtxt: d.fn = OpMatchCtxt; break;
      case Opcode::kMapLookup: d.fn = OpMapLookup; break;
      case Opcode::kMapExists: d.fn = OpMapExists; break;
      case Opcode::kMapUpdate: d.fn = OpMapUpdate; break;
      case Opcode::kMapDelete: d.fn = OpMapDelete; break;
      case Opcode::kVecLdCtxt: d.fn = OpVecLdCtxt; break;
      case Opcode::kVecStCtxt: d.fn = OpVecStCtxt; break;
      case Opcode::kVecZero: d.fn = OpVecZero; break;
      case Opcode::kScalarVal: d.fn = OpScalarVal; break;
      case Opcode::kVecExtract: d.fn = OpVecExtract; break;
      case Opcode::kMatMul: d.fn = OpMatMul; break;
      case Opcode::kVecAddT: d.fn = OpVecAddT; break;
      case Opcode::kVecAdd: d.fn = OpVecAdd; break;
      case Opcode::kVecRelu: d.fn = OpVecRelu; break;
      case Opcode::kVecArgmax: d.fn = OpVecArgmax; break;
      case Opcode::kVecDot: d.fn = OpVecDot; break;
      case Opcode::kCall: d.fn = OpCall; break;
      case Opcode::kMlCall: d.fn = OpMlCall; break;
      case Opcode::kTailCall: d.fn = OpTailCall; break;
      case Opcode::kExit: d.fn = OpExit; break;
      case Opcode::kOpcodeCount:
        return VerificationFailedError("jit: invalid opcode at " + std::to_string(pc));
    }

    switch (insn.opcode) {
      case Opcode::kLdStack:
      case Opcode::kStStack:
      case Opcode::kStStackImm:
        out.touches_stack_ = true;
        break;
      case Opcode::kTailCall:
        // The chained program executes in the same frame; assume the worst.
        out.touches_stack_ = true;
        out.touches_vregs_ = true;
        break;
      default:
        if (vector_op) {
          out.touches_vregs_ = true;
        }
        break;
    }
    out.code_.push_back(d);
  }

  // Termination requires the final instruction to be non-fall-through.
  const Opcode last = program.code.back().opcode;
  if (last != Opcode::kExit && last != Opcode::kJa) {
    return VerificationFailedError("jit: program may fall off the end");
  }
  return out;
}

Result<int64_t> CompiledProgram::ExecuteFrame(Frame& frame, RunStats* stats,
                                              const Resolver& resolve) const {
  // Deadline enforcement outranks opcode profiling: a deadline-armed fire
  // that happens to be trace-sampled runs the deadline variant and skips the
  // profile for that execution — overload containment must not depend on
  // whether a fire was sampled.
  if (frame.env->deadline != nullptr) {
    return ExecuteFrameDeadline(frame, stats, resolve, frame.env->deadline);
  }
  if (frame.env->profile != nullptr) {
    return ExecuteFrameProfiled(frame, stats, resolve, frame.env->profile);
  }
  const std::vector<Decoded>* code = &code_;
  size_t pc = 0;
  bool faulted = false;
  while (true) {
    const Decoded& d = (*code)[pc];
    pc = d.fn(frame, d, pc);
    if (pc == kExitPc) {
      break;
    }
    if (pc == kFaultPc) {
      faulted = true;
      break;
    }
    if (pc == kTailPc) {
      const CompiledProgram* target = resolve ? resolve(frame.tail_imm) : nullptr;
      if (target != nullptr && !target->code_.empty() && frame.tail_calls < kMaxTailCallDepth) {
        ++frame.tail_calls;
        code = &target->code_;
        pc = 0;
      } else {
        pc = frame.tail_resume;  // failed tail call falls through
      }
    }
  }
  if (stats != nullptr) {
    stats->tail_calls = frame.tail_calls;
    stats->helper_calls = frame.helper_calls;
    stats->ml_calls = frame.ml_calls;
  }
  if (faulted) {
    return frame.fault;
  }
  return frame.state.regs[0];
}

Result<int64_t> CompiledProgram::ExecuteFrameProfiled(Frame& frame, RunStats* stats,
                                                      const Resolver& resolve,
                                                      OpcodeProfile* prof) const {
  const std::vector<Decoded>* code = &code_;
  size_t pc = 0;
  bool faulted = false;
  while (true) {
    const Decoded& d = (*code)[pc];
    const auto op = static_cast<Opcode>(d.opcode);
    prof->RecordCount(op);
    if (op == Opcode::kCall) {
      prof->RecordHelper(d.imm);
    }
    const uint64_t t0 = MonotonicNowNs();
    pc = d.fn(frame, d, pc);
    prof->RecordNs(op, MonotonicNowNs() - t0);
    if (pc == kExitPc) {
      break;
    }
    if (pc == kFaultPc) {
      faulted = true;
      break;
    }
    if (pc == kTailPc) {
      const CompiledProgram* target = resolve ? resolve(frame.tail_imm) : nullptr;
      if (target != nullptr && !target->code_.empty() && frame.tail_calls < kMaxTailCallDepth) {
        ++frame.tail_calls;
        code = &target->code_;
        pc = 0;
      } else {
        pc = frame.tail_resume;  // failed tail call falls through
      }
    }
  }
  if (stats != nullptr) {
    stats->tail_calls = frame.tail_calls;
    stats->helper_calls = frame.helper_calls;
    stats->ml_calls = frame.ml_calls;
  }
  if (faulted) {
    return frame.fault;
  }
  return frame.state.regs[0];
}

Result<int64_t> CompiledProgram::ExecuteFrameDeadline(Frame& frame, RunStats* stats,
                                                      const Resolver& resolve,
                                                      const FireDeadline* deadline) const {
  const auto expired = [&](const char* where) -> Result<int64_t> {
    if (stats != nullptr) {
      stats->tail_calls = frame.tail_calls;
      stats->helper_calls = frame.helper_calls;
      stats->ml_calls = frame.ml_calls;
    }
    return DeadlineExceededError(std::string("fire deadline exceeded ") + where);
  };
  // Entry poll mirrors the interpreter: an already-expired deadline fails
  // before the first dispatch, identically on both tiers.
  if (deadline->Expired()) {
    return expired("before execution");
  }
  const std::vector<Decoded>* code = &code_;
  size_t pc = 0;
  bool faulted = false;
  uint64_t dispatches = 0;
  while (true) {
    const Decoded& d = (*code)[pc];
    pc = d.fn(frame, d, pc);
    if ((++dispatches % kDeadlinePollDispatches) == 0 && deadline->Expired()) {
      return expired("at dispatch block");
    }
    if (pc == kExitPc) {
      break;
    }
    if (pc == kFaultPc) {
      faulted = true;
      break;
    }
    if (pc == kTailPc) {
      if (deadline->Expired()) {
        return expired("at tail call");
      }
      const CompiledProgram* target = resolve ? resolve(frame.tail_imm) : nullptr;
      if (target != nullptr && !target->code_.empty() && frame.tail_calls < kMaxTailCallDepth) {
        ++frame.tail_calls;
        code = &target->code_;
        pc = 0;
      } else {
        pc = frame.tail_resume;  // failed tail call falls through
      }
    }
  }
  if (stats != nullptr) {
    stats->tail_calls = frame.tail_calls;
    stats->helper_calls = frame.helper_calls;
    stats->ml_calls = frame.ml_calls;
  }
  if (faulted) {
    return frame.fault;
  }
  return frame.state.regs[0];
}

Result<int64_t> CompiledProgram::Run(const VmEnv& env, std::span<const int64_t> args,
                                     RunStats* stats, const Resolver& resolve) const {
  if (args.size() > 5) {
    return InvalidArgumentError("CompiledProgram::Run: more than five arguments");
  }
  const uint64_t start_ns = env.metrics != nullptr ? MonotonicNowNs() : 0;
  Frame frame;
  frame.env = &env;
  for (size_t i = 0; i < args.size(); ++i) {
    frame.state.regs[i + 1] = args[i];
  }
  Result<int64_t> result = ExecuteFrame(frame, stats, resolve);
  if (env.metrics != nullptr) {
    // `steps` stays untouched: the JIT tier eliminated step accounting.
    env.metrics->invocations->Increment();
    env.metrics->helper_calls->Increment(frame.helper_calls);
    env.metrics->ml_calls->Increment(frame.ml_calls);
    env.metrics->tail_calls->Increment(frame.tail_calls);
    env.metrics->run_ns->Record(MonotonicNowNs() - start_ns);
  }
  return result;
}

Result<int64_t> CompiledProgram::RunInFrame(Frame& frame, const VmEnv& env,
                                            std::span<const int64_t> args, RunStats* stats,
                                            const Resolver& resolve) const {
  if (args.size() > 5) {
    return InvalidArgumentError("CompiledProgram::RunInFrame: more than five arguments");
  }
  // Targeted reset: every run must observe the zero-initialized state Run()
  // guarantees, but only in the locations this program can read.
  frame.state.regs.fill(0);
  if (touches_vregs_) {
    for (auto& vreg : frame.state.vregs) {
      vreg.fill(0);
    }
  }
  if (touches_stack_) {
    frame.state.stack.fill(0);
  }
  frame.env = &env;
  frame.tail_calls = 0;
  frame.helper_calls = 0;
  frame.ml_calls = 0;
  frame.fault = OkStatus();
  for (size_t i = 0; i < args.size(); ++i) {
    frame.state.regs[i + 1] = args[i];
  }
  return ExecuteFrame(frame, stats, resolve);
}

}  // namespace rkd
