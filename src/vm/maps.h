// eBPF-style maps: the general-purpose monitoring data structures of the RMT
// VM (section 3.1: "data structures for monitoring purposes (e.g., akin to
// different types of eBPF maps)"). Programs address maps by the small ids
// they declared; the control plane reads/writes them from "userspace".
//
// Kinds:
//   ArrayMap  - dense, fixed-size, index-keyed; O(1), no eviction
//   HashMap   - sparse keys, bounded; inserts beyond capacity are rejected
//   LruMap    - sparse keys, bounded; inserts beyond capacity evict the
//               least-recently-touched entry (the eBPF LRU_HASH analogue)
//   RingMap   - bounded FIFO of (key, value) records; kRecordSample appends,
//               the control plane drains (perf-buffer analogue)
#ifndef SRC_VM_MAPS_H_
#define SRC_VM_MAPS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"

namespace rkd {

enum class MapKind { kArray, kHash, kLru, kRing };

std::string_view MapKindName(MapKind kind);

// Per-program map-memory accounting. One MapQuota is shared by every map in
// a program's MapSet; dense kinds (array, ring) charge their full footprint
// at Create, sparse kinds (hash, lru) charge per live entry at insert and
// release on delete. A zero budget means unlimited (the default, so programs
// that never declared a quota keep today's behavior). Counters are atomics:
// different maps of the same program may be touched from datapath and
// control plane concurrently.
class MapQuota {
 public:
  // Accounting granularity for one sparse-map entry (key + value).
  static constexpr uint64_t kBytesPerEntry = 2 * sizeof(int64_t);

  MapQuota() = default;
  explicit MapQuota(uint64_t quota_bytes) : quota_bytes_(quota_bytes) {}

  // Re-declares the budget. Only meaningful before any charge lands.
  void Reset(uint64_t quota_bytes) {
    quota_bytes_ = quota_bytes;
    used_bytes_.store(0, std::memory_order_relaxed);
    breaches_.store(0, std::memory_order_relaxed);
  }

  // Attempts to reserve `bytes`; on breach nothing is charged, the breach
  // counter ticks, and the caller must reject the allocation/insert.
  bool TryCharge(uint64_t bytes) {
    if (quota_bytes_ == 0) {
      used_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      return true;
    }
    uint64_t used = used_bytes_.load(std::memory_order_relaxed);
    while (true) {
      if (used + bytes > quota_bytes_) {
        breaches_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (used_bytes_.compare_exchange_weak(used, used + bytes, std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  void Release(uint64_t bytes) { used_bytes_.fetch_sub(bytes, std::memory_order_relaxed); }

  uint64_t quota_bytes() const { return quota_bytes_; }
  uint64_t used_bytes() const { return used_bytes_.load(std::memory_order_relaxed); }
  uint64_t breaches() const { return breaches_.load(std::memory_order_relaxed); }

 private:
  uint64_t quota_bytes_ = 0;  // 0 = unlimited
  std::atomic<uint64_t> used_bytes_{0};
  std::atomic<uint64_t> breaches_{0};
};

class RmtMap {
 public:
  virtual ~RmtMap() = default;

  virtual MapKind kind() const = 0;
  virtual size_t capacity() const = 0;
  virtual size_t size() const = 0;

  // Absent keys read as nullopt; the VM materializes that as 0 for
  // kMapLookup and 0/1 for kMapExists.
  virtual std::optional<int64_t> Lookup(int64_t key) = 0;
  virtual bool Contains(int64_t key) const = 0;

  // Returns false when the write could not be applied (array out of range,
  // hash full). VM semantics: a failed update is dropped, never a fault.
  virtual bool Update(int64_t key, int64_t value) = 0;
  virtual bool Delete(int64_t key) = 0;
};

class ArrayMap final : public RmtMap {
 public:
  // Value-initialized atomic cells: every slot starts at 0. Cells are
  // atomics (relaxed) because the control plane may WriteMap a slot while
  // datapath fires read it — per-cell wordwise atomicity is exactly the
  // eBPF array-map contract; there is no cross-cell consistency to lose.
  explicit ArrayMap(size_t capacity) : values_(capacity) {}

  MapKind kind() const override { return MapKind::kArray; }
  size_t capacity() const override { return values_.size(); }
  size_t size() const override { return values_.size(); }
  std::optional<int64_t> Lookup(int64_t key) override;
  bool Contains(int64_t key) const override;
  bool Update(int64_t key, int64_t value) override;
  bool Delete(int64_t key) override;  // resets the slot to 0

  // Raw cell array for the tier-3 specializer's burned lookups (skips the
  // registry probe and the virtual dispatch; bounds/zero semantics stay the
  // caller's job and must mirror Lookup).
  std::span<const std::atomic<int64_t>> cells() const { return {values_.data(), values_.size()}; }

 private:
  std::vector<std::atomic<int64_t>> values_;
};

class HashMap final : public RmtMap {
 public:
  explicit HashMap(size_t capacity, MapQuota* quota = nullptr)
      : capacity_(capacity), quota_(quota) {}

  MapKind kind() const override { return MapKind::kHash; }
  size_t capacity() const override { return capacity_; }
  size_t size() const override { return values_.size(); }
  std::optional<int64_t> Lookup(int64_t key) override;
  bool Contains(int64_t key) const override;
  bool Update(int64_t key, int64_t value) override;
  bool Delete(int64_t key) override;

 private:
  size_t capacity_;
  MapQuota* quota_;  // shared program-level accounting; may be null
  std::unordered_map<int64_t, int64_t> values_;
};

class LruMap final : public RmtMap {
 public:
  explicit LruMap(size_t capacity, MapQuota* quota = nullptr)
      : capacity_(capacity), quota_(quota) {}

  MapKind kind() const override { return MapKind::kLru; }
  size_t capacity() const override { return capacity_; }
  size_t size() const override { return entries_.size(); }
  std::optional<int64_t> Lookup(int64_t key) override;  // refreshes recency
  bool Contains(int64_t key) const override;
  bool Update(int64_t key, int64_t value) override;     // may evict LRU
  bool Delete(int64_t key) override;

 private:
  void Touch(int64_t key);

  size_t capacity_;
  MapQuota* quota_;  // shared program-level accounting; may be null
  // Recency list, most-recent at front; map holds value + list position.
  std::list<int64_t> order_;
  struct Entry {
    int64_t value;
    std::list<int64_t>::iterator position;
  };
  std::unordered_map<int64_t, Entry> entries_;
};

class RingMap final : public RmtMap {
 public:
  struct Record {
    int64_t key;
    int64_t value;
  };

  explicit RingMap(size_t capacity) : capacity_(capacity) {}

  MapKind kind() const override { return MapKind::kRing; }
  size_t capacity() const override { return capacity_; }
  size_t size() const override;

  // Ring semantics: Lookup/Contains/Delete are not meaningful by key;
  // Update(key, value) appends a record (dropping the oldest when full).
  // Thread-safe (mutex-guarded): datapath fires append via kRecordSample
  // while the control plane drains — the one map kind crossed by both
  // planes concurrently.
  std::optional<int64_t> Lookup(int64_t key) override;
  bool Contains(int64_t key) const override;
  bool Update(int64_t key, int64_t value) override;
  bool Delete(int64_t key) override;

  // Control-plane drain: pops the oldest record.
  std::optional<Record> Pop();
  uint64_t dropped() const;

 private:
  size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<Record> records_;  // guarded by mutex_
  uint64_t dropped_ = 0;        // guarded by mutex_
};

// The map file descriptor table of one installed program. All maps in the
// set share one MapQuota; SetQuotaBytes must be called before the first
// Create for the budget to cover dense-map footprints.
class MapSet {
 public:
  // Declares the byte budget for this program's maps (0 = unlimited).
  void SetQuotaBytes(uint64_t quota_bytes) { quota_.Reset(quota_bytes); }

  // Fails with kResourceExhausted when a dense map's footprint would push
  // the program over its declared quota.
  Result<int64_t> Create(MapKind kind, size_t capacity);
  RmtMap* Get(int64_t id);
  const RmtMap* Get(int64_t id) const;
  size_t size() const { return maps_.size(); }

  const MapQuota& quota() const { return quota_; }

  // Control-plane write versioning for the tier-3 specializer. Every
  // successful out-of-VM write (ControlPlane::WriteMap) bumps this cell, so
  // a specialized program that folded map state detects staleness with one
  // load at fire entry. VM-side kMapUpdate/kMapDelete do NOT bump it — the
  // specializer only folds maps that no action of the program writes, so
  // the control plane is the sole writer of folded state.
  void BumpWriteVersion() { write_version_.fetch_add(1, std::memory_order_release); }
  uint64_t write_version() const { return write_version_.load(std::memory_order_relaxed); }
  const std::atomic<uint64_t>* write_version_cell() const { return &write_version_; }

 private:
  MapQuota quota_;
  std::atomic<uint64_t> write_version_{0};
  std::vector<std::unique_ptr<RmtMap>> maps_;
};

}  // namespace rkd

#endif  // SRC_VM_MAPS_H_
