// eBPF-style maps: the general-purpose monitoring data structures of the RMT
// VM (section 3.1: "data structures for monitoring purposes (e.g., akin to
// different types of eBPF maps)"). Programs address maps by the small ids
// they declared; the control plane reads/writes them from "userspace".
//
// Kinds:
//   ArrayMap  - dense, fixed-size, index-keyed; O(1), no eviction
//   HashMap   - sparse keys, bounded; inserts beyond capacity are rejected
//   LruMap    - sparse keys, bounded; inserts beyond capacity evict the
//               least-recently-touched entry (the eBPF LRU_HASH analogue)
//   RingMap   - bounded FIFO of (key, value) records; kRecordSample appends,
//               the control plane drains (perf-buffer analogue)
#ifndef SRC_VM_MAPS_H_
#define SRC_VM_MAPS_H_

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"

namespace rkd {

enum class MapKind { kArray, kHash, kLru, kRing };

std::string_view MapKindName(MapKind kind);

class RmtMap {
 public:
  virtual ~RmtMap() = default;

  virtual MapKind kind() const = 0;
  virtual size_t capacity() const = 0;
  virtual size_t size() const = 0;

  // Absent keys read as nullopt; the VM materializes that as 0 for
  // kMapLookup and 0/1 for kMapExists.
  virtual std::optional<int64_t> Lookup(int64_t key) = 0;
  virtual bool Contains(int64_t key) const = 0;

  // Returns false when the write could not be applied (array out of range,
  // hash full). VM semantics: a failed update is dropped, never a fault.
  virtual bool Update(int64_t key, int64_t value) = 0;
  virtual bool Delete(int64_t key) = 0;
};

class ArrayMap final : public RmtMap {
 public:
  explicit ArrayMap(size_t capacity) : values_(capacity, 0) {}

  MapKind kind() const override { return MapKind::kArray; }
  size_t capacity() const override { return values_.size(); }
  size_t size() const override { return values_.size(); }
  std::optional<int64_t> Lookup(int64_t key) override;
  bool Contains(int64_t key) const override;
  bool Update(int64_t key, int64_t value) override;
  bool Delete(int64_t key) override;  // resets the slot to 0

 private:
  std::vector<int64_t> values_;
};

class HashMap final : public RmtMap {
 public:
  explicit HashMap(size_t capacity) : capacity_(capacity) {}

  MapKind kind() const override { return MapKind::kHash; }
  size_t capacity() const override { return capacity_; }
  size_t size() const override { return values_.size(); }
  std::optional<int64_t> Lookup(int64_t key) override;
  bool Contains(int64_t key) const override;
  bool Update(int64_t key, int64_t value) override;
  bool Delete(int64_t key) override;

 private:
  size_t capacity_;
  std::unordered_map<int64_t, int64_t> values_;
};

class LruMap final : public RmtMap {
 public:
  explicit LruMap(size_t capacity) : capacity_(capacity) {}

  MapKind kind() const override { return MapKind::kLru; }
  size_t capacity() const override { return capacity_; }
  size_t size() const override { return entries_.size(); }
  std::optional<int64_t> Lookup(int64_t key) override;  // refreshes recency
  bool Contains(int64_t key) const override;
  bool Update(int64_t key, int64_t value) override;     // may evict LRU
  bool Delete(int64_t key) override;

 private:
  void Touch(int64_t key);

  size_t capacity_;
  // Recency list, most-recent at front; map holds value + list position.
  std::list<int64_t> order_;
  struct Entry {
    int64_t value;
    std::list<int64_t>::iterator position;
  };
  std::unordered_map<int64_t, Entry> entries_;
};

class RingMap final : public RmtMap {
 public:
  struct Record {
    int64_t key;
    int64_t value;
  };

  explicit RingMap(size_t capacity) : capacity_(capacity) {}

  MapKind kind() const override { return MapKind::kRing; }
  size_t capacity() const override { return capacity_; }
  size_t size() const override;

  // Ring semantics: Lookup/Contains/Delete are not meaningful by key;
  // Update(key, value) appends a record (dropping the oldest when full).
  // Thread-safe (mutex-guarded): datapath fires append via kRecordSample
  // while the control plane drains — the one map kind crossed by both
  // planes concurrently.
  std::optional<int64_t> Lookup(int64_t key) override;
  bool Contains(int64_t key) const override;
  bool Update(int64_t key, int64_t value) override;
  bool Delete(int64_t key) override;

  // Control-plane drain: pops the oldest record.
  std::optional<Record> Pop();
  uint64_t dropped() const;

 private:
  size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<Record> records_;  // guarded by mutex_
  uint64_t dropped_ = 0;        // guarded by mutex_
};

// The map file descriptor table of one installed program.
class MapSet {
 public:
  Result<int64_t> Create(MapKind kind, size_t capacity);
  RmtMap* Get(int64_t id);
  const RmtMap* Get(int64_t id) const;
  size_t size() const { return maps_.size(); }

 private:
  std::vector<std::unique_ptr<RmtMap>> maps_;
};

}  // namespace rkd

#endif  // SRC_VM_MAPS_H_
