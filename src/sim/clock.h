// Virtual time for the kernel substrate. All latencies in the simulators are
// accounted against a VirtualClock, so completion times are deterministic
// and independent of host speed.
#ifndef SRC_SIM_CLOCK_H_
#define SRC_SIM_CLOCK_H_

#include <cstdint>

namespace rkd {

class VirtualClock {
 public:
  uint64_t now_ns() const { return now_ns_; }
  void Advance(uint64_t delta_ns) { now_ns_ += delta_ns; }
  void Reset() { now_ns_ = 0; }

 private:
  uint64_t now_ns_ = 0;
};

}  // namespace rkd

#endif  // SRC_SIM_CLOCK_H_
