// RMT-backed packet RX datapath — the network case study's hook wiring.
//
// An XDP-style receive path modeled as a three-stage RMT pipeline, one hook
// per match stage, fired per packet (batched by default):
//
//   net.rx.route     LPM over dst_ip        -> route class (queue group /
//                                             slow-path target / feature)
//   net.rx.classify  ternary over the       -> ACL verdict: pass / drop /
//                    (proto, ports) key        redirect
//   net.rx.packet    exact over flow_id     -> the steering decision: packed
//                    (the flow cache)          (verdict, queue)
//
// Two policies share this spine, both expressed as installable programs:
//
//   heuristic  static RSS — queue = hash(flow) % queues, obey the ACL. The
//              kernel's static datapath, and the governor's fallback oracle.
//   learned    the flow action loads the per-flow feature lanes from the
//              execution context and asks model slot 0 for a class in
//              [0, queues] — a steer queue, or `queues` = early drop. With
//              no model installed the action degrades to the RSS hash.
//
// Decisions are packed (verdict, queue) pairs so one Fire result carries
// both; kHookFallback still means "RMT has no opinion" (stock kernel RSS).
#ifndef SRC_SIM_NET_RX_DATAPATH_H_
#define SRC_SIM_NET_RX_DATAPATH_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/ml/dataset.h"
#include "src/replay/recorder.h"
#include "src/rmt/control_plane.h"
#include "src/workloads/packet_trace.h"

namespace rkd {

// --- Decision encoding -----------------------------------------------------

inline constexpr int64_t kRxPass = 0;
inline constexpr int64_t kRxDrop = 1;
inline constexpr int64_t kRxRedirect = 2;

inline constexpr int64_t MakeRxDecision(int64_t verdict, int64_t queue) {
  return (verdict << 8) | (queue & 0xff);
}
inline constexpr int64_t RxVerdictOf(int64_t decision) { return (decision >> 8) & 0xff; }
inline constexpr int64_t RxQueueOf(int64_t decision) { return decision & 0xff; }

// The RSS hash every policy layer agrees on (bytecode action, fallback
// oracle, sim's stock-kernel path, label generation). flow_id is already a
// full-avalanche digest, so the low 32 bits are uniform.
inline constexpr int64_t RssQueue(uint64_t flow_id, uint16_t queues) {
  return static_cast<int64_t>((flow_id & 0xffffffffull) % queues);
}

// --- Feature lanes ---------------------------------------------------------

// Context-store lanes the flow action's model reads (raw ints, not Q16 —
// forest/tree thresholds and the raw-MLP adapter both consume raw values).
inline constexpr size_t kNfLogCount = 0;      // log2(packets seen from this flow)
inline constexpr size_t kNfRank = 1;          // elephant rank, `queues` = unranked
inline constexpr size_t kNfHashLane = 2;      // RssQueue(flow_id)
inline constexpr size_t kNfLength = 3;        // smoothed frame length
inline constexpr size_t kNfIsNew = 4;         // first batch this flow appears in
inline constexpr size_t kNfRouteClass = 5;    // net.rx.route result
inline constexpr size_t kNfAclVerdict = 6;    // net.rx.classify result
inline constexpr size_t kNfNewFlowRate = 7;   // new flows per 1k pkts, last batch
inline constexpr size_t kNfDstPort = 8;
inline constexpr size_t kNfProto = 9;
inline constexpr size_t kNetFeatureCount = 10;

using NetFeatureRow = std::array<int32_t, kNetFeatureCount>;

// --- Configuration ---------------------------------------------------------

enum class RxPolicyKind { kHeuristic, kLearned };
enum class NetModelFamily { kDecisionTree, kRandomForest, kQuantizedMlp };

struct NetConfig {
  uint16_t queues = 8;
  uint16_t route_classes = 4;
  uint32_t route_prefixes = 256;     // LPM fan-out (plus the /8 default route)
  uint32_t acl_entries = 256;        // ternary fan-out
  uint32_t acl_mask_diversity = 4;   // distinct wildcard widths -> mask groups
  size_t flow_cache_capacity = 1024; // exact-match flow table size (LRU)
  size_t batch_size = 2048;          // FireBatch window (multi-thousand default)
  double queue_headroom = 2.0;       // per-queue drain = headroom * batch/queues
  uint64_t slow_path_ns = 800;       // charged per flow-cache miss
  ExecTier tier = ExecTier::kJit;
  bool enable_tiering = true;
  uint64_t tiering_hot_execs = 4096;
  uint64_t fire_deadline_ns = 0;     // 0 = unbounded (storm tests set this)
};

// Deterministic initial table contents, shared by the spec builder, the
// benchmarks, and the index property tests.
std::vector<TableEntry> MakeRouteEntries(const NetConfig& config);
std::vector<TableEntry> MakeAclEntries(const NetConfig& config);

// --- Model training --------------------------------------------------------

// Trains the steering/drop classifier on (feature row, class) samples, where
// class in [0, queues) steers and class == queues drops. Deterministic given
// (data, family, seed).
Result<ModelPtr> TrainNetModel(const Dataset& data, NetModelFamily family, uint64_t seed);

// --- The datapath ----------------------------------------------------------

class RmtRxDatapath {
 public:
  explicit RmtRxDatapath(const NetConfig& config, RxPolicyKind policy);

  // Registers the three hooks, installs the policy program (verified
  // admission), wires the governor's RSS fallback oracle, enables tiering.
  Status Init();

  // The installable bundle, exactly as Init() installs it. Both policies are
  // buildable from one datapath so shadow/canary candidates can be diffed
  // against the live incumbent.
  RmtProgramSpec BuildProgramSpec(RxPolicyKind policy, std::string name) const;
  RmtProgramSpec BuildProgramSpec() const {
    return BuildProgramSpec(policy_, policy_ == RxPolicyKind::kLearned
                                         ? "rmt_net_learned"
                                         : "rmt_net_heuristic");
  }

  // Installs/replaces the steering model (slot 0); cost-model re-checked.
  Status InstallModel(ModelPtr model);

  // Experience capture: all three hooks are tracked (so replay exercises the
  // LPM and ternary stages too); net.rx.packet fires carry the published
  // feature lanes and the ideal-decision label.
  Status AttachRecorder(ExperienceRecorder* recorder);

  // Decides one batch: fires the route and classify stages, publishes each
  // flow's feature row (lanes kNfRouteClass/kNfAclVerdict filled in here),
  // then fires the packet stage through one FireBatch. decisions[i] is the
  // packed (verdict, queue) or kHookFallback. `labels[i]` (optional, may be
  // empty) is the sim's ideal decision for recorder staging; the ACL verdict
  // overrides it the same way it overrides the live decision.
  //
  // Feature rows must be constant per flow within one batch (the sim
  // memoizes them per flow): repeated flows overwrite one context entry, so
  // a per-packet row would make live fires and replayed fires disagree.
  void DecideBatch(std::span<const PacketEvent> packets,
                   std::span<NetFeatureRow> features, std::span<const int64_t> labels,
                   std::span<int64_t> decisions);

  // Flow-cache maintenance (the sim's LRU policy drives these).
  Status InsertFlow(uint64_t flow_id);
  Status EvictFlow(uint64_t flow_id);
  // Drops the flow's context entry (uncached flows are erased per batch so
  // flood churn cannot exhaust the context store).
  void EraseContext(uint64_t flow_id);

  // Rollout support: while a canary soaks, feature rows are mirrored into
  // its context store too (context is per-program; without the mirror the
  // canary's model would read zeros). -1 clears the mirror.
  void set_mirror_handle(ControlPlane::ProgramHandle handle) { mirror_handle_ = handle; }
  // Re-points the datapath at the promoted program (its handle survives the
  // rollout) and re-enables tiering on it.
  Status AdoptPromoted(ControlPlane::ProgramHandle handle, RxPolicyKind policy);

  ControlPlane& control_plane() { return control_plane_; }
  HookRegistry& hooks() { return hooks_; }
  ControlPlane::ProgramHandle handle() const { return handle_; }
  HookId packet_hook() const { return packet_hook_; }
  HookId route_hook() const { return route_hook_; }
  HookId classify_hook() const { return classify_hook_; }
  RxPolicyKind policy() const { return policy_; }
  const NetConfig& config() const { return config_; }
  uint64_t packets_decided() const { return packets_decided_; }
  uint64_t context_publish_failures() const { return context_publish_failures_; }

 private:
  void MaybeTickTiering(uint64_t new_packets);
  void PublishFeatures(ControlPlane::ProgramHandle handle, uint64_t flow_id,
                       const NetFeatureRow& row);

  NetConfig config_;
  RxPolicyKind policy_;
  HookRegistry hooks_;
  ControlPlane control_plane_;
  ControlPlane::ProgramHandle handle_ = -1;
  ControlPlane::ProgramHandle mirror_handle_ = -1;

  HookId route_hook_ = kInvalidHook;
  HookId classify_hook_ = kInvalidHook;
  HookId packet_hook_ = kInvalidHook;
  uint64_t vclock_ = 0;  // deterministic packet clock (hook `now` binding)
  uint64_t packets_decided_ = 0;
  uint64_t packets_since_tier_tick_ = 0;
  uint64_t context_publish_failures_ = 0;
  bool initialized_ = false;
  ExperienceRecorder* recorder_ = nullptr;  // null = not recording

  // Scratch buffers reused across DecideBatch invocations.
  std::vector<HookEvent> stage_events_;
  std::vector<int64_t> stage_results_;
  std::vector<int64_t> acl_verdicts_;
  std::vector<int64_t> route_classes_;
};

}  // namespace rkd

#endif  // SRC_SIM_NET_RX_DATAPATH_H_
