#include "src/sim/net/rx_datapath.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/bytecode/assembler.h"
#include "src/ml/decision_tree.h"
#include "src/ml/forest.h"
#include "src/ml/mlp.h"
#include "src/ml/quantize.h"

namespace rkd {

namespace {

// Classify-key field masks (layout: proto << 32 | src_port << 16 | dst_port).
constexpr uint64_t kProtoMask = 0xffull << 32;
constexpr uint64_t kSrcPortMask = 0xffffull << 16;
constexpr uint64_t kDstPortMask = 0xffffull;

BytecodeProgram RouteClassAction(int64_t route_class) {
  Assembler a("rx_route_class" + std::to_string(route_class), HookKind::kNetRx);
  a.MovImm(0, route_class);
  a.Exit();
  return std::move(a.Build()).value();  // static program; always builds
}

BytecodeProgram ClassifyAction(const char* name, int64_t verdict) {
  Assembler a(name, HookKind::kNetRx);
  a.MovImm(0, verdict);
  a.Exit();
  return std::move(a.Build()).value();
}

// The static-RSS flow action: obey the ACL verdict in r2, otherwise steer by
// hash. The bytecode mirrors RssQueue() exactly (mask to the uniform low 32
// bits first, so the signed Mod never sees a negative dividend).
BytecodeProgram FlowHeuristicAction(uint16_t queues) {
  Assembler a("rx_flow_rss", HookKind::kNetRx);
  Assembler::Label drop = a.NewLabel();
  Assembler::Label redirect = a.NewLabel();
  a.JeqImm(2, kRxDrop, drop);
  a.JeqImm(2, kRxRedirect, redirect);
  a.Mov(0, 1);
  a.AndImm(0, 0xffffffffll);
  a.ModImm(0, queues);
  a.Exit();
  a.Bind(drop);
  a.MovImm(0, MakeRxDecision(kRxDrop, 0));
  a.Exit();
  a.Bind(redirect);
  a.MovImm(0, MakeRxDecision(kRxRedirect, 0));
  a.Exit();
  return std::move(a.Build()).value();
}

// The learned flow action: ACL verdicts still bind, then model slot 0 maps
// the flow's feature lanes to a class — a steer queue, or `queues` (and
// anything above) for an early drop. The no-model sentinel (negative) and
// any out-of-range class degrade to the RSS hash, so an un-pushed or
// misbehaving model can only ever cost accuracy, never correctness.
BytecodeProgram FlowLearnedAction(uint16_t queues) {
  Assembler a("rx_flow_learned", HookKind::kNetRx);
  a.DeclareModels(1);
  Assembler::Label drop = a.NewLabel();
  Assembler::Label redirect = a.NewLabel();
  Assembler::Label rss = a.NewLabel();
  a.JeqImm(2, kRxDrop, drop);
  a.JeqImm(2, kRxRedirect, redirect);
  a.VecLdCtxt(0, 1);   // v0 = feature lanes of ctxt[flow_id]
  a.MlCall(6, 0, 0);   // r6 = class (or the no-model sentinel)
  a.JltImm(6, 0, rss);
  a.JgtImm(6, queues, rss);
  a.JeqImm(6, queues, drop);
  a.Mov(0, 6);
  a.Exit();
  a.Bind(rss);
  a.Mov(0, 1);
  a.AndImm(0, 0xffffffffll);
  a.ModImm(0, queues);
  a.Exit();
  a.Bind(drop);
  a.MovImm(0, MakeRxDecision(kRxDrop, 0));
  a.Exit();
  a.Bind(redirect);
  a.MovImm(0, MakeRxDecision(kRxRedirect, 0));
  a.Exit();
  return std::move(a.Build()).value();
}

}  // namespace

std::vector<TableEntry> MakeRouteEntries(const NetConfig& config) {
  std::vector<TableEntry> entries;
  entries.reserve(config.route_prefixes + 1);
  // Covering default: 10.0.0.0/8 (40 leading bits of the 64-bit key space)
  // -> route class 0, so every packet resolves a class even off-prefix.
  entries.push_back(TableEntry{0x0A000000ull, 40, 0, 0, -1});
  for (uint32_t p = 0; p < config.route_prefixes; ++p) {
    TableEntry entry;
    entry.key = PrefixBase(p);
    entry.key2 = 56;  // a /24 in the low-32-bit address lane
    entry.action_index = static_cast<int32_t>(p % std::max<uint16_t>(1, config.route_classes));
    entries.push_back(entry);
  }
  return entries;
}

std::vector<TableEntry> MakeAclEntries(const NetConfig& config) {
  std::vector<TableEntry> entries;
  entries.reserve(config.acl_entries);
  std::set<std::pair<uint64_t, uint64_t>> seen;
  const uint32_t diversity = std::max(1u, config.acl_mask_diversity);
  uint32_t i = 0;
  for (uint32_t attempts = 0;
       entries.size() < config.acl_entries && attempts < 4 * config.acl_entries + 64;
       ++attempts, ++i) {
    TableEntry entry;
    if (i % 64 == 63) {
      // Redirect family: UDP toward the NTP monitoring port, split into 16
      // source-nibble rules (deep inspection on the slow path).
      const uint64_t src_nibble = (i / 64) % 16;
      entry.key2 = kProtoMask | kDstPortMask | (0xf000ull << 16);
      entry.key = (17ull << 32) | (src_nibble << 12 << 16) | 123ull;
      entry.priority = 5;
      entry.action_index = 2;
    } else {
      // Drop family: UDP from curated source-port ranges, with a rotating
      // wildcard width so the compiled index sees `diversity` mask groups.
      const uint32_t width = i % diversity;
      const uint64_t port_mask = 0xffffull & ~((1ull << width) - 1);
      uint64_t src_port = 1024 + (static_cast<uint64_t>(i) * 251) % 64000;
      src_port &= port_mask;
      entry.key2 = kProtoMask | (port_mask << 16);
      entry.key = (17ull << 32) | (src_port << 16);
      entry.priority = 10 + static_cast<int32_t>(width);
      entry.action_index = 1;
    }
    if (seen.emplace(entry.key, entry.key2).second) {
      entries.push_back(entry);
    }
  }
  return entries;
}

Result<ModelPtr> TrainNetModel(const Dataset& data, NetModelFamily family, uint64_t seed) {
  if (data.empty()) {
    return InvalidArgumentError("net training set is empty");
  }
  switch (family) {
    case NetModelFamily::kDecisionTree: {
      DecisionTreeConfig config;
      config.max_depth = 10;
      RKD_ASSIGN_OR_RETURN(DecisionTree tree, DecisionTree::Train(data, config));
      return ModelPtr(std::make_shared<DecisionTree>(std::move(tree)));
    }
    case NetModelFamily::kRandomForest: {
      ForestConfig config;
      config.num_trees = 6;
      config.tree.max_depth = 10;
      config.seed = seed;
      RKD_ASSIGN_OR_RETURN(RandomForest forest, RandomForest::Train(data, config));
      return ModelPtr(std::make_shared<RandomForest>(std::move(forest)));
    }
    case NetModelFamily::kQuantizedMlp: {
      if (data.NumClasses() < 2) {
        return InvalidArgumentError("MLP training needs at least two classes");
      }
      MlpConfig config;
      config.hidden_sizes = {24};
      config.epochs = 20;
      config.seed = seed;
      RKD_ASSIGN_OR_RETURN(Mlp mlp, Mlp::Train(data, config));
      RKD_ASSIGN_OR_RETURN(QuantizedMlp quantized, QuantizedMlp::FromMlp(mlp));
      return ModelPtr(std::make_shared<QuantizedMlpRawAdapter>(std::move(quantized)));
    }
  }
  return InvalidArgumentError("unknown net model family");
}

RmtRxDatapath::RmtRxDatapath(const NetConfig& config, RxPolicyKind policy)
    : config_(config), policy_(policy), control_plane_(&hooks_) {}

RmtProgramSpec RmtRxDatapath::BuildProgramSpec(RxPolicyKind policy, std::string name) const {
  RmtProgramSpec spec;
  spec.name = std::move(name);
  spec.model_slots = 1;  // both policies declare the slot so a model push is
                         // recordable (the heuristic action simply ignores it)
  spec.fire_deadline_ns = config_.fire_deadline_ns;

  RmtTableSpec route;
  route.name = "rx_route";
  route.hook_point = "net.rx.route";
  route.match_kind = MatchKind::kLpm;
  route.max_entries = config_.route_prefixes + 8;
  for (uint16_t c = 0; c < std::max<uint16_t>(1, config_.route_classes); ++c) {
    route.actions.push_back(RouteClassAction(c));
  }
  route.default_action = 0;
  route.initial_entries = MakeRouteEntries(config_);
  spec.tables.push_back(std::move(route));

  RmtTableSpec classify;
  classify.name = "rx_classify";
  classify.hook_point = "net.rx.classify";
  classify.match_kind = MatchKind::kTernary;
  classify.max_entries = config_.acl_entries + 8;
  classify.actions.push_back(ClassifyAction("rx_acl_pass", kRxPass));
  classify.actions.push_back(ClassifyAction("rx_acl_drop", kRxDrop));
  classify.actions.push_back(ClassifyAction("rx_acl_redirect", kRxRedirect));
  classify.default_action = 0;  // unmatched traffic passes (flood = ternary miss)
  classify.initial_entries = MakeAclEntries(config_);
  spec.tables.push_back(std::move(classify));

  RmtTableSpec flow;
  flow.name = "rx_flow";
  flow.hook_point = "net.rx.packet";
  flow.match_kind = MatchKind::kExact;
  flow.max_entries = config_.flow_cache_capacity;
  flow.actions.push_back(policy == RxPolicyKind::kLearned
                             ? FlowLearnedAction(config_.queues)
                             : FlowHeuristicAction(config_.queues));
  // Default == the entry action: a flow-cache miss costs slow-path time, not
  // a different decision — which also keeps replay (whose sandbox sees only
  // initial_entries, never the live LRU churn) decision-identical.
  flow.default_action = 0;
  spec.tables.push_back(std::move(flow));
  return spec;
}

Status RmtRxDatapath::Init() {
  if (initialized_) {
    return FailedPreconditionError("RmtRxDatapath::Init called twice");
  }
  SubsystemBindings bindings;
  bindings.now = [this] { return vclock_; };  // packet clock: deterministic corpora
  RKD_ASSIGN_OR_RETURN(route_hook_,
                       hooks_.Register("net.rx.route", HookKind::kNetRx, bindings));
  RKD_ASSIGN_OR_RETURN(classify_hook_,
                       hooks_.Register("net.rx.classify", HookKind::kNetRx, bindings));
  RKD_ASSIGN_OR_RETURN(packet_hook_,
                       hooks_.Register("net.rx.packet", HookKind::kNetRx, bindings));
  RKD_ASSIGN_OR_RETURN(handle_, control_plane_.Install(BuildProgramSpec(), config_.tier));

  // Degraded-rung fallbacks: the static pipeline the kernel would run
  // anyway. Route class 0, ACL pass, RSS steering that still honours the
  // ACL verdict the fire's args carry.
  RKD_RETURN_IF_ERROR(hooks_.SetFallbackOracle(
      route_hook_, [](uint64_t, std::span<const int64_t>) -> int64_t { return 0; }));
  RKD_RETURN_IF_ERROR(hooks_.SetFallbackOracle(
      classify_hook_, [](uint64_t, std::span<const int64_t>) -> int64_t { return kRxPass; }));
  const uint16_t queues = config_.queues;
  RKD_RETURN_IF_ERROR(hooks_.SetFallbackOracle(
      packet_hook_, [queues](uint64_t key, std::span<const int64_t> args) -> int64_t {
        const int64_t acl = args.empty() ? kRxPass : args[0];
        if (acl == kRxDrop) {
          return MakeRxDecision(kRxDrop, 0);
        }
        if (acl == kRxRedirect) {
          return MakeRxDecision(kRxRedirect, 0);
        }
        return RssQueue(key, queues);
      }));

  if (config_.enable_tiering && config_.tier == ExecTier::kJit) {
    ControlPlane::TieringConfig tiering;
    tiering.hot_execs = config_.tiering_hot_execs;
    RKD_RETURN_IF_ERROR(control_plane_.EnableTiering(handle_, tiering));
  }
  initialized_ = true;
  return OkStatus();
}

Status RmtRxDatapath::InstallModel(ModelPtr model) {
  ModelPtr installed = model;  // shared ref survives the move for recording
  RKD_RETURN_IF_ERROR(control_plane_.InstallModel(handle_, 0, std::move(model)));
  if (recorder_ != nullptr && installed != nullptr) {
    // A model push that cannot be recorded would make every later corpus
    // replay silently run model-less — fail loudly instead.
    RKD_RETURN_IF_ERROR(recorder_->RecordModelInstall(0, *installed));
  }
  if (config_.enable_tiering && config_.tier == ExecTier::kJit) {
    (void)control_plane_.TickTiering(handle_);
  }
  return OkStatus();
}

Status RmtRxDatapath::AttachRecorder(ExperienceRecorder* recorder) {
  if (!initialized_) {
    return FailedPreconditionError("AttachRecorder requires a successful Init()");
  }
  RKD_RETURN_IF_ERROR(recorder->Track(route_hook_, DecisionSource::kResult));
  RKD_RETURN_IF_ERROR(recorder->Track(classify_hook_, DecisionSource::kResult));
  RKD_RETURN_IF_ERROR(
      recorder->Track(packet_hook_, DecisionSource::kResult, "ideal_decision"));
  recorder_ = recorder;
  recorder_->Attach();
  return OkStatus();
}

void RmtRxDatapath::MaybeTickTiering(uint64_t new_packets) {
  if (!config_.enable_tiering || config_.tier != ExecTier::kJit) {
    return;
  }
  packets_since_tier_tick_ += new_packets;
  if (packets_since_tier_tick_ >= config_.batch_size * 4) {
    packets_since_tier_tick_ = 0;
    (void)control_plane_.TickTiering(handle_);
  }
}

void RmtRxDatapath::PublishFeatures(ControlPlane::ProgramHandle handle, uint64_t flow_id,
                                    const NetFeatureRow& row) {
  InstalledProgram* program = control_plane_.Get(handle);
  if (program == nullptr) {
    return;
  }
  ContextEntry* entry = program->context().FindOrCreate(flow_id);
  if (entry == nullptr) {
    ++context_publish_failures_;  // store full; the action degrades to RSS
    return;
  }
  entry->features.fill(0);
  std::copy(row.begin(), row.end(), entry->features.begin());
}

void RmtRxDatapath::DecideBatch(std::span<const PacketEvent> packets,
                                std::span<NetFeatureRow> features,
                                std::span<const int64_t> labels,
                                std::span<int64_t> decisions) {
  const size_t n = std::min({packets.size(), features.size(), decisions.size()});
  if (n == 0) {
    return;
  }
  vclock_ += n;  // whole batch carries one deterministic timestamp

  // Stage 1: LPM route lookup over dst_ip.
  stage_events_.assign(n, HookEvent{});
  for (size_t i = 0; i < n; ++i) {
    stage_events_[i].key = packets[i].dst_ip;
  }
  route_classes_.assign(n, kHookFallback);
  hooks_.FireBatch(route_hook_, stage_events_, route_classes_);

  // Stage 2: ternary ACL over (proto, ports).
  for (size_t i = 0; i < n; ++i) {
    stage_events_[i].key = ClassifyKey(packets[i]);
  }
  acl_verdicts_.assign(n, kHookFallback);
  hooks_.FireBatch(classify_hook_, stage_events_, acl_verdicts_);

  // Stage 3: publish feature rows (now that the pipeline lanes are known),
  // stage recorder side channels, and fire the flow stage in one batch.
  for (size_t i = 0; i < n; ++i) {
    const int64_t rc = route_classes_[i];
    const int64_t acl = acl_verdicts_[i];
    features[i][kNfRouteClass] =
        rc >= 0 && rc < config_.route_classes ? static_cast<int32_t>(rc) : 0;
    features[i][kNfAclVerdict] =
        acl >= kRxPass && acl <= kRxRedirect ? static_cast<int32_t>(acl) : 0;
    PublishFeatures(handle_, packets[i].flow_id, features[i]);
    if (mirror_handle_ >= 0) {
      PublishFeatures(mirror_handle_, packets[i].flow_id, features[i]);
    }
    if (recorder_ != nullptr) {
      std::array<int32_t, kVectorLanes> lanes{};
      std::copy(features[i].begin(), features[i].end(), lanes.begin());
      recorder_->StageContextFeatures(packet_hook_, lanes);
      if (!labels.empty()) {
        // The ACL verdict binds the label exactly like it binds the live
        // decision: no policy is asked to out-steer a curated drop rule.
        int64_t label = labels[i];
        if (features[i][kNfAclVerdict] == kRxDrop) {
          label = MakeRxDecision(kRxDrop, 0);
        } else if (features[i][kNfAclVerdict] == kRxRedirect) {
          label = MakeRxDecision(kRxRedirect, 0);
        }
        recorder_->StageLabel(packet_hook_, label);
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    stage_events_[i] = HookEvent{packets[i].flow_id,
                                 {features[i][kNfAclVerdict], features[i][kNfRouteClass],
                                  packets[i].length}};
  }
  MaybeTickTiering(n);
  std::fill(decisions.begin(), decisions.begin() + static_cast<ptrdiff_t>(n),
            kHookFallback);
  hooks_.FireBatch(packet_hook_, std::span(stage_events_).first(n), decisions.first(n));
  packets_decided_ += n;
}

Status RmtRxDatapath::InsertFlow(uint64_t flow_id) {
  TableEntry entry;
  entry.key = flow_id;
  entry.action_index = 0;
  return control_plane_.AddEntry(handle_, "rx_flow", entry);
}

Status RmtRxDatapath::EvictFlow(uint64_t flow_id) {
  return control_plane_.RemoveEntry(handle_, "rx_flow", flow_id);
}

void RmtRxDatapath::EraseContext(uint64_t flow_id) {
  if (InstalledProgram* program = control_plane_.Get(handle_)) {
    program->context().Erase(flow_id);
  }
  if (mirror_handle_ >= 0) {
    if (InstalledProgram* mirror = control_plane_.Get(mirror_handle_)) {
      mirror->context().Erase(flow_id);
    }
  }
}

Status RmtRxDatapath::AdoptPromoted(ControlPlane::ProgramHandle handle,
                                    RxPolicyKind policy) {
  if (control_plane_.Get(handle) == nullptr) {
    return NotFoundError("promoted program handle is not installed");
  }
  handle_ = handle;
  policy_ = policy;
  mirror_handle_ = -1;
  if (config_.enable_tiering && config_.tier == ExecTier::kJit) {
    ControlPlane::TieringConfig tiering;
    tiering.hot_execs = config_.tiering_hot_execs;
    RKD_RETURN_IF_ERROR(control_plane_.EnableTiering(handle_, tiering));
  }
  return OkStatus();
}

}  // namespace rkd
