#include "src/sim/net/net_sim.h"

#include <algorithm>
#include <utility>

namespace rkd {

namespace {

int32_t Log2(uint64_t v) {
  int32_t r = 0;
  while (v >>= 1) ++r;
  return r;
}

}  // namespace

double NetMetrics::SteeringImbalance() const {
  if (queue_bytes.empty()) {
    return 0.0;
  }
  uint64_t max_bytes = 0;
  uint64_t total = 0;
  for (uint64_t b : queue_bytes) {
    max_bytes = std::max(max_bytes, b);
    total += b;
  }
  const double mean = static_cast<double>(total) / static_cast<double>(queue_bytes.size());
  return mean > 0.0 ? static_cast<double>(max_bytes) / mean : 0.0;
}

double NetMetrics::CacheHitRate() const {
  const uint64_t total = cache_hits + cache_misses;
  return total > 0 ? static_cast<double>(cache_hits) / static_cast<double>(total) : 0.0;
}

double NetMetrics::LegitCacheHitRate() const {
  const uint64_t total = legit_cache_hits + legit_cache_misses;
  return total > 0 ? static_cast<double>(legit_cache_hits) / static_cast<double>(total)
                   : 0.0;
}

double NetMetrics::FloodDropShare() const {
  return flood_packets > 0
             ? static_cast<double>(flood_dropped) / static_cast<double>(flood_packets)
             : 0.0;
}

double NetMetrics::LegitDeliveryRate() const {
  return legit_packets > 0
             ? static_cast<double>(legit_delivered) / static_cast<double>(legit_packets)
             : 0.0;
}

NetRxSim::NetRxSim(RmtRxDatapath* datapath) : datapath_(datapath) {
  const NetConfig& config = datapath_->config();
  metrics_.queue_packets.assign(config.queues, 0);
  metrics_.queue_bytes.assign(config.queues, 0);
}

void NetRxSim::Run(std::span<const PacketEvent> trace) {
  const size_t batch_size = std::max<size_t>(1, datapath_->config().batch_size);
  for (size_t offset = 0; offset < trace.size(); offset += batch_size) {
    RunBatch(trace.subspan(offset, std::min(batch_size, trace.size() - offset)));
  }
}

NetRxSim::FlowState& NetRxSim::Touch(const PacketEvent& pkt) {
  auto [it, created] = flows_.try_emplace(pkt.flow_id);
  if (created) {
    it->second.first_seen_batch = batch_index_;
    it->second.rank = datapath_->config().queues;  // unranked until recompute
    it->second.ewma_length = pkt.length;
  }
  return it->second;
}

void NetRxSim::CacheLookupAndFill(uint64_t flow_id, bool flood, bool insert) {
  const NetConfig& config = datapath_->config();
  FlowState& state = flows_[flow_id];
  if (state.cached) {
    ++metrics_.cache_hits;
    if (!flood) ++metrics_.legit_cache_hits;
    lru_.splice(lru_.begin(), lru_, state.lru_pos);
    return;
  }
  ++metrics_.cache_misses;
  if (!flood) ++metrics_.legit_cache_misses;
  metrics_.slow_path_ns += config.slow_path_ns;
  if (!insert) {
    return;  // dropped flows never earn a cache slot
  }
  if (lru_.size() >= config.flow_cache_capacity && !lru_.empty()) {
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    flows_[victim].cached = false;
    (void)datapath_->EvictFlow(victim);
    datapath_->EraseContext(victim);
  }
  lru_.push_front(flow_id);
  state.cached = true;
  state.lru_pos = lru_.begin();
  (void)datapath_->InsertFlow(flow_id);
}

void NetRxSim::RecomputeRanks() {
  const uint16_t queues = datapath_->config().queues;
  std::vector<std::pair<uint64_t, uint64_t>> counts;  // (packets, flow_id)
  counts.reserve(flows_.size());
  for (const auto& [flow_id, state] : flows_) {
    if (state.packets > 0) {
      counts.emplace_back(state.packets, flow_id);
    }
  }
  const size_t top = std::min<size_t>(queues, counts.size());
  // Explicit (count desc, flow asc) order keeps ranks independent of hash-map
  // iteration order — a determinism requirement, not a style choice.
  std::partial_sort(counts.begin(), counts.begin() + static_cast<ptrdiff_t>(top),
                    counts.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  for (auto& [flow_id, state] : flows_) {
    state.rank = queues;
  }
  for (size_t i = 0; i < top; ++i) {
    flows_[counts[i].second].rank = static_cast<int32_t>(i);
  }
}

void NetRxSim::RunBatch(std::span<const PacketEvent> batch) {
  const NetConfig& config = datapath_->config();
  const uint16_t queues = config.queues;
  const size_t n = batch.size();
  if (n == 0) {
    return;
  }
  feature_rows_.resize(n);
  labels_.resize(n);
  decisions_.resize(n);
  batch_rows_.clear();
  uint32_t new_flows = 0;

  // Build one memoized feature row per flow from start-of-batch state —
  // DecideBatch's per-flow-constant contract (replay exactness depends on it).
  for (size_t i = 0; i < n; ++i) {
    const PacketEvent& pkt = batch[i];
    FlowState& state = Touch(pkt);
    auto [row_it, fresh] = batch_rows_.try_emplace(pkt.flow_id);
    if (fresh) {
      if (state.packets == 0 && state.first_seen_batch == batch_index_) {
        ++new_flows;
      }
      NetFeatureRow& row = row_it->second;
      row.fill(0);
      row[kNfLogCount] = Log2(state.packets + 1);
      row[kNfRank] = state.rank;
      row[kNfHashLane] = static_cast<int32_t>(RssQueue(pkt.flow_id, queues));
      row[kNfLength] = state.ewma_length;
      row[kNfIsNew] = state.first_seen_batch == batch_index_ ? 1 : 0;
      row[kNfNewFlowRate] = new_flow_rate_;
      row[kNfDstPort] = pkt.dst_port;
      row[kNfProto] = pkt.proto;
    }
    feature_rows_[i] = row_it->second;
    // The supervision target: pin elephant rank r to queue r, hash the mice,
    // drop the flood at the hook.
    if (pkt.flood) {
      labels_[i] = MakeRxDecision(kRxDrop, 0);
    } else if (state.rank < queues) {
      labels_[i] = MakeRxDecision(kRxPass, state.rank);
    } else {
      labels_[i] = RssQueue(pkt.flow_id, queues);
    }
  }

  datapath_->DecideBatch(batch, feature_rows_, labels_, decisions_);

  batch_queue_total_.assign(queues, 0);
  batch_queue_flood_.assign(queues, 0);
  for (size_t i = 0; i < n; ++i) {
    const PacketEvent& pkt = batch[i];
    int64_t decision = decisions_[i];
    if (decision == kHookFallback) {
      ++metrics_.fallback_decisions;
      decision = RssQueue(pkt.flow_id, queues);  // the stock kernel's steer
    }
    const int64_t verdict = RxVerdictOf(decision);
    const size_t queue = static_cast<size_t>(RxQueueOf(decision)) % queues;

    ++metrics_.packets;
    metrics_.bytes += pkt.length;
    if (pkt.flood) {
      ++metrics_.flood_packets;
    } else {
      ++metrics_.legit_packets;
    }
    CacheLookupAndFill(pkt.flow_id, pkt.flood, /*insert=*/verdict != kRxDrop);

    if (verdict == kRxDrop) {
      ++metrics_.policy_drops;
      if (pkt.flood) {
        ++metrics_.flood_dropped;
      } else {
        ++metrics_.legit_dropped;
      }
    } else if (verdict == kRxRedirect) {
      ++metrics_.redirects;
      metrics_.slow_path_ns += config.slow_path_ns;
      if (pkt.flood) {
        ++metrics_.flood_delivered;
      } else {
        ++metrics_.legit_delivered;
      }
    } else {
      metrics_.queue_packets[queue] += 1;
      metrics_.queue_bytes[queue] += pkt.length;
      batch_queue_total_[queue] += 1;
      if (pkt.flood) {
        batch_queue_flood_[queue] += 1;
      }
    }

    if (training_sink_ != nullptr) {
      FlowState& state = flows_[pkt.flow_id];
      int32_t cls;
      if (pkt.flood) {
        cls = queues;  // the drop class
      } else if (state.rank < queues) {
        cls = state.rank;
      } else {
        cls = static_cast<int32_t>(RssQueue(pkt.flow_id, queues));
      }
      training_sink_->Add(feature_rows_[i], cls);
    }

    FlowState& state = flows_[pkt.flow_id];
    ++state.packets;
    state.ewma_length += (static_cast<int32_t>(pkt.length) - state.ewma_length) / 8;
  }

  // Finite drain: each RX queue absorbs headroom * batch/queues packets per
  // window; the excess drops, attributed flood/legit proportionally (integer
  // arithmetic, deterministic).
  const uint64_t budget = static_cast<uint64_t>(
      config.queue_headroom * static_cast<double>(config.batch_size) / queues);
  for (size_t q = 0; q < queues; ++q) {
    const uint64_t total = batch_queue_total_[q];
    const uint64_t flood = batch_queue_flood_[q];
    const uint64_t over = total > budget ? total - budget : 0;
    const uint64_t flood_over = total > 0 ? over * flood / total : 0;
    const uint64_t legit_over = over - flood_over;
    metrics_.overflow_drops += over;
    metrics_.flood_dropped += flood_over;
    metrics_.legit_dropped += legit_over;
    metrics_.flood_delivered += flood - flood_over;
    metrics_.legit_delivered += (total - flood) - legit_over;
  }

  // Uncached flows lose their context entries at batch end, so flood churn
  // cannot exhaust the (capacity-bounded) context store.
  for (const auto& [flow_id, row] : batch_rows_) {
    if (!flows_[flow_id].cached) {
      datapath_->EraseContext(flow_id);
    }
  }

  new_flow_rate_ = static_cast<int32_t>(static_cast<uint64_t>(new_flows) * 1000 / n);
  ++batch_index_;
  RecomputeRanks();
}

}  // namespace rkd
