// Deterministic RX-path simulator: drives a PacketTrace through an
// RmtRxDatapath in FireBatch windows and models the parts of the NIC/kernel
// the datapath's decisions act on — RX queues with a finite drain rate, an
// LRU flow cache backing the exact-match table, and a slow path charged per
// cache miss.
//
// The sim owns per-flow statistics (packet counts, elephant ranks, smoothed
// lengths, batch-level new-flow rates) and memoizes one feature row per flow
// per batch — the contract DecideBatch requires for replay-exact corpora. It
// also produces the supervision: a packed ideal decision per packet (pin
// elephant rank r to queue r, hash the mice, drop the flood) staged as the
// recorder label and, through the optional training sink, the
// (feature row -> class) samples the learned steering model trains on.
#ifndef SRC_SIM_NET_NET_SIM_H_
#define SRC_SIM_NET_NET_SIM_H_

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/ml/dataset.h"
#include "src/sim/net/rx_datapath.h"
#include "src/workloads/packet_trace.h"

namespace rkd {

struct NetMetrics {
  uint64_t packets = 0;
  uint64_t bytes = 0;

  // Offered load per RX queue (post-steering, pre-drain). Imbalance is the
  // headline steering metric: max queue bytes over mean queue bytes.
  std::vector<uint64_t> queue_packets;
  std::vector<uint64_t> queue_bytes;

  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t legit_cache_hits = 0;    // cache outcomes for non-flood traffic only
  uint64_t legit_cache_misses = 0;

  uint64_t policy_drops = 0;        // dropped by the datapath's verdict
  uint64_t overflow_drops = 0;      // dropped because an RX queue overran
  uint64_t redirects = 0;
  uint64_t fallback_decisions = 0;  // kHookFallback fires (governor degraded)

  uint64_t flood_packets = 0;
  uint64_t flood_dropped = 0;       // policy + overflow
  uint64_t flood_delivered = 0;
  uint64_t legit_packets = 0;
  uint64_t legit_dropped = 0;
  uint64_t legit_delivered = 0;

  uint64_t slow_path_ns = 0;        // cache misses + redirects, charged per hit

  double SteeringImbalance() const;
  double CacheHitRate() const;
  double LegitCacheHitRate() const;
  double FloodDropShare() const;
  double LegitDeliveryRate() const;
};

class NetRxSim {
 public:
  // The datapath must be Init()-ed; the sim reads its NetConfig for queue
  // count, batch size, LRU capacity, headroom, and slow-path cost.
  explicit NetRxSim(RmtRxDatapath* datapath);

  // When set, every decided packet appends (feature row, ideal class) to the
  // sink — class in [0, queues) steers, class == queues drops.
  void set_training_sink(Dataset* sink) { training_sink_ = sink; }

  // Runs the trace to completion in batch_size windows. Deterministic; may
  // be called repeatedly (state persists, metrics accumulate).
  void Run(std::span<const PacketEvent> trace);

  const NetMetrics& metrics() const { return metrics_; }

 private:
  struct FlowState {
    uint64_t packets = 0;        // lifetime packets decided
    int32_t ewma_length = 0;     // smoothed frame length
    int32_t rank = -1;           // elephant rank; [0, queues) ranked, else queues
    uint64_t first_seen_batch = 0;
    bool cached = false;         // mirrored into the exact-match flow table
    std::list<uint64_t>::iterator lru_pos{};  // valid iff cached
  };

  void RunBatch(std::span<const PacketEvent> batch);
  FlowState& Touch(const PacketEvent& pkt);
  void CacheLookupAndFill(uint64_t flow_id, bool flood, bool insert);
  void RecomputeRanks();

  RmtRxDatapath* datapath_;
  Dataset* training_sink_ = nullptr;
  NetMetrics metrics_;

  std::unordered_map<uint64_t, FlowState> flows_;
  std::list<uint64_t> lru_;        // front = most recently used
  uint64_t batch_index_ = 0;
  int32_t new_flow_rate_ = 0;      // new flows per 1k packets, previous batch

  // Per-batch scratch (reused allocations).
  std::vector<NetFeatureRow> feature_rows_;
  std::vector<int64_t> labels_;
  std::vector<int64_t> decisions_;
  std::unordered_map<uint64_t, NetFeatureRow> batch_rows_;  // per-flow memo
  std::vector<uint64_t> batch_queue_total_;
  std::vector<uint64_t> batch_queue_flood_;
};

}  // namespace rkd

#endif  // SRC_SIM_NET_NET_SIM_H_
