#include "src/sim/mem/ml_prefetcher.h"

#include <algorithm>
#include <array>
#include <map>
#include <optional>

#include "src/bytecode/assembler.h"

namespace rkd {

namespace {

// Scalar-slot layout in the per-pid execution context.
constexpr int32_t kSlotLastPageBiased = 0;  // last accessed page + 1 (0 = none)

constexpr int64_t kConfigMap = 0;  // array: key 0 = prefetch depth knob
constexpr int64_t kVocabMap = 1;   // array: delta class id -> delta value
constexpr int64_t kKnobKey = 0;

}  // namespace

RmtMlPrefetcher::RmtMlPrefetcher(const MlPrefetcherConfig& config)
    : config_(config), control_plane_(&hooks_) {}

// page_access action: delta extraction + history + monitoring ring.
// args: r1 = pid (match key), r2 = page.
BytecodeProgram RmtMlPrefetcher::BuildAccessAction() const {
  Assembler a("page_access_collect", HookKind::kMemAccess);
  a.DeclareMaps(2);
  auto first_access = a.NewLabel();

  a.LdCtxt(6, 1, kSlotLastPageBiased);  // r6 = last page + 1 (0 = none)
  a.Mov(7, 2);
  a.AddImm(7, 1);
  a.StCtxt(1, kSlotLastPageBiased, 7);  // ctxt[pid].slot0 = page + 1
  a.JeqImm(6, 0, first_access);
  a.SubImm(6, 1);                       // r6 = last page
  a.Mov(7, 2);
  a.Sub(7, 6);                          // r7 = delta = page - last
  a.Mov(2, 7);                          // helper args: r1 = pid, r2 = delta
  a.Call(HelperId::kHistoryAppend);
  a.Call(HelperId::kRecordSample);
  a.Bind(first_access);
  a.MovImm(0, 0);
  a.Exit();
  Result<BytecodeProgram> program = a.Build();
  return std::move(program).value();  // static construction; labels all bound
}

// page_prefetch action: feature build -> cascaded kMlCall inference ->
// vocabulary translation -> rate-limited emission, with a sequential
// fallback.
//
// Access patterns are delta *cycles*, not straight strides, so a single
// prediction extended as target + k*delta would miss from the second page
// on. Instead the action walks the model: after each predicted delta it
// shifts the feature vector (as if that delta had been observed) and asks
// the tree again — unrolled kMaxCascade times, since the ISA has no loops.
// This is the "cascaded models" usage of section 3.1 realized with one
// model.
//
// Register plan: r4 = pid, r8 = predicted position, r9 = remaining depth,
// r6 = class, r7 = delta, r5 = lane-shift scratch, v0 = rolling features.
// args: r1 = pid (match key), r2 = faulting page.
BytecodeProgram RmtMlPrefetcher::BuildPrefetchAction() const {
  constexpr int kMaxCascade = 4;

  Assembler a("page_prefetch_predict", HookKind::kMemPrefetch);
  a.DeclareMaps(2);
  a.DeclareModels(1);

  auto fallback = a.NewLabel();
  auto depth_ok = a.NewLabel();
  auto done = a.NewLabel();

  a.Mov(4, 1);  // preserve pid across emit calls
  a.Mov(8, 2);  // rolling predicted position, starts at the faulting page

  // v0 lanes 0..3 = last four deltas (newest first), matching training order.
  a.VecZero(0);
  for (int32_t i = 0; i < static_cast<int32_t>(config_.feature_deltas); ++i) {
    a.MovImm(2, i);
    a.Call(HelperId::kHistoryGet);  // r0 = i-th most recent delta
    a.ScalarVal(0, i, 0);
  }

  // Depth knob (map 0), floored at 1.
  a.MovImm(5, kKnobKey);
  a.MapLookup(9, 5, kConfigMap);
  a.JgeImm(9, 1, depth_ok);
  a.MovImm(9, 1);
  a.Bind(depth_ok);

  // One admission check for the whole batch: key = pid, units = depth.
  a.Mov(2, 9);
  a.Call(HelperId::kRateLimitCheck);
  a.JeqImm(0, 0, done);

  // Cascaded prediction steps.
  for (int step = 0; step < kMaxCascade; ++step) {
    a.MlCall(6, 0, /*model_id=*/0);     // r6 = predicted delta class (or -1)
    a.JleImm(6, 0, step == 0 ? fallback : done);
    a.MapLookup(7, 6, kVocabMap);       // r7 = delta for class
    a.JeqImm(7, 0, step == 0 ? fallback : done);
    a.Add(8, 7);                        // advance the predicted position
    if (step == 0) {
      // Log the first prediction for the control plane's accuracy loop.
      a.Mov(1, 4);
      a.Mov(2, 8);
      a.Call(HelperId::kPredictionLog);
    }
    a.Mov(1, 8);
    a.MovImm(2, 1);
    a.Call(HelperId::kPrefetchEmit);
    a.SubImm(9, 1);
    a.JleImm(9, 0, done);
    if (step + 1 < kMaxCascade) {
      // Shift the observed-delta window: v0 = [r7, f0, f1, f2].
      a.VecExtract(5, 0, 2);
      a.ScalarVal(0, 3, 5);
      a.VecExtract(5, 0, 1);
      a.ScalarVal(0, 2, 5);
      a.VecExtract(5, 0, 0);
      a.ScalarVal(0, 1, 5);
      a.ScalarVal(0, 0, 7);
    }
  }
  a.Ja(done);

  // Sequential fallback (no model yet, or unknown delta class): contiguous
  // [page+1, page+1+depth) — stock-readahead behaviour.
  a.Bind(fallback);
  a.Mov(1, 8);
  a.AddImm(1, 1);
  a.Mov(2, 9);
  a.Call(HelperId::kPrefetchEmit);

  a.Bind(done);
  a.MovImm(0, 0);
  a.Exit();
  Result<BytecodeProgram> program = a.Build();
  return std::move(program).value();
}

RmtProgramSpec RmtMlPrefetcher::BuildProgramSpec(std::string name) const {
  RmtProgramSpec spec;
  spec.name = std::move(name);
  spec.model_slots = 1;
  spec.maps = {MapSpec{MapKind::kArray, 4},                       // config
               MapSpec{MapKind::kArray, config_.vocab_size + 1}}; // vocabulary
  spec.rate_limit_capacity = 256;
  spec.rate_limit_refill = 8;
  spec.seed = config_.seed;

  RmtTableSpec access_table;
  access_table.name = "page_access_tab";
  access_table.hook_point = "mm.lookup_swap_cache";
  access_table.actions.push_back(BuildAccessAction());
  access_table.default_action = 0;
  spec.tables.push_back(std::move(access_table));

  RmtTableSpec prefetch_table;
  prefetch_table.name = "page_prefetch_tab";
  prefetch_table.hook_point = "mm.swap_cluster_readahead";
  prefetch_table.actions.push_back(BuildPrefetchAction());
  prefetch_table.default_action = 0;
  spec.tables.push_back(std::move(prefetch_table));
  return spec;
}

Status RmtMlPrefetcher::Init() {
  if (initialized_) {
    return FailedPreconditionError("RmtMlPrefetcher::Init called twice");
  }

  SubsystemBindings mem_bindings;
  mem_bindings.now = [this] { return virtual_time_; };
  mem_bindings.prefetch_emit = [this](int64_t first, int64_t count) {
    for (int64_t i = 0; i < count; ++i) {
      emit_buffer_.push_back(first + i);
    }
  };

  RKD_ASSIGN_OR_RETURN(access_hook_, hooks_.Register("mm.lookup_swap_cache",
                                                     HookKind::kMemAccess, mem_bindings));
  RKD_ASSIGN_OR_RETURN(prefetch_hook_, hooks_.Register("mm.swap_cluster_readahead",
                                                       HookKind::kMemPrefetch, mem_bindings));

  // Degraded-rung fallback for the overload governor: when the governor walks
  // this program down to GovLevel::kDegraded, prefetch fires skip the learned
  // action and run this stock-readahead heuristic instead — sequential pages
  // at the baseline window, no model, no maps, no VM.
  RKD_RETURN_IF_ERROR(hooks_.SetFallbackOracle(
      prefetch_hook_, [this](uint64_t pid, std::span<const int64_t> args) -> int64_t {
        (void)pid;
        constexpr int64_t kReadaheadWindow = 4;  // ReadaheadConfig::min_window
        if (!args.empty()) {
          for (int64_t i = 1; i <= kReadaheadWindow; ++i) {
            emit_buffer_.push_back(args[0] + i);
          }
        }
        return 0;
      }));

  RKD_ASSIGN_OR_RETURN(handle_, control_plane_.Install(BuildProgramSpec(), config_.tier));
  RKD_RETURN_IF_ERROR(
      control_plane_.WriteMap(handle_, kConfigMap, kKnobKey, config_.initial_depth));

  if (config_.enable_adaptation) {
    ControlPlane::AdaptationConfig adapt;
    adapt.low_accuracy = 0.4;
    adapt.high_accuracy = 0.75;
    adapt.min_samples = 64;
    adapt.config_map = kConfigMap;
    adapt.knob_key = kKnobKey;
    adapt.min_value = 1;
    adapt.max_value = config_.max_depth;
    RKD_RETURN_IF_ERROR(control_plane_.EnableAdaptation(handle_, adapt));
    // EnableAdaptation resets the knob to its maximum; restore the start.
    RKD_RETURN_IF_ERROR(
        control_plane_.WriteMap(handle_, kConfigMap, kKnobKey, config_.initial_depth));
  }

  if (config_.enable_tiering && config_.tier == ExecTier::kJit) {
    ControlPlane::TieringConfig tiering;
    tiering.hot_execs = config_.tiering_hot_execs;
    RKD_RETURN_IF_ERROR(control_plane_.EnableTiering(handle_, tiering));
  }

  initialized_ = true;
  return OkStatus();
}

Status RmtMlPrefetcher::AttachRecorder(ExperienceRecorder* recorder) {
  if (!initialized_) {
    return FailedPreconditionError("AttachRecorder requires a successful Init()");
  }
  RKD_RETURN_IF_ERROR(recorder->Track(access_hook_, DecisionSource::kResult));
  RKD_RETURN_IF_ERROR(
      recorder->Track(prefetch_hook_, DecisionSource::kFirstEmit, "next_access_page"));
  recorder_ = recorder;
  recorder_->Attach();
  // Seed the corpus with the configuration the program currently runs under
  // (the knob was written before recording started), so replay starts from
  // the same state, not the spec's zero-initialized maps.
  recorder_->RecordMapWrite(kConfigMap, kKnobKey, current_depth_knob());
  return OkStatus();
}

void RmtMlPrefetcher::OnAccess(uint64_t pid, int64_t page, bool hit) {
  (void)hit;
  if (!initialized_) {
    return;  // Init() not called (or failed): behave as a null prefetcher
  }
  if (recorder_ != nullptr) {
    // This access resolves the outcome label of the pending prefetch fire
    // for this process: the page actually referenced next.
    const auto pending = pending_labels_.find(pid);
    if (pending != pending_labels_.end()) {
      recorder_->SetLabel(pending->second, page);
      pending_labels_.erase(pending);
    }
  }
  ++virtual_time_;
  // Resolve the prediction made at the previous fault (if any) against the
  // page actually accessed next — the signal the adaptation loop consumes.
  control_plane_.Get(handle_)->prediction_log().Resolve(static_cast<int64_t>(pid), page);
  if (config_.access_batch <= 1) {
    hooks_.Fire(access_hook_, pid, std::array<int64_t, 1>{page});
    DrainSamplesAndMaybeTrain();
    return;
  }
  // Accesses are the monitoring stream: nothing reads their side effects
  // until the next prefetch decision, so they batch freely until then.
  access_pending_.emplace_back(pid, std::initializer_list<int64_t>{page});
  if (access_pending_.size() >= config_.access_batch) {
    Flush();
  }
}

void RmtMlPrefetcher::Flush() {
  if (!initialized_ || access_pending_.empty()) {
    return;
  }
  access_results_.resize(access_pending_.size());
  hooks_.FireBatch(access_hook_, access_pending_, access_results_);
  access_pending_.clear();
  DrainSamplesAndMaybeTrain();
}

void RmtMlPrefetcher::OnFault(uint64_t pid, int64_t page, std::vector<int64_t>& out_pages) {
  if (!initialized_) {
    return;
  }
  // The prefetch action reads history, the model, and the depth knob; flush
  // so it sees exactly the state the unbatched path would.
  Flush();
  emit_buffer_.clear();
  hooks_.Fire(prefetch_hook_, pid, std::array<int64_t, 1>{page});
  if (recorder_ != nullptr) {
    // The decision at this hook is what got prefetched, not the action's r0;
    // rewrite the record and queue it for labeling by the next access.
    const uint64_t handle = recorder_->last_fire(prefetch_hook_);
    if (handle != ExperienceRecorder::kNoFire) {
      recorder_->AnnotateDecision(handle,
                                  emit_buffer_.empty() ? kHookFallback : emit_buffer_.front());
      pending_labels_[pid] = handle;
    }
  }
  out_pages.insert(out_pages.end(), emit_buffer_.begin(), emit_buffer_.end());
}

void RmtMlPrefetcher::DrainSamplesAndMaybeTrain() {
  InstalledProgram* program = control_plane_.Get(handle_);
  // The monitoring ring lives on the program (kRecordSample's sink); the
  // training plane drains it like userspace drains a perf buffer.
  while (true) {
    const std::optional<RingMap::Record> record = program->sample_ring().Pop();
    if (!record.has_value()) {
      break;
    }
    const uint64_t pid = static_cast<uint64_t>(record->key);
    const int64_t delta = record->value;
    std::deque<int64_t>& deltas = recent_deltas_[pid];
    if (deltas.size() >= config_.feature_deltas) {
      PendingSample sample;
      sample.features.resize(config_.feature_deltas);
      // Lane i = i-th most recent delta, matching the action's history order.
      for (size_t i = 0; i < config_.feature_deltas; ++i) {
        sample.features[i] = static_cast<int32_t>(deltas[deltas.size() - 1 - i]);
      }
      sample.label_delta = delta;
      window_.push_back(std::move(sample));
    }
    deltas.push_back(delta);
    if (deltas.size() > config_.feature_deltas) {
      deltas.pop_front();
    }
  }
  // A batched flush can deliver several windows' worth of samples at once;
  // train them one window at a time, exactly as the unbatched path would.
  while (window_.size() >= config_.window_size) {
    TrainWindow(std::span<const PendingSample>(window_.data(), config_.window_size));
    window_.erase(window_.begin(),
                  window_.begin() + static_cast<ptrdiff_t>(config_.window_size));
    if (config_.enable_adaptation) {
      Result<int64_t> knob = control_plane_.Tick(handle_);
      if (recorder_ != nullptr && knob.ok()) {
        // Mirror the adaptation loop's knob position into the corpus so the
        // replayed program prefetches at the same depth the incumbent did.
        recorder_->RecordMapWrite(kConfigMap, kKnobKey, *knob);
      }
    }
    if (config_.enable_tiering && config_.tier == ExecTier::kJit) {
      // The model install and knob write above just deoptimized any live
      // tier-3 streams; this tick respecializes them against the new state.
      (void)control_plane_.TickTiering(handle_);
    }
  }
}

void RmtMlPrefetcher::TrainWindow(std::span<const PendingSample> window) {
  if (window.size() < config_.min_train_samples) {
    return;
  }
  // Build the delta vocabulary from this window: the most frequent deltas
  // get classes 1..vocab_size; everything else is class 0 ("unknown", which
  // the action treats as "fall back to sequential").
  std::map<int64_t, uint32_t> frequency;
  for (const PendingSample& sample : window) {
    ++frequency[sample.label_delta];
  }
  std::vector<std::pair<int64_t, uint32_t>> ranked(frequency.begin(), frequency.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::unordered_map<int64_t, int32_t> vocab;  // delta -> class id
  const size_t classes = std::min<size_t>(config_.vocab_size, ranked.size());
  for (size_t c = 0; c < classes; ++c) {
    vocab[ranked[c].first] = static_cast<int32_t>(c + 1);
  }

  Dataset dataset(config_.feature_deltas);
  for (const PendingSample& sample : window) {
    const auto it = vocab.find(sample.label_delta);
    const int32_t label = it == vocab.end() ? 0 : it->second;
    dataset.Add(sample.features, label);
  }

  ModelPtr model;
  switch (config_.family) {
    case PrefetchModelFamily::kDecisionTree: {
      Result<DecisionTree> tree = DecisionTree::Train(dataset, config_.tree);
      if (!tree.ok()) {
        return;  // window unusable; keep the previous model
      }
      model = std::make_shared<DecisionTree>(std::move(tree).value());
      break;
    }
    case PrefetchModelFamily::kRandomForest: {
      ForestConfig forest_config;
      forest_config.num_trees = 6;
      forest_config.tree = config_.tree;
      forest_config.seed = config_.seed;
      Result<RandomForest> forest = RandomForest::Train(dataset, forest_config);
      if (!forest.ok()) {
        return;
      }
      model = std::make_shared<RandomForest>(std::move(forest).value());
      break;
    }
    case PrefetchModelFamily::kQuantizedMlp: {
      if (dataset.NumClasses() < 2) {
        return;  // MLP training needs two classes; keep the previous model
      }
      MlpConfig mlp_config;
      mlp_config.hidden_sizes = {24};
      mlp_config.epochs = 25;
      mlp_config.seed = config_.seed;
      Result<Mlp> mlp = Mlp::Train(dataset, mlp_config);
      if (!mlp.ok()) {
        return;
      }
      Result<QuantizedMlp> quantized = QuantizedMlp::FromMlp(*mlp);
      if (!quantized.ok()) {
        return;
      }
      model = std::make_shared<QuantizedMlpRawAdapter>(std::move(quantized).value());
      break;
    }
  }
  ModelPtr installed = model;  // shared ref survives the move for capture
  if (!control_plane_.InstallModel(handle_, 0, std::move(model)).ok()) {
    return;  // cost-model rejection: keep the previous model
  }
  if (recorder_ != nullptr) {
    // Best effort: the raw-adapter MLP family has no wire form, and replay
    // of such corpora simply runs the candidate with its previous model.
    (void)recorder_->RecordModelInstall(0, *installed);
  }

  // Publish the vocabulary (class id -> delta) for the action to translate.
  for (size_t c = 0; c < classes; ++c) {
    (void)control_plane_.WriteMap(handle_, kVocabMap, static_cast<int64_t>(c + 1),
                                  ranked[c].first);
    if (recorder_ != nullptr) {
      recorder_->RecordMapWrite(kVocabMap, static_cast<int64_t>(c + 1), ranked[c].first);
    }
  }
  for (size_t c = classes + 1; c <= config_.vocab_size; ++c) {
    (void)control_plane_.WriteMap(handle_, kVocabMap, static_cast<int64_t>(c), 0);
    if (recorder_ != nullptr) {
      recorder_->RecordMapWrite(kVocabMap, static_cast<int64_t>(c), 0);
    }
  }
  (void)control_plane_.WriteMap(handle_, kVocabMap, 0, 0);
  if (recorder_ != nullptr) {
    recorder_->RecordMapWrite(kVocabMap, 0, 0);
  }
  ++windows_trained_;
}

int64_t RmtMlPrefetcher::current_depth_knob() {
  Result<int64_t> knob = control_plane_.ReadMap(handle_, kConfigMap, kKnobKey);
  return knob.ok() ? *knob : -1;
}

double RmtMlPrefetcher::rolling_accuracy() {
  return control_plane_.Get(handle_)->prediction_log().accuracy();
}

}  // namespace rkd
