// Demand-paging memory subsystem simulator — the substrate for case study #1.
//
// Models the path the paper instruments in Linux: a bounded frame cache in
// front of a slow swap device. Every access either hits resident memory
// (cheap) or takes a major fault (expensive swap-in). On each access the
// subsystem consults a Prefetcher — the role `swap_cluster_readahead` plays
// in Linux — which may pull additional pages in ahead of demand. Prefetched
// pages occupy frames, so a wrong prefetcher pays twice: wasted I/O and
// cache pollution that evicts useful pages.
//
// Metrics follow the prefetching literature (and the paper's Table 1):
//   accuracy  = prefetched pages later demanded / prefetched pages
//   coverage  = demand faults avoided by prefetch / faults without any
//               prefetch (i.e. prefetch hits / (prefetch hits + misses))
//   completion time = sum of access + fault + prefetch-issue latencies
#ifndef SRC_SIM_MEM_MEMORY_SIM_H_
#define SRC_SIM_MEM_MEMORY_SIM_H_

#include <cstdint>
#include <list>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/sim/clock.h"
#include "src/telemetry/telemetry.h"
#include "src/workloads/access_trace.h"

namespace rkd {

struct MemSimConfig {
  size_t frame_capacity = 256;    // resident pages
  uint64_t hit_ns = 200;          // resident access
  uint64_t fault_ns = 80000;      // major fault: swap-in latency
  uint64_t prefetch_issue_ns = 2500;  // per prefetched page (batched I/O)
  size_t max_prefetch_per_fault = 64; // hard cap, independent of policy
};

// The prefetcher interface: what Linux's readahead machinery, Leap, and the
// paper's RMT/ML pipeline each implement.
class Prefetcher {
 public:
  virtual ~Prefetcher() = default;

  virtual std::string_view name() const = 0;

  // Called on every access, after the hit/miss outcome is known. This is the
  // monitoring site (lookup_swap_cache in the paper's Figure 1).
  virtual void OnAccess(uint64_t pid, int64_t page, bool hit) = 0;

  // Called on every fault; the prefetcher appends pages to fetch alongside
  // the demand page (swap_cluster_readahead). The simulator dedupes,
  // removes already-resident pages, and applies max_prefetch_per_fault.
  virtual void OnFault(uint64_t pid, int64_t page, std::vector<int64_t>& out_pages) = 0;

  // Called once when the trace ends, so prefetchers that batch their
  // monitoring submissions can flush the tail.
  virtual void OnRunEnd() {}
};

// No-op policy: demand paging only. The floor for coverage comparisons.
class NullPrefetcher final : public Prefetcher {
 public:
  std::string_view name() const override { return "none"; }
  void OnAccess(uint64_t, int64_t, bool) override {}
  void OnFault(uint64_t, int64_t, std::vector<int64_t>&) override {}
};

struct MemMetrics {
  uint64_t accesses = 0;
  uint64_t hits = 0;           // resident on arrival (incl. prefetched)
  uint64_t faults = 0;         // demand misses
  uint64_t prefetch_hits = 0;  // hits whose page arrived via prefetch
  uint64_t prefetched = 0;     // pages fetched ahead of demand
  uint64_t prefetch_used = 0;  // of those, later demanded before eviction
  uint64_t prefetch_evicted_unused = 0;
  uint64_t total_ns = 0;

  double accuracy() const {
    return prefetched == 0 ? 0.0
                           : static_cast<double>(prefetch_used) / static_cast<double>(prefetched);
  }
  double coverage() const {
    const uint64_t would_be_faults = prefetch_hits + faults;
    return would_be_faults == 0
               ? 0.0
               : static_cast<double>(prefetch_hits) / static_cast<double>(would_be_faults);
  }
  double completion_seconds() const { return static_cast<double>(total_ns) * 1e-9; }
};

class MemorySim {
 public:
  MemorySim(const MemSimConfig& config, Prefetcher* prefetcher)
      : config_(config), prefetcher_(prefetcher) {}

  // Runs the whole trace and returns the metrics. The simulator is reusable:
  // each Run starts from a cold cache.
  MemMetrics Run(const AccessTrace& trace);

  // Publishes each completed Run's aggregates into `telemetry` under
  // "rkd.sim.mem.*": event counters accumulate across runs; accuracy /
  // coverage / completion gauges hold the latest run. Null disables
  // publishing (the default; zero overhead).
  void set_telemetry(TelemetryRegistry* telemetry) { telemetry_ = telemetry; }

  const VirtualClock& clock() const { return clock_; }

 private:
  struct Frame {
    bool prefetched = false;   // arrived via prefetch
    bool used = false;         // demanded since arrival
    std::list<int64_t>::iterator lru_position;
  };

  void InsertPage(int64_t page, bool prefetched);
  void TouchLru(int64_t page);
  void EvictIfNeeded();

  void PublishTelemetry() const;

  MemSimConfig config_;
  Prefetcher* prefetcher_;  // not owned
  TelemetryRegistry* telemetry_ = nullptr;  // not owned
  VirtualClock clock_;

  MemMetrics metrics_;
  std::list<int64_t> lru_;  // most recent at front
  std::unordered_map<int64_t, Frame> resident_;
  std::vector<int64_t> scratch_prefetch_;
};

}  // namespace rkd

#endif  // SRC_SIM_MEM_MEMORY_SIM_H_
