#include "src/sim/mem/memory_sim.h"

#include <algorithm>

namespace rkd {

void MemorySim::TouchLru(int64_t page) {
  const auto it = resident_.find(page);
  lru_.erase(it->second.lru_position);
  lru_.push_front(page);
  it->second.lru_position = lru_.begin();
}

void MemorySim::EvictIfNeeded() {
  while (resident_.size() > config_.frame_capacity) {
    const int64_t victim = lru_.back();
    lru_.pop_back();
    const auto it = resident_.find(victim);
    if (it->second.prefetched && !it->second.used) {
      ++metrics_.prefetch_evicted_unused;
    }
    resident_.erase(it);
  }
}

void MemorySim::InsertPage(int64_t page, bool prefetched) {
  const auto it = resident_.find(page);
  if (it != resident_.end()) {
    TouchLru(page);
    return;
  }
  lru_.push_front(page);
  Frame frame;
  frame.prefetched = prefetched;
  frame.used = !prefetched;  // a demand-fetched page is used by definition
  frame.lru_position = lru_.begin();
  resident_.emplace(page, frame);
  EvictIfNeeded();
}

MemMetrics MemorySim::Run(const AccessTrace& trace) {
  metrics_ = MemMetrics{};
  lru_.clear();
  resident_.clear();
  clock_.Reset();

  for (const AccessEvent& event : trace) {
    ++metrics_.accesses;
    const auto it = resident_.find(event.page);
    const bool hit = it != resident_.end();

    if (hit) {
      ++metrics_.hits;
      Frame& frame = it->second;
      if (frame.prefetched && !frame.used) {
        frame.used = true;
        ++metrics_.prefetch_used;
        ++metrics_.prefetch_hits;
      }
      TouchLru(event.page);
      clock_.Advance(config_.hit_ns);
    } else {
      ++metrics_.faults;
      clock_.Advance(config_.fault_ns);
      InsertPage(event.page, /*prefetched=*/false);
    }

    // Monitoring hook fires on every access (hit or miss), exactly like the
    // paper's data-collection table at lookup_swap_cache.
    prefetcher_->OnAccess(event.pid, event.page, hit);

    if (!hit) {
      // Decision hook fires on the fault path (swap_cluster_readahead).
      scratch_prefetch_.clear();
      prefetcher_->OnFault(event.pid, event.page, scratch_prefetch_);
      size_t issued = 0;
      for (const int64_t page : scratch_prefetch_) {
        if (issued >= config_.max_prefetch_per_fault) {
          break;
        }
        if (page == event.page || resident_.contains(page)) {
          continue;  // already resident or the demand page itself
        }
        InsertPage(page, /*prefetched=*/true);
        ++metrics_.prefetched;
        ++issued;
        clock_.Advance(config_.prefetch_issue_ns);
      }
    }
  }

  prefetcher_->OnRunEnd();

  metrics_.total_ns = clock_.now_ns();
  if (telemetry_ != nullptr) {
    PublishTelemetry();
  }
  return metrics_;
}

void MemorySim::PublishTelemetry() const {
  telemetry_->GetCounter("rkd.sim.mem.runs")->Increment();
  telemetry_->GetCounter("rkd.sim.mem.accesses")->Increment(metrics_.accesses);
  telemetry_->GetCounter("rkd.sim.mem.hits")->Increment(metrics_.hits);
  telemetry_->GetCounter("rkd.sim.mem.faults")->Increment(metrics_.faults);
  telemetry_->GetCounter("rkd.sim.mem.prefetched")->Increment(metrics_.prefetched);
  telemetry_->GetCounter("rkd.sim.mem.prefetch_used")->Increment(metrics_.prefetch_used);
  telemetry_->GetCounter("rkd.sim.mem.prefetch_evicted_unused")
      ->Increment(metrics_.prefetch_evicted_unused);
  telemetry_->GetGauge("rkd.sim.mem.accuracy")->Set(metrics_.accuracy());
  telemetry_->GetGauge("rkd.sim.mem.coverage")->Set(metrics_.coverage());
  telemetry_->GetGauge("rkd.sim.mem.completion_s")->Set(metrics_.completion_seconds());
}

}  // namespace rkd
