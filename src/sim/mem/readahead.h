// Linux-style readahead baseline (paper section 4: "the default readahead
// prefetcher detects sequential page accesses and prefetches the next set of
// pages").
//
// Per-process state machine: consecutive (+1) accesses build a sequential
// streak; on a fault during a streak the window doubles (up to max_window)
// and the next window of pages is prefetched. A fault with no streak falls
// back to a small fixed cluster around the faulting page, mirroring
// swap_cluster_readahead's constant-size cluster read.
#ifndef SRC_SIM_MEM_READAHEAD_H_
#define SRC_SIM_MEM_READAHEAD_H_

#include <unordered_map>

#include "src/sim/mem/memory_sim.h"

namespace rkd {

struct ReadaheadConfig {
  size_t min_window = 4;
  size_t max_window = 32;
  size_t cluster = 8;        // non-sequential fallback cluster size
  size_t streak_threshold = 2;  // consecutive +1 accesses to call it a stream
};

class ReadaheadPrefetcher final : public Prefetcher {
 public:
  explicit ReadaheadPrefetcher(const ReadaheadConfig& config = {}) : config_(config) {}

  std::string_view name() const override { return "linux_readahead"; }
  void OnAccess(uint64_t pid, int64_t page, bool hit) override;
  void OnFault(uint64_t pid, int64_t page, std::vector<int64_t>& out_pages) override;

 private:
  struct Stream {
    int64_t last_page = -1;
    size_t streak = 0;
    size_t window = 0;
  };

  ReadaheadConfig config_;
  std::unordered_map<uint64_t, Stream> streams_;
};

}  // namespace rkd

#endif  // SRC_SIM_MEM_READAHEAD_H_
