// Leap baseline: majority-stride prefetching (Al Maruf & Chowdhury, ATC'20),
// the stronger comparison point in the paper's Table 1 ("Leap has extended
// this to detect striding patterns").
//
// Per process, Leap keeps a window of recent access deltas and finds the
// majority delta with a Boyer-Moore vote. On a fault it prefetches along
// that stride; the prefetch depth adapts to recent prefetcher effectiveness
// (Leap's dynamic window sizing). With no majority stride it falls back to a
// small contiguous readahead.
#ifndef SRC_SIM_MEM_LEAP_H_
#define SRC_SIM_MEM_LEAP_H_

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "src/sim/mem/memory_sim.h"

namespace rkd {

struct LeapConfig {
  size_t delta_window = 32;   // deltas considered by the majority vote
  size_t min_depth = 2;
  size_t max_depth = 16;
  size_t fallback_depth = 4;  // minimum contiguous cluster when no majority exists
};

class LeapPrefetcher final : public Prefetcher {
 public:
  explicit LeapPrefetcher(const LeapConfig& config = {}) : config_(config) {}

  std::string_view name() const override { return "leap"; }
  void OnAccess(uint64_t pid, int64_t page, bool hit) override;
  void OnFault(uint64_t pid, int64_t page, std::vector<int64_t>& out_pages) override;

 private:
  struct Stream {
    int64_t last_page = -1;
    std::deque<int64_t> deltas;
    size_t depth;
    // Feedback loop: pages we prefetched recently; hits grow the depth,
    // evictions of stale predictions shrink it.
    std::unordered_set<int64_t> outstanding;
    explicit Stream(size_t initial_depth) : depth(initial_depth) {}
  };

  // Boyer-Moore majority vote over the stream's delta window; returns 0 when
  // no delta reaches a strict majority.
  int64_t MajorityDelta(const Stream& stream) const;

  LeapConfig config_;
  std::unordered_map<uint64_t, Stream> streams_;
};

}  // namespace rkd

#endif  // SRC_SIM_MEM_LEAP_H_
