#include "src/sim/mem/readahead.h"

#include <algorithm>

namespace rkd {

void ReadaheadPrefetcher::OnAccess(uint64_t pid, int64_t page, bool hit) {
  (void)hit;
  Stream& stream = streams_[pid];
  if (stream.last_page >= 0 && page == stream.last_page + 1) {
    ++stream.streak;
  } else {
    stream.streak = 0;
    stream.window = 0;
  }
  stream.last_page = page;
}

void ReadaheadPrefetcher::OnFault(uint64_t pid, int64_t page, std::vector<int64_t>& out_pages) {
  Stream& stream = streams_[pid];
  if (stream.streak >= config_.streak_threshold) {
    // Sequential stream: exponential window growth, like Linux file
    // readahead's ramp-up.
    stream.window =
        stream.window == 0 ? config_.min_window : std::min(stream.window * 2, config_.max_window);
    for (size_t i = 1; i <= stream.window; ++i) {
      out_pages.push_back(page + static_cast<int64_t>(i));
    }
  } else {
    // Cold fault: constant cluster, the swap readahead fallback.
    for (size_t i = 1; i <= config_.cluster; ++i) {
      out_pages.push_back(page + static_cast<int64_t>(i));
    }
  }
}

}  // namespace rkd
