#include "src/sim/mem/leap.h"

#include <algorithm>

namespace rkd {

int64_t LeapPrefetcher::MajorityDelta(const Stream& stream) const {
  if (stream.deltas.empty()) {
    return 0;
  }
  // Boyer-Moore candidate pass.
  int64_t candidate = 0;
  size_t count = 0;
  for (const int64_t delta : stream.deltas) {
    if (count == 0) {
      candidate = delta;
      count = 1;
    } else if (delta == candidate) {
      ++count;
    } else {
      --count;
    }
  }
  // Verification pass: strict majority required.
  size_t occurrences = 0;
  for (const int64_t delta : stream.deltas) {
    if (delta == candidate) {
      ++occurrences;
    }
  }
  return occurrences * 2 > stream.deltas.size() ? candidate : 0;
}

void LeapPrefetcher::OnAccess(uint64_t pid, int64_t page, bool hit) {
  auto [it, inserted] = streams_.try_emplace(pid, Stream(config_.min_depth));
  Stream& stream = it->second;
  if (stream.last_page >= 0) {
    stream.deltas.push_back(page - stream.last_page);
    if (stream.deltas.size() > config_.delta_window) {
      stream.deltas.pop_front();
    }
  }
  stream.last_page = page;

  // Effectiveness feedback: a hit on a page we prefetched widens the depth; a
  // fault on a page we failed to predict narrows it.
  if (stream.outstanding.erase(page) > 0) {
    if (hit) {
      stream.depth = std::min(stream.depth * 2, config_.max_depth);
    }
  } else if (!hit) {
    stream.depth = std::max(stream.depth / 2, config_.min_depth);
  }
}

void LeapPrefetcher::OnFault(uint64_t pid, int64_t page, std::vector<int64_t>& out_pages) {
  auto [it, inserted] = streams_.try_emplace(pid, Stream(config_.min_depth));
  Stream& stream = it->second;
  const int64_t stride = MajorityDelta(stream);
  if (stride != 0) {
    for (size_t i = 1; i <= stream.depth; ++i) {
      const int64_t target = page + stride * static_cast<int64_t>(i);
      out_pages.push_back(target);
      stream.outstanding.insert(target);
    }
  } else {
    // No majority stride: contiguous readahead, sized by the same
    // effectiveness feedback as the strided path (Leap's dynamic window).
    const size_t depth = std::max(config_.fallback_depth, stream.depth);
    for (size_t i = 1; i <= depth; ++i) {
      out_pages.push_back(page + static_cast<int64_t>(i));
      stream.outstanding.insert(page + static_cast<int64_t>(i));
    }
  }
  // Bound the feedback set so long runs cannot grow it without limit.
  if (stream.outstanding.size() > 4 * config_.max_depth) {
    stream.outstanding.clear();
  }
}

}  // namespace rkd
