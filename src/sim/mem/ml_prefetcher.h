// The paper's prefetcher (case study #1), end to end on the RMT stack.
//
// This is the `rmt_prefetch_prog` of Figure 1 made concrete. Two tables:
//
//   page_access   @ mm.lookup_swap_cache   (HookKind::kMemAccess)
//     Action: compute the access delta from the per-process context, append
//     it to the context history ring, and push a (pid, delta) record into the
//     monitoring ring buffer for the training plane.
//
//   page_prefetch @ mm.swap_cluster_readahead (HookKind::kMemPrefetch)
//     Action: load the last four deltas from history into a vector register,
//     query the installed integer decision tree (kMlCall), translate the
//     predicted delta class through the vocabulary map, and emit rate-limited
//     strided prefetches. With no model installed (or an unknown-class
//     prediction) the action degrades to sequential prefetching.
//
// The training plane runs "in userspace": it drains the monitoring ring,
// assembles (last-4-deltas -> next-delta-class) samples, trains a fresh
// integer decision tree per window (discarding the old one, as in section
// 4), and pushes it through ControlPlane::InstallModel — which re-checks the
// verifier's cost model. Prefetch aggressiveness adapts through the control
// plane's accuracy loop: the depth knob lives in map 0 and the action reads
// it on every fault.
//
// Maps: 0 = config array (knob at key 0), 1 = delta vocabulary (class -> delta).
#ifndef SRC_SIM_MEM_ML_PREFETCHER_H_
#define SRC_SIM_MEM_ML_PREFETCHER_H_

#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/ml/decision_tree.h"
#include "src/ml/forest.h"
#include "src/ml/mlp.h"
#include "src/ml/quantize.h"
#include "src/replay/recorder.h"
#include "src/rmt/control_plane.h"
#include "src/sim/mem/memory_sim.h"

namespace rkd {

// Which model family the training plane installs per window. The paper's
// prototype uses the integer decision tree; the alternatives exist for the
// model-family ablation (see bench/ablation_model_family.cc).
enum class PrefetchModelFamily {
  kDecisionTree,   // the paper's choice
  kRandomForest,   // bagged trees, majority vote
  kQuantizedMlp,   // int16 MLP behind a raw-feature adapter
};

struct MlPrefetcherConfig {
  size_t feature_deltas = 4;    // history deltas per sample / per inference
  size_t vocab_size = 31;       // delta classes (class 0 reserved = unknown)
  size_t window_size = 256;     // samples per training window
  size_t min_train_samples = 64;
  // Access events per FireBatch submission to the monitoring hook. The
  // buffer always flushes before a fault fires (and at run end), so every
  // prefetch decision sees exactly the history/model state the unbatched
  // path would — only the fixed per-fire overhead changes. <= 1 fires each
  // access individually.
  size_t access_batch = 32;
  PrefetchModelFamily family = PrefetchModelFamily::kDecisionTree;
  DecisionTreeConfig tree;
  int64_t initial_depth = 4;    // prefetch-depth knob start value
  int64_t max_depth = 8;
  bool enable_adaptation = true;
  // Tier ladder: promote the hot prefetch/access actions to specialized
  // (tier 3) streams once they cross `tiering_hot_execs` fires. Each training
  // window's model install and knob move deoptimizes the streams back to
  // tier 2; the tick after the install respecializes against the new state —
  // so a long run exercises the full promote → deopt → respecialize cycle.
  bool enable_tiering = true;
  uint64_t tiering_hot_execs = 1024;
  ExecTier tier = ExecTier::kJit;
  uint64_t seed = 17;
};

class RmtMlPrefetcher final : public Prefetcher {
 public:
  explicit RmtMlPrefetcher(const MlPrefetcherConfig& config = {});

  // Registers the hooks, assembles + verifies + installs the RMT program.
  // Must be called (and succeed) before the prefetcher is used.
  Status Init();

  std::string_view name() const override { return "rmt_ml_dt"; }
  void OnAccess(uint64_t pid, int64_t page, bool hit) override;
  void OnFault(uint64_t pid, int64_t page, std::vector<int64_t>& out_pages) override;
  void OnRunEnd() override { Flush(); }

  // Submits the buffered access events through FireBatch and lets the
  // training plane drain the resulting samples. Called automatically before
  // every prefetch decision and at run end; public for callers that step
  // OnAccess manually and want the monitoring plane caught up.
  void Flush();

  // Experience capture (src/replay/). Tracks both hooks — the prefetch
  // decision is the first emitted page (DecisionSource::kFirstEmit), labeled
  // later with the page the workload actually faulted/accessed next — and
  // mirrors the training plane's knob moves, vocabulary publishes, and model
  // installs into the corpus so replay reproduces the incumbent exactly.
  // The recorder must outlive this prefetcher or be detached first.
  Status AttachRecorder(ExperienceRecorder* recorder);

  // The installable program bundle, exactly as Init() installs it (name
  // overridable so a replay/diff candidate can carry a distinct telemetry
  // slice). Public so tools and the shadow gate can rebuild the incumbent
  // spec as a replay candidate.
  RmtProgramSpec BuildProgramSpec(std::string name = "rmt_prefetch_prog") const;

  // Introspection for tests, benches, and EXPERIMENTS.md numbers.
  uint64_t windows_trained() const { return windows_trained_; }
  int64_t current_depth_knob();
  double rolling_accuracy();
  ControlPlane& control_plane() { return control_plane_; }
  ControlPlane::ProgramHandle handle() const { return handle_; }
  HookRegistry& hooks() { return hooks_; }

 private:
  BytecodeProgram BuildAccessAction() const;
  BytecodeProgram BuildPrefetchAction() const;
  void DrainSamplesAndMaybeTrain();

  MlPrefetcherConfig config_;
  HookRegistry hooks_;
  ControlPlane control_plane_;
  ControlPlane::ProgramHandle handle_ = -1;
  HookId access_hook_ = kInvalidHook;
  HookId prefetch_hook_ = kInvalidHook;
  bool initialized_ = false;

  uint64_t virtual_time_ = 0;        // advances per access; feeds helpers' now()
  std::vector<int64_t> emit_buffer_; // filled by the prefetch_emit sink

  // Experience capture (null = not recording).
  ExperienceRecorder* recorder_ = nullptr;
  // Prefetch fire awaiting its outcome label, per pid: resolved by the next
  // access of the same process ("the page actually referenced next").
  std::unordered_map<uint64_t, uint64_t> pending_labels_;

  // Access events buffered for the next FireBatch submission.
  std::vector<HookEvent> access_pending_;
  std::vector<int64_t> access_results_;

  // Training plane state.
  std::unordered_map<uint64_t, std::deque<int64_t>> recent_deltas_;
  struct PendingSample {
    std::vector<int32_t> features;
    int64_t label_delta;
  };
  std::vector<PendingSample> window_;
  uint64_t windows_trained_ = 0;

  void TrainWindow(std::span<const PendingSample> window);
};

}  // namespace rkd

#endif  // SRC_SIM_MEM_ML_PREFETCHER_H_
