#include "src/sim/sched/cfs_sim.h"

#include <algorithm>
#include <limits>

namespace rkd {

int64_t CfsHeuristicCanMigrate(const SchedFeatures& f) {
  // Mirrors can_migrate_task's structure: refuse when the move cannot help,
  // refuse cache-hot tasks unless the imbalance is large or the task is
  // starving, otherwise allow.
  if (f[kFeatSrcNrRunning] <= f[kFeatDstNrRunning]) {
    return 0;  // destination is not less loaded
  }
  if (f[kFeatImbalance] <= 1) {
    return 0;  // below the imbalance threshold; migration would ping-pong
  }
  const bool cache_hot = f[kFeatTicksSinceRun] < 4 && f[kFeatCacheFootprint] > 128;
  if (cache_hot) {
    if (f[kFeatWaitTicks] > 200) {
      return 1;  // starving: migrate regardless of hotness
    }
    if (f[kFeatImbalance] < 2 * f[kFeatTaskWeight] / 1024) {
      return 0;  // hot and the imbalance is small: keep it local
    }
  }
  return 1;
}

namespace {

struct SimTask {
  TaskSpec spec;
  uint64_t done = 0;            // total ticks executed
  uint64_t phase_done = 0;      // ticks executed in the current phase
  uint64_t burst_done = 0;      // ticks since the last blocking sleep
  uint32_t phase = 0;
  uint64_t vruntime = 0;
  int32_t core = -1;            // current queue; -1 = not yet arrived
  uint64_t last_ran = 0;
  uint64_t enqueued_at = 0;     // for wait-time accounting
  uint64_t sleeping_until = 0;  // > tick while blocked off-queue
  uint64_t migrations = 0;
  uint64_t bursts = 0;          // times selected to run
  bool sleeping = false;
  bool at_barrier = false;
  bool finished = false;
};

struct Core {
  std::vector<size_t> queue;  // indices into the task vector
};

// Clamp features so RawToQ16 never saturates downstream (Q16.16 holds
// +/-32767; scheduler counters can exceed that over long runs).
int64_t Clamp(int64_t value) { return std::clamp<int64_t>(value, -30000, 30000); }

}  // namespace

SchedMetrics CfsSim::Run(const JobSpec& job, const MigrationOracle& oracle, Dataset* collect) {
  return RunImpl(job, oracle, {}, collect);
}

SchedMetrics CfsSim::RunBatched(const JobSpec& job, const BatchMigrationOracle& oracle,
                                Dataset* collect) {
  return RunImpl(job, {}, oracle, collect);
}

SchedMetrics CfsSim::RunImpl(const JobSpec& job, const MigrationOracle& oracle,
                             const BatchMigrationOracle& batch_oracle, Dataset* collect) {
  SchedMetrics metrics;
  std::vector<SimTask> tasks;
  tasks.reserve(job.tasks.size());
  for (const TaskSpec& spec : job.tasks) {
    SimTask task;
    task.spec = spec;
    tasks.push_back(task);
  }
  std::vector<Core> cores(config_.cores);
  const bool has_barriers = job.num_phases > 0;

  size_t remaining = tasks.size();
  uint64_t tick = 0;
  size_t next_arrival_core = 0;

  const auto load_of = [&](const Core& core) {
    int64_t load = 0;
    for (size_t idx : core.queue) {
      load += tasks[idx].spec.weight;
    }
    return load;
  };

  const auto build_features = [&](const SimTask& task, uint32_t src, uint32_t dst) {
    SchedFeatures f{};
    const int64_t src_load = load_of(cores[src]) / 1024;
    const int64_t dst_load = load_of(cores[dst]) / 1024;
    f[kFeatSrcNrRunning] = static_cast<int64_t>(cores[src].queue.size());
    f[kFeatDstNrRunning] = static_cast<int64_t>(cores[dst].queue.size());
    f[kFeatSrcLoad] = Clamp(src_load);
    f[kFeatDstLoad] = Clamp(dst_load);
    f[kFeatImbalance] = Clamp(src_load - dst_load);
    f[kFeatTaskWeight] = task.spec.weight;
    f[kFeatTicksSinceRun] = Clamp(static_cast<int64_t>(tick - task.last_ran));
    f[kFeatTotalRuntime] = Clamp(static_cast<int64_t>(task.done));
    f[kFeatAvgBurst] =
        Clamp(task.bursts == 0 ? 0 : static_cast<int64_t>(task.done / task.bursts));
    f[kFeatCacheFootprint] = Clamp(task.spec.cache_footprint);
    f[kFeatMigrations] = Clamp(static_cast<int64_t>(task.migrations));
    f[kFeatWaitTicks] = Clamp(static_cast<int64_t>(tick - task.enqueued_at));
    f[kFeatQueueDelta] = f[kFeatSrcNrRunning] - f[kFeatDstNrRunning];
    f[kFeatTickPhase] = static_cast<int64_t>(tick % config_.balance_interval);
    f[kFeatPreferredCore] =
        static_cast<uint32_t>(task.spec.pid % config_.cores) == dst ? 1 : 0;
    return f;
  };

  while (remaining > 0 && tick < config_.max_ticks) {
    // Arrivals: like fork(), new tasks start on the parent's core (core 0)
    // and rely on the load balancer to spread out.
    for (size_t i = 0; i < tasks.size(); ++i) {
      SimTask& task = tasks[i];
      if (task.core < 0 && !task.finished && !task.sleeping &&
          task.spec.arrival_tick <= tick) {
        ++next_arrival_core;
        task.core = 0;
        task.enqueued_at = tick;
        cores[0].queue.push_back(i);
      }
    }

    // Wakeups: blocked tasks return on the waker's core (core 0), the CFS
    // wakeup-placement behaviour that keeps the balancer supplied with work.
    for (size_t i = 0; i < tasks.size(); ++i) {
      SimTask& task = tasks[i];
      if (task.sleeping && task.sleeping_until <= tick) {
        task.sleeping = false;
        task.burst_done = 0;
        task.core = 0;
        task.enqueued_at = tick;
        cores[0].queue.push_back(i);
      }
    }

    // Barrier release: when every unfinished task waits, open the next phase.
    if (has_barriers) {
      bool all_waiting = true;
      bool any_waiting = false;
      for (const SimTask& task : tasks) {
        if (task.finished || task.core < 0) {
          continue;
        }
        if (task.at_barrier) {
          any_waiting = true;
        } else {
          all_waiting = false;
        }
      }
      if (any_waiting && all_waiting) {
        // Barrier release: wake everyone on the waker's core (core 0), the
        // CFS wakeup-placement behaviour that re-creates imbalance every
        // phase and keeps the load balancer busy.
        for (size_t i = 0; i < tasks.size(); ++i) {
          SimTask& task = tasks[i];
          if (!task.finished && task.core >= 0) {
            task.at_barrier = false;
            task.phase_done = 0;
            ++task.phase;
            if (task.core != 0) {
              auto& queue = cores[static_cast<size_t>(task.core)].queue;
              queue.erase(std::find(queue.begin(), queue.end(), i));
              cores[0].queue.push_back(i);
              task.core = 0;
              task.enqueued_at = tick;
            }
          }
        }
      }
    }

    // One tick of execution per core: run the min-vruntime runnable task.
    for (uint32_t c = 0; c < config_.cores; ++c) {
      Core& core = cores[c];
      size_t pick = std::numeric_limits<size_t>::max();
      uint64_t best_vruntime = std::numeric_limits<uint64_t>::max();
      for (size_t idx : core.queue) {
        const SimTask& task = tasks[idx];
        if (!task.at_barrier && task.vruntime < best_vruntime) {
          best_vruntime = task.vruntime;
          pick = idx;
        }
      }
      if (pick == std::numeric_limits<size_t>::max()) {
        continue;  // idle (or all tasks at barrier)
      }
      SimTask& task = tasks[pick];
      ++task.done;
      ++task.phase_done;
      ++task.burst_done;
      ++task.bursts;
      task.vruntime += 1024 * 1024 / static_cast<uint64_t>(task.spec.weight);
      task.last_ran = tick;
      if (task.done >= task.spec.total_work) {
        task.finished = true;
        core.queue.erase(std::find(core.queue.begin(), core.queue.end(), pick));
        --remaining;
      } else if (has_barriers && task.spec.phase_work > 0 &&
                 task.phase_done >= task.spec.phase_work &&
                 task.phase + 1 < job.num_phases) {
        task.at_barrier = true;
      } else if (task.spec.run_burst > 0 && task.burst_done >= task.spec.run_burst) {
        // Blocking stall: leave the queue entirely until the wakeup.
        task.sleeping = true;
        task.sleeping_until = tick + task.spec.sleep_ticks;
        task.core = -1;
        core.queue.erase(std::find(core.queue.begin(), core.queue.end(), pick));
      }
    }

    // Periodic load balancing.
    if (tick % config_.balance_interval == config_.balance_interval - 1) {
      uint32_t busiest = 0;
      uint32_t idlest = 0;
      for (uint32_t c = 1; c < config_.cores; ++c) {
        if (cores[c].queue.size() > cores[busiest].queue.size()) {
          busiest = c;
        }
        if (cores[c].queue.size() < cores[idlest].queue.size()) {
          idlest = c;
        }
      }
      if (busiest != idlest && cores[busiest].queue.size() > cores[idlest].queue.size()) {
        size_t moved = 0;
        // Scan a snapshot: migration mutates the queue.
        std::vector<size_t> candidates = cores[busiest].queue;
        // Batch-oracle state: queries for candidates[batch_start..] built at
        // the current queue state. An applied migration changes the features
        // of everything still pending, so it invalidates the batch; at most
        // max_migrations_per_pass + 1 batches per pass.
        std::vector<MigrationQuery> batch_queries;
        std::vector<int64_t> batch_decisions;
        size_t batch_start = 0;
        bool batch_stale = true;
        for (size_t ci = 0; ci < candidates.size(); ++ci) {
          const size_t idx = candidates[ci];
          if (moved >= config_.max_migrations_per_pass) {
            break;
          }
          if (cores[busiest].queue.size() <= cores[idlest].queue.size()) {
            break;
          }
          SimTask& task = tasks[idx];
          SchedFeatures features;
          int64_t predicted = -1;
          if (batch_oracle) {
            if (batch_stale) {
              batch_queries.clear();
              for (size_t cj = ci; cj < candidates.size(); ++cj) {
                MigrationQuery query;
                query.pid = tasks[candidates[cj]].spec.pid;
                query.features = build_features(tasks[candidates[cj]], busiest, idlest);
                batch_queries.push_back(query);
              }
              batch_decisions.assign(batch_queries.size(), -1);
              batch_oracle(batch_queries, batch_decisions);
              batch_start = ci;
              batch_stale = false;
            }
            features = batch_queries[ci - batch_start].features;
            predicted = batch_decisions[ci - batch_start];
          } else {
            features = build_features(task, busiest, idlest);
          }
          const int64_t heuristic = CfsHeuristicCanMigrate(features);
          if (collect != nullptr) {
            std::array<int32_t, kSchedNumFeatures> row;
            for (size_t k = 0; k < kSchedNumFeatures; ++k) {
              row[k] = static_cast<int32_t>(features[k]);
            }
            collect->Add(row, static_cast<int32_t>(heuristic));
          }
          ++metrics.decisions;
          int64_t decision = heuristic;
          if (oracle) {
            predicted = oracle(task.spec.pid, features);
          }
          if (oracle || batch_oracle) {
            if (predicted < 0) {
              ++metrics.oracle_fallbacks;
              if (predicted == kOracleCtxStoreFull) {
                ++metrics.ctx_store_full;
              }
            } else {
              decision = predicted;
              if (predicted == heuristic) {
                ++metrics.oracle_agreements;
              }
            }
          }
          if (decision == 1) {
            auto& queue = cores[busiest].queue;
            queue.erase(std::find(queue.begin(), queue.end(), idx));
            cores[idlest].queue.push_back(idx);
            task.core = static_cast<int32_t>(idlest);
            task.enqueued_at = tick;
            ++task.migrations;
            ++metrics.migrations;
            ++moved;
            batch_stale = true;
          }
        }
      }
    }

    ++tick;
  }

  metrics.ticks = tick;
  metrics.completed = remaining == 0;
  if (telemetry_ != nullptr) {
    telemetry_->GetCounter("rkd.sim.sched.runs")->Increment();
    telemetry_->GetCounter("rkd.sim.sched.ticks")->Increment(metrics.ticks);
    telemetry_->GetCounter("rkd.sim.sched.migrations")->Increment(metrics.migrations);
    telemetry_->GetCounter("rkd.sim.sched.decisions")->Increment(metrics.decisions);
    telemetry_->GetCounter("rkd.sim.sched.oracle_fallbacks")
        ->Increment(metrics.oracle_fallbacks);
    telemetry_->GetCounter("rkd.sim.sched.ctx_store_full")
        ->Increment(metrics.ctx_store_full);
    telemetry_->GetGauge("rkd.sim.sched.agreement")->Set(metrics.agreement());
    telemetry_->GetGauge("rkd.sim.sched.jct_s")->Set(metrics.jct_seconds(config_.tick_ns));
  }
  return metrics;
}

Dataset CollectMigrationDataset(const SchedConfig& config, const JobSpec& job) {
  Dataset dataset(kSchedNumFeatures);
  CfsSim sim(config);
  (void)sim.Run(job, {}, &dataset);
  return dataset;
}

}  // namespace rkd
