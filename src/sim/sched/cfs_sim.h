// Multi-core CFS-style scheduler simulator — the substrate for case study #2.
//
// Models the pieces of Linux CFS that the paper's second experiment
// instruments: per-core run queues ordered by virtual runtime, tick-driven
// preemption, and a periodic load balancer whose per-task migration decision
// (`can_migrate_task`) consults either the built-in heuristic or an external
// oracle — the seam where the RMT/ML predictor plugs in.
//
// The 15-dimensional migration feature vector follows Chen et al. (APSys'20),
// the work the paper replicates: queue lengths and loads on both cores, the
// imbalance, the task's weight/cache-hotness/footprint, and bookkeeping
// counters. The built-in heuristic is a deterministic function of a few of
// these (imbalance, hotness, queue lengths, starvation), which is precisely
// why an MLP can mimic it at 99%+ and why feature ranking can cut 15
// features to 2 with little accuracy loss.
#ifndef SRC_SIM_SCHED_CFS_SIM_H_
#define SRC_SIM_SCHED_CFS_SIM_H_

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/ml/dataset.h"
#include "src/telemetry/telemetry.h"
#include "src/workloads/cpu_jobs.h"

namespace rkd {

inline constexpr size_t kSchedNumFeatures = 15;
using SchedFeatures = std::array<int64_t, kSchedNumFeatures>;

// Feature indices (kept stable; feature-importance results refer to these).
enum SchedFeatureIndex : size_t {
  kFeatSrcNrRunning = 0,
  kFeatDstNrRunning = 1,
  kFeatSrcLoad = 2,
  kFeatDstLoad = 3,
  kFeatImbalance = 4,
  kFeatTaskWeight = 5,
  kFeatTicksSinceRun = 6,
  kFeatTotalRuntime = 7,
  kFeatAvgBurst = 8,
  kFeatCacheFootprint = 9,
  kFeatMigrations = 10,
  kFeatWaitTicks = 11,
  kFeatQueueDelta = 12,
  kFeatTickPhase = 13,
  kFeatPreferredCore = 14,
};

// The stock decision: 1 = may migrate, 0 = keep. Pure function of the
// features, mirroring CFS's cache-hotness / imbalance reasoning.
int64_t CfsHeuristicCanMigrate(const SchedFeatures& features);

// External decision provider; return 1/0, or a negative value to fall back
// to the heuristic (e.g. no model installed yet).
using MigrationOracle = std::function<int64_t(int64_t pid, const SchedFeatures& features)>;

// Oracle return value for "context store is full": still a fallback to the
// heuristic, but counted separately so capacity-driven degradation is
// visible instead of blending into generic fallbacks.
inline constexpr int64_t kOracleCtxStoreFull = -2;

// One pending can_migrate_task decision, with features captured at the queue
// state the decision will be judged against.
struct MigrationQuery {
  int64_t pid = 0;
  SchedFeatures features{};
};

// Batched decision provider: one call covers every candidate the balancer
// still holds. Per-element decision semantics match MigrationOracle (1/0,
// negative = heuristic fallback); `decisions` arrives pre-filled with -1 and
// has the same length as `queries`.
using BatchMigrationOracle =
    std::function<void(std::span<const MigrationQuery>, std::span<int64_t>)>;

struct SchedConfig {
  uint32_t cores = 4;
  uint64_t tick_ns = 1'000'000;    // 1 ms scheduler tick
  uint64_t balance_interval = 10;  // ticks between load-balance passes
  uint64_t hot_ticks = 4;          // recently-ran threshold for cache hotness
  uint64_t starved_ticks = 200;    // wait time that overrides hotness
  uint64_t max_ticks = 10'000'000; // safety stop
  size_t max_migrations_per_pass = 2;
};

struct SchedMetrics {
  uint64_t ticks = 0;
  uint64_t migrations = 0;
  uint64_t decisions = 0;          // can_migrate_task invocations
  uint64_t oracle_fallbacks = 0;   // oracle returned negative
  uint64_t ctx_store_full = 0;     // fallbacks caused by a full context store
  uint64_t oracle_agreements = 0;  // oracle decision == heuristic decision
  bool completed = false;          // all tasks finished before max_ticks

  double jct_seconds(uint64_t tick_ns) const {
    return static_cast<double>(ticks) * static_cast<double>(tick_ns) * 1e-9;
  }
  // Accuracy in mimicking CFS (the paper's "Acc (%)" column).
  double agreement() const {
    const uint64_t judged = decisions - oracle_fallbacks;
    return judged == 0 ? 0.0
                       : static_cast<double>(oracle_agreements) / static_cast<double>(judged);
  }
};

class CfsSim {
 public:
  explicit CfsSim(const SchedConfig& config = {}) : config_(config) {}

  // Runs `job` to completion. With an empty oracle the heuristic decides
  // (stock Linux); otherwise the oracle decides and every decision is also
  // scored against the heuristic for the agreement metric. When `collect`
  // is non-null, every (features, heuristic_decision) pair is appended —
  // the training-set collection pass.
  SchedMetrics Run(const JobSpec& job, const MigrationOracle& oracle = {},
                   Dataset* collect = nullptr);

  // Same simulation, but the oracle is consulted once per batch of remaining
  // migration candidates instead of once per candidate. After every applied
  // migration the balancer re-batches the remaining candidates (their
  // features change when the queues do), so decisions are bit-identical to
  // the sequential path — only the per-query dispatch overhead is amortized.
  SchedMetrics RunBatched(const JobSpec& job, const BatchMigrationOracle& oracle,
                          Dataset* collect = nullptr);

  // Publishes each completed Run's aggregates into `telemetry` under
  // "rkd.sim.sched.*": tick/migration/decision counters accumulate across
  // runs; agreement / JCT gauges hold the latest run. Null disables
  // publishing (the default; zero overhead).
  void set_telemetry(TelemetryRegistry* telemetry) { telemetry_ = telemetry; }

  const SchedConfig& config() const { return config_; }

 private:
  SchedMetrics RunImpl(const JobSpec& job, const MigrationOracle& oracle,
                       const BatchMigrationOracle& batch_oracle, Dataset* collect);

  SchedConfig config_;
  TelemetryRegistry* telemetry_ = nullptr;  // not owned
};

// Builds a migration-decision dataset by running `job` under the heuristic.
Dataset CollectMigrationDataset(const SchedConfig& config, const JobSpec& job);

}  // namespace rkd

#endif  // SRC_SIM_SCHED_CFS_SIM_H_
