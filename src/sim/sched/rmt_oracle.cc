#include "src/sim/sched/rmt_oracle.h"

#include "src/bytecode/assembler.h"
#include "src/ml/quantize.h"

namespace rkd {

RmtMigrationOracle::RmtMigrationOracle(const RmtOracleConfig& config)
    : config_(config), control_plane_(&hooks_) {
  if (config_.selected_features.empty()) {
    config_.selected_features.resize(kSchedNumFeatures);
    for (size_t i = 0; i < kSchedNumFeatures; ++i) {
      config_.selected_features[i] = i;
    }
  }
}

RmtProgramSpec RmtMigrationOracle::BuildProgramSpec(std::string name) const {
  Assembler a("can_migrate_predict", HookKind::kSchedMigrate);
  a.DeclareModels(1);
  a.VecLdCtxt(0, 1);       // v0 = feature vector of ctxt[pid]
  a.MlCall(0, 0, 0);       // r0 = migrate decision (or the no-model sentinel)
  a.Exit();
  Result<BytecodeProgram> action = a.Build();

  RmtProgramSpec spec;
  spec.name = std::move(name);
  spec.model_slots = 1;
  RmtTableSpec table;
  table.name = "can_migrate_tab";
  table.hook_point = "sched.can_migrate_task";
  table.actions.push_back(std::move(action).value());  // static program; always builds
  table.default_action = 0;
  spec.tables.push_back(std::move(table));
  return spec;
}

Status RmtMigrationOracle::Init() {
  if (initialized_) {
    return FailedPreconditionError("RmtMigrationOracle::Init called twice");
  }
  RKD_ASSIGN_OR_RETURN(hook_,
                       hooks_.Register("sched.can_migrate_task", HookKind::kSchedMigrate));
  RKD_ASSIGN_OR_RETURN(handle_, control_plane_.Install(BuildProgramSpec(), config_.tier));

  // Degraded-rung fallback for the overload governor: at GovLevel::kDegraded
  // fires skip the learned oracle and re-run the vanilla CFS can_migrate test
  // on the features AsOracle() just published to the context store. Only the
  // selected lanes survive quantization, so unselected features read as 0 —
  // the same partial view the learned model gets.
  RKD_RETURN_IF_ERROR(hooks_.SetFallbackOracle(
      hook_, [this](uint64_t pid, std::span<const int64_t> args) -> int64_t {
        (void)args;
        const ContextEntry* entry = control_plane_.Get(handle_)->context().Find(pid);
        if (entry == nullptr) {
          return kHookFallback;  // no published features; stock kernel decides
        }
        SchedFeatures features{};
        for (size_t lane = 0;
             lane < config_.selected_features.size() && lane < kVectorLanes; ++lane) {
          // Q16.16 back to raw; the sim clamps features so RawToQ16 never
          // saturated on the way in.
          features[config_.selected_features[lane]] = entry->features[lane] >> 16;
        }
        return CfsHeuristicCanMigrate(features);
      }));
  if (config_.enable_tiering && config_.tier == ExecTier::kJit) {
    ControlPlane::TieringConfig tiering;
    tiering.hot_execs = config_.tiering_hot_execs;
    RKD_RETURN_IF_ERROR(control_plane_.EnableTiering(handle_, tiering));
  }
  initialized_ = true;
  return OkStatus();
}

Status RmtMigrationOracle::InstallModel(ModelPtr model) {
  ModelPtr installed = model;  // shared ref survives the move for capture
  RKD_RETURN_IF_ERROR(control_plane_.InstallModel(handle_, 0, std::move(model)));
  if (recorder_ != nullptr && installed != nullptr) {
    (void)recorder_->RecordModelInstall(0, *installed);
  }
  if (config_.enable_tiering && config_.tier == ExecTier::kJit) {
    // The install bumped the slot version (stale guard on any live stream);
    // respecialize now so subsequent fires burn the new model's weights.
    (void)control_plane_.TickTiering(handle_);
  }
  return OkStatus();
}

void RmtMigrationOracle::MaybeTickTiering(uint64_t new_queries) {
  if (!config_.enable_tiering || config_.tier != ExecTier::kJit) {
    return;
  }
  queries_since_tier_tick_ += new_queries;
  if (queries_since_tier_tick_ >= config_.tiering_tick_queries) {
    queries_since_tier_tick_ = 0;
    (void)control_plane_.TickTiering(handle_);
  }
}

Status RmtMigrationOracle::AttachRecorder(ExperienceRecorder* recorder) {
  if (!initialized_) {
    return FailedPreconditionError("AttachRecorder requires a successful Init()");
  }
  RKD_RETURN_IF_ERROR(
      recorder->Track(hook_, DecisionSource::kResult, "heuristic_decision"));
  recorder_ = recorder;
  recorder_->Attach();
  return OkStatus();
}

MigrationOracle RmtMigrationOracle::AsOracle() {
  return [this](int64_t pid, const SchedFeatures& features) -> int64_t {
    ++queries_;
    // Monitoring step: publish (only) the selected features to the context.
    ContextEntry* entry =
        control_plane_.Get(handle_)->context().FindOrCreate(static_cast<uint64_t>(pid));
    if (entry == nullptr) {
      return kOracleCtxStoreFull;  // degrade to the heuristic, but visibly
    }
    entry->features.fill(0);
    for (size_t lane = 0; lane < config_.selected_features.size() && lane < kVectorLanes;
         ++lane) {
      entry->features[lane] = RawToQ16(features[config_.selected_features[lane]]);
    }
    if (recorder_ != nullptr) {
      recorder_->StageContextFeatures(hook_, entry->features);
      recorder_->StageLabel(hook_, CfsHeuristicCanMigrate(features));
    }
    MaybeTickTiering(1);
    return hooks_.Fire(hook_, static_cast<uint64_t>(pid));
  };
}

BatchMigrationOracle RmtMigrationOracle::AsBatchOracle() {
  return [this](std::span<const MigrationQuery> queries, std::span<int64_t> decisions) {
    queries_ += queries.size();
    batch_events_.clear();
    batch_slots_.clear();
    ContextStore& context = control_plane_.Get(handle_)->context();
    const size_t n = queries.size() < decisions.size() ? queries.size() : decisions.size();
    for (size_t i = 0; i < n; ++i) {
      ContextEntry* entry = context.FindOrCreate(static_cast<uint64_t>(queries[i].pid));
      if (entry == nullptr) {
        decisions[i] = kOracleCtxStoreFull;
        continue;
      }
      entry->features.fill(0);
      for (size_t lane = 0;
           lane < config_.selected_features.size() && lane < kVectorLanes; ++lane) {
        entry->features[lane] = RawToQ16(queries[i].features[config_.selected_features[lane]]);
      }
      if (recorder_ != nullptr) {
        recorder_->StageContextFeatures(hook_, entry->features);
        recorder_->StageLabel(hook_, CfsHeuristicCanMigrate(queries[i].features));
      }
      HookEvent event;
      event.key = static_cast<uint64_t>(queries[i].pid);
      batch_events_.push_back(event);
      batch_slots_.push_back(i);
    }
    if (batch_events_.empty()) {
      return;
    }
    batch_results_.assign(batch_events_.size(), kHookFallback);
    MaybeTickTiering(batch_events_.size());
    hooks_.FireBatch(hook_, batch_events_, batch_results_);
    for (size_t j = 0; j < batch_events_.size(); ++j) {
      decisions[batch_slots_[j]] = batch_results_[j];
    }
  };
}

}  // namespace rkd
