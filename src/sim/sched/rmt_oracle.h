// RMT-backed migration oracle — case study #2's datapath wiring.
//
// "The can_migrate_task function in CFS calls into RMT to query the ML model
// to predict whether or not a task should be migrated." Here the scheduler
// substrate writes the task's feature vector into the RMT execution context
// (the "matches look up the current execution context" step) and fires the
// sched.can_migrate_task hook; the attached table's action loads the vector
// and queries the installed quantized MLP:
//
//     vec_ld_ctxt v0, r1      ; features of ctxt[pid]
//     ml_call    r0, model0(v0)
//     exit
//
// With no model installed the action returns the no-model sentinel and the
// simulator falls back to the stock CFS heuristic — exactly the degradation
// the hook contract promises.
//
// The oracle supports lean monitoring: construct it with the feature subset
// selected by importance ranking, and only those features are written into
// the context (the unmonitored 13 features are simply never collected).
#ifndef SRC_SIM_SCHED_RMT_ORACLE_H_
#define SRC_SIM_SCHED_RMT_ORACLE_H_

#include <vector>

#include "src/replay/recorder.h"
#include "src/rmt/control_plane.h"
#include "src/sim/sched/cfs_sim.h"

namespace rkd {

struct RmtOracleConfig {
  // Feature columns written into the context (and expected by the model),
  // in lane order. Empty = all 15 in index order.
  std::vector<size_t> selected_features;
  ExecTier tier = ExecTier::kJit;
  // Tier ladder: promote the hot migrate action to a specialized (tier 3)
  // stream that burns the installed MLP's weights. The ladder ticks every
  // `tiering_tick_queries` oracle queries and after every InstallModel (a
  // new model deoptimizes the stream; the tick respecializes against it).
  bool enable_tiering = true;
  uint64_t tiering_hot_execs = 1024;
  uint64_t tiering_tick_queries = 256;
};

class RmtMigrationOracle {
 public:
  explicit RmtMigrationOracle(const RmtOracleConfig& config = {});

  // Registers the hook and installs the RMT program (verified admission).
  Status Init();

  // Installs/replaces the decision model (slot 0); cost-model re-checked.
  Status InstallModel(ModelPtr model);

  // The callable handed to CfsSim::Run.
  MigrationOracle AsOracle();

  // The callable handed to CfsSim::RunBatched. Writes every query's feature
  // vector into the context store up front (distinct pids per batch — each
  // runqueue task appears at most once), then submits all admitted queries
  // through one HookRegistry::FireBatch. Per-query decisions are identical
  // to AsOracle; only the per-fire dispatch overhead is amortized.
  BatchMigrationOracle AsBatchOracle();

  // Experience capture (src/replay/). Every query records the Q16 context
  // lanes the oracle published (replay rewrites them before re-firing) and
  // is labeled with the stock CFS heuristic's verdict on the same features,
  // so the counterfactual score reads "agreement with the heuristic". The
  // recorder must outlive this oracle or be detached first.
  Status AttachRecorder(ExperienceRecorder* recorder);

  // The installable program bundle, exactly as Init() installs it. Name
  // overridable for replay/diff candidates.
  RmtProgramSpec BuildProgramSpec(std::string name = "rmt_sched_prog") const;

  ControlPlane& control_plane() { return control_plane_; }
  HookRegistry& hooks() { return hooks_; }
  ControlPlane::ProgramHandle handle() const { return handle_; }
  uint64_t queries() const { return queries_; }

 private:
  RmtOracleConfig config_;
  HookRegistry hooks_;
  ControlPlane control_plane_;
  ControlPlane::ProgramHandle handle_ = -1;
  // Ticks the tier ladder when due (every tiering_tick_queries queries).
  void MaybeTickTiering(uint64_t new_queries);

  HookId hook_ = kInvalidHook;
  uint64_t queries_ = 0;
  uint64_t queries_since_tier_tick_ = 0;
  bool initialized_ = false;
  ExperienceRecorder* recorder_ = nullptr;  // null = not recording

  // Scratch buffers reused across AsBatchOracle invocations.
  std::vector<HookEvent> batch_events_;
  std::vector<size_t> batch_slots_;   // batch_events_[j] answers queries[batch_slots_[j]]
  std::vector<int64_t> batch_results_;
};

}  // namespace rkd

#endif  // SRC_SIM_SCHED_RMT_ORACLE_H_
