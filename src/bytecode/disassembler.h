// Human-readable rendering of RMT bytecode, for diagnostics and tests.
#ifndef SRC_BYTECODE_DISASSEMBLER_H_
#define SRC_BYTECODE_DISASSEMBLER_H_

#include <string>

#include "src/bytecode/isa.h"
#include "src/bytecode/program.h"

namespace rkd {

// One instruction as text, e.g. "jeq_imm r3, 42, +5" or "mat_mul v1, v0, t2".
std::string DisassembleInstruction(const Instruction& insn);

// Whole program with addresses, one instruction per line.
std::string Disassemble(const BytecodeProgram& program);

}  // namespace rkd

#endif  // SRC_BYTECODE_DISASSEMBLER_H_
