#include "src/bytecode/serialize.h"

#include "src/base/bytes.h"

namespace rkd {

std::vector<uint8_t> SerializeProgram(const BytecodeProgram& program) {
  ByteWriter writer;
  writer.Put<uint32_t>(kBytecodeMagic);
  writer.Put<uint32_t>(kBytecodeVersion);
  writer.PutString(program.name);
  writer.Put<uint32_t>(static_cast<uint32_t>(program.hook_kind));
  writer.Put<uint32_t>(program.num_maps);
  writer.Put<uint32_t>(program.num_models);
  writer.Put<uint32_t>(program.num_tensors);
  writer.Put<uint32_t>(program.num_tables);
  writer.Put<uint64_t>(program.code.size());
  for (const Instruction& insn : program.code) {
    writer.Put<uint16_t>(static_cast<uint16_t>(insn.opcode));
    writer.Put<uint8_t>(insn.dst);
    writer.Put<uint8_t>(insn.src);
    writer.Put<int32_t>(insn.offset);
    writer.Put<int64_t>(insn.imm);
  }
  return writer.Take();
}

Result<BytecodeProgram> DeserializeProgram(std::span<const uint8_t> bytes) {
  ByteReader reader(bytes);
  RKD_ASSIGN_OR_RETURN(uint32_t magic, reader.Get<uint32_t>());
  if (magic != kBytecodeMagic) {
    return InvalidArgumentError("not an RKDB bytecode blob");
  }
  RKD_ASSIGN_OR_RETURN(uint32_t version, reader.Get<uint32_t>());
  if (version != kBytecodeVersion) {
    return InvalidArgumentError("unsupported bytecode version " + std::to_string(version));
  }
  BytecodeProgram program;
  RKD_ASSIGN_OR_RETURN(program.name, reader.GetString());
  RKD_ASSIGN_OR_RETURN(uint32_t hook_kind, reader.Get<uint32_t>());
  if (hook_kind > static_cast<uint32_t>(HookKind::kNetRx)) {
    return InvalidArgumentError("invalid hook kind");
  }
  program.hook_kind = static_cast<HookKind>(hook_kind);
  RKD_ASSIGN_OR_RETURN(program.num_maps, reader.Get<uint32_t>());
  RKD_ASSIGN_OR_RETURN(program.num_models, reader.Get<uint32_t>());
  RKD_ASSIGN_OR_RETURN(program.num_tensors, reader.Get<uint32_t>());
  RKD_ASSIGN_OR_RETURN(program.num_tables, reader.Get<uint32_t>());
  RKD_ASSIGN_OR_RETURN(uint64_t count, reader.Get<uint64_t>());
  if (count == 0 || count > (1 << 20)) {
    return InvalidArgumentError("instruction count out of range");
  }
  program.code.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Instruction insn;
    RKD_ASSIGN_OR_RETURN(uint16_t opcode, reader.Get<uint16_t>());
    if (opcode >= static_cast<uint16_t>(Opcode::kOpcodeCount)) {
      return InvalidArgumentError("invalid opcode at instruction " + std::to_string(i));
    }
    insn.opcode = static_cast<Opcode>(opcode);
    RKD_ASSIGN_OR_RETURN(insn.dst, reader.Get<uint8_t>());
    RKD_ASSIGN_OR_RETURN(insn.src, reader.Get<uint8_t>());
    RKD_ASSIGN_OR_RETURN(insn.offset, reader.Get<int32_t>());
    RKD_ASSIGN_OR_RETURN(insn.imm, reader.Get<int64_t>());
    program.code.push_back(insn);
  }
  if (!reader.AtEnd()) {
    return InvalidArgumentError("trailing bytes after the instruction stream");
  }
  return program;
}

}  // namespace rkd
