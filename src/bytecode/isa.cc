#include "src/bytecode/isa.h"

namespace rkd {

std::string_view OpcodeName(Opcode opcode) {
  switch (opcode) {
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kMod: return "mod";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kAshr: return "ashr";
    case Opcode::kMov: return "mov";
    case Opcode::kAddImm: return "add_imm";
    case Opcode::kSubImm: return "sub_imm";
    case Opcode::kMulImm: return "mul_imm";
    case Opcode::kDivImm: return "div_imm";
    case Opcode::kModImm: return "mod_imm";
    case Opcode::kAndImm: return "and_imm";
    case Opcode::kOrImm: return "or_imm";
    case Opcode::kXorImm: return "xor_imm";
    case Opcode::kShlImm: return "shl_imm";
    case Opcode::kShrImm: return "shr_imm";
    case Opcode::kAshrImm: return "ashr_imm";
    case Opcode::kMovImm: return "mov_imm";
    case Opcode::kNeg: return "neg";
    case Opcode::kJa: return "ja";
    case Opcode::kJeq: return "jeq";
    case Opcode::kJne: return "jne";
    case Opcode::kJlt: return "jlt";
    case Opcode::kJle: return "jle";
    case Opcode::kJgt: return "jgt";
    case Opcode::kJge: return "jge";
    case Opcode::kJset: return "jset";
    case Opcode::kJeqImm: return "jeq_imm";
    case Opcode::kJneImm: return "jne_imm";
    case Opcode::kJltImm: return "jlt_imm";
    case Opcode::kJleImm: return "jle_imm";
    case Opcode::kJgtImm: return "jgt_imm";
    case Opcode::kJgeImm: return "jge_imm";
    case Opcode::kJsetImm: return "jset_imm";
    case Opcode::kLdStack: return "ld_stack";
    case Opcode::kStStack: return "st_stack";
    case Opcode::kStStackImm: return "st_stack_imm";
    case Opcode::kLdCtxt: return "ld_ctxt";
    case Opcode::kStCtxt: return "st_ctxt";
    case Opcode::kMatchCtxt: return "match_ctxt";
    case Opcode::kMapLookup: return "map_lookup";
    case Opcode::kMapExists: return "map_exists";
    case Opcode::kMapUpdate: return "map_update";
    case Opcode::kMapDelete: return "map_delete";
    case Opcode::kVecLdCtxt: return "vec_ld_ctxt";
    case Opcode::kVecStCtxt: return "vec_st_ctxt";
    case Opcode::kVecZero: return "vec_zero";
    case Opcode::kScalarVal: return "scalar_val";
    case Opcode::kVecExtract: return "vec_extract";
    case Opcode::kMatMul: return "mat_mul";
    case Opcode::kVecAddT: return "vec_add_t";
    case Opcode::kVecAdd: return "vec_add";
    case Opcode::kVecRelu: return "vec_relu";
    case Opcode::kVecArgmax: return "vec_argmax";
    case Opcode::kVecDot: return "vec_dot";
    case Opcode::kCall: return "call";
    case Opcode::kMlCall: return "ml_call";
    case Opcode::kTailCall: return "tail_call";
    case Opcode::kExit: return "exit";
    case Opcode::kOpcodeCount: break;
  }
  return "invalid";
}

bool IsBranch(Opcode opcode) {
  switch (opcode) {
    case Opcode::kJa:
    case Opcode::kJeq:
    case Opcode::kJne:
    case Opcode::kJlt:
    case Opcode::kJle:
    case Opcode::kJgt:
    case Opcode::kJge:
    case Opcode::kJset:
    case Opcode::kJeqImm:
    case Opcode::kJneImm:
    case Opcode::kJltImm:
    case Opcode::kJleImm:
    case Opcode::kJgtImm:
    case Opcode::kJgeImm:
    case Opcode::kJsetImm:
      return true;
    default:
      return false;
  }
}

bool IsConditional(Opcode opcode) { return IsBranch(opcode) && opcode != Opcode::kJa; }

bool IsVectorOp(Opcode opcode) {
  switch (opcode) {
    case Opcode::kVecLdCtxt:
    case Opcode::kVecStCtxt:
    case Opcode::kVecZero:
    case Opcode::kScalarVal:
    case Opcode::kVecExtract:
    case Opcode::kMatMul:
    case Opcode::kVecAddT:
    case Opcode::kVecAdd:
    case Opcode::kVecRelu:
    case Opcode::kVecArgmax:
    case Opcode::kVecDot:
    case Opcode::kMlCall:
      return true;
    default:
      return false;
  }
}

bool HasScalarDst(Opcode opcode) {
  switch (opcode) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kMod:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kAshr:
    case Opcode::kMov:
    case Opcode::kAddImm:
    case Opcode::kSubImm:
    case Opcode::kMulImm:
    case Opcode::kDivImm:
    case Opcode::kModImm:
    case Opcode::kAndImm:
    case Opcode::kOrImm:
    case Opcode::kXorImm:
    case Opcode::kShlImm:
    case Opcode::kShrImm:
    case Opcode::kAshrImm:
    case Opcode::kMovImm:
    case Opcode::kNeg:
    case Opcode::kLdStack:
    case Opcode::kLdCtxt:
    case Opcode::kMatchCtxt:
    case Opcode::kMapLookup:
    case Opcode::kMapExists:
    case Opcode::kVecExtract:
    case Opcode::kVecArgmax:
    case Opcode::kVecDot:
    case Opcode::kMlCall:
      return true;
    default:
      return false;
  }
}

bool ReadsScalarDst(Opcode opcode) {
  switch (opcode) {
    // Two-operand ALU forms read-modify-write dst.
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kMod:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kAshr:
    case Opcode::kAddImm:
    case Opcode::kSubImm:
    case Opcode::kMulImm:
    case Opcode::kDivImm:
    case Opcode::kModImm:
    case Opcode::kAndImm:
    case Opcode::kOrImm:
    case Opcode::kXorImm:
    case Opcode::kShlImm:
    case Opcode::kShrImm:
    case Opcode::kAshrImm:
    case Opcode::kNeg:
    // Conditional branches compare dst.
    case Opcode::kJeq:
    case Opcode::kJne:
    case Opcode::kJlt:
    case Opcode::kJle:
    case Opcode::kJgt:
    case Opcode::kJge:
    case Opcode::kJset:
    case Opcode::kJeqImm:
    case Opcode::kJneImm:
    case Opcode::kJltImm:
    case Opcode::kJleImm:
    case Opcode::kJgtImm:
    case Opcode::kJgeImm:
    case Opcode::kJsetImm:
    // Stores and ctxt/map writes read their key/value from dst.
    case Opcode::kStCtxt:
    case Opcode::kMapUpdate:
    // kVecDot reads dst as the left vector operand, but dst is a vector
    // register there; handled by vector tracking instead.
      return true;
    default:
      return false;
  }
}

bool ReadsScalarSrc(Opcode opcode) {
  switch (opcode) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kMod:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kAshr:
    case Opcode::kMov:
    case Opcode::kJeq:
    case Opcode::kJne:
    case Opcode::kJlt:
    case Opcode::kJle:
    case Opcode::kJgt:
    case Opcode::kJge:
    case Opcode::kJset:
    case Opcode::kStStack:
    case Opcode::kLdCtxt:
    case Opcode::kStCtxt:
    case Opcode::kMatchCtxt:
    case Opcode::kMapLookup:
    case Opcode::kMapExists:
    case Opcode::kMapUpdate:
    case Opcode::kMapDelete:
    case Opcode::kVecLdCtxt:   // src is the ctxt key (scalar)
    case Opcode::kScalarVal:   // src is the scalar value to insert
      return true;
    default:
      return false;
  }
}

std::string_view HelperName(HelperId id) {
  switch (id) {
    case HelperId::kGetTime: return "get_time";
    case HelperId::kRecordSample: return "record_sample";
    case HelperId::kHistoryAppend: return "history_append";
    case HelperId::kHistoryGet: return "history_get";
    case HelperId::kHistoryLen: return "history_len";
    case HelperId::kRateLimitCheck: return "rate_limit_check";
    case HelperId::kDpNoise: return "dp_noise";
    case HelperId::kPrefetchEmit: return "prefetch_emit";
    case HelperId::kSetPriorityHint: return "set_priority_hint";
    case HelperId::kPredictionLog: return "prediction_log";
    case HelperId::kHelperCount: break;
  }
  return "invalid_helper";
}

}  // namespace rkd
