// Fluent builder for BytecodePrograms with label-based branching.
//
// This is the "constrained C compiler" stand-in from section 3.1: RMT actions
// in this repo are written against the Assembler API and lowered to bytecode.
// Branch targets are symbolic Labels resolved at Build() time, so forward
// jumps never require hand-computed offsets.
#ifndef SRC_BYTECODE_ASSEMBLER_H_
#define SRC_BYTECODE_ASSEMBLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/bytecode/isa.h"
#include "src/bytecode/program.h"

namespace rkd {

class Assembler {
 public:
  // Opaque forward-branch target. Create with NewLabel(), place with Bind().
  class Label {
   public:
    Label() : id_(-1) {}

   private:
    friend class Assembler;
    explicit Label(int id) : id_(id) {}
    int id_;
  };

  explicit Assembler(std::string name, HookKind hook_kind = HookKind::kGeneric);

  // --- Labels ---
  Label NewLabel();
  Assembler& Bind(Label label);

  // --- Scalar ALU ---
  Assembler& Add(int dst, int src);
  Assembler& Sub(int dst, int src);
  Assembler& Mul(int dst, int src);
  Assembler& Div(int dst, int src);
  Assembler& Mod(int dst, int src);
  Assembler& And(int dst, int src);
  Assembler& Or(int dst, int src);
  Assembler& Xor(int dst, int src);
  Assembler& Shl(int dst, int src);
  Assembler& Shr(int dst, int src);
  Assembler& Ashr(int dst, int src);
  Assembler& Mov(int dst, int src);
  Assembler& AddImm(int dst, int64_t imm);
  Assembler& SubImm(int dst, int64_t imm);
  Assembler& MulImm(int dst, int64_t imm);
  Assembler& DivImm(int dst, int64_t imm);
  Assembler& ModImm(int dst, int64_t imm);
  Assembler& AndImm(int dst, int64_t imm);
  Assembler& OrImm(int dst, int64_t imm);
  Assembler& XorImm(int dst, int64_t imm);
  Assembler& ShlImm(int dst, int64_t imm);
  Assembler& ShrImm(int dst, int64_t imm);
  Assembler& AshrImm(int dst, int64_t imm);
  Assembler& MovImm(int dst, int64_t imm);
  Assembler& Neg(int dst);

  // --- Branches ---
  Assembler& Ja(Label target);
  Assembler& Jeq(int dst, int src, Label target);
  Assembler& Jne(int dst, int src, Label target);
  Assembler& Jlt(int dst, int src, Label target);
  Assembler& Jle(int dst, int src, Label target);
  Assembler& Jgt(int dst, int src, Label target);
  Assembler& Jge(int dst, int src, Label target);
  Assembler& Jset(int dst, int src, Label target);
  Assembler& JeqImm(int dst, int64_t imm, Label target);
  Assembler& JneImm(int dst, int64_t imm, Label target);
  Assembler& JltImm(int dst, int64_t imm, Label target);
  Assembler& JleImm(int dst, int64_t imm, Label target);
  Assembler& JgtImm(int dst, int64_t imm, Label target);
  Assembler& JgeImm(int dst, int64_t imm, Label target);
  Assembler& JsetImm(int dst, int64_t imm, Label target);

  // --- Stack ---
  Assembler& LdStack(int dst, int32_t offset);
  Assembler& StStack(int32_t offset, int src);
  Assembler& StStackImm(int32_t offset, int64_t imm);

  // --- Execution context ---
  Assembler& LdCtxt(int dst, int key_reg, int32_t slot);
  Assembler& StCtxt(int key_reg, int32_t slot, int src);
  Assembler& MatchCtxt(int dst, int key_reg);

  // --- Maps ---
  Assembler& MapLookup(int dst, int key_reg, int64_t map_id);
  Assembler& MapExists(int dst, int key_reg, int64_t map_id);
  Assembler& MapUpdate(int64_t map_id, int key_reg, int value_reg);
  Assembler& MapDelete(int64_t map_id, int key_reg);

  // --- ML vector ops ---
  Assembler& VecLdCtxt(int vdst, int key_reg);
  Assembler& VecStCtxt(int key_reg, int vsrc);
  Assembler& VecZero(int vdst);
  Assembler& ScalarVal(int vdst, int32_t lane, int src);
  Assembler& VecExtract(int dst, int vsrc, int32_t lane);
  Assembler& MatMul(int vdst, int vsrc, int64_t tensor_id);
  Assembler& VecAddT(int vdst, int64_t tensor_id);
  Assembler& VecAdd(int vdst, int vsrc);
  Assembler& VecRelu(int vdst, int vsrc);
  Assembler& VecArgmax(int dst, int vsrc);
  Assembler& VecDot(int vdst, int vsrc);

  // --- Calls / control ---
  Assembler& Call(HelperId helper);
  Assembler& MlCall(int dst, int vsrc, int64_t model_id);
  Assembler& TailCall(int64_t table_id);
  Assembler& Exit();

  // Declared resources (copied into the built program).
  Assembler& DeclareMaps(uint32_t count);
  Assembler& DeclareModels(uint32_t count);
  Assembler& DeclareTensors(uint32_t count);
  Assembler& DeclareTables(uint32_t count);

  size_t current_offset() const { return code_.size(); }

  // Resolves labels and returns the program. Fails if any label used in a
  // branch was never bound, or a label was bound twice.
  Result<BytecodeProgram> Build();

 private:
  Assembler& Emit(Opcode opcode, int dst, int src, int32_t offset, int64_t imm);
  Assembler& EmitBranch(Opcode opcode, int dst, int src, int64_t imm, Label target);

  BytecodeProgram program_;
  std::vector<Instruction> code_;
  std::vector<int64_t> label_positions_;  // -1 until bound
  struct Fixup {
    size_t instruction_index;
    int label_id;
  };
  std::vector<Fixup> fixups_;
};

}  // namespace rkd

#endif  // SRC_BYTECODE_ASSEMBLER_H_
