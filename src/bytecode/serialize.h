// Binary wire format for BytecodePrograms.
//
// The paper's programs are "compiled into machine-independent bytecode, and
// installed via a system call" — which implies a serialized form crossing
// the user/kernel boundary. This is that form: a versioned, little-endian
// encoding of the program header (name, hook kind, resource declarations)
// and the fixed-width instruction stream. Deserialization validates sizes
// and opcode ranges; semantic validation stays the verifier's job.
#ifndef SRC_BYTECODE_SERIALIZE_H_
#define SRC_BYTECODE_SERIALIZE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/status.h"
#include "src/bytecode/program.h"

namespace rkd {

inline constexpr uint32_t kBytecodeMagic = 0x42444b52;  // "RKDB"
inline constexpr uint32_t kBytecodeVersion = 1;

std::vector<uint8_t> SerializeProgram(const BytecodeProgram& program);

Result<BytecodeProgram> DeserializeProgram(std::span<const uint8_t> bytes);

}  // namespace rkd

#endif  // SRC_BYTECODE_SERIALIZE_H_
