// The RMT bytecode instruction set.
//
// RMT programs are compiled (here: assembled) into machine-independent
// bytecode and installed via the syscall-like control-plane API (paper
// section 3.1). The ISA follows eBPF's general shape — a fixed-width
// register machine with a small stack and helper calls — extended with the
// paper's dedicated ML instruction set (RMT_VECTOR_LD, RMT_MAT_MUL,
// RMT_SCALAR_VAL, ...) patterned after neural-processor ISAs, and with
// context instructions (RMT_LD_CTXT, RMT_MATCH_CTXT, RMT_ST_CTXT) that give
// constant-time access to the execution context instead of walking kernel
// data structures (section 2.2).
//
// Register model:
//   r0        return value / result of helper and ML calls
//   r1..r5    arguments into the program and into helper calls
//   r6..r9    callee-saved scratch
//   r10       read-only frame pointer to the top of the 512-byte stack
//   v0..v7    vector registers, kVectorLanes x int32 (Q16.16 raw) lanes
//
// Control flow: forward jumps only (the verifier rejects back-edges), so
// every admitted program trivially has bounded execution, exactly as in
// classic eBPF. Loops over data live inside single vector instructions or
// helpers, both of which have statically checkable cost.
#ifndef SRC_BYTECODE_ISA_H_
#define SRC_BYTECODE_ISA_H_

#include <cstdint>
#include <string_view>

namespace rkd {

inline constexpr int kNumScalarRegs = 11;  // r0..r10
inline constexpr int kCtxtScalarSlots = 16;     // addressable kLdCtxt/kStCtxt slots
inline constexpr int kCtxtHistoryCapacity = 64; // per-key history ring entries
inline constexpr int kNumVectorRegs = 8;   // v0..v7
inline constexpr int kVectorLanes = 32;    // int32 lanes per vector register
inline constexpr int kStackSize = 512;     // bytes, addressed off r10
inline constexpr int kFramePointerReg = 10;
inline constexpr int kMaxTailCallDepth = 4;  // cascaded models via TAIL_CALL

enum class Opcode : uint16_t {
  // --- Scalar ALU, register form: dst = dst <op> src ---
  kAdd, kSub, kMul, kDiv, kMod, kAnd, kOr, kXor, kShl, kShr, kAshr, kMov,
  // --- Scalar ALU, immediate form: dst = dst <op> imm ---
  kAddImm, kSubImm, kMulImm, kDivImm, kModImm, kAndImm, kOrImm, kXorImm,
  kShlImm, kShrImm, kAshrImm, kMovImm,
  kNeg,  // dst = -dst

  // --- Branches (offset is relative to the next instruction) ---
  kJa,                                        // unconditional
  kJeq, kJne, kJlt, kJle, kJgt, kJge, kJset,  // compare dst with src
  kJeqImm, kJneImm, kJltImm, kJleImm, kJgtImm, kJgeImm, kJsetImm,  // with imm

  // --- Stack (offset is a byte displacement below r10; 8-byte slots) ---
  kLdStack,    // dst = *(u64*)(r10 + offset)
  kStStack,    // *(u64*)(r10 + offset) = src
  kStStackImm, // *(u64*)(r10 + offset) = imm

  // --- Execution context (RMT_CTXT key/value store) ---
  kLdCtxt,     // dst = ctxt[src].slot[offset]; 0 if key absent
  kStCtxt,     // ctxt[dst].slot[offset] = src (creates the key if absent)
  kMatchCtxt,  // dst = ctxt contains key in src ? 1 : 0

  // --- Maps (eBPF-style; imm selects the map declared by the program) ---
  kMapLookup,  // dst = map[imm][key in src]; 0 if absent
  kMapExists,  // dst = map[imm] contains key in src ? 1 : 0
  kMapUpdate,  // map[imm][key in dst] = src
  kMapDelete,  // delete map[imm][key in src]

  // --- ML vector instructions (the dedicated ML ISA of section 3.2) ---
  kVecLdCtxt,   // v[dst] = feature vector of ctxt[src] (missing key -> zeros)
  kVecStCtxt,   // feature vector of ctxt[dst] = v[src]
  kVecZero,     // v[dst] = 0
  kScalarVal,   // v[dst].lane[offset] = r[src]      (RMT_SCALAR_VAL)
  kVecExtract,  // r[dst] = v[src].lane[offset]
  kMatMul,      // v[dst] = tensor[imm] * v[src]     (RMT_MAT_MUL, Q16.16)
  kVecAddT,     // v[dst] += tensor[imm]             (bias add)
  kVecAdd,      // v[dst] += v[src]
  kVecRelu,     // v[dst] = relu(v[src])
  kVecArgmax,   // r[dst] = index of max lane of v[src]
  kVecDot,      // r[dst] = dot(v[dst], v[src]) in Q16.16

  // --- Calls and control ---
  kCall,      // r0 = helper[imm](r1..r5)
  kMlCall,    // r[dst] = model[imm].Predict(v[src]) (class id or Q16.16 score)
  kTailCall,  // jump to the action program of table entry imm; no return
  kExit,      // return r0 to the hook site

  kOpcodeCount,
};

// Fixed-width instruction. 16 bytes, mirroring eBPF's fixed encoding so the
// verifier and both execution tiers can decode without a variable-length
// parser.
struct Instruction {
  Opcode opcode = Opcode::kExit;
  uint8_t dst = 0;     // scalar or vector register number, per opcode
  uint8_t src = 0;     // scalar or vector register number, per opcode
  int32_t offset = 0;  // branch displacement, stack offset, ctxt slot, or lane
  int64_t imm = 0;     // immediate, helper id, map id, tensor id, or model id

  friend bool operator==(const Instruction& a, const Instruction& b) {
    return a.opcode == b.opcode && a.dst == b.dst && a.src == b.src && a.offset == b.offset &&
           a.imm == b.imm;
  }
};

// Stable mnemonic for an opcode ("add", "jeq_imm", "mat_mul", ...).
std::string_view OpcodeName(Opcode opcode);

// Classification predicates used by the verifier and the JIT pre-decoder.
bool IsBranch(Opcode opcode);       // any jump, conditional or not
bool IsConditional(Opcode opcode);  // conditional jump
bool IsVectorOp(Opcode opcode);     // touches the vector register file
bool HasScalarDst(Opcode opcode);   // writes a scalar register
bool ReadsScalarDst(Opcode opcode); // reads dst before writing it
bool ReadsScalarSrc(Opcode opcode); // reads the src scalar register

// Well-known helper functions callable via kCall. Each hook kind whitelists a
// subset (see verifier); e.g. the prefetch-emit helper is meaningless — and
// therefore forbidden — inside a scheduler hook.
enum class HelperId : int64_t {
  kGetTime = 0,        // r0 = current virtual time (ns)
  kRecordSample = 1,   // record (r1=key, r2=value) into the monitoring ring
  kHistoryAppend = 2,  // append r2 to the per-key history of r1
  kHistoryGet = 3,     // r0 = history[r1] element r2 positions back (0 = last)
  kHistoryLen = 4,     // r0 = number of recorded history entries for r1
  kRateLimitCheck = 5, // r0 = 1 if key r1 may consume r2 units, else 0
  kDpNoise = 6,        // r0 = r1 + Laplace noise at the table's epsilon
  kPrefetchEmit = 7,   // request prefetch of page r1 (+ r2 following pages)
  kSetPriorityHint = 8,// scheduling hint: bias task r1 priority by r2
  kPredictionLog = 9,  // record prediction r2 for key r1 (accuracy tracking)
  kHelperCount,
};

std::string_view HelperName(HelperId id);

}  // namespace rkd

#endif  // SRC_BYTECODE_ISA_H_
