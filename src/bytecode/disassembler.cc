#include "src/bytecode/disassembler.h"

#include <sstream>

namespace rkd {

namespace {

std::string R(int reg) { return "r" + std::to_string(reg); }
std::string V(int reg) { return "v" + std::to_string(reg); }
std::string T(int64_t id) { return "t" + std::to_string(id); }
std::string Rel(int32_t offset) {
  return offset >= 0 ? "+" + std::to_string(offset) : std::to_string(offset);
}

}  // namespace

std::string DisassembleInstruction(const Instruction& insn) {
  std::ostringstream out;
  out << OpcodeName(insn.opcode);
  switch (insn.opcode) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kMod:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kAshr:
    case Opcode::kMov:
      out << " " << R(insn.dst) << ", " << R(insn.src);
      break;
    case Opcode::kAddImm:
    case Opcode::kSubImm:
    case Opcode::kMulImm:
    case Opcode::kDivImm:
    case Opcode::kModImm:
    case Opcode::kAndImm:
    case Opcode::kOrImm:
    case Opcode::kXorImm:
    case Opcode::kShlImm:
    case Opcode::kShrImm:
    case Opcode::kAshrImm:
    case Opcode::kMovImm:
      out << " " << R(insn.dst) << ", " << insn.imm;
      break;
    case Opcode::kNeg:
      out << " " << R(insn.dst);
      break;
    case Opcode::kJa:
      out << " " << Rel(insn.offset);
      break;
    case Opcode::kJeq:
    case Opcode::kJne:
    case Opcode::kJlt:
    case Opcode::kJle:
    case Opcode::kJgt:
    case Opcode::kJge:
    case Opcode::kJset:
      out << " " << R(insn.dst) << ", " << R(insn.src) << ", " << Rel(insn.offset);
      break;
    case Opcode::kJeqImm:
    case Opcode::kJneImm:
    case Opcode::kJltImm:
    case Opcode::kJleImm:
    case Opcode::kJgtImm:
    case Opcode::kJgeImm:
    case Opcode::kJsetImm:
      out << " " << R(insn.dst) << ", " << insn.imm << ", " << Rel(insn.offset);
      break;
    case Opcode::kLdStack:
      out << " " << R(insn.dst) << ", [fp" << Rel(insn.offset) << "]";
      break;
    case Opcode::kStStack:
      out << " [fp" << Rel(insn.offset) << "], " << R(insn.src);
      break;
    case Opcode::kStStackImm:
      out << " [fp" << Rel(insn.offset) << "], " << insn.imm;
      break;
    case Opcode::kLdCtxt:
      out << " " << R(insn.dst) << ", ctxt[" << R(insn.src) << "]." << insn.offset;
      break;
    case Opcode::kStCtxt:
      out << " ctxt[" << R(insn.dst) << "]." << insn.offset << ", " << R(insn.src);
      break;
    case Opcode::kMatchCtxt:
      out << " " << R(insn.dst) << ", ctxt[" << R(insn.src) << "]";
      break;
    case Opcode::kMapLookup:
    case Opcode::kMapExists:
      out << " " << R(insn.dst) << ", map" << insn.imm << "[" << R(insn.src) << "]";
      break;
    case Opcode::kMapUpdate:
      out << " map" << insn.imm << "[" << R(insn.dst) << "], " << R(insn.src);
      break;
    case Opcode::kMapDelete:
      out << " map" << insn.imm << "[" << R(insn.src) << "]";
      break;
    case Opcode::kVecLdCtxt:
      out << " " << V(insn.dst) << ", ctxt[" << R(insn.src) << "]";
      break;
    case Opcode::kVecStCtxt:
      out << " ctxt[" << R(insn.dst) << "], " << V(insn.src);
      break;
    case Opcode::kVecZero:
      out << " " << V(insn.dst);
      break;
    case Opcode::kScalarVal:
      out << " " << V(insn.dst) << "[" << insn.offset << "], " << R(insn.src);
      break;
    case Opcode::kVecExtract:
      out << " " << R(insn.dst) << ", " << V(insn.src) << "[" << insn.offset << "]";
      break;
    case Opcode::kMatMul:
      out << " " << V(insn.dst) << ", " << V(insn.src) << ", " << T(insn.imm);
      break;
    case Opcode::kVecAddT:
      out << " " << V(insn.dst) << ", " << T(insn.imm);
      break;
    case Opcode::kVecAdd:
    case Opcode::kVecRelu:
      out << " " << V(insn.dst) << ", " << V(insn.src);
      break;
    case Opcode::kVecArgmax:
      out << " " << R(insn.dst) << ", " << V(insn.src);
      break;
    case Opcode::kVecDot:
      out << " " << R(insn.dst) << ", " << V(insn.dst) << ", " << V(insn.src);
      break;
    case Opcode::kCall:
      out << " " << HelperName(static_cast<HelperId>(insn.imm));
      break;
    case Opcode::kMlCall:
      out << " " << R(insn.dst) << ", model" << insn.imm << "(" << V(insn.src) << ")";
      break;
    case Opcode::kTailCall:
      out << " table" << insn.imm;
      break;
    case Opcode::kExit:
      break;
    case Opcode::kOpcodeCount:
      out << " <invalid>";
      break;
  }
  return out.str();
}

std::string Disassemble(const BytecodeProgram& program) {
  std::ostringstream out;
  out << "; program '" << program.name << "' hook=" << HookKindName(program.hook_kind)
      << " maps=" << program.num_maps << " models=" << program.num_models
      << " tensors=" << program.num_tensors << " tables=" << program.num_tables << "\n";
  for (size_t i = 0; i < program.code.size(); ++i) {
    out << "  " << i << ": " << DisassembleInstruction(program.code[i]) << "\n";
  }
  return out.str();
}

}  // namespace rkd
