// Text-assembly front end: the inverse of the disassembler.
//
// Section 3.1: "An RMT program can be written in constrained C or a
// domain-specific language and compiled into machine-independent bytecode."
// This is that DSL at its lowest level — the textual form of the ISA, with
// labels, comments, and resource declarations — so programs can live in
// files, travel over the control-plane API as text, and round-trip through
// the disassembler.
//
// Grammar (line-oriented):
//
//   ; comment (also after instructions)
//   .name classify_key            — program name
//   .hook mem_prefetch            — hook kind (see HookKindName)
//   .maps 2                       — resource declarations
//   .models 1 / .tensors 3 / .tables 2
//   label:                        — branch target
//   add r1, r2                    — mnemonics exactly as the disassembler
//   mov_imm r0, -5                  prints them, except branch targets are
//   jeq_imm r3, 42, label           label names instead of +offsets
//   ld_stack r2, [fp-8]
//   st_ctxt ctxt[r1].3, r2
//   map_lookup r2, map0[r1]
//   scalar_val v0[3], r2
//   mat_mul v1, v0, t2
//   call history_append
//   ml_call r0, model0(v0)
//   tail_call table1
//   exit
#ifndef SRC_BYTECODE_PARSER_H_
#define SRC_BYTECODE_PARSER_H_

#include <string_view>

#include "src/base/status.h"
#include "src/bytecode/program.h"

namespace rkd {

// Parses a whole program. Errors name the offending line and token.
Result<BytecodeProgram> ParseAssembly(std::string_view text);

}  // namespace rkd

#endif  // SRC_BYTECODE_PARSER_H_
