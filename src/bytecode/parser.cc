#include "src/bytecode/parser.h"

#include <cctype>
#include <charconv>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace rkd {

namespace {

struct Line {
  size_t number;                    // 1-based source line
  std::vector<std::string> tokens;  // mnemonic + operands, comma-split
};

// Splits a source line into tokens: the first whitespace-separated word is
// the mnemonic; the rest splits on commas with surrounding space trimmed.
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  // Strip comment.
  const size_t semicolon = line.find(';');
  if (semicolon != std::string_view::npos) {
    line = line.substr(0, semicolon);
  }
  // Leading/trailing whitespace.
  const auto is_space = [](char c) { return c == ' ' || c == '\t' || c == '\r'; };
  while (!line.empty() && is_space(line.front())) {
    line.remove_prefix(1);
  }
  while (!line.empty() && is_space(line.back())) {
    line.remove_suffix(1);
  }
  if (line.empty()) {
    return tokens;
  }
  // Mnemonic.
  size_t end = 0;
  while (end < line.size() && !is_space(line[end])) {
    ++end;
  }
  tokens.emplace_back(line.substr(0, end));
  line.remove_prefix(end);
  // Operands, comma-separated.
  while (!line.empty()) {
    while (!line.empty() && (is_space(line.front()) || line.front() == ',')) {
      line.remove_prefix(1);
    }
    if (line.empty()) {
      break;
    }
    size_t stop = 0;
    while (stop < line.size() && line[stop] != ',') {
      ++stop;
    }
    std::string_view token = line.substr(0, stop);
    while (!token.empty() && is_space(token.back())) {
      token.remove_suffix(1);
    }
    tokens.emplace_back(token);
    line.remove_prefix(stop);
  }
  return tokens;
}

Status ParseError(size_t line, const std::string& message) {
  return InvalidArgumentError("line " + std::to_string(line) + ": " + message);
}

std::optional<int64_t> ParseInt(std::string_view token) {
  if (token.empty()) {
    return std::nullopt;
  }
  int64_t value = 0;
  const char* begin = token.data();
  const char* end = token.data() + token.size();
  if (token.front() == '+') {
    ++begin;  // std::from_chars rejects a leading '+'
  }
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return std::nullopt;
  }
  return value;
}

// "r7" -> 7, "v3" -> 3, "t2" -> 2, "table1" -> 1.
std::optional<int64_t> ParsePrefixed(std::string_view token, std::string_view prefix) {
  if (token.size() <= prefix.size() || token.substr(0, prefix.size()) != prefix) {
    return std::nullopt;
  }
  return ParseInt(token.substr(prefix.size()));
}

// "mapN[rK]" -> (N, K).
std::optional<std::pair<int64_t, int64_t>> ParseMapRef(std::string_view token) {
  if (token.substr(0, 3) != "map") {
    return std::nullopt;
  }
  const size_t open = token.find('[');
  if (open == std::string_view::npos || token.back() != ']') {
    return std::nullopt;
  }
  const auto map_id = ParseInt(token.substr(3, open - 3));
  const auto reg = ParsePrefixed(token.substr(open + 1, token.size() - open - 2), "r");
  if (!map_id || !reg) {
    return std::nullopt;
  }
  return std::make_pair(*map_id, *reg);
}

// "ctxt[rK]" -> K (slot absent), "ctxt[rK].S" -> (K, S).
struct CtxtRef {
  int64_t reg;
  std::optional<int64_t> slot;
};
std::optional<CtxtRef> ParseCtxtRef(std::string_view token) {
  if (token.substr(0, 5) != "ctxt[") {
    return std::nullopt;
  }
  const size_t close = token.find(']');
  if (close == std::string_view::npos) {
    return std::nullopt;
  }
  const auto reg = ParsePrefixed(token.substr(5, close - 5), "r");
  if (!reg) {
    return std::nullopt;
  }
  CtxtRef out{*reg, std::nullopt};
  if (close + 1 < token.size()) {
    if (token[close + 1] != '.') {
      return std::nullopt;
    }
    const auto slot = ParseInt(token.substr(close + 2));
    if (!slot) {
      return std::nullopt;
    }
    out.slot = slot;
  }
  return out;
}

// "[fp-8]" / "[fp+0]" -> -8 / 0.
std::optional<int64_t> ParseStackRef(std::string_view token) {
  if (token.substr(0, 3) != "[fp" || token.back() != ']') {
    return std::nullopt;
  }
  return ParseInt(token.substr(3, token.size() - 4));
}

// "v0[3]" -> (0, 3).
std::optional<std::pair<int64_t, int64_t>> ParseLaneRef(std::string_view token) {
  if (token.empty() || token.front() != 'v') {
    return std::nullopt;
  }
  const size_t open = token.find('[');
  if (open == std::string_view::npos || token.back() != ']') {
    return std::nullopt;
  }
  const auto reg = ParseInt(token.substr(1, open - 1));
  const auto lane = ParseInt(token.substr(open + 1, token.size() - open - 2));
  if (!reg || !lane) {
    return std::nullopt;
  }
  return std::make_pair(*reg, *lane);
}

// "modelN(vK)" -> (N, K).
std::optional<std::pair<int64_t, int64_t>> ParseModelRef(std::string_view token) {
  if (token.substr(0, 5) != "model") {
    return std::nullopt;
  }
  const size_t open = token.find('(');
  if (open == std::string_view::npos || token.back() != ')') {
    return std::nullopt;
  }
  const auto model = ParseInt(token.substr(5, open - 5));
  const auto reg = ParsePrefixed(token.substr(open + 1, token.size() - open - 2), "v");
  if (!model || !reg) {
    return std::nullopt;
  }
  return std::make_pair(*model, *reg);
}

std::optional<HelperId> ParseHelper(std::string_view token) {
  for (int64_t id = 0; id < static_cast<int64_t>(HelperId::kHelperCount); ++id) {
    if (HelperName(static_cast<HelperId>(id)) == token) {
      return static_cast<HelperId>(id);
    }
  }
  return std::nullopt;
}

const std::unordered_map<std::string_view, Opcode>& MnemonicTable() {
  static const auto* table = [] {
    auto* map = new std::unordered_map<std::string_view, Opcode>();
    for (uint16_t op = 0; op < static_cast<uint16_t>(Opcode::kOpcodeCount); ++op) {
      map->emplace(OpcodeName(static_cast<Opcode>(op)), static_cast<Opcode>(op));
    }
    return map;
  }();
  return *table;
}

std::optional<HookKind> ParseHookKind(std::string_view token) {
  for (HookKind kind : {HookKind::kGeneric, HookKind::kMemPrefetch, HookKind::kMemAccess,
                        HookKind::kSchedMigrate, HookKind::kSchedTick, HookKind::kNetRx}) {
    if (HookKindName(kind) == token) {
      return kind;
    }
  }
  return std::nullopt;
}

}  // namespace

Result<BytecodeProgram> ParseAssembly(std::string_view text) {
  BytecodeProgram program;
  program.name = "anonymous";

  // Pass 0: split into lines and tokenize; collect label positions.
  std::vector<Line> lines;
  std::unordered_map<std::string, int64_t> labels;  // label -> instruction index
  {
    size_t line_number = 0;
    size_t instruction_index = 0;
    size_t start = 0;
    while (start <= text.size()) {
      size_t newline = text.find('\n', start);
      if (newline == std::string_view::npos) {
        newline = text.size();
      }
      ++line_number;
      const std::string_view raw = text.substr(start, newline - start);
      start = newline + 1;
      std::vector<std::string> tokens = Tokenize(raw);
      if (tokens.empty()) {
        continue;
      }
      if (tokens.front().back() == ':') {
        const std::string label = tokens.front().substr(0, tokens.front().size() - 1);
        if (label.empty()) {
          return ParseError(line_number, "empty label name");
        }
        if (labels.contains(label)) {
          return ParseError(line_number, "duplicate label '" + label + "'");
        }
        labels.emplace(label, static_cast<int64_t>(instruction_index));
        // Re-tokenize whatever follows the label so "label: insn ops" parses
        // the instruction with a proper mnemonic split.
        const size_t colon = raw.find(':');
        tokens = Tokenize(raw.substr(colon + 1));
        if (tokens.empty()) {
          continue;
        }
      }
      if (tokens.front().front() != '.') {
        ++instruction_index;
      }
      lines.push_back(Line{line_number, std::move(tokens)});
    }
  }

  // Pass 1: directives and instructions.
  const auto& mnemonics = MnemonicTable();
  int64_t pc = 0;
  for (const Line& line : lines) {
    const std::string& head = line.tokens.front();
    const auto operand = [&](size_t index) -> std::string_view {
      return index < line.tokens.size() - 1 ? std::string_view(line.tokens[index + 1])
                                            : std::string_view();
    };
    const size_t operand_count = line.tokens.size() - 1;

    if (head.front() == '.') {
      if (head == ".name" && operand_count == 1) {
        program.name = std::string(operand(0));
      } else if (head == ".hook" && operand_count == 1) {
        const auto kind = ParseHookKind(operand(0));
        if (!kind) {
          return ParseError(line.number, "unknown hook kind '" + std::string(operand(0)) + "'");
        }
        program.hook_kind = *kind;
      } else if (head == ".maps" && operand_count == 1) {
        const auto count = ParseInt(operand(0));
        if (!count || *count < 0) {
          return ParseError(line.number, "bad .maps count");
        }
        program.num_maps = static_cast<uint32_t>(*count);
      } else if (head == ".models" && operand_count == 1) {
        const auto count = ParseInt(operand(0));
        if (!count || *count < 0) {
          return ParseError(line.number, "bad .models count");
        }
        program.num_models = static_cast<uint32_t>(*count);
      } else if (head == ".tensors" && operand_count == 1) {
        const auto count = ParseInt(operand(0));
        if (!count || *count < 0) {
          return ParseError(line.number, "bad .tensors count");
        }
        program.num_tensors = static_cast<uint32_t>(*count);
      } else if (head == ".tables" && operand_count == 1) {
        const auto count = ParseInt(operand(0));
        if (!count || *count < 0) {
          return ParseError(line.number, "bad .tables count");
        }
        program.num_tables = static_cast<uint32_t>(*count);
      } else {
        return ParseError(line.number, "unknown directive '" + head + "'");
      }
      continue;
    }

    const auto mnemonic = mnemonics.find(head);
    if (mnemonic == mnemonics.end()) {
      return ParseError(line.number, "unknown mnemonic '" + head + "'");
    }
    Instruction insn;
    insn.opcode = mnemonic->second;

    const auto reg = [&](size_t index) { return ParsePrefixed(operand(index), "r"); };
    const auto vreg = [&](size_t index) { return ParsePrefixed(operand(index), "v"); };
    const auto imm = [&](size_t index) { return ParseInt(operand(index)); };
    // Branch target: a "+N"/"-N" relative offset or a label.
    const auto target = [&](size_t index) -> std::optional<int64_t> {
      const std::string_view token = operand(index);
      if (!token.empty() && (token.front() == '+' || token.front() == '-')) {
        return ParseInt(token);
      }
      const auto it = labels.find(std::string(token));
      if (it == labels.end()) {
        return std::nullopt;
      }
      return it->second - (pc + 1);  // label index -> relative offset
    };
    const auto bad = [&](const char* what) {
      return ParseError(line.number, std::string("bad operands for '") + head + "' (" + what +
                                         ")");
    };

    switch (insn.opcode) {
      // dst, src
      case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul: case Opcode::kDiv:
      case Opcode::kMod: case Opcode::kAnd: case Opcode::kOr: case Opcode::kXor:
      case Opcode::kShl: case Opcode::kShr: case Opcode::kAshr: case Opcode::kMov: {
        const auto d = reg(0);
        const auto s = reg(1);
        if (operand_count != 2 || !d || !s) {
          return bad("expect rD, rS");
        }
        insn.dst = static_cast<uint8_t>(*d);
        insn.src = static_cast<uint8_t>(*s);
        break;
      }
      // dst, imm
      case Opcode::kAddImm: case Opcode::kSubImm: case Opcode::kMulImm:
      case Opcode::kDivImm: case Opcode::kModImm: case Opcode::kAndImm:
      case Opcode::kOrImm: case Opcode::kXorImm: case Opcode::kShlImm:
      case Opcode::kShrImm: case Opcode::kAshrImm: case Opcode::kMovImm: {
        const auto d = reg(0);
        const auto value = imm(1);
        if (operand_count != 2 || !d || !value) {
          return bad("expect rD, imm");
        }
        insn.dst = static_cast<uint8_t>(*d);
        insn.imm = *value;
        break;
      }
      case Opcode::kNeg: {
        const auto d = reg(0);
        if (operand_count != 1 || !d) {
          return bad("expect rD");
        }
        insn.dst = static_cast<uint8_t>(*d);
        break;
      }
      case Opcode::kJa: {
        const auto t = target(0);
        if (operand_count != 1 || !t) {
          return bad("expect label or +offset");
        }
        insn.offset = static_cast<int32_t>(*t);
        break;
      }
      case Opcode::kJeq: case Opcode::kJne: case Opcode::kJlt: case Opcode::kJle:
      case Opcode::kJgt: case Opcode::kJge: case Opcode::kJset: {
        const auto d = reg(0);
        const auto s = reg(1);
        const auto t = target(2);
        if (operand_count != 3 || !d || !s || !t) {
          return bad("expect rD, rS, label");
        }
        insn.dst = static_cast<uint8_t>(*d);
        insn.src = static_cast<uint8_t>(*s);
        insn.offset = static_cast<int32_t>(*t);
        break;
      }
      case Opcode::kJeqImm: case Opcode::kJneImm: case Opcode::kJltImm:
      case Opcode::kJleImm: case Opcode::kJgtImm: case Opcode::kJgeImm:
      case Opcode::kJsetImm: {
        const auto d = reg(0);
        const auto value = imm(1);
        const auto t = target(2);
        if (operand_count != 3 || !d || !value || !t) {
          return bad("expect rD, imm, label");
        }
        insn.dst = static_cast<uint8_t>(*d);
        insn.imm = *value;
        insn.offset = static_cast<int32_t>(*t);
        break;
      }
      case Opcode::kLdStack: {
        const auto d = reg(0);
        const auto slot = ParseStackRef(operand(1));
        if (operand_count != 2 || !d || !slot) {
          return bad("expect rD, [fp-N]");
        }
        insn.dst = static_cast<uint8_t>(*d);
        insn.offset = static_cast<int32_t>(*slot);
        break;
      }
      case Opcode::kStStack: {
        const auto slot = ParseStackRef(operand(0));
        const auto s = reg(1);
        if (operand_count != 2 || !slot || !s) {
          return bad("expect [fp-N], rS");
        }
        insn.offset = static_cast<int32_t>(*slot);
        insn.src = static_cast<uint8_t>(*s);
        break;
      }
      case Opcode::kStStackImm: {
        const auto slot = ParseStackRef(operand(0));
        const auto value = imm(1);
        if (operand_count != 2 || !slot || !value) {
          return bad("expect [fp-N], imm");
        }
        insn.offset = static_cast<int32_t>(*slot);
        insn.imm = *value;
        break;
      }
      case Opcode::kLdCtxt: {
        const auto d = reg(0);
        const auto ref = ParseCtxtRef(operand(1));
        if (operand_count != 2 || !d || !ref || !ref->slot) {
          return bad("expect rD, ctxt[rK].S");
        }
        insn.dst = static_cast<uint8_t>(*d);
        insn.src = static_cast<uint8_t>(ref->reg);
        insn.offset = static_cast<int32_t>(*ref->slot);
        break;
      }
      case Opcode::kStCtxt: {
        const auto ref = ParseCtxtRef(operand(0));
        const auto s = reg(1);
        if (operand_count != 2 || !ref || !ref->slot || !s) {
          return bad("expect ctxt[rK].S, rS");
        }
        insn.dst = static_cast<uint8_t>(ref->reg);
        insn.offset = static_cast<int32_t>(*ref->slot);
        insn.src = static_cast<uint8_t>(*s);
        break;
      }
      case Opcode::kMatchCtxt: {
        const auto d = reg(0);
        const auto ref = ParseCtxtRef(operand(1));
        if (operand_count != 2 || !d || !ref || ref->slot) {
          return bad("expect rD, ctxt[rK]");
        }
        insn.dst = static_cast<uint8_t>(*d);
        insn.src = static_cast<uint8_t>(ref->reg);
        break;
      }
      case Opcode::kMapLookup: case Opcode::kMapExists: {
        const auto d = reg(0);
        const auto map_ref = ParseMapRef(operand(1));
        if (operand_count != 2 || !d || !map_ref) {
          return bad("expect rD, mapN[rK]");
        }
        insn.dst = static_cast<uint8_t>(*d);
        insn.imm = map_ref->first;
        insn.src = static_cast<uint8_t>(map_ref->second);
        break;
      }
      case Opcode::kMapUpdate: {
        const auto map_ref = ParseMapRef(operand(0));
        const auto s = reg(1);
        if (operand_count != 2 || !map_ref || !s) {
          return bad("expect mapN[rK], rS");
        }
        insn.imm = map_ref->first;
        insn.dst = static_cast<uint8_t>(map_ref->second);
        insn.src = static_cast<uint8_t>(*s);
        break;
      }
      case Opcode::kMapDelete: {
        const auto map_ref = ParseMapRef(operand(0));
        if (operand_count != 1 || !map_ref) {
          return bad("expect mapN[rK]");
        }
        insn.imm = map_ref->first;
        insn.src = static_cast<uint8_t>(map_ref->second);
        break;
      }
      case Opcode::kVecLdCtxt: {
        const auto d = vreg(0);
        const auto ref = ParseCtxtRef(operand(1));
        if (operand_count != 2 || !d || !ref || ref->slot) {
          return bad("expect vD, ctxt[rK]");
        }
        insn.dst = static_cast<uint8_t>(*d);
        insn.src = static_cast<uint8_t>(ref->reg);
        break;
      }
      case Opcode::kVecStCtxt: {
        const auto ref = ParseCtxtRef(operand(0));
        const auto s = vreg(1);
        if (operand_count != 2 || !ref || ref->slot || !s) {
          return bad("expect ctxt[rK], vS");
        }
        insn.dst = static_cast<uint8_t>(ref->reg);
        insn.src = static_cast<uint8_t>(*s);
        break;
      }
      case Opcode::kVecZero: {
        const auto d = vreg(0);
        if (operand_count != 1 || !d) {
          return bad("expect vD");
        }
        insn.dst = static_cast<uint8_t>(*d);
        break;
      }
      case Opcode::kScalarVal: {
        const auto lane = ParseLaneRef(operand(0));
        const auto s = reg(1);
        if (operand_count != 2 || !lane || !s) {
          return bad("expect vD[lane], rS");
        }
        insn.dst = static_cast<uint8_t>(lane->first);
        insn.offset = static_cast<int32_t>(lane->second);
        insn.src = static_cast<uint8_t>(*s);
        break;
      }
      case Opcode::kVecExtract: {
        const auto d = reg(0);
        const auto lane = ParseLaneRef(operand(1));
        if (operand_count != 2 || !d || !lane) {
          return bad("expect rD, vS[lane]");
        }
        insn.dst = static_cast<uint8_t>(*d);
        insn.src = static_cast<uint8_t>(lane->first);
        insn.offset = static_cast<int32_t>(lane->second);
        break;
      }
      case Opcode::kMatMul: {
        const auto d = vreg(0);
        const auto s = vreg(1);
        const auto tensor = ParsePrefixed(operand(2), "t");
        if (operand_count != 3 || !d || !s || !tensor) {
          return bad("expect vD, vS, tN");
        }
        insn.dst = static_cast<uint8_t>(*d);
        insn.src = static_cast<uint8_t>(*s);
        insn.imm = *tensor;
        break;
      }
      case Opcode::kVecAddT: {
        const auto d = vreg(0);
        const auto tensor = ParsePrefixed(operand(1), "t");
        if (operand_count != 2 || !d || !tensor) {
          return bad("expect vD, tN");
        }
        insn.dst = static_cast<uint8_t>(*d);
        insn.imm = *tensor;
        break;
      }
      case Opcode::kVecAdd: case Opcode::kVecRelu: {
        const auto d = vreg(0);
        const auto s = vreg(1);
        if (operand_count != 2 || !d || !s) {
          return bad("expect vD, vS");
        }
        insn.dst = static_cast<uint8_t>(*d);
        insn.src = static_cast<uint8_t>(*s);
        break;
      }
      case Opcode::kVecArgmax: {
        const auto d = reg(0);
        const auto s = vreg(1);
        if (operand_count != 2 || !d || !s) {
          return bad("expect rD, vS");
        }
        insn.dst = static_cast<uint8_t>(*d);
        insn.src = static_cast<uint8_t>(*s);
        break;
      }
      case Opcode::kVecDot: {
        // Disassembles as "vec_dot rD, vD, vS" with rD == vD by convention;
        // accept both the 3-operand printed form and the 2-operand form.
        if (operand_count == 3) {
          const auto d = reg(0);
          const auto vd = vreg(1);
          const auto vs = vreg(2);
          if (!d || !vd || !vs || *d != *vd) {
            return bad("expect rD, vD, vS with D matching");
          }
          insn.dst = static_cast<uint8_t>(*vd);
          insn.src = static_cast<uint8_t>(*vs);
        } else if (operand_count == 2) {
          const auto vd = vreg(0);
          const auto vs = vreg(1);
          if (!vd || !vs) {
            return bad("expect vD, vS");
          }
          insn.dst = static_cast<uint8_t>(*vd);
          insn.src = static_cast<uint8_t>(*vs);
        } else {
          return bad("expect vD, vS");
        }
        break;
      }
      case Opcode::kCall: {
        const auto helper = ParseHelper(operand(0));
        if (operand_count != 1 || !helper) {
          return bad("expect a helper name");
        }
        insn.imm = static_cast<int64_t>(*helper);
        break;
      }
      case Opcode::kMlCall: {
        const auto d = reg(0);
        const auto model = ParseModelRef(operand(1));
        if (operand_count != 2 || !d || !model) {
          return bad("expect rD, modelN(vS)");
        }
        insn.dst = static_cast<uint8_t>(*d);
        insn.imm = model->first;
        insn.src = static_cast<uint8_t>(model->second);
        break;
      }
      case Opcode::kTailCall: {
        const auto table = ParsePrefixed(operand(0), "table");
        if (operand_count != 1 || !table) {
          return bad("expect tableN");
        }
        insn.imm = *table;
        break;
      }
      case Opcode::kExit: {
        if (operand_count != 0) {
          return bad("no operands");
        }
        break;
      }
      case Opcode::kOpcodeCount:
        return ParseError(line.number, "invalid opcode");
    }

    program.code.push_back(insn);
    ++pc;
  }

  if (program.code.empty()) {
    return InvalidArgumentError("program has no instructions");
  }
  return program;
}

}  // namespace rkd
