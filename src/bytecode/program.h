// BytecodeProgram: the unit of code the verifier admits and the VM executes.
//
// Besides the instruction stream, a program declares the resources it intends
// to touch — maps, model slots, weight tensors, and which hook kind it is
// written for. The verifier cross-checks every instruction against these
// declarations, so an admitted program can never reach a map or model it did
// not declare (the "restricted" property of section 2.2).
#ifndef SRC_BYTECODE_PROGRAM_H_
#define SRC_BYTECODE_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/bytecode/isa.h"

namespace rkd {

// The kernel subsystems rkd models expose hooks of these kinds. Hook kind
// determines the helper whitelist and the latency budget the verifier's cost
// model enforces (a scheduler decision has a far smaller budget than a
// prefetch decision, section 3.2).
enum class HookKind {
  kGeneric = 0,      // no subsystem-specific helpers
  kMemPrefetch,      // swap_cluster_readahead-style decision points
  kMemAccess,        // lookup_swap_cache-style data-collection points
  kSchedMigrate,     // can_migrate_task-style decision points
  kSchedTick,        // periodic scheduler accounting
  kNetRx,            // XDP-style per-packet receive decision points
};

std::string_view HookKindName(HookKind kind);

struct BytecodeProgram {
  std::string name;
  HookKind hook_kind = HookKind::kGeneric;
  std::vector<Instruction> code;

  // Declared resource id spaces. An instruction's imm must index into the
  // matching vector; the verifier enforces this statically.
  uint32_t num_maps = 0;     // valid map ids: [0, num_maps)
  uint32_t num_models = 0;   // valid model ids for kMlCall
  uint32_t num_tensors = 0;  // valid tensor ids for kMatMul / kVecAddT
  uint32_t num_tables = 0;   // valid tail-call targets

  size_t size() const { return code.size(); }
};

inline std::string_view HookKindName(HookKind kind) {
  switch (kind) {
    case HookKind::kGeneric:
      return "generic";
    case HookKind::kMemPrefetch:
      return "mem_prefetch";
    case HookKind::kMemAccess:
      return "mem_access";
    case HookKind::kSchedMigrate:
      return "sched_migrate";
    case HookKind::kSchedTick:
      return "sched_tick";
    case HookKind::kNetRx:
      return "net_rx";
  }
  return "unknown";
}

}  // namespace rkd

#endif  // SRC_BYTECODE_PROGRAM_H_
