#include "src/bytecode/assembler.h"

#include <utility>

namespace rkd {

Assembler::Assembler(std::string name, HookKind hook_kind) {
  program_.name = std::move(name);
  program_.hook_kind = hook_kind;
}

Assembler::Label Assembler::NewLabel() {
  label_positions_.push_back(-1);
  return Label(static_cast<int>(label_positions_.size()) - 1);
}

Assembler& Assembler::Bind(Label label) {
  // Binding an invalid or re-bound label is a programming error surfaced at
  // Build() time (position left poisoned) rather than silently accepted.
  if (label.id_ >= 0 && static_cast<size_t>(label.id_) < label_positions_.size() &&
      label_positions_[label.id_] == -1) {
    label_positions_[label.id_] = static_cast<int64_t>(code_.size());
  } else if (label.id_ >= 0 && static_cast<size_t>(label.id_) < label_positions_.size()) {
    label_positions_[label.id_] = -2;  // double bind
  }
  return *this;
}

Assembler& Assembler::Emit(Opcode opcode, int dst, int src, int32_t offset, int64_t imm) {
  Instruction insn;
  insn.opcode = opcode;
  insn.dst = static_cast<uint8_t>(dst);
  insn.src = static_cast<uint8_t>(src);
  insn.offset = offset;
  insn.imm = imm;
  code_.push_back(insn);
  return *this;
}

Assembler& Assembler::EmitBranch(Opcode opcode, int dst, int src, int64_t imm, Label target) {
  fixups_.push_back(Fixup{code_.size(), target.id_});
  return Emit(opcode, dst, src, 0, imm);
}

Assembler& Assembler::Add(int dst, int src) { return Emit(Opcode::kAdd, dst, src, 0, 0); }
Assembler& Assembler::Sub(int dst, int src) { return Emit(Opcode::kSub, dst, src, 0, 0); }
Assembler& Assembler::Mul(int dst, int src) { return Emit(Opcode::kMul, dst, src, 0, 0); }
Assembler& Assembler::Div(int dst, int src) { return Emit(Opcode::kDiv, dst, src, 0, 0); }
Assembler& Assembler::Mod(int dst, int src) { return Emit(Opcode::kMod, dst, src, 0, 0); }
Assembler& Assembler::And(int dst, int src) { return Emit(Opcode::kAnd, dst, src, 0, 0); }
Assembler& Assembler::Or(int dst, int src) { return Emit(Opcode::kOr, dst, src, 0, 0); }
Assembler& Assembler::Xor(int dst, int src) { return Emit(Opcode::kXor, dst, src, 0, 0); }
Assembler& Assembler::Shl(int dst, int src) { return Emit(Opcode::kShl, dst, src, 0, 0); }
Assembler& Assembler::Shr(int dst, int src) { return Emit(Opcode::kShr, dst, src, 0, 0); }
Assembler& Assembler::Ashr(int dst, int src) { return Emit(Opcode::kAshr, dst, src, 0, 0); }
Assembler& Assembler::Mov(int dst, int src) { return Emit(Opcode::kMov, dst, src, 0, 0); }

Assembler& Assembler::AddImm(int dst, int64_t imm) { return Emit(Opcode::kAddImm, dst, 0, 0, imm); }
Assembler& Assembler::SubImm(int dst, int64_t imm) { return Emit(Opcode::kSubImm, dst, 0, 0, imm); }
Assembler& Assembler::MulImm(int dst, int64_t imm) { return Emit(Opcode::kMulImm, dst, 0, 0, imm); }
Assembler& Assembler::DivImm(int dst, int64_t imm) { return Emit(Opcode::kDivImm, dst, 0, 0, imm); }
Assembler& Assembler::ModImm(int dst, int64_t imm) { return Emit(Opcode::kModImm, dst, 0, 0, imm); }
Assembler& Assembler::AndImm(int dst, int64_t imm) { return Emit(Opcode::kAndImm, dst, 0, 0, imm); }
Assembler& Assembler::OrImm(int dst, int64_t imm) { return Emit(Opcode::kOrImm, dst, 0, 0, imm); }
Assembler& Assembler::XorImm(int dst, int64_t imm) { return Emit(Opcode::kXorImm, dst, 0, 0, imm); }
Assembler& Assembler::ShlImm(int dst, int64_t imm) { return Emit(Opcode::kShlImm, dst, 0, 0, imm); }
Assembler& Assembler::ShrImm(int dst, int64_t imm) { return Emit(Opcode::kShrImm, dst, 0, 0, imm); }
Assembler& Assembler::AshrImm(int dst, int64_t imm) {
  return Emit(Opcode::kAshrImm, dst, 0, 0, imm);
}
Assembler& Assembler::MovImm(int dst, int64_t imm) { return Emit(Opcode::kMovImm, dst, 0, 0, imm); }
Assembler& Assembler::Neg(int dst) { return Emit(Opcode::kNeg, dst, 0, 0, 0); }

Assembler& Assembler::Ja(Label target) { return EmitBranch(Opcode::kJa, 0, 0, 0, target); }
Assembler& Assembler::Jeq(int dst, int src, Label target) {
  return EmitBranch(Opcode::kJeq, dst, src, 0, target);
}
Assembler& Assembler::Jne(int dst, int src, Label target) {
  return EmitBranch(Opcode::kJne, dst, src, 0, target);
}
Assembler& Assembler::Jlt(int dst, int src, Label target) {
  return EmitBranch(Opcode::kJlt, dst, src, 0, target);
}
Assembler& Assembler::Jle(int dst, int src, Label target) {
  return EmitBranch(Opcode::kJle, dst, src, 0, target);
}
Assembler& Assembler::Jgt(int dst, int src, Label target) {
  return EmitBranch(Opcode::kJgt, dst, src, 0, target);
}
Assembler& Assembler::Jge(int dst, int src, Label target) {
  return EmitBranch(Opcode::kJge, dst, src, 0, target);
}
Assembler& Assembler::Jset(int dst, int src, Label target) {
  return EmitBranch(Opcode::kJset, dst, src, 0, target);
}
Assembler& Assembler::JeqImm(int dst, int64_t imm, Label target) {
  return EmitBranch(Opcode::kJeqImm, dst, 0, imm, target);
}
Assembler& Assembler::JneImm(int dst, int64_t imm, Label target) {
  return EmitBranch(Opcode::kJneImm, dst, 0, imm, target);
}
Assembler& Assembler::JltImm(int dst, int64_t imm, Label target) {
  return EmitBranch(Opcode::kJltImm, dst, 0, imm, target);
}
Assembler& Assembler::JleImm(int dst, int64_t imm, Label target) {
  return EmitBranch(Opcode::kJleImm, dst, 0, imm, target);
}
Assembler& Assembler::JgtImm(int dst, int64_t imm, Label target) {
  return EmitBranch(Opcode::kJgtImm, dst, 0, imm, target);
}
Assembler& Assembler::JgeImm(int dst, int64_t imm, Label target) {
  return EmitBranch(Opcode::kJgeImm, dst, 0, imm, target);
}
Assembler& Assembler::JsetImm(int dst, int64_t imm, Label target) {
  return EmitBranch(Opcode::kJsetImm, dst, 0, imm, target);
}

Assembler& Assembler::LdStack(int dst, int32_t offset) {
  return Emit(Opcode::kLdStack, dst, 0, offset, 0);
}
Assembler& Assembler::StStack(int32_t offset, int src) {
  return Emit(Opcode::kStStack, 0, src, offset, 0);
}
Assembler& Assembler::StStackImm(int32_t offset, int64_t imm) {
  return Emit(Opcode::kStStackImm, 0, 0, offset, imm);
}

Assembler& Assembler::LdCtxt(int dst, int key_reg, int32_t slot) {
  return Emit(Opcode::kLdCtxt, dst, key_reg, slot, 0);
}
Assembler& Assembler::StCtxt(int key_reg, int32_t slot, int src) {
  return Emit(Opcode::kStCtxt, key_reg, src, slot, 0);
}
Assembler& Assembler::MatchCtxt(int dst, int key_reg) {
  return Emit(Opcode::kMatchCtxt, dst, key_reg, 0, 0);
}

Assembler& Assembler::MapLookup(int dst, int key_reg, int64_t map_id) {
  return Emit(Opcode::kMapLookup, dst, key_reg, 0, map_id);
}
Assembler& Assembler::MapExists(int dst, int key_reg, int64_t map_id) {
  return Emit(Opcode::kMapExists, dst, key_reg, 0, map_id);
}
Assembler& Assembler::MapUpdate(int64_t map_id, int key_reg, int value_reg) {
  return Emit(Opcode::kMapUpdate, key_reg, value_reg, 0, map_id);
}
Assembler& Assembler::MapDelete(int64_t map_id, int key_reg) {
  return Emit(Opcode::kMapDelete, 0, key_reg, 0, map_id);
}

Assembler& Assembler::VecLdCtxt(int vdst, int key_reg) {
  return Emit(Opcode::kVecLdCtxt, vdst, key_reg, 0, 0);
}
Assembler& Assembler::VecStCtxt(int key_reg, int vsrc) {
  return Emit(Opcode::kVecStCtxt, key_reg, vsrc, 0, 0);
}
Assembler& Assembler::VecZero(int vdst) { return Emit(Opcode::kVecZero, vdst, 0, 0, 0); }
Assembler& Assembler::ScalarVal(int vdst, int32_t lane, int src) {
  return Emit(Opcode::kScalarVal, vdst, src, lane, 0);
}
Assembler& Assembler::VecExtract(int dst, int vsrc, int32_t lane) {
  return Emit(Opcode::kVecExtract, dst, vsrc, lane, 0);
}
Assembler& Assembler::MatMul(int vdst, int vsrc, int64_t tensor_id) {
  return Emit(Opcode::kMatMul, vdst, vsrc, 0, tensor_id);
}
Assembler& Assembler::VecAddT(int vdst, int64_t tensor_id) {
  return Emit(Opcode::kVecAddT, vdst, 0, 0, tensor_id);
}
Assembler& Assembler::VecAdd(int vdst, int vsrc) { return Emit(Opcode::kVecAdd, vdst, vsrc, 0, 0); }
Assembler& Assembler::VecRelu(int vdst, int vsrc) {
  return Emit(Opcode::kVecRelu, vdst, vsrc, 0, 0);
}
Assembler& Assembler::VecArgmax(int dst, int vsrc) {
  return Emit(Opcode::kVecArgmax, dst, vsrc, 0, 0);
}
Assembler& Assembler::VecDot(int vdst, int vsrc) { return Emit(Opcode::kVecDot, vdst, vsrc, 0, 0); }

Assembler& Assembler::Call(HelperId helper) {
  return Emit(Opcode::kCall, 0, 0, 0, static_cast<int64_t>(helper));
}
Assembler& Assembler::MlCall(int dst, int vsrc, int64_t model_id) {
  return Emit(Opcode::kMlCall, dst, vsrc, 0, model_id);
}
Assembler& Assembler::TailCall(int64_t table_id) {
  return Emit(Opcode::kTailCall, 0, 0, 0, table_id);
}
Assembler& Assembler::Exit() { return Emit(Opcode::kExit, 0, 0, 0, 0); }

Assembler& Assembler::DeclareMaps(uint32_t count) {
  program_.num_maps = count;
  return *this;
}
Assembler& Assembler::DeclareModels(uint32_t count) {
  program_.num_models = count;
  return *this;
}
Assembler& Assembler::DeclareTensors(uint32_t count) {
  program_.num_tensors = count;
  return *this;
}
Assembler& Assembler::DeclareTables(uint32_t count) {
  program_.num_tables = count;
  return *this;
}

Result<BytecodeProgram> Assembler::Build() {
  for (size_t i = 0; i < label_positions_.size(); ++i) {
    if (label_positions_[i] == -2) {
      return InvalidArgumentError("label " + std::to_string(i) + " bound more than once");
    }
  }
  for (const Fixup& fixup : fixups_) {
    if (fixup.label_id < 0 || static_cast<size_t>(fixup.label_id) >= label_positions_.size()) {
      return InvalidArgumentError("branch references an invalid label");
    }
    const int64_t target = label_positions_[fixup.label_id];
    if (target < 0) {
      return InvalidArgumentError("label " + std::to_string(fixup.label_id) + " was never bound");
    }
    // Branch offsets are relative to the instruction after the branch.
    code_[fixup.instruction_index].offset =
        static_cast<int32_t>(target - static_cast<int64_t>(fixup.instruction_index) - 1);
  }
  BytecodeProgram out = program_;
  out.code = code_;
  return out;
}

}  // namespace rkd
