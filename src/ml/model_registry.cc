#include "src/ml/model_registry.h"

namespace rkd {

int64_t ModelRegistry::AddSlot() {
  std::lock_guard<std::mutex> lock(mutex_);
  owned_.push_back(std::make_unique<ModelSlot>());
  auto* dir = new Directory();
  dir->slots.reserve(owned_.size());
  for (const std::unique_ptr<ModelSlot>& slot : owned_) {
    dir->slots.push_back(slot.get());
  }
  dir_.Publish(dir, GlobalEpochDomain());
  return static_cast<int64_t>(owned_.size()) - 1;
}

Status ModelRegistry::Install(int64_t slot, ModelPtr model) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (slot < 0 || static_cast<size_t>(slot) >= owned_.size()) {
    return NotFoundError("model slot " + std::to_string(slot) + " does not exist");
  }
  owned_[static_cast<size_t>(slot)]->Set(std::move(model));
  return OkStatus();
}

ModelPtr ModelRegistry::Get(int64_t slot) const {
  EpochGuard guard(GlobalEpochDomain());
  const Directory* dir = dir_.Load();
  if (dir == nullptr || slot < 0 || static_cast<size_t>(slot) >= dir->slots.size()) {
    return nullptr;
  }
  return dir->slots[static_cast<size_t>(slot)]->Get();
}

ModelSlot* ModelRegistry::slot(int64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<size_t>(id) >= owned_.size()) {
    return nullptr;
  }
  return owned_[static_cast<size_t>(id)].get();
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return owned_.size();
}

int64_t TensorRegistry::Add(FixedMatrix tensor) {
  tensors_.push_back(std::move(tensor));
  return static_cast<int64_t>(tensors_.size()) - 1;
}

int64_t TensorRegistry::AddVector(std::span<const int32_t> values) {
  FixedMatrix m(values.size(), 1);
  for (size_t i = 0; i < values.size(); ++i) {
    m.at(i, 0) = values[i];
  }
  return Add(std::move(m));
}

const FixedMatrix* TensorRegistry::Get(int64_t id) const {
  if (id < 0 || static_cast<size_t>(id) >= tensors_.size()) {
    return nullptr;
  }
  return &tensors_[static_cast<size_t>(id)];
}

}  // namespace rkd
